// Recover word structure from a .bench netlist file.
//
//   bench_file_recovery [path/to/netlist.bench]
//
// With no argument, a demo netlist is written to /tmp and processed, so
// the example is runnable out of the box. This example uses the
// training-free structural baseline (a user with no labelled circuits can
// still run it) and prints the recovered word groups; it also round-trips
// the netlist through the writer to demonstrate the I/O layer.
#include <cstdio>
#include <fstream>

#include "nl/decompose.h"
#include "nl/parser.h"
#include "nl/words.h"
#include "structural/matching.h"

using namespace rebert;

namespace {

constexpr const char* kDemoBench = R"(# 4-bit enable register + 2-bit status
INPUT(en)
INPUT(d0)
INPUT(d1)
INPUT(d2)
INPUT(d3)
m0 = MUX(en, r0, d0)
m1 = MUX(en, r1, d1)
m2 = MUX(en, r2, d2)
m3 = MUX(en, r3, d3)
r0 = DFF(m0)
r1 = DFF(m1)
r2 = DFF(m2)
r3 = DFF(m3)
p = XOR(r0, r1)
q = XOR(r2, r3)
parity = XOR(p, q)
s0 = DFF(parity)
any0 = OR(r0, r1)
any1 = OR(r2, r3)
any = OR(any0, any1)
s1 = DFF(any)
OUTPUT(parity)
OUTPUT(any)
)";

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/rebert_demo.bench";
    std::ofstream out(path);
    out << kDemoBench;
    std::printf("no input given; wrote demo netlist to %s\n", path.c_str());
  }

  nl::Netlist netlist = nl::parse_bench_file(path);
  const nl::NetlistStats stats = netlist.stats();
  std::printf("parsed '%s': %d inputs, %d outputs, %d gates, %d FFs\n",
              netlist.name().c_str(), stats.num_inputs, stats.num_outputs,
              stats.num_comb_gates, stats.num_dffs);

  // Standardize to 2-input form (also lowers MUX cells), as the paper does
  // before any analysis.
  netlist = nl::decompose_to_2input(netlist);
  std::printf("after 2-input decomposition: %d gates\n",
              netlist.stats().num_comb_gates);

  const structural::StructuralResult result =
      structural::recover_words_structural(netlist);
  std::printf("recovered %d words in %.3fs:\n", result.num_words,
              result.total_seconds);

  const std::vector<nl::Bit> bits = nl::extract_bits(netlist);
  const nl::WordMap words = nl::WordMap::from_labels(bits, result.labels);
  for (const auto& [word, members] : words.words()) {
    std::printf("  %s:", word.c_str());
    for (const std::string& bit : members) std::printf(" %s", bit.c_str());
    std::printf("\n");
  }

  // Demonstrate the writer: serialize the decomposed netlist next to the
  // input.
  const std::string out_path = path + ".decomposed";
  nl::write_bench_file(netlist, out_path);
  std::printf("wrote 2-input form to %s\n", out_path.c_str());
  return 0;
}
