// Security-audit scenario (the paper's §I motivation).
//
// An auditor receives a flattened gate-level netlist from an untrusted
// supply chain. The adversary has additionally restructured the logic with
// functionally-equivalent gate substitutions (R-Index corruption) to evade
// template matching. The auditor recovers word-level structure with both
// methods at increasing corruption and watches the structural method fall
// over while ReBERT keeps producing usable words.
#include <cstdio>

#include "circuitgen/suite.h"
#include "metrics/clustering.h"
#include "nl/corruption.h"
#include "rebert/pipeline.h"
#include "rebert/word_typing.h"
#include "structural/matching.h"
#include "util/string_utils.h"
#include "util/table.h"

using namespace rebert;

namespace {

core::CircuitData make_circuit(const std::string& name, double scale) {
  gen::GeneratedCircuit generated = gen::generate_benchmark(name, scale);
  return core::CircuitData{name, std::move(generated.netlist),
                           std::move(generated.words)};
}

}  // namespace

int main() {
  const double scale = 0.5;
  // The "golden" designs the auditor's model was fine-tuned on.
  std::vector<core::CircuitData> references;
  references.push_back(make_circuit("b04", scale));
  references.push_back(make_circuit("b08", scale));
  references.push_back(make_circuit("b12", scale));
  // The delivered, possibly tampered design.
  const core::CircuitData delivered = make_circuit("b05", scale);

  core::ExperimentOptions options;
  options.pipeline.tokenizer.tree_code_dim = 16;
  options.pipeline.tokenizer.max_seq_len = 256;
  options.dataset.max_samples_per_circuit = 200;
  options.training.epochs = 3;

  std::printf("fine-tuning audit model on %zu reference designs...\n",
              references.size());
  std::vector<const core::CircuitData*> train_set;
  for (const auto& circuit : references) train_set.push_back(&circuit);
  const auto model = core::train_rebert(train_set, options);

  std::printf("auditing '%s' (%d FFs, %d true words) under adversarial "
              "restructuring:\n\n",
              delivered.name.c_str(),
              static_cast<int>(delivered.netlist.dffs().size()),
              delivered.words.num_words());

  util::TextTable table({"adversary R-Index", "Structural ARI",
                         "ReBERT ARI", "Structural #words",
                         "ReBERT #words", "true #words"});
  for (double r : {0.0, 0.3, 0.6, 0.9}) {
    const nl::Netlist tampered =
        r == 0.0 ? delivered.netlist
                 : nl::corrupt_netlist(delivered.netlist,
                                       {.r_index = r, .seed = 2025});
    const std::vector<nl::Bit> bits = nl::extract_bits(tampered);
    const std::vector<int> truth = delivered.words.labels_for(bits);

    const structural::StructuralResult baseline =
        structural::recover_words_structural(tampered);
    const core::RecoveryResult recovery =
        core::recover_words(tampered, *model, options.pipeline);

    table.add_row(
        {util::format_double(r, 1),
         util::format_double(
             metrics::adjusted_rand_index(truth, baseline.labels), 3),
         util::format_double(
             metrics::adjusted_rand_index(truth, recovery.labels), 3),
         std::to_string(baseline.num_words),
         std::to_string(recovery.num_words),
         std::to_string(delivered.words.num_words())});
  }
  table.print();
  std::printf(
      "\nReading the table: equivalent-gate restructuring defeats template\n"
      "matching (ARI collapses) while the learned model keeps recovering\n"
      "word structure — the paper's central claim, in an audit workflow.\n");

  // Step 2 of an audit: classify what the recovered words *do* by
  // simulating the tampered netlist (word_typing.h).
  std::printf("\nbehavioural classification of recovered words (R=0.6):\n");
  const nl::Netlist tampered = nl::corrupt_netlist(
      delivered.netlist, {.r_index = 0.6, .seed = 2025});
  const core::RecoveryResult recovery =
      core::recover_words(tampered, *model, options.pipeline);
  const std::vector<nl::Bit> bits = nl::extract_bits(tampered);
  const nl::WordMap predicted =
      nl::WordMap::from_labels(bits, recovery.labels);
  for (const auto& [word, members] : predicted.words()) {
    if (members.size() < 2) continue;
    const core::WordAnalysis analysis =
        core::analyze_word(tampered, members);
    std::printf("  %-8s %-14s (%zu bits, confidence %.2f): %s\n",
                word.c_str(), core::word_kind_name(analysis.kind),
                members.size(), analysis.confidence,
                util::join(analysis.ordered_bits, " ").c_str());
  }
  return 0;
}
