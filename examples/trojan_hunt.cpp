// Trojan hunting with word recovery — the paper's opening motivation.
//
// A Trojan's flip-flops are structural strangers: they belong to no
// legitimate word, their fan-in cones match no datapath template, and the
// pairwise model gives them no strong partners. Recover words on an
// infected netlist and the Trojan state elements surface as leftover
// singletons / micro-groups that a reviewer can triage first.
#include <algorithm>
#include <cstdio>

#include "circuitgen/suite.h"
#include "circuitgen/trojan.h"
#include "rebert/pipeline.h"
#include "rebert/report.h"
#include "structural/matching.h"

using namespace rebert;

namespace {

core::CircuitData make_circuit(const std::string& name, double scale) {
  gen::GeneratedCircuit generated = gen::generate_benchmark(name, scale);
  return core::CircuitData{name, std::move(generated.netlist),
                           std::move(generated.words)};
}

}  // namespace

int main() {
  const double scale = 0.5;
  // Train the auditor's model on clean reference designs.
  std::vector<core::CircuitData> references;
  references.push_back(make_circuit("b03", scale));
  references.push_back(make_circuit("b12", scale));
  const core::CircuitData target = make_circuit("b05", scale);

  core::ExperimentOptions options;
  options.pipeline.tokenizer.tree_code_dim = 16;
  options.pipeline.tokenizer.max_seq_len = 256;
  options.dataset.max_samples_per_circuit = 200;
  options.training.epochs = 3;
  std::vector<const core::CircuitData*> train_set;
  for (const auto& circuit : references) train_set.push_back(&circuit);
  std::printf("training audit model on clean references...\n");
  const auto model = core::train_rebert(train_set, options);

  // The adversary infects the delivered netlist.
  gen::TrojanInfo trojan;
  const nl::Netlist infected =
      gen::insert_trojan(target.netlist, {}, &trojan);
  std::printf("\n[adversary] inserted a %zu-FF Trojan (trigger over %zu "
              "nets, victim '%s')\n",
              trojan.trojan_ffs.size(), trojan.trigger_nets.size(),
              trojan.victim_net.c_str());

  // The auditor recovers words and inspects the stragglers.
  const core::RecoveryArtifacts artifacts =
      core::recover_words_detailed(infected, *model, options.pipeline);
  const core::WordReport report = core::make_word_report(
      artifacts.bits, artifacts.scores, artifacts.result.labels);
  std::printf("\n[auditor] recovered %zu multi-bit words, %d singletons\n",
              report.words.size(), report.num_singletons);

  // Triage: flip-flops outside any healthy word — singletons and
  // micro-groups (Trojan payloads are small; real datapath words are not).
  std::vector<std::string> suspects;
  for (std::size_t i = 0; i < artifacts.bits.size(); ++i) {
    const int label = artifacts.result.labels[i];
    int group_size = 0;
    for (int other : artifacts.result.labels)
      if (other == label) ++group_size;
    if (group_size <= 2)
      suspects.push_back(artifacts.bits[i].name);
  }
  std::printf("[auditor] stray flip-flops (words of <= 2 bits) to review "
              "first:\n");
  int caught = 0;
  for (const std::string& name : suspects) {
    const bool is_trojan =
        std::find(trojan.trojan_ffs.begin(), trojan.trojan_ffs.end(),
                  name) != trojan.trojan_ffs.end();
    caught += is_trojan ? 1 : 0;
    std::printf("    %-16s %s\n", name.c_str(),
                is_trojan ? "<-- TROJAN" : "");
  }
  std::printf(
      "\n%d of %zu Trojan flip-flops landed in the suspect list "
      "(%zu suspects total from %zu FFs).\n",
      caught, trojan.trojan_ffs.size(), suspects.size(),
      artifacts.bits.size());
  return 0;
}
