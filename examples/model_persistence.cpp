// Train once, deploy everywhere: checkpoint save/load workflow.
//
// Fine-tunes a ReBERT model, saves it to disk, reloads it into a fresh
// process-equivalent model (different RNG seed, so an untrained twin would
// disagree), and verifies the reloaded model recovers identical words.
// This is the workflow a real audit team uses: train on golden designs in
// the lab, ship the checkpoint to the analysts.
#include <cstdio>

#include "circuitgen/suite.h"
#include "metrics/clustering.h"
#include "rebert/pipeline.h"
#include "rebert/report.h"

using namespace rebert;

namespace {

core::CircuitData make_circuit(const std::string& name, double scale) {
  gen::GeneratedCircuit generated = gen::generate_benchmark(name, scale);
  return core::CircuitData{name, std::move(generated.netlist),
                           std::move(generated.words)};
}

}  // namespace

int main() {
  const double scale = 0.5;
  std::vector<core::CircuitData> references;
  references.push_back(make_circuit("b03", scale));
  references.push_back(make_circuit("b12", scale));
  const core::CircuitData target = make_circuit("b13", scale);

  core::ExperimentOptions options;
  options.pipeline.tokenizer.tree_code_dim = 16;
  options.pipeline.tokenizer.max_seq_len = 256;
  options.dataset.max_samples_per_circuit = 150;
  options.training.epochs = 2;

  // --- train & save -----------------------------------------------------------
  std::vector<const core::CircuitData*> train_set;
  for (const auto& circuit : references) train_set.push_back(&circuit);
  std::printf("training...\n");
  const auto trained = core::train_rebert(train_set, options);
  const std::string checkpoint = "/tmp/rebert_checkpoint.bin";
  trained->save(checkpoint);
  std::printf("saved %lld parameters to %s\n",
              static_cast<long long>(trained->num_parameters()),
              checkpoint.c_str());

  // --- load into a fresh model -------------------------------------------------
  bert::BertConfig config = core::make_model_config(options);
  config.seed = 0xdeadbeef;  // different init: only the checkpoint matters
  bert::BertPairClassifier deployed(config);
  deployed.load(checkpoint);
  std::printf("checkpoint loaded into a fresh model\n");

  // --- verify identical behaviour ----------------------------------------------
  const core::RecoveryArtifacts original =
      core::recover_words_detailed(target.netlist, *trained,
                                   options.pipeline);
  const core::RecoveryArtifacts reloaded =
      core::recover_words_detailed(target.netlist, deployed,
                                   options.pipeline);

  const bool identical =
      original.result.labels == reloaded.result.labels;
  std::printf("recovered word partitions identical: %s\n",
              identical ? "yes" : "NO");

  const std::vector<int> truth =
      target.words.labels_for(original.bits);
  std::printf("ARI vs ground truth: %.3f\n",
              metrics::adjusted_rand_index(truth, reloaded.result.labels));

  // --- audit report -------------------------------------------------------------
  const core::WordReport report = core::make_word_report(
      reloaded.bits, reloaded.scores, reloaded.result.labels);
  std::printf("\n%s", report.to_string().c_str());
  return identical ? 0 : 1;
}
