// Tokenization walk-through reproducing the paper's Figures 2 and 3.
//
// Builds the example bit from Fig. 2 — AND(NOT(X0), OR(X1, X2)) — shows
// its binary tree, pre-order token sequence, the pair sequence with [SEP],
// and the tree-based positional codes of Fig. 3.
#include <cstdio>

#include "nl/cone.h"
#include "nl/parser.h"
#include "rebert/tokenizer.h"
#include "rebert/tree_code.h"

using namespace rebert;

namespace {

void print_tree(const nl::ConeTree& tree, int node, int indent) {
  const nl::ConeNode& n = tree.nodes[static_cast<std::size_t>(node)];
  std::printf("%*s%s%s\n", indent, "",
              n.is_leaf ? n.name.c_str() : nl::gate_type_name(n.type),
              n.is_leaf ? " (leaf)" : "");
  for (int child : n.children) print_tree(tree, child, indent + 2);
}

}  // namespace

int main() {
  // The Fig. 2 circuit: one bit whose cone is AND(NOT(x0), OR(x1, x2)).
  const nl::Netlist netlist = nl::parse_bench_string(R"(
INPUT(x0)
INPUT(x1)
INPUT(x2)
n_not = NOT(x0)
n_or = OR(x1, x2)
bit = AND(n_not, n_or)
q = DFF(bit)
OUTPUT(q)
)");

  std::printf("=== Fig. 2(a): binary tree of the bit (k = 3) ===\n");
  const nl::ConeTree tree = nl::extract_cone(netlist, *netlist.find("bit"), 3);
  print_tree(tree, 0, 0);

  std::printf("\n=== Fig. 2(b): pre-order token sequence ===\n");
  core::Tokenizer tokenizer({.backtrace_depth = 3, .tree_code_dim = 8,
                             .max_seq_len = 64});
  const core::BitSequence sequence =
      tokenizer.tokenize_net(netlist, *netlist.find("bit"));
  std::printf("%s\n", core::Tokenizer::decode(sequence.token_ids).c_str());
  std::printf("(leaf names generalized to 'X', as in the paper)\n");

  std::printf("\n=== Fig. 2(c): token sequence for a pair of bits ===\n");
  const bert::EncodedSequence pair =
      tokenizer.encode_pair(sequence, sequence);
  std::printf("%s\n", core::Tokenizer::decode(pair.token_ids).c_str());

  std::printf("\n=== Fig. 3: tree-based positional codes ===\n");
  std::printf("root all-zero; child = parent >> 2 with '10' (left) / '01' "
              "(right) inserted\n");
  const auto codes = core::tree_codes(tree, 8);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    const nl::ConeNode& node = tree.nodes[i];
    std::printf("  token %-4s code %s\n",
                node.is_leaf ? "X" : nl::gate_type_name(node.type),
                core::code_string(codes[i]).c_str());
  }

  std::printf("\n=== model input summary ===\n");
  std::printf("pair sequence length : %d tokens\n", pair.length());
  std::printf("tree code width      : %d bits per token\n",
              pair.tree_codes.dim(1));
  std::printf("positions            : 0..%d (learned positional table)\n",
              pair.length() - 1);
  return 0;
}
