// Quickstart: the whole ReBERT flow in one file.
//
//   1. generate a benchmark circuit with known word-level ground truth,
//   2. fine-tune a (small) ReBERT pair classifier on other circuits,
//   3. recover words from the gate-level netlist,
//   4. compare against the structural baseline and the ground truth.
//
// Runs in well under a minute on one CPU core.
#include <cstdio>

#include "circuitgen/suite.h"
#include "metrics/clustering.h"
#include "rebert/pipeline.h"
#include "structural/matching.h"

using namespace rebert;

namespace {

core::CircuitData make_circuit(const std::string& name, double scale) {
  gen::GeneratedCircuit generated = gen::generate_benchmark(name, scale);
  return core::CircuitData{name, std::move(generated.netlist),
                           std::move(generated.words)};
}

}  // namespace

int main() {
  // --- 1. circuits -----------------------------------------------------------
  const double scale = 0.5;  // half-size suite keeps this example snappy
  std::vector<core::CircuitData> train_circuits;
  train_circuits.push_back(make_circuit("b03", scale));
  train_circuits.push_back(make_circuit("b08", scale));
  train_circuits.push_back(make_circuit("b13", scale));
  const core::CircuitData target = make_circuit("b11", scale);

  const nl::NetlistStats stats = target.netlist.stats();
  std::printf("target circuit %s: %d gates, %d flip-flops, %d true words\n",
              target.name.c_str(), stats.num_comb_gates, stats.num_dffs,
              target.words.num_words());

  // --- 2. fine-tune ----------------------------------------------------------
  core::ExperimentOptions options;
  options.pipeline.tokenizer.backtrace_depth = 6;   // the paper's k
  options.pipeline.tokenizer.tree_code_dim = 16;
  options.pipeline.tokenizer.max_seq_len = 256;
  options.dataset.max_samples_per_circuit = 200;
  options.training.epochs = 3;
  options.training.verbose = true;

  std::vector<const core::CircuitData*> train_set;
  for (const auto& circuit : train_circuits) train_set.push_back(&circuit);
  std::printf("fine-tuning ReBERT (%d-hidden, %d-layer BERT encoder)...\n",
              options.model_hidden, options.model_layers);
  const auto model = core::train_rebert(train_set, options);
  std::printf("model has %lld parameters\n",
              static_cast<long long>(model->num_parameters()));

  // --- 3. recover words ------------------------------------------------------
  const core::RecoveryResult recovery =
      core::recover_words(target.netlist, *model, options.pipeline);
  std::printf(
      "ReBERT recovered %d words in %.2fs (%.0f%% of pairs filtered by "
      "Jaccard)\n",
      recovery.num_words, recovery.total_seconds,
      recovery.filtered_fraction * 100.0);

  // --- 4. compare ------------------------------------------------------------
  const std::vector<nl::Bit> bits = nl::extract_bits(target.netlist);
  const std::vector<int> truth = target.words.labels_for(bits);
  const double rebert_ari =
      metrics::adjusted_rand_index(truth, recovery.labels);

  const structural::StructuralResult baseline =
      structural::recover_words_structural(target.netlist);
  const double structural_ari =
      metrics::adjusted_rand_index(truth, baseline.labels);

  std::printf("\nARI vs ground truth (1.0 = perfect):\n");
  std::printf("  ReBERT     : %.3f (%d words)\n", rebert_ari,
              recovery.num_words);
  std::printf("  Structural : %.3f (%d words)\n", structural_ari,
              baseline.num_words);
  std::printf("  true words : %d\n", target.words.num_words());

  // Show a few recovered groups by flip-flop name.
  std::printf("\nfirst recovered words:\n");
  const nl::WordMap predicted = nl::WordMap::from_labels(bits,
                                                         recovery.labels);
  int shown = 0;
  for (const auto& [word, members] : predicted.words()) {
    if (members.size() < 2) continue;
    std::printf("  %s:", word.c_str());
    for (const std::string& bit : members) std::printf(" %s", bit.c_str());
    std::printf("\n");
    if (++shown == 4) break;
  }
  return 0;
}
