// FaultInjector semantics the chaos suites build on: seeded determinism,
// the REBERT_FAULTS grammar, per-site counters, and the three trip shapes
// (throw, errno, bare boolean) plus latency mode.
#include "runtime/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <vector>

#include "util/check.h"
#include "util/timer.h"

namespace rebert::runtime {
namespace {

TEST(FaultInjectorTest, DisarmedNeverFails) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(injector.should_fail("model.forward"));
  EXPECT_EQ(injector.total_trips(), 0u);
}

TEST(FaultInjectorTest, UnknownSiteAndBadProbabilityRejected) {
  FaultInjector injector;
  EXPECT_THROW(injector.arm("model.fwd", 1.0, 1), util::CheckError);
  EXPECT_THROW(injector.arm("model.forward", 1.5, 1), util::CheckError);
  EXPECT_THROW(injector.arm("model.forward", -0.1, 1), util::CheckError);
  EXPECT_THROW(injector.arm("model.forward", 0.5, 1, -3), util::CheckError);
  EXPECT_FALSE(injector.armed());
}

TEST(FaultInjectorTest, SameSeedSameTripSequence) {
  std::vector<bool> first, second;
  for (std::vector<bool>* out : {&first, &second}) {
    FaultInjector injector;
    injector.arm("socket.read", 0.5, 42);
    for (int i = 0; i < 200; ++i)
      out->push_back(injector.should_fail("socket.read"));
  }
  EXPECT_EQ(first, second);
  // And not degenerate: a fair-ish coin must show both faces in 200 draws.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(FaultInjectorTest, ProbabilityEndpoints) {
  FaultInjector injector;
  injector.arm("pool.submit", 0.0, 7);
  injector.arm("model.forward", 1.0, 7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(injector.should_fail("pool.submit"));
    EXPECT_TRUE(injector.should_fail("model.forward"));
  }
}

TEST(FaultInjectorTest, TripShapes) {
  FaultInjector injector;
  injector.arm("model.forward", 1.0, 1);
  EXPECT_THROW(injector.maybe_throw("model.forward"), InjectedFault);
  errno = 0;
  EXPECT_TRUE(injector.maybe_errno("model.forward", EIO));
  EXPECT_EQ(errno, EIO);
  injector.arm("model.forward", 0.0, 1);
  EXPECT_NO_THROW(injector.maybe_throw("model.forward"));
  EXPECT_FALSE(injector.maybe_errno("model.forward", EIO));
}

TEST(FaultInjectorTest, LatencyModeSleepsButReportsNoFailure) {
  FaultInjector injector;
  injector.arm("snapshot.save", 1.0, 3, /*delay_ms=*/20);
  util::WallTimer timer;
  EXPECT_FALSE(injector.should_fail("snapshot.save"));
  EXPECT_GE(timer.seconds(), 0.015);
  EXPECT_EQ(injector.total_trips(), 1u);  // latency trips still count
}

TEST(FaultInjectorTest, DisarmAndCounters) {
  FaultInjector injector;
  injector.arm("socket.send", 1.0, 5);
  ASSERT_TRUE(injector.should_fail("socket.send"));
  const std::vector<FaultInjector::SiteReport> reports = injector.report();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].site, "socket.send");
  EXPECT_EQ(reports[0].checks, 1u);
  EXPECT_EQ(reports[0].trips, 1u);
  injector.disarm("socket.send");
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.should_fail("socket.send"));
}

TEST(FaultInjectorTest, ConfigureGrammar) {
  FaultInjector injector;
  injector.configure("model.forward:1.0:7, socket.send:0.25:3:10");
  const std::vector<FaultInjector::SiteReport> reports = injector.report();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].site, "model.forward");
  EXPECT_EQ(reports[0].probability, 1.0);
  EXPECT_EQ(reports[1].site, "socket.send");
  EXPECT_EQ(reports[1].delay_ms, 10);
}

TEST(FaultInjectorTest, ConfigureRejectsMalformedEntries) {
  FaultInjector injector;
  EXPECT_THROW(injector.configure("model.forward"), util::CheckError);
  EXPECT_THROW(injector.configure("model.forward:zero:1"),
               util::CheckError);
  EXPECT_THROW(injector.configure("model.forward:1.0:x"), util::CheckError);
  EXPECT_THROW(injector.configure("no.such.site:1.0:1"), util::CheckError);
  // Entries before the malformed one stay armed (fail-late semantics).
  FaultInjector partial;
  EXPECT_THROW(partial.configure("pool.submit:1.0:1,bogus"),
               util::CheckError);
  EXPECT_TRUE(partial.armed());
  EXPECT_TRUE(partial.should_fail("pool.submit"));
}

TEST(FaultInjectorTest, RearmResetsStream) {
  FaultInjector injector;
  injector.arm("socket.read", 0.5, 9);
  std::vector<bool> first;
  for (int i = 0; i < 50; ++i)
    first.push_back(injector.should_fail("socket.read"));
  injector.arm("socket.read", 0.5, 9);  // same seed, fresh stream
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(injector.should_fail("socket.read"), first[i]) << i;
}

}  // namespace
}  // namespace rebert::runtime
