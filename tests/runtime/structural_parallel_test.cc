// The structural baseline's parallel pairwise sweep must label exactly
// like the single-threaded one (similarities in parallel, union-find
// replayed serially in pair order — see structural/matching.cc).
#include "structural/matching.h"

#include <gtest/gtest.h>

#include "circuitgen/suite.h"

namespace rebert::structural {
namespace {

TEST(StructuralParallelTest, LabelsIdenticalAcrossThreadCounts) {
  const gen::GeneratedCircuit generated = gen::generate_benchmark("b04", 0.5);
  MatchingOptions options;
  options.num_threads = 1;
  const StructuralResult serial =
      recover_words_structural(generated.netlist, options);
  for (int threads : {2, 8}) {
    options.num_threads = threads;
    const StructuralResult parallel =
        recover_words_structural(generated.netlist, options);
    EXPECT_EQ(serial.labels, parallel.labels) << threads << " threads";
    EXPECT_EQ(serial.num_words, parallel.num_words);
  }
}

TEST(StructuralParallelTest, AutoThreadCountAlsoMatches) {
  const gen::GeneratedCircuit generated = gen::generate_benchmark("b03", 0.5);
  MatchingOptions options;
  options.num_threads = 1;
  const StructuralResult serial =
      recover_words_structural(generated.netlist, options);
  options.num_threads = 0;  // REBERT_THREADS / hardware
  const StructuralResult parallel =
      recover_words_structural(generated.netlist, options);
  EXPECT_EQ(serial.labels, parallel.labels);
}

}  // namespace
}  // namespace rebert::structural
