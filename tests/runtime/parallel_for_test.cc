#include "runtime/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "runtime/latch.h"
#include "runtime/thread_pool.h"

namespace rebert::runtime {
namespace {

std::vector<double> run_with_pool(int workers, std::int64_t n,
                                  std::int64_t grain) {
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  const auto body = [&out](std::int64_t i) {
    // A value that depends on the index alone; any scheduling bug that
    // runs an index twice or not at all changes the result.
    out[static_cast<std::size_t>(i)] = 1.0 / (1.0 + static_cast<double>(i));
  };
  ParallelForOptions options;
  options.grain = grain;
  if (workers <= 0) {
    serial_for(0, n, body, options);
  } else {
    ThreadPool pool(workers);
    parallel_for(pool, 0, n, body, options);
  }
  return out;
}

TEST(ParallelForTest, EveryIndexRunsExactlyOnce) {
  const std::int64_t n = 1000;
  std::vector<std::atomic<int>> counts(static_cast<std::size_t>(n));
  ThreadPool pool(4);
  parallel_for(pool, 0, n, [&counts](std::int64_t i) {
    counts[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_EQ(counts[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
}

TEST(ParallelForTest, BitIdenticalAcrossThreadCounts) {
  // The determinism guarantee the scoring pipeline relies on: identical
  // output at 1, 2, and 8 threads (and for the serial fallback), including
  // with a grain that does not divide the range.
  const std::int64_t n = 777;
  const std::vector<double> serial = run_with_pool(0, n, 10);
  EXPECT_EQ(serial, run_with_pool(1, n, 10));
  EXPECT_EQ(serial, run_with_pool(2, n, 10));
  EXPECT_EQ(serial, run_with_pool(8, n, 10));
  EXPECT_EQ(serial, run_with_pool(8, n, 1));
  EXPECT_EQ(serial, run_with_pool(8, n, 4096));  // single chunk
}

TEST(ParallelForTest, EmptyAndSingletonRanges) {
  std::atomic<int> ran{0};
  ThreadPool pool(2);
  parallel_for(pool, 5, 5, [&ran](std::int64_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
  parallel_for(pool, 5, 6, [&ran](std::int64_t i) {
    EXPECT_EQ(i, 5);
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelForTest, BodyExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  ParallelForOptions options;
  options.grain = 8;
  EXPECT_THROW(
      parallel_for(
          pool, 0, 512,
          [](std::int64_t i) {
            if (i == 137) throw std::runtime_error("body failed");
          },
          options),
      std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> ran{0};
  parallel_for(pool, 0, 16, [&ran](std::int64_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ParallelForTest, SerialForAlsoThrows) {
  EXPECT_THROW(serial_for(0, 10,
                          [](std::int64_t i) {
                            if (i == 3) throw std::runtime_error("x");
                          }),
               std::runtime_error);
}

TEST(ParallelForTest, CancellationStopsIssuingChunks) {
  ThreadPool pool(2);
  CancellationToken cancel;
  ParallelForOptions options;
  options.grain = 1;
  options.cancel = &cancel;
  std::atomic<std::int64_t> ran{0};
  EXPECT_THROW(parallel_for(
                   pool, 0, 100000,
                   [&](std::int64_t) {
                     if (ran.fetch_add(1) == 10) cancel.request_stop();
                   },
                   options),
               CancelledError);
  // Already-started chunks finish, but the loop must stop far short of the
  // full range.
  EXPECT_LT(ran.load(), 100000);
}

TEST(ParallelForTest, PreCancelledRunsNothing) {
  ThreadPool pool(2);
  CancellationToken cancel;
  cancel.request_stop();
  ParallelForOptions options;
  options.cancel = &cancel;
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [&ran](std::int64_t) { ran.fetch_add(1); }, options),
      CancelledError);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelForTest, NestedLoopsOnOnePoolDoNotDeadlock) {
  // help-while-wait: an outer body blocked on an inner parallel_for drains
  // the pool queue itself, so even a single-worker pool makes progress.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  parallel_for(pool, 0, 4, [&](std::int64_t) {
    parallel_for(pool, 0, 8, [&ran](std::int64_t) { ran.fetch_add(1); });
  });
  EXPECT_EQ(ran.load(), 32);
}

TEST(ParallelForTest, LargeRangeStress) {
  const std::int64_t n = 200000;
  std::vector<std::uint8_t> hit(static_cast<std::size_t>(n), 0);
  ThreadPool pool(8);
  ParallelForOptions options;
  options.grain = 64;
  parallel_for(
      pool, 0, n,
      [&hit](std::int64_t i) { hit[static_cast<std::size_t>(i)] ^= 1; },
      options);
  const std::int64_t total =
      std::accumulate(hit.begin(), hit.end(), std::int64_t{0});
  EXPECT_EQ(total, n);
}

}  // namespace
}  // namespace rebert::runtime
