// Determinism of the parallel scoring hot path: score_all_pairs must
// produce a bit-identical ScoreMatrix at any thread count (the property
// scoring.h documents and the acceptance bar for the concurrent runtime).
#include "rebert/scoring.h"

#include <gtest/gtest.h>

#include <vector>

#include "bert/config.h"
#include "circuitgen/suite.h"
#include "rebert/pipeline.h"
#include "rebert/vocab.h"
#include "runtime/thread_pool.h"

namespace rebert::core {
namespace {

struct Fixture {
  Fixture()
      : generated(gen::generate_benchmark("b03", 0.5)),
        tokenizer({.backtrace_depth = 4, .tree_code_dim = 8,
                   .max_seq_len = 128}),
        bits(tokenizer.tokenize_bits(generated.netlist)),
        model(make_config()) {}

  static bert::BertConfig make_config() {
    bert::BertConfig config = bert::eval_config(
        static_cast<int>(vocabulary().size()), 128);
    config.tree_code_dim = 8;
    config.hidden = 32;
    config.num_layers = 1;
    config.num_heads = 2;
    config.intermediate = 64;
    return config;
  }

  gen::GeneratedCircuit generated;
  Tokenizer tokenizer;
  std::vector<BitSequence> bits;
  bert::BertPairClassifier model;
};

void expect_identical(const ScoreMatrix& a, const ScoreMatrix& b) {
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i)
    for (int j = 0; j < a.size(); ++j)
      ASSERT_EQ(a.at(i, j), b.at(i, j)) << "cell (" << i << "," << j << ")";
}

ScoreMatrix score_with_threads(Fixture& f, int threads, bool cached) {
  ScoringOptions options;
  options.num_threads = threads;
  ShardedPredictionCache cache;
  return score_all_pairs(f.bits, f.tokenizer, FilterOptions{}, f.model,
                         cached ? &cache : nullptr, options);
}

TEST(ScoreAllPairsTest, BitIdenticalAtOneTwoAndEightThreads) {
  Fixture f;
  const ScoreMatrix serial = score_with_threads(f, 1, /*cached=*/false);
  expect_identical(serial, score_with_threads(f, 2, false));
  expect_identical(serial, score_with_threads(f, 8, false));
}

TEST(ScoreAllPairsTest, SharedCacheDoesNotChangeParallelScores) {
  Fixture f;
  const ScoreMatrix uncached = score_with_threads(f, 1, false);
  expect_identical(uncached, score_with_threads(f, 1, true));
  expect_identical(uncached, score_with_threads(f, 8, true));
}

TEST(ScoreAllPairsTest, MatchesLegacySerialBuilder) {
  // score_all_pairs with one thread must agree exactly with the original
  // build_score_matrix_with_model path it parallelizes.
  Fixture f;
  const ScoreMatrix legacy = build_score_matrix_with_model(
      f.bits, f.tokenizer, FilterOptions{}, f.model, nullptr);
  expect_identical(legacy, score_with_threads(f, 1, false));
  expect_identical(legacy, score_with_threads(f, 8, true));
}

TEST(ScoreAllPairsTest, ExternalPoolGivesSameMatrix) {
  Fixture f;
  const ScoreMatrix serial = score_with_threads(f, 1, false);
  runtime::ThreadPool pool(3);
  ScoringOptions options;
  options.pool = &pool;
  ShardedPredictionCache cache;
  const ScoreMatrix pooled = score_all_pairs(
      f.bits, f.tokenizer, FilterOptions{}, f.model, &cache, options);
  expect_identical(serial, pooled);
}

TEST(ScoreAllPairsTest, RespectsFilterInParallel) {
  Fixture f;
  ScoringOptions options;
  options.num_threads = 4;
  const ScoreMatrix scores = score_all_pairs(
      f.bits, f.tokenizer, FilterOptions{}, f.model, nullptr, options);
  const ScoreMatrix reference = build_score_matrix_with_model(
      f.bits, f.tokenizer, FilterOptions{}, f.model, nullptr);
  EXPECT_EQ(scores.filtered_fraction(), reference.filtered_fraction());
}

TEST(RecoverWordsTest, LabelsIdenticalAcrossThreadCounts) {
  // End-to-end: the full pipeline (which routes through score_all_pairs)
  // recovers the same partition no matter the thread count.
  Fixture f;
  PipelineOptions options;
  options.tokenizer = f.tokenizer.options();
  options.num_threads = 1;
  const RecoveryResult serial =
      recover_words(f.generated.netlist, f.model, options);
  options.num_threads = 4;
  const RecoveryResult parallel =
      recover_words(f.generated.netlist, f.model, options);
  EXPECT_EQ(serial.labels, parallel.labels);
  EXPECT_EQ(serial.num_words, parallel.num_words);
}

}  // namespace
}  // namespace rebert::core
