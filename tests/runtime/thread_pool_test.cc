#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/latch.h"
#include "runtime/threads.h"
#include "util/mutex.h"

namespace rebert::runtime {
namespace {

TEST(ResolveThreadCountTest, ExplicitRequestWins) {
  EXPECT_EQ(resolve_thread_count(1), 1);
  EXPECT_EQ(resolve_thread_count(7), 7);
  EXPECT_EQ(resolve_thread_count(kMaxThreads + 100), kMaxThreads);
}

TEST(ResolveThreadCountTest, AutoIsAtLeastOne) {
  EXPECT_GE(resolve_thread_count(0), 1);
  EXPECT_GE(resolve_thread_count(-3), 1);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> ran{0};
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  for (auto& future : futures) future.get();
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, SubmitFromWorkerDoesNotDeadlock) {
  // The queue is unbounded, so a worker enqueueing more work must never
  // block — even on a single-worker pool where nobody else could drain it.
  std::atomic<int> inner_ran{0};
  util::Mutex mu{"test.mu"};
  std::vector<std::future<void>> inner;
  {
    ThreadPool pool(1);
    std::vector<std::future<void>> outer;
    for (int i = 0; i < 16; ++i) {
      outer.push_back(pool.submit([&] {
        util::MutexLock lock(mu);
        inner.push_back(pool.submit([&inner_ran] { inner_ran.fetch_add(1); }));
      }));
    }
    for (auto& future : outer) future.get();
  }  // destructor drains the inner tasks
  for (auto& future : inner) future.get();
  EXPECT_EQ(inner_ran.load(), 16);
}

TEST(ThreadPoolTest, ExceptionIsCapturedInFuture) {
  ThreadPool pool(2);
  std::future<void> bad =
      pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must survive it.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i)
      pool.submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, TryRunOneExecutesOnCallingThread) {
  // Park the only worker so queued tasks can't run anywhere else, then
  // drain them from this thread via try_run_one. The `started` handshake
  // guarantees the worker (not this thread, below) runs the parking task.
  ThreadPool pool(1);
  Latch started(1);
  Latch release(1);
  pool.submit([&started, &release] {
    started.count_down();
    release.wait();
  });
  started.wait();
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  while (pool.queued() > 0) pool.try_run_one();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_FALSE(pool.try_run_one());  // queue empty now
  release.count_down();
  for (auto& future : futures) future.get();
}

TEST(ThreadPoolTest, StressManyProducersManyTasks) {
  std::atomic<long long> sum{0};
  ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  util::Mutex mu{"test.mu"};
  // 4 external producer threads each submit 500 tasks concurrently with
  // the pool consuming them.
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < 500; ++i) {
        auto future = pool.submit([&sum, p, i] { sum.fetch_add(p * 1000 + i); });
        util::MutexLock lock(mu);
        futures.push_back(std::move(future));
      }
    });
  }
  for (auto& producer : producers) producer.join();
  for (auto& future : futures) future.get();
  long long expected = 0;
  for (int p = 0; p < 4; ++p)
    for (int i = 0; i < 500; ++i) expected += p * 1000 + i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(LatchTest, WaitReturnsAfterCountdown) {
  Latch latch(3);
  EXPECT_FALSE(latch.try_wait());
  latch.count_down(2);
  EXPECT_FALSE(latch.try_wait());
  latch.count_down();
  EXPECT_TRUE(latch.try_wait());
  latch.wait();  // must not block
  EXPECT_TRUE(latch.wait_for(std::chrono::milliseconds(1)));
}

TEST(LatchTest, WaitForTimesOutWhileCounted) {
  Latch latch(1);
  EXPECT_FALSE(latch.wait_for(std::chrono::milliseconds(1)));
}

TEST(CancellationTokenTest, RequestObservedAndResettable) {
  CancellationToken token;
  EXPECT_FALSE(token.requested());
  token.request_stop();
  EXPECT_TRUE(token.requested());
  token.reset();
  EXPECT_FALSE(token.requested());
}

}  // namespace
}  // namespace rebert::runtime
