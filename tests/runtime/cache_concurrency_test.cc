// Hammer tests for the sharded prediction cache: many threads mixing
// lookups and inserts must never lose, corrupt, or double-count an entry.
#include "rebert/prediction_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace rebert::core {
namespace {

double value_for(std::uint64_t key) {
  // Deterministic key -> score mapping, mirroring real use where a cache
  // key always maps to the one score deterministic inference produces.
  return static_cast<double>(key % 1000) / 1000.0;
}

TEST(ShardedPredictionCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedPredictionCache(1).num_shards(), 1);
  EXPECT_EQ(ShardedPredictionCache(2).num_shards(), 2);
  EXPECT_EQ(ShardedPredictionCache(5).num_shards(), 8);
  EXPECT_EQ(ShardedPredictionCache(64).num_shards(), 64);
  EXPECT_EQ(ShardedPredictionCache().num_shards(), 64);  // default
}

TEST(ShardedPredictionCacheTest, BasicHitMissAndClear) {
  ShardedPredictionCache cache(8);
  double score = 0.0;
  EXPECT_FALSE(cache.lookup(42, &score));
  cache.insert(42, 0.25);
  ASSERT_TRUE(cache.lookup(42, &score));
  EXPECT_DOUBLE_EQ(score, 0.25);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_FALSE(cache.lookup(42, &score));
}

TEST(ShardedPredictionCacheTest, KeysSpreadAcrossShards) {
  // Not a distribution-quality test — just that consecutive keys do not
  // all fall into one shard (would serialize the whole point away).
  ShardedPredictionCache cache(16);
  for (std::uint64_t key = 0; key < 64; ++key)
    cache.insert(key, value_for(key));
  EXPECT_EQ(cache.size(), 64u);
}

TEST(ShardedPredictionCacheTest, ConcurrentHammerKeepsEveryEntryExact) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 512;
  constexpr int kRounds = 40;
  ShardedPredictionCache cache(16);
  std::atomic<int> wrong{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &wrong, t] {
      // Each thread walks the key space from a different offset, inserting
      // and re-reading; overlapping inserts of a key always carry the same
      // value, as with real deterministic predictions.
      for (int round = 0; round < kRounds; ++round) {
        for (std::uint64_t k = 0; k < kKeys; ++k) {
          const std::uint64_t key =
              (k + static_cast<std::uint64_t>(t) * 13) % kKeys;
          double score = 0.0;
          if (cache.lookup(key, &score)) {
            if (score != value_for(key)) wrong.fetch_add(1);
          } else {
            cache.insert(key, value_for(key));
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(cache.size(), kKeys);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    double score = 0.0;
    ASSERT_TRUE(cache.lookup(key, &score));
    EXPECT_DOUBLE_EQ(score, value_for(key));
  }
  // Every lookup was either a hit or a miss; nothing lost or double
  // counted beyond the benign racing-insert window.
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GE(cache.misses(), kKeys);
}

TEST(CacheStatsTest, HitRateSafeOnEmptyAndBusyCaches) {
  ShardedPredictionCache cache(4);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
  cache.insert(1, 0.5);
  double score;
  cache.lookup(1, &score);
  cache.lookup(2, &score);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

}  // namespace
}  // namespace rebert::core
