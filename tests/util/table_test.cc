#include "util/table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/csv.h"

namespace rebert::util {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "ari"});
  t.add_row({"b03", "0.653"});
  t.add_row({"b18-long", "0.1"});
  const std::string s = t.to_string();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  // All lines equal width (alignment).
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << "misaligned line: " << line;
  }
}

TEST(TextTableTest, RejectsWrongArity) {
  TextTable t({"a", "b", "c"});
  EXPECT_THROW(t.add_row({"1", "2"}), CheckError);
  EXPECT_THROW(t.add_row({"1", "2", "3", "4"}), CheckError);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TextTableTest, NumericRowFormatsPrecision) {
  TextTable t({"name", "x", "y"});
  t.add_row_numeric("r", {0.12345, 2.0}, 3);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("0.123"), std::string::npos);
  EXPECT_NE(s.find("2.000"), std::string::npos);
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/rebert_csv_test.csv";
  {
    CsvWriter csv(path, {"bench", "ari"});
    csv.add_row({"b03", "0.653"});
    csv.add_row_numeric("b04", {0.5}, 3);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "bench,ari");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "b03,0.653");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "b04,0.500");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, RejectsWrongWidth) {
  const std::string path = ::testing::TempDir() + "/rebert_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rebert::util
