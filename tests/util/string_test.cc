#include "util/string_utils.h"

#include <gtest/gtest.h>

namespace rebert::util {
namespace {

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\t x y \n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWsTest, DropsEmptyFields) {
  EXPECT_EQ(split_ws("  a \t b\nc "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_TRUE(split_ws("").empty());
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, ","), "x,y,z");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
  EXPECT_EQ(split(join(parts, "|"), '|'), parts);
}

TEST(PrefixSuffixTest, Matches) {
  EXPECT_TRUE(starts_with("NAND(a,b)", "NAND"));
  EXPECT_FALSE(starts_with("NAND", "NAND("));
  EXPECT_TRUE(ends_with("file.bench", ".bench"));
  EXPECT_FALSE(ends_with("bench", ".bench"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_TRUE(ends_with("abc", ""));
}

TEST(CaseTest, Converts) {
  EXPECT_EQ(to_lower("NaNd"), "nand");
  EXPECT_EQ(to_upper("dff_3"), "DFF_3");
}

TEST(ParseIntTest, AcceptsPlainIntegers) {
  int v = -1;
  EXPECT_TRUE(parse_int("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(parse_int("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int("-17", &v));
  EXPECT_EQ(v, -17);
  EXPECT_TRUE(parse_int("+5", &v));
  EXPECT_EQ(v, 5);
  EXPECT_TRUE(parse_int("2147483647", &v));
  EXPECT_EQ(v, 2147483647);
}

TEST(ParseIntTest, RejectsJunkAndOverflowWithoutTouchingOutput) {
  int v = 123;
  EXPECT_FALSE(parse_int("", &v));
  EXPECT_FALSE(parse_int("x", &v));
  EXPECT_FALSE(parse_int("3a", &v));     // trailing junk (stoi accepts!)
  EXPECT_FALSE(parse_int(" 7", &v));     // leading whitespace (strtol skips)
  EXPECT_FALSE(parse_int("7 ", &v));
  EXPECT_FALSE(parse_int("1.5", &v));
  EXPECT_FALSE(parse_int("--2", &v));
  EXPECT_FALSE(parse_int("99999999999999999999", &v));  // overflows long too
  EXPECT_FALSE(parse_int("2147483648", &v));  // one past INT_MAX
  EXPECT_EQ(v, 123);  // failures leave *value untouched
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(format_double(0.12345, 3), "0.123");
  EXPECT_EQ(format_double(-1.0, 2), "-1.00");
  EXPECT_EQ(format_double(2.5, 0), "2");  // round-to-even
  EXPECT_EQ(format_double(1234.5678, 1), "1234.6");
}

}  // namespace
}  // namespace rebert::util
