// Seeded backoff jitter (util/backoff.h) — the determinism and bounds
// the client/supervisor retry paths rely on: replayable per (seed,
// sequence), additive-only (never earlier than the computed backoff,
// never past backoff * (1 + pct/100)), divergent across seeds so a fleet
// spreads out, and a no-op at pct = 0 (the historic schedule).
#include <gtest/gtest.h>

#include <set>

#include "util/backoff.h"

namespace rebert::util {
namespace {

TEST(BackoffJitterTest, ZeroPctIsIdentity) {
  for (int backoff : {0, 1, 7, 100, 5000})
    for (std::uint64_t seq = 0; seq < 5; ++seq)
      EXPECT_EQ(apply_backoff_jitter(backoff, 0x1234, seq, 0), backoff);
}

TEST(BackoffJitterTest, JitterOnlyAddsAndIsBounded) {
  for (std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    for (std::uint64_t seq = 0; seq < 50; ++seq) {
      for (int backoff : {1, 10, 100, 4000}) {
        const int pct = 25;
        const int jittered = apply_backoff_jitter(backoff, seed, seq, pct);
        EXPECT_GE(jittered, backoff);  // never earlier than the backoff
        EXPECT_LE(jittered, backoff + backoff * pct / 100 + 1);
      }
    }
  }
}

TEST(BackoffJitterTest, DeterministicPerSeedAndSequence) {
  for (std::uint64_t seq = 0; seq < 20; ++seq)
    EXPECT_EQ(apply_backoff_jitter(1000, 7, seq, 50),
              apply_backoff_jitter(1000, 7, seq, 50));
}

TEST(BackoffJitterTest, SeedsDiverge) {
  // Differently-seeded waiters given the same advisory must not march in
  // lockstep — that is the whole point. 32 seeds over a 500-wide span
  // colliding onto < 8 distinct delays would mean the mixer is broken.
  std::set<int> delays;
  for (std::uint64_t seed = 1; seed <= 32; ++seed)
    delays.insert(apply_backoff_jitter(1000, seed, 0, 50));
  EXPECT_GE(delays.size(), 8u);
}

TEST(BackoffJitterTest, SequenceAdvancesTheSchedule) {
  // One waiter's consecutive retries also spread (sequence feeds the mix).
  std::set<int> delays;
  for (std::uint64_t seq = 0; seq < 32; ++seq)
    delays.insert(apply_backoff_jitter(1000, 99, seq, 50));
  EXPECT_GE(delays.size(), 8u);
}

TEST(BackoffJitterTest, DegenerateInputsPassThrough) {
  EXPECT_EQ(apply_backoff_jitter(0, 1, 0, 50), 0);
  EXPECT_EQ(apply_backoff_jitter(-5, 1, 0, 50), -5);
  EXPECT_EQ(apply_backoff_jitter(100, 1, 0, -10), 100);
}

TEST(BackoffHashTest, Fnv1a64MatchesKnownVectors) {
  // Standard FNV-1a 64-bit test vectors; the seed derivation for client
  // jitter must stay stable across builds.
  EXPECT_EQ(fnv1a64("", 0), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a", 1), 12638187200555641996ULL);
  const char* abc = "abc";
  EXPECT_EQ(fnv1a64(abc, 3), fnv1a64(abc, 3));
  EXPECT_NE(fnv1a64("abc", 3), fnv1a64("abd", 3));
}

TEST(BackoffHashTest, Splitmix64IsStable) {
  // splitmix64 reference value for input 0 (Vigna's test vector).
  EXPECT_EQ(splitmix64(0), 16294208416658607535ULL);
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

}  // namespace
}  // namespace rebert::util
