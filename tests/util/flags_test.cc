#include "util/flags.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace rebert::util {
namespace {

FlagParser make(std::initializer_list<std::string> args) {
  return FlagParser(std::vector<std::string>(args));
}

TEST(FlagsTest, PositionalAndFlags) {
  // A non-flag token after "--name" is greedily taken as its value;
  // positionals must precede flags or follow another flag's value.
  const FlagParser flags =
      make({"recover", "pos2", "--in", "c.bench", "--report"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "recover");
  EXPECT_EQ(flags.positional()[1], "pos2");
  EXPECT_EQ(flags.get("in", ""), "c.bench");
  EXPECT_TRUE(flags.has("report"));
  EXPECT_TRUE(flags.get_bool("report", false));
  EXPECT_FALSE(flags.has("missing"));
  // Greedy consumption: "--report extra" makes "extra" the value.
  const FlagParser greedy = make({"--report", "extra"});
  EXPECT_EQ(greedy.get("report", ""), "extra");
  EXPECT_TRUE(greedy.positional().empty());
}

TEST(FlagsTest, EqualsSyntax) {
  const FlagParser flags = make({"--scale=0.5", "--name=x=y"});
  EXPECT_EQ(flags.get("scale", ""), "0.5");
  EXPECT_EQ(flags.get("name", ""), "x=y");  // only first '=' splits
}

TEST(FlagsTest, BareBooleanBeforeAnotherFlag) {
  const FlagParser flags = make({"--verbose", "--out", "f"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get("out", ""), "f");
}

TEST(FlagsTest, TypedAccessors) {
  const FlagParser flags =
      make({"--epochs", "5", "--scale", "0.25", "--flag", "no"});
  EXPECT_EQ(flags.get_int("epochs", 1), 5);
  EXPECT_DOUBLE_EQ(flags.get_double("scale", 1.0), 0.25);
  EXPECT_FALSE(flags.get_bool("flag", true));
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 2.5), 2.5);
  EXPECT_TRUE(flags.get_bool("missing", true));
}

TEST(FlagsTest, NegativeNumbersAreValues) {
  const FlagParser flags = make({"--offset", "-3"});
  EXPECT_EQ(flags.get_int("offset", 0), -3);
}

TEST(FlagsTest, MalformedNumbersThrow) {
  const FlagParser flags = make({"--epochs", "five", "--scale", "x"});
  EXPECT_THROW(flags.get_int("epochs", 1), CheckError);
  EXPECT_THROW(flags.get_double("scale", 1.0), CheckError);
}

TEST(FlagsTest, UnknownFlagDetection) {
  const FlagParser flags = make({"--in", "f", "--typo", "v"});
  const auto unknown = flags.unknown_flags({"in", "out"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
  EXPECT_TRUE(make({"--in", "f"}).unknown_flags({"in"}).empty());
}

TEST(FlagsTest, ArgcArgvConstructorSkipsProgramName) {
  const char* argv[] = {"prog", "cmd", "--x", "1"};
  const FlagParser flags(4, argv);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "cmd");
  EXPECT_EQ(flags.get_int("x", 0), 1);
}

TEST(FlagsTest, BareDoubleDashRejected) {
  EXPECT_THROW(make({"--"}), CheckError);
}

}  // namespace
}  // namespace rebert::util
