// Coverage for util/check.h: message formatting, catchability, and the
// hot-path REBERT_DCHECK variant's compile-out semantics.
#include "util/check.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace rebert::util {
namespace {

TEST(CheckTest, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(REBERT_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(REBERT_CHECK_MSG(true, "never rendered"));
}

TEST(CheckTest, FailingCheckThrowsCheckError) {
  EXPECT_THROW(REBERT_CHECK(1 == 2), CheckError);
  EXPECT_THROW(REBERT_CHECK_MSG(false, "boom"), CheckError);
}

TEST(CheckTest, CheckErrorIsARuntimeError) {
  // Callers that only know std::exception / std::runtime_error still catch.
  try {
    REBERT_CHECK(false);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("check failed"), std::string::npos);
  }
}

TEST(CheckTest, MessageContainsConditionFileAndLine) {
  try {
    REBERT_CHECK(2 + 2 == 5);
    FAIL() << "expected a throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cc"), std::string::npos) << what;
    // A line number follows the file name ("file:line").
    EXPECT_NE(what.find("check_test.cc:"), std::string::npos) << what;
  }
}

TEST(CheckTest, MsgVariantStreamsValues) {
  const int gates = 7;
  const std::string name = "b03";
  try {
    REBERT_CHECK_MSG(gates == 8, "netlist '" << name << "' has " << gates
                                             << " gates");
    FAIL() << "expected a throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("netlist 'b03' has 7 gates"), std::string::npos)
        << what;
    EXPECT_NE(what.find("gates == 8"), std::string::npos) << what;
  }
}

TEST(CheckTest, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  REBERT_CHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckTest, DcheckMatchesBuildConfiguration) {
  int evaluations = 0;
  auto probe = [&] {
    ++evaluations;
    return true;
  };
#ifdef REBERT_ENABLE_DCHECKS
  REBERT_DCHECK(probe());
  EXPECT_EQ(evaluations, 1);
  EXPECT_THROW(REBERT_DCHECK(false), CheckError);
  EXPECT_THROW(REBERT_DCHECK_MSG(false, "msg"), CheckError);
#else
  // Compiled out: the condition must not be evaluated at run time.
  REBERT_DCHECK(probe());
  EXPECT_EQ(evaluations, 0);
  EXPECT_NO_THROW(REBERT_DCHECK(false));
  EXPECT_NO_THROW(REBERT_DCHECK_MSG(false, "msg"));
#endif
}

}  // namespace
}  // namespace rebert::util
