#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/check.h"

namespace rebert::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform_u64(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, UniformU64RejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_u64(0), CheckError);
}

TEST(RngTest, UniformIntCoversFullRangeInclusive) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatesHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliRateApproximatesP) {
  Rng rng(29);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

TEST(RngTest, ShuffleHandlesTrivialSizes) {
  Rng rng(37);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(41);
  std::vector<double> w{0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, WeightedIndexRejectsDegenerateInput) {
  Rng rng(43);
  EXPECT_THROW(rng.weighted_index({}), CheckError);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), CheckError);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), CheckError);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.fork();
  // The child stream should differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(SplitMixTest, KnownFirstValueIsStable) {
  // Regression anchor: dataset sampling depends on this sequence.
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());
}

}  // namespace
}  // namespace rebert::util
