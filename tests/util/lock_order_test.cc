// Death tests for the debug lock-order registry in util::Mutex.
//
// With REBERT_DCHECKS on, the registry must abort — naming both locks —
// on the first ABBA inversion, on self-deadlock, and on a non-owner
// unlock, while leaving consistent acquisition orders and try_lock
// coalescing untouched. Without DCHECKS the same patterns must run
// silently: the registry is compiled out and Mutex is a plain wrapper.
//
// Each test uses its own lock names: the acquisition graph is
// process-wide, so a shared name would leak edges between tests.
#include "util/mutex.h"

#include <gtest/gtest.h>

#include <thread>

namespace rebert::util {
namespace {

#ifdef REBERT_ENABLE_DCHECKS

// Death tests fork; "threadsafe" re-executes the binary so the child does
// not inherit another test's threads mid-state.
class LockOrderDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(LockOrderDeathTest, AbbaInversionAbortsWithBothLockNames) {
  EXPECT_DEATH(
      {
        Mutex a("abba.A");
        Mutex b("abba.B");
        {
          MutexLock outer(a);
          MutexLock inner(b);  // records abba.A -> abba.B
        }
        {
          MutexLock outer(b);
          MutexLock inner(a);  // cycle: abba.B -> abba.A
        }
      },
      "lock-order cycle: acquiring abba.A while holding \\[abba.B\\].*"
      "abba.B acquired while holding \\[abba.A\\]");
}

TEST_F(LockOrderDeathTest, CycleThroughIntermediateLockIsFound) {
  // A -> B and B -> C, then C ... A: the cycle spans three nodes, so the
  // detector must chase paths, not just direct edges.
  EXPECT_DEATH(
      {
        Mutex a("chain.A");
        Mutex b("chain.B");
        Mutex c("chain.C");
        {
          MutexLock outer(a);
          MutexLock inner(b);
        }
        {
          MutexLock outer(b);
          MutexLock inner(c);
        }
        {
          MutexLock outer(c);
          MutexLock inner(a);
        }
      },
      "lock-order cycle: acquiring chain.A while holding \\[chain.C\\]");
}

TEST_F(LockOrderDeathTest, SelfDeadlockAborts) {
  EXPECT_DEATH(
      {
        Mutex m("self.M");
        m.lock();
        m.lock();
      },
      "self-deadlock: thread re-acquiring self.M");
}

TEST_F(LockOrderDeathTest, NonOwnerUnlockAborts) {
  EXPECT_DEATH(
      {
        Mutex m("orphan.M");
        m.unlock();
      },
      "non-owner unlock: thread releasing orphan.M");
}

TEST_F(LockOrderDeathTest, TwoInstancesOfOneNameHeldTogetherAbort) {
  // Same-name instances (cache shards) are one graph node; holding two at
  // once has no defined order the graph could check, so it is banned.
  EXPECT_DEATH(
      {
        Mutex first("dup.shard");
        Mutex second("dup.shard");
        MutexLock outer(first);
        MutexLock inner(second);
      },
      "lock-order hazard: acquiring a second 'dup.shard' instance");
}

TEST(LockOrderTest, ConsistentOrderNeverAborts) {
  Mutex a("ordered.A");
  Mutex b("ordered.B");
  auto take_in_order = [&] {
    for (int i = 0; i < 100; ++i) {
      MutexLock outer(a);
      MutexLock inner(b);
    }
  };
  std::thread other(take_in_order);
  take_in_order();
  other.join();
}

TEST(LockOrderTest, TryLockRecordsNoOrderingEdge) {
  // ServeLoop::snapshot_cache coalesces on try_lock; a non-blocking
  // acquisition cannot deadlock, so it must not poison the graph with a
  // reversed edge.
  Mutex a("try.A");
  Mutex b("try.B");
  {
    MutexLock outer(a);
    ASSERT_TRUE(b.try_lock());  // would be the edge try.A -> try.B
    b.unlock();
  }
  {
    MutexLock outer(b);
    MutexLock inner(a);  // fine: no try.A -> try.B edge exists
  }
}

#else  // !REBERT_ENABLE_DCHECKS

TEST(LockOrderReleaseTest, AbbaPatternRunsSilentlyWithoutDchecks) {
  // The registry is compiled out in release builds: the exact pattern the
  // debug build kills must complete (single-threaded, so the inversion is
  // a hazard, not an actual deadlock) with zero bookkeeping cost.
  Mutex a("release.A");
  Mutex b("release.B");
  {
    MutexLock outer(a);
    MutexLock inner(b);
  }
  {
    MutexLock outer(b);
    MutexLock inner(a);
  }
  SUCCEED();
}

TEST(LockOrderReleaseTest, NamesCollapseInRelease) {
  // Release Mutex stores no name; name() degrades to the generic label.
  Mutex m("release.named");
  EXPECT_STREQ(m.name(), "mutex");
}

#endif  // REBERT_ENABLE_DCHECKS

}  // namespace
}  // namespace rebert::util
