#include "nl/opt.h"

#include <gtest/gtest.h>

#include "circuitgen/suite.h"
#include "nl/corruption.h"
#include "nl/parser.h"
#include "nl/simulate.h"
#include "nl/words.h"

namespace rebert::nl {
namespace {

TEST(OptTest, FoldsConstantAnd) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
zero = CONST0()
y = AND(a, zero)
q = DFF(y)
OUTPUT(y)
)");
  OptReport report;
  const Netlist o = optimize_netlist(n, {}, &report);
  EXPECT_GT(report.folded_gates, 0);
  // y collapses to constant 0; the output net is re-materialized.
  ASSERT_TRUE(o.find("y").has_value());
  EXPECT_TRUE(check_equivalence(n, o).equivalent);
}

TEST(OptTest, NonControllingConstantsDrop) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
one = CONST1()
y = AND(a, b, one)
OUTPUT(y)
)");
  const Netlist o = optimize_netlist(n);
  // AND(a, b, 1) -> AND(a, b).
  EXPECT_EQ(o.gate(*o.find("y")).fanins.size(), 2u);
  EXPECT_TRUE(check_equivalence(n, o).equivalent);
}

TEST(OptTest, CollapsesDoubleInverter) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
n1 = NOT(a)
n2 = NOT(n1)
y = AND(n2, a)
OUTPUT(y)
)");
  OptReport report;
  const Netlist o = optimize_netlist(n, {}, &report);
  EXPECT_GT(report.collapsed_buffers, 0);
  // y = AND(a, a) -> folds to a; output materialized as BUF.
  EXPECT_TRUE(check_equivalence(n, o).equivalent);
  EXPECT_LT(o.stats().num_comb_gates, n.stats().num_comb_gates);
}

TEST(OptTest, CollapsesBuffers) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
c = BUF(a)
y = AND(c, b)
OUTPUT(y)
)");
  const Netlist o = optimize_netlist(n);
  EXPECT_EQ(o.gate(*o.find("y")).fanins[0], *o.find("a"));
  EXPECT_TRUE(check_equivalence(n, o).equivalent);
}

TEST(OptTest, StructuralHashMergesDuplicates) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
x = AND(a, b)
y = AND(b, a)
z = XOR(x, y)
q = DFF(z)
OUTPUT(z)
)");
  OptReport report;
  const Netlist o = optimize_netlist(n, {}, &report);
  EXPECT_GT(report.merged_gates, 0);
  // XOR(x, x) folds to constant 0.
  EXPECT_TRUE(check_equivalence(n, o).equivalent);
}

TEST(OptTest, XorCancellation) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
y = XOR(a, b, a)
OUTPUT(y)
)");
  const Netlist o = optimize_netlist(n);
  // XOR(a, b, a) = b: output materialized as BUF(b).
  EXPECT_TRUE(check_equivalence(n, o).equivalent);
  EXPECT_LE(o.stats().num_comb_gates, 1);
}

TEST(OptTest, MuxWithConstantSelect) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
one = CONST1()
y = MUX(one, a, b)
OUTPUT(y)
)");
  const Netlist o = optimize_netlist(n);
  EXPECT_TRUE(check_equivalence(n, o).equivalent);
}

TEST(OptTest, SweepRemovesDeadLogic) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
y = AND(a, b)
dead1 = OR(a, b)
dead2 = NOT(dead1)
OUTPUT(y)
)");
  OptReport report;
  const Netlist o = optimize_netlist(n, {}, &report);
  EXPECT_EQ(report.dead_gates, 2);
  EXPECT_FALSE(o.find("dead1").has_value());
  EXPECT_FALSE(o.find("dead2").has_value());
  EXPECT_TRUE(o.find("y").has_value());
}

TEST(OptTest, SweepKeepsDffCones) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
x = NOT(a)
q = DFF(x)
OUTPUT(a)
)");
  const Netlist o = optimize_netlist(n);
  // x feeds a DFF: live even though no primary output reads it.
  EXPECT_TRUE(o.find("x").has_value());
  EXPECT_TRUE(o.find("q").has_value());
}

TEST(OptTest, PreservesInterfaceAndDffNames) {
  const gen::GeneratedCircuit c = gen::generate_benchmark("b05");
  const Netlist o = optimize_netlist(c.netlist);
  EXPECT_EQ(o.inputs().size(), c.netlist.inputs().size());
  EXPECT_EQ(o.outputs().size(), c.netlist.outputs().size());
  EXPECT_EQ(o.dffs().size(), c.netlist.dffs().size());
  for (const nl::Bit& bit : extract_bits(c.netlist))
    EXPECT_TRUE(o.find(bit.name).has_value()) << bit.name;
}

class OptEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(OptEquivalenceTest, BenchmarkCircuitsStayEquivalent) {
  const gen::GeneratedCircuit c = gen::generate_benchmark(GetParam());
  const Netlist o = optimize_netlist(c.netlist);
  const EquivalenceResult eq = check_equivalence(
      c.netlist, o, {.num_sequences = 6, .cycles_per_sequence = 24});
  EXPECT_TRUE(eq.equivalent) << GetParam() << " mismatch on "
                             << eq.mismatched_net;
  o.validate();
}

INSTANTIATE_TEST_SUITE_P(SmallSuite, OptEquivalenceTest,
                         ::testing::Values("b03", "b05", "b08", "b11",
                                           "b13"));

TEST(OptTest, OptimizeAfterCorruptionUndoesSomeBloat) {
  // Corruption adds helper gates; optimization (esp. double-inverter
  // removal) reclaims part of them without changing function.
  const gen::GeneratedCircuit c = gen::generate_benchmark("b08");
  const Netlist corrupted =
      corrupt_netlist(c.netlist, {.r_index = 1.0, .seed = 3});
  OptReport report;
  const Netlist o = optimize_netlist(corrupted, {}, &report);
  EXPECT_LT(report.gates_after, report.gates_before);
  EXPECT_TRUE(check_equivalence(corrupted, o).equivalent);
}

TEST(OptTest, DisabledPassesAreNoOps) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
n1 = NOT(a)
n2 = NOT(n1)
dead = OR(a, n1)
OUTPUT(n2)
)");
  OptOptions off;
  off.fold_constants = false;
  off.collapse_buffers = false;
  off.structural_hash = false;
  off.sweep_dead = false;
  OptReport report;
  const Netlist o = optimize_netlist(n, off, &report);
  EXPECT_EQ(report.gates_after, report.gates_before);
  EXPECT_EQ(report.folded_gates, 0);
  EXPECT_TRUE(o.find("dead").has_value());
}

TEST(OptTest, IdempotentOnSecondRun) {
  const gen::GeneratedCircuit c = gen::generate_benchmark("b03");
  OptReport first, second;
  const Netlist once = optimize_netlist(c.netlist, {}, &first);
  const Netlist twice = optimize_netlist(once, {}, &second);
  EXPECT_EQ(second.gates_after, first.gates_after);
}

}  // namespace
}  // namespace rebert::nl
