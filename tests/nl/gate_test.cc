#include "nl/gate.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"

namespace rebert::nl {
namespace {

TEST(GateTypeTest, NameRoundTrip) {
  for (int i = 0; i < kNumGateTypes; ++i) {
    const GateType t = static_cast<GateType>(i);
    EXPECT_EQ(gate_type_from_name(gate_type_name(t)), t);
  }
}

TEST(GateTypeTest, NameParsingIsCaseInsensitiveWithAliases) {
  EXPECT_EQ(gate_type_from_name("nand"), GateType::kNand);
  EXPECT_EQ(gate_type_from_name("Inv"), GateType::kNot);
  EXPECT_EQ(gate_type_from_name("BUFF"), GateType::kBuf);
  EXPECT_THROW(gate_type_from_name("FOO"), util::CheckError);
}

TEST(GateTypeTest, Classification) {
  EXPECT_TRUE(is_source(GateType::kInput));
  EXPECT_TRUE(is_source(GateType::kConst0));
  EXPECT_TRUE(is_source(GateType::kConst1));
  EXPECT_FALSE(is_source(GateType::kAnd));
  EXPECT_TRUE(is_sequential(GateType::kDff));
  EXPECT_FALSE(is_sequential(GateType::kNot));
  EXPECT_TRUE(is_combinational(GateType::kXor));
  EXPECT_FALSE(is_combinational(GateType::kDff));
  EXPECT_FALSE(is_combinational(GateType::kInput));
  EXPECT_TRUE(is_decomposable(GateType::kNor));
  EXPECT_FALSE(is_decomposable(GateType::kMux));
  EXPECT_FALSE(is_decomposable(GateType::kNot));
}

struct TruthCase {
  GateType type;
  std::vector<bool> inputs;
  bool expected;
};

class GateEvalTest : public ::testing::TestWithParam<TruthCase> {};

TEST_P(GateEvalTest, MatchesTruthTable) {
  const TruthCase& c = GetParam();
  EXPECT_EQ(eval_gate(c.type, c.inputs), c.expected)
      << gate_type_name(c.type) << " arity " << c.inputs.size();
}

INSTANTIATE_TEST_SUITE_P(
    TwoInput, GateEvalTest,
    ::testing::Values(
        TruthCase{GateType::kAnd, {false, false}, false},
        TruthCase{GateType::kAnd, {true, false}, false},
        TruthCase{GateType::kAnd, {true, true}, true},
        TruthCase{GateType::kOr, {false, false}, false},
        TruthCase{GateType::kOr, {false, true}, true},
        TruthCase{GateType::kNand, {true, true}, false},
        TruthCase{GateType::kNand, {true, false}, true},
        TruthCase{GateType::kNor, {false, false}, true},
        TruthCase{GateType::kNor, {false, true}, false},
        TruthCase{GateType::kXor, {true, true}, false},
        TruthCase{GateType::kXor, {true, false}, true},
        TruthCase{GateType::kXnor, {true, true}, true},
        TruthCase{GateType::kXnor, {false, true}, false},
        TruthCase{GateType::kNot, {true}, false},
        TruthCase{GateType::kNot, {false}, true},
        TruthCase{GateType::kBuf, {true}, true},
        TruthCase{GateType::kConst0, {}, false},
        TruthCase{GateType::kConst1, {}, true}));

INSTANTIATE_TEST_SUITE_P(
    WideAndMux, GateEvalTest,
    ::testing::Values(
        TruthCase{GateType::kAnd, {true, true, true}, true},
        TruthCase{GateType::kAnd, {true, true, false}, false},
        TruthCase{GateType::kOr, {false, false, false}, false},
        TruthCase{GateType::kOr, {false, false, true}, true},
        TruthCase{GateType::kNand, {true, true, true}, false},
        TruthCase{GateType::kNor, {false, false, false}, true},
        // XOR is odd parity, XNOR even parity for arity > 2.
        TruthCase{GateType::kXor, {true, true, true}, true},
        TruthCase{GateType::kXor, {true, true, false}, false},
        TruthCase{GateType::kXnor, {true, true, true}, false},
        TruthCase{GateType::kXnor, {true, true, false}, true},
        // MUX(sel, a, b): sel=0 -> a, sel=1 -> b.
        TruthCase{GateType::kMux, {false, true, false}, true},
        TruthCase{GateType::kMux, {true, true, false}, false},
        TruthCase{GateType::kMux, {true, false, true}, true}));

TEST(GateEvalErrorTest, RejectsBadArity) {
  EXPECT_THROW(eval_gate(GateType::kAnd, std::vector<bool>{true}),
               util::CheckError);
  EXPECT_THROW(eval_gate(GateType::kNot, std::vector<bool>{true, false}),
               util::CheckError);
  EXPECT_THROW(eval_gate(GateType::kMux, std::vector<bool>{true, false}),
               util::CheckError);
}

TEST(GateEvalErrorTest, RejectsNonCombinational) {
  EXPECT_THROW(eval_gate(GateType::kDff, std::vector<bool>{true}),
               util::CheckError);
}

TEST(GateArityTest, Ranges) {
  EXPECT_EQ(gate_arity(GateType::kInput).max, 0);
  EXPECT_EQ(gate_arity(GateType::kNot).min, 1);
  EXPECT_EQ(gate_arity(GateType::kNot).max, 1);
  EXPECT_EQ(gate_arity(GateType::kAnd).min, 2);
  EXPECT_EQ(gate_arity(GateType::kAnd).max, -1);
  EXPECT_EQ(gate_arity(GateType::kMux).min, 3);
  EXPECT_EQ(gate_arity(GateType::kMux).max, 3);
  EXPECT_EQ(gate_arity(GateType::kDff).min, 1);
}

}  // namespace
}  // namespace rebert::nl
