#include "nl/decompose.h"

#include <gtest/gtest.h>

#include "nl/parser.h"
#include "nl/simulate.h"

namespace rebert::nl {
namespace {

Netlist wide_circuit() {
  return parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(s)
w_and = AND(a, b, c, d)
w_nand = NAND(a, b, c)
w_or = OR(a, b, c, d)
w_nor = NOR(b, c, d)
w_xor = XOR(a, b, c)
w_xnor = XNOR(a, b, c, d)
m = MUX(s, w_and, w_or)
q1 = DFF(w_nand)
q2 = DFF(m)
OUTPUT(w_xor)
OUTPUT(w_xnor)
OUTPUT(w_nor)
)",
                            "wide");
}

TEST(DecomposeTest, ProducesOnly2InputGates) {
  const Netlist n = wide_circuit();
  EXPECT_FALSE(is_2input(n));
  const Netlist d = decompose_to_2input(n);
  EXPECT_TRUE(is_2input(d));
  d.validate();
}

TEST(DecomposeTest, PreservesFunction) {
  const Netlist n = wide_circuit();
  const Netlist d = decompose_to_2input(n);
  const EquivalenceResult eq = check_equivalence(n, d);
  EXPECT_TRUE(eq.equivalent)
      << "mismatch on " << eq.mismatched_net << " seq " << eq.failing_sequence
      << " cycle " << eq.failing_cycle;
}

TEST(DecomposeTest, BalancedVariantAlsoEquivalent) {
  const Netlist n = wide_circuit();
  DecomposeOptions opt;
  opt.balanced = true;
  const Netlist d = decompose_to_2input(n, opt);
  EXPECT_TRUE(is_2input(d));
  EXPECT_TRUE(check_equivalence(n, d).equivalent);
}

TEST(DecomposeTest, PreservesNamesAndInterface) {
  const Netlist n = wide_circuit();
  const Netlist d = decompose_to_2input(n);
  EXPECT_EQ(d.inputs().size(), n.inputs().size());
  EXPECT_EQ(d.outputs().size(), n.outputs().size());
  EXPECT_EQ(d.dffs().size(), n.dffs().size());
  // Original named nets survive.
  for (const char* name :
       {"w_and", "w_nand", "w_or", "w_nor", "w_xor", "w_xnor", "m", "q1"})
    EXPECT_TRUE(d.find(name).has_value()) << name;
}

TEST(DecomposeTest, WideNandKeepsInvertingRoot) {
  // NAND(a,b,c) -> NAND2(AND(a,b), c): the named net must stay a NAND.
  const Netlist n = wide_circuit();
  const Netlist d = decompose_to_2input(n);
  EXPECT_EQ(d.gate(*d.find("w_nand")).type, GateType::kNand);
  EXPECT_EQ(d.gate(*d.find("w_nor")).type, GateType::kNor);
  EXPECT_EQ(d.gate(*d.find("w_xnor")).type, GateType::kXnor);
  EXPECT_EQ(d.gate(*d.find("w_and")).type, GateType::kAnd);
}

TEST(DecomposeTest, MuxLoweredToAoi) {
  const Netlist n = wide_circuit();
  const Netlist d = decompose_to_2input(n);
  EXPECT_EQ(d.gate(*d.find("m")).type, GateType::kOr);
  DecomposeOptions keep_mux;
  keep_mux.lower_mux = false;
  const Netlist d2 = decompose_to_2input(n, keep_mux);
  EXPECT_EQ(d2.gate(*d2.find("m")).type, GateType::kMux);
}

TEST(DecomposeTest, TwoInputNetlistIsUnchangedStructurally) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
x = AND(a, b)
y = NOT(x)
q = DFF(y)
OUTPUT(y)
)");
  const Netlist d = decompose_to_2input(n);
  EXPECT_EQ(d.num_gates(), n.num_gates());
  EXPECT_TRUE(check_equivalence(n, d).equivalent);
}

TEST(DecomposeTest, GateCountGrowsAsExpected) {
  // AND(a,b,c,d) -> 3 AND2 gates total (2 helpers + named root).
  const Netlist n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
y = AND(a, b, c, d)
OUTPUT(y)
)");
  const Netlist d = decompose_to_2input(n);
  EXPECT_EQ(d.stats().num_comb_gates, 3);
}

TEST(DecomposeTest, DffSelfLoopSurvives) {
  const Netlist n = parse_bench_string(R"(
q = DFF(n1)
n1 = NOT(q)
OUTPUT(q)
)");
  const Netlist d = decompose_to_2input(n);
  EXPECT_TRUE(check_equivalence(n, d).equivalent);
}

TEST(DecomposeTest, XorParityPreservedForWideArity) {
  // 5-input XOR: odd parity semantics must survive the chain rewrite.
  const Netlist n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
y = XOR(a, b, c, d, e)
z = XNOR(a, b, c, d, e)
OUTPUT(y)
OUTPUT(z)
)");
  const Netlist d = decompose_to_2input(n);
  EXPECT_TRUE(is_2input(d));
  EXPECT_TRUE(check_equivalence(n, d).equivalent);
}

}  // namespace
}  // namespace rebert::nl
