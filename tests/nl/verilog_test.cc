#include "nl/verilog.h"

#include <gtest/gtest.h>

#include "circuitgen/suite.h"
#include "nl/parser.h"
#include "nl/simulate.h"

namespace rebert::nl {
namespace {

constexpr const char* kSmallModule = R"(
// a tiny sequential design
module small (a, b, y);
  input a, b;
  output y;
  wire w1;
  nand g1 (w1, a, b);
  not g2 (y, w1);
  dff r0 (q, y);
endmodule
)";

TEST(VerilogParseTest, SmallModule) {
  const Netlist n = parse_verilog_string(kSmallModule);
  EXPECT_EQ(n.name(), "small");
  EXPECT_EQ(n.inputs().size(), 2u);
  EXPECT_EQ(n.outputs().size(), 1u);
  EXPECT_EQ(n.dffs().size(), 1u);
  EXPECT_EQ(n.gate(*n.find("w1")).type, GateType::kNand);
  EXPECT_EQ(n.gate(*n.find("y")).type, GateType::kNot);
  EXPECT_EQ(n.gate(*n.find("q")).fanins[0], *n.find("y"));
}

TEST(VerilogParseTest, InstanceNamesAreOptional) {
  const Netlist n = parse_verilog_string(R"(
module m (a, y);
  input a;
  output y;
  not (y, a);
endmodule
)");
  EXPECT_EQ(n.gate(*n.find("y")).type, GateType::kNot);
}

TEST(VerilogParseTest, VectorDeclarationsExpand) {
  const Netlist n = parse_verilog_string(R"(
module m (d, y);
  input [3:0] d;
  output y;
  wire [1:0] w;
  and g0 (w[0], d[0], d[1]);
  and g1 (w[1], d[2], d[3]);
  or g2 (y, w[0], w[1]);
endmodule
)");
  EXPECT_EQ(n.inputs().size(), 4u);
  EXPECT_TRUE(n.find("d[3]").has_value());
  EXPECT_TRUE(n.find("w[1]").has_value());
}

TEST(VerilogParseTest, AscendingRangeAlsoWorks) {
  const Netlist n = parse_verilog_string(R"(
module m (d, y);
  input [0:2] d;
  output y;
  and g0 (y, d[0], d[2]);
endmodule
)");
  EXPECT_EQ(n.inputs().size(), 3u);
  EXPECT_TRUE(n.find("d[1]").has_value());
}

TEST(VerilogParseTest, MalformedRangeIndexIsVerilogError) {
  // Regression: `[x:0]` used to escape as std::invalid_argument from
  // std::stoi instead of a located VerilogError.
  EXPECT_THROW(parse_verilog_string(R"(
module m (d, y);
  input [x:0] d;
  output y;
  and g0 (y, d[0], d[0]);
endmodule
)"),
               VerilogError);
  // Trailing junk after the index must not be silently accepted either.
  EXPECT_THROW(parse_verilog_string(R"(
module m (d, y);
  input [3a:0] d;
  output y;
  and g0 (y, d[0], d[1]);
endmodule
)"),
               VerilogError);
}

TEST(VerilogParseTest, OverflowRangeIndexIsVerilogError) {
  // 99999999999999999999 overflows int; std::stoi would have thrown
  // std::out_of_range straight through the parser.
  EXPECT_THROW(parse_verilog_string(R"(
module m (d, y);
  input [99999999999999999999:0] d;
  output y;
  and g0 (y, d[0], d[0]);
endmodule
)"),
               VerilogError);
}

TEST(VerilogParseTest, NegativeRangeIndexIsVerilogError) {
  EXPECT_THROW(parse_verilog_string(R"(
module m (d, y);
  input [-2:0] d;
  output y;
  and g0 (y, d[0], d[0]);
endmodule
)"),
               VerilogError);
}

TEST(VerilogParseTest, AssignAndConstants) {
  const Netlist n = parse_verilog_string(R"(
module m (a, y, k);
  input a;
  output y, k;
  wire w;
  assign w = a;
  not g (y, w);
  assign k = 1'b1;
endmodule
)");
  EXPECT_EQ(n.gate(*n.find("w")).type, GateType::kBuf);
  EXPECT_EQ(n.gate(*n.find("k")).type, GateType::kBuf);
  Simulator sim(n);
  sim.set_inputs({false});
  sim.eval_combinational();
  EXPECT_TRUE(sim.value(*n.find("k")));
}

TEST(VerilogParseTest, ConstantLiteralAsOperand) {
  const Netlist n = parse_verilog_string(R"(
module m (a, y);
  input a;
  output y;
  and g (y, a, 1'b1);
endmodule
)");
  Simulator sim(n);
  sim.set_inputs({true});
  sim.eval_combinational();
  EXPECT_TRUE(sim.value(*n.find("y")));
}

TEST(VerilogParseTest, CommentsStripped) {
  const Netlist n = parse_verilog_string(R"(
module m (a, y); // header
  input a;  /* inline
     block comment spanning lines */
  output y;
  buf g (y, a); // trailing
endmodule
)");
  EXPECT_EQ(n.gate(*n.find("y")).type, GateType::kBuf);
}

TEST(VerilogParseTest, MuxPrimitive) {
  const Netlist n = parse_verilog_string(R"(
module m (s, a, b, y);
  input s, a, b;
  output y;
  mux g (y, s, a, b);
endmodule
)");
  EXPECT_EQ(n.gate(*n.find("y")).type, GateType::kMux);
}

TEST(VerilogParseTest, Errors) {
  EXPECT_THROW(parse_verilog_string("wire w;\n"), VerilogError);
  EXPECT_THROW(parse_verilog_string("module m (a);\ninput a;\n"),
               VerilogError);  // missing endmodule
  EXPECT_THROW(parse_verilog_string(
                   "module m (a, y);\ninput a;\noutput y;\n"
                   "frobnicate g (y, a);\nendmodule\n"),
               VerilogError);
  EXPECT_THROW(parse_verilog_string(
                   "module m (a, y);\ninput a;\noutput y;\n"
                   "not g (y, ghost);\nendmodule\n"),
               VerilogError);
  EXPECT_THROW(parse_verilog_string(
                   "module m (a, y);\ninput a;\noutput y;\n"
                   "not g1 (y, a);\nnot g2 (y, a);\nendmodule\n"),
               VerilogError);  // double driver
}

TEST(VerilogWriteTest, RoundTripPreservesSemantics) {
  const Netlist original = parse_verilog_string(kSmallModule);
  const std::string text = write_verilog_string(original);
  const Netlist reparsed = parse_verilog_string(text);
  EXPECT_EQ(reparsed.dffs().size(), original.dffs().size());
  const EquivalenceResult eq = check_equivalence(original, reparsed);
  EXPECT_TRUE(eq.equivalent) << eq.mismatched_net;
}

TEST(VerilogWriteTest, BenchToVerilogBridge) {
  // Cross-format: .bench in, Verilog out, parse back, still equivalent.
  const Netlist bench = parse_bench_string(R"(
INPUT(a)
INPUT(b)
x = XOR(a, b)
q = DFF(x)
OUTPUT(x)
)");
  const Netlist reparsed = parse_verilog_string(write_verilog_string(bench));
  EXPECT_TRUE(check_equivalence(bench, reparsed).equivalent);
}

TEST(VerilogWriteTest, GeneratedBenchmarkRoundTrips) {
  const gen::GeneratedCircuit c = gen::generate_benchmark("b03");
  const Netlist reparsed =
      parse_verilog_string(write_verilog_string(c.netlist));
  EXPECT_EQ(reparsed.dffs().size(), c.netlist.dffs().size());
  const EquivalenceResult eq = check_equivalence(
      c.netlist, reparsed, {.num_sequences = 4, .cycles_per_sequence = 16});
  EXPECT_TRUE(eq.equivalent) << eq.mismatched_net;
}

TEST(VerilogWriteTest, ConstantsWrittenAsAssigns) {
  Netlist n("consts");
  n.add_input("a");
  const GateId k = n.add_const(true, "tie_hi");
  n.add_gate(GateType::kAnd, {0, k}, "y");
  n.mark_output(*n.find("y"));
  const std::string text = write_verilog_string(n);
  EXPECT_NE(text.find("assign tie_hi = 1'b1;"), std::string::npos);
  const Netlist reparsed = parse_verilog_string(text);
  EXPECT_TRUE(check_equivalence(n, reparsed).equivalent);
}

}  // namespace
}  // namespace rebert::nl
