#include "nl/netlist.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/check.h"

namespace rebert::nl {
namespace {

Netlist make_small() {
  // a, b inputs; n1 = AND(a,b); n2 = NOT(n1); q = DFF(n2); output n2.
  Netlist n("small");
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId n1 = n.add_gate(GateType::kAnd, {a, b}, "n1");
  const GateId n2 = n.add_gate(GateType::kNot, {n1}, "n2");
  n.add_dff(n2, "q");
  n.mark_output(n2);
  return n;
}

TEST(NetlistTest, BuildAndAccess) {
  Netlist n = make_small();
  EXPECT_EQ(n.num_gates(), 5);
  EXPECT_EQ(n.inputs().size(), 2u);
  EXPECT_EQ(n.outputs().size(), 1u);
  EXPECT_EQ(n.dffs().size(), 1u);
  ASSERT_TRUE(n.find("n1").has_value());
  EXPECT_EQ(n.gate(*n.find("n1")).type, GateType::kAnd);
  EXPECT_FALSE(n.find("missing").has_value());
}

TEST(NetlistTest, StatsCountsCombinationalOnly) {
  Netlist n = make_small();
  const NetlistStats s = n.stats();
  EXPECT_EQ(s.num_inputs, 2);
  EXPECT_EQ(s.num_outputs, 1);
  EXPECT_EQ(s.num_dffs, 1);
  EXPECT_EQ(s.num_comb_gates, 2);
  EXPECT_EQ(s.max_fanin, 2);
}

TEST(NetlistTest, DuplicateNamesRejected) {
  Netlist n;
  n.add_input("a");
  EXPECT_THROW(n.add_input("a"), util::CheckError);
  n.add_gate(GateType::kNot, {0}, "x");
  EXPECT_THROW(n.add_gate(GateType::kNot, {0}, "x"), util::CheckError);
}

TEST(NetlistTest, ArityValidated) {
  Netlist n;
  const GateId a = n.add_input("a");
  EXPECT_THROW(n.add_gate(GateType::kAnd, {a}), util::CheckError);
  EXPECT_THROW(n.add_gate(GateType::kNot, {a, a}), util::CheckError);
  EXPECT_THROW(n.add_gate(GateType::kMux, {a, a}), util::CheckError);
  EXPECT_NO_THROW(n.add_gate(GateType::kAnd, {a, a, a}));  // wide ok
}

TEST(NetlistTest, InvalidFaninRejected) {
  Netlist n;
  const GateId a = n.add_input("a");
  EXPECT_THROW(n.add_gate(GateType::kNot, {a + 10}), util::CheckError);
  EXPECT_THROW(n.add_gate(GateType::kNot, {-1}), util::CheckError);
}

TEST(NetlistTest, DffSelfLoopAllowed) {
  Netlist n;
  const GateId q = n.add_dff(0, "q");  // q = DFF(q)
  EXPECT_EQ(n.gate(q).fanins[0], q);
  EXPECT_NO_THROW(n.validate());
}

TEST(NetlistTest, CombinationalSelfLoopRejected) {
  Netlist n;
  n.add_input("a");
  // A combinational gate cannot reference itself (id would be 1).
  EXPECT_THROW(n.add_gate(GateType::kNot, {1}), util::CheckError);
}

TEST(NetlistTest, TopologicalOrderRespectsDependencies) {
  Netlist n = make_small();
  const std::vector<GateId> order = n.topological_order();
  EXPECT_EQ(order.size(), 2u);  // n1, n2
  auto pos = [&](const std::string& name) {
    const GateId id = *n.find(name);
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos("n1"), pos("n2"));
}

TEST(NetlistTest, CombinationalCycleDetected) {
  Netlist n;
  const GateId a = n.add_input("a");
  // g1 = AND(a, g2); g2 = NOT(g1) — a combinational loop.
  const GateId g1 = n.add_gate(GateType::kAnd, {a, a}, "g1");
  const GateId g2 = n.add_gate(GateType::kNot, {g1}, "g2");
  n.replace_gate(g1, GateType::kAnd, {a, g2});
  EXPECT_THROW(n.topological_order(), util::CheckError);
  EXPECT_THROW(n.validate(), util::CheckError);
}

TEST(NetlistTest, SequentialLoopIsFine) {
  Netlist n;
  const GateId q1 = n.add_dff(0, "q1");
  const GateId inv = n.add_gate(GateType::kNot, {q1}, "inv");
  n.replace_gate(q1, GateType::kDff, {inv});
  EXPECT_NO_THROW(n.validate());
}

TEST(NetlistTest, FanoutCounts) {
  Netlist n = make_small();
  const std::vector<int> fanout = n.fanout_counts();
  EXPECT_EQ(fanout[*n.find("a")], 1);
  EXPECT_EQ(fanout[*n.find("n1")], 1);
  EXPECT_EQ(fanout[*n.find("n2")], 1);  // feeds the DFF
  EXPECT_EQ(fanout[*n.find("q")], 0);
}

TEST(NetlistTest, LogicDepths) {
  Netlist n = make_small();
  const std::vector<int> depth = n.logic_depths();
  EXPECT_EQ(depth[*n.find("a")], 0);
  EXPECT_EQ(depth[*n.find("n1")], 1);
  EXPECT_EQ(depth[*n.find("n2")], 2);
}

TEST(NetlistTest, MarkOutputIdempotent) {
  Netlist n = make_small();
  const GateId n2 = *n.find("n2");
  n.mark_output(n2);
  n.mark_output(n2);
  EXPECT_EQ(n.outputs().size(), 1u);
  EXPECT_TRUE(n.is_output(n2));
  EXPECT_FALSE(n.is_output(*n.find("n1")));
}

TEST(NetlistTest, ReplaceGateKeepsNameAndFanout) {
  Netlist n = make_small();
  const GateId n1 = *n.find("n1");
  const GateId a = *n.find("a");
  n.replace_gate(n1, GateType::kOr, {a, a});
  EXPECT_EQ(n.gate(n1).type, GateType::kOr);
  EXPECT_EQ(n.gate(n1).name, "n1");
  // n2 still points at n1.
  EXPECT_EQ(n.gate(*n.find("n2")).fanins[0], n1);
}

TEST(NetlistTest, ReplaceGateCannotChangeClass) {
  Netlist n = make_small();
  const GateId n1 = *n.find("n1");
  EXPECT_THROW(n.replace_gate(n1, GateType::kDff, {0}), util::CheckError);
  const GateId q = *n.find("q");
  EXPECT_THROW(n.replace_gate(q, GateType::kNot, {0}), util::CheckError);
}

TEST(NetlistTest, AutoNamesAreUnique) {
  Netlist n;
  const GateId a = n.add_input("a");
  const GateId g1 = n.add_gate(GateType::kNot, {a});
  const GateId g2 = n.add_gate(GateType::kNot, {a});
  EXPECT_NE(n.gate(g1).name, n.gate(g2).name);
}

TEST(NetlistTest, ValidatePassesOnWellFormed) {
  EXPECT_NO_THROW(make_small().validate());
}

TEST(NetlistTest, CopyIsIndependent) {
  Netlist n = make_small();
  Netlist copy = n;
  copy.add_input("extra");
  EXPECT_EQ(n.inputs().size(), 2u);
  EXPECT_EQ(copy.inputs().size(), 3u);
  EXPECT_FALSE(n.find("extra").has_value());
}

}  // namespace
}  // namespace rebert::nl
