#include "nl/export_dot.h"

#include <gtest/gtest.h>

#include "circuitgen/suite.h"
#include "nl/parser.h"
#include "util/check.h"

namespace rebert::nl {
namespace {

Netlist small() {
  return parse_bench_string(R"(
INPUT(a)
INPUT(b)
x = AND(a, b)
q0 = DFF(x)
q1 = DFF(x)
OUTPUT(x)
)");
}

TEST(DotExportTest, ContainsNodesAndEdges) {
  const Netlist n = small();
  const std::string dot = dot_string(n, WordMap{});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"x\" [shape=ellipse"), std::string::npos);
  EXPECT_NE(dot.find("\"a\" -> \"x\""), std::string::npos);
  EXPECT_NE(dot.find("\"x\" -> \"q0\""), std::string::npos);
  // Outputs get a double border.
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
  // DFFs are boxes.
  EXPECT_NE(dot.find("\"q0\" [shape=box"), std::string::npos);
}

TEST(DotExportTest, WordsBecomeClusters) {
  const Netlist n = small();
  WordMap words;
  words.add_word("reg", {"q0", "q1"});
  const std::string dot = dot_string(n, words);
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("label=\"reg\""), std::string::npos);
  DotOptions no_clusters;
  no_clusters.cluster_words = false;
  EXPECT_EQ(dot_string(n, words, no_clusters).find("subgraph"),
            std::string::npos);
}

TEST(DotExportTest, EscapesSpecialCharacters) {
  Netlist n;
  n.add_input("a\"b");
  const std::string dot = dot_string(n, WordMap{});
  EXPECT_NE(dot.find("\"a\\\"b\""), std::string::npos);
}

TEST(DotExportTest, SizeLimitEnforced) {
  const gen::GeneratedCircuit big = gen::generate_benchmark("b12");
  DotOptions tiny;
  tiny.max_gates = 10;
  EXPECT_THROW(dot_string(big.netlist, big.words, tiny), util::CheckError);
  // Default limit renders b03 fine.
  const gen::GeneratedCircuit okay = gen::generate_benchmark("b03");
  EXPECT_FALSE(dot_string(okay.netlist, okay.words).empty());
}

TEST(DotExportTest, ConeTreeRendering) {
  const Netlist n = small();
  const ConeTree tree = extract_cone(n, *n.find("x"), 2);
  const std::string dot = cone_dot_string(tree);
  EXPECT_NE(dot.find("digraph cone"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("[label=\"AND\""), std::string::npos);
  EXPECT_NE(dot.find("shape=plaintext"), std::string::npos);  // leaves
}

}  // namespace
}  // namespace rebert::nl
