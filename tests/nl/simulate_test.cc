#include "nl/simulate.h"

#include <gtest/gtest.h>

#include "nl/parser.h"
#include "util/check.h"

namespace rebert::nl {
namespace {

TEST(SimulatorTest, CombinationalEval) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
x = AND(a, b)
y = XOR(a, b)
OUTPUT(x)
OUTPUT(y)
)");
  Simulator sim(n);
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      sim.set_inputs({a == 1, b == 1});
      sim.eval_combinational();
      EXPECT_EQ(sim.value(*n.find("x")), (a && b));
      EXPECT_EQ(sim.value(*n.find("y")), (a != b));
    }
  }
}

TEST(SimulatorTest, ToggleFlipFlop) {
  // q toggles every cycle: q = DFF(NOT(q)).
  const Netlist n = parse_bench_string(R"(
q = DFF(nq)
nq = NOT(q)
OUTPUT(q)
)");
  Simulator sim(n);
  sim.reset();
  bool expected = false;
  for (int cycle = 0; cycle < 8; ++cycle) {
    sim.eval_combinational();
    EXPECT_EQ(sim.value(*n.find("q")), expected) << "cycle " << cycle;
    sim.step();
    expected = !expected;
  }
}

TEST(SimulatorTest, TwoBitCounterSequence) {
  // b0 toggles every cycle; b1 toggles when b0 is 1 (binary up-counter).
  const Netlist n = parse_bench_string(R"(
b0 = DFF(d0)
b1 = DFF(d1)
d0 = NOT(b0)
d1 = XOR(b1, b0)
OUTPUT(b0)
OUTPUT(b1)
)");
  Simulator sim(n);
  sim.reset();
  for (int cycle = 0; cycle < 12; ++cycle) {
    sim.eval_combinational();
    const int value = (sim.value(*n.find("b1")) ? 2 : 0) +
                      (sim.value(*n.find("b0")) ? 1 : 0);
    EXPECT_EQ(value, cycle % 4);
    sim.step();
  }
}

TEST(SimulatorTest, ConstantsAndMux) {
  const Netlist n = parse_bench_string(R"(
INPUT(s)
one = CONST1()
zero = CONST0()
y = MUX(s, zero, one)
OUTPUT(y)
)");
  Simulator sim(n);
  sim.set_inputs({false});
  sim.eval_combinational();
  EXPECT_FALSE(sim.value(*n.find("y")));
  sim.set_inputs({true});
  sim.eval_combinational();
  EXPECT_TRUE(sim.value(*n.find("y")));
}

TEST(SimulatorTest, ResetClearsState) {
  const Netlist n = parse_bench_string(R"(
INPUT(d)
q = DFF(d)
OUTPUT(q)
)");
  Simulator sim(n);
  sim.set_inputs({true});
  sim.eval_combinational();
  sim.step();
  sim.eval_combinational();
  EXPECT_TRUE(sim.value(*n.find("q")));
  sim.reset();
  sim.set_inputs({false});
  sim.eval_combinational();
  EXPECT_FALSE(sim.value(*n.find("q")));
}

TEST(SimulatorTest, InputArityChecked) {
  const Netlist n = parse_bench_string("INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n");
  Simulator sim(n);
  EXPECT_THROW(sim.set_inputs({true, false}), util::CheckError);
  EXPECT_THROW(sim.set_inputs({}), util::CheckError);
}

TEST(SimulatorTest, NextStateAndOutputVectors) {
  const Netlist n = parse_bench_string(R"(
INPUT(d)
q = DFF(d)
y = NOT(q)
OUTPUT(y)
)");
  Simulator sim(n);
  sim.set_inputs({true});
  sim.eval_combinational();
  EXPECT_EQ(sim.next_state_values(), std::vector<bool>{true});
  EXPECT_EQ(sim.output_values(), std::vector<bool>{true});  // NOT(q=0)
  EXPECT_EQ(sim.state_values(), std::vector<bool>{false});
}

TEST(EquivalenceTest, IdenticalNetlistsAreEquivalent) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
x = NAND(a, b)
q = DFF(x)
OUTPUT(x)
)");
  EXPECT_TRUE(check_equivalence(n, n).equivalent);
}

TEST(EquivalenceTest, DetectsFunctionalDifference) {
  const Netlist a = parse_bench_string(
      "INPUT(i)\nq = DFF(x)\nx = NOT(i)\nOUTPUT(x)\n");
  const Netlist b = parse_bench_string(
      "INPUT(i)\nq = DFF(x)\nx = BUF(i)\nOUTPUT(x)\n");
  const EquivalenceResult eq = check_equivalence(a, b);
  EXPECT_FALSE(eq.equivalent);
  EXPECT_EQ(eq.mismatched_net, "x");
  EXPECT_GE(eq.failing_sequence, 0);
}

TEST(EquivalenceTest, DetectsSequentialDifference) {
  // Same combinational interface, different state update: q vs q xor 1.
  const Netlist a = parse_bench_string(
      "INPUT(i)\nq = DFF(i)\ny = BUF(q)\nOUTPUT(y)\n");
  const Netlist b = parse_bench_string(
      "INPUT(i)\nni = NOT(i)\nq = DFF(ni)\ny = BUF(q)\nOUTPUT(y)\n");
  EXPECT_FALSE(check_equivalence(a, b).equivalent);
}

TEST(EquivalenceTest, EquivalentRestructuredLogic) {
  // De Morgan: NAND(a,b) == OR(NOT a, NOT b).
  const Netlist a = parse_bench_string(
      "INPUT(a)\nINPUT(b)\ny = NAND(a, b)\nOUTPUT(y)\n");
  const Netlist b = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nna = NOT(a)\nnb = NOT(b)\ny = OR(na, nb)\n"
      "OUTPUT(y)\n");
  EXPECT_TRUE(check_equivalence(a, b).equivalent);
}

TEST(EquivalenceTest, RequiresMatchingInputs) {
  const Netlist a = parse_bench_string("INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n");
  const Netlist b = parse_bench_string("INPUT(z)\ny = NOT(z)\nOUTPUT(y)\n");
  EXPECT_THROW(check_equivalence(a, b), util::CheckError);
}

}  // namespace
}  // namespace rebert::nl
