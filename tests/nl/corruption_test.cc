#include "nl/corruption.h"

#include <gtest/gtest.h>

#include "nl/decompose.h"
#include "nl/parser.h"
#include "util/check.h"
#include "nl/simulate.h"

namespace rebert::nl {
namespace {

Netlist sample_circuit() {
  return parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
g1 = AND(a, b)
g2 = OR(b, c)
g3 = NAND(g1, g2)
g4 = NOR(a, g2)
g5 = XOR(g3, g4)
g6 = XNOR(g1, c)
g7 = NOT(g5)
g8 = BUF(g6)
q1 = DFF(g7)
q2 = DFF(g8)
OUTPUT(g5)
OUTPUT(g6)
)",
                            "sample");
}

TEST(CorruptionTest, RZeroIsIdentity) {
  const Netlist n = sample_circuit();
  CorruptionReport report;
  const Netlist c = corrupt_netlist(n, {.r_index = 0.0, .seed = 1}, &report);
  EXPECT_EQ(report.replaced_gates, 0);
  EXPECT_EQ(report.added_gates, 0);
  EXPECT_EQ(c.num_gates(), n.num_gates());
}

TEST(CorruptionTest, ROneReplacesEveryEligibleGate) {
  const Netlist n = sample_circuit();
  CorruptionReport report;
  const Netlist c = corrupt_netlist(n, {.r_index = 1.0, .seed = 1}, &report);
  EXPECT_EQ(report.eligible_gates, 8);  // g1..g8 all have templates
  EXPECT_EQ(report.replaced_gates, report.eligible_gates);
  EXPECT_GT(c.num_gates(), n.num_gates());
}

class CorruptionEquivalenceTest : public ::testing::TestWithParam<double> {};

TEST_P(CorruptionEquivalenceTest, PreservesFunctionAtAllRIndexes) {
  const Netlist n = sample_circuit();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Netlist c =
        corrupt_netlist(n, {.r_index = GetParam(), .seed = seed});
    const EquivalenceResult eq = check_equivalence(n, c);
    EXPECT_TRUE(eq.equivalent)
        << "R=" << GetParam() << " seed=" << seed << " mismatch on "
        << eq.mismatched_net;
  }
}

INSTANTIATE_TEST_SUITE_P(RIndexSweep, CorruptionEquivalenceTest,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8, 1.0));

TEST(CorruptionTest, DeterministicForSameSeed) {
  const Netlist n = sample_circuit();
  const Netlist c1 = corrupt_netlist(n, {.r_index = 0.5, .seed = 9});
  const Netlist c2 = corrupt_netlist(n, {.r_index = 0.5, .seed = 9});
  EXPECT_EQ(c1.num_gates(), c2.num_gates());
  for (GateId id = 0; id < c1.num_gates(); ++id) {
    EXPECT_EQ(c1.gate(id).type, c2.gate(id).type);
    EXPECT_EQ(c1.gate(id).fanins, c2.gate(id).fanins);
  }
}

TEST(CorruptionTest, DifferentSeedsDiffer) {
  const Netlist n = sample_circuit();
  const Netlist c1 = corrupt_netlist(n, {.r_index = 0.5, .seed = 1});
  const Netlist c2 = corrupt_netlist(n, {.r_index = 0.5, .seed = 2});
  bool any_difference = c1.num_gates() != c2.num_gates();
  if (!any_difference) {
    for (GateId id = 0; id < c1.num_gates(); ++id)
      if (c1.gate(id).type != c2.gate(id).type) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(CorruptionTest, RealizedRatioTracksRIndex) {
  // On a larger circuit the fraction of replaced gates approaches R.
  Netlist n("wide");
  std::vector<GateId> nets;
  for (int i = 0; i < 8; ++i)
    nets.push_back(n.add_input("in" + std::to_string(i)));
  util::Rng rng(5);
  for (int i = 0; i < 600; ++i) {
    const GateId a = nets[rng.uniform_int(0, static_cast<int>(nets.size()) - 1)];
    const GateId b = nets[rng.uniform_int(0, static_cast<int>(nets.size()) - 1)];
    nets.push_back(n.add_gate(GateType::kNand, {a, b}));
  }
  n.mark_output(nets.back());
  CorruptionReport report;
  corrupt_netlist(n, {.r_index = 0.4, .seed = 3}, &report);
  EXPECT_EQ(report.eligible_gates, 600);
  EXPECT_NEAR(report.realized_ratio(), 0.4, 0.07);
}

TEST(CorruptionTest, PreservesInterfaceAndGroundTruthAnchors) {
  const Netlist n = sample_circuit();
  const Netlist c = corrupt_netlist(n, {.r_index = 1.0, .seed = 4});
  EXPECT_EQ(c.inputs().size(), n.inputs().size());
  EXPECT_EQ(c.outputs().size(), n.outputs().size());
  EXPECT_EQ(c.dffs().size(), n.dffs().size());
  // DFF names (bit identities) survive.
  EXPECT_TRUE(c.find("q1").has_value());
  EXPECT_TRUE(c.find("q2").has_value());
  EXPECT_EQ(c.gate(*c.find("q1")).type, GateType::kDff);
}

TEST(CorruptionTest, PaperExampleTemplateNandToOrNotNot) {
  // A = NAND(B,C) -> A = OR(NOT(B), NOT(C)) is template 0 for NAND.
  const Netlist n = parse_bench_string(
      "INPUT(b)\nINPUT(c)\na = NAND(b, c)\nOUTPUT(a)\n");
  const Netlist c = corrupt_netlist(
      n, {.r_index = 1.0, .seed = 1, .deterministic_templates = true});
  EXPECT_EQ(c.gate(*c.find("a")).type, GateType::kOr);
  EXPECT_TRUE(check_equivalence(n, c).equivalent);
}

TEST(CorruptionTest, WorksAfterDecomposition) {
  const Netlist n = decompose_to_2input(parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
y = AND(a, b, c, d)
z = XOR(a, b, c)
q = DFF(y)
OUTPUT(z)
)"));
  const Netlist c = corrupt_netlist(n, {.r_index = 1.0, .seed = 2});
  EXPECT_TRUE(check_equivalence(n, c).equivalent);
}

TEST(CorruptionTest, RejectsOutOfRangeRIndex) {
  const Netlist n = sample_circuit();
  EXPECT_THROW(corrupt_netlist(n, {.r_index = -0.1}), util::CheckError);
  EXPECT_THROW(corrupt_netlist(n, {.r_index = 1.1}), util::CheckError);
}

TEST(NumTemplatesTest, CoversExpectedTypes) {
  EXPECT_EQ(num_templates(GateType::kNand, 2), 2);
  EXPECT_EQ(num_templates(GateType::kNand, 4), 1);
  EXPECT_EQ(num_templates(GateType::kNot, 1), 2);
  EXPECT_EQ(num_templates(GateType::kBuf, 1), 3);
  EXPECT_EQ(num_templates(GateType::kMux, 3), 0);
  EXPECT_EQ(num_templates(GateType::kDff, 1), 0);
  EXPECT_EQ(num_templates(GateType::kInput, 0), 0);
}

}  // namespace
}  // namespace rebert::nl
