#include "nl/parser.h"

#include <gtest/gtest.h>

#include "nl/simulate.h"

namespace rebert::nl {
namespace {

constexpr const char* kSmallBench = R"(
# a tiny sequential circuit
INPUT(a)
INPUT(b)
OUTPUT(y)
n1 = AND(a, b)
y = NOT(n1)
q = DFF(y)
)";

TEST(ParserTest, ParsesSmallCircuit) {
  const Netlist n = parse_bench_string(kSmallBench, "small");
  EXPECT_EQ(n.name(), "small");
  EXPECT_EQ(n.inputs().size(), 2u);
  EXPECT_EQ(n.outputs().size(), 1u);
  EXPECT_EQ(n.dffs().size(), 1u);
  EXPECT_EQ(n.stats().num_comb_gates, 2);
  ASSERT_TRUE(n.find("n1").has_value());
  EXPECT_EQ(n.gate(*n.find("n1")).type, GateType::kAnd);
  EXPECT_EQ(n.gate(*n.find("q")).fanins[0], *n.find("y"));
}

TEST(ParserTest, ForwardReferencesResolve) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
y = NOT(later)
later = AND(a, q)
q = DFF(y)
OUTPUT(y)
)");
  EXPECT_EQ(n.gate(*n.find("y")).fanins[0], *n.find("later"));
  EXPECT_EQ(n.gate(*n.find("later")).fanins[1], *n.find("q"));
}

TEST(ParserTest, DffOnlyRingParses) {
  // No primary inputs at all: two flip-flops feeding each other through
  // an inverter.
  const Netlist n = parse_bench_string(R"(
q1 = DFF(n1)
q2 = DFF(q1)
n1 = NOT(q2)
OUTPUT(q2)
)");
  EXPECT_EQ(n.dffs().size(), 2u);
  EXPECT_EQ(n.inputs().size(), 0u);
}

TEST(ParserTest, ConstantsAndComments) {
  const Netlist n = parse_bench_string(R"(
k1 = CONST1()   # tie-high
k0 = CONST0()
y = AND(k1, k0)
OUTPUT(y)
)");
  EXPECT_EQ(n.gate(*n.find("k1")).type, GateType::kConst1);
  EXPECT_EQ(n.gate(*n.find("k0")).type, GateType::kConst0);
}

TEST(ParserTest, WideGatesAndMux) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(s)
w = NAND(a, b, c)
m = MUX(s, a, b)
OUTPUT(w)
OUTPUT(m)
)");
  EXPECT_EQ(n.gate(*n.find("w")).fanins.size(), 3u);
  EXPECT_EQ(n.gate(*n.find("m")).type, GateType::kMux);
}

TEST(ParserTest, RoundTripPreservesSemantics) {
  const Netlist n = parse_bench_string(kSmallBench, "small");
  const std::string text = write_bench_string(n);
  const Netlist reparsed = parse_bench_string(text, "small");
  EXPECT_EQ(reparsed.stats().num_comb_gates, n.stats().num_comb_gates);
  EXPECT_EQ(reparsed.dffs().size(), n.dffs().size());
  const EquivalenceResult eq = check_equivalence(n, reparsed);
  EXPECT_TRUE(eq.equivalent) << "mismatch on " << eq.mismatched_net;
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  try {
    parse_bench_string("INPUT(a)\ny = FROB(a)\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ParserTest, RejectsDuplicateDefinition) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\na = NOT(a)\n"), ParseError);
  EXPECT_THROW(parse_bench_string("INPUT(a)\nx = NOT(a)\nx = BUF(a)\n"),
               ParseError);
}

TEST(ParserTest, RejectsUndefinedNet) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n"),
               ParseError);
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(ghost)\n"), ParseError);
}

TEST(ParserTest, RejectsMalformedSyntax) {
  EXPECT_THROW(parse_bench_string("y = AND(a, b\n"), ParseError);
  EXPECT_THROW(parse_bench_string("= AND(a, b)\n"), ParseError);
  EXPECT_THROW(parse_bench_string("INPUT()\n"), ParseError);
  EXPECT_THROW(parse_bench_string("y = (a, b)\n"), ParseError);
  EXPECT_THROW(parse_bench_string("y = AND(a,, b)\n"), ParseError);
}

TEST(ParserTest, RejectsInputOnRhs) {
  EXPECT_THROW(parse_bench_string("y = INPUT(a)\n"), ParseError);
}

TEST(ParserTest, RejectsSourcelessCombinationalNetlist) {
  EXPECT_THROW(parse_bench_string("y = NOT(y)\n"), ParseError);
}

TEST(ParserTest, EmptyInputYieldsEmptyNetlist) {
  const Netlist n = parse_bench_string("# only a comment\n\n");
  EXPECT_EQ(n.num_gates(), 0);
}

TEST(ParserTest, WhitespaceTolerant) {
  const Netlist n = parse_bench_string(
      "  INPUT( a )\n\ty =  NOT ( a ) \nOUTPUT( y )\n");
  EXPECT_TRUE(n.find("y").has_value());
  EXPECT_EQ(n.gate(*n.find("y")).type, GateType::kNot);
}

}  // namespace
}  // namespace rebert::nl
