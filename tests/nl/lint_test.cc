// Every lint diagnostic class must fire on a deliberately-broken netlist and
// stay silent on healthy ones; the reporters and the parser/circuitgen
// integration are covered here too.
#include "nl/lint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "circuitgen/suite.h"
#include "nl/parser.h"
#include "util/check.h"

namespace rebert::nl {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good());
  out << text;
}

// A minimal healthy netlist: two inputs, one used gate, one observed FF.
Netlist healthy_netlist() {
  Netlist n("healthy");
  const GateId a = n.add_input("a");
  const GateId b = n.add_input("b");
  const GateId g = n.add_gate(GateType::kAnd, {a, b}, "g");
  n.add_dff(g, "q");
  n.mark_output(g);
  return n;
}

TEST(LintCodeTest, StableIdsAndSeverities) {
  EXPECT_STREQ(lint_code_id(LintCode::kCombinationalCycle), "NL001");
  EXPECT_STREQ(lint_code_id(LintCode::kUndrivenNet), "NL002");
  EXPECT_STREQ(lint_code_id(LintCode::kMultiDrivenNet), "NL003");
  EXPECT_STREQ(lint_code_id(LintCode::kDanglingOutput), "NL004");
  EXPECT_STREQ(lint_code_id(LintCode::kUnreachableGate), "NL005");
  EXPECT_STREQ(lint_code_id(LintCode::kDffNoCone), "NL006");
  EXPECT_STREQ(lint_code_id(LintCode::kWordBitMismatch), "NL007");
  EXPECT_STREQ(lint_code_id(LintCode::kFloatingInput), "NL008");
  EXPECT_STREQ(lint_code_id(LintCode::kParseFailure), "NL009");

  EXPECT_EQ(lint_code_severity(LintCode::kCombinationalCycle),
            LintSeverity::kError);
  EXPECT_EQ(lint_code_severity(LintCode::kDanglingOutput),
            LintSeverity::kWarning);
  EXPECT_STREQ(lint_code_name(LintCode::kDffNoCone), "dff-no-cone");
  EXPECT_STREQ(lint_severity_name(LintSeverity::kError), "error");
}

TEST(LintNetlistTest, HealthyNetlistIsClean) {
  const LintReport report = lint_netlist(healthy_netlist());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.diagnostics.size(), 0u) << report.to_text();
}

// NL001: a combinational cycle seeded through replace_gate (the builder API
// otherwise prevents cycles; the corruption engine rewires exactly like
// this).
TEST(LintNetlistTest, FiresCombinationalCycle) {
  Netlist n("cyclic");
  const GateId a = n.add_input("a");
  const GateId g1 = n.add_gate(GateType::kAnd, {a, a}, "g1");
  const GateId g2 = n.add_gate(GateType::kOr, {g1, a}, "g2");
  n.mark_output(g2);
  n.replace_gate(g1, GateType::kAnd, {g2, a});  // g1 <-> g2 cycle

  const LintReport report = lint_netlist(n);
  EXPECT_TRUE(report.has(LintCode::kCombinationalCycle)) << report.to_text();
  EXPECT_GT(report.num_errors(), 0);
  // The diagnostic names gates on the cycle.
  bool mentions_gate = false;
  for (const LintDiagnostic& d : report.diagnostics)
    if (d.code == LintCode::kCombinationalCycle &&
        d.message.find("g1") != std::string::npos)
      mentions_gate = true;
  EXPECT_TRUE(mentions_gate) << report.to_text();
}

// NL004: a gate whose output feeds nothing and is not a primary output.
TEST(LintNetlistTest, FiresDanglingOutput) {
  Netlist n = healthy_netlist();
  const GateId a = *n.find("a");
  const GateId b = *n.find("b");
  n.add_gate(GateType::kXor, {a, b}, "dead");

  const LintReport report = lint_netlist(n);
  ASSERT_EQ(report.count(LintCode::kDanglingOutput), 1) << report.to_text();
  const LintDiagnostic& d = report.diagnostics.front();
  EXPECT_EQ(d.net, "dead");
  EXPECT_EQ(d.severity, LintSeverity::kWarning);
  EXPECT_TRUE(report.clean());  // warnings only
}

// NL005: transitively dead logic — fanout > 0 but only into dead gates.
TEST(LintNetlistTest, FiresUnreachableGate) {
  Netlist n = healthy_netlist();
  const GateId a = *n.find("a");
  const GateId b = *n.find("b");
  const GateId inner = n.add_gate(GateType::kOr, {a, b}, "inner");
  n.add_gate(GateType::kNot, {inner}, "outer");  // dangling sink

  const LintReport report = lint_netlist(n);
  EXPECT_EQ(report.count(LintCode::kDanglingOutput), 1) << report.to_text();
  ASSERT_EQ(report.count(LintCode::kUnreachableGate), 1) << report.to_text();
  for (const LintDiagnostic& d : report.diagnostics)
    if (d.code == LintCode::kUnreachableGate) {
      EXPECT_EQ(d.net, "inner");
    }
}

// NL006: flip-flop state fed only by constants or itself.
TEST(LintNetlistTest, FiresDffNoCone) {
  Netlist n = healthy_netlist();
  const GateId c = n.add_const(true, "one");
  const GateId stuck = n.add_dff(c, "stuck");
  n.mark_output(stuck);

  const LintReport report = lint_netlist(n);
  ASSERT_EQ(report.count(LintCode::kDffNoCone), 1) << report.to_text();
  for (const LintDiagnostic& d : report.diagnostics)
    if (d.code == LintCode::kDffNoCone) {
      EXPECT_EQ(d.net, "stuck");
    }
}

TEST(LintNetlistTest, SelfLoopDffHasNoCone) {
  Netlist n = healthy_netlist();
  const GateId self = static_cast<GateId>(n.num_gates());
  const GateId q = n.add_dff(self, "loop");  // q = DFF(q)
  n.mark_output(q);

  const LintReport report = lint_netlist(n);
  EXPECT_EQ(report.count(LintCode::kDffNoCone), 1) << report.to_text();
}

TEST(LintNetlistTest, DffFedByOtherDffIsHealthy) {
  Netlist n = healthy_netlist();
  const GateId q = *n.find("q");
  const GateId q2 = n.add_dff(q, "q2");  // shift-register stage
  n.mark_output(q2);
  const LintReport report = lint_netlist(n);
  EXPECT_EQ(report.count(LintCode::kDffNoCone), 0) << report.to_text();
}

// NL007: word labels referencing bits the netlist does not have.
TEST(LintNetlistTest, FiresWordBitMismatch) {
  const Netlist n = healthy_netlist();
  WordMap words;
  words.add_word("ghost", {"q", "q_missing"});
  words.add_word("wrong_kind", {"g"});  // g is a gate, not a flip-flop

  LintOptions options;
  options.words = &words;
  const LintReport report = lint_netlist(n, options);
  EXPECT_EQ(report.count(LintCode::kWordBitMismatch), 2) << report.to_text();
  EXPECT_FALSE(report.clean());
}

// NL008: primary input connected to nothing.
TEST(LintNetlistTest, FiresFloatingInput) {
  Netlist n = healthy_netlist();
  n.add_input("nc_pin");
  const LintReport report = lint_netlist(n);
  ASSERT_EQ(report.count(LintCode::kFloatingInput), 1) << report.to_text();
  for (const LintDiagnostic& d : report.diagnostics)
    if (d.code == LintCode::kFloatingInput) {
      EXPECT_EQ(d.net, "nc_pin");
    }
}

TEST(LintNetlistTest, OptionsDisableIndividualChecks) {
  Netlist n = healthy_netlist();
  n.add_input("nc_pin");
  n.add_gate(GateType::kXor, {*n.find("a"), *n.find("b")}, "dead");

  LintOptions options;
  options.check_dangling = false;
  options.check_unreachable = false;
  options.check_floating_inputs = false;
  const LintReport report = lint_netlist(n, options);
  EXPECT_EQ(report.diagnostics.size(), 0u) << report.to_text();
}

TEST(LintNetlistTest, MaxPerCodeCapsEmission) {
  Netlist n = healthy_netlist();
  for (int i = 0; i < 10; ++i) n.add_input("nc" + std::to_string(i));
  LintOptions options;
  options.max_per_code = 3;
  const LintReport report = lint_netlist(n, options);
  EXPECT_EQ(report.count(LintCode::kFloatingInput), 3);
}

// NL002 / NL003 / NL009: text-level defects the parser rejects outright.
TEST(LintSourceTest, FiresUndrivenNet) {
  const LintReport report = lint_bench_source(
      "INPUT(a)\nOUTPUT(y)\ny = AND(a, phantom)\n", "broken");
  ASSERT_EQ(report.count(LintCode::kUndrivenNet), 1) << report.to_text();
  const LintDiagnostic& d = report.diagnostics.front();
  EXPECT_EQ(d.net, "phantom");
  EXPECT_EQ(d.line, 3);
  EXPECT_EQ(d.severity, LintSeverity::kError);
}

TEST(LintSourceTest, FiresMultiDrivenNet) {
  const LintReport report = lint_bench_source(
      "INPUT(a)\nINPUT(b)\ny = AND(a, b)\ny = OR(a, b)\nOUTPUT(y)\n");
  ASSERT_EQ(report.count(LintCode::kMultiDrivenNet), 1) << report.to_text();
  const LintDiagnostic& d = report.diagnostics.front();
  EXPECT_EQ(d.net, "y");
  EXPECT_EQ(d.line, 4);
  // The message points back at the first driver.
  EXPECT_NE(d.message.find("line 3"), std::string::npos) << d.message;
}

TEST(LintSourceTest, FiresParseFailure) {
  const LintReport report = lint_bench_source(
      "INPUT(a)\ny = FROBNICATE(a)\nthis is not a statement\n");
  EXPECT_EQ(report.count(LintCode::kParseFailure), 2) << report.to_text();
}

TEST(LintSourceTest, ReportsAllDefectsNotJustFirst) {
  // The parser throws at the first defect; the linter must keep going.
  const LintReport report = lint_bench_source(
      "INPUT(a)\n"
      "a = BUF(a)\n"            // NL003 multi-driven
      "y = AND(a, ghost1)\n"    // NL002
      "z = OR(a, ghost2)\n"     // NL002
      "w = WIBBLE(a)\n"         // NL009
      "OUTPUT(y)\n");
  EXPECT_EQ(report.count(LintCode::kMultiDrivenNet), 1);
  EXPECT_EQ(report.count(LintCode::kUndrivenNet), 2);
  EXPECT_EQ(report.count(LintCode::kParseFailure), 1);
  EXPECT_EQ(report.num_errors(), 4) << report.to_text();
}

TEST(LintSourceTest, CleanSourceHasNoDiagnostics) {
  const LintReport report = lint_bench_source(
      "# comment\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  EXPECT_EQ(report.diagnostics.size(), 0u) << report.to_text();
}

TEST(LintFileTest, ComposesSourceAndGraphPasses) {
  const std::string path = temp_path("lint_compose.bench");
  // Parses fine, but has a floating input and a dangling gate.
  write_file(path,
             "INPUT(a)\nINPUT(b)\nINPUT(nc)\n"
             "g = AND(a, b)\ndead = XOR(a, b)\n"
             "q = DFF(g)\nOUTPUT(g)\n");
  const LintReport report = lint_bench_file(path);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.count(LintCode::kFloatingInput), 1) << report.to_text();
  EXPECT_EQ(report.count(LintCode::kDanglingOutput), 1) << report.to_text();
  std::remove(path.c_str());
}

TEST(LintFileTest, SourceErrorsShortCircuitGraphPass) {
  const std::string path = temp_path("lint_undriven.bench");
  write_file(path, "INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n");
  const LintReport report = lint_bench_file(path);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.count(LintCode::kUndrivenNet), 1) << report.to_text();
  std::remove(path.c_str());
}

TEST(LintReportTest, TextAndCsvReporters) {
  Netlist n = healthy_netlist();
  n.add_input("nc_pin");
  LintReport report = lint_netlist(n);
  report.netlist_name = "reporter_demo";

  const std::string text = report.to_text();
  EXPECT_NE(text.find("NL008"), std::string::npos) << text;
  EXPECT_NE(text.find("floating-input"), std::string::npos) << text;
  EXPECT_NE(text.find("0 error(s), 1 warning(s)"), std::string::npos) << text;

  const std::string csv = report.to_csv();
  EXPECT_NE(csv.find("netlist,severity,code,name,gate,net,line,message"),
            std::string::npos)
      << csv;
  EXPECT_NE(csv.find("reporter_demo,warning,NL008,floating-input"),
            std::string::npos)
      << csv;
}

// Parser integration: the report (warnings included) is observable through
// ParseOptions, and lint can be opted out entirely.
TEST(LintParserIntegrationTest, ParseFillsLintReport) {
  LintReport report;
  ParseOptions options;
  options.lint_report = &report;
  const Netlist n = parse_bench_string(
      "INPUT(a)\nINPUT(nc)\nOUTPUT(y)\ny = NOT(a)\n", "with_warning",
      options);
  EXPECT_EQ(n.num_gates(), 3);
  EXPECT_EQ(report.count(LintCode::kFloatingInput), 1) << report.to_text();
}

TEST(LintParserIntegrationTest, OptOutSkipsLint) {
  ParseOptions options;
  options.lint = false;
  EXPECT_NO_THROW(parse_bench_string("INPUT(a)\nOUTPUT(a)\n", "", options));
}

// Circuitgen integration: every generated benchmark lints with zero errors
// against its own ground truth (the acceptance bar for `rebert_cli lint`).
TEST(LintCircuitgenIntegrationTest, GeneratedBenchmarkLintsClean) {
  const gen::GeneratedCircuit c = gen::generate_benchmark("b03", 0.25);
  LintOptions options;
  options.words = &c.words;
  const LintReport report = lint_netlist(c.netlist, options);
  EXPECT_TRUE(report.clean()) << report.to_text();
}

}  // namespace
}  // namespace rebert::nl
