// Randomized property tests over the netlist tool chain.
//
// A seeded random netlist generator (DAG of mixed-arity gates + DFFs)
// drives the invariants that must hold for *every* netlist, not just the
// benchmark suite:
//   * decompose_to_2input preserves function and leaves only 2-input gates,
//   * corrupt_netlist preserves function at every R-Index,
//   * optimize_netlist preserves function and never grows the gate count,
//   * .bench and Verilog writers round-trip through their parsers,
//   * the full chain (corrupt -> optimize -> round-trip) composes.
#include <gtest/gtest.h>

#include "nl/corruption.h"
#include "nl/decompose.h"
#include "nl/opt.h"
#include "nl/parser.h"
#include "nl/simulate.h"
#include "nl/verilog.h"
#include "util/rng.h"

namespace rebert::nl {
namespace {

// Random DAG netlist: `num_gates` combinational gates over `num_inputs`
// PIs and `num_dffs` flip-flops (whose D pins are wired to random nets at
// the end). Gate types and arities are random; outputs are a random sample.
Netlist random_netlist(std::uint64_t seed, int num_inputs = 6,
                       int num_gates = 60, int num_dffs = 5) {
  util::Rng rng(seed);
  Netlist netlist("rand_" + std::to_string(seed));
  std::vector<GateId> nets;
  for (int i = 0; i < num_inputs; ++i)
    nets.push_back(netlist.add_input("in" + std::to_string(i)));
  // A couple of constants for spice.
  nets.push_back(netlist.add_const(false, "k0"));
  nets.push_back(netlist.add_const(true, "k1"));
  // DFFs early so combinational logic can read state.
  std::vector<GateId> dffs;
  for (int i = 0; i < num_dffs; ++i) {
    const GateId self = static_cast<GateId>(netlist.num_gates());
    const GateId q = netlist.add_dff(self, "q" + std::to_string(i));
    dffs.push_back(q);
    nets.push_back(q);
  }

  const GateType kTypes[] = {GateType::kAnd, GateType::kOr, GateType::kNand,
                             GateType::kNor, GateType::kXor,
                             GateType::kXnor, GateType::kNot, GateType::kBuf,
                             GateType::kMux};
  auto pick_net = [&] {
    return nets[static_cast<std::size_t>(
        rng.uniform_u64(nets.size()))];
  };
  for (int g = 0; g < num_gates; ++g) {
    const GateType type = kTypes[rng.uniform_int(0, 8)];
    std::vector<GateId> fanins;
    if (type == GateType::kNot || type == GateType::kBuf) {
      fanins = {pick_net()};
    } else if (type == GateType::kMux) {
      fanins = {pick_net(), pick_net(), pick_net()};
    } else {
      const int arity = rng.uniform_int(2, 4);
      for (int a = 0; a < arity; ++a) fanins.push_back(pick_net());
    }
    nets.push_back(netlist.add_gate(type, std::move(fanins)));
  }
  // Wire DFF D pins to late nets (feedback through state).
  for (GateId q : dffs) {
    const GateId d = nets[static_cast<std::size_t>(
        nets.size() - 1 - rng.uniform_u64(nets.size() / 2))];
    netlist.replace_gate(q, GateType::kDff, {d});
  }
  // Random outputs.
  for (int i = 0; i < 4; ++i) netlist.mark_output(pick_net());
  netlist.mark_output(nets.back());
  netlist.validate();
  return netlist;
}

EquivalenceOptions quick_eq() {
  return {.num_sequences = 4, .cycles_per_sequence = 16, .seed = 99};
}

class RandomNetlistProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomNetlistProperty, DecomposePreservesFunction) {
  const Netlist n = random_netlist(static_cast<std::uint64_t>(GetParam()));
  const Netlist d = decompose_to_2input(n);
  EXPECT_TRUE(is_2input(d));
  const EquivalenceResult eq = check_equivalence(n, d, quick_eq());
  EXPECT_TRUE(eq.equivalent) << "seed " << GetParam() << " net "
                             << eq.mismatched_net;
}

TEST_P(RandomNetlistProperty, CorruptionPreservesFunction) {
  const Netlist n = decompose_to_2input(
      random_netlist(static_cast<std::uint64_t>(GetParam())));
  for (double r : {0.3, 1.0}) {
    const Netlist c = corrupt_netlist(
        n, {.r_index = r, .seed = static_cast<std::uint64_t>(GetParam())});
    const EquivalenceResult eq = check_equivalence(n, c, quick_eq());
    EXPECT_TRUE(eq.equivalent) << "seed " << GetParam() << " r " << r
                               << " net " << eq.mismatched_net;
  }
}

TEST_P(RandomNetlistProperty, OptimizePreservesFunctionAndShrinks) {
  const Netlist n = random_netlist(static_cast<std::uint64_t>(GetParam()));
  OptReport report;
  const Netlist o = optimize_netlist(n, {}, &report);
  EXPECT_LE(report.gates_after, report.gates_before + 5)
      << "output rematerialization may add a few BUFs but no more";
  const EquivalenceResult eq = check_equivalence(n, o, quick_eq());
  EXPECT_TRUE(eq.equivalent) << "seed " << GetParam() << " net "
                             << eq.mismatched_net;
}

TEST_P(RandomNetlistProperty, BenchRoundTrip) {
  const Netlist n = random_netlist(static_cast<std::uint64_t>(GetParam()));
  const Netlist reparsed = parse_bench_string(write_bench_string(n));
  EXPECT_TRUE(check_equivalence(n, reparsed, quick_eq()).equivalent)
      << "seed " << GetParam();
}

TEST_P(RandomNetlistProperty, VerilogRoundTrip) {
  const Netlist n = random_netlist(static_cast<std::uint64_t>(GetParam()));
  const Netlist reparsed = parse_verilog_string(write_verilog_string(n));
  EXPECT_TRUE(check_equivalence(n, reparsed, quick_eq()).equivalent)
      << "seed " << GetParam();
}

TEST_P(RandomNetlistProperty, FullChainComposes) {
  const Netlist n = decompose_to_2input(
      random_netlist(static_cast<std::uint64_t>(GetParam())));
  const Netlist c = corrupt_netlist(
      n, {.r_index = 0.6, .seed = static_cast<std::uint64_t>(GetParam())});
  const Netlist o = optimize_netlist(c);
  const Netlist round =
      parse_verilog_string(write_verilog_string(o));
  const EquivalenceResult eq = check_equivalence(n, round, quick_eq());
  EXPECT_TRUE(eq.equivalent) << "seed " << GetParam() << " net "
                             << eq.mismatched_net;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetlistProperty,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace rebert::nl
