#include "nl/words.h"

#include <gtest/gtest.h>

#include "nl/corruption.h"
#include "nl/parser.h"
#include "util/check.h"

namespace rebert::nl {
namespace {

Netlist two_word_circuit() {
  return parse_bench_string(R"(
INPUT(a)
INPUT(b)
d0 = AND(a, b)
d1 = OR(a, b)
d2 = XOR(a, b)
r0 = DFF(d0)
r1 = DFF(d1)
s0 = DFF(d2)
flag = DFF(a)
OUTPUT(d2)
)");
}

TEST(BitsTest, ExtractsAllDffsInOrder) {
  const Netlist n = two_word_circuit();
  const std::vector<Bit> bits = extract_bits(n);
  ASSERT_EQ(bits.size(), 4u);
  EXPECT_EQ(bits[0].name, "r0");
  EXPECT_EQ(bits[1].name, "r1");
  EXPECT_EQ(bits[2].name, "s0");
  EXPECT_EQ(bits[3].name, "flag");
  EXPECT_EQ(bits[0].d_net, *n.find("d0"));
  EXPECT_EQ(bits[0].dff, *n.find("r0"));
}

TEST(BitsTest, StableAcrossCorruption) {
  const Netlist n = two_word_circuit();
  const Netlist c = corrupt_netlist(n, {.r_index = 1.0, .seed = 3});
  const std::vector<Bit> before = extract_bits(n);
  const std::vector<Bit> after = extract_bits(c);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i].name, after[i].name);
}

TEST(WordMapTest, LabelsForAssignsWordIndexes) {
  const Netlist n = two_word_circuit();
  const std::vector<Bit> bits = extract_bits(n);
  WordMap map;
  map.add_word("r", {"r0", "r1"});
  map.add_word("s", {"s0"});
  const std::vector<int> labels = map.labels_for(bits);
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], labels[1]);  // r0, r1 together
  EXPECT_NE(labels[0], labels[2]);
  // 'flag' is not in any word: it gets a fresh singleton label.
  EXPECT_NE(labels[3], labels[0]);
  EXPECT_NE(labels[3], labels[2]);
  EXPECT_GE(labels[3], map.num_words());
}

TEST(WordMapTest, UncoveredBitsGetDistinctSingletons) {
  const Netlist n = two_word_circuit();
  const std::vector<Bit> bits = extract_bits(n);
  WordMap map;  // empty: every bit uncovered
  const std::vector<int> labels = map.labels_for(bits);
  for (std::size_t i = 0; i < labels.size(); ++i)
    for (std::size_t j = i + 1; j < labels.size(); ++j)
      EXPECT_NE(labels[i], labels[j]);
}

TEST(WordMapTest, RejectsDuplicates) {
  WordMap map;
  map.add_word("w", {"b0", "b1"});
  EXPECT_THROW(map.add_word("w", {"b2"}), util::CheckError);
  EXPECT_THROW(map.add_word("v", {"b1"}), util::CheckError);  // bit reused
  EXPECT_THROW(map.add_word("empty", {}), util::CheckError);
}

TEST(WordMapTest, FromLabelsRoundTrip) {
  const Netlist n = two_word_circuit();
  const std::vector<Bit> bits = extract_bits(n);
  const std::vector<int> labels{0, 0, 1, 2};
  const WordMap map = WordMap::from_labels(bits, labels);
  EXPECT_EQ(map.num_words(), 3);
  const std::vector<int> relabeled = map.labels_for(bits);
  // Label values may differ but the partition must be identical.
  EXPECT_EQ(relabeled[0], relabeled[1]);
  EXPECT_NE(relabeled[0], relabeled[2]);
  EXPECT_NE(relabeled[2], relabeled[3]);
}

TEST(WordMapTest, SizeHistogram) {
  WordMap map;
  map.add_word("a", {"a0", "a1", "a2", "a3"});
  map.add_word("b", {"b0", "b1", "b2", "b3"});
  map.add_word("c", {"c0"});
  const auto histogram = map.size_histogram();
  EXPECT_EQ(histogram.at(4), 2);
  EXPECT_EQ(histogram.at(1), 1);
  EXPECT_EQ(histogram.size(), 2u);
}

TEST(WordMapTest, FromLabelsRejectsSizeMismatch) {
  const Netlist n = two_word_circuit();
  const std::vector<Bit> bits = extract_bits(n);
  EXPECT_THROW(WordMap::from_labels(bits, {0, 1}), util::CheckError);
}

}  // namespace
}  // namespace rebert::nl
