#include "nl/cone.h"

#include <gtest/gtest.h>

#include "nl/parser.h"
#include "util/check.h"

namespace rebert::nl {
namespace {

Netlist paper_figure2_circuit() {
  // Figure 2's example tree: root AND, left child NOT(X0), right child
  // OR(X1, X2), extracted with k=3.
  return parse_bench_string(R"(
INPUT(x0)
INPUT(x1)
INPUT(x2)
n_not = NOT(x0)
n_or = OR(x1, x2)
bit = AND(n_not, n_or)
q = DFF(bit)
OUTPUT(q)
)");
}

TEST(ConeTest, PaperFigure2Tree) {
  const Netlist n = paper_figure2_circuit();
  const ConeTree tree = extract_cone(n, *n.find("bit"), 3);
  // AND, NOT, x0, OR, x1, x2 in pre-order.
  ASSERT_EQ(tree.size(), 6);
  EXPECT_EQ(tree.root().type, GateType::kAnd);
  EXPECT_FALSE(tree.root().is_leaf);
  EXPECT_EQ(tree.depth, 2);  // two combinational levels below-and-including
  EXPECT_EQ(cone_to_sexpr(tree, /*generalize_leaves=*/true),
            "(AND (NOT X) (OR X X))");
  EXPECT_EQ(cone_to_sexpr(tree, /*generalize_leaves=*/false),
            "(AND (NOT x0) (OR x1 x2))");
}

TEST(ConeTest, DepthLimitCutsTree) {
  const Netlist n = paper_figure2_circuit();
  const ConeTree tree = extract_cone(n, *n.find("bit"), 1);
  // Only the root expands; children become leaves.
  ASSERT_EQ(tree.size(), 3);
  EXPECT_EQ(cone_to_sexpr(tree, true), "(AND X X)");
  // The leaves keep their net names for the non-generalized view.
  EXPECT_EQ(cone_to_sexpr(tree, false), "(AND n_not n_or)");
}

TEST(ConeTest, NonCombinationalRootIsSingleLeaf) {
  const Netlist n = paper_figure2_circuit();
  const ConeTree tree = extract_cone(n, *n.find("x0"), 4);
  ASSERT_EQ(tree.size(), 1);
  EXPECT_TRUE(tree.root().is_leaf);
  EXPECT_EQ(tree.depth, 0);
  EXPECT_EQ(cone_to_sexpr(tree, false), "x0");
}

TEST(ConeTest, DffOutputIsCutPoint) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
q = DFF(b)
b = AND(a, q)
OUTPUT(b)
)");
  const ConeTree tree = extract_cone(n, *n.find("b"), 5);
  // AND expands; q is a leaf even though its D cone continues behind it.
  ASSERT_EQ(tree.size(), 3);
  EXPECT_EQ(cone_to_sexpr(tree, false), "(AND a q)");
  EXPECT_EQ(tree.nodes[2].type, GateType::kDff);
  EXPECT_TRUE(tree.nodes[2].is_leaf);
}

TEST(ConeTest, SharedLogicIsDuplicated) {
  // Diamond: shared = AND(a,b); bit = OR(NOT(shared), shared).
  const Netlist n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
shared = AND(a, b)
inv = NOT(shared)
bit = OR(inv, shared)
OUTPUT(bit)
)");
  const ConeTree tree = extract_cone(n, *n.find("bit"), 4);
  EXPECT_EQ(cone_to_sexpr(tree, false), "(OR (NOT (AND a b)) (AND a b))");
  // 'shared' appears twice: tree form duplicates DAG nodes.
  int and_nodes = 0;
  for (const ConeNode& node : tree.nodes)
    if (!node.is_leaf && node.type == GateType::kAnd) ++and_nodes;
  EXPECT_EQ(and_nodes, 2);
}

TEST(ConeTest, PreorderIsIdentityLayout) {
  const Netlist n = paper_figure2_circuit();
  const ConeTree tree = extract_cone(n, *n.find("bit"), 3);
  const std::vector<int> order = tree.preorder();
  ASSERT_EQ(static_cast<int>(order.size()), tree.size());
  for (int i = 0; i < tree.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ConeTest, NumLeaves) {
  const Netlist n = paper_figure2_circuit();
  EXPECT_EQ(extract_cone(n, *n.find("bit"), 3).num_leaves(), 3);
  EXPECT_EQ(extract_cone(n, *n.find("bit"), 1).num_leaves(), 2);
}

TEST(ConeTest, RejectsBadArguments) {
  const Netlist n = paper_figure2_circuit();
  EXPECT_THROW(extract_cone(n, *n.find("bit"), 0), util::CheckError);
  EXPECT_THROW(extract_cone(n, 999, 3), util::CheckError);
}

TEST(ConeTest, WideGateProducesNaryTree) {
  const Netlist n = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
bit = NAND(a, b, c)
OUTPUT(bit)
)");
  const ConeTree tree = extract_cone(n, *n.find("bit"), 2);
  EXPECT_EQ(tree.root().children.size(), 3u);
  EXPECT_EQ(cone_to_sexpr(tree, true), "(NAND X X X)");
}

}  // namespace
}  // namespace rebert::nl
