#include <gtest/gtest.h>

#include <cstdio>

#include "circuitgen/suite.h"
#include "nl/words.h"
#include "util/check.h"

namespace rebert::nl {
namespace {

TEST(WordsIoTest, TextRoundTrip) {
  WordMap map;
  map.add_word("counter", {"c0", "c1", "c2"});
  map.add_word("flag", {"f0"});
  const std::string text = map.to_text();
  const WordMap reparsed = WordMap::from_text(text);
  EXPECT_EQ(reparsed.num_words(), 2);
  EXPECT_EQ(reparsed.words()[0].first, "counter");
  EXPECT_EQ(reparsed.words()[0].second,
            (std::vector<std::string>{"c0", "c1", "c2"}));
  EXPECT_EQ(reparsed.words()[1].second, std::vector<std::string>{"f0"});
}

TEST(WordsIoTest, CommentsAndBlanksIgnored) {
  const WordMap map = WordMap::from_text(
      "# header\n\nw: a b\n   # another comment\nv: c\n");
  EXPECT_EQ(map.num_words(), 2);
}

TEST(WordsIoTest, MalformedLinesRejected) {
  EXPECT_THROW(WordMap::from_text("no colon here\n"), util::CheckError);
  EXPECT_THROW(WordMap::from_text(": bits without name\n"),
               util::CheckError);
  EXPECT_THROW(WordMap::from_text("empty:\n"), util::CheckError);
  EXPECT_THROW(WordMap::from_text("w: a\nw: b\n"), util::CheckError);
}

TEST(WordsIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/rebert_words_test.txt";
  const gen::GeneratedCircuit circuit = gen::generate_benchmark("b03");
  circuit.words.save(path);
  const WordMap loaded = WordMap::load(path);
  EXPECT_EQ(loaded.num_words(), circuit.words.num_words());
  // Labels derived from the loaded map match the originals exactly.
  const auto bits = extract_bits(circuit.netlist);
  EXPECT_EQ(loaded.labels_for(bits), circuit.words.labels_for(bits));
  std::remove(path.c_str());
}

TEST(WordsIoTest, MissingFileRejected) {
  EXPECT_THROW(WordMap::load("/does/not/exist.words"), util::CheckError);
}

}  // namespace
}  // namespace rebert::nl
