// Backend selection: spec parsing, availability probing, runtime
// switching, and graceful fallback when a requested backend is missing.
#include "kernels/backend.h"

#include <gtest/gtest.h>

#include "kernels/kernels.h"

namespace rebert::kernels {
namespace {

TEST(BackendSpecTest, AutoPicksAnAvailableBackend) {
  Backend backend = Backend::kScalar;
  std::string error;
  ASSERT_TRUE(parse_backend_spec("auto", &backend, &error)) << error;
  EXPECT_TRUE(backend_available(backend));
  // Auto must pick the best available backend, not just any.
  if (avx2_available()) EXPECT_EQ(backend, Backend::kAvx2);
}

TEST(BackendSpecTest, EmptySpecBehavesLikeAuto) {
  Backend from_empty = Backend::kScalar;
  Backend from_auto = Backend::kAvx2;
  ASSERT_TRUE(parse_backend_spec("", &from_empty, nullptr));
  ASSERT_TRUE(parse_backend_spec("auto", &from_auto, nullptr));
  EXPECT_EQ(from_empty, from_auto);
}

TEST(BackendSpecTest, ScalarAlwaysParsesAndIsAvailable) {
  Backend backend = Backend::kAvx2;
  ASSERT_TRUE(parse_backend_spec("scalar", &backend, nullptr));
  EXPECT_EQ(backend, Backend::kScalar);
  EXPECT_TRUE(backend_available(Backend::kScalar));
}

TEST(BackendSpecTest, Avx2SpecFallsBackInsteadOfFailing) {
  // On an AVX2 host this selects AVX2; elsewhere it degrades to scalar
  // with a warning. Either way the spec is accepted: a fleet-wide config
  // must not crash the one pre-AVX2 box.
  Backend backend = Backend::kScalar;
  ASSERT_TRUE(parse_backend_spec("avx2", &backend, nullptr));
  EXPECT_EQ(backend,
            avx2_available() ? Backend::kAvx2 : Backend::kScalar);
}

TEST(BackendSpecTest, UnknownSpecIsRejectedWithMessage) {
  Backend backend = Backend::kScalar;
  std::string error;
  EXPECT_FALSE(parse_backend_spec("sse9", &backend, &error));
  EXPECT_NE(error.find("auto, scalar, or avx2"), std::string::npos);
}

TEST(BackendTest, NamesRoundTrip) {
  EXPECT_STREQ(backend_name(Backend::kScalar), "scalar");
  EXPECT_STREQ(backend_name(Backend::kAvx2), "avx2");
}

TEST(BackendTest, SetBackendIsObservable) {
  set_backend(Backend::kScalar);
  EXPECT_EQ(active_backend(), Backend::kScalar);
  EXPECT_EQ(&active_table(), &table_for(Backend::kScalar));
  if (avx2_available()) {
    set_backend(Backend::kAvx2);
    EXPECT_EQ(active_backend(), Backend::kAvx2);
    EXPECT_EQ(&active_table(), &table_for(Backend::kAvx2));
    EXPECT_NE(&table_for(Backend::kAvx2), &table_for(Backend::kScalar));
  }
  set_backend(Backend::kScalar);
}

TEST(BackendTest, ApplyBackendSpecSwitchesTheActiveTable) {
  std::string error;
  ASSERT_TRUE(apply_backend_spec("scalar", &error)) << error;
  EXPECT_EQ(active_backend(), Backend::kScalar);
  ASSERT_TRUE(apply_backend_spec("auto", &error)) << error;
  EXPECT_TRUE(backend_available(active_backend()));
  EXPECT_FALSE(apply_backend_spec("bogus", &error));
  ASSERT_TRUE(apply_backend_spec("scalar", &error)) << error;
}

TEST(BackendTest, EveryTableEntryIsPopulated) {
  for (Backend backend : {Backend::kScalar, Backend::kAvx2}) {
    if (!backend_available(backend)) continue;
    const KernelTable& table = table_for(backend);
    EXPECT_NE(table.gemm, nullptr);
    EXPECT_NE(table.gemm_tn, nullptr);
    EXPECT_NE(table.gemm_nt, nullptr);
    EXPECT_NE(table.add_row_bias, nullptr);
    EXPECT_NE(table.axpy, nullptr);
    EXPECT_NE(table.scale, nullptr);
    EXPECT_NE(table.softmax_rows, nullptr);
    EXPECT_NE(table.softmax_rows_backward, nullptr);
    EXPECT_NE(table.layer_norm, nullptr);
    EXPECT_NE(table.gelu, nullptr);
    EXPECT_NE(table.gelu_backward, nullptr);
  }
}

}  // namespace
}  // namespace rebert::kernels
