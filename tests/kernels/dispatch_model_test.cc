// Model-level behavior under the dispatched kernel subsystem: gradients
// stay finite-difference-correct on every backend, the scoring hot path
// stays bit-identical across thread counts per backend, and scalar vs
// AVX2 agree within the documented parity tolerance end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "bert/attention.h"
#include "bert/config.h"
#include "circuitgen/suite.h"
#include "kernels/backend.h"
#include "rebert/pipeline.h"
#include "rebert/scoring.h"
#include "rebert/vocab.h"
#include "tensor/gradcheck.h"
#include "tensor/layers.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace rebert {
namespace {

using core::ScoreMatrix;
using tensor::Tensor;

/// Runs the test body once per available backend, restoring the previous
/// backend afterwards so test order never matters.
class DispatchModelTest
    : public ::testing::TestWithParam<kernels::Backend> {
 protected:
  void SetUp() override {
    if (!kernels::backend_available(GetParam()))
      GTEST_SKIP() << "backend " << kernels::backend_name(GetParam())
                   << " unavailable on this host";
    previous_ = kernels::active_backend();
    kernels::set_backend(GetParam());
  }
  void TearDown() override {
    if (!IsSkipped()) kernels::set_backend(previous_);
  }

 private:
  kernels::Backend previous_ = kernels::Backend::kScalar;
};

TEST_P(DispatchModelTest, LinearGradcheckPasses) {
  util::Rng rng(21);
  tensor::Linear linear("lin", 9, 11, rng);
  const Tensor x = Tensor::randn({5, 9}, rng);
  tensor::Linear::Cache cache;
  linear.forward(x, &cache);
  const Tensor dy = Tensor::full({5, 11}, 1.0f);
  linear.backward(dy, cache);
  const auto loss = [&] { return linear.forward(x, nullptr).sum(); };
  const auto weight_result =
      tensor::check_gradient(&linear.weight.value, linear.weight.grad, loss);
  EXPECT_TRUE(weight_result.ok)
      << "weight max_rel_error=" << weight_result.max_rel_error;
  const auto bias_result =
      tensor::check_gradient(&linear.bias.value, linear.bias.grad, loss);
  EXPECT_TRUE(bias_result.ok)
      << "bias max_rel_error=" << bias_result.max_rel_error;
}

TEST_P(DispatchModelTest, LayerNormGradcheckPasses) {
  util::Rng rng(22);
  tensor::LayerNorm norm("ln", 13);
  const Tensor x = Tensor::randn({4, 13}, rng, 2.0f);
  tensor::LayerNorm::Cache cache;
  norm.forward(x, &cache);
  const Tensor dy = Tensor::full({4, 13}, 1.0f);
  norm.backward(dy, cache);
  const auto loss = [&] { return norm.forward(x, nullptr).sum(); };
  const auto result =
      tensor::check_gradient(&norm.gamma.value, norm.gamma.grad, loss);
  EXPECT_TRUE(result.ok) << "gamma max_rel_error=" << result.max_rel_error;
}

TEST_P(DispatchModelTest, GeluGradientMatchesFiniteDifferences) {
  util::Rng rng(23);
  Tensor x = Tensor::randn({3, 17}, rng, 2.0f);
  const Tensor dy = Tensor::full({3, 17}, 1.0f);
  const Tensor analytic = tensor::gelu_backward(dy, x);
  const auto loss = [&] { return tensor::gelu(x).sum(); };
  const auto result = tensor::check_gradient(&x, analytic, loss);
  EXPECT_TRUE(result.ok) << "gelu max_rel_error=" << result.max_rel_error;
}

TEST_P(DispatchModelTest, AttentionCachedAndUncachedForwardsAgree) {
  // The inference path routes projections and per-head temporaries
  // through the scratch arena; the training path keeps tensors for
  // backward. Same math, so outputs must match exactly.
  util::Rng rng(24);
  bert::BertConfig config;
  config.hidden = 24;
  config.num_heads = 3;
  bert::MultiHeadSelfAttention attention("attn", config, rng);
  const Tensor x = Tensor::randn({7, 24}, rng);
  bert::MultiHeadSelfAttention::Cache cache;
  const Tensor cached = attention.forward(x, &cache, /*valid_len=*/5);
  const Tensor uncached = attention.forward(x, nullptr, /*valid_len=*/5);
  ASSERT_TRUE(cached.same_shape(uncached));
  for (std::int64_t i = 0; i < cached.numel(); ++i)
    ASSERT_EQ(cached[i], uncached[i]) << "flat index " << i;
}

TEST_P(DispatchModelTest, AttentionPropagatesNaNInput) {
  // A NaN smuggled into the activations must surface in the output (the
  // graphcheck tripwire contract), whatever backend is dispatched.
  util::Rng rng(25);
  bert::BertConfig config;
  config.hidden = 16;
  config.num_heads = 2;
  bert::MultiHeadSelfAttention attention("attn", config, rng);
  Tensor x = Tensor::randn({5, 16}, rng);
  x.at(2, 3) = std::numeric_limits<float>::quiet_NaN();
  const Tensor y = attention.forward(x, nullptr, 0);
  bool any_nan = false;
  for (std::int64_t i = 0; i < y.numel(); ++i)
    any_nan = any_nan || std::isnan(y[i]);
  EXPECT_TRUE(any_nan);
}

// ---- scoring hot path --------------------------------------------------

struct ScoringFixture {
  ScoringFixture()
      : generated(gen::generate_benchmark("b03", 0.5)),
        tokenizer({.backtrace_depth = 4, .tree_code_dim = 8,
                   .max_seq_len = 128}),
        bits(tokenizer.tokenize_bits(generated.netlist)),
        model(make_config()) {}

  static bert::BertConfig make_config() {
    bert::BertConfig config = bert::eval_config(
        static_cast<int>(core::vocabulary().size()), 128);
    config.tree_code_dim = 8;
    config.hidden = 32;
    config.num_layers = 1;
    config.num_heads = 2;
    config.intermediate = 64;
    return config;
  }

  ScoreMatrix score(int threads) {
    core::ScoringOptions options;
    options.num_threads = threads;
    return core::score_all_pairs(bits, tokenizer, core::FilterOptions{},
                                 model, nullptr, options);
  }

  gen::GeneratedCircuit generated;
  core::Tokenizer tokenizer;
  std::vector<core::BitSequence> bits;
  bert::BertPairClassifier model;
};

TEST_P(DispatchModelTest, ScoringIsBitIdenticalAcrossThreadCounts) {
  ScoringFixture f;
  const ScoreMatrix serial = f.score(1);
  for (int threads : {2, 8}) {
    const ScoreMatrix parallel = f.score(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (int i = 0; i < serial.size(); ++i)
      for (int j = 0; j < serial.size(); ++j)
        ASSERT_EQ(serial.at(i, j), parallel.at(i, j))
            << "threads=" << threads << " cell (" << i << "," << j << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, DispatchModelTest,
    ::testing::Values(kernels::Backend::kScalar, kernels::Backend::kAvx2),
    [](const ::testing::TestParamInfo<kernels::Backend>& info) {
      return kernels::backend_name(info.param);
    });

TEST(BackendAgreementTest, ScalarAndAvx2ScoresAgreeWithinTolerance) {
  if (!kernels::avx2_available()) GTEST_SKIP() << "no AVX2 on this host";
  const kernels::Backend previous = kernels::active_backend();
  ScoringFixture f;
  kernels::set_backend(kernels::Backend::kScalar);
  const ScoreMatrix scalar_scores = f.score(1);
  kernels::set_backend(kernels::Backend::kAvx2);
  const ScoreMatrix avx2_scores = f.score(1);
  kernels::set_backend(previous);
  ASSERT_EQ(scalar_scores.size(), avx2_scores.size());
  for (int i = 0; i < scalar_scores.size(); ++i) {
    for (int j = 0; j < scalar_scores.size(); ++j) {
      // Scores are sigmoid outputs in [0, 1]; after a 1-layer model the
      // kernel-level tolerance comfortably bounds the drift.
      EXPECT_NEAR(scalar_scores.at(i, j), avx2_scores.at(i, j), 5e-3)
          << "cell (" << i << "," << j << ")";
    }
  }
}

}  // namespace
}  // namespace rebert
