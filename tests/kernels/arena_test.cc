// Scratch arena: alignment, scope rewind/reuse, growth and consolidation.
#include "kernels/arena.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>

#include "kernels/aligned.h"

namespace rebert::kernels {
namespace {

std::uintptr_t addr(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p);
}

TEST(ArenaTest, AllocationsAre64ByteAligned) {
  Arena arena;
  // Odd sizes on purpose: the bump pointer must round every allocation up
  // so the next one stays aligned.
  for (std::size_t n : {1u, 3u, 7u, 16u, 33u, 1000u}) {
    float* p = arena.alloc_floats(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(addr(p) % kAlignment, 0u) << "n=" << n;
  }
}

TEST(ArenaTest, ZeroSizeAllocationIsNonNull) {
  Arena arena;
  EXPECT_NE(arena.alloc_floats(0), nullptr);
}

TEST(ArenaTest, RewindReusesTheSameStorage) {
  Arena arena;
  const Arena::Mark mark = arena.mark();
  float* first = arena.alloc_floats(128);
  arena.rewind(mark);
  float* second = arena.alloc_floats(128);
  EXPECT_EQ(first, second);
  EXPECT_EQ(arena.bytes_in_use(), 128 * sizeof(float));
}

TEST(ArenaTest, ScopesNestLikeStackFrames) {
  Arena& arena = thread_arena();
  const std::size_t outside = arena.bytes_in_use();
  {
    ArenaScope outer;
    outer.floats(100);
    const std::size_t after_outer = arena.bytes_in_use();
    {
      ArenaScope inner;
      inner.floats(1000);
      EXPECT_GT(arena.bytes_in_use(), after_outer);
    }
    // Inner scope's allocations reclaimed, outer's retained.
    EXPECT_EQ(arena.bytes_in_use(), after_outer);
  }
  EXPECT_EQ(arena.bytes_in_use(), outside);
}

TEST(ArenaTest, GrowthPreservesLiveAllocations) {
  Arena arena;
  float* small = arena.alloc_floats(8);
  small[0] = 42.0f;
  // Force a new block (well past the 64 KiB first block).
  float* big = arena.alloc_floats(1u << 20);
  big[0] = 1.0f;
  EXPECT_EQ(small[0], 42.0f);
  EXPECT_GE(arena.block_count(), 2u);
}

TEST(ArenaTest, FullRewindConsolidatesFragmentedBlocks) {
  Arena arena;
  arena.alloc_floats(8);                       // block 1
  arena.alloc_floats((1u << 16) / sizeof(float));  // forces block 2
  ASSERT_GE(arena.block_count(), 2u);
  const std::size_t total = arena.capacity();
  arena.rewind(Arena::Mark{});  // full rewind
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_GE(arena.capacity(), total);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  // The consolidated block now fits what previously fragmented.
  float* p = arena.alloc_floats(total / sizeof(float));
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(ArenaTest, ThreadArenasAreDistinct) {
  Arena* main_arena = &thread_arena();
  Arena* worker_arena = nullptr;
  std::thread worker([&] { worker_arena = &thread_arena(); });
  worker.join();
  EXPECT_NE(main_arena, worker_arena);
}

#if defined(REBERT_ENABLE_DCHECKS)
TEST(ArenaTest, RewindPoisonsReclaimedMemoryInDebugBuilds) {
  Arena arena;
  const Arena::Mark mark = arena.mark();
  float* p = arena.alloc_floats(16);
  for (int i = 0; i < 16; ++i) p[i] = 1.0f;
  arena.rewind(mark);
  // Same storage, now NaN-filled: a use-after-rewind trips the NaN
  // tripwire instead of reading stale data.
  float* q = arena.alloc_floats(16);
  ASSERT_EQ(p, q);
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(std::isnan(q[i])) << i;
}
#endif

TEST(AlignedAllocatorTest, VectorStorageIs64ByteAligned) {
  for (std::size_t n : {1u, 5u, 63u, 64u, 1000u}) {
    AlignedFloatVector v(n, 0.0f);
    EXPECT_EQ(addr(v.data()) % kAlignment, 0u) << "n=" << n;
  }
}

}  // namespace
}  // namespace rebert::kernels
