// Scalar-vs-AVX2 parity: every kernel, over a randomized shape sweep that
// deliberately hits the ragged cases (odd rows/cols, 1xN, Nx1, tails
// shorter than the vector width, exact multiples of the register-block
// sizes). Tolerance is the documented policy from kernels/backend.h:
// |simd - scalar| <= kParityAtol + kParityRtol * |scalar|.
//
// Also pinned here: NaN/Inf propagation matches across backends (so the
// graphcheck tripwire fires identically), and each backend is
// bit-deterministic (identical output for identical input, run to run).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "kernels/backend.h"
#include "kernels/kernels.h"
#include "util/rng.h"

namespace rebert::kernels {
namespace {

bool near(float simd, float ref) {
  if (std::isnan(simd) || std::isnan(ref)) {
    return std::isnan(simd) == std::isnan(ref);
  }
  if (simd == ref) return true;  // covers +-Inf, where simd - ref is NaN
  return std::abs(simd - ref) <= kParityAtol + kParityRtol * std::abs(ref);
}

void expect_allclose(const std::vector<float>& simd,
                     const std::vector<float>& ref,
                     const std::string& what) {
  ASSERT_EQ(simd.size(), ref.size()) << what;
  for (std::size_t i = 0; i < simd.size(); ++i) {
    ASSERT_TRUE(near(simd[i], ref[i]))
        << what << " diverges at flat index " << i << ": simd=" << simd[i]
        << " scalar=" << ref[i];
  }
}

std::vector<float> randn(std::size_t n, util::Rng& rng, float stddev = 1.0f) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.gaussian(0.0, stddev));
  return v;
}

// The sweep: every ragged-tail class the register blocking can mishandle.
// {m, k, n} triples; elementwise/row kernels reuse m x n or m * n.
struct Shape {
  int m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},     // degenerate
    {1, 7, 1},     // Nx1 outputs
    {1, 64, 17},   // 1xN row, odd col tail
    {5, 3, 2},     // everything under the vector width
    {6, 16, 16},   // exact MR x NR block, vector-width k
    {7, 16, 16},   // one tail row
    {12, 8, 32},   // exact blocks all around
    {13, 9, 31},   // odd everything
    {17, 33, 5},   // tail columns under one vector
    {23, 1, 19},   // k=1 rank-1
    {64, 48, 64},  // bigger, block-aligned
    {61, 47, 63},  // bigger, fully ragged
};

class ParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!avx2_available()) GTEST_SKIP() << "no AVX2+FMA on this host";
  }
  const KernelTable& scalar = table_for(Backend::kScalar);
  const KernelTable& avx2 = table_for(Backend::kAvx2);
};

TEST_F(ParityTest, GemmSweep) {
  util::Rng rng(101);
  for (const Shape& s : kShapes) {
    const auto a = randn(static_cast<std::size_t>(s.m) * s.k, rng);
    const auto b = randn(static_cast<std::size_t>(s.k) * s.n, rng);
    std::vector<float> ref(static_cast<std::size_t>(s.m) * s.n);
    std::vector<float> got(ref.size());
    scalar.gemm(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    avx2.gemm(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    expect_allclose(got, ref, "gemm " + std::to_string(s.m) + "x" +
                                  std::to_string(s.k) + "x" +
                                  std::to_string(s.n));
  }
}

TEST_F(ParityTest, GemmTnSweep) {
  util::Rng rng(102);
  for (const Shape& s : kShapes) {
    const auto a = randn(static_cast<std::size_t>(s.m) * s.k, rng);
    const auto b = randn(static_cast<std::size_t>(s.m) * s.n, rng);
    std::vector<float> ref(static_cast<std::size_t>(s.k) * s.n);
    std::vector<float> got(ref.size());
    scalar.gemm_tn(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    avx2.gemm_tn(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    expect_allclose(got, ref, "gemm_tn");
  }
}

TEST_F(ParityTest, GemmNtSweep) {
  util::Rng rng(103);
  for (const Shape& s : kShapes) {
    const auto a = randn(static_cast<std::size_t>(s.m) * s.k, rng);
    const auto b = randn(static_cast<std::size_t>(s.n) * s.k, rng);
    std::vector<float> ref(static_cast<std::size_t>(s.m) * s.n);
    std::vector<float> got(ref.size());
    scalar.gemm_nt(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
    avx2.gemm_nt(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    expect_allclose(got, ref, "gemm_nt");
  }
}

TEST_F(ParityTest, ElementwiseSweep) {
  util::Rng rng(104);
  for (const Shape& s : kShapes) {
    const std::size_t total = static_cast<std::size_t>(s.m) * s.n;
    const auto x = randn(total, rng, 2.0f);
    const auto bias = randn(static_cast<std::size_t>(s.n), rng);

    auto ref = x;
    auto got = x;
    scalar.add_row_bias(ref.data(), bias.data(), s.m, s.n);
    avx2.add_row_bias(got.data(), bias.data(), s.m, s.n);
    expect_allclose(got, ref, "add_row_bias");

    ref = x;
    got = x;
    const auto other = randn(total, rng);
    scalar.axpy(ref.data(), other.data(), 0.37f,
                static_cast<std::int64_t>(total));
    avx2.axpy(got.data(), other.data(), 0.37f,
              static_cast<std::int64_t>(total));
    expect_allclose(got, ref, "axpy");

    ref = x;
    got = x;
    scalar.scale(ref.data(), -1.25f, static_cast<std::int64_t>(total));
    avx2.scale(got.data(), -1.25f, static_cast<std::int64_t>(total));
    expect_allclose(got, ref, "scale");
  }
}

TEST_F(ParityTest, SoftmaxSweep) {
  util::Rng rng(105);
  for (const Shape& s : kShapes) {
    const std::size_t total = static_cast<std::size_t>(s.m) * s.n;
    // Wide logits exercise the exp clamp; softmax must stay normalized.
    const auto x = randn(total, rng, 4.0f);
    auto ref = x;
    auto got = x;
    scalar.softmax_rows(ref.data(), s.m, s.n);
    avx2.softmax_rows(got.data(), s.m, s.n);
    expect_allclose(got, ref, "softmax_rows");

    std::vector<float> dref(total), dgot(total);
    const auto dy = randn(total, rng);
    scalar.softmax_rows_backward(dy.data(), ref.data(), dref.data(), s.m,
                                 s.n);
    avx2.softmax_rows_backward(dy.data(), got.data(), dgot.data(), s.m,
                               s.n);
    expect_allclose(dgot, dref, "softmax_rows_backward");
  }
}

TEST_F(ParityTest, LayerNormSweep) {
  util::Rng rng(106);
  for (const Shape& s : kShapes) {
    const std::size_t total = static_cast<std::size_t>(s.m) * s.n;
    const auto x = randn(total, rng, 3.0f);
    const auto gamma = randn(static_cast<std::size_t>(s.n), rng);
    const auto beta = randn(static_cast<std::size_t>(s.n), rng);
    std::vector<float> yref(total), ygot(total);
    std::vector<float> nref(total), ngot(total);
    std::vector<float> iref(static_cast<std::size_t>(s.m));
    std::vector<float> igot(static_cast<std::size_t>(s.m));
    scalar.layer_norm(x.data(), gamma.data(), beta.data(), 1e-5f, s.m, s.n,
                      yref.data(), nref.data(), iref.data());
    avx2.layer_norm(x.data(), gamma.data(), beta.data(), 1e-5f, s.m, s.n,
                    ygot.data(), ngot.data(), igot.data());
    expect_allclose(ygot, yref, "layer_norm y");
    expect_allclose(ngot, nref, "layer_norm normalized");
    expect_allclose(igot, iref, "layer_norm inv_std");

    // Null side outputs (the inference path) must produce the same y.
    std::vector<float> yonly(total);
    avx2.layer_norm(x.data(), gamma.data(), beta.data(), 1e-5f, s.m, s.n,
                    yonly.data(), nullptr, nullptr);
    EXPECT_EQ(std::memcmp(yonly.data(), ygot.data(),
                          total * sizeof(float)),
              0);
  }
}

TEST_F(ParityTest, GeluSweep) {
  util::Rng rng(107);
  for (const Shape& s : kShapes) {
    const std::size_t total = static_cast<std::size_t>(s.m) * s.n;
    const auto x = randn(total, rng, 3.0f);
    const auto dy = randn(total, rng);
    std::vector<float> ref(total), got(total);
    scalar.gelu(x.data(), ref.data(), static_cast<std::int64_t>(total));
    avx2.gelu(x.data(), got.data(), static_cast<std::int64_t>(total));
    expect_allclose(got, ref, "gelu");

    scalar.gelu_backward(dy.data(), x.data(), ref.data(),
                         static_cast<std::int64_t>(total));
    avx2.gelu_backward(dy.data(), x.data(), got.data(),
                       static_cast<std::int64_t>(total));
    expect_allclose(got, ref, "gelu_backward");
  }
}

// ---- NaN / Inf propagation --------------------------------------------

TEST_F(ParityTest, GemmPropagatesNaNIdentically) {
  util::Rng rng(108);
  const int m = 7, k = 19, n = 21;
  auto a = randn(static_cast<std::size_t>(m) * k, rng);
  const auto b = randn(static_cast<std::size_t>(k) * n, rng);
  a[5] = std::numeric_limits<float>::quiet_NaN();
  a[20] = 0.0f;  // a zero A entry must NOT suppress propagation
  std::vector<float> ref(static_cast<std::size_t>(m) * n);
  std::vector<float> got(ref.size());
  scalar.gemm(a.data(), b.data(), ref.data(), m, k, n);
  avx2.gemm(a.data(), b.data(), got.data(), m, k, n);
  int ref_nans = 0, got_nans = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ref_nans += std::isnan(ref[i]);
    got_nans += std::isnan(got[i]);
    EXPECT_EQ(std::isnan(ref[i]), std::isnan(got[i])) << i;
  }
  // The NaN in A row 0 poisons that whole C row on both backends.
  EXPECT_EQ(ref_nans, n);
  EXPECT_EQ(got_nans, n);
}

TEST_F(ParityTest, SoftmaxPoisonsNaNAndPlusInfRows) {
  util::Rng rng(109);
  const int rows = 4, cols = 21;
  auto x = randn(static_cast<std::size_t>(rows) * cols, rng);
  x[3] = std::numeric_limits<float>::quiet_NaN();             // row 0
  x[static_cast<std::size_t>(cols) + 7] =
      std::numeric_limits<float>::infinity();                 // row 1
  x[static_cast<std::size_t>(2) * cols + 1] =
      -std::numeric_limits<float>::infinity();                // row 2
  auto ref = x;
  auto got = x;
  scalar.softmax_rows(ref.data(), rows, cols);
  avx2.softmax_rows(got.data(), rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      const std::size_t idx = static_cast<std::size_t>(i) * cols + j;
      EXPECT_EQ(std::isnan(ref[idx]), std::isnan(got[idx]))
          << "row " << i << " col " << j;
    }
  }
  // Rows with NaN or +Inf poison entirely; a -Inf entry just gets weight
  // ~0 and the rest of the row stays a valid distribution.
  EXPECT_TRUE(std::isnan(ref[0]) && std::isnan(got[0]));
  EXPECT_TRUE(std::isnan(ref[cols]) && std::isnan(got[cols]));
  EXPECT_FALSE(std::isnan(ref[2 * cols]) || std::isnan(got[2 * cols]));
}

TEST_F(ParityTest, GeluPropagatesNonFiniteLanes) {
  std::vector<float> x = {-2.0f, -1.0f, 0.0f, 1.0f,
                          std::numeric_limits<float>::quiet_NaN(),
                          std::numeric_limits<float>::infinity(),
                          -std::numeric_limits<float>::infinity(), 2.0f,
                          0.5f};  // 9 elements: one full vector + tail
  std::vector<float> ref(x.size()), got(x.size());
  scalar.gelu(x.data(), ref.data(), static_cast<std::int64_t>(x.size()));
  avx2.gelu(x.data(), got.data(), static_cast<std::int64_t>(x.size()));
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(std::isnan(ref[i]), std::isnan(got[i])) << i;
    if (!std::isnan(ref[i])) EXPECT_TRUE(near(got[i], ref[i])) << i;
  }
}

// ---- determinism -------------------------------------------------------

TEST_F(ParityTest, EachBackendIsBitDeterministic) {
  util::Rng rng(110);
  const int m = 13, k = 37, n = 29;
  const auto a = randn(static_cast<std::size_t>(m) * k, rng);
  const auto b = randn(static_cast<std::size_t>(k) * n, rng);
  for (const KernelTable* table : {&scalar, &avx2}) {
    std::vector<float> first(static_cast<std::size_t>(m) * n);
    std::vector<float> second(first.size());
    table->gemm(a.data(), b.data(), first.data(), m, k, n);
    table->gemm(a.data(), b.data(), second.data(), m, k, n);
    EXPECT_EQ(std::memcmp(first.data(), second.data(),
                          first.size() * sizeof(float)),
              0);

    auto s1 = a, s2 = a;
    table->softmax_rows(s1.data(), m, k);
    table->softmax_rows(s2.data(), m, k);
    EXPECT_EQ(
        std::memcmp(s1.data(), s2.data(), s1.size() * sizeof(float)), 0);
  }
}

}  // namespace
}  // namespace rebert::kernels
