// Message-layer contracts: request/response roundtrips through the frame
// encoding, response_to_line parity with the text protocol's formatting
// (the property that keeps both encodings one protocol), and rejection of
// every malformed payload shape before a field is trusted.
#include <gtest/gtest.h>

#include <string>

#include "serve/protocol.h"
#include "wire/frame.h"
#include "wire/message.h"

namespace rebert::wire {
namespace {

std::string payload_of(const std::string& encoded) {
  FrameReader reader;
  reader.feed(encoded);
  Frame frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::kFrame)
      << error;
  return frame.payload;
}

TEST(MessageTest, RequestRoundTrip) {
  Request request;
  request.verb = Verb::kScore;
  request.bench = "b07";
  request.bit_a = "alu_out[3]";
  request.bit_b = "alu_out[4]";
  request.model = "large";
  request.deadline_ms = 250;

  Request decoded;
  std::string error;
  ASSERT_TRUE(decode_request_payload(payload_of(encode_request(request)),
                                     &decoded, &error))
      << error;
  EXPECT_EQ(decoded.verb, Verb::kScore);
  EXPECT_EQ(decoded.bench, "b07");
  EXPECT_EQ(decoded.bit_a, "alu_out[3]");
  EXPECT_EQ(decoded.bit_b, "alu_out[4]");
  EXPECT_EQ(decoded.model, "large");
  EXPECT_EQ(decoded.deadline_ms, 250u);
}

TEST(MessageTest, RequestWithEmptyFieldsRoundTrips) {
  Request request;
  request.verb = Verb::kStats;

  Request decoded;
  std::string error;
  ASSERT_TRUE(decode_request_payload(payload_of(encode_request(request)),
                                     &decoded, &error))
      << error;
  EXPECT_EQ(decoded.verb, Verb::kStats);
  EXPECT_TRUE(decoded.bench.empty());
  EXPECT_EQ(decoded.deadline_ms, 0u);
}

TEST(MessageTest, ResponseRoundTripKeepsEveryField) {
  Response response;
  response.verb = Verb::kRecover;
  response.status = Status::kOk;
  response.flags = kFlagDegraded;
  response.score = 0.0;
  response.body = "words=12 matched=10";

  Response decoded;
  std::string error;
  ASSERT_TRUE(decode_response_payload(payload_of(encode_response(response)),
                                      &decoded, &error))
      << error;
  EXPECT_EQ(decoded.verb, Verb::kRecover);
  EXPECT_EQ(decoded.status, Status::kOk);
  EXPECT_EQ(decoded.flags, kFlagDegraded);
  EXPECT_EQ(decoded.body, "words=12 matched=10");
}

TEST(MessageTest, ScoreRoundTripIsBitExact) {
  const double score = 0.123456789012345;
  Response decoded;
  std::string error;
  ASSERT_TRUE(decode_response_payload(
      payload_of(encode_response(score_response(score))), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.score, score);  // f64 on the wire, no text rounding
  EXPECT_TRUE(decoded.flags & kFlagScore);
}

TEST(MessageTest, MalformedRequestPayloadsRejected) {
  Request decoded;
  std::string error;
  // Shorter than the header.
  EXPECT_FALSE(decode_request_payload("tiny", &decoded, &error));
  EXPECT_NE(error.find("header"), std::string::npos) << error;

  std::string good = payload_of(encode_request([] {
    Request r;
    r.verb = Verb::kScore;
    r.bench = "b07";
    r.bit_a = "a";
    r.bit_b = "b";
    return r;
  }()));
  // Unknown verb.
  std::string bad = good;
  bad[0] = 42;
  EXPECT_FALSE(decode_request_payload(bad, &decoded, &error));
  EXPECT_NE(error.find("verb"), std::string::npos) << error;
  // Reserved bits.
  bad = good;
  bad[1] = 1;
  EXPECT_FALSE(decode_request_payload(bad, &decoded, &error));
  EXPECT_NE(error.find("reserved"), std::string::npos) << error;
  // Field lengths no longer tile the payload: clip the last byte.
  bad = good.substr(0, good.size() - 1);
  EXPECT_FALSE(decode_request_payload(bad, &decoded, &error));
  EXPECT_NE(error.find("lengths"), std::string::npos) << error;
  // Trailing garbage is equally a length mismatch.
  bad = good + "z";
  EXPECT_FALSE(decode_request_payload(bad, &decoded, &error));
}

TEST(MessageTest, MalformedResponsePayloadsRejected) {
  Response decoded;
  std::string error;
  EXPECT_FALSE(decode_response_payload("", &decoded, &error));

  std::string good =
      payload_of(encode_response(ok_response(Verb::kStats, "threads=4")));
  std::string bad = good;
  bad[1] = 9;  // unknown status
  EXPECT_FALSE(decode_response_payload(bad, &decoded, &error));
  EXPECT_NE(error.find("status"), std::string::npos) << error;
  bad = good;
  bad[2] = 9;  // unknown error code
  EXPECT_FALSE(decode_response_payload(bad, &decoded, &error));
  EXPECT_NE(error.find("code"), std::string::npos) << error;
  bad = good.substr(0, good.size() - 1);  // body shorter than declared
  EXPECT_FALSE(decode_response_payload(bad, &decoded, &error));
}

// response_to_line must render the exact bytes the text protocol produces
// for the same outcome — pinned against serve/protocol.h's formatters so
// the two can never drift apart silently.
TEST(MessageTest, ResponseToLineMatchesTextProtocol) {
  using serve::format_error;
  using serve::format_ok;
  using serve::format_overloaded;

  EXPECT_EQ(response_to_line(ok_response(Verb::kStats, "threads=4")),
            format_ok("threads=4"));
  EXPECT_EQ(response_to_line(ok_response(Verb::kQuit, "bye")),
            format_ok("bye"));
  EXPECT_EQ(response_to_line(score_response(0.25)), format_ok("0.250000"));
  EXPECT_EQ(response_to_line(error_response(Verb::kHelp, "unknown verb")),
            format_error("unknown verb"));
  EXPECT_EQ(response_to_line(overloaded_response(50)),
            format_overloaded(50));
  EXPECT_EQ(serve::parse_retry_after_ms(
                response_to_line(overloaded_response(75))),
            75);
  EXPECT_EQ(response_to_line(deadline_response(Verb::kScore)),
            format_error("deadline_exceeded"));
  EXPECT_EQ(response_to_line(no_backend_response(40)),
            "err no_backend retry_after_ms=40");

  Response degraded = ok_response(Verb::kRecover, "words=3 matched=2");
  degraded.flags |= kFlagDegraded;
  EXPECT_EQ(response_to_line(degraded),
            format_ok("words=3 matched=2 degraded=structural"));
}

TEST(MessageTest, ToWireFromWireRoundTripsTheParsedRequest) {
  const serve::Request parsed = serve::parse_request(
      "score b07 alu[0] alu[1] model=small deadline_ms=100");
  ASSERT_EQ(parsed.type, serve::RequestType::kScore) << parsed.error;
  const serve::Request back = serve::from_wire(serve::to_wire(parsed));
  EXPECT_EQ(back.type, serve::RequestType::kScore);
  EXPECT_EQ(back.bench, "b07");
  EXPECT_EQ(back.bit_a, "alu[0]");
  EXPECT_EQ(back.bit_b, "alu[1]");
  EXPECT_EQ(back.model, "small");
  EXPECT_EQ(back.deadline_ms, 100);
}

}  // namespace
}  // namespace rebert::wire
