// Binary-frame corruption matrix: every way a frame can arrive broken —
// bad magic, reserved bits, unknown type, truncated header, length over
// the cap, checksum mismatch, peer vanishing mid-frame — is detected
// before a payload byte is trusted, and any framing error poisons the
// reader permanently (there is no resync point in a length-prefixed
// stream).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "persist/snapshot.h"
#include "util/check.h"
#include "wire/frame.h"

namespace rebert::wire {
namespace {

Frame read_one(FrameReader& reader) {
  Frame frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::kFrame)
      << error;
  return frame;
}

TEST(FrameTest, RoundTripPreservesTypePayloadAndRawBytes) {
  const std::string encoded = encode_frame(FrameType::kRequest, "hello");
  ASSERT_EQ(encoded.size(), kFrameHeaderBytes + 5);

  FrameReader reader;
  reader.feed(encoded);
  const Frame frame = read_one(reader);
  EXPECT_EQ(frame.type, FrameType::kRequest);
  EXPECT_EQ(frame.payload, "hello");
  EXPECT_EQ(frame.raw, encoded);  // what a relay forwards verbatim
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameTest, EmptyPayloadIsAValidFrame) {
  FrameReader reader;
  reader.feed(encode_frame(FrameType::kHelloAck, ""));
  const Frame frame = read_one(reader);
  EXPECT_EQ(frame.type, FrameType::kHelloAck);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameTest, DribbledBytesYieldFramesOnlyWhenComplete) {
  // A frame arriving one byte at a time must produce kNeedMore until the
  // last byte lands — the reader never guesses at a partial payload.
  const std::string encoded = encode_frame(FrameType::kResponse, "payload");
  FrameReader reader;
  Frame frame;
  std::string error;
  for (std::size_t i = 0; i + 1 < encoded.size(); ++i) {
    reader.feed(encoded.data() + i, 1);
    EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::kNeedMore);
  }
  reader.feed(encoded.data() + encoded.size() - 1, 1);
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.payload, "payload");
}

TEST(FrameTest, TwoFramesInOneFeedComeOutInOrder) {
  FrameReader reader;
  reader.feed(encode_frame(FrameType::kRequest, "first") +
              encode_frame(FrameType::kResponse, "second"));
  EXPECT_EQ(read_one(reader).payload, "first");
  EXPECT_EQ(read_one(reader).payload, "second");
  Frame frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::kNeedMore);
}

TEST(FrameTest, BadMagicPoisonsTheReader) {
  std::string encoded = encode_frame(FrameType::kRequest, "x");
  encoded[0] = 'h';  // what a text client's first byte would look like
  FrameReader reader;
  reader.feed(encoded);
  Frame frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::kError);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  // Poisoned: even a pristine frame afterwards is refused, because the
  // stream position can no longer be trusted.
  reader.feed(encode_frame(FrameType::kRequest, "fine"));
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::kError);
}

TEST(FrameTest, ReservedBitsRejected) {
  std::string encoded = encode_frame(FrameType::kRequest, "x");
  encoded[2] = 1;  // u16 reserved at bytes 2..3
  FrameReader reader;
  reader.feed(encoded);
  Frame frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::kError);
  EXPECT_NE(error.find("reserved"), std::string::npos) << error;
}

TEST(FrameTest, UnknownTypeRejected) {
  std::string encoded = encode_frame(FrameType::kRequest, "x");
  encoded[1] = 99;
  FrameReader reader;
  reader.feed(encoded);
  Frame frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::kError);
  EXPECT_NE(error.find("type"), std::string::npos) << error;
}

TEST(FrameTest, LengthOverCapRejectedWithoutWaitingForPayload) {
  // The length field is validated from the header alone: a hostile length
  // must be refused immediately, not after buffering gigabytes.
  std::string encoded = encode_frame(FrameType::kRequest, "x");
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(&encoded[4], &huge, sizeof(huge));  // u32 payload_len
  FrameReader reader;
  reader.feed(encoded.data(), kFrameHeaderBytes);  // header only
  Frame frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::kError);
  EXPECT_NE(error.find("cap"), std::string::npos) << error;
}

TEST(FrameTest, ChecksumMismatchRejected) {
  std::string encoded = encode_frame(FrameType::kRequest, "payload");
  encoded[kFrameHeaderBytes] ^= 0x01;  // flip one payload bit
  FrameReader reader;
  reader.feed(encoded);
  Frame frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::kError);
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(FrameTest, MidFrameDisconnectLeavesBytesBuffered) {
  // The reader cannot see EOF, but its owner can: buffered() > 0 when the
  // connection closes is the "peer vanished mid-frame" signal both the
  // server and Client act on.
  const std::string encoded = encode_frame(FrameType::kRequest, "payload");
  FrameReader reader;
  reader.feed(encoded.data(), encoded.size() - 2);
  Frame frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::kNeedMore);
  EXPECT_GT(reader.buffered(), 0u);

  reader.reset();
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameTest, ResetClearsPoisoning) {
  std::string bad = encode_frame(FrameType::kRequest, "x");
  bad[0] = 0;
  FrameReader reader;
  reader.feed(bad);
  Frame frame;
  std::string error;
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::kError);

  // reset() is what Client::close() calls so a reconnect starts clean.
  reader.reset();
  reader.feed(encode_frame(FrameType::kResponse, "ok"));
  EXPECT_EQ(reader.next(&frame, &error), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.payload, "ok");
}

TEST(FrameTest, EncodeRefusesOversizedPayload) {
  const std::string big(kMaxFramePayload + 1, 'a');
  EXPECT_THROW((void)encode_frame(FrameType::kRequest, big),
               util::CheckError);
}

TEST(FrameTest, HelloRoundTripCarriesTheVersion) {
  FrameReader reader;
  reader.feed(encode_hello());
  const Frame hello = read_one(reader);
  EXPECT_EQ(hello.type, FrameType::kHello);
  std::uint16_t version = 0;
  std::string error;
  ASSERT_TRUE(decode_hello_payload(hello.payload, &version, &error))
      << error;
  EXPECT_EQ(version, kWireVersion);

  reader.feed(encode_hello_ack());
  EXPECT_EQ(read_one(reader).type, FrameType::kHelloAck);
}

TEST(FrameTest, HelloPayloadValidation) {
  std::uint16_t version = 0;
  std::string error;
  EXPECT_FALSE(decode_hello_payload("short", &version, &error));
  const std::string wrong_tag("XXWP\x01\x00\x00\x00", 8);
  EXPECT_FALSE(decode_hello_payload(wrong_tag, &version, &error));
  EXPECT_NE(error.find("tag"), std::string::npos) << error;
}

TEST(FrameTest, Fnv1aMatchesThePersistImplementation) {
  // The wire and persist layers each keep a leaf-local FNV-1a; this pins
  // them to the same function so a checksum computed by one side always
  // verifies on the other.
  const std::string data = "the quick brown fox jumps over the lazy dog";
  EXPECT_EQ(fnv1a(data.data(), data.size()),
            persist::fnv1a(data.data(), data.size()));
  EXPECT_EQ(fnv1a(nullptr, 0), persist::kFnv1aInit);
}

}  // namespace
}  // namespace rebert::wire
