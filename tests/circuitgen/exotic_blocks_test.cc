// Behavioural tests for the exotic sequential blocks (LFSR, Gray counter,
// Johnson counter, one-hot FSM): each has a crisp invariant that random
// simulation can check exactly.
#include <gtest/gtest.h>

#include "circuitgen/blocks.h"
#include "nl/decompose.h"
#include "nl/simulate.h"
#include "nl/words.h"
#include "rebert/word_typing.h"

namespace rebert::gen {
namespace {

struct Built {
  nl::Netlist netlist{"t"};
  std::vector<std::string> bits;
  std::vector<nl::GateId> dffs;
};

Built build(BlockType type, int width, std::uint64_t seed = 42) {
  Built out;
  nl::WordMap words;
  util::Rng rng(seed);
  BlockBuilder builder(&out.netlist, &words, &rng);
  builder.build({type, width}, "w");
  out.bits = words.words()[0].second;
  for (const std::string& name : out.bits)
    out.dffs.push_back(*out.netlist.find(name));
  return out;
}

std::vector<bool> state_of(const nl::Simulator& sim, const Built& b) {
  std::vector<bool> state;
  state.reserve(b.dffs.size());
  for (nl::GateId id : b.dffs) state.push_back(sim.value(id));
  return state;
}

TEST(LfsrTest, SelfStartsAndCyclesThroughManyStates) {
  const Built b = build(BlockType::kLfsr, 5);
  nl::Simulator sim(b.netlist);
  sim.reset();
  std::set<std::vector<bool>> seen;
  for (int cycle = 0; cycle < 64; ++cycle) {
    sim.eval_combinational();
    sim.step();
    sim.eval_combinational();
    seen.insert(state_of(sim, b));
  }
  // An XNOR 5-bit LFSR visits 31 states (all but all-ones).
  EXPECT_GE(seen.size(), 16u);
  const std::vector<bool> all_ones(5, true);
  EXPECT_EQ(seen.count(all_ones), 0u);
}

TEST(LfsrTest, ShiftBodyCopiesBits) {
  const Built b = build(BlockType::kLfsr, 6);
  nl::Simulator sim(b.netlist);
  sim.reset();
  std::vector<bool> previous(6, false);
  for (int cycle = 0; cycle < 32; ++cycle) {
    sim.eval_combinational();
    sim.step();
    sim.eval_combinational();
    const std::vector<bool> current = state_of(sim, b);
    if (cycle > 0) {
      for (int i = 1; i < 6; ++i)
        EXPECT_EQ(current[static_cast<std::size_t>(i)],
                  previous[static_cast<std::size_t>(i - 1)])
            << "bit " << i << " cycle " << cycle;
    }
    previous = current;
  }
}

TEST(GrayCounterTest, ExactlyOneBitFlipsPerActiveCycle) {
  const Built b = build(BlockType::kGrayCounter, 4);
  // Control net is the single PI ("en"); drive it high.
  nl::Simulator sim(b.netlist);
  sim.reset();
  std::vector<bool> ones(b.netlist.inputs().size(), true);
  std::vector<bool> previous(4, false);
  for (int cycle = 0; cycle < 40; ++cycle) {
    sim.set_inputs(ones);
    sim.eval_combinational();
    sim.step();
    sim.eval_combinational();
    const std::vector<bool> current = state_of(sim, b);
    int flips = 0;
    for (int i = 0; i < 4; ++i)
      if (current[static_cast<std::size_t>(i)] !=
          previous[static_cast<std::size_t>(i)])
        ++flips;
    EXPECT_EQ(flips, 1) << "cycle " << cycle;
    previous = current;
  }
}

TEST(GrayCounterTest, VisitsAllStates) {
  const Built b = build(BlockType::kGrayCounter, 3);
  nl::Simulator sim(b.netlist);
  sim.reset();
  std::vector<bool> ones(b.netlist.inputs().size(), true);
  std::set<std::vector<bool>> seen;
  for (int cycle = 0; cycle < 16; ++cycle) {
    sim.set_inputs(ones);
    sim.eval_combinational();
    sim.step();
    sim.eval_combinational();
    seen.insert(state_of(sim, b));
  }
  EXPECT_EQ(seen.size(), 8u);  // full 3-bit Gray cycle
}

TEST(JohnsonCounterTest, WalkingOnesPattern) {
  const Built b = build(BlockType::kJohnsonCounter, 4);
  nl::Simulator sim(b.netlist);
  sim.reset();
  // From 0000 the Johnson sequence is 1000, 1100, 1110, 1111, 0111, ...
  // (in our bit order q0 is the injection point).
  std::vector<std::vector<bool>> expected{
      {true, false, false, false}, {true, true, false, false},
      {true, true, true, false},   {true, true, true, true},
      {false, true, true, true},   {false, false, true, true},
      {false, false, false, true}, {false, false, false, false}};
  for (const auto& want : expected) {
    sim.eval_combinational();
    sim.step();
    sim.eval_combinational();
    EXPECT_EQ(state_of(sim, b), want);
  }
}

TEST(JohnsonCounterTest, ClassifiedAsShiftRegister) {
  const Built b = build(BlockType::kJohnsonCounter, 5);
  const core::WordAnalysis analysis = core::analyze_word(b.netlist, b.bits);
  EXPECT_EQ(analysis.kind, core::WordKind::kShiftRegister)
      << core::word_kind_name(analysis.kind);
}

TEST(OneHotFsmTest, ReseedsAndStaysOneHot) {
  const Built b = build(BlockType::kOneHotFsm, 5);
  nl::Simulator sim(b.netlist);
  sim.reset();
  util::Rng rng(3);
  int popcount_violations = 0;
  for (int cycle = 0; cycle < 64; ++cycle) {
    std::vector<bool> inputs(b.netlist.inputs().size());
    for (std::size_t i = 0; i < inputs.size(); ++i)
      inputs[i] = rng.bernoulli(0.5);
    sim.set_inputs(inputs);
    sim.eval_combinational();
    sim.step();
    sim.eval_combinational();
    if (cycle == 0) continue;  // reseed cycle
    const std::vector<bool> state = state_of(sim, b);
    int population = 0;
    for (bool v : state) population += v ? 1 : 0;
    if (population != 1) ++popcount_violations;
  }
  EXPECT_EQ(popcount_violations, 0);
}

TEST(ExoticBlocksTest, AllDecomposeAndValidate) {
  for (BlockType type :
       {BlockType::kLfsr, BlockType::kGrayCounter,
        BlockType::kJohnsonCounter, BlockType::kOneHotFsm}) {
    const Built b = build(type, 6);
    EXPECT_NO_THROW(b.netlist.validate()) << block_type_name(type);
    const nl::Netlist d = nl::decompose_to_2input(b.netlist);
    EXPECT_TRUE(nl::check_equivalence(b.netlist, d).equivalent)
        << block_type_name(type);
  }
}

TEST(ExoticBlocksTest, DegenerateWidthsFallBack) {
  // Width-1 LFSR/Gray/one-hot fall back to simpler blocks rather than
  // producing broken feedback.
  for (BlockType type : {BlockType::kLfsr, BlockType::kGrayCounter,
                         BlockType::kOneHotFsm}) {
    const Built b = build(type, 1);
    EXPECT_EQ(b.bits.size(), 1u) << block_type_name(type);
    EXPECT_NO_THROW(b.netlist.validate());
  }
}

}  // namespace
}  // namespace rebert::gen
