#include "circuitgen/trojan.h"

#include <gtest/gtest.h>

#include "circuitgen/suite.h"
#include "nl/simulate.h"
#include "nl/words.h"
#include "util/check.h"

namespace rebert::gen {
namespace {

TEST(TrojanTest, InsertionProducesValidNetlist) {
  const GeneratedCircuit c = generate_benchmark("b05");
  TrojanInfo info;
  const nl::Netlist infected = insert_trojan(c.netlist, {}, &info);
  EXPECT_NO_THROW(infected.validate());
  EXPECT_EQ(info.trigger_nets.size(), 4u);
  EXPECT_EQ(info.trojan_ffs.size(), 3u);  // 2 counter bits + armed flag
  EXPECT_FALSE(info.victim_net.empty());
  EXPECT_GT(info.rewired_consumers, 0);
  // Trojan FFs exist and are DFFs.
  for (const std::string& name : info.trojan_ffs) {
    const auto id = infected.find(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_EQ(infected.gate(*id).type, nl::GateType::kDff);
  }
}

TEST(TrojanTest, DormantUntilArmed) {
  // Starting from reset, the armed flag is 0, so the tap equals the victim
  // and every original signal computes its original value — for at least
  // the first cycle (the counter needs 2^bits - 1 trigger hits plus the
  // arming cycle before the payload can fire).
  const GeneratedCircuit c = generate_benchmark("b08");
  TrojanInfo info;
  const nl::Netlist infected = insert_trojan(c.netlist, {}, &info);

  nl::Simulator clean(c.netlist);
  nl::Simulator dirty(infected);
  clean.reset();
  dirty.reset();
  util::Rng rng(5);
  // Compare original primary outputs on the very first evaluation.
  std::vector<bool> inputs(c.netlist.inputs().size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    inputs[i] = rng.bernoulli(0.5);
  clean.set_inputs(inputs);
  clean.eval_combinational();
  // Input order matches: insert_trojan copies the netlist.
  dirty.set_inputs(inputs);
  dirty.eval_combinational();
  for (nl::GateId out_id : c.netlist.outputs()) {
    const std::string& name = c.netlist.gate(out_id).name;
    const auto dirty_id = infected.find(name);
    ASSERT_TRUE(dirty_id.has_value());
    EXPECT_EQ(clean.value(out_id), dirty.value(*dirty_id)) << name;
  }
}

TEST(TrojanTest, EventuallyFiresUnderRandomStimulus) {
  // With a narrow trigger the Trojan arms under enough random cycles, and
  // from then on the corrupted net diverges from the victim.
  const GeneratedCircuit c = generate_benchmark("b08");
  TrojanOptions options;
  options.trigger_width = 1;  // easy trigger for the test
  options.counter_bits = 1;
  TrojanInfo info;
  const nl::Netlist infected = insert_trojan(c.netlist, options, &info);

  nl::Simulator sim(infected);
  sim.reset();
  util::Rng rng(9);
  const nl::GateId armed = *infected.find("troj_armed");
  const nl::GateId victim = *infected.find(info.victim_net);
  const nl::GateId tap = *infected.find(info.corrupted_net);
  bool fired = false;
  for (int cycle = 0; cycle < 200 && !fired; ++cycle) {
    std::vector<bool> inputs(infected.inputs().size());
    for (std::size_t i = 0; i < inputs.size(); ++i)
      inputs[i] = rng.bernoulli(0.5);
    sim.set_inputs(inputs);
    sim.eval_combinational();
    if (sim.value(armed)) {
      fired = true;
      EXPECT_NE(sim.value(victim), sim.value(tap));
    }
    sim.step();
  }
  EXPECT_TRUE(fired) << "trigger never armed in 200 cycles";
}

TEST(TrojanTest, TrojanFfsAreOutsideGroundTruthWords) {
  const GeneratedCircuit c = generate_benchmark("b05");
  TrojanInfo info;
  const nl::Netlist infected = insert_trojan(c.netlist, {}, &info);
  const auto bits = nl::extract_bits(infected);
  const std::vector<int> labels = c.words.labels_for(bits);
  // Trojan FFs receive fresh singleton labels beyond the true words.
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool is_trojan =
        std::find(info.trojan_ffs.begin(), info.trojan_ffs.end(),
                  bits[i].name) != info.trojan_ffs.end();
    if (is_trojan) {
      EXPECT_GE(labels[i], c.words.num_words());
    }
  }
}

TEST(TrojanTest, DeterministicAndSeedSensitive) {
  const GeneratedCircuit c = generate_benchmark("b05");
  TrojanInfo a, b, d;
  insert_trojan(c.netlist, {.seed = 1}, &a);
  insert_trojan(c.netlist, {.seed = 1}, &b);
  insert_trojan(c.netlist, {.seed = 2}, &d);
  EXPECT_EQ(a.trigger_nets, b.trigger_nets);
  EXPECT_EQ(a.victim_net, b.victim_net);
  EXPECT_NE(a.trigger_nets, d.trigger_nets);
}

TEST(TrojanTest, RejectsTinyNetlists) {
  nl::Netlist tiny;
  tiny.add_input("a");
  tiny.add_gate(nl::GateType::kNot, {0}, "x");
  tiny.mark_output(1);
  EXPECT_THROW(insert_trojan(tiny, {}, nullptr), util::CheckError);
}

}  // namespace
}  // namespace rebert::gen
