#include "circuitgen/suite.h"

#include <gtest/gtest.h>

#include "nl/decompose.h"
#include "nl/corruption.h"
#include "nl/simulate.h"
#include "util/check.h"

namespace rebert::gen {
namespace {

TEST(SpecTest, MakeSpecHitsTargetsExactly) {
  const CircuitSpec spec = make_spec("x", 53, 10, 20, 1);
  int ffs = 0;
  for (const BlockSpec& b : spec.blocks) ffs += b.width;
  EXPECT_EQ(ffs, 53);
  EXPECT_EQ(static_cast<int>(spec.blocks.size()), 10);
}

TEST(SpecTest, SmallBudgets) {
  const CircuitSpec spec = make_spec("tiny", 2, 2, 0, 1);
  EXPECT_EQ(spec.blocks.size(), 2u);
  EXPECT_EQ(spec.blocks[0].width + spec.blocks[1].width, 2);
  EXPECT_THROW(make_spec("bad", 1, 2, 0, 1), util::CheckError);
  EXPECT_THROW(make_spec("bad", 5, 0, 0, 1), util::CheckError);
}

TEST(SuiteTest, TwelveBenchmarksInTableOrder) {
  const auto& names = benchmark_names();
  ASSERT_EQ(names.size(), 12u);
  EXPECT_EQ(names.front(), "b03");
  EXPECT_EQ(names.back(), "b18");
  const auto specs = itc99_suite_specs();
  ASSERT_EQ(specs.size(), 12u);
  for (std::size_t i = 0; i < specs.size(); ++i)
    EXPECT_EQ(specs[i].name, names[i]);
}

TEST(SuiteTest, GeneratedCircuitMatchesTableOneFfCounts) {
  // Full-scale FF counts equal Table I; checked for the small benches
  // (generating b17/b18 here would slow the unit suite; covered by the
  // Table I bench binary).
  const struct {
    const char* name;
    int ffs;
    int words;
  } expectations[] = {
      {"b03", 30, 7}, {"b04", 66, 8}, {"b08", 21, 5}, {"b11", 31, 5}};
  for (const auto& e : expectations) {
    const GeneratedCircuit c = generate_benchmark(e.name);
    EXPECT_EQ(static_cast<int>(c.netlist.dffs().size()), e.ffs) << e.name;
    EXPECT_EQ(c.words.num_words(), e.words) << e.name;
  }
}

TEST(SuiteTest, GroundTruthCoversEveryFlipFlop) {
  const GeneratedCircuit c = generate_benchmark("b03");
  const auto bits = nl::extract_bits(c.netlist);
  const std::vector<int> labels = c.words.labels_for(bits);
  for (std::size_t i = 0; i < labels.size(); ++i)
    EXPECT_LT(labels[i], c.words.num_words())
        << "bit " << bits[i].name << " not covered by any word";
}

TEST(SuiteTest, OutputIs2InputDecomposed) {
  const GeneratedCircuit c = generate_benchmark("b05");
  EXPECT_TRUE(nl::is_2input(c.netlist));
  c.netlist.validate();
}

TEST(SuiteTest, DeterministicAcrossCalls) {
  const GeneratedCircuit a = generate_benchmark("b07");
  const GeneratedCircuit b = generate_benchmark("b07");
  ASSERT_EQ(a.netlist.num_gates(), b.netlist.num_gates());
  for (nl::GateId id = 0; id < a.netlist.num_gates(); ++id) {
    EXPECT_EQ(a.netlist.gate(id).type, b.netlist.gate(id).type);
    EXPECT_EQ(a.netlist.gate(id).name, b.netlist.gate(id).name);
  }
}

TEST(SuiteTest, DifferentBenchmarksDiffer) {
  const GeneratedCircuit a = generate_benchmark("b03");
  const GeneratedCircuit b = generate_benchmark("b08");
  EXPECT_NE(a.netlist.num_gates(), b.netlist.num_gates());
}

TEST(SuiteTest, ScaleShrinksCircuits) {
  const GeneratedCircuit full = generate_benchmark("b12", 1.0);
  const GeneratedCircuit half = generate_benchmark("b12", 0.5);
  EXPECT_LT(half.netlist.dffs().size(), full.netlist.dffs().size());
  EXPECT_LT(half.words.num_words(), full.words.num_words());
  EXPECT_GE(half.words.num_words(), 2);
}

TEST(SuiteTest, RejectsBadArguments) {
  EXPECT_THROW(generate_benchmark("b99"), util::CheckError);
  EXPECT_THROW(itc99_suite_specs(0.0), util::CheckError);
  EXPECT_THROW(itc99_suite_specs(1.5), util::CheckError);
}

TEST(SuiteTest, CorruptionPreservesGeneratedCircuitFunction) {
  const GeneratedCircuit c = generate_benchmark("b08");
  const nl::Netlist corrupted =
      nl::corrupt_netlist(c.netlist, {.r_index = 0.6, .seed = 11});
  const nl::EquivalenceResult eq =
      nl::check_equivalence(c.netlist, corrupted, {.num_sequences = 4,
                                                   .cycles_per_sequence = 16});
  EXPECT_TRUE(eq.equivalent) << eq.mismatched_net;
}

TEST(SuiteTest, WordSizesAreRealistic) {
  const GeneratedCircuit c = generate_benchmark("b12");
  const auto histogram = c.words.size_histogram();
  int multi_bit_words = 0;
  for (const auto& [size, count] : histogram)
    if (size > 1) multi_bit_words += count;
  EXPECT_GT(multi_bit_words, 0);
}

class SuiteGenerationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteGenerationTest, SmallAndMediumBenchmarksValidate) {
  const GeneratedCircuit c = generate_benchmark(GetParam());
  EXPECT_NO_THROW(c.netlist.validate());
  EXPECT_GT(c.netlist.stats().num_comb_gates, 0);
  EXPECT_EQ(c.netlist.name(), GetParam());
  // Every word bit resolves to a DFF.
  for (const auto& [word, bit_names] : c.words.words())
    for (const std::string& bit : bit_names) {
      auto id = c.netlist.find(bit);
      ASSERT_TRUE(id.has_value()) << bit;
      EXPECT_EQ(c.netlist.gate(*id).type, nl::GateType::kDff);
    }
}

INSTANTIATE_TEST_SUITE_P(FirstTen, SuiteGenerationTest,
                         ::testing::Values("b03", "b04", "b05", "b07", "b08",
                                           "b11", "b12", "b13", "b14",
                                           "b15"));

}  // namespace
}  // namespace rebert::gen
