#include "circuitgen/blocks.h"

#include <gtest/gtest.h>

#include "nl/decompose.h"
#include "util/check.h"
#include "nl/simulate.h"
#include "nl/words.h"

namespace rebert::gen {
namespace {

struct Fixture {
  nl::Netlist netlist{"test"};
  nl::WordMap words;
  util::Rng rng{42};
  BlockBuilder builder{&netlist, &words, &rng};
};

TEST(BlockBuilderTest, EnableRegHasRightShape) {
  Fixture f;
  f.builder.build({BlockType::kEnableReg, 8}, "r");
  EXPECT_EQ(f.netlist.dffs().size(), 8u);
  EXPECT_EQ(f.words.num_words(), 1);
  EXPECT_EQ(f.words.words()[0].second.size(), 8u);
  EXPECT_EQ(f.words.words()[0].second[0], "r_0");
  f.netlist.validate();
}

TEST(BlockBuilderTest, EnableRegHoldsValueWithoutEnable) {
  Fixture f;
  f.builder.build({BlockType::kEnableReg, 2}, "r");
  nl::Simulator sim(f.netlist);
  sim.reset();
  // All inputs 0 (enable low): state stays 0 regardless of data.
  std::vector<bool> zeros(f.netlist.inputs().size(), false);
  for (int cycle = 0; cycle < 4; ++cycle) {
    sim.set_inputs(zeros);
    sim.eval_combinational();
    sim.step();
  }
  EXPECT_EQ(sim.state_values(), (std::vector<bool>{false, false}));
}

TEST(BlockBuilderTest, CounterCountsWhenEnabled) {
  Fixture f;
  f.builder.build({BlockType::kCounter, 4}, "c");
  nl::Simulator sim(f.netlist);
  sim.reset();
  // Drive every input high: the enable (whatever slot it landed in) is 1.
  std::vector<bool> ones(f.netlist.inputs().size(), true);
  for (int cycle = 0; cycle < 10; ++cycle) {
    sim.set_inputs(ones);
    sim.eval_combinational();
    sim.step();
    int value = 0;
    const auto state = sim.state_values();
    for (std::size_t i = 0; i < state.size(); ++i)
      value |= state[i] ? (1 << i) : 0;
    EXPECT_EQ(value, (cycle + 1) % 16) << "cycle " << cycle;
  }
}

TEST(BlockBuilderTest, AccumulatorAddsOperand) {
  Fixture f;
  f.builder.build({BlockType::kAccumulator, 4}, "a");
  // Operand bus came from fresh PIs (empty pool at start).
  ASSERT_EQ(f.netlist.inputs().size(), 4u);
  nl::Simulator sim(f.netlist);
  sim.reset();
  // x = 3 every cycle: accumulator sequence 3, 6, 9, ...
  auto set_x = [&](int v) {
    std::vector<bool> in(4);
    for (int i = 0; i < 4; ++i) in[i] = (v >> i) & 1;
    sim.set_inputs(in);
  };
  int expected = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    set_x(3);
    sim.eval_combinational();
    sim.step();
    expected = (expected + 3) % 16;
    int value = 0;
    const auto state = sim.state_values();
    for (std::size_t i = 0; i < state.size(); ++i)
      value |= state[i] ? (1 << i) : 0;
    EXPECT_EQ(value, expected) << "cycle " << cycle;
  }
}

TEST(BlockBuilderTest, ShiftRegShiftsWhenNotLoading) {
  Fixture f;
  f.builder.build({BlockType::kShiftReg, 4}, "s");
  f.netlist.validate();
  EXPECT_EQ(f.netlist.dffs().size(), 4u);
  EXPECT_EQ(f.words.num_words(), 1);
}

TEST(BlockBuilderTest, FsmProducesIrregularButValidLogic) {
  Fixture f;
  f.builder.build({BlockType::kFsm, 5}, "fsm");
  f.netlist.validate();
  EXPECT_EQ(f.netlist.dffs().size(), 5u);
  // Next-state logic exists: combinational gate count > 0.
  EXPECT_GT(f.netlist.stats().num_comb_gates, 5);
}

TEST(BlockBuilderTest, FlagsAreOneBitWords) {
  Fixture f;
  f.builder.build({BlockType::kEnableReg, 4}, "r");
  f.builder.build({BlockType::kMuxReg, 4}, "m");
  f.builder.build({BlockType::kCompareFlag, 1}, "eq");
  f.builder.build({BlockType::kParityFlag, 1}, "p");
  EXPECT_EQ(f.words.num_words(), 4);
  EXPECT_EQ(f.words.words()[2].second.size(), 1u);
  EXPECT_EQ(f.words.words()[3].second.size(), 1u);
  f.netlist.validate();
}

TEST(BlockBuilderTest, EveryBlockTypeBuildsValidNetlist) {
  for (BlockType type :
       {BlockType::kEnableReg, BlockType::kCounter, BlockType::kAccumulator,
        BlockType::kShiftReg, BlockType::kMuxReg, BlockType::kFsm,
        BlockType::kCompareFlag, BlockType::kParityFlag}) {
    Fixture f;
    f.builder.build({type, 6}, "blk");
    EXPECT_NO_THROW(f.netlist.validate()) << block_type_name(type);
    EXPECT_EQ(f.words.num_words(), 1) << block_type_name(type);
  }
}

TEST(BlockBuilderTest, BlocksShareSignalsThroughPool) {
  // Operand buses reuse earlier word outputs with probability 0.6; across
  // several seeds the average fresh-PI count must sit well below the
  // no-sharing worst case (4 data buses + serial + controls = 35).
  double total_fresh = 0.0;
  const int kSeeds = 8;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    nl::Netlist netlist{"test"};
    nl::WordMap words;
    util::Rng rng{static_cast<std::uint64_t>(seed)};
    BlockBuilder builder{&netlist, &words, &rng};
    builder.build({BlockType::kEnableReg, 8}, "r0");
    const std::size_t inputs_after_first = netlist.inputs().size();
    builder.build({BlockType::kMuxReg, 8}, "r1");
    builder.build({BlockType::kAccumulator, 8}, "r2");
    builder.build({BlockType::kShiftReg, 8}, "r3");
    total_fresh +=
        static_cast<double>(netlist.inputs().size() - inputs_after_first);
  }
  EXPECT_LT(total_fresh / kSeeds, 28.0);
}

TEST(BlockBuilderTest, GlueDoesNotTouchWords) {
  Fixture f;
  f.builder.build({BlockType::kCounter, 4}, "c");
  const auto bits_before = nl::extract_bits(f.netlist);
  f.builder.add_glue(40);
  const auto bits_after = nl::extract_bits(f.netlist);
  ASSERT_EQ(bits_before.size(), bits_after.size());
  for (std::size_t i = 0; i < bits_before.size(); ++i) {
    EXPECT_EQ(bits_before[i].name, bits_after[i].name);
    EXPECT_EQ(bits_before[i].d_net, bits_after[i].d_net);
  }
  f.netlist.validate();
  EXPECT_GT(f.netlist.outputs().size(), 0u);
}

TEST(BlockBuilderTest, DecomposableOutput) {
  Fixture f;
  for (BlockType type :
       {BlockType::kEnableReg, BlockType::kShiftReg, BlockType::kMuxReg})
    f.builder.build({type, 4}, std::string("w") + block_type_name(type));
  const nl::Netlist d = nl::decompose_to_2input(f.netlist);
  EXPECT_TRUE(nl::is_2input(d));
  EXPECT_TRUE(nl::check_equivalence(f.netlist, d).equivalent);
}

TEST(BlockBuilderTest, DeterministicForSameSeed) {
  Fixture f1, f2;  // both use seed 42
  f1.builder.build({BlockType::kFsm, 6}, "fsm");
  f2.builder.build({BlockType::kFsm, 6}, "fsm");
  ASSERT_EQ(f1.netlist.num_gates(), f2.netlist.num_gates());
  for (nl::GateId id = 0; id < f1.netlist.num_gates(); ++id) {
    EXPECT_EQ(f1.netlist.gate(id).type, f2.netlist.gate(id).type);
    EXPECT_EQ(f1.netlist.gate(id).fanins, f2.netlist.gate(id).fanins);
  }
}

TEST(BlockBuilderTest, RejectsZeroWidth) {
  Fixture f;
  EXPECT_THROW(f.builder.build({BlockType::kCounter, 0}, "bad"),
               util::CheckError);
}

}  // namespace
}  // namespace rebert::gen
