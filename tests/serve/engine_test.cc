// InferenceEngine + ServeLoop behaviour: micro-batched scoring, the shared
// cache, concurrent request safety, and the stdio transport.
#include "serve/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/serve_loop.h"
#include "util/check.h"
#include "util/string_utils.h"

namespace rebert::serve {
namespace {

EngineOptions small_options(int threads, int batch) {
  EngineOptions options;
  options.num_threads = threads;
  options.batch_size = batch;
  options.suite_scale = 0.25;
  options.experiment.pipeline.tokenizer.backtrace_depth = 4;
  options.experiment.pipeline.tokenizer.tree_code_dim = 8;
  options.experiment.pipeline.tokenizer.max_seq_len = 128;
  options.experiment.model_hidden = 32;
  options.experiment.model_layers = 1;
  options.experiment.model_heads = 2;
  return options;
}

TEST(InferenceEngineTest, ScoreIsAProbabilityAndCacheable) {
  InferenceEngine engine(small_options(2, 4));
  const std::vector<std::string> bits = engine.bit_names("b03");
  ASSERT_GE(bits.size(), 2u);

  const double first = engine.score("b03", bits[0], bits[1]);
  EXPECT_GE(first, 0.0);
  EXPECT_LE(first, 1.0);
  const double second = engine.score("b03", bits[0], bits[1]);
  EXPECT_EQ(first, second);  // bit-identical via the cache
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.score_requests, 2u);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_EQ(stats.benches_loaded, 1u);
}

TEST(InferenceEngineTest, BatchMatchesIndividualScores) {
  InferenceEngine engine(small_options(2, 2));  // force several batches
  const std::vector<std::string> bits = engine.bit_names("b03");
  ASSERT_GE(bits.size(), 3u);

  std::vector<std::pair<std::string, std::string>> pairs;
  for (std::size_t i = 0; i < bits.size(); ++i)
    for (std::size_t j = 0; j < bits.size(); ++j)
      pairs.emplace_back(bits[i], bits[j]);
  const std::vector<double> batched = engine.score_batch("b03", pairs);
  ASSERT_EQ(batched.size(), pairs.size());

  InferenceEngine reference(small_options(1, 1));
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    EXPECT_EQ(batched[p],
              reference.score("b03", pairs[p].first, pairs[p].second))
        << pairs[p].first << " / " << pairs[p].second;
  }
}

TEST(InferenceEngineTest, UnknownBenchAndBitThrow) {
  InferenceEngine engine(small_options(1, 4));
  EXPECT_THROW(engine.score("no_such_bench_or_file", "a", "b"),
               std::exception);
  const std::vector<std::string> bits = engine.bit_names("b03");
  EXPECT_THROW(engine.score("b03", bits[0], "definitely_not_a_bit"),
               util::CheckError);
}

TEST(InferenceEngineTest, RecoverReportsPlausibleSummary) {
  InferenceEngine engine(small_options(2, 4));
  const RecoverSummary summary = engine.recover("b03");
  EXPECT_GT(summary.num_bits, 0);
  EXPECT_GT(summary.num_words, 0);
  EXPECT_LE(summary.num_words, summary.num_bits);
  EXPECT_EQ(engine.stats().recover_requests, 1u);
}

TEST(InferenceEngineTest, ConcurrentScoresAgreeWithSerialReference) {
  // The headline thread-safety property: many client threads hammering one
  // engine get exactly the scores a serial engine computes.
  InferenceEngine engine(small_options(4, 4));
  const std::vector<std::string> bits = engine.bit_names("b03");
  const std::size_t n = bits.size();
  ASSERT_GE(n, 2u);

  InferenceEngine reference(small_options(1, 1));
  std::vector<double> expected(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      expected[i * n + j] = reference.score("b03", bits[i], bits[j]);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 3; ++round) {
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t j = (i + static_cast<std::size_t>(c)) % n;
          if (engine.score("b03", bits[i], bits[j]) != expected[i * n + j])
            mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ServeLoopTest, StdioSessionAnswersInOrder) {
  InferenceEngine engine(small_options(2, 4));
  ServeLoop loop(engine);
  const std::vector<std::string> bits = engine.bit_names("b03");

  std::istringstream in("help\n\n# comment\nscore b03 " + bits[0] + " " +
                        bits[1] + "\nbogus\nstats\nquit\nscore after quit\n");
  std::ostringstream out;
  const std::size_t answered = loop.run(in, out);
  EXPECT_EQ(answered, 5u);  // help, score, bogus, stats, quit

  const std::vector<std::string> lines = util::split_ws(out.str());
  ASSERT_FALSE(lines.empty());
  std::istringstream reparse(out.str());
  std::string line;
  std::vector<std::string> responses;
  while (std::getline(reparse, line)) responses.push_back(line);
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_TRUE(util::starts_with(responses[0], "ok commands:"));
  EXPECT_TRUE(util::starts_with(responses[1], "ok 0."));
  EXPECT_TRUE(util::starts_with(responses[2], "err "));
  EXPECT_TRUE(util::starts_with(responses[3], "ok threads="));
  EXPECT_EQ(responses[4], "ok bye");
}

TEST(ServeLoopTest, EngineErrorsBecomeErrResponses) {
  InferenceEngine engine(small_options(1, 4));
  ServeLoop loop(engine);
  bool quit = false;
  const std::string response =
      loop.handle_line("recover not_a_bench", &quit);
  EXPECT_TRUE(util::starts_with(response, "err "));
  EXPECT_EQ(response.find('\n'), std::string::npos);
  EXPECT_FALSE(quit);
}

}  // namespace
}  // namespace rebert::serve
