// Binary wire protocol over the Unix socket transport: negotiation by
// first byte, text/binary parity and coexistence, the two-tier error
// contract (malformed message answers the request, framing corruption
// closes the connection), the text line-length cap, and renegotiation
// after a backend restart through a reused ClientPool.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/client_pool.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/serve_loop.h"
#include "util/string_utils.h"
#include "wire/frame.h"
#include "wire/message.h"

namespace rebert::serve {
namespace {

EngineOptions small_options() {
  EngineOptions options;
  options.num_threads = 2;
  options.batch_size = 4;
  options.suite_scale = 0.25;
  options.experiment.pipeline.tokenizer.backtrace_depth = 4;
  options.experiment.pipeline.tokenizer.tree_code_dim = 8;
  options.experiment.pipeline.tokenizer.max_seq_len = 128;
  options.experiment.model_hidden = 32;
  options.experiment.model_layers = 1;
  options.experiment.model_heads = 2;
  return options;
}

int connect_to(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return fd;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::close(fd);
  return -1;
}

void send_raw(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

/// Read whole frames off a raw fd; empty Status::kNeedMore result on EOF.
bool read_frame(int fd, wire::FrameReader& reader, wire::Frame* frame) {
  std::string error;
  while (true) {
    switch (reader.next(frame, &error)) {
      case wire::FrameReader::Status::kFrame:
        return true;
      case wire::FrameReader::Status::kError:
        return false;
      case wire::FrameReader::Status::kNeedMore:
        break;
    }
    char chunk[512];
    ssize_t got;
    do {
      got = ::read(fd, chunk, sizeof(chunk));
    } while (got < 0 && errno == EINTR);
    if (got <= 0) return false;
    reader.feed(chunk, static_cast<std::size_t>(got));
  }
}

std::string read_line(int fd) {
  std::string line;
  char c;
  while (true) {
    ssize_t got;
    do {
      got = ::read(fd, &c, 1);
    } while (got < 0 && errno == EINTR);
    if (got <= 0 || c == '\n') return line;
    line += c;
  }
}

/// Raw-socket hello handshake, so tests can then inject arbitrary bytes.
int connect_binary(const std::string& path, wire::FrameReader& reader) {
  const int fd = connect_to(path);
  if (fd < 0) return -1;
  send_raw(fd, wire::encode_hello());
  wire::Frame ack;
  if (!read_frame(fd, reader, &ack) ||
      ack.type != wire::FrameType::kHelloAck) {
    ::close(fd);
    return -1;
  }
  return fd;
}

class WireSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = ::testing::TempDir() + "/rebert_wire_" +
                   std::to_string(::getpid()) + ".sock";
    engine_ = std::make_unique<InferenceEngine>(small_options());
    loop_ = std::make_unique<ServeLoop>(*engine_);
    server_ = std::thread([this] { loop_->run_unix_socket(socket_path_); });
  }

  void TearDown() override {
    loop_->stop();
    server_.join();
    std::remove(socket_path_.c_str());
  }

  std::string socket_path_;
  std::unique_ptr<InferenceEngine> engine_;
  std::unique_ptr<ServeLoop> loop_;
  std::thread server_;
};

TEST_F(WireSocketTest, BinaryClientMatchesTextClientAnswerForAnswer) {
  Client text(socket_path_);
  ClientOptions binary_options;
  binary_options.binary = true;
  Client binary(socket_path_, binary_options);
  ASSERT_TRUE(text.connect());
  ASSERT_TRUE(binary.connect());
  EXPECT_FALSE(text.negotiated_binary());
  EXPECT_TRUE(binary.negotiated_binary());

  // Same requests, both encodings, byte-identical response lines — the
  // transcoding keeps every log consumer and retry parser working.
  for (const char* line :
       {"help", "health", "score b03 no_such_bit also_missing"}) {
    EXPECT_EQ(binary.request(line), text.request(line)) << line;
  }
}

TEST_F(WireSocketTest, TextAndBinaryConnectionsCoexist) {
  const int text_fd = connect_to(socket_path_);
  ASSERT_GE(text_fd, 0);
  wire::FrameReader reader;
  const int binary_fd = connect_binary(socket_path_, reader);
  ASSERT_GE(binary_fd, 0);

  send_raw(text_fd, "help\n");
  EXPECT_TRUE(util::starts_with(read_line(text_fd), "ok commands:"));

  wire::Request stats;
  stats.verb = wire::Verb::kStats;
  send_raw(binary_fd, wire::encode_request(stats));
  wire::Frame frame;
  ASSERT_TRUE(read_frame(binary_fd, reader, &frame));
  ASSERT_EQ(frame.type, wire::FrameType::kResponse);
  wire::Response response;
  std::string error;
  ASSERT_TRUE(wire::decode_response_payload(frame.payload, &response,
                                            &error))
      << error;
  EXPECT_TRUE(util::starts_with(wire::response_to_line(response),
                                "ok threads="));
  ::close(text_fd);
  ::close(binary_fd);
}

TEST_F(WireSocketTest, MalformedMessageAnswersTheRequestAndSurvives) {
  // A well-framed but meaningless payload is a request-level failure: the
  // server answers it with an error response and keeps the connection.
  wire::FrameReader reader;
  const int fd = connect_binary(socket_path_, reader);
  ASSERT_GE(fd, 0);

  send_raw(fd, wire::encode_frame(wire::FrameType::kRequest, "garbage"));
  wire::Frame frame;
  ASSERT_TRUE(read_frame(fd, reader, &frame));
  ASSERT_EQ(frame.type, wire::FrameType::kResponse);
  wire::Response response;
  std::string error;
  ASSERT_TRUE(wire::decode_response_payload(frame.payload, &response,
                                            &error))
      << error;
  EXPECT_EQ(response.status, wire::Status::kErr);

  // The connection still works.
  wire::Request stats;
  stats.verb = wire::Verb::kStats;
  send_raw(fd, wire::encode_request(stats));
  ASSERT_TRUE(read_frame(fd, reader, &frame));
  EXPECT_EQ(frame.type, wire::FrameType::kResponse);
  ::close(fd);
}

TEST_F(WireSocketTest, FramingCorruptionGetsErrorFrameThenClose) {
  // Corruption below the message layer poisons the stream: the server
  // sends one kError diagnosis and drops the connection.
  wire::FrameReader reader;
  const int fd = connect_binary(socket_path_, reader);
  ASSERT_GE(fd, 0);

  std::string bad = wire::encode_frame(wire::FrameType::kRequest, "x");
  bad[bad.size() - 1] ^= 0x40;  // checksum mismatch
  send_raw(fd, bad);
  wire::Frame frame;
  ASSERT_TRUE(read_frame(fd, reader, &frame));
  EXPECT_EQ(frame.type, wire::FrameType::kError);
  EXPECT_NE(frame.payload.find("checksum"), std::string::npos)
      << frame.payload;
  EXPECT_FALSE(read_frame(fd, reader, &frame));  // EOF: connection closed
  ::close(fd);

  // The daemon survived; a later client is served normally.
  Client later(socket_path_);
  ASSERT_TRUE(later.connect());
  EXPECT_TRUE(util::starts_with(later.request("stats"), "ok threads="));
}

TEST_F(WireSocketTest, RequestBeforeHelloIsRejected) {
  const int fd = connect_to(socket_path_);
  ASSERT_GE(fd, 0);
  wire::Request stats;
  stats.verb = wire::Verb::kStats;
  send_raw(fd, wire::encode_request(stats));  // skipped the hello
  wire::FrameReader reader;
  wire::Frame frame;
  ASSERT_TRUE(read_frame(fd, reader, &frame));
  EXPECT_EQ(frame.type, wire::FrameType::kError);
  EXPECT_NE(frame.payload.find("hello"), std::string::npos)
      << frame.payload;
  ::close(fd);
}

TEST_F(WireSocketTest, BinaryRefusedWhenDisabled) {
  loop_->set_accept_binary(false);
  ClientOptions binary_options;
  binary_options.binary = true;
  Client client(socket_path_, binary_options);
  EXPECT_FALSE(client.connect());  // refusal, not a hang or a crash

  // Text service is unaffected.
  Client text(socket_path_);
  ASSERT_TRUE(text.connect());
  EXPECT_TRUE(util::starts_with(text.request("stats"), "ok threads="));
  loop_->set_accept_binary(true);
}

TEST_F(WireSocketTest, OversizedTextLineRefusedAndClosed) {
  const int fd = connect_to(socket_path_);
  ASSERT_GE(fd, 0);
  const std::string huge(kMaxRequestLineBytes + 64, 'a');
  send_raw(fd, huge + "\n");
  EXPECT_EQ(read_line(fd), format_line_too_long());
  EXPECT_EQ(read_line(fd), "");  // server closed the connection
  ::close(fd);
}

TEST_F(WireSocketTest, PoolReuseAfterBackendRestartRenegotiates) {
  // A restarted backend invalidates every pooled connection; the next
  // lease must detect the stale socket, reconnect, and re-run the hello
  // handshake from scratch — protocol state never outlives its socket.
  ClientOptions binary_options;
  binary_options.binary = true;
  ClientPool pool(socket_path_, binary_options);
  {
    ClientPool::Lease lease = pool.acquire();
    ASSERT_TRUE(lease);
    EXPECT_TRUE(util::starts_with(lease->request("stats"), "ok threads="));
  }  // returned idle, still connected to the first incarnation

  loop_->stop();
  server_.join();
  loop_ = std::make_unique<ServeLoop>(*engine_);
  server_ = std::thread([this] { loop_->run_unix_socket(socket_path_); });

  std::string reply;
  ClientPool::Lease lease = pool.acquire();  // hands back the stale client
  ASSERT_TRUE(lease);
  try {
    reply = lease->request("stats");
  } catch (const std::exception&) {
    lease.discard();
    lease = pool.acquire_fresh();
    ASSERT_TRUE(lease);
    reply = lease->request("stats");
  }
  EXPECT_TRUE(util::starts_with(reply, "ok threads=")) << reply;
  EXPECT_TRUE(lease->negotiated_binary());
}

}  // namespace
}  // namespace rebert::serve
