#include "serve/protocol.h"

#include <gtest/gtest.h>

namespace rebert::serve {
namespace {

TEST(ParseRequestTest, Score) {
  const Request request = parse_request("score b03 q0 q1");
  EXPECT_EQ(request.type, RequestType::kScore);
  EXPECT_EQ(request.bench, "b03");
  EXPECT_EQ(request.bit_a, "q0");
  EXPECT_EQ(request.bit_b, "q1");
}

TEST(ParseRequestTest, ScoreArityChecked) {
  EXPECT_EQ(parse_request("score b03 q0").type, RequestType::kInvalid);
  EXPECT_EQ(parse_request("score b03 q0 q1 q2").type, RequestType::kInvalid);
  EXPECT_NE(parse_request("score b03 q0").error, "");
}

TEST(ParseRequestTest, Recover) {
  const Request request = parse_request("recover /tmp/c.bench");
  EXPECT_EQ(request.type, RequestType::kRecover);
  EXPECT_EQ(request.bench, "/tmp/c.bench");
  EXPECT_EQ(parse_request("recover").type, RequestType::kInvalid);
  EXPECT_EQ(parse_request("recover a b").type, RequestType::kInvalid);
}

TEST(ParseRequestTest, StatsHelpQuit) {
  EXPECT_EQ(parse_request("stats").type, RequestType::kStats);
  EXPECT_EQ(parse_request("stats now").type, RequestType::kInvalid);
  EXPECT_EQ(parse_request("help").type, RequestType::kHelp);
  EXPECT_EQ(parse_request("quit").type, RequestType::kQuit);
  EXPECT_EQ(parse_request("exit").type, RequestType::kQuit);
}

TEST(ParseRequestTest, WhitespaceTolerant) {
  const Request request = parse_request("  score   b05  a   b  ");
  EXPECT_EQ(request.type, RequestType::kScore);
  EXPECT_EQ(request.bench, "b05");
}

TEST(ParseRequestTest, BlankAndCommentLinesAreSilent) {
  EXPECT_TRUE(is_blank_request(parse_request("")));
  EXPECT_TRUE(is_blank_request(parse_request("   ")));
  EXPECT_TRUE(is_blank_request(parse_request("# a comment")));
  EXPECT_FALSE(is_blank_request(parse_request("bogus")));
  EXPECT_FALSE(is_blank_request(parse_request("stats")));
}

TEST(ParseRequestTest, UnknownVerbNamesItself) {
  const Request request = parse_request("frobnicate x");
  EXPECT_EQ(request.type, RequestType::kInvalid);
  EXPECT_NE(request.error.find("frobnicate"), std::string::npos);
}

TEST(ParseRequestTest, DeadlineSuffixParsed) {
  Request request = parse_request("score b03 q0 q1 deadline_ms=25");
  EXPECT_EQ(request.type, RequestType::kScore);
  EXPECT_EQ(request.deadline_ms, 25);
  request = parse_request("recover b05 deadline_ms=1000");
  EXPECT_EQ(request.type, RequestType::kRecover);
  EXPECT_EQ(request.bench, "b05");
  EXPECT_EQ(request.deadline_ms, 1000);
  // Absent -> 0, meaning "no deadline from this request".
  EXPECT_EQ(parse_request("recover b05").deadline_ms, 0);
}

TEST(ParseRequestTest, MalformedDeadlineRejected) {
  EXPECT_EQ(parse_request("score b03 q0 q1 deadline_ms=abc").type,
            RequestType::kInvalid);
  EXPECT_EQ(parse_request("recover b03 deadline_ms=-5").type,
            RequestType::kInvalid);
  EXPECT_EQ(parse_request("recover b03 deadline_ms=").type,
            RequestType::kInvalid);
  const Request request = parse_request("recover b03 deadline_ms=oops");
  EXPECT_NE(request.error.find("deadline_ms"), std::string::npos);
}

TEST(ParseRequestTest, DeadlineOnlyStripsTrailingToken) {
  // deadline_ms must be the LAST token; elsewhere it is an ordinary
  // argument and trips the arity check instead of silently vanishing.
  EXPECT_EQ(parse_request("score b03 deadline_ms=5 q0 q1").type,
            RequestType::kInvalid);
}

TEST(ParseRequestTest, Health) {
  EXPECT_EQ(parse_request("health").type, RequestType::kHealth);
  EXPECT_EQ(parse_request("health now").type, RequestType::kInvalid);
  EXPECT_NE(help_text().find("health"), std::string::npos);
}

TEST(ParseRequestTest, HugeUnknownVerbIsEchoedSanitized) {
  // A multi-kilobyte garbage verb must come back as a short error that
  // contains no control bytes — the daemon echoes at most a capped prefix.
  std::string line(4096, 'Z');
  line[10] = '\x01';
  const Request request = parse_request(line);
  EXPECT_EQ(request.type, RequestType::kInvalid);
  EXPECT_LT(request.error.size(), 120u);
  for (char c : request.error) {
    EXPECT_GE(c, 0x20);
    EXPECT_LT(c, 0x7f);
  }
  EXPECT_NE(request.error.find('?'), std::string::npos);
}

TEST(FormatTest, OverloadedRoundTrips) {
  const std::string shed = format_overloaded(50);
  EXPECT_EQ(shed, "err overloaded retry_after_ms=50");
  EXPECT_EQ(parse_retry_after_ms(shed), 50);
  EXPECT_EQ(parse_retry_after_ms(format_overloaded(0)), 0);
  EXPECT_EQ(parse_retry_after_ms("ok 0.5"), -1);
  EXPECT_EQ(parse_retry_after_ms("err overloaded retry_after_ms="), -1);
  EXPECT_EQ(parse_retry_after_ms("err deadline_exceeded"), -1);
}

TEST(FormatTest, OkAndError) {
  EXPECT_EQ(format_ok(""), "ok");
  EXPECT_EQ(format_ok("0.5"), "ok 0.5");
  EXPECT_EQ(format_error("boom"), "err boom");
}

TEST(FormatTest, HelpIsSingleLine) {
  EXPECT_EQ(help_text().find('\n'), std::string::npos);
  EXPECT_NE(help_text().find("score"), std::string::npos);
  EXPECT_NE(help_text().find("recover"), std::string::npos);
}

}  // namespace
}  // namespace rebert::serve
