#include "serve/protocol.h"

#include <gtest/gtest.h>

namespace rebert::serve {
namespace {

TEST(ParseRequestTest, Score) {
  const Request request = parse_request("score b03 q0 q1");
  EXPECT_EQ(request.type, RequestType::kScore);
  EXPECT_EQ(request.bench, "b03");
  EXPECT_EQ(request.bit_a, "q0");
  EXPECT_EQ(request.bit_b, "q1");
}

TEST(ParseRequestTest, ScoreArityChecked) {
  EXPECT_EQ(parse_request("score b03 q0").type, RequestType::kInvalid);
  EXPECT_EQ(parse_request("score b03 q0 q1 q2").type, RequestType::kInvalid);
  EXPECT_NE(parse_request("score b03 q0").error, "");
}

TEST(ParseRequestTest, Recover) {
  const Request request = parse_request("recover /tmp/c.bench");
  EXPECT_EQ(request.type, RequestType::kRecover);
  EXPECT_EQ(request.bench, "/tmp/c.bench");
  EXPECT_EQ(parse_request("recover").type, RequestType::kInvalid);
  EXPECT_EQ(parse_request("recover a b").type, RequestType::kInvalid);
}

TEST(ParseRequestTest, StatsHelpQuit) {
  EXPECT_EQ(parse_request("stats").type, RequestType::kStats);
  EXPECT_EQ(parse_request("stats now").type, RequestType::kInvalid);
  EXPECT_EQ(parse_request("help").type, RequestType::kHelp);
  EXPECT_EQ(parse_request("quit").type, RequestType::kQuit);
  EXPECT_EQ(parse_request("exit").type, RequestType::kQuit);
}

TEST(ParseRequestTest, WhitespaceTolerant) {
  const Request request = parse_request("  score   b05  a   b  ");
  EXPECT_EQ(request.type, RequestType::kScore);
  EXPECT_EQ(request.bench, "b05");
}

TEST(ParseRequestTest, BlankAndCommentLinesAreSilent) {
  EXPECT_TRUE(is_blank_request(parse_request("")));
  EXPECT_TRUE(is_blank_request(parse_request("   ")));
  EXPECT_TRUE(is_blank_request(parse_request("# a comment")));
  EXPECT_FALSE(is_blank_request(parse_request("bogus")));
  EXPECT_FALSE(is_blank_request(parse_request("stats")));
}

TEST(ParseRequestTest, UnknownVerbNamesItself) {
  const Request request = parse_request("frobnicate x");
  EXPECT_EQ(request.type, RequestType::kInvalid);
  EXPECT_NE(request.error.find("frobnicate"), std::string::npos);
}

TEST(FormatTest, OkAndError) {
  EXPECT_EQ(format_ok(""), "ok");
  EXPECT_EQ(format_ok("0.5"), "ok 0.5");
  EXPECT_EQ(format_error("boom"), "err boom");
}

TEST(FormatTest, HelpIsSingleLine) {
  EXPECT_EQ(help_text().find('\n'), std::string::npos);
  EXPECT_NE(help_text().find("score"), std::string::npos);
  EXPECT_NE(help_text().find("recover"), std::string::npos);
}

}  // namespace
}  // namespace rebert::serve
