// Chaos suite: the serving daemon under injected faults, deadlines, and
// admission pressure. Every test arms the process-global FaultInjector and
// asserts the same invariant from a different angle — the daemon never
// crashes, every response is one well-formed `ok`/`err` line, and recover
// keeps answering (tagged degraded=structural) even with the model path
// fully broken.
//
// Labelled `chaos` in ctest; the acceptance gate runs it under both
// ThreadSanitizer and AddressSanitizer (tools/static_analysis.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "runtime/fault_injector.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/serve_loop.h"
#include "util/check.h"
#include "util/string_utils.h"
#include "wire/frame.h"
#include "wire/message.h"

namespace rebert::serve {
namespace {

EngineOptions small_options() {
  EngineOptions options;
  options.num_threads = 2;
  options.batch_size = 4;
  options.suite_scale = 0.25;
  options.experiment.pipeline.tokenizer.backtrace_depth = 4;
  options.experiment.pipeline.tokenizer.tree_code_dim = 8;
  options.experiment.pipeline.tokenizer.max_seq_len = 128;
  options.experiment.model_hidden = 32;
  options.experiment.model_layers = 1;
  options.experiment.model_heads = 2;
  return options;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool well_formed(const std::string& response) {
  return response == "ok" || util::starts_with(response, "ok ") ||
         util::starts_with(response, "err ");
}

int connect_raw(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return fd;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::close(fd);
  return -1;
}

std::string read_line_fd(int fd) {
  std::string line;
  char c;
  while (true) {
    ssize_t got;
    do {
      got = ::read(fd, &c, 1);
    } while (got < 0 && errno == EINTR);
    if (got <= 0 || c == '\n') return line;
    line += c;
  }
}

/// Every chaos test must leave the process-global injector clean — the
/// sites are wired into production code shared by every other test in
/// this binary.
class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override {
    runtime::FaultInjector::global().disarm_all();
  }
};

TEST_F(ChaosTest, AllSitesArmedDaemonSurvivesEveryRequest) {
  runtime::FaultInjector& faults = runtime::FaultInjector::global();
  for (const std::string& site : runtime::fault_sites())
    faults.arm(site, 1.0, 7);

  const std::string snapshot =
      ::testing::TempDir() + "/chaos_all_sites.rbpc";
  std::remove(snapshot.c_str());
  InferenceEngine engine(small_options());
  ServeLoop loop(engine);
  loop.enable_snapshots(snapshot, /*every_n=*/1);  // exercises snapshot.save
  const std::vector<std::string> bits = engine.bit_names("b03");
  ASSERT_GE(bits.size(), 2u);

  std::ostringstream script;
  script << "score b03 " << bits[0] << " " << bits[1] << "\n"
         << "score b03 " << bits[1] << " " << bits[0] << "\n"
         << "recover b03\n"
         << "health\nstats\nquit\n";
  std::istringstream in(script.str());
  std::ostringstream out;
  const std::size_t answered = loop.run(in, out);
  EXPECT_EQ(answered, 6u);

  const std::vector<std::string> lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), 6u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(well_formed(line)) << line;
    EXPECT_EQ(line.find('\r'), std::string::npos);
  }
  // With model.forward hard-failing, score answers an error...
  EXPECT_TRUE(util::starts_with(lines[0], "err ")) << lines[0];
  // ...but recover still succeeds via the structural fallback.
  EXPECT_TRUE(util::starts_with(lines[2], "ok words=")) << lines[2];
  EXPECT_NE(lines[2].find("degraded=structural"), std::string::npos)
      << lines[2];
  EXPECT_EQ(lines[2].find("words=0 "), std::string::npos) << lines[2];
  EXPECT_NE(lines[3].find("status=degraded"), std::string::npos) << lines[3];

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.degraded_recoveries, 1u);
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_FALSE(stats.model_healthy);
  // snapshot.save at p=1.0: every save failed, but failed saves only warn.
  EXPECT_FALSE(std::ifstream(snapshot).good());
}

TEST_F(ChaosTest, RecoverDegradesToStructuralAndHealthRecovers) {
  runtime::FaultInjector& faults = runtime::FaultInjector::global();
  faults.arm("model.forward", 1.0, 7);

  InferenceEngine engine(small_options());
  ServeLoop loop(engine);
  bool quit = false;
  EXPECT_NE(loop.handle_line("health", &quit).find("status=ready"),
            std::string::npos);

  const std::string degraded = loop.handle_line("recover b03", &quit);
  EXPECT_TRUE(util::starts_with(degraded, "ok words=")) << degraded;
  EXPECT_NE(degraded.find("degraded=structural"), std::string::npos)
      << degraded;
  EXPECT_NE(loop.handle_line("health", &quit).find("status=degraded"),
            std::string::npos);
  EXPECT_EQ(engine.stats().degraded_recoveries, 1u);

  // Heal the model: the next recover uses the real path, drops the tag,
  // and flips health back to ready.
  faults.disarm_all();
  const std::string healthy = loop.handle_line("recover b03", &quit);
  EXPECT_TRUE(util::starts_with(healthy, "ok words=")) << healthy;
  EXPECT_EQ(healthy.find("degraded"), std::string::npos) << healthy;
  EXPECT_NE(loop.handle_line("health", &quit).find("status=ready"),
            std::string::npos);
  EXPECT_EQ(engine.stats().degraded_recoveries, 1u);
}

TEST_F(ChaosTest, DeadlineExceededOnSlowModel) {
  // Latency mode: every forward sleeps 5 ms, so a 1 ms deadline has
  // always fired by the time the engine polls the token — deterministic
  // without depending on host speed.
  runtime::FaultInjector& faults = runtime::FaultInjector::global();
  faults.arm("model.forward", 1.0, 7, /*delay_ms=*/5);

  InferenceEngine engine(small_options());
  const std::vector<std::string> bits = engine.bit_names("b03");
  ServeLoop loop(engine);
  bool quit = false;
  EXPECT_EQ(loop.handle_line("recover b03 deadline_ms=1", &quit),
            "err deadline_exceeded");
  EXPECT_GE(engine.stats().deadline_exceeded, 1u);

  // The cancelled recover may have cached some pairs already; a fresh
  // engine guarantees the scored pair is a miss, so the 5 ms forward
  // always outlives the 1 ms deadline.
  InferenceEngine cold(small_options());
  ServeLoop cold_loop(cold);
  EXPECT_EQ(cold_loop.handle_line("score b03 " + bits[0] + " " + bits[1] +
                                      " deadline_ms=1",
                                  &quit),
            "err deadline_exceeded");
  EXPECT_GE(cold.stats().deadline_exceeded, 1u);

  // Without the injected latency the same requests complete fine even
  // under a modest deadline-free budget.
  faults.disarm_all();
  EXPECT_TRUE(util::starts_with(loop.handle_line("recover b03", &quit),
                                "ok words="));
}

TEST_F(ChaosTest, DefaultDeadlineAppliesWhenRequestHasNone) {
  runtime::FaultInjector& faults = runtime::FaultInjector::global();
  faults.arm("model.forward", 1.0, 7, /*delay_ms=*/5);
  InferenceEngine engine(small_options());
  ServeLoop loop(engine);
  loop.set_default_deadline_ms(1);
  bool quit = false;
  EXPECT_EQ(loop.handle_line("recover b03", &quit), "err deadline_exceeded");
}

TEST_F(ChaosTest, AdmissionShedsWithAdvisoryRetryAfter) {
  EngineOptions options = small_options();
  options.max_inflight = 1;
  options.retry_after_ms = 7;
  InferenceEngine engine(options);
  const std::vector<std::string> bits = engine.bit_names("b03");
  ServeLoop loop(engine);
  bool quit = false;

  {
    // Hold the whole budget, so the next request is deterministically shed.
    InferenceEngine::Admission held = engine.try_admit();
    ASSERT_TRUE(static_cast<bool>(held));
    const std::string shed = loop.handle_line(
        "score b03 " + bits[0] + " " + bits[1], &quit);
    EXPECT_EQ(shed, "err overloaded retry_after_ms=7");
    EXPECT_EQ(parse_retry_after_ms(shed), 7);
    // health and stats stay answerable while the budget is exhausted —
    // exactly when an operator needs them.
    EXPECT_NE(loop.handle_line("health", &quit).find("status=overloaded"),
              std::string::npos);
    EXPECT_TRUE(util::starts_with(loop.handle_line("stats", &quit), "ok "));
  }
  EXPECT_EQ(engine.stats().shed_requests, 1u);
  EXPECT_EQ(engine.stats().inflight, 0);

  // Slot released: the identical request is admitted and answered.
  EXPECT_TRUE(util::starts_with(
      loop.handle_line("score b03 " + bits[0] + " " + bits[1], &quit),
      "ok "));
}

TEST_F(ChaosTest, GarbageLinesGetShortErrorsAndServiceContinues) {
  InferenceEngine engine(small_options());
  ServeLoop loop(engine);
  bool quit = false;

  std::vector<std::string> garbage;
  garbage.push_back(std::string(3 << 20, 'A'));  // one multi-MB token
  garbage.push_back("score b03 q0 q1 " + std::string(1 << 20, 'x'));
  std::string nul_line = "verb with embedded NULs";
  nul_line[4] = '\0';
  nul_line[9] = '\0';
  garbage.push_back(nul_line);
  std::string many_args = "frobnicate";
  for (int i = 0; i < 100; ++i) many_args += " arg" + std::to_string(i);
  garbage.push_back(many_args);

  for (const std::string& line : garbage) {
    const std::string response = loop.handle_line(line, &quit);
    EXPECT_TRUE(util::starts_with(response, "err ")) << response.substr(0, 80);
    EXPECT_LT(response.size(), 256u) << "response must stay short";
    for (char c : response) {
      EXPECT_GE(c, 0x20) << "control byte echoed back";
      EXPECT_LT(c, 0x7f) << "non-ASCII byte echoed back";
    }
    EXPECT_FALSE(quit);
  }
  // The daemon is unfazed.
  EXPECT_TRUE(
      util::starts_with(loop.handle_line("stats", &quit), "ok threads="));
}

TEST_F(ChaosTest, ConnectionCapShedsAtTheDoor) {
  InferenceEngine engine(small_options());
  ServeLoop loop(engine);
  loop.set_max_connections(1);
  const std::string socket_path =
      ::testing::TempDir() + "/rebert_chaos_cap.sock";
  std::thread server([&] { loop.run_unix_socket(socket_path); });

  Client first(socket_path);
  ASSERT_TRUE(first.connect());
  EXPECT_TRUE(util::starts_with(first.request("stats"), "ok "));

  // The second connection is over the cap: the reactor parks it until its
  // first byte reveals the encoding, then answers one advisory shed line
  // and closes — no dispatch, no thread. The request itself is never
  // served.
  const int second = connect_raw(socket_path);
  ASSERT_GE(second, 0);
  const std::string probe = "stats\n";
  (void)::send(second, probe.data(), probe.size(), MSG_NOSIGNAL);
  const std::string refusal = read_line_fd(second);
  EXPECT_TRUE(util::starts_with(refusal, "err overloaded")) << refusal;
  EXPECT_GE(parse_retry_after_ms(refusal), 0) << refusal;
  EXPECT_EQ(read_line_fd(second), "");  // server closed after the refusal
  ::close(second);
  EXPECT_GE(engine.stats().shed_requests, 1u);

  // The capped connection keeps working, and once it leaves the slot is
  // freed — a later client is served (the close is noticed by the reactor
  // asynchronously, so poll briefly).
  EXPECT_TRUE(util::starts_with(first.request("health"), "ok status="));
  first.close();
  bool served = false;
  for (int attempt = 0; attempt < 100 && !served; ++attempt) {
    Client next(socket_path);
    ASSERT_TRUE(next.connect());
    try {
      served = util::starts_with(next.request("stats"), "ok ");
    } catch (const util::CheckError&) {
      // Refused-and-closed while the slot was still held.
    }
    if (!served)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(served);

  loop.stop();
  server.join();
  std::remove(socket_path.c_str());
}

TEST_F(ChaosTest, BinaryClientShedAtDoorSeesFrameEncodedAdvisory) {
  // The regression this guards: the old server shed every over-cap
  // connection with a *text* line, which a binary client's FrameReader
  // rejected as framing corruption. The reactor refuses in the
  // connection's own encoding, so a binary client sees a well-formed
  // retryable overload advisory.
  EngineOptions options = small_options();
  options.retry_after_ms = 9;
  InferenceEngine engine(options);
  ServeLoop loop(engine);
  loop.set_max_connections(1);
  const std::string socket_path =
      ::testing::TempDir() + "/rebert_chaos_bincap.sock";
  std::thread server([&] { loop.run_unix_socket(socket_path); });

  Client first(socket_path);
  ASSERT_TRUE(first.connect());
  EXPECT_TRUE(util::starts_with(first.request("stats"), "ok "));

  // Raw view of the refusal: hello in, one kResponse frame out carrying
  // the overloaded error code and the advisory delay, then close.
  {
    const int fd = connect_raw(socket_path);
    ASSERT_GE(fd, 0);
    const std::string hello = wire::encode_hello();
    (void)::send(fd, hello.data(), hello.size(), MSG_NOSIGNAL);
    wire::FrameReader reader;
    wire::Frame frame;
    std::string error;
    bool got_frame = false;
    while (!got_frame) {
      const wire::FrameReader::Status status = reader.next(&frame, &error);
      if (status == wire::FrameReader::Status::kFrame) {
        got_frame = true;
        break;
      }
      ASSERT_NE(status, wire::FrameReader::Status::kError) << error;
      char chunk[256];
      ssize_t got;
      do {
        got = ::read(fd, chunk, sizeof(chunk));
      } while (got < 0 && errno == EINTR);
      ASSERT_GT(got, 0) << "connection closed before the advisory frame";
      reader.feed(chunk, static_cast<std::size_t>(got));
    }
    ASSERT_EQ(frame.type, wire::FrameType::kResponse);
    wire::Response response;
    ASSERT_TRUE(wire::decode_response_payload(frame.payload, &response,
                                              &error))
        << error;
    EXPECT_EQ(response.status, wire::Status::kErr);
    EXPECT_EQ(response.code, wire::ErrorCode::kOverloaded);
    EXPECT_EQ(response.retry_after_ms, 9u);
    ::close(fd);
  }
  EXPECT_GE(engine.stats().shed_requests, 1u);

  // A binary serve::Client surfaces the advisory and backs off: with the
  // slot held it burns its (small) polling budget and reports the delay;
  // once the slot frees it connects and round-trips normally.
  ClientOptions binary_options;
  binary_options.binary = true;
  binary_options.connect_attempts = 3;
  binary_options.connect_poll_ms = 5;
  {
    Client shed(socket_path, binary_options);
    EXPECT_FALSE(shed.connect());
    EXPECT_EQ(shed.last_overload_retry_after_ms(), 9);
  }

  first.close();
  Client retry(socket_path, binary_options);
  bool connected = false;
  for (int attempt = 0; attempt < 100 && !connected; ++attempt) {
    connected = retry.connect();
    if (!connected)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(connected);
  EXPECT_TRUE(retry.negotiated_binary());
  EXPECT_TRUE(util::starts_with(retry.request("stats"), "ok threads="));
  retry.close();

  loop.stop();
  server.join();
  std::remove(socket_path.c_str());
}

TEST_F(ChaosTest, ConnectionStormIsAbsorbedByTheBacklog) {
  // The old hardcoded listen(, 16) backlog turned connection storms into
  // kernel-level ECONNREFUSED before admission control could answer. With
  // SOMAXCONN (and the reactor accepting in a tight non-blocking loop), a
  // burst of simultaneous connects all get a well-formed answer.
  InferenceEngine engine(small_options());
  ServeLoop loop(engine);
  const std::string socket_path =
      ::testing::TempDir() + "/rebert_chaos_storm_backlog.sock";
  std::thread server([&] { loop.run_unix_socket(socket_path); });
  {
    // Wait for the listener before unleashing the storm.
    Client probe(socket_path);
    ASSERT_TRUE(probe.connect());
  }

  constexpr int kStorm = 96;
  std::atomic<int> refused{0};
  std::atomic<int> answered{0};
  std::vector<std::thread> stormers;
  for (int i = 0; i < kStorm; ++i) {
    stormers.emplace_back([&] {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) return;
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, socket_path.c_str(),
                   sizeof(addr.sun_path) - 1);
      int result;
      do {
        result = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
      } while (result != 0 && errno == EINTR);
      if (result != 0) {
        refused.fetch_add(1);
        ::close(fd);
        return;
      }
      const std::string request = "health\n";
      (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
      const std::string response = read_line_fd(fd);
      if (well_formed(response)) answered.fetch_add(1);
      ::close(fd);
    });
  }
  for (std::thread& stormer : stormers) stormer.join();
  EXPECT_EQ(refused.load(), 0);
  EXPECT_EQ(answered.load(), kStorm);

  loop.stop();
  server.join();
  std::remove(socket_path.c_str());
}

TEST_F(ChaosTest, StopDuringInflightDispatchDrainsWithoutWedging) {
  // stop() while a model forward is mid-flight on the dispatch pool: the
  // reactor must close the door, wait for the in-flight dispatch to
  // complete (never yank the engine out from under it), and return — not
  // wedge on the response, not crash on a completion for a dead server.
  runtime::FaultInjector& faults = runtime::FaultInjector::global();
  faults.arm("model.forward", 1.0, 7, /*delay_ms=*/30);

  InferenceEngine engine(small_options());
  ServeLoop loop(engine);
  const std::string socket_path =
      ::testing::TempDir() + "/rebert_chaos_stopflight.sock";
  std::thread server([&] { loop.run_unix_socket(socket_path); });

  const int fd = connect_raw(socket_path);
  ASSERT_GE(fd, 0);
  const std::string request = "recover b03\n";
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  // Give the reactor time to parse and dispatch before pulling the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  loop.stop();
  server.join();  // the ctest timeout is the wedge detector
  ::close(fd);
  std::remove(socket_path.c_str());
}

TEST_F(ChaosTest, StopWithPipelinedBacklogNeverDispatchesPastDrain) {
  // A client pipelines a burst of slow requests, then stop() lands while
  // the first is mid-flight on the pool. The regression this guards: the
  // shutdown drain's final apply_completions() pumped the connection,
  // which parsed the *next* buffered request and dispatched it after the
  // drain had already decided nothing was in flight — run() then
  // destroyed the reactor under a live worker (a use-after-free the ASan
  // job catches). With dispatch gated on stopping() and the drain
  // terminating only on quiesced (no in-flight AND no queued
  // completions), the backlog dies with the connection instead.
  runtime::FaultInjector& faults = runtime::FaultInjector::global();
  faults.arm("model.forward", 1.0, 7, /*delay_ms=*/20);

  InferenceEngine engine(small_options());
  ServeLoop loop(engine);
  const std::string socket_path =
      ::testing::TempDir() + "/rebert_chaos_pipedrain.sock";
  std::thread server([&] { loop.run_unix_socket(socket_path); });

  const int fd = connect_raw(socket_path);
  ASSERT_GE(fd, 0);
  std::string burst;
  for (int i = 0; i < 8; ++i) burst += "recover b03\n";
  (void)::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL);
  // Let the reactor parse and dispatch the first request, then pull the
  // plug so its completion lands inside the drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  loop.stop();
  server.join();  // ctest timeout + sanitizers are the regression detector
  ::close(fd);
  std::remove(socket_path.c_str());
}

TEST_F(ChaosTest, ConnectBackoffClampsHostileRetryAfter) {
  // A server advertising a pathological retry_after_ms at the connection
  // door must not wedge the client: the advisory is attacker-controlled
  // input, so connect()'s backoff clamps it to max_connect_backoff_ms.
  const std::string socket_path =
      ::testing::TempDir() + "/rebert_chaos_hostile_door.sock";
  std::remove(socket_path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 8), 0);
  // One advisory per connect attempt: swallow the hello, answer with an
  // hour-long frame-encoded overload advisory, close.
  constexpr std::uint32_t kHostileDelayMs = 3'600'000;
  std::thread hostile([&] {
    for (int i = 0; i < 2; ++i) {
      int fd;
      do {
        fd = ::accept(listener, nullptr, nullptr);
      } while (fd < 0 && errno == EINTR);
      if (fd < 0) return;
      char sink[64];
      (void)::read(fd, sink, sizeof(sink));
      const std::string refusal = wire::encode_response(
          wire::overloaded_response(kHostileDelayMs));
      (void)::send(fd, refusal.data(), refusal.size(), MSG_NOSIGNAL);
      ::close(fd);
    }
  });

  ClientOptions options;
  options.binary = true;
  options.connect_attempts = 2;
  options.connect_poll_ms = 5;
  options.max_connect_backoff_ms = 25;
  Client client(socket_path, options);
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.connect());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - begin);
  // The advisory is surfaced unclamped for the caller's information...
  EXPECT_EQ(client.last_overload_retry_after_ms(),
            static_cast<int>(kHostileDelayMs));
  // ...but the sleep is bounded: two attempts at <= 25 ms backoff each,
  // nowhere near the advertised hour (generous CI margin).
  EXPECT_LT(elapsed.count(), 2000);

  hostile.join();
  ::close(listener);
  std::remove(socket_path.c_str());
}

TEST_F(ChaosTest, MidRequestDisconnectDuringDispatchKeepsServing) {
  // A client that sends a slow request and vanishes: the dispatch
  // completes against a dead connection, the response is dropped (not
  // misdelivered), and the daemon keeps serving everyone else.
  runtime::FaultInjector& faults = runtime::FaultInjector::global();
  faults.arm("model.forward", 1.0, 7, /*delay_ms=*/20);

  InferenceEngine engine(small_options());
  ServeLoop loop(engine);
  const std::string socket_path =
      ::testing::TempDir() + "/rebert_chaos_vanish.sock";
  std::thread server([&] { loop.run_unix_socket(socket_path); });

  const int fd = connect_raw(socket_path);
  ASSERT_GE(fd, 0);
  const std::string request = "recover b03\n";
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ::close(fd);  // gone before the forward finishes

  faults.disarm_all();
  Client survivor(socket_path);
  ASSERT_TRUE(survivor.connect());
  EXPECT_TRUE(util::starts_with(survivor.request("stats"), "ok threads="));
  survivor.close();

  loop.stop();
  server.join();
  std::remove(socket_path.c_str());
}

TEST_F(ChaosTest, ConcurrentSocketChaosStaysWellFormed) {
  // The TSan target: probabilistic faults on every site while concurrent
  // clients hammer a live socket daemon. Connections may drop (that is
  // the injected behaviour) — but every byte that does come back parses
  // as a well-formed response line, and the daemon outlives the storm.
  runtime::FaultInjector& faults = runtime::FaultInjector::global();
  faults.arm("socket.read", 0.05, 11);
  faults.arm("socket.send", 0.05, 13);
  faults.arm("model.forward", 0.20, 17);
  faults.arm("pool.submit", 0.10, 19);

  EngineOptions options = small_options();
  options.max_inflight = 2;
  options.retry_after_ms = 1;
  InferenceEngine engine(options);
  const std::vector<std::string> bits = engine.bit_names("b03");
  ServeLoop loop(engine);
  const std::string socket_path =
      ::testing::TempDir() + "/rebert_chaos_storm.sock";
  std::thread server([&] { loop.run_unix_socket(socket_path); });

  constexpr int kClients = 4;
  constexpr int kRequests = 30;
  std::atomic<int> malformed{0};
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(socket_path);
      for (int r = 0; r < kRequests; ++r) {
        if (!client.connected() && !client.connect()) return;
        const std::string& a = bits[static_cast<std::size_t>(
            (c + r) % static_cast<int>(bits.size()))];
        const std::string& b = bits[static_cast<std::size_t>(
            (c * 7 + r * 3) % static_cast<int>(bits.size()))];
        try {
          const std::string response =
              client.request("score b03 " + a + " " + b);
          answered.fetch_add(1);
          if (!well_formed(response)) malformed.fetch_add(1);
        } catch (const util::CheckError&) {
          // Injected socket fault dropped this connection; reconnect.
          client.close();
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(malformed.load(), 0);
  EXPECT_GT(answered.load(), 0);

  // Calm the faults: the daemon serves normally afterwards.
  faults.disarm_all();
  Client survivor(socket_path);
  ASSERT_TRUE(survivor.connect());
  EXPECT_TRUE(util::starts_with(survivor.request("stats"), "ok threads="));
  EXPECT_TRUE(util::starts_with(
      survivor.request("score b03 " + bits[0] + " " + bits[1]), "ok "));
  survivor.close();

  loop.stop();
  server.join();
  std::remove(socket_path.c_str());
}

TEST_F(ChaosTest, CacheLoadFaultsDegradeToColdStartNotCrash) {
  // Build a genuinely good snapshot first, so the degradation below is
  // provably the injected fault's doing, not a broken file.
  const std::string snapshot =
      ::testing::TempDir() + "/chaos_cache_fault.rbpc";
  std::remove(snapshot.c_str());
  std::vector<std::string> bits;
  {
    InferenceEngine writer(small_options());
    bits = writer.bit_names("b03");
    ASSERT_GE(bits.size(), 2u);
    (void)writer.score("b03", bits[0], bits[1]);
    writer.save_cache(snapshot);
  }

  runtime::FaultInjector& faults = runtime::FaultInjector::global();
  for (const char* site : {"cache.load", "cache.parse"}) {
    faults.disarm_all();
    faults.arm(site, 1.0, 7);
    InferenceEngine engine(small_options());
    // The injected I/O / parse failure warms nothing and never throws —
    // the daemon starts cold instead of dying on a corrupt snapshot.
    EXPECT_EQ(engine.load_cache(snapshot), 0u) << site;
    EXPECT_EQ(engine.stats().warm_entries, 0u) << site;
    EXPECT_GT(engine.stats().faults_injected, 0u) << site;
    // Cold start means service, not failure: scoring still answers.
    const double score = engine.score("b03", bits[0], bits[1]);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }

  // Control: with the faults gone the same file warm-starts fine.
  faults.disarm_all();
  InferenceEngine engine(small_options());
  EXPECT_GT(engine.load_cache(snapshot), 0u);
  std::remove(snapshot.c_str());
}

TEST_F(ChaosTest, TokenizerEncodeFaultFailsScoreButRecoverDegrades) {
  runtime::FaultInjector& faults = runtime::FaultInjector::global();
  faults.arm("tokenizer.encode", 1.0, 7);

  // Bench loading tokenizes the bit universe via a different path
  // (tokenize_bits), so construction and bit_names survive the armed
  // encode site — only the per-request encode_pair trips.
  InferenceEngine engine(small_options());
  const std::vector<std::string> bits = engine.bit_names("b03");
  ASSERT_GE(bits.size(), 2u);
  ServeLoop loop(engine);
  bool quit = false;
  const std::string score =
      loop.handle_line("score b03 " + bits[0] + " " + bits[1], &quit);
  EXPECT_TRUE(util::starts_with(score, "err ")) << score;
  const std::string recover = loop.handle_line("recover b03", &quit);
  EXPECT_TRUE(util::starts_with(recover, "ok words=")) << recover;
  EXPECT_NE(recover.find("degraded=structural"), std::string::npos)
      << recover;

  faults.disarm_all();
  EXPECT_TRUE(util::starts_with(
      loop.handle_line("score b03 " + bits[0] + " " + bits[1], &quit),
      "ok "));
}

TEST_F(ChaosTest, PerBenchBudgetShedsOneBenchNotTheFleet) {
  EngineOptions options = small_options();
  options.max_inflight = 8;           // the global budget is not the limit
  options.max_inflight_per_bench = 1;
  options.retry_after_ms = 7;
  InferenceEngine engine(options);
  const std::vector<std::string> b03 = engine.bit_names("b03");
  const std::vector<std::string> b04 = engine.bit_names("b04");
  ASSERT_GE(b03.size(), 2u);
  ASSERT_GE(b04.size(), 2u);
  ServeLoop loop(engine);
  bool quit = false;

  {
    // Hold b03's only per-bench slot.
    InferenceEngine::Admission held = engine.try_admit("b03");
    ASSERT_TRUE(static_cast<bool>(held));
    const std::string shed = loop.handle_line(
        "score b03 " + b03[0] + " " + b03[1], &quit);
    EXPECT_EQ(shed, "err overloaded retry_after_ms=7");
    // The hot bench sheds; every other bench still clears admission.
    EXPECT_TRUE(util::starts_with(
        loop.handle_line("score b04 " + b04[0] + " " + b04[1], &quit),
        "ok "));
    const EngineStats pressured = engine.stats();
    EXPECT_EQ(pressured.bench_shed_requests, 1u);
    EXPECT_EQ(pressured.shed_requests, 1u);  // aggregated in one counter
    EXPECT_EQ(pressured.max_inflight_per_bench, 1);
    const std::string stats_line = loop.handle_line("stats", &quit);
    EXPECT_NE(stats_line.find("bench_shed_requests=1"), std::string::npos)
        << stats_line;
  }

  // Slot released with the Admission: the same bench serves again, and a
  // per-bench decline never leaked the global slot it briefly held.
  EXPECT_EQ(engine.stats().inflight, 0);
  EXPECT_TRUE(util::starts_with(
      loop.handle_line("score b03 " + b03[0] + " " + b03[1], &quit),
      "ok "));
}

}  // namespace
}  // namespace rebert::serve
