// ClientPool — bounded connection reuse under concurrency. The server side
// is a bare SocketServer echoing request lines back, so the suite isolates
// pool semantics (reuse, the idle bound, discard-on-failure, fresh dials)
// from engine behaviour. Runs under TSan via the `concurrency` label.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/client_pool.h"
#include "serve/socket_server.h"
#include "util/string_utils.h"

namespace rebert::serve {
namespace {

// A line server that answers "ok echo <line>" — plus a "die" verb that
// closes the connection without answering, for the discard path.
struct EchoServer {
  SocketServer server;
  std::string path;
  std::thread runner;

  explicit EchoServer(std::string socket_path)
      : server(SocketServer::Callbacks{
            [](const std::string& line, bool* close_connection) {
              if (line == "die") {
                *close_connection = true;
                return std::string("ok bye");
              }
              return "ok echo " + line;
            },
            nullptr, nullptr, nullptr, nullptr}),
        path(std::move(socket_path)),
        runner([this] { server.run(path); }) {}

  ~EchoServer() {
    server.stop();
    if (runner.joinable()) runner.join();
    std::remove(path.c_str());
  }
};

ClientOptions fast_options() {
  ClientOptions options;
  options.connect_attempts = 200;
  options.connect_poll_ms = 5;
  return options;
}

TEST(ClientPoolTest, LeasesConnectAndRoundTrip) {
  EchoServer echo(::testing::TempDir() + "/pool_basic.sock");
  ClientPool pool(echo.path, fast_options());
  ClientPool::Lease lease = pool.acquire();
  ASSERT_TRUE(lease);
  EXPECT_EQ(lease->request("hello"), "ok echo hello");
  EXPECT_EQ((*lease).request("again"), "ok echo again");
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.socket_path(), echo.path);
}

TEST(ClientPoolTest, ReturnedConnectionsAreReused) {
  EchoServer echo(::testing::TempDir() + "/pool_reuse.sock");
  ClientPool pool(echo.path, fast_options());
  for (int i = 0; i < 10; ++i) {
    ClientPool::Lease lease = pool.acquire();
    ASSERT_TRUE(lease);
    EXPECT_EQ(lease->request("r" + std::to_string(i)),
              "ok echo r" + std::to_string(i));
  }
  // Sequential leases ride one connection: dialed once, reused ever after.
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.reused(), 9u);
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(ClientPoolTest, IdleRetentionIsBounded) {
  EchoServer echo(::testing::TempDir() + "/pool_bound.sock");
  const std::size_t kMaxIdle = 3;
  ClientPool pool(echo.path, fast_options(), kMaxIdle);
  std::vector<ClientPool::Lease> burst;
  for (int i = 0; i < 8; ++i) {
    burst.push_back(pool.acquire());
    ASSERT_TRUE(burst.back());
  }
  EXPECT_EQ(pool.created(), 8u);  // all concurrent, so all fresh dials
  burst.clear();                  // return all at once
  EXPECT_LE(pool.idle(), kMaxIdle);
}

TEST(ClientPoolTest, DiscardDropsTheConnection) {
  EchoServer echo(::testing::TempDir() + "/pool_discard.sock");
  ClientPool pool(echo.path, fast_options());
  {
    ClientPool::Lease lease = pool.acquire();
    ASSERT_TRUE(lease);
    lease.discard();
  }
  EXPECT_EQ(pool.idle(), 0u);
  EXPECT_EQ(pool.discarded(), 1u);
  // The next acquire dials anew instead of inheriting a dropped socket.
  ClientPool::Lease fresh = pool.acquire();
  ASSERT_TRUE(fresh);
  EXPECT_EQ(pool.created(), 2u);
  EXPECT_EQ(fresh->request("after"), "ok echo after");
}

TEST(ClientPoolTest, ServerClosedConnectionIsDiscardedNotReused) {
  EchoServer echo(::testing::TempDir() + "/pool_dead.sock");
  ClientPool pool(echo.path, fast_options());
  {
    ClientPool::Lease lease = pool.acquire();
    ASSERT_TRUE(lease);
    EXPECT_EQ(lease->request("die"), "ok bye");  // server hangs up after
    // A request on the dead connection throws; the caller discards.
    EXPECT_THROW((void)lease->request("anyone there?"), std::exception);
    lease.discard();
  }
  ClientPool::Lease fresh = pool.acquire_fresh();
  ASSERT_TRUE(fresh);
  EXPECT_EQ(fresh->request("alive"), "ok echo alive");
}

TEST(ClientPoolTest, AcquireFreshAlwaysDials) {
  EchoServer echo(::testing::TempDir() + "/pool_fresh.sock");
  ClientPool pool(echo.path, fast_options());
  { ClientPool::Lease lease = pool.acquire(); ASSERT_TRUE(lease); }
  EXPECT_EQ(pool.idle(), 1u);
  ClientPool::Lease fresh = pool.acquire_fresh();
  ASSERT_TRUE(fresh);
  EXPECT_EQ(pool.created(), 2u);  // did not take the idle one
  EXPECT_EQ(pool.reused(), 0u);
}

TEST(ClientPoolTest, ClearIdleClosesRetainedConnections) {
  EchoServer echo(::testing::TempDir() + "/pool_clear.sock");
  ClientPool pool(echo.path, fast_options());
  { ClientPool::Lease lease = pool.acquire(); ASSERT_TRUE(lease); }
  EXPECT_EQ(pool.idle(), 1u);
  pool.clear_idle();
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(ClientPoolTest, UnreachableSocketYieldsFalsyLease) {
  ClientOptions options;
  options.connect_attempts = 2;
  options.connect_poll_ms = 1;
  ClientPool pool("/tmp/rebert_pool_nowhere.sock", options);
  ClientPool::Lease lease = pool.acquire();
  EXPECT_FALSE(lease);
  EXPECT_EQ(pool.created(), 0u);
}

TEST(ClientPoolTest, ServerStopUnblocksIdlePooledConnections) {
  // A pooled connection is idle-but-open by design. The server's stop()
  // must shutdown() it so the handler thread parked in read() exits —
  // otherwise this destructor (stop + join) hangs forever.
  auto echo = std::make_unique<EchoServer>(::testing::TempDir() +
                                           "/pool_server_stop.sock");
  ClientPool pool(echo->path, fast_options());
  {
    ClientPool::Lease lease = pool.acquire();
    ASSERT_TRUE(lease);
    EXPECT_EQ(lease->request("park"), "ok echo park");
  }
  EXPECT_EQ(pool.idle(), 1u);
  echo.reset();  // must return with the pool still holding the connection
}

TEST(ClientPoolTest, ConcurrentHammerIsSafeAndLossless) {
  EchoServer echo(::testing::TempDir() + "/pool_hammer.sock");
  ClientPool pool(echo.path, fast_options(), 4);
  const int kThreads = 8;
  const int kPerThread = 50;
  std::atomic<int> correct{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int r = 0; r < kPerThread; ++r) {
        ClientPool::Lease lease = pool.acquire();
        if (!lease) continue;
        const std::string payload =
            "t" + std::to_string(t) + "r" + std::to_string(r);
        try {
          // Responses must match the request that produced them —
          // interleaving leaks across leases would scramble this.
          if (lease->request(payload) == "ok echo " + payload)
            correct.fetch_add(1);
        } catch (const std::exception&) {
          lease.discard();
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(correct.load(), kThreads * kPerThread);
  EXPECT_LE(pool.idle(), 4u);
  EXPECT_EQ(pool.created() + pool.reused(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace rebert::serve
