// ModelRegistry — manifest grammar, size-rule selection, unhealthy-entry
// behaviour, and the engine integration: model= requests against a
// multi-model engine, per-model caches, and degradation when a named
// model's checkpoint never loaded.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "bert/config.h"
#include "serve/engine.h"
#include "serve/model_registry.h"
#include "util/check.h"
#include "util/string_utils.h"

namespace rebert::serve {
namespace {

bert::BertConfig tiny_config() {
  bert::BertConfig config;
  config.hidden = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.intermediate = 32;
  config.max_seq_len = 64;
  config.tree_code_dim = 8;
  return config;
}

std::string write_file(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return path;
}

TEST(ModelManifestTest, ParsesModelsDefaultAndComments) {
  const ModelManifest manifest = parse_model_manifest_text(
      "# fleet manifest\n"
      "\n"
      "model small - max_bits=64\n"
      "model large -\n"
      "default large\n",
      "test");
  ASSERT_EQ(manifest.models.size(), 2u);
  EXPECT_EQ(manifest.models[0].name, "small");
  EXPECT_EQ(manifest.models[0].path, "-");
  EXPECT_EQ(manifest.models[0].max_bits, 64);
  EXPECT_EQ(manifest.models[1].name, "large");
  EXPECT_EQ(manifest.models[1].max_bits, 0);
  EXPECT_EQ(manifest.default_model, "large");
}

TEST(ModelManifestTest, DefaultFallsBackToFirstListed) {
  const ModelManifest manifest =
      parse_model_manifest_text("model only -\n", "test");
  EXPECT_EQ(manifest.default_model, "only");
  ASSERT_EQ(manifest.models.size(), 1u);
}

TEST(ModelManifestTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_model_manifest_text("model\n", "t"), util::CheckError);
  EXPECT_THROW(parse_model_manifest_text("model a - max_bits=zero\n", "t"),
               util::CheckError);
  EXPECT_THROW(parse_model_manifest_text("model a - max_bits=0\n", "t"),
               util::CheckError);
  EXPECT_THROW(parse_model_manifest_text("model a -\nmodel a -\n", "t"),
               util::CheckError);
  EXPECT_THROW(parse_model_manifest_text("model a -\ndefault ghost\n", "t"),
               util::CheckError);
  EXPECT_THROW(parse_model_manifest_text("frobnicate a\n", "t"),
               util::CheckError);
  EXPECT_THROW(parse_model_manifest_text("# only comments\n", "t"),
               util::CheckError);
}

TEST(ModelManifestTest, ReadsFromFileAndReportsMissingFile) {
  const std::string path = write_file(
      "registry_manifest.txt", "model a - max_bits=32\ndefault a\n");
  const ModelManifest manifest = parse_model_manifest(path);
  ASSERT_EQ(manifest.models.size(), 1u);
  EXPECT_EQ(manifest.default_model, "a");
  EXPECT_THROW(parse_model_manifest("/nonexistent/manifest.txt"),
               util::CheckError);
}

TEST(ModelRegistryTest, SizeRulePicksSmallestCoveringBound) {
  ModelManifest manifest;
  manifest.models = {{"small", "-", 32},
                     {"medium", "-", 128},
                     {"big", "-", 0}};
  manifest.default_model = "big";
  core::ShardedPredictionCache cache(4);
  ModelRegistry registry(manifest, tiny_config(), &cache, 4);
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.unhealthy_count(), 0);

  EXPECT_EQ(registry.select("", 10).spec.name, "small");
  EXPECT_EQ(registry.select("", 32).spec.name, "small");  // inclusive bound
  EXPECT_EQ(registry.select("", 33).spec.name, "medium");
  // Bigger than every bound: the default, never an unbounded non-default.
  EXPECT_EQ(registry.select("", 4000).spec.name, "big");
  // Explicit names beat the size rule.
  EXPECT_EQ(registry.select("medium", 10).spec.name, "medium");
  EXPECT_THROW(registry.select("ghost", 10), util::CheckError);
}

TEST(ModelRegistryTest, CacheOwnershipSeparatesModels) {
  ModelManifest manifest;
  manifest.models = {{"a", "-", 0}, {"b", "-", 0}};
  manifest.default_model = "a";
  core::ShardedPredictionCache shared(4);
  ModelRegistry registry(manifest, tiny_config(), &shared, 4);
  ModelRegistry::Entry* a = registry.find("a");
  ModelRegistry::Entry* b = registry.find("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(registry.find("c"), nullptr);
  // The default aliases the engine's persisted cache; others own theirs.
  EXPECT_EQ(a->cache, &shared);
  EXPECT_EQ(a->owned_cache, nullptr);
  EXPECT_EQ(b->cache, b->owned_cache.get());
  EXPECT_NE(b->cache, a->cache);
  EXPECT_EQ(&registry.default_entry(), a);
}

TEST(ModelRegistryTest, UnloadableCheckpointIsKeptButUnhealthy) {
  const std::string bogus =
      write_file("registry_bogus.ckpt", "not a checkpoint");
  ModelManifest manifest;
  manifest.models = {{"good", "-", 0}, {"bad", bogus, 0}};
  manifest.default_model = "good";
  core::ShardedPredictionCache cache(4);
  ModelRegistry registry(manifest, tiny_config(), &cache, 4);
  ModelRegistry::Entry* bad = registry.find("bad");
  ASSERT_NE(bad, nullptr);
  EXPECT_FALSE(bad->load_ok);
  EXPECT_FALSE(bad->healthy.load());
  EXPECT_EQ(registry.unhealthy_count(), 1);
  // The size rule and the unnamed path never pick it...
  EXPECT_EQ(registry.select("", 10).spec.name, "good");
  // ...but an explicit name still resolves (the engine decides whether
  // that is an error or a structural fallback).
  EXPECT_EQ(registry.select("bad", 10).spec.name, "bad");
}

// --- engine integration -------------------------------------------------

EngineOptions engine_options_with_manifest(const std::string& manifest) {
  EngineOptions options;
  options.num_threads = 2;
  options.batch_size = 4;
  options.suite_scale = 0.25;
  options.experiment.pipeline.tokenizer.backtrace_depth = 4;
  options.experiment.pipeline.tokenizer.tree_code_dim = 8;
  options.experiment.pipeline.tokenizer.max_seq_len = 128;
  options.experiment.model_hidden = 32;
  options.experiment.model_layers = 1;
  options.experiment.model_heads = 2;
  options.manifest_path = manifest;
  return options;
}

TEST(ModelRegistryEngineTest, ScoresThroughNamedModels) {
  const std::string manifest_path = write_file(
      "registry_engine_manifest.txt",
      "model tiny - max_bits=4\n"
      "model main -\n"
      "default main\n");
  InferenceEngine engine(engine_options_with_manifest(manifest_path));
  const EngineStats boot = engine.stats();
  EXPECT_EQ(boot.models, 2);
  EXPECT_EQ(boot.unhealthy_models, 0);

  const std::vector<std::string> bits = engine.bit_names("b03");
  ASSERT_GE(bits.size(), 2u);
  const double unnamed = engine.score("b03", bits[0], bits[1]);
  const double named = engine.score("b03", bits[0], bits[1], nullptr, "main");
  EXPECT_GE(unnamed, 0.0);
  EXPECT_LE(unnamed, 1.0);
  // b03 exceeds tiny's 4-bit bound, so the unnamed request size-routes to
  // main — same entry, same cache, identical score.
  EXPECT_DOUBLE_EQ(unnamed, named);
  // The two entries hold independently initialised weights; the explicit
  // tiny answer is a different model's opinion.
  const double tiny = engine.score("b03", bits[0], bits[1], nullptr, "tiny");
  EXPECT_GE(tiny, 0.0);
  EXPECT_LE(tiny, 1.0);

  EXPECT_THROW(engine.score("b03", bits[0], bits[1], nullptr, "ghost"),
               util::CheckError);

  ModelRegistry::Entry* main_entry = engine.registry().find("main");
  ModelRegistry::Entry* tiny_entry = engine.registry().find("tiny");
  ASSERT_NE(main_entry, nullptr);
  ASSERT_NE(tiny_entry, nullptr);
  EXPECT_GE(main_entry->requests.load(), 2u);
  EXPECT_GE(tiny_entry->requests.load(), 1u);
}

TEST(ModelRegistryEngineTest, UnhealthyNamedModelDegradesRecover) {
  const std::string bogus =
      write_file("registry_engine_bogus.ckpt", "zzz not weights zzz");
  const std::string manifest_path = write_file(
      "registry_engine_bad_manifest.txt",
      "model good -\n"
      "model broken " + bogus + "\n"
      "default good\n");
  InferenceEngine engine(engine_options_with_manifest(manifest_path));
  EXPECT_EQ(engine.stats().unhealthy_models, 1);

  const std::vector<std::string> bits = engine.bit_names("b03");
  ASSERT_GE(bits.size(), 2u);
  // score on the broken model is a request error...
  EXPECT_THROW(engine.score("b03", bits[0], bits[1], nullptr, "broken"),
               util::CheckError);
  // ...recover degrades to the structural baseline instead of failing.
  const RecoverSummary degraded = engine.recover("b03", nullptr, "broken");
  EXPECT_TRUE(degraded.degraded);
  const EngineStats after = engine.stats();
  EXPECT_GE(after.degraded_recoveries, 1u);
  // The healthy default still serves the model path.
  const RecoverSummary healthy = engine.recover("b03");
  EXPECT_FALSE(healthy.degraded);
}

}  // namespace
}  // namespace rebert::serve
