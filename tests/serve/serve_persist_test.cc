// Warm-start serving: an engine restarted onto a cache snapshot answers
// the same workload bit-identically without recomputing, corrupt snapshots
// degrade to a cold start, and ServeLoop's periodic snapshotting writes a
// loadable file at the configured cadence.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/client.h"
#include "serve/engine.h"
#include "serve/serve_loop.h"
#include "util/string_utils.h"

namespace rebert::serve {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

EngineOptions small_options(int threads, int batch) {
  EngineOptions options;
  options.num_threads = threads;
  options.batch_size = batch;
  options.suite_scale = 0.25;
  options.experiment.pipeline.tokenizer.backtrace_depth = 4;
  options.experiment.pipeline.tokenizer.tree_code_dim = 8;
  options.experiment.pipeline.tokenizer.max_seq_len = 128;
  options.experiment.model_hidden = 32;
  options.experiment.model_layers = 1;
  options.experiment.model_heads = 2;
  return options;
}

std::vector<std::pair<std::string, std::string>> all_pairs(
    const std::vector<std::string>& bits) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const std::string& a : bits)
    for (const std::string& b : bits) pairs.emplace_back(a, b);
  return pairs;
}

TEST(ServePersistTest, WarmStartIsBitIdenticalAndAllHits) {
  const std::string path = temp_path("warm_engine.rbpc");

  InferenceEngine cold(small_options(2, 4));
  const std::vector<std::string> bits = cold.bit_names("b03");
  const auto pairs = all_pairs(bits);
  const std::vector<double> cold_scores = cold.score_batch("b03", pairs);
  cold.save_cache(path);
  ASSERT_GT(cold.stats().cache_entries, 0u);

  InferenceEngine warm(small_options(2, 4));
  const std::size_t warmed = warm.load_cache(path);
  EXPECT_EQ(warmed, cold.stats().cache_entries);
  EXPECT_EQ(warm.stats().warm_entries, warmed);

  const std::vector<double> warm_scores = warm.score_batch("b03", pairs);
  ASSERT_EQ(warm_scores.size(), cold_scores.size());
  for (std::size_t i = 0; i < warm_scores.size(); ++i)
    EXPECT_EQ(warm_scores[i], cold_scores[i]) << "pair " << i;

  // Every request hit the snapshot: the warm engine never ran the model.
  const EngineStats stats = warm.stats();
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_GT(stats.cache_hits, 0u);
  std::remove(path.c_str());
}

TEST(ServePersistTest, CorruptSnapshotStartsColdWithoutCrashing) {
  const std::string path = temp_path("warm_corrupt.rbpc");
  {
    std::ofstream out(path, std::ios::binary);
    out << "RBPC but then garbage that is definitely not records";
  }
  InferenceEngine engine(small_options(1, 4));
  EXPECT_EQ(engine.load_cache(path), 0u);
  EXPECT_EQ(engine.stats().warm_entries, 0u);
  // Still serves.
  const std::vector<std::string> bits = engine.bit_names("b03");
  const double score = engine.score("b03", bits[0], bits[1]);
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);
  std::remove(path.c_str());
}

TEST(ServePersistTest, MissingSnapshotStartsCold) {
  InferenceEngine engine(small_options(1, 4));
  EXPECT_EQ(engine.load_cache(temp_path("never_saved.rbpc")), 0u);
}

TEST(ServePersistTest, ServeLoopSnapshotsAtCadenceAndOnExit) {
  const std::string path = temp_path("loop_snapshot.rbpc");
  std::remove(path.c_str());

  InferenceEngine engine(small_options(2, 4));
  ServeLoop loop(engine);
  loop.enable_snapshots(path, /*every_n=*/2);
  const std::vector<std::string> bits = engine.bit_names("b03");

  // Two answered requests trigger the first cadence snapshot even though
  // the session is still open.
  std::istringstream in("score b03 " + bits[0] + " " + bits[1] +
                        "\nscore b03 " + bits[1] + " " + bits[0] + "\n" +
                        "score b03 " + bits[0] + " " + bits[0] + "\nquit\n");
  std::ostringstream out;
  const std::size_t answered = loop.run(in, out);
  EXPECT_EQ(answered, 4u);

  InferenceEngine warm(small_options(1, 4));
  const std::size_t warmed = warm.load_cache(path);
  EXPECT_EQ(warmed, engine.stats().cache_entries);
  EXPECT_GT(warmed, 0u);
  std::remove(path.c_str());
}

TEST(ServePersistTest, EveryNBelowOneSavesOnlyOnShutdown) {
  // every_n < 1 disables cadence snapshots entirely: no matter how many
  // requests are answered, the only save is the forced one at shutdown.
  const std::string path = temp_path("shutdown_only.rbpc");
  std::remove(path.c_str());

  InferenceEngine engine(small_options(2, 4));
  ServeLoop loop(engine);
  loop.enable_snapshots(path, /*every_n=*/0);
  const std::vector<std::string> bits = engine.bit_names("b03");

  std::ostringstream script;
  for (int i = 0; i < 6; ++i)
    script << "score b03 " << bits[0] << " "
           << bits[static_cast<std::size_t>(1 + i % 2)] << "\n";
  std::istringstream in(script.str());
  std::ostringstream out;

  // run() answers all requests without ever writing the snapshot...
  std::ifstream probe_before(path);
  EXPECT_FALSE(probe_before.good());
  const std::size_t answered = loop.run(in, out);
  EXPECT_EQ(answered, 6u);

  // ...and the shutdown path (end of run()) writes exactly one, loadable.
  InferenceEngine warm(small_options(1, 4));
  const std::size_t warmed = warm.load_cache(path);
  EXPECT_EQ(warmed, engine.stats().cache_entries);
  EXPECT_GT(warmed, 0u);
  std::remove(path.c_str());
}

TEST(ServePersistTest, ConcurrentCadenceSavesCoalesceWithoutCorruption) {
  // Cadence 1 means every answered request wants a snapshot; with several
  // connections answering concurrently the try-lock coalesces the writes.
  // The invariants: no request fails, the daemon survives, and the final
  // snapshot is complete and loadable.
  const std::string path = temp_path("coalesce.rbpc");
  std::remove(path.c_str());

  InferenceEngine engine(small_options(2, 4));
  const std::vector<std::string> bits = engine.bit_names("b03");
  ServeLoop loop(engine);
  loop.enable_snapshots(path, /*every_n=*/1);
  const std::string socket_path = temp_path("coalesce.sock");
  std::thread server([&] { loop.run_unix_socket(socket_path); });

  constexpr int kClients = 4;
  constexpr int kRequests = 20;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(socket_path);
      if (!client.connect()) {
        failures.fetch_add(kRequests);
        return;
      }
      for (int r = 0; r < kRequests; ++r) {
        const std::string& a = bits[static_cast<std::size_t>(
            (c + r) % static_cast<int>(bits.size()))];
        const std::string& b = bits[static_cast<std::size_t>(
            (c * 3 + r) % static_cast<int>(bits.size()))];
        const std::string response =
            client.request("score b03 " + a + " " + b);
        if (!util::starts_with(response, "ok ")) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);

  loop.stop();
  server.join();
  std::remove(socket_path.c_str());

  InferenceEngine warm(small_options(1, 4));
  const std::size_t warmed = warm.load_cache(path);
  EXPECT_EQ(warmed, engine.stats().cache_entries);
  EXPECT_GT(warmed, 0u);
  std::remove(path.c_str());
}

TEST(ServePersistTest, StatsLineReportsWarmEntries) {
  const std::string path = temp_path("stats_warm.rbpc");
  {
    InferenceEngine engine(small_options(1, 4));
    const std::vector<std::string> bits = engine.bit_names("b03");
    (void)engine.score("b03", bits[0], bits[1]);
    engine.save_cache(path);
  }
  InferenceEngine engine(small_options(1, 4));
  engine.load_cache(path);
  ServeLoop loop(engine);
  bool quit = false;
  const std::string response = loop.handle_line("stats", &quit);
  EXPECT_TRUE(util::starts_with(response, "ok threads=")) << response;
  EXPECT_NE(response.find(" warm_entries=1"), std::string::npos) << response;
  std::remove(path.c_str());
}

TEST(ServePersistTest, RoundTripSurvivesRepeatedRestarts) {
  // The acceptance loop: run -> snapshot -> restart -> run, three times;
  // entries accumulate monotonically and scores never change.
  const std::string path = temp_path("restart_cycle.rbpc");
  std::remove(path.c_str());
  std::vector<double> reference;
  std::size_t last_entries = 0;
  for (int run = 0; run < 3; ++run) {
    InferenceEngine engine(small_options(2, 4));
    (void)engine.load_cache(path);
    const std::vector<std::string> bits = engine.bit_names("b03");
    const std::vector<double> scores =
        engine.score_batch("b03", all_pairs(bits));
    if (reference.empty()) {
      reference = scores;
    } else {
      ASSERT_EQ(scores, reference) << "run " << run;
      EXPECT_EQ(engine.stats().cache_misses, 0u) << "run " << run;
    }
    EXPECT_GE(engine.stats().cache_entries, last_entries);
    last_entries = engine.stats().cache_entries;
    engine.save_cache(path);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rebert::serve
