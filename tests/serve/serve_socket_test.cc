// Unix-socket transport robustness: a client that disconnects mid-response
// (the SIGPIPE/EPIPE path) or mid-request costs the daemon that one
// connection, never the process, and later clients are served normally.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/engine.h"
#include "serve/serve_loop.h"
#include "util/check.h"
#include "util/string_utils.h"

namespace rebert::serve {
namespace {

EngineOptions small_options() {
  EngineOptions options;
  options.num_threads = 2;
  options.batch_size = 4;
  options.suite_scale = 0.25;
  options.experiment.pipeline.tokenizer.backtrace_depth = 4;
  options.experiment.pipeline.tokenizer.tree_code_dim = 8;
  options.experiment.pipeline.tokenizer.max_seq_len = 128;
  options.experiment.model_hidden = 32;
  options.experiment.model_layers = 1;
  options.experiment.model_heads = 2;
  return options;
}

int connect_to(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return fd;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::close(fd);
  return -1;
}

void send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer may already be gone; that is the point
    sent += static_cast<std::size_t>(n);
  }
}

std::string read_line(int fd) {
  std::string line;
  char c;
  while (true) {
    ssize_t got;
    do {
      got = ::read(fd, &c, 1);
    } while (got < 0 && errno == EINTR);
    if (got <= 0 || c == '\n') return line;
    line += c;
  }
}

TEST(ServeSocketTest, RefusesToUnlinkNonSocketPath) {
  // A path collision with a regular file must fail loudly and leave the
  // file untouched — never silently unlink someone's config or checkpoint.
  const std::string path = ::testing::TempDir() + "/rebert_not_a_socket";
  const std::string payload = "precious bytes, do not delete\n";
  {
    std::ofstream out(path, std::ios::binary);
    out << payload;
  }
  InferenceEngine engine(small_options());
  ServeLoop loop(engine);
  try {
    loop.run_unix_socket(path);
    FAIL() << "run_unix_socket accepted a non-socket path";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("not a socket"),
              std::string::npos);
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "file was unlinked";
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, payload);
  std::remove(path.c_str());
}

TEST(ServeSocketTest, DisconnectMidResponseDoesNotKillDaemon) {
  const std::string socket_path =
      ::testing::TempDir() + "/rebert_disconnect.sock";
  InferenceEngine engine(small_options());
  ServeLoop loop(engine);
  std::thread server([&] { loop.run_unix_socket(socket_path); });

  // Rude client: pipeline many requests, then vanish without reading a
  // byte. The responses overrun the dead socket's buffer, so the server's
  // send() hits EPIPE — which must drop this connection, not the process.
  {
    const int rude = connect_to(socket_path);
    ASSERT_GE(rude, 0);
    std::string burst;
    for (int i = 0; i < 400; ++i) burst += "stats\n";
    send_all(rude, burst);
    ::close(rude);
  }

  // A polite client arriving afterwards is served normally — the proof
  // that the daemon survived the EPIPE above.
  for (int round = 0; round < 3; ++round) {
    const int polite = connect_to(socket_path);
    ASSERT_GE(polite, 0);
    send_all(polite, "stats\n");
    const std::string response = read_line(polite);
    EXPECT_TRUE(util::starts_with(response, "ok threads=")) << response;
    ::close(polite);
  }

  loop.stop();
  server.join();
  std::remove(socket_path.c_str());
}

TEST(ServeSocketTest, HalfLineThenDisconnectIsDropped) {
  const std::string socket_path =
      ::testing::TempDir() + "/rebert_halfline.sock";
  InferenceEngine engine(small_options());
  ServeLoop loop(engine);
  std::thread server([&] { loop.run_unix_socket(socket_path); });

  {
    const int rude = connect_to(socket_path);
    ASSERT_GE(rude, 0);
    send_all(rude, "score b03 q0");  // no newline, then gone
    ::close(rude);
  }

  const int polite = connect_to(socket_path);
  ASSERT_GE(polite, 0);
  send_all(polite, "help\n");
  EXPECT_TRUE(util::starts_with(read_line(polite), "ok commands:"));
  ::close(polite);

  loop.stop();
  server.join();
  std::remove(socket_path.c_str());
}

TEST(ServeSocketTest, QuitClosesOnlyThatConnection) {
  const std::string socket_path = ::testing::TempDir() + "/rebert_quit.sock";
  InferenceEngine engine(small_options());
  ServeLoop loop(engine);
  std::thread server([&] { loop.run_unix_socket(socket_path); });

  const int first = connect_to(socket_path);
  ASSERT_GE(first, 0);
  send_all(first, "quit\n");
  EXPECT_EQ(read_line(first), "ok bye");
  EXPECT_EQ(read_line(first), "");  // server closed the connection
  ::close(first);

  const int second = connect_to(socket_path);
  ASSERT_GE(second, 0);
  send_all(second, "stats\n");
  EXPECT_TRUE(util::starts_with(read_line(second), "ok threads="));
  ::close(second);

  loop.stop();
  server.join();
  std::remove(socket_path.c_str());
}

}  // namespace
}  // namespace rebert::serve
