// Reactor lifecycle suite: the epoll server core's C10K properties.
// Connection count must never buy a thread — a thousand idle sockets are
// a thousand descriptors in one epoll set — and the write path must
// survive partial sends to a slow reader without blocking the reactor.
//
// Labelled `concurrency` in ctest, so the suite runs under
// ThreadSanitizer via tools/static_analysis.sh.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "runtime/threads.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/serve_loop.h"
#include "serve/socket_server.h"
#include "util/string_utils.h"

namespace rebert::serve {
namespace {

EngineOptions small_options() {
  EngineOptions options;
  options.num_threads = 2;
  options.batch_size = 4;
  options.suite_scale = 0.25;
  options.experiment.pipeline.tokenizer.backtrace_depth = 4;
  options.experiment.pipeline.tokenizer.tree_code_dim = 8;
  options.experiment.pipeline.tokenizer.max_seq_len = 128;
  options.experiment.model_hidden = 32;
  options.experiment.model_layers = 1;
  options.experiment.model_heads = 2;
  return options;
}

int connect_raw(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return fd;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::close(fd);
  return -1;
}

/// Thread count once it settles at `expected` (short-lived threads exit
/// asynchronously after join); returns the last observed value.
int settled_thread_count(int expected) {
  int now = runtime::current_thread_count();
  for (int attempt = 0; attempt < 200 && now != expected; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    now = runtime::current_thread_count();
  }
  return now;
}

class ReactorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = ::testing::TempDir() + "/rebert_reactor_" +
                   std::to_string(::getpid()) + ".sock";
    engine_ = std::make_unique<InferenceEngine>(small_options());
    loop_ = std::make_unique<ServeLoop>(*engine_);
  }

  void start() {
    server_ = std::thread([this] { loop_->run_unix_socket(socket_path_); });
    // The dispatch pool spawns inside run(); wait until the server
    // answers so the thread baseline below is the steady state.
    Client probe(socket_path_);
    ASSERT_TRUE(probe.connect());
    ASSERT_TRUE(util::starts_with(probe.request("stats"), "ok threads="));
  }

  void TearDown() override {
    if (server_.joinable()) {
      loop_->stop();
      server_.join();
    }
    std::remove(socket_path_.c_str());
  }

  std::string socket_path_;
  std::unique_ptr<InferenceEngine> engine_;
  std::unique_ptr<ServeLoop> loop_;
  std::thread server_;
};

TEST_F(ReactorTest, ThousandIdleConnectionsCostZeroThreads) {
  loop_->set_dispatch_threads(4);
  start();
  const int baseline = runtime::current_thread_count();
  ASSERT_GT(baseline, 0) << "procfs unavailable";

  // A thousand connected-but-silent clients: the old design spawned a
  // thread per connection; the reactor holds them all in one epoll set.
  constexpr int kIdle = 1000;
  std::vector<int> idle;
  idle.reserve(kIdle);
  for (int i = 0; i < kIdle; ++i) {
    const int fd = connect_raw(socket_path_);
    ASSERT_GE(fd, 0) << "idle connection " << i;
    idle.push_back(fd);
  }
  EXPECT_EQ(runtime::current_thread_count(), baseline)
      << kIdle << " idle connections must not spawn threads";

  // Active traffic is still answered promptly with the idle herd parked.
  Client active(socket_path_);
  ASSERT_TRUE(active.connect());
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(util::starts_with(active.request("health"), "ok status="));
  EXPECT_EQ(runtime::current_thread_count(), baseline);
  active.close();
  for (const int fd : idle) ::close(fd);
}

TEST_F(ReactorTest, ThreadCountReturnsToBaselineAfterBurst) {
  loop_->set_dispatch_threads(4);
  start();
  const int baseline = runtime::current_thread_count();
  ASSERT_GT(baseline, 0) << "procfs unavailable";

  // A burst of short-lived connections — the regression this guards: the
  // old server reaped finished handler threads only when a *new*
  // connection arrived, so a burst then idle held dead threads (and their
  // stacks) indefinitely.
  for (int burst = 0; burst < 64; ++burst) {
    Client client(socket_path_);
    ASSERT_TRUE(client.connect());
    EXPECT_TRUE(util::starts_with(client.request("health"), "ok status="));
    client.close();
  }
  EXPECT_EQ(settled_thread_count(baseline), baseline)
      << "server must hold no per-connection threads after the burst";
}

TEST_F(ReactorTest, PartialWriteBackpressureToSlowReader) {
  start();
  // Pipeline far more response bytes than a unix socket buffers, without
  // reading any of them: the reactor must queue the overflow per
  // connection and keep serving everyone else, then deliver every byte
  // once the slow reader catches up.
  const int slow = connect_raw(socket_path_);
  ASSERT_GE(slow, 0);
  constexpr int kPipelined = 4000;  // ~4000 * ~200B of help text ≈ 800 KiB
  std::string burst;
  for (int i = 0; i < kPipelined; ++i) burst += "help\n";
  std::thread writer([&] {
    std::size_t sent = 0;
    while (sent < burst.size()) {
      const ssize_t n = ::send(slow, burst.data() + sent,
                               burst.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return;
      }
      sent += static_cast<std::size_t>(n);
    }
  });

  // While the slow reader's responses are backed up, other connections
  // are served normally — the reactor never blocks on one full socket.
  Client bystander(socket_path_);
  ASSERT_TRUE(bystander.connect());
  EXPECT_TRUE(util::starts_with(bystander.request("stats"), "ok threads="));
  bystander.close();

  // Now drain slowly and count complete responses: every request gets
  // exactly one well-formed line, none lost or interleaved mid-line.
  int responses = 0;
  std::string buffer;
  char chunk[4096];
  while (responses < kPipelined) {
    ssize_t got;
    do {
      got = ::read(slow, chunk, sizeof(chunk));
    } while (got < 0 && errno == EINTR);
    ASSERT_GT(got, 0) << "connection died after " << responses
                      << " responses";
    buffer.append(chunk, static_cast<std::size_t>(got));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      ASSERT_TRUE(util::starts_with(line, "ok commands:")) << line;
      ++responses;
    }
  }
  EXPECT_EQ(responses, kPipelined);
  writer.join();
  ::close(slow);
}

TEST_F(ReactorTest, FdExhaustionPausesAcceptsAndRecovers) {
  start();
  // Drive the process out of file descriptors while connections are
  // pending, so the server's accept4 fails with EMFILE. The reactor must
  // park the listener (a level-triggered listener it cannot accept from
  // would spin the loop) and — the half this test can actually assert —
  // re-arm it once descriptors free up, instead of losing it for good.
  rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  rlimit tight = saved;
  if (tight.rlim_cur > 160) tight.rlim_cur = 160;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);
  std::vector<int> hogs;
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) break;  // the process is out of descriptors
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      break;
    }
    hogs.push_back(fd);
  }
  // Both sides share this process's limit, so by now the server has
  // connections it cannot accept. Let it hit EMFILE and park.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  for (const int fd : hogs) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);

  // Descriptors are back: the parked listener must resume (close_conn or
  // the retry tick re-arms it) and fresh clients must be served.
  Client after(socket_path_);
  ASSERT_TRUE(after.connect());
  EXPECT_TRUE(util::starts_with(after.request("health"), "ok status="));
  after.close();
}

TEST(SocketServerTest, ThrowingHandlerStillAnswersAndShutdownDrains) {
  // handle_line is contracted not to throw — but when it does anyway, the
  // worker must turn the exception into a well-formed `err` response and
  // still decrement the in-flight count. The old behaviour left the
  // exception in the pool's discarded future: the connection stayed busy
  // forever and stop()'s drain spun waiting for an in-flight count that
  // never reached zero.
  SocketServer::Callbacks callbacks;
  callbacks.handle_line = [](const std::string& line,
                             bool* /*close*/) -> std::string {
    if (line == "boom") throw std::runtime_error("handler exploded");
    return "ok echo " + line;
  };
  SocketServer server(std::move(callbacks));
  const std::string path = ::testing::TempDir() + "/rebert_reactor_throw_" +
                           std::to_string(::getpid()) + ".sock";
  std::thread thread([&] { server.run(path); });

  Client client(path);
  ASSERT_TRUE(client.connect());
  EXPECT_EQ(client.request("boom"), "err handler exploded");
  // The connection is answered, not wedged: the next request round-trips.
  EXPECT_EQ(client.request("ping"), "ok echo ping");
  client.close();

  server.stop();
  thread.join();  // the ctest timeout is the wedge detector
  std::remove(path.c_str());
}

TEST_F(ReactorTest, MidRequestDisconnectLeavesDaemonServing) {
  start();
  // Half a request then gone — no newline ever arrives, so nothing may
  // dispatch and nothing may leak.
  const int fd = connect_raw(socket_path_);
  ASSERT_GE(fd, 0);
  const std::string partial = "score b03 q0_0";
  (void)::send(fd, partial.data(), partial.size(), MSG_NOSIGNAL);
  ::close(fd);

  Client survivor(socket_path_);
  ASSERT_TRUE(survivor.connect());
  EXPECT_TRUE(util::starts_with(survivor.request("stats"), "ok threads="));
  survivor.close();
}

TEST_F(ReactorTest, StopWithConnectionsInEveryStateReturnsPromptly) {
  start();
  // An idle parked connection, a half-written request, and a client that
  // disconnected already: stop() must close them all without wedging.
  const int idle = connect_raw(socket_path_);
  ASSERT_GE(idle, 0);
  const int half = connect_raw(socket_path_);
  ASSERT_GE(half, 0);
  const std::string partial = "stats";
  (void)::send(half, partial.data(), partial.size(), MSG_NOSIGNAL);
  const int gone = connect_raw(socket_path_);
  ASSERT_GE(gone, 0);
  ::close(gone);

  loop_->stop();
  server_.join();  // the ctest timeout is the wedge detector

  // Both survivors see the connection end — not a hang. EOF or
  // ECONNRESET are both acceptable: unread request bytes dying in the
  // server's buffer turn the close into a reset, and a connection still
  // sitting in the listener's backlog when stop() closes it is reset by
  // the kernel.
  char c;
  EXPECT_LE(::read(idle, &c, 1), 0);
  EXPECT_LE(::read(half, &c, 1), 0);
  ::close(idle);
  ::close(half);
}

}  // namespace
}  // namespace rebert::serve
