#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace rebert::tensor {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
  EXPECT_EQ(t.shape_string(), "[2,3]");
}

TEST(TensorTest, EmptyTensor) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.rank(), 0);
}

TEST(TensorTest, RejectsBadDims) {
  EXPECT_THROW(Tensor({2, 0}), util::CheckError);
  EXPECT_THROW(Tensor({-1}), util::CheckError);
}

TEST(TensorTest, At2DRowMajor) {
  Tensor t({2, 3});
  t.at(0, 0) = 1;
  t.at(0, 2) = 3;
  t.at(1, 0) = 4;
  EXPECT_EQ(t[0], 1.0f);
  EXPECT_EQ(t[2], 3.0f);
  EXPECT_EQ(t[3], 4.0f);
  EXPECT_THROW(t.at(2, 0), util::CheckError);
  EXPECT_THROW(t.at(0, 3), util::CheckError);
}

TEST(TensorTest, At3D) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 7.0f;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 7.0f);
  Tensor m({2, 2});
  EXPECT_THROW(m.at(0, 0, 0), util::CheckError);
}

TEST(TensorTest, Reshape) {
  Tensor t({2, 6});
  t.at(1, 0) = 5.0f;
  const Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r[6], 5.0f);  // same flat layout
  EXPECT_THROW(t.reshaped({5, 2}), util::CheckError);
}

TEST(TensorTest, FillAndFull) {
  Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_EQ(t[0], 2.5f);
  t.zero();
  EXPECT_EQ(t[2], 0.0f);
}

TEST(TensorTest, AddScaled) {
  Tensor a = Tensor::from_vector({1, 2, 3});
  const Tensor b = Tensor::from_vector({10, 20, 30});
  a.add_scaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  EXPECT_FLOAT_EQ(a[2], 18.0f);
  Tensor wrong({2});
  EXPECT_THROW(a.add_scaled(wrong, 1.0f), util::CheckError);
}

TEST(TensorTest, SumNormMax) {
  const Tensor t = Tensor::from_vector({3, -4, 0});
  EXPECT_DOUBLE_EQ(t.sum(), -1.0);
  EXPECT_DOUBLE_EQ(t.norm(), 5.0);
  EXPECT_FLOAT_EQ(t.max_value(), 3.0f);
}

TEST(TensorTest, XavierWithinLimit) {
  util::Rng rng(3);
  const int fan_in = 64, fan_out = 32;
  const Tensor w = Tensor::xavier(fan_in, fan_out, rng);
  const float limit = std::sqrt(6.0f / (fan_in + fan_out));
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(w[i], limit);
    EXPECT_GE(w[i], -limit);
  }
  // Not degenerate.
  EXPECT_GT(w.norm(), 0.1);
}

TEST(TensorTest, RandnMoments) {
  util::Rng rng(5);
  const Tensor t = Tensor::randn({100, 100}, rng, 0.5f);
  const double mean = t.sum() / t.numel();
  EXPECT_NEAR(mean, 0.0, 0.01);
  const double var = t.norm() * t.norm() / t.numel() - mean * mean;
  EXPECT_NEAR(var, 0.25, 0.01);
}

TEST(TensorTest, ValueSemantics) {
  Tensor a({2, 2});
  a.at(0, 0) = 1.0f;
  Tensor b = a;
  b.at(0, 0) = 9.0f;
  EXPECT_EQ(a.at(0, 0), 1.0f);
}

TEST(TensorTest, StorageIs64ByteAligned) {
  // The kernel backends (kernels/) rely on cache-line-aligned tensor
  // storage; regression-pin it across the allocator, copies, and awkward
  // sizes that land mid-line.
  for (const std::vector<int>& shape :
       {std::vector<int>{1}, {3}, {7, 5}, {64, 64}, {13, 17, 3}}) {
    const Tensor t(shape);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data()) % 64, 0u)
        << t.shape_string();
    const Tensor copy = t;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(copy.data()) % 64, 0u);
  }
}

}  // namespace
}  // namespace rebert::tensor
