// GraphCheck stage/param unification, the finite-value helpers, and the
// NaN/Inf tripwire.
#include "tensor/graphcheck.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/check.h"

namespace rebert::tensor {
namespace {

TEST(ShapePatternTest, Compatibility) {
  EXPECT_TRUE(shapes_compatible({2, 3}, {2, 3}));
  EXPECT_TRUE(shapes_compatible({kDynamicDim, 3}, {7, 3}));
  EXPECT_TRUE(shapes_compatible({7, 3}, {kDynamicDim, 3}));
  EXPECT_FALSE(shapes_compatible({2, 3}, {3, 2}));
  EXPECT_FALSE(shapes_compatible({2, 3}, {2, 3, 1}));  // rank mismatch
  EXPECT_TRUE(shapes_compatible({}, {}));
}

TEST(ShapePatternTest, Rendering) {
  EXPECT_EQ(shape_pattern_string({kDynamicDim, 64}), "[?, 64]");
  EXPECT_EQ(shape_pattern_string({}), "[]");
}

TEST(GraphCheckTest, ConsistentChainPasses) {
  GraphCheck g("chain");
  g.stage("embed", {kDynamicDim}, {kDynamicDim, 8})
      .stage("encoder", {kDynamicDim, 8}, {kDynamicDim, 8})
      .stage("head", {kDynamicDim, 8}, {1, 2});
  EXPECT_TRUE(g.ok());
  EXPECT_NO_THROW(g.finish());
}

TEST(GraphCheckTest, MismatchedStagesReported) {
  GraphCheck g("chain");
  g.stage("a", {kDynamicDim}, {kDynamicDim, 8})
      .stage("b", {kDynamicDim, 16}, {kDynamicDim, 16});  // 8 != 16
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.num_failures(), 1);
  EXPECT_THROW(g.finish(), util::CheckError);
}

TEST(GraphCheckTest, CollectsAllFailuresNotJustFirst) {
  GraphCheck g("multi");
  g.stage("a", {4}, {8})
      .stage("b", {9}, {10})    // failure 1: 8 vs 9
      .stage("c", {11}, {12})   // failure 2: 10 vs 11
      .require(false, "failure 3");
  EXPECT_EQ(g.num_failures(), 3);
  try {
    g.finish();
    FAIL() << "expected a throw";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("failure 3"), std::string::npos) << what;
    EXPECT_NE(what.find("3 problem(s)"), std::string::npos) << what;
  }
}

TEST(GraphCheckTest, ParamShapeVerified) {
  GraphCheck g("params");
  Tensor w({8, 16});
  g.param("layer.weight", w.shape(), {8, 16});
  EXPECT_TRUE(g.ok());
  g.param("layer.weight", w.shape(), {16, 8});
  EXPECT_FALSE(g.ok());
  EXPECT_NE(g.failures_text().find("layer.weight"), std::string::npos);
}

TEST(FiniteCheckTest, AllFiniteAndFirstNonfinite) {
  Tensor t({2, 2});
  EXPECT_TRUE(all_finite(t));
  EXPECT_EQ(first_nonfinite(t), -1);
  t.at(1, 0) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(all_finite(t));
  EXPECT_EQ(first_nonfinite(t), 2);  // row-major flat index
  t.at(1, 0) = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(all_finite(t));
}

TEST(FiniteCheckTest, CheckFiniteThrowsWithContext) {
  Tensor t({3});
  EXPECT_NO_THROW(check_finite(t, "grad"));
  t[1] = -std::numeric_limits<float>::infinity();
  try {
    check_finite(t, "encoder.0.query.grad");
    FAIL() << "expected a throw";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("encoder.0.query.grad"), std::string::npos) << what;
    EXPECT_NE(what.find("index 1"), std::string::npos) << what;
  }
}

TEST(NumericTripwireTest, RecordsFirstTripOnly) {
  NumericTripwire tripwire;
  Tensor good({2});
  Tensor bad({2});
  bad[1] = std::numeric_limits<float>::quiet_NaN();

  tripwire.set_step(12);
  tripwire.observe("good", good);
  EXPECT_FALSE(tripwire.tripped());
  tripwire.observe("first_bad", bad);
  EXPECT_TRUE(tripwire.tripped());
  tripwire.observe("second_bad", bad);  // must not overwrite
  EXPECT_NE(tripwire.first_trip().find("first_bad"), std::string::npos);
  EXPECT_NE(tripwire.first_trip().find("step 12"), std::string::npos);
  EXPECT_NE(tripwire.first_trip().find("index 1"), std::string::npos);
  EXPECT_EQ(tripwire.num_observations(), 3);
}

TEST(NumericTripwireTest, ScalarObservationAndReset) {
  NumericTripwire tripwire;
  tripwire.observe_scalar("loss", 0.5);
  EXPECT_FALSE(tripwire.tripped());
  tripwire.observe_scalar("loss", std::nan(""));
  EXPECT_TRUE(tripwire.tripped());
  EXPECT_NE(tripwire.first_trip().find("loss"), std::string::npos);

  tripwire.reset();
  EXPECT_FALSE(tripwire.tripped());
  EXPECT_EQ(tripwire.num_observations(), 0);
  EXPECT_TRUE(tripwire.first_trip().empty());
}

}  // namespace
}  // namespace rebert::tensor
