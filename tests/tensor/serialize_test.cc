#include "tensor/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/check.h"
#include "util/rng.h"

namespace rebert::tensor {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTrip) {
  util::Rng rng(1);
  Parameter a("layer.weight", Tensor::randn({3, 4}, rng));
  Parameter b("layer.bias", Tensor::randn({4}, rng));
  const std::string path = temp_path("ckpt_roundtrip.bin");
  save_parameters({&a, &b}, path);

  Parameter a2("layer.weight", Tensor({3, 4}));
  Parameter b2("layer.bias", Tensor({4}));
  load_parameters({&a2, &b2}, path);
  EXPECT_TRUE(allclose(a.value, a2.value));
  EXPECT_TRUE(allclose(b.value, b2.value));
  std::remove(path.c_str());
}

TEST(SerializeTest, OrderIndependentByName) {
  util::Rng rng(2);
  Parameter a("x", Tensor::randn({2}, rng));
  Parameter b("y", Tensor::randn({2}, rng));
  const std::string path = temp_path("ckpt_order.bin");
  save_parameters({&a, &b}, path);
  Parameter a2("x", Tensor({2})), b2("y", Tensor({2}));
  load_parameters({&b2, &a2}, path);  // reversed order
  EXPECT_TRUE(allclose(a.value, a2.value));
  EXPECT_TRUE(allclose(b.value, b2.value));
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  util::Rng rng(3);
  Parameter a("w", Tensor::randn({2, 2}, rng));
  const std::string path = temp_path("ckpt_shape.bin");
  save_parameters({&a}, path);
  Parameter wrong("w", Tensor({4}));
  EXPECT_THROW(load_parameters({&wrong}, path), util::CheckError);
  std::remove(path.c_str());
}

TEST(SerializeTest, UnknownNameRejected) {
  util::Rng rng(4);
  Parameter a("w", Tensor::randn({2}, rng));
  const std::string path = temp_path("ckpt_name.bin");
  save_parameters({&a}, path);
  Parameter other("different", Tensor({2}));
  EXPECT_THROW(load_parameters({&other}, path), util::CheckError);
  std::remove(path.c_str());
}

TEST(SerializeTest, IncompleteModelCoverageRejected) {
  util::Rng rng(5);
  Parameter a("w", Tensor::randn({2}, rng));
  const std::string path = temp_path("ckpt_partial.bin");
  save_parameters({&a}, path);
  Parameter a2("w", Tensor({2})), extra("extra", Tensor({1}));
  EXPECT_THROW(load_parameters({&a2, &extra}, path), util::CheckError);
  std::remove(path.c_str());
}

TEST(SerializeTest, CorruptFileRejected) {
  const std::string path = temp_path("ckpt_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint at all";
  }
  Parameter a("w", Tensor({2}));
  EXPECT_THROW(load_parameters({&a}, path), util::CheckError);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileRejected) {
  Parameter a("w", Tensor({2}));
  EXPECT_THROW(load_parameters({&a}, temp_path("does_not_exist.bin")),
               util::CheckError);
}

TEST(SerializeTest, TruncatedFileReportsOffsetAndSize) {
  // Regression: a checkpoint clipped mid-tensor must fail with a located
  // message ("at offset X of Y bytes"), not a bare end-of-file check.
  util::Rng rng(7);
  Parameter a("w", Tensor::randn({8, 8}, rng));
  const std::string path = temp_path("ckpt_located.bin");
  save_parameters({&a}, path);
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size() - 16));
  out.close();
  Parameter a2("w", Tensor({8, 8}));
  try {
    load_parameters({&a2}, path);
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(contents.size() - 16)),
              std::string::npos)
        << what;
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, SaveIsAtomicLeavesNoTempAndKeepsOldOnFailure) {
  // save_parameters stages through <path>.tmp.* and renames: after a
  // successful save only the checkpoint itself exists, and a failed save
  // (unwritable directory) leaves a previous checkpoint untouched.
  util::Rng rng(8);
  Parameter a("w", Tensor::randn({4}, rng));
  const std::string path = temp_path("ckpt_atomic.bin");
  save_parameters({&a}, path);
  Parameter a2("w", Tensor({4}));
  load_parameters({&a2}, path);  // loadable — no partial state
  EXPECT_TRUE(allclose(a.value, a2.value));
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  Parameter unnamed("", Tensor({2}));
  EXPECT_THROW(save_parameters({&unnamed}, path), util::CheckError);
  Parameter a3("w", Tensor({4}));
  load_parameters({&a3}, path);  // old checkpoint survived the failed save
  EXPECT_TRUE(allclose(a.value, a3.value));
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedFileRejected) {
  util::Rng rng(6);
  Parameter a("w", Tensor::randn({16, 16}, rng));
  const std::string path = temp_path("ckpt_trunc.bin");
  save_parameters({&a}, path);
  // Truncate to half size.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size() / 2));
  out.close();
  Parameter a2("w", Tensor({16, 16}));
  EXPECT_THROW(load_parameters({&a2}, path), util::CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rebert::tensor
