#include "tensor/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/check.h"
#include "util/rng.h"

namespace rebert::tensor {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTrip) {
  util::Rng rng(1);
  Parameter a("layer.weight", Tensor::randn({3, 4}, rng));
  Parameter b("layer.bias", Tensor::randn({4}, rng));
  const std::string path = temp_path("ckpt_roundtrip.bin");
  save_parameters({&a, &b}, path);

  Parameter a2("layer.weight", Tensor({3, 4}));
  Parameter b2("layer.bias", Tensor({4}));
  load_parameters({&a2, &b2}, path);
  EXPECT_TRUE(allclose(a.value, a2.value));
  EXPECT_TRUE(allclose(b.value, b2.value));
  std::remove(path.c_str());
}

TEST(SerializeTest, OrderIndependentByName) {
  util::Rng rng(2);
  Parameter a("x", Tensor::randn({2}, rng));
  Parameter b("y", Tensor::randn({2}, rng));
  const std::string path = temp_path("ckpt_order.bin");
  save_parameters({&a, &b}, path);
  Parameter a2("x", Tensor({2})), b2("y", Tensor({2}));
  load_parameters({&b2, &a2}, path);  // reversed order
  EXPECT_TRUE(allclose(a.value, a2.value));
  EXPECT_TRUE(allclose(b.value, b2.value));
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  util::Rng rng(3);
  Parameter a("w", Tensor::randn({2, 2}, rng));
  const std::string path = temp_path("ckpt_shape.bin");
  save_parameters({&a}, path);
  Parameter wrong("w", Tensor({4}));
  EXPECT_THROW(load_parameters({&wrong}, path), util::CheckError);
  std::remove(path.c_str());
}

TEST(SerializeTest, UnknownNameRejected) {
  util::Rng rng(4);
  Parameter a("w", Tensor::randn({2}, rng));
  const std::string path = temp_path("ckpt_name.bin");
  save_parameters({&a}, path);
  Parameter other("different", Tensor({2}));
  EXPECT_THROW(load_parameters({&other}, path), util::CheckError);
  std::remove(path.c_str());
}

TEST(SerializeTest, IncompleteModelCoverageRejected) {
  util::Rng rng(5);
  Parameter a("w", Tensor::randn({2}, rng));
  const std::string path = temp_path("ckpt_partial.bin");
  save_parameters({&a}, path);
  Parameter a2("w", Tensor({2})), extra("extra", Tensor({1}));
  EXPECT_THROW(load_parameters({&a2, &extra}, path), util::CheckError);
  std::remove(path.c_str());
}

TEST(SerializeTest, CorruptFileRejected) {
  const std::string path = temp_path("ckpt_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint at all";
  }
  Parameter a("w", Tensor({2}));
  EXPECT_THROW(load_parameters({&a}, path), util::CheckError);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileRejected) {
  Parameter a("w", Tensor({2}));
  EXPECT_THROW(load_parameters({&a}, temp_path("does_not_exist.bin")),
               util::CheckError);
}

TEST(SerializeTest, TruncatedFileRejected) {
  util::Rng rng(6);
  Parameter a("w", Tensor::randn({16, 16}, rng));
  const std::string path = temp_path("ckpt_trunc.bin");
  save_parameters({&a}, path);
  // Truncate to half size.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size() / 2));
  out.close();
  Parameter a2("w", Tensor({16, 16}));
  EXPECT_THROW(load_parameters({&a2}, path), util::CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rebert::tensor
