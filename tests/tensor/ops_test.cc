#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace rebert::tensor {
namespace {

Tensor make(const std::vector<float>& values, int rows, int cols) {
  return Tensor::from_vector(values).reshaped({rows, cols});
}

TEST(MatmulTest, HandComputed2x2) {
  const Tensor a = make({1, 2, 3, 4}, 2, 2);
  const Tensor b = make({5, 6, 7, 8}, 2, 2);
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(MatmulTest, RectangularShapes) {
  const Tensor a = make({1, 2, 3, 4, 5, 6}, 2, 3);
  const Tensor b = make({1, 0, 0, 1, 1, 1}, 3, 2);
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.dim(0), 2);
  EXPECT_EQ(c.dim(1), 2);
  EXPECT_FLOAT_EQ(c.at(0, 0), 4.0f);   // 1+0+3
  EXPECT_FLOAT_EQ(c.at(1, 1), 11.0f);  // 5+6
}

TEST(MatmulTest, RejectsMismatch) {
  const Tensor a({2, 3});
  const Tensor b({2, 3});
  EXPECT_THROW(matmul(a, b), util::CheckError);
  EXPECT_THROW(matmul(a, Tensor::from_vector({1, 2})), util::CheckError);
}

TEST(MatmulTest, VariantsAgreeWithExplicitTranspose) {
  util::Rng rng(11);
  const Tensor a = Tensor::randn({4, 5}, rng);
  const Tensor b = Tensor::randn({4, 6}, rng);
  // matmul_tn(a, b) == a^T b.
  EXPECT_TRUE(allclose(matmul_tn(a, b), matmul(transpose(a), b), 1e-4f));
  const Tensor c = Tensor::randn({6, 5}, rng);
  // matmul_nt(a, c) == a c^T.
  EXPECT_TRUE(allclose(matmul_nt(a, c), matmul(a, transpose(c)), 1e-4f));
}

TEST(TransposeTest, Involution) {
  util::Rng rng(13);
  const Tensor a = Tensor::randn({3, 7}, rng);
  EXPECT_TRUE(allclose(transpose(transpose(a)), a));
}

TEST(ElementwiseTest, AddSubMulScale) {
  const Tensor a = Tensor::from_vector({1, 2, 3});
  const Tensor b = Tensor::from_vector({4, 5, 6});
  EXPECT_TRUE(allclose(add(a, b), Tensor::from_vector({5, 7, 9})));
  EXPECT_TRUE(allclose(sub(b, a), Tensor::from_vector({3, 3, 3})));
  EXPECT_TRUE(allclose(mul(a, b), Tensor::from_vector({4, 10, 18})));
  EXPECT_TRUE(allclose(scale(a, -2.0f), Tensor::from_vector({-2, -4, -6})));
}

TEST(BiasTest, AddRowBiasAndColumnSum) {
  const Tensor x = make({1, 2, 3, 4}, 2, 2);
  const Tensor bias = Tensor::from_vector({10, 20});
  const Tensor y = add_row_bias(x, bias);
  EXPECT_FLOAT_EQ(y.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1), 24.0f);
  const Tensor cs = column_sum(x);
  EXPECT_FLOAT_EQ(cs[0], 4.0f);
  EXPECT_FLOAT_EQ(cs[1], 6.0f);
  EXPECT_THROW(add_row_bias(x, Tensor::from_vector({1, 2, 3})),
               util::CheckError);
}

TEST(GeluTest, KnownValues) {
  const Tensor x = Tensor::from_vector({0.0f, 1.0f, -1.0f, 3.0f});
  const Tensor y = gelu(x);
  EXPECT_NEAR(y[0], 0.0f, 1e-6);
  EXPECT_NEAR(y[1], 0.8413447f, 1e-5);   // 1 * Phi(1)
  EXPECT_NEAR(y[2], -0.1586553f, 1e-5);  // -1 * Phi(-1)
  EXPECT_NEAR(y[3], 2.9959507f, 1e-5);
}

TEST(GeluTest, BackwardMatchesFiniteDifference) {
  const float eps = 1e-3f;
  for (float v : {-2.0f, -0.5f, 0.0f, 0.7f, 2.5f}) {
    const Tensor x = Tensor::from_vector({v});
    const Tensor dy = Tensor::from_vector({1.0f});
    const float analytic = gelu_backward(dy, x)[0];
    const float plus = gelu(Tensor::from_vector({v + eps}))[0];
    const float minus = gelu(Tensor::from_vector({v - eps}))[0];
    EXPECT_NEAR(analytic, (plus - minus) / (2 * eps), 1e-3) << "x=" << v;
  }
}

TEST(TanhTest, ForwardBackward) {
  const Tensor x = Tensor::from_vector({0.5f});
  const Tensor y = tanh_forward(x);
  EXPECT_NEAR(y[0], std::tanh(0.5f), 1e-6);
  const Tensor dx = tanh_backward(Tensor::from_vector({1.0f}), y);
  EXPECT_NEAR(dx[0], 1.0f - y[0] * y[0], 1e-6);
}

TEST(ReluTest, ForwardBackward) {
  const Tensor x = Tensor::from_vector({-1.0f, 0.0f, 2.0f});
  EXPECT_TRUE(allclose(relu(x), Tensor::from_vector({0, 0, 2})));
  const Tensor dx = relu_backward(Tensor::from_vector({5, 5, 5}), x);
  EXPECT_TRUE(allclose(dx, Tensor::from_vector({0, 0, 5})));
}

TEST(SoftmaxTest, RowsSumToOne) {
  util::Rng rng(17);
  const Tensor x = Tensor::randn({5, 8}, rng, 3.0f);
  const Tensor y = softmax_rows(x);
  for (int i = 0; i < 5; ++i) {
    float total = 0.0f;
    for (int j = 0; j < 8; ++j) {
      EXPECT_GT(y.at(i, j), 0.0f);
      total += y.at(i, j);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5);
  }
}

TEST(SoftmaxTest, ShiftInvariant) {
  const Tensor x = make({1, 2, 3, 4}, 2, 2);
  Tensor shifted = x;
  for (std::int64_t i = 0; i < shifted.numel(); ++i) shifted[i] += 100.0f;
  EXPECT_TRUE(allclose(softmax_rows(x), softmax_rows(shifted), 1e-5f));
}

TEST(SoftmaxTest, StableForLargeLogits) {
  const Tensor x = make({1000.0f, 0.0f}, 1, 2);
  const Tensor y = softmax_rows(x);
  EXPECT_NEAR(y.at(0, 0), 1.0f, 1e-6);
  EXPECT_FALSE(std::isnan(y.at(0, 1)));
}

TEST(SoftmaxTest, BackwardMatchesFiniteDifference) {
  // Scalar loss = sum(w . softmax(x)) with fixed weights.
  const Tensor w = Tensor::from_vector({0.3f, -1.2f, 2.0f}).reshaped({1, 3});
  Tensor x = Tensor::from_vector({0.1f, 0.5f, -0.3f}).reshaped({1, 3});
  auto loss = [&]() {
    const Tensor y = softmax_rows(x);
    double total = 0.0;
    for (int j = 0; j < 3; ++j) total += w.at(0, j) * y.at(0, j);
    return total;
  };
  const Tensor y = softmax_rows(x);
  const Tensor dx = softmax_rows_backward(w, y);
  const float eps = 1e-3f;
  for (int j = 0; j < 3; ++j) {
    const float orig = x.at(0, j);
    x.at(0, j) = orig + eps;
    const double plus = loss();
    x.at(0, j) = orig - eps;
    const double minus = loss();
    x.at(0, j) = orig;
    EXPECT_NEAR(dx.at(0, j), (plus - minus) / (2 * eps), 1e-4);
  }
}

TEST(CrossEntropyTest, KnownValue) {
  // Uniform logits over 2 classes: loss = ln 2.
  const Tensor logits = make({0, 0, 0, 0}, 2, 2);
  const double loss =
      cross_entropy_with_logits(logits, {0, 1}, nullptr);
  EXPECT_NEAR(loss, std::log(2.0), 1e-6);
}

TEST(CrossEntropyTest, GradientIsSoftmaxMinusOnehot) {
  const Tensor logits = make({1, 2, 0.5f, -0.5f}, 2, 2);
  Tensor d;
  cross_entropy_with_logits(logits, {1, 0}, &d);
  const Tensor probs = softmax_rows(logits);
  EXPECT_NEAR(d.at(0, 0), probs.at(0, 0) / 2, 1e-6);
  EXPECT_NEAR(d.at(0, 1), (probs.at(0, 1) - 1) / 2, 1e-6);
  EXPECT_NEAR(d.at(1, 0), (probs.at(1, 0) - 1) / 2, 1e-6);
}

TEST(CrossEntropyTest, RejectsBadLabels) {
  const Tensor logits = make({0, 0}, 1, 2);
  EXPECT_THROW(cross_entropy_with_logits(logits, {2}, nullptr),
               util::CheckError);
  EXPECT_THROW(cross_entropy_with_logits(logits, {0, 1}, nullptr),
               util::CheckError);
}

TEST(GatherTest, SelectsRows) {
  const Tensor table = make({1, 2, 3, 4, 5, 6}, 3, 2);
  const Tensor out = gather_rows(table, {2, 0, 2});
  EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(out.at(2, 1), 6.0f);
  EXPECT_THROW(gather_rows(table, {3}), util::CheckError);
  EXPECT_THROW(gather_rows(table, {-1}), util::CheckError);
}

TEST(AllcloseTest, Behaviour) {
  const Tensor a = Tensor::from_vector({1.0f, 2.0f});
  Tensor b = a;
  EXPECT_TRUE(allclose(a, b));
  b[1] += 1e-6f;
  EXPECT_TRUE(allclose(a, b, 1e-5f));
  b[1] += 1.0f;
  EXPECT_FALSE(allclose(a, b, 1e-5f));
  EXPECT_FALSE(allclose(a, Tensor::from_vector({1.0f, 2.0f, 3.0f})));
}

}  // namespace
}  // namespace rebert::tensor
