#include "tensor/optimizer.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace rebert::tensor {
namespace {

// Minimizes f(w) = 0.5 * ||w - target||^2; gradient = w - target.
void fill_quadratic_grad(Parameter* p, const Tensor& target) {
  for (std::int64_t i = 0; i < p->value.numel(); ++i)
    p->grad[i] = p->value[i] - target[i];
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Parameter w("w", Tensor::from_vector({10, -10, 5}));
  const Tensor target = Tensor::from_vector({1, 2, 3});
  Sgd opt({&w});
  for (int i = 0; i < 200; ++i) {
    fill_quadratic_grad(&w, target);
    opt.step(0.1);
  }
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(w.value[i], target[i], 1e-4);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Parameter w1("w", Tensor::from_vector({10}));
  Parameter w2("w", Tensor::from_vector({10}));
  const Tensor target = Tensor::from_vector({0});
  Sgd plain({&w1});
  Sgd momentum({&w2}, 0.9);
  for (int i = 0; i < 10; ++i) {
    fill_quadratic_grad(&w1, target);
    plain.step(0.01);
    fill_quadratic_grad(&w2, target);
    momentum.step(0.01);
  }
  EXPECT_LT(std::abs(w2.value[0]), std::abs(w1.value[0]));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Parameter w("w", Tensor::from_vector({5, -7}));
  const Tensor target = Tensor::from_vector({-1, 4});
  Adam opt({&w});
  for (int i = 0; i < 2000; ++i) {
    fill_quadratic_grad(&w, target);
    opt.step(0.05);
  }
  EXPECT_NEAR(w.value[0], -1.0, 1e-2);
  EXPECT_NEAR(w.value[1], 4.0, 1e-2);
}

TEST(AdamTest, StepZeroesGradients) {
  Parameter w("w", Tensor::from_vector({1}));
  Adam opt({&w});
  w.grad[0] = 2.0f;
  opt.step(0.01);
  EXPECT_FLOAT_EQ(w.grad[0], 0.0f);
  EXPECT_EQ(opt.step_count(), 1);
}

TEST(AdamTest, WeightDecayShrinksParameters) {
  Parameter w("w", Tensor::from_vector({4.0f}));
  Adam::Options options;
  options.weight_decay = 0.1;
  Adam opt({&w}, options);
  // Zero task gradient: only decay acts.
  for (int i = 0; i < 50; ++i) opt.step(0.1);
  EXPECT_LT(w.value[0], 4.0f);
  EXPECT_GT(w.value[0], 0.0f);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  Parameter a("a", Tensor::from_vector({1}));
  Parameter b("b", Tensor::from_vector({1, 2}));
  a.grad[0] = 3.0f;
  b.grad[1] = 4.0f;
  Sgd opt({&a, &b});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(a.grad[0], 0.0f);
  EXPECT_FLOAT_EQ(b.grad[1], 0.0f);
}

TEST(OptimizerTest, RejectsEmptyOrNull) {
  EXPECT_THROW(Sgd({}), util::CheckError);
  EXPECT_THROW(Sgd({nullptr}), util::CheckError);
}

TEST(ScheduleTest, WarmupThenLinearDecay) {
  WarmupLinearSchedule sched(1.0, 10, 110);
  // Warmup ramps from base/warmup to base.
  EXPECT_NEAR(sched.lr(0), 0.1, 1e-9);
  EXPECT_NEAR(sched.lr(4), 0.5, 1e-9);
  EXPECT_NEAR(sched.lr(9), 1.0, 1e-9);
  // Decay hits zero at total_steps.
  EXPECT_NEAR(sched.lr(10), 1.0, 1e-9);
  EXPECT_NEAR(sched.lr(60), 0.5, 1e-9);
  EXPECT_NEAR(sched.lr(110), 0.0, 1e-9);
  EXPECT_NEAR(sched.lr(500), 0.0, 1e-9);
}

TEST(ScheduleTest, NoDecayWhenTotalStepsZero) {
  WarmupLinearSchedule sched(0.5, 4, 0);
  EXPECT_NEAR(sched.lr(2), 0.375, 1e-9);
  EXPECT_NEAR(sched.lr(1000), 0.5, 1e-9);
}

TEST(ScheduleTest, RejectsBadArgs) {
  EXPECT_THROW(WarmupLinearSchedule(0.0, 1, 10), util::CheckError);
  EXPECT_THROW(WarmupLinearSchedule(1.0, -1, 10), util::CheckError);
  EXPECT_THROW(WarmupLinearSchedule(1.0, 20, 10), util::CheckError);
}

// Least-squares regression solved by Adam: y = X w*, recover w*.
TEST(AdamTest, SolvesLeastSquares) {
  util::Rng rng(21);
  const int n = 64, d = 4;
  const Tensor x = Tensor::randn({n, d}, rng);
  Tensor w_star({d, 1});
  for (int i = 0; i < d; ++i) w_star.at(i, 0) = static_cast<float>(i - 1.5);
  const Tensor y = matmul(x, w_star);

  Parameter w("w", Tensor({d, 1}));
  Adam opt({&w});
  for (int iter = 0; iter < 1500; ++iter) {
    const Tensor pred = matmul(x, w.value);
    Tensor residual = sub(pred, y);
    // grad = X^T residual / n.
    const Tensor g = scale(matmul_tn(x, residual), 1.0f / n);
    w.grad.add_scaled(g, 1.0f);
    opt.step(0.05);
  }
  for (int i = 0; i < d; ++i)
    EXPECT_NEAR(w.value.at(i, 0), w_star.at(i, 0), 0.05) << "coef " << i;
}

}  // namespace
}  // namespace rebert::tensor
