#include "tensor/layers.h"

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "util/check.h"

namespace rebert::tensor {
namespace {

TEST(LinearTest, ForwardShapeAndBias) {
  util::Rng rng(1);
  Linear layer("l", 3, 2, rng);
  layer.weight.value.fill(0.0f);
  layer.weight.value.at(0, 0) = 1.0f;  // y0 = x0
  layer.weight.value.at(2, 1) = 2.0f;  // y1 = 2 x2
  layer.bias.value[1] = 0.5f;
  const Tensor x = Tensor::from_vector({1, 10, 100}).reshaped({1, 3});
  const Tensor y = layer.forward(x, nullptr);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 200.5f);
}

TEST(LinearTest, GradcheckWeightBiasInput) {
  util::Rng rng(2);
  Linear layer("l", 4, 3, rng);
  const Tensor x = Tensor::randn({5, 4}, rng);
  // Loss = sum(forward(x)).
  auto loss = [&]() {
    const Tensor y = layer.forward(x, nullptr);
    return y.sum();
  };
  Linear::Cache cache;
  const Tensor y = layer.forward(x, &cache);
  const Tensor dy = Tensor::full(y.shape(), 1.0f);
  layer.weight.zero_grad();
  layer.bias.zero_grad();
  const Tensor dx = layer.backward(dy, cache);

  const auto wres =
      check_gradient(&layer.weight.value, layer.weight.grad, loss);
  EXPECT_TRUE(wres.ok) << "weight rel err " << wres.max_rel_error;
  const auto bres = check_gradient(&layer.bias.value, layer.bias.grad, loss);
  EXPECT_TRUE(bres.ok) << "bias rel err " << bres.max_rel_error;

  // Input gradient: loss as function of x entries.
  Tensor x_copy = x;
  auto loss_x = [&]() { return layer.forward(x_copy, nullptr).sum(); };
  const auto xres = check_gradient(&x_copy, dx, loss_x);
  EXPECT_TRUE(xres.ok) << "input rel err " << xres.max_rel_error;
}

TEST(LinearTest, GradientsAccumulateAcrossCalls) {
  util::Rng rng(3);
  Linear layer("l", 2, 2, rng);
  const Tensor x = Tensor::randn({1, 2}, rng);
  Linear::Cache cache;
  layer.forward(x, &cache);
  const Tensor dy = Tensor::full({1, 2}, 1.0f);
  layer.backward(dy, cache);
  const double norm1 = layer.weight.grad.norm();
  layer.backward(dy, cache);
  EXPECT_NEAR(layer.weight.grad.norm(), 2 * norm1, 1e-5);
}

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm norm("ln", 4);
  const Tensor x =
      Tensor::from_vector({1, 2, 3, 4, -10, 0, 10, 20}).reshaped({2, 4});
  const Tensor y = norm.forward(x, nullptr);
  for (int i = 0; i < 2; ++i) {
    double mean = 0, var = 0;
    for (int j = 0; j < 4; ++j) mean += y.at(i, j);
    mean /= 4;
    for (int j = 0; j < 4; ++j) var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    var /= 4;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNormTest, GammaBetaApplied) {
  LayerNorm norm("ln", 2);
  norm.gamma.value[0] = 2.0f;
  norm.beta.value[1] = 5.0f;
  const Tensor x = Tensor::from_vector({1, 3}).reshaped({1, 2});
  const Tensor y = norm.forward(x, nullptr);
  // normalized = {-1, 1}: y0 = -2, y1 = 1 + 5.
  EXPECT_NEAR(y.at(0, 0), -2.0f, 1e-3);
  EXPECT_NEAR(y.at(0, 1), 6.0f, 1e-3);
}

TEST(LayerNormTest, Gradcheck) {
  util::Rng rng(4);
  LayerNorm norm("ln", 6);
  for (std::int64_t i = 0; i < norm.gamma.value.numel(); ++i)
    norm.gamma.value[i] = static_cast<float>(rng.uniform(0.5, 1.5));
  Tensor x = Tensor::randn({3, 6}, rng);
  // Weighted loss so gradients differ per coordinate.
  const Tensor w = Tensor::randn({3, 6}, rng);
  auto loss = [&]() {
    const Tensor y = norm.forward(x, nullptr);
    return mul(y, w).sum();
  };
  LayerNorm::Cache cache;
  norm.forward(x, &cache);
  norm.gamma.zero_grad();
  norm.beta.zero_grad();
  const Tensor dx = norm.backward(w, cache);

  EXPECT_TRUE(check_gradient(&norm.gamma.value, norm.gamma.grad, loss).ok);
  EXPECT_TRUE(check_gradient(&norm.beta.value, norm.beta.grad, loss).ok);
  EXPECT_TRUE(check_gradient(&x, dx, loss).ok);
}

TEST(EmbeddingTest, LookupAndBackward) {
  util::Rng rng(5);
  Embedding emb("e", 10, 4, rng);
  Embedding::Cache cache;
  const Tensor out = emb.forward({3, 7, 3}, &cache);
  EXPECT_EQ(out.dim(0), 3);
  EXPECT_EQ(out.dim(1), 4);
  // Row 0 and 2 identical (same id).
  for (int j = 0; j < 4; ++j) EXPECT_EQ(out.at(0, j), out.at(2, j));

  emb.table.zero_grad();
  Tensor dy({3, 4});
  dy.fill(1.0f);
  emb.backward(dy, cache);
  // id 3 used twice: grad 2; id 7 once: grad 1; others 0.
  EXPECT_FLOAT_EQ(emb.table.grad.at(3, 0), 2.0f);
  EXPECT_FLOAT_EQ(emb.table.grad.at(7, 2), 1.0f);
  EXPECT_FLOAT_EQ(emb.table.grad.at(0, 0), 0.0f);
}

TEST(EmbeddingTest, Gradcheck) {
  util::Rng rng(6);
  Embedding emb("e", 5, 3, rng);
  const std::vector<int> ids{1, 4, 1};
  const Tensor w = Tensor::randn({3, 3}, rng);
  auto loss = [&]() { return mul(emb.forward(ids, nullptr), w).sum(); };
  Embedding::Cache cache;
  emb.forward(ids, &cache);
  emb.table.zero_grad();
  emb.backward(w, cache);
  EXPECT_TRUE(check_gradient(&emb.table.value, emb.table.grad, loss).ok);
}

TEST(DropoutTest, EvalModeIsIdentity) {
  util::Rng rng(7);
  Dropout drop(0.5f);
  const Tensor x = Tensor::randn({4, 4}, rng);
  Dropout::Cache cache;
  const Tensor y = drop.forward(x, /*training=*/false, rng, &cache);
  EXPECT_TRUE(allclose(y, x));
  EXPECT_TRUE(allclose(drop.backward(x, cache), x));
}

TEST(DropoutTest, TrainingDropsAndRescales) {
  util::Rng rng(8);
  Dropout drop(0.5f);
  const Tensor x = Tensor::full({100, 100}, 1.0f);
  Dropout::Cache cache;
  const Tensor y = drop.forward(x, true, rng, &cache);
  int zeros = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f)
      ++zeros;
    else
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // 1 / (1 - 0.5)
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.5, 0.02);
  // Expectation preserved.
  EXPECT_NEAR(y.sum() / y.numel(), 1.0, 0.05);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  util::Rng rng(9);
  Dropout drop(0.3f);
  const Tensor x = Tensor::full({10, 10}, 1.0f);
  Dropout::Cache cache;
  const Tensor y = drop.forward(x, true, rng, &cache);
  const Tensor dx = drop.backward(Tensor::full({10, 10}, 1.0f), cache);
  for (std::int64_t i = 0; i < y.numel(); ++i)
    EXPECT_EQ(dx[i] == 0.0f, y[i] == 0.0f);
}

TEST(DropoutTest, ZeroRateIsIdentityEvenInTraining) {
  util::Rng rng(10);
  Dropout drop(0.0f);
  const Tensor x = Tensor::randn({3, 3}, rng);
  Dropout::Cache cache;
  EXPECT_TRUE(allclose(drop.forward(x, true, rng, &cache), x));
}

TEST(ClipGradientsTest, ScalesDownLargeGradients) {
  Parameter a("a", Tensor::from_vector({0, 0, 0}));
  Parameter b("b", Tensor::from_vector({0, 0, 0, 0}));
  a.grad = Tensor::from_vector({3, 0, 0});
  b.grad = Tensor::from_vector({0, 4, 0, 0});
  // Global norm = 5.
  const double norm = clip_gradients({&a, &b}, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(a.grad[0], 3.0 / 5.0, 1e-6);
  EXPECT_NEAR(b.grad[1], 4.0 / 5.0, 1e-6);
}

TEST(ClipGradientsTest, LeavesSmallGradientsAlone) {
  Parameter a("a", Tensor::from_vector({0}));
  a.grad = Tensor::from_vector({0.5f});
  clip_gradients({&a}, 1.0);
  EXPECT_FLOAT_EQ(a.grad[0], 0.5f);
}

}  // namespace
}  // namespace rebert::tensor
