// Cross-module integration tests: the full flows a user actually runs,
// stitched across netlist I/O, generation, corruption, optimization,
// tokenization, both recovery methods, and metrics.
#include <gtest/gtest.h>

#include "circuitgen/suite.h"
#include "metrics/clustering.h"
#include "nl/corruption.h"
#include "nl/decompose.h"
#include "nl/opt.h"
#include "nl/parser.h"
#include "nl/simulate.h"
#include "nl/verilog.h"
#include "rebert/pipeline.h"
#include "rebert/report.h"
#include "structural/matching.h"

namespace rebert {
namespace {

core::CircuitData make_circuit(const std::string& name, double scale) {
  gen::GeneratedCircuit generated = gen::generate_benchmark(name, scale);
  return core::CircuitData{name, std::move(generated.netlist),
                           std::move(generated.words)};
}

// Generated circuit -> Verilog text -> reparse -> corrupt -> optimize:
// function preserved through the entire tool chain.
TEST(EndToEndTest, FormatCorruptOptimizeChainPreservesFunction) {
  const gen::GeneratedCircuit original = gen::generate_benchmark("b08");
  const nl::Netlist via_verilog =
      nl::parse_verilog_string(nl::write_verilog_string(original.netlist));
  const nl::Netlist via_bench =
      nl::parse_bench_string(nl::write_bench_string(via_verilog));
  const nl::Netlist corrupted =
      nl::corrupt_netlist(via_bench, {.r_index = 0.7, .seed = 9});
  const nl::Netlist optimized = nl::optimize_netlist(corrupted);

  const nl::EquivalenceResult eq = nl::check_equivalence(
      original.netlist, optimized,
      {.num_sequences = 6, .cycles_per_sequence = 24});
  EXPECT_TRUE(eq.equivalent) << eq.mismatched_net;
}

// Ground truth survives the tool chain: bits keep names through formats,
// corruption, and optimization, so labels stay aligned.
TEST(EndToEndTest, GroundTruthAlignmentSurvivesToolChain) {
  const core::CircuitData circuit = make_circuit("b03", 1.0);
  const nl::Netlist reparsed =
      nl::parse_verilog_string(nl::write_verilog_string(circuit.netlist));
  const nl::Netlist corrupted =
      nl::corrupt_netlist(reparsed, {.r_index = 0.5, .seed = 2});
  const nl::Netlist optimized = nl::optimize_netlist(corrupted);

  const auto bits_before = nl::extract_bits(circuit.netlist);
  const auto bits_after = nl::extract_bits(optimized);
  ASSERT_EQ(bits_before.size(), bits_after.size());
  const auto labels_before = circuit.words.labels_for(bits_before);
  const auto labels_after = circuit.words.labels_for(bits_after);
  EXPECT_EQ(labels_before, labels_after);
}

// Structural recovery through the full adversarial chain still produces a
// valid partition, and the clean chain scores better than the corrupted
// one (averaged over seeds to kill variance).
TEST(EndToEndTest, StructuralDegradationIsMonotoneOnAverage) {
  const core::CircuitData circuit = make_circuit("b04", 1.0);
  const auto bits = nl::extract_bits(circuit.netlist);
  const auto truth = circuit.words.labels_for(bits);

  auto average_ari = [&](double r) {
    double total = 0.0;
    const int kSeeds = 3;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const nl::Netlist variant =
          r == 0.0 ? circuit.netlist
                   : nl::corrupt_netlist(
                         circuit.netlist,
                         {.r_index = r,
                          .seed = static_cast<std::uint64_t>(seed)});
      total += metrics::adjusted_rand_index(
          truth,
          structural::recover_words_structural(variant).labels);
    }
    return total / kSeeds;
  };
  const double clean = average_ari(0.0);
  const double mid = average_ari(0.5);
  EXPECT_GT(clean, 0.2);
  EXPECT_LT(mid, clean);
}

// Mini paper experiment: train on two circuits, evaluate on a third, and
// require ReBERT to beat the structural baseline averaged over the
// corruption sweep (the paper's headline claim at miniature scale).
TEST(EndToEndTest, ReBertBeatsStructuralAveragedOverSweep) {
  std::vector<core::CircuitData> circuits;
  circuits.push_back(make_circuit("b03", 0.5));
  circuits.push_back(make_circuit("b08", 0.5));
  circuits.push_back(make_circuit("b13", 0.5));
  const core::CircuitData target = make_circuit("b11", 0.5);

  core::ExperimentOptions options;
  options.pipeline.tokenizer.tree_code_dim = 16;
  options.pipeline.tokenizer.max_seq_len = 192;
  options.dataset.max_samples_per_circuit = 150;
  options.training.epochs = 3;

  std::vector<const core::CircuitData*> train_set;
  for (const auto& circuit : circuits) train_set.push_back(&circuit);
  const auto model = core::train_rebert(train_set, options);

  double rebert_total = 0.0, structural_total = 0.0;
  const auto bits = nl::extract_bits(target.netlist);
  for (double r : {0.0, 0.4, 0.8}) {
    const core::EvaluationResult rebert_result =
        core::evaluate_rebert(target, r, *model, options);
    rebert_total += rebert_result.ari;

    nl::CorruptionOptions corrupt_options;
    corrupt_options.r_index = r;
    corrupt_options.seed =
        options.corruption_seed ^ std::hash<std::string>{}(target.name);
    const nl::Netlist variant =
        r == 0.0 ? target.netlist
                 : nl::corrupt_netlist(target.netlist, corrupt_options);
    const auto variant_bits = nl::extract_bits(variant);
    structural_total += metrics::adjusted_rand_index(
        target.words.labels_for(variant_bits),
        structural::recover_words_structural(variant).labels);
  }
  EXPECT_GT(rebert_total, structural_total)
      << "ReBERT avg " << rebert_total / 3 << " vs structural "
      << structural_total / 3;
}

// Detailed recovery + report end-to-end on a trained-from-scratch model.
TEST(EndToEndTest, DetailedRecoveryAndReport) {
  const core::CircuitData circuit = make_circuit("b03", 0.5);
  core::ExperimentOptions options;
  options.pipeline.tokenizer.tree_code_dim = 16;
  options.pipeline.tokenizer.max_seq_len = 192;
  bert::BertPairClassifier model(core::make_model_config(options));

  const core::RecoveryArtifacts artifacts = core::recover_words_detailed(
      circuit.netlist, model, options.pipeline);
  EXPECT_EQ(artifacts.bits.size(), circuit.netlist.dffs().size());
  EXPECT_EQ(artifacts.sequences.size(), artifacts.bits.size());
  EXPECT_EQ(artifacts.scores.size(),
            static_cast<int>(artifacts.bits.size()));

  const core::WordReport report = core::make_word_report(
      artifacts.bits, artifacts.scores, artifacts.result.labels);
  EXPECT_EQ(static_cast<int>(report.words.size()) + report.num_singletons,
            artifacts.result.num_words);
  EXPECT_FALSE(report.to_string().empty());
}

// The .bench and Verilog readers agree on the same circuit.
TEST(EndToEndTest, BenchAndVerilogAgree) {
  const gen::GeneratedCircuit circuit = gen::generate_benchmark("b05");
  const nl::Netlist from_bench =
      nl::parse_bench_string(nl::write_bench_string(circuit.netlist));
  const nl::Netlist from_verilog =
      nl::parse_verilog_string(nl::write_verilog_string(circuit.netlist));
  EXPECT_TRUE(nl::check_equivalence(from_bench, from_verilog,
                                    {.num_sequences = 4,
                                     .cycles_per_sequence = 16})
                  .equivalent);
}

}  // namespace
}  // namespace rebert
