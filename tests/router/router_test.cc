// Router chaos — end-to-end over real Unix sockets with real engines: a
// router in front of in-process serve backends must forward transparently,
// pass backend overload advisories through untouched, survive a backend
// killed mid-storm with zero lost requests, and give a drained or dead
// backend's key range back after revival.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "router/hash_ring.h"
#include "router/router.h"
#include "runtime/fault_injector.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/serve_loop.h"
#include "util/string_utils.h"

namespace rebert::router {
namespace {

using serve::EngineOptions;
using serve::InferenceEngine;
using serve::ServeLoop;

EngineOptions small_options() {
  EngineOptions options;
  options.num_threads = 2;
  options.batch_size = 4;
  options.suite_scale = 0.25;
  options.experiment.pipeline.tokenizer.backtrace_depth = 4;
  options.experiment.pipeline.tokenizer.tree_code_dim = 8;
  options.experiment.pipeline.tokenizer.max_seq_len = 128;
  options.experiment.model_hidden = 32;
  options.experiment.model_layers = 1;
  options.experiment.model_heads = 2;
  return options;
}

RouterOptions fast_router_options() {
  RouterOptions options;
  options.probe_interval_ms = 0;  // tests call probe_once() themselves
  // Fail fast on dead sockets so reroutes happen in milliseconds, not the
  // patient cold-start connect budget.
  options.client.connect_attempts = 3;
  options.client.connect_poll_ms = 5;
  options.retry_after_ms = 9;
  return options;
}

// An in-process backend: real engine, real serve loop, real socket.
struct TestBackend {
  InferenceEngine engine;
  ServeLoop loop;
  std::string path;
  std::thread server;

  TestBackend(std::string socket_path, EngineOptions options)
      : engine(options),
        loop(engine),
        path(std::move(socket_path)),
        server([this] { loop.run_unix_socket(path); }) {}

  void kill() {
    loop.stop();
    if (server.joinable()) server.join();
  }

  ~TestBackend() {
    kill();
    std::remove(path.c_str());
  }
};

bool wait_ready(const std::string& socket_path) {
  serve::Client client(socket_path);  // default 2 s connect budget
  if (!client.connect()) return false;
  try {
    return util::starts_with(client.request("health"), "ok");
  } catch (const std::exception&) {
    return false;
  }
}

// Drive one line to an `ok` answer, retrying shed/no-backend advisories.
// Returns false when a non-retryable error came back.
bool request_until_ok(Router& router, const std::string& line,
                      int max_attempts = 200) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    bool quit = false;
    const std::string response = router.handle_line(line, &quit);
    if (util::starts_with(response, "ok ")) return true;
    if (util::starts_with(response, "err overloaded") ||
        util::starts_with(response, "err no_backend")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    ADD_FAILURE() << "non-retryable response: " << response;
    return false;
  }
  ADD_FAILURE() << "never answered ok: " << line;
  return false;
}

TEST(RouterTest, BackendForMatchesStandaloneRing) {
  // add_backend never dials, so unreachable sockets are fine here: the
  // placement function must be the plain HashRing of the backend names.
  Router router(fast_router_options());
  router.add_backend("backend0", "/tmp/router_test_nowhere0.sock");
  router.add_backend("backend1", "/tmp/router_test_nowhere1.sock");
  HashRing ring(fast_router_options().vnodes);
  ring.add("backend0");
  ring.add("backend1");
  for (const char* bench : {"b03", "b04", "b05", "b07", "b08", "b11"})
    EXPECT_EQ(router.backend_for(bench), ring.node_for(bench)) << bench;
  EXPECT_THROW(router.add_backend("backend0", "/tmp/dup.sock"),
               std::exception);
}

TEST(RouterTest, EmptyRingRefusesWithAdvisory) {
  Router router(fast_router_options());
  bool quit = false;
  const std::string response = router.handle_line("score b03 q0 q1", &quit);
  EXPECT_TRUE(util::starts_with(response, "err no_backend")) << response;
  EXPECT_EQ(serve::parse_retry_after_ms(response), 9);
  EXPECT_EQ(router.stats().no_backend_errors, 1u);

  const std::string health = router.handle_line("health", &quit);
  EXPECT_NE(health.find("status=down"), std::string::npos) << health;
}

TEST(RouterTest, ForwardsRequestsAndAnswersAdminLocally) {
  TestBackend backend(::testing::TempDir() + "/router_fwd.sock",
                      small_options());
  ASSERT_TRUE(wait_ready(backend.path));
  Router router(fast_router_options());
  router.add_backend("backend0", backend.path);

  const std::vector<std::string> bits = backend.engine.bit_names("b03");
  ASSERT_GE(bits.size(), 2u);
  bool quit = false;
  const std::string score = router.handle_line(
      "score b03 " + bits[0] + " " + bits[1], &quit);
  EXPECT_TRUE(util::starts_with(score, "ok ")) << score;

  // model= survives the relay verbatim — the backend resolves it against
  // its own registry.
  const std::string named = router.handle_line(
      "score b03 " + bits[0] + " " + bits[1] + " model=default", &quit);
  EXPECT_TRUE(util::starts_with(named, "ok ")) << named;
  const std::string unknown = router.handle_line(
      "score b03 " + bits[0] + " " + bits[1] + " model=nope", &quit);
  EXPECT_TRUE(util::starts_with(unknown, "err ")) << unknown;

  // Admin verbs are answered by the router itself.
  const std::string stats = router.handle_line("stats", &quit);
  EXPECT_TRUE(util::starts_with(stats, "ok role=router")) << stats;
  const std::string backends = router.handle_line("backends", &quit);
  EXPECT_NE(backends.find("name=backend0"), std::string::npos) << backends;
  const std::string health = router.handle_line("health", &quit);
  EXPECT_NE(health.find("status=ready"), std::string::npos) << health;
  const std::string help = router.handle_line("help", &quit);
  EXPECT_NE(help.find("drain <name>"), std::string::npos) << help;
  EXPECT_TRUE(util::starts_with(router.handle_line("bogus verb", &quit),
                                "err "));
  EXPECT_FALSE(quit);
  EXPECT_TRUE(util::starts_with(router.handle_line("quit", &quit), "ok "));
  EXPECT_TRUE(quit);
  EXPECT_GE(router.stats().forwarded, 2u);
}

TEST(RouterTest, BackendOverloadAdvisoryPassesThrough) {
  EngineOptions options = small_options();
  options.max_inflight = 1;
  options.retry_after_ms = 7;  // distinct from the router's 9
  TestBackend backend(::testing::TempDir() + "/router_ovl.sock", options);
  ASSERT_TRUE(wait_ready(backend.path));
  Router router(fast_router_options());
  router.add_backend("backend0", backend.path);

  const std::vector<std::string> bits = backend.engine.bit_names("b03");
  ASSERT_GE(bits.size(), 3u);
  bool quit = false;
  // bit_names() above already loaded the bench context, so the slow score
  // is all model time. Deliberately NO warm-up score: tiny benches collapse
  // distinct bit pairs onto one prediction-cache key, and a cached answer
  // would release the admission slot before the fault latency is felt.
  runtime::FaultInjector::global().arm("model.forward", 1.0, 3, 120);
  std::thread slow([&] {
    bool ignored = false;
    (void)router.handle_line("score b03 " + bits[0] + " " + bits[2],
                             &ignored);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // The single admission slot is held by the slow request; this one must
  // come back shed, carrying the BACKEND's advisory delay untouched.
  const std::string shed =
      router.handle_line("score b03 " + bits[1] + " " + bits[2], &quit);
  slow.join();
  runtime::FaultInjector::global().disarm_all();
  EXPECT_TRUE(util::starts_with(shed, "err overloaded")) << shed;
  EXPECT_EQ(serve::parse_retry_after_ms(shed), 7) << shed;
}

TEST(RouterTest, DrainMovesKeysAndUndrainRestoresThem) {
  TestBackend backend0(::testing::TempDir() + "/router_drain0.sock",
                       small_options());
  TestBackend backend1(::testing::TempDir() + "/router_drain1.sock",
                       small_options());
  ASSERT_TRUE(wait_ready(backend0.path));
  ASSERT_TRUE(wait_ready(backend1.path));
  Router router(fast_router_options());
  router.add_backend("backend0", backend0.path);
  router.add_backend("backend1", backend1.path);

  const std::vector<std::string> benches = {"b03", "b04", "b05", "b07",
                                            "b08", "b11", "b12", "b13"};
  std::map<std::string, std::string> before;
  for (const std::string& bench : benches)
    before[bench] = router.backend_for(bench);

  bool quit = false;
  EXPECT_TRUE(util::starts_with(
      router.handle_line("drain backend1", &quit), "ok "));
  for (const std::string& bench : benches)
    EXPECT_EQ(router.backend_for(bench), "backend0") << bench;
  // Traffic keeps flowing during the drain.
  const std::vector<std::string> bits = backend0.engine.bit_names("b03");
  ASSERT_GE(bits.size(), 2u);
  EXPECT_TRUE(request_until_ok(
      router, "score b03 " + bits[0] + " " + bits[1]));

  EXPECT_TRUE(util::starts_with(
      router.handle_line("undrain backend1", &quit), "ok "));
  for (const std::string& bench : benches)
    EXPECT_EQ(router.backend_for(bench), before[bench]) << bench;

  EXPECT_TRUE(util::starts_with(
      router.handle_line("drain nosuch", &quit), "err "));
  EXPECT_TRUE(util::starts_with(
      router.handle_line("undrain nosuch", &quit), "err "));
}

TEST(RouterTest, KillBackendMidStormLosesNoRequests) {
  TestBackend backend0(::testing::TempDir() + "/router_storm0.sock",
                       small_options());
  TestBackend backend1(::testing::TempDir() + "/router_storm1.sock",
                       small_options());
  ASSERT_TRUE(wait_ready(backend0.path));
  ASSERT_TRUE(wait_ready(backend1.path));
  Router router(fast_router_options());
  router.add_backend("backend0", backend0.path);
  router.add_backend("backend1", backend1.path);

  const std::vector<std::string> benches = {"b03", "b04", "b05", "b07",
                                            "b08", "b11", "b12", "b13"};
  std::map<std::string, std::string> owner_before;
  std::map<std::string, std::vector<std::string>> bench_bits;
  bool backend1_owned_any = false;
  for (const std::string& bench : benches) {
    owner_before[bench] = router.backend_for(bench);
    backend1_owned_any |= owner_before[bench] == "backend1";
    // The generated suite is deterministic, so backend0's names are valid
    // on backend1 too.
    bench_bits[bench] = backend0.engine.bit_names(bench);
    ASSERT_GE(bench_bits[bench].size(), 2u) << bench;
  }

  // Pace the storm a little so the kill reliably lands mid-flight.
  runtime::FaultInjector::global().arm("model.forward", 1.0, 5, 1);
  const int kThreads = 4;
  const int kPerThread = 30;
  std::atomic<int> answered{0};
  std::vector<std::thread> storm;
  for (int t = 0; t < kThreads; ++t) {
    storm.emplace_back([&, t] {
      for (int r = 0; r < kPerThread; ++r) {
        const std::string& bench =
            benches[static_cast<std::size_t>(t + r) % benches.size()];
        const std::vector<std::string>& bits = bench_bits.at(bench);
        const std::string line =
            "score " + bench + " " + bits[0] + " " +
            bits[1 + static_cast<std::size_t>(t + r) % (bits.size() - 1)];
        if (request_until_ok(router, line)) answered.fetch_add(1);
      }
    });
  }
  // Kill backend1 once the storm is demonstrably in progress (bounded
  // wait: if the storm somehow finishes first, the kill still happens and
  // the reroute assertions below stay conditional on ownership).
  for (int waited = 0;
       answered.load() < kThreads * kPerThread / 4 && waited < 30000;
       ++waited)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  backend1.kill();
  for (std::thread& thread : storm) thread.join();
  runtime::FaultInjector::global().disarm_all();

  EXPECT_EQ(answered.load(), kThreads * kPerThread) << "lost requests";
  // Only the dead backend's key range moved; the survivor kept its own.
  for (const std::string& bench : benches) {
    EXPECT_EQ(router.backend_for(bench), "backend0") << bench;
    if (owner_before[bench] == "backend0") {
      EXPECT_EQ(router.backend_for(bench), owner_before[bench]) << bench;
    }
  }
  if (backend1_owned_any) {
    EXPECT_GE(router.stats().reroutes, 1u);
    EXPECT_GE(router.stats().backends_failed, 1u);
  }
}

TEST(RouterTest, ProbeEvictsDeadAndRevivesRestartedBackend) {
  TestBackend backend0(::testing::TempDir() + "/router_probe0.sock",
                       small_options());
  ASSERT_TRUE(wait_ready(backend0.path));
  const std::string path1 = ::testing::TempDir() + "/router_probe1.sock";
  InferenceEngine engine1(small_options());
  auto loop1 = std::make_unique<ServeLoop>(engine1);
  std::thread server1([&] { loop1->run_unix_socket(path1); });
  ASSERT_TRUE(wait_ready(path1));

  Router router(fast_router_options());
  router.add_backend("backend0", backend0.path);
  router.add_backend("backend1", path1);
  std::map<std::string, std::string> before;
  const std::vector<std::string> benches = {"b03", "b04", "b05", "b07",
                                            "b08", "b11", "b12", "b13"};
  for (const std::string& bench : benches)
    before[bench] = router.backend_for(bench);

  router.probe_once();
  EXPECT_EQ(router.stats().backends_failed, 0u);

  loop1->stop();
  server1.join();
  router.probe_once();
  EXPECT_GE(router.stats().backends_failed, 1u);
  for (const std::string& bench : benches)
    EXPECT_EQ(router.backend_for(bench), "backend0") << bench;
  bool quit = false;
  const std::string health = router.handle_line("health", &quit);
  EXPECT_NE(health.find("status=degraded"), std::string::npos) << health;

  // Restart on the same socket: the prober must hand back exactly the old
  // key range (placement is deterministic in the name).
  loop1 = std::make_unique<ServeLoop>(engine1);
  server1 = std::thread([&] { loop1->run_unix_socket(path1); });
  ASSERT_TRUE(wait_ready(path1));
  router.probe_once();
  EXPECT_GE(router.stats().backends_revived, 1u);
  for (const std::string& bench : benches)
    EXPECT_EQ(router.backend_for(bench), before[bench]) << bench;

  loop1->stop();
  server1.join();
  std::remove(path1.c_str());
}

}  // namespace
}  // namespace rebert::router
