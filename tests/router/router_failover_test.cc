// Replicated placement and failover — the R=2 contract end-to-end over
// real sockets: answered scores are mirrored to the secondary owner so
// its caches stay warm; a dead primary fails over to that warm secondary
// in ONE dispatch (zero cold misses on the survivor); mirroring never
// blocks or breaks the answer path even when the secondary is dead; and
// the bounded queue-with-timeout parks requests through saturation or a
// restart instead of refusing immediately, shedding with the right
// distinguished error when it expires or overflows.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "router/router.h"
#include "runtime/fault_injector.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/serve_loop.h"
#include "util/string_utils.h"

namespace rebert::router {
namespace {

using serve::EngineOptions;
using serve::InferenceEngine;
using serve::ServeLoop;

EngineOptions small_options() {
  EngineOptions options;
  options.num_threads = 2;
  options.batch_size = 4;
  options.suite_scale = 0.25;
  options.experiment.pipeline.tokenizer.backtrace_depth = 4;
  options.experiment.pipeline.tokenizer.tree_code_dim = 8;
  options.experiment.pipeline.tokenizer.max_seq_len = 128;
  options.experiment.model_hidden = 32;
  options.experiment.model_layers = 1;
  options.experiment.model_heads = 2;
  return options;
}

RouterOptions fast_router_options() {
  RouterOptions options;
  options.probe_interval_ms = 0;  // tests call probe_once() themselves
  options.client.connect_attempts = 3;
  options.client.connect_poll_ms = 5;
  options.retry_after_ms = 9;
  return options;
}

// An in-process backend: real engine, real serve loop, real socket.
struct TestBackend {
  InferenceEngine engine;
  ServeLoop loop;
  std::string path;
  std::thread server;

  TestBackend(std::string socket_path, EngineOptions options)
      : engine(options),
        loop(engine),
        path(std::move(socket_path)),
        server([this] { loop.run_unix_socket(path); }) {}

  void kill() {
    loop.stop();
    if (server.joinable()) server.join();
  }

  ~TestBackend() {
    kill();
    std::remove(path.c_str());
  }
};

bool wait_ready(const std::string& socket_path) {
  serve::Client client(socket_path);  // default 2 s connect budget
  if (!client.connect()) return false;
  try {
    return util::starts_with(client.request("health"), "ok");
  } catch (const std::exception&) {
    return false;
  }
}

// A two-backend fixture plus the bench/bit bookkeeping every scenario
// needs: which backend is the primary for a chosen bench, which is the
// secondary, and valid bit names for score lines.
struct Pair {
  TestBackend a;
  TestBackend b;
  std::string bench;
  std::vector<std::string> bits;

  explicit Pair(const std::string& tag, EngineOptions options,
                Router& router)
      : a(::testing::TempDir() + "/failover_" + tag + "0.sock", options),
        b(::testing::TempDir() + "/failover_" + tag + "1.sock", options) {
    EXPECT_TRUE(wait_ready(a.path));
    EXPECT_TRUE(wait_ready(b.path));
    router.add_backend("backend0", a.path);
    router.add_backend("backend1", b.path);
    // Any bench works — both backends serve the same deterministic suite —
    // but the scenarios read nicer with a fixed one.
    bench = "b03";
    bits = a.engine.bit_names(bench);
    EXPECT_GE(bits.size(), 2u);
  }

  TestBackend& primary(const Router& router) {
    return router.backend_for(bench) == "backend0" ? a : b;
  }
  TestBackend& secondary(const Router& router) {
    return router.backend_for(bench) == "backend0" ? b : a;
  }
};

TEST(RouterFailoverTest, OwnersVerbListsReplicasInFailoverOrder) {
  Router router(fast_router_options());
  Pair pair("owners", small_options(), router);
  const std::vector<std::string> owners = router.owners_for(pair.bench);
  ASSERT_EQ(owners.size(), 2u);
  EXPECT_EQ(owners[0], router.backend_for(pair.bench));
  EXPECT_NE(owners[0], owners[1]);

  bool quit = false;
  const std::string line =
      router.handle_line("owners " + pair.bench, &quit);
  EXPECT_TRUE(util::starts_with(line, "ok bench=" + pair.bench)) << line;
  EXPECT_NE(line.find("owners=" + owners[0] + "," + owners[1]),
            std::string::npos)
      << line;
  // Empty ring answers, not errors.
  Router empty(fast_router_options());
  EXPECT_TRUE(util::starts_with(empty.handle_line("owners b03", &quit),
                                "ok bench=b03"));
}

TEST(RouterFailoverTest, MirrorKeepsSecondaryWarm) {
  Router router(fast_router_options());
  Pair pair("warm", small_options(), router);
  bool quit = false;
  const std::string score = router.handle_line(
      "score " + pair.bench + " " + pair.bits[0] + " " + pair.bits[1],
      &quit);
  ASSERT_TRUE(util::starts_with(score, "ok ")) << score;
  ASSERT_TRUE(router.wait_mirror_idle(10000));

  EXPECT_GE(router.stats().mirrored, 1u);
  // The replay landed in the secondary's engine: its prediction cache now
  // holds the scored pair without the secondary ever being the owner.
  EXPECT_GE(pair.secondary(router).engine.stats().cache_entries, 1u);
}

TEST(RouterFailoverTest, DeadPrimaryFailsOverWarmInOneDispatch) {
  Router router(fast_router_options());
  Pair pair("over", small_options(), router);
  const std::string line =
      "score " + pair.bench + " " + pair.bits[0] + " " + pair.bits[1];
  bool quit = false;
  const std::string primed = router.handle_line(line, &quit);
  ASSERT_TRUE(util::starts_with(primed, "ok ")) << primed;
  ASSERT_TRUE(router.wait_mirror_idle(10000));
  ASSERT_GE(router.stats().mirrored, 1u);

  TestBackend& survivor = pair.secondary(router);
  const std::uint64_t misses_before = survivor.engine.stats().cache_misses;
  pair.primary(router).kill();

  // ONE dispatch, not a retry loop: the router must absorb the failure
  // internally and answer from the warm secondary.
  const std::string answer = router.handle_line(line, &quit);
  EXPECT_TRUE(util::starts_with(answer, "ok ")) << answer;
  EXPECT_GE(router.stats().replica_hits, 1u);
  EXPECT_GE(router.stats().reroutes, 1u);
  // Zero cold misses: the survivor answered out of its mirror-warmed
  // cache, it did not recompute.
  EXPECT_EQ(survivor.engine.stats().cache_misses, misses_before);
}

TEST(RouterFailoverTest, DeadSecondaryNeverBlocksTheAnswer) {
  Router router(fast_router_options());
  Pair pair("drop", small_options(), router);
  // Kill the secondary WITHOUT telling the router: the enqueue still
  // targets it, the async replay fails, and the answer path never notices.
  pair.secondary(router).kill();

  bool quit = false;
  const auto start = std::chrono::steady_clock::now();
  const std::string score = router.handle_line(
      "score " + pair.bench + " " + pair.bits[0] + " " + pair.bits[1],
      &quit);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(util::starts_with(score, "ok ")) << score;
  ASSERT_TRUE(router.wait_mirror_idle(10000));
  EXPECT_GE(router.stats().mirror_dropped, 1u);
  EXPECT_EQ(router.stats().mirrored, 0u);
  // Generous bound: the answer must not have waited out the replay's
  // connect budget on the dead socket.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
}

TEST(RouterFailoverTest, QueueDisabledRefusesImmediately) {
  Router router(fast_router_options());  // queue_depth = 0 (default)
  bool quit = false;
  const std::string refusal = router.handle_line("score b03 q0 q1", &quit);
  EXPECT_TRUE(util::starts_with(refusal, "err no_backend")) << refusal;
  EXPECT_EQ(router.stats().queued, 0u);
}

TEST(RouterFailoverTest, ParkedRequestExpiresWithDeadlineExceeded) {
  RouterOptions options = fast_router_options();
  options.queue_depth = 2;
  options.queue_timeout_ms = 60;
  Router router(options);  // empty ring: nothing will ever answer
  bool quit = false;
  const auto start = std::chrono::steady_clock::now();
  const std::string answer = router.handle_line("score b03 q0 q1", &quit);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_EQ(answer, "err deadline_exceeded");
  EXPECT_GE(waited, 60);  // it really parked
  EXPECT_EQ(router.stats().queued, 1u);
  EXPECT_EQ(router.stats().queued_timeouts, 1u);
  EXPECT_EQ(router.stats().no_backend_errors, 0u);
}

TEST(RouterFailoverTest, FullQueueShedsWithRouterAdvisory) {
  RouterOptions options = fast_router_options();
  options.queue_depth = 1;
  options.queue_timeout_ms = 400;
  Router router(options);  // empty ring: the parked request holds the slot
  std::thread parked([&router] {
    bool quit = false;
    EXPECT_EQ(router.handle_line("score b03 q0 q1", &quit),
              "err deadline_exceeded");
  });
  // Wait until the first request occupies the queue slot.
  while (router.stats().queued < 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  bool quit = false;
  const auto start = std::chrono::steady_clock::now();
  const std::string shed = router.handle_line("score b03 q2 q3", &quit);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  parked.join();
  EXPECT_TRUE(util::starts_with(shed, "err overloaded")) << shed;
  EXPECT_EQ(serve::parse_retry_after_ms(shed), 9) << shed;  // router's own
  EXPECT_LT(waited, 300);  // shed at the door, did not wait the timeout
  EXPECT_EQ(router.stats().queued, 1u);
}

TEST(RouterFailoverTest, ParkedRequestRidesOutARestart) {
  RouterOptions options = fast_router_options();
  options.queue_depth = 4;
  options.queue_timeout_ms = 10000;  // far longer than the "restart"
  Router router(options);
  const std::string path =
      ::testing::TempDir() + "/failover_restart.sock";
  std::remove(path.c_str());
  // Registered but not yet listening — the fleet is "briefly restarting".
  router.add_backend("backend0", path);

  std::atomic<bool> answered{false};
  std::string answer;
  std::thread request([&] {
    bool quit = false;
    answer = router.handle_line("score b03 q0 q1", &quit);
    answered.store(true);
  });
  while (router.stats().queued < 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_FALSE(answered.load());

  // The daemon comes up; the prober notices; the parked request lands.
  TestBackend backend(path, small_options());
  ASSERT_TRUE(wait_ready(backend.path));
  const std::vector<std::string> bits = backend.engine.bit_names("b03");
  ASSERT_GE(bits.size(), 2u);
  while (!answered.load()) {
    router.probe_once();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  request.join();
  // The parked line used placeholder bit names; the point is WHO answered:
  // a real backend (err unknown-bit), not the router's deadline/refusal.
  EXPECT_TRUE(util::starts_with(answer, "err ")) << answer;
  EXPECT_EQ(answer.find("deadline_exceeded"), std::string::npos) << answer;
  EXPECT_EQ(answer.find("no_backend"), std::string::npos) << answer;
  EXPECT_EQ(router.stats().queued_timeouts, 0u);
  EXPECT_GE(router.stats().backends_revived, 1u);
}

TEST(RouterFailoverTest, SaturationTimeoutRelaysBackendAdvisory) {
  EngineOptions options = small_options();
  options.max_inflight = 1;
  options.retry_after_ms = 7;  // distinct from the router's 9
  TestBackend backend(::testing::TempDir() + "/failover_sat.sock", options);
  ASSERT_TRUE(wait_ready(backend.path));
  RouterOptions router_options = fast_router_options();
  router_options.queue_depth = 2;
  router_options.queue_timeout_ms = 50;
  Router router(router_options);
  router.add_backend("backend0", backend.path);

  const std::vector<std::string> bits = backend.engine.bit_names("b03");
  ASSERT_GE(bits.size(), 3u);
  runtime::FaultInjector::global().arm("model.forward", 1.0, 3, 400);
  std::thread slow([&] {
    bool ignored = false;
    (void)router.handle_line("score b03 " + bits[0] + " " + bits[2],
                             &ignored);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // The single admission slot is busy for ~400 ms; this request parks,
  // expires after 50 ms, and must relay the BACKEND's shed advisory —
  // saturation is not "no backend".
  bool quit = false;
  const std::string shed =
      router.handle_line("score b03 " + bits[1] + " " + bits[2], &quit);
  slow.join();
  runtime::FaultInjector::global().disarm_all();
  EXPECT_TRUE(util::starts_with(shed, "err overloaded")) << shed;
  EXPECT_EQ(serve::parse_retry_after_ms(shed), 7) << shed;
  EXPECT_GE(router.stats().queued, 1u);
  EXPECT_GE(router.stats().queued_timeouts, 1u);
}

TEST(RouterFailoverTest, ReplicasOneRestoresSingleOwnerPlacement) {
  RouterOptions options = fast_router_options();
  options.replicas = 1;
  Router router(options);
  Pair pair("single", small_options(), router);
  ASSERT_EQ(router.owners_for(pair.bench).size(), 1u);

  bool quit = false;
  const std::string score = router.handle_line(
      "score " + pair.bench + " " + pair.bits[0] + " " + pair.bits[1],
      &quit);
  ASSERT_TRUE(util::starts_with(score, "ok ")) << score;
  ASSERT_TRUE(router.wait_mirror_idle(2000));
  // No replication: nothing mirrored, and a dead primary is a reroute to
  // the rebalanced ring, not a replica hit.
  EXPECT_EQ(router.stats().mirrored, 0u);
  EXPECT_EQ(router.stats().replica_hits, 0u);
}

TEST(RouterFailoverTest, StatsExposeReplicationCounters) {
  Router router(fast_router_options());
  bool quit = false;
  const std::string stats = router.handle_line("stats", &quit);
  for (const char* field :
       {"replicas=2", "replica_hits=0", "mirrored=0", "mirror_dropped=0",
        "queued=0", "queued_timeouts=0"})
    EXPECT_NE(stats.find(field), std::string::npos) << stats << field;
  const std::string health = router.handle_line("health", &quit);
  for (const char* field :
       {"replica_hits=0", "mirror_dropped=0", "queued=0",
        "queued_timeouts=0"})
    EXPECT_NE(health.find(field), std::string::npos) << health << field;
}

}  // namespace
}  // namespace rebert::router
