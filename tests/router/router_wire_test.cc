// Router binary pass-through: frames relay byte-for-byte to the owning
// backend (no re-encoding), backend advisories — overload retry_after_ms,
// the degraded flag — survive the relay untouched, admin verbs answer
// locally, and an empty ring refuses with a no_backend frame carrying the
// router's advisory delay.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "router/router.h"
#include "runtime/fault_injector.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/serve_loop.h"
#include "util/string_utils.h"
#include "wire/frame.h"
#include "wire/message.h"

namespace rebert::router {
namespace {

using serve::EngineOptions;
using serve::InferenceEngine;
using serve::ServeLoop;

EngineOptions small_options() {
  EngineOptions options;
  options.num_threads = 2;
  options.batch_size = 4;
  options.suite_scale = 0.25;
  options.experiment.pipeline.tokenizer.backtrace_depth = 4;
  options.experiment.pipeline.tokenizer.tree_code_dim = 8;
  options.experiment.pipeline.tokenizer.max_seq_len = 128;
  options.experiment.model_hidden = 32;
  options.experiment.model_layers = 1;
  options.experiment.model_heads = 2;
  return options;
}

RouterOptions fast_router_options() {
  RouterOptions options;
  options.probe_interval_ms = 0;
  options.client.connect_attempts = 3;
  options.client.connect_poll_ms = 5;
  options.retry_after_ms = 9;
  return options;
}

struct TestBackend {
  InferenceEngine engine;
  ServeLoop loop;
  std::string path;
  std::thread server;

  TestBackend(std::string socket_path, EngineOptions options)
      : engine(options),
        loop(engine),
        path(std::move(socket_path)),
        server([this] { loop.run_unix_socket(path); }) {}

  ~TestBackend() {
    loop.stop();
    if (server.joinable()) server.join();
    std::remove(path.c_str());
  }
};

bool wait_ready(const std::string& socket_path) {
  serve::Client client(socket_path);
  if (!client.connect()) return false;
  try {
    return util::starts_with(client.request("health"), "ok");
  } catch (const std::exception&) {
    return false;
  }
}

/// Drive one request line through the router's binary entry point and
/// decode the answer — what a binary client connected to the router's
/// socket experiences.
wire::Response frame_round_trip(Router& router, const std::string& line,
                                bool* quit) {
  const serve::Request parsed = serve::parse_request(line);
  wire::Frame frame;
  std::string error;
  wire::FrameReader reader;
  reader.feed(wire::encode_request(serve::to_wire(parsed)));
  EXPECT_EQ(reader.next(&frame, &error), wire::FrameReader::Status::kFrame);

  const std::string reply_bytes = router.handle_frame(frame, quit);
  reader.reset();
  reader.feed(reply_bytes);
  wire::Frame reply;
  EXPECT_EQ(reader.next(&reply, &error), wire::FrameReader::Status::kFrame)
      << error;
  EXPECT_EQ(reply.type, wire::FrameType::kResponse);
  wire::Response response;
  EXPECT_TRUE(wire::decode_response_payload(reply.payload, &response,
                                            &error))
      << error;
  return response;
}

TEST(RouterWireTest, EmptyRingRefusesWithNoBackendFrame) {
  Router router(fast_router_options());
  bool quit = false;
  const wire::Response response =
      frame_round_trip(router, "score b03 q0 q1", &quit);
  EXPECT_EQ(response.status, wire::Status::kErr);
  EXPECT_EQ(response.code, wire::ErrorCode::kNoBackend);
  EXPECT_EQ(response.retry_after_ms, 9u);
  EXPECT_EQ(response.verb, wire::Verb::kScore);  // echoes the request
  EXPECT_EQ(wire::response_to_line(response),
            "err no_backend retry_after_ms=9");
}

TEST(RouterWireTest, ForwardsFramesAndMatchesTextAnswers) {
  TestBackend backend(::testing::TempDir() + "/router_wire_fwd.sock",
                      small_options());
  ASSERT_TRUE(wait_ready(backend.path));
  Router router(fast_router_options());
  router.add_backend("backend0", backend.path);

  const std::vector<std::string> bits = backend.engine.bit_names("b03");
  ASSERT_GE(bits.size(), 2u);
  bool quit = false;

  // The same score through both relays renders the same line: the binary
  // path is a transport, never a different protocol.
  const std::string line = "score b03 " + bits[0] + " " + bits[1];
  const wire::Response scored = frame_round_trip(router, line, &quit);
  EXPECT_EQ(wire::response_to_line(scored),
            router.handle_line(line, &quit));
  EXPECT_EQ(scored.status, wire::Status::kOk);
  EXPECT_TRUE(scored.flags & wire::kFlagScore);

  // Admin verbs answer locally, in frames, without a backend round-trip.
  const wire::Response stats = frame_round_trip(router, "stats", &quit);
  EXPECT_TRUE(util::starts_with(wire::response_to_line(stats),
                                "ok role=router"));
  const wire::Response health = frame_round_trip(router, "health", &quit);
  EXPECT_NE(wire::response_to_line(health).find("status=ready"),
            std::string::npos);
  const wire::Response help = frame_round_trip(router, "help", &quit);
  EXPECT_NE(help.body.find("drain <name>"), std::string::npos);
  EXPECT_FALSE(quit);
  const wire::Response bye = frame_round_trip(router, "quit", &quit);
  EXPECT_TRUE(quit);
  EXPECT_EQ(bye.status, wire::Status::kOk);
  EXPECT_GE(router.stats().forwarded, 1u);
}

TEST(RouterWireTest, BackendOverloadAdvisoryRelaysUnchanged) {
  EngineOptions options = small_options();
  options.max_inflight = 1;
  options.retry_after_ms = 7;  // distinct from the router's 9
  TestBackend backend(::testing::TempDir() + "/router_wire_ovl.sock",
                      options);
  ASSERT_TRUE(wait_ready(backend.path));
  Router router(fast_router_options());
  router.add_backend("backend0", backend.path);

  const std::vector<std::string> bits = backend.engine.bit_names("b03");
  ASSERT_GE(bits.size(), 3u);
  runtime::FaultInjector::global().arm("model.forward", 1.0, 3, 120);
  std::thread slow([&] {
    bool ignored = false;
    (void)frame_round_trip(router, "score b03 " + bits[0] + " " + bits[2],
                           &ignored);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  bool quit = false;
  const wire::Response shed = frame_round_trip(
      router, "score b03 " + bits[1] + " " + bits[2], &quit);
  slow.join();
  runtime::FaultInjector::global().disarm_all();

  // The backend's advisory delay (7) arrives intact — proof the router
  // relayed the frame rather than re-encoding through its own config (9).
  EXPECT_EQ(shed.status, wire::Status::kErr);
  EXPECT_EQ(shed.code, wire::ErrorCode::kOverloaded);
  EXPECT_EQ(shed.retry_after_ms, 7u);
  EXPECT_EQ(serve::parse_retry_after_ms(wire::response_to_line(shed)), 7);
}

TEST(RouterWireTest, DegradedRecoverKeepsItsFlagThroughTheRelay) {
  TestBackend backend(::testing::TempDir() + "/router_wire_deg.sock",
                      small_options());
  ASSERT_TRUE(wait_ready(backend.path));
  Router router(fast_router_options());
  router.add_backend("backend0", backend.path);
  (void)backend.engine.warm("b03");

  // Every forward fails -> the backend serves the structural fallback and
  // tags the response degraded; the flag must survive the frame relay.
  runtime::FaultInjector::global().arm("model.forward", 1.0, 7);
  bool quit = false;
  const wire::Response recovered =
      frame_round_trip(router, "recover b03", &quit);
  runtime::FaultInjector::global().disarm_all();

  EXPECT_EQ(recovered.status, wire::Status::kOk);
  EXPECT_TRUE(recovered.flags & wire::kFlagDegraded)
      << wire::response_to_line(recovered);
  EXPECT_NE(wire::response_to_line(recovered).find("degraded=structural"),
            std::string::npos);
}

TEST(RouterWireTest, MalformedFramePayloadAnsweredWithErrorFrame) {
  Router router(fast_router_options());
  wire::FrameReader reader;
  reader.feed(wire::encode_frame(wire::FrameType::kRequest, "nonsense"));
  wire::Frame frame;
  std::string error;
  ASSERT_EQ(reader.next(&frame, &error), wire::FrameReader::Status::kFrame);

  bool quit = false;
  const std::string reply_bytes = router.handle_frame(frame, &quit);
  reader.reset();
  reader.feed(reply_bytes);
  wire::Frame reply;
  ASSERT_EQ(reader.next(&reply, &error), wire::FrameReader::Status::kFrame);
  ASSERT_EQ(reply.type, wire::FrameType::kResponse);
  wire::Response response;
  ASSERT_TRUE(wire::decode_response_payload(reply.payload, &response,
                                            &error))
      << error;
  EXPECT_EQ(response.status, wire::Status::kErr);
  EXPECT_FALSE(quit);  // request-level failure, connection survives
}

TEST(RouterWireTest, StatsAndHealthParityIncludesReplicationCounters) {
  // Same counters, same rendering, both encodings: an idle router answers
  // stats/health identically through frames and text — including the
  // replication fields (replica_hits, mirrored/mirror_dropped, queued,
  // queued_timeouts).
  Router router(fast_router_options());
  bool quit = false;
  const wire::Response stats = frame_round_trip(router, "stats", &quit);
  EXPECT_EQ(wire::response_to_line(stats),
            router.handle_line("stats", &quit));
  for (const char* field :
       {"replicas=2", "replica_hits=0", "mirrored=0", "mirror_dropped=0",
        "queued=0", "queued_timeouts=0"})
    EXPECT_NE(stats.body.find(field), std::string::npos)
        << stats.body << " missing " << field;

  const wire::Response health = frame_round_trip(router, "health", &quit);
  EXPECT_EQ(wire::response_to_line(health),
            router.handle_line("health", &quit));
  for (const char* field :
       {"replica_hits=0", "mirror_dropped=0", "queued=0",
        "queued_timeouts=0"})
    EXPECT_NE(health.body.find(field), std::string::npos)
        << health.body << " missing " << field;
}

TEST(RouterWireTest, ParkedFrameExpiresWithDeadlineFrame) {
  RouterOptions options = fast_router_options();
  options.queue_depth = 1;
  options.queue_timeout_ms = 40;
  Router router(options);  // empty ring: the frame parks, then expires
  bool quit = false;
  const wire::Response expired =
      frame_round_trip(router, "score b03 q0 q1", &quit);
  EXPECT_EQ(expired.status, wire::Status::kErr);
  EXPECT_EQ(expired.code, wire::ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(expired.verb, wire::Verb::kScore);
  EXPECT_EQ(wire::response_to_line(expired), "err deadline_exceeded");
  EXPECT_EQ(router.stats().queued, 1u);
  EXPECT_EQ(router.stats().queued_timeouts, 1u);
}

TEST(RouterWireTest, AnsweredScoreFramesMirrorToTheSecondary) {
  TestBackend backend0(::testing::TempDir() + "/router_wire_mir0.sock",
                       small_options());
  TestBackend backend1(::testing::TempDir() + "/router_wire_mir1.sock",
                       small_options());
  ASSERT_TRUE(wait_ready(backend0.path));
  ASSERT_TRUE(wait_ready(backend1.path));
  Router router(fast_router_options());
  router.add_backend("backend0", backend0.path);
  router.add_backend("backend1", backend1.path);

  const std::vector<std::string> bits = backend0.engine.bit_names("b03");
  ASSERT_GE(bits.size(), 2u);
  bool quit = false;
  const wire::Response scored = frame_round_trip(
      router, "score b03 " + bits[0] + " " + bits[1], &quit);
  ASSERT_EQ(scored.status, wire::Status::kOk);
  ASSERT_TRUE(router.wait_mirror_idle(10000));
  // The raw request frame was replayed against the non-answering owner —
  // the mirror path speaks frames end to end, no transcoding.
  EXPECT_GE(router.stats().mirrored, 1u);
  InferenceEngine& secondary = router.backend_for("b03") == "backend0"
                                   ? backend1.engine
                                   : backend0.engine;
  EXPECT_GE(secondary.stats().cache_entries, 1u);
}

}  // namespace
}  // namespace rebert::router
