// BackendSupervisor — process lifecycle chaos: spawn, reap, restart with
// capped backoff, and SIGTERM/SIGKILL stop. Workers are plain /bin
// utilities so the tests exercise real fork/exec/waitpid without booting
// an engine.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <thread>

#include "router/supervisor.h"

namespace rebert::router {
namespace {

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Poll poll_once() until `predicate` holds or ~timeout_ms elapsed.
template <typename Predicate>
bool poll_until(BackendSupervisor& supervisor, Predicate predicate,
                int timeout_ms) {
  for (int waited = 0; waited <= timeout_ms; waited += 10) {
    supervisor.poll_once();
    if (predicate()) return true;
    sleep_ms(10);
  }
  return predicate();
}

TEST(SupervisorTest, StartSpawnsAndStopKills) {
  BackendSupervisor supervisor;
  supervisor.add("sleeper", {"/bin/sleep", "30"});
  EXPECT_EQ(supervisor.pid_of("sleeper"), -1);  // not spawned until start
  supervisor.start();
  const pid_t pid = supervisor.pid_of("sleeper");
  ASSERT_GT(pid, 0);
  EXPECT_EQ(::kill(pid, 0), 0);  // alive
  EXPECT_EQ(supervisor.poll_once(), 0);  // nothing exited
  EXPECT_EQ(supervisor.restarts_of("sleeper"), 0u);

  supervisor.stop();
  EXPECT_EQ(supervisor.pid_of("sleeper"), -1);
  EXPECT_EQ(::kill(pid, 0), -1);  // reaped, no zombie left behind
}

TEST(SupervisorTest, UnknownNamesAreHarmless) {
  BackendSupervisor supervisor;
  EXPECT_EQ(supervisor.pid_of("nope"), -1);
  EXPECT_EQ(supervisor.restarts_of("nope"), 0u);
  EXPECT_EQ(supervisor.size(), 0u);
}

TEST(SupervisorTest, ExitedWorkerIsReapedAndRestartedAfterBackoff) {
  SupervisorOptions options;
  options.restart_backoff_ms = 50;
  options.max_backoff_ms = 200;
  options.healthy_uptime_ms = 60000;  // streak never resets in this test
  BackendSupervisor supervisor(options);
  supervisor.add("flaky", {"/bin/true"});
  supervisor.start();

  // The worker exits immediately; a poll reaps it but must NOT respawn it
  // before the backoff has elapsed.
  ASSERT_TRUE(poll_until(
      supervisor, [&] { return supervisor.pid_of("flaky") == -1; }, 2000));
  supervisor.poll_once();
  EXPECT_EQ(supervisor.pid_of("flaky"), -1) << "respawned inside backoff";

  // After the backoff it comes back, counted as a restart.
  ASSERT_TRUE(poll_until(
      supervisor, [&] { return supervisor.restarts_of("flaky") >= 1; },
      2000));

  // Crash-looping keeps restarting (with growing, capped delays).
  ASSERT_TRUE(poll_until(
      supervisor, [&] { return supervisor.restarts_of("flaky") >= 3; },
      5000));
  supervisor.stop();
}

TEST(SupervisorTest, ExecFailureCountsAsExit) {
  SupervisorOptions options;
  options.restart_backoff_ms = 20;
  options.max_backoff_ms = 50;
  BackendSupervisor supervisor(options);
  supervisor.add("ghost", {"/nonexistent/binary/for/this/test"});
  supervisor.start();
  // The child _exit(127)s after the failed exec; the supervisor treats it
  // like any crash: reap, back off, retry.
  ASSERT_TRUE(poll_until(
      supervisor, [&] { return supervisor.restarts_of("ghost") >= 1; },
      2000));
  supervisor.stop();
}

TEST(SupervisorTest, StopIsIdempotentAndStartRespawns) {
  BackendSupervisor supervisor;
  supervisor.add("sleeper", {"/bin/sleep", "30"});
  supervisor.start();
  const pid_t first = supervisor.pid_of("sleeper");
  ASSERT_GT(first, 0);
  supervisor.stop();
  supervisor.stop();  // second stop is a no-op
  EXPECT_EQ(supervisor.pid_of("sleeper"), -1);

  supervisor.start();
  const pid_t second = supervisor.pid_of("sleeper");
  ASSERT_GT(second, 0);
  EXPECT_NE(second, first);
  supervisor.stop();
}

TEST(SupervisorTest, ManagesSeveralWorkersIndependently) {
  SupervisorOptions options;
  options.restart_backoff_ms = 20;
  options.healthy_uptime_ms = 60000;
  BackendSupervisor supervisor(options);
  supervisor.add("stable", {"/bin/sleep", "30"});
  supervisor.add("flaky", {"/bin/true"});
  supervisor.start();
  EXPECT_EQ(supervisor.size(), 2u);
  const pid_t stable_pid = supervisor.pid_of("stable");
  ASSERT_GT(stable_pid, 0);

  ASSERT_TRUE(poll_until(
      supervisor, [&] { return supervisor.restarts_of("flaky") >= 1; },
      2000));
  // The flaky worker's churn never touches the stable one.
  EXPECT_EQ(supervisor.pid_of("stable"), stable_pid);
  EXPECT_EQ(supervisor.restarts_of("stable"), 0u);
  supervisor.stop();
}

}  // namespace
}  // namespace rebert::router
