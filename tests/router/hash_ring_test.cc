// HashRing — the placement properties the router tier depends on:
// determinism (two routers with the same member set route identically),
// insertion-order independence, bounded key movement on join/leave, and
// the no-foreign-movement guarantee (removing a node never shuffles keys
// between survivors).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "router/hash_ring.h"

namespace rebert::router {
namespace {

std::vector<std::string> test_keys(int count) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    keys.push_back("b" + std::to_string(i) + "_bench");
  return keys;
}

TEST(HashRingTest, EmptyRingReturnsEmptyOwner) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.node_for("b03"), "");
}

TEST(HashRingTest, PlacementIsDeterministic) {
  HashRing a;
  HashRing b;
  for (const char* node : {"backend0", "backend1", "backend2"}) {
    a.add(node);
    b.add(node);
  }
  for (const std::string& key : test_keys(200))
    EXPECT_EQ(a.node_for(key), b.node_for(key)) << key;
}

TEST(HashRingTest, PlacementIgnoresInsertionOrder) {
  HashRing forward;
  HashRing backward;
  forward.add("backend0");
  forward.add("backend1");
  forward.add("backend2");
  backward.add("backend2");
  backward.add("backend1");
  backward.add("backend0");
  for (const std::string& key : test_keys(200))
    EXPECT_EQ(forward.node_for(key), backward.node_for(key)) << key;
}

TEST(HashRingTest, AddingTwiceIsANoOp) {
  HashRing ring;
  ring.add("backend0");
  ring.add("backend0");
  EXPECT_EQ(ring.num_nodes(), 1u);
  ring.remove("backend0");
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.node_for("b03"), "");
}

TEST(HashRingTest, SingleNodeOwnsEverything) {
  HashRing ring;
  ring.add("backend0");
  for (const std::string& key : test_keys(50))
    EXPECT_EQ(ring.node_for(key), "backend0");
}

TEST(HashRingTest, EveryNodeGetsAShare) {
  HashRing ring;
  std::map<std::string, int> share;
  for (int n = 0; n < 4; ++n) {
    const std::string name = "backend" + std::to_string(n);
    ring.add(name);
    share[name] = 0;
  }
  for (const std::string& key : test_keys(400)) ++share[ring.node_for(key)];
  for (const auto& [name, count] : share)
    EXPECT_GT(count, 0) << name << " owns no keys";
}

TEST(HashRingTest, JoinMovesAtMostTwoOverNKeys) {
  const int kNodes = 4;  // the post-join member count N
  HashRing ring;
  for (int n = 0; n < kNodes - 1; ++n)
    ring.add("backend" + std::to_string(n));
  const std::vector<std::string> keys = test_keys(1000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.node_for(key);

  ring.add("backend" + std::to_string(kNodes - 1));
  int moved = 0;
  for (const std::string& key : keys) {
    const std::string after = ring.node_for(key);
    if (after != before[key]) {
      ++moved;
      // A key only ever moves TO the joiner, never between survivors.
      EXPECT_EQ(after, "backend" + std::to_string(kNodes - 1)) << key;
    }
  }
  EXPECT_LE(moved, static_cast<int>(keys.size()) * 2 / kNodes);
  EXPECT_GT(moved, 0);  // the joiner must take some share
}

TEST(HashRingTest, LeaveMovesOnlyTheLeaversKeys) {
  const int kNodes = 4;
  HashRing ring;
  for (int n = 0; n < kNodes; ++n) ring.add("backend" + std::to_string(n));
  const std::vector<std::string> keys = test_keys(1000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.node_for(key);

  ring.remove("backend2");
  int moved = 0;
  for (const std::string& key : keys) {
    const std::string after = ring.node_for(key);
    if (before[key] == "backend2") {
      EXPECT_NE(after, "backend2") << key;
      ++moved;
    } else {
      // Survivors' keys must not move at all.
      EXPECT_EQ(after, before[key]) << key;
    }
  }
  EXPECT_LE(moved, static_cast<int>(keys.size()) * 2 / kNodes);
}

TEST(HashRingTest, RemoveThenReAddRestoresPlacement) {
  HashRing ring;
  for (int n = 0; n < 3; ++n) ring.add("backend" + std::to_string(n));
  const std::vector<std::string> keys = test_keys(300);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.node_for(key);
  ring.remove("backend1");
  ring.add("backend1");
  for (const std::string& key : keys)
    EXPECT_EQ(ring.node_for(key), before[key]) << key;
}

TEST(HashRingTest, HashIsStable) {
  // Pin the hash function (FNV-1a + murmur3 finalizer): silent changes
  // would silently remap every deployed key range.
  EXPECT_EQ(HashRing::hash(""), 17280346270528514342ULL);
  EXPECT_EQ(HashRing::hash("a"), HashRing::hash("a"));
  EXPECT_NE(HashRing::hash("a"), HashRing::hash("b"));
}

TEST(HashRingTest, SimilarShortKeysDoNotClusterOntoOneNode) {
  // Bench names differ only in their last characters; raw FNV-1a maps
  // them into a sliver of the ring and a 2-node ring then hands every
  // bench to one backend. The avalanche finalizer must spread them.
  HashRing ring;
  ring.add("backend0");
  ring.add("backend1");
  int owned_by_zero = 0;
  const std::vector<std::string> benches = {"b03", "b04", "b05", "b07",
                                            "b08", "b11", "b12", "b13"};
  for (const std::string& bench : benches)
    if (ring.node_for(bench) == "backend0") ++owned_by_zero;
  EXPECT_GT(owned_by_zero, 0);
  EXPECT_LT(owned_by_zero, static_cast<int>(benches.size()));
}

TEST(HashRingOwnersTest, OwnersAreDistinctAndLedByNodeFor) {
  HashRing ring;
  for (int n = 0; n < 5; ++n) ring.add("backend" + std::to_string(n));
  for (const std::string& key : test_keys(300)) {
    const std::vector<std::string> owners = ring.owners(key, 3);
    ASSERT_EQ(owners.size(), 3u) << key;
    EXPECT_EQ(owners[0], ring.node_for(key)) << key;
    EXPECT_NE(owners[0], owners[1]) << key;
    EXPECT_NE(owners[0], owners[2]) << key;
    EXPECT_NE(owners[1], owners[2]) << key;
  }
}

TEST(HashRingOwnersTest, OwnersDegradeToAllMembersWhenRExceedsThem) {
  HashRing ring;
  ring.add("backend0");
  ring.add("backend1");
  const std::vector<std::string> owners = ring.owners("b03", 5);
  ASSERT_EQ(owners.size(), 2u);  // all members, primary first
  EXPECT_EQ(owners[0], ring.node_for("b03"));
  EXPECT_NE(owners[0], owners[1]);
  EXPECT_TRUE(ring.owners("b03", 0).empty());
  EXPECT_TRUE(ring.owners("b03", -1).empty());
  EXPECT_TRUE(HashRing().owners("b03", 2).empty());
}

TEST(HashRingOwnersTest, OwnersAreDeterministic) {
  HashRing a;
  HashRing b;
  for (const char* node : {"backend2", "backend0", "backend1"}) a.add(node);
  for (const char* node : {"backend0", "backend1", "backend2"}) b.add(node);
  for (const std::string& key : test_keys(200))
    EXPECT_EQ(a.owners(key, 2), b.owners(key, 2)) << key;
}

TEST(HashRingOwnersTest, JoinChurnsFewReplicaPairs) {
  // The (primary, secondary) pair of a key only changes when the joiner
  // lands inside the key's first-two-owners walk: the pair churn on an
  // N -> N+1 join must stay a small fraction, like single-owner movement.
  const int kNodes = 5;  // post-join member count
  HashRing ring;
  for (int n = 0; n < kNodes - 1; ++n)
    ring.add("backend" + std::to_string(n));
  const std::vector<std::string> keys = test_keys(1000);
  std::map<std::string, std::vector<std::string>> before;
  for (const std::string& key : keys) before[key] = ring.owners(key, 2);

  const std::string joiner = "backend" + std::to_string(kNodes - 1);
  ring.add(joiner);
  int churned = 0;
  for (const std::string& key : keys) {
    const std::vector<std::string> after = ring.owners(key, 2);
    if (after == before[key]) continue;
    ++churned;
    // A changed pair must involve the joiner — two survivors never swap
    // replica roles among themselves because of someone else's join.
    EXPECT_TRUE(after[0] == joiner || after[1] == joiner ||
                after[0] == before[key][0] || after[0] == before[key][1])
        << key;
  }
  // Each of the two owner slots moves ~1/N of its keys; double it for
  // slack like the single-owner bound.
  EXPECT_LE(churned, static_cast<int>(keys.size()) * 4 / kNodes);
}

TEST(HashRingOwnersTest, LeaverPromotesItsSecondaries) {
  // Removing a member must not disturb pairs it was absent from, and keys
  // it led should be answered by their old secondary (the warm replica) —
  // the property router failover banks on.
  HashRing ring;
  for (int n = 0; n < 4; ++n) ring.add("backend" + std::to_string(n));
  const std::vector<std::string> keys = test_keys(1000);
  std::map<std::string, std::vector<std::string>> before;
  for (const std::string& key : keys) before[key] = ring.owners(key, 2);

  ring.remove("backend2");
  int promoted = 0;
  for (const std::string& key : keys) {
    const std::vector<std::string> after = ring.owners(key, 2);
    ASSERT_EQ(after.size(), 2u);
    if (before[key][0] == "backend2") {
      // Old secondary takes over as primary.
      EXPECT_EQ(after[0], before[key][1]) << key;
      ++promoted;
    } else {
      // Surviving primaries keep their keys.
      EXPECT_EQ(after[0], before[key][0]) << key;
      if (before[key][1] != "backend2")
        EXPECT_EQ(after[1], before[key][1]) << key;
    }
  }
  EXPECT_GT(promoted, 0);
}

TEST(HashRingWeightTest, WeightScalesVirtualPoints) {
  HashRing ring(64);
  ring.add("small", 0.5);
  ring.add("plain");  // weight 1.0
  ring.add("big", 2.0);
  EXPECT_EQ(ring.points_of("small"), 32);
  EXPECT_EQ(ring.points_of("plain"), 64);
  EXPECT_EQ(ring.points_of("big"), 128);
  EXPECT_EQ(ring.points_of("absent"), 0);
  // Even a vanishing weight keeps the member addressable.
  ring.add("tiny", 0.0001);
  EXPECT_EQ(ring.points_of("tiny"), 1);
}

TEST(HashRingWeightTest, WeightedShareTracksWeightRatio) {
  HashRing ring(64);
  ring.add("light", 1.0);
  ring.add("heavy", 3.0);
  int heavy = 0;
  const std::vector<std::string> keys = test_keys(4000);
  for (const std::string& key : keys)
    if (ring.node_for(key) == "heavy") ++heavy;
  // Expect ~3/4 of the keys on the weight-3 member; vnode placement noise
  // gets a generous band around it.
  const double share = static_cast<double>(heavy) /
                       static_cast<double>(keys.size());
  EXPECT_GT(share, 0.60);
  EXPECT_LT(share, 0.90);
}

TEST(HashRingWeightTest, WeightedRemoveThenReAddRestoresPlacement) {
  // remove() must erase exactly the points add() created — including the
  // weighted count — or a re-add would leak phantom ring entries.
  HashRing ring;
  ring.add("backend0", 2.0);
  ring.add("backend1", 0.5);
  ring.add("backend2");
  const std::vector<std::string> keys = test_keys(300);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.node_for(key);
  ring.remove("backend0");
  ring.add("backend0", 2.0);
  for (const std::string& key : keys)
    EXPECT_EQ(ring.node_for(key), before[key]) << key;
}

TEST(HashRingWeightTest, InvalidWeightsAreRejected) {
  HashRing ring;
  EXPECT_THROW(ring.add("backend0", 0.0), std::exception);
  EXPECT_THROW(ring.add("backend0", -1.0), std::exception);
  EXPECT_TRUE(ring.empty());
}

TEST(HashRingTest, NodesAreSorted) {
  HashRing ring;
  ring.add("zeta");
  ring.add("alpha");
  ring.add("mid");
  const std::vector<std::string> nodes = ring.nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], "alpha");
  EXPECT_EQ(nodes[1], "mid");
  EXPECT_EQ(nodes[2], "zeta");
  EXPECT_TRUE(ring.contains("mid"));
  EXPECT_FALSE(ring.contains("omega"));
}

}  // namespace
}  // namespace rebert::router
