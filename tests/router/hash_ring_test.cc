// HashRing — the placement properties the router tier depends on:
// determinism (two routers with the same member set route identically),
// insertion-order independence, bounded key movement on join/leave, and
// the no-foreign-movement guarantee (removing a node never shuffles keys
// between survivors).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "router/hash_ring.h"

namespace rebert::router {
namespace {

std::vector<std::string> test_keys(int count) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    keys.push_back("b" + std::to_string(i) + "_bench");
  return keys;
}

TEST(HashRingTest, EmptyRingReturnsEmptyOwner) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.node_for("b03"), "");
}

TEST(HashRingTest, PlacementIsDeterministic) {
  HashRing a;
  HashRing b;
  for (const char* node : {"backend0", "backend1", "backend2"}) {
    a.add(node);
    b.add(node);
  }
  for (const std::string& key : test_keys(200))
    EXPECT_EQ(a.node_for(key), b.node_for(key)) << key;
}

TEST(HashRingTest, PlacementIgnoresInsertionOrder) {
  HashRing forward;
  HashRing backward;
  forward.add("backend0");
  forward.add("backend1");
  forward.add("backend2");
  backward.add("backend2");
  backward.add("backend1");
  backward.add("backend0");
  for (const std::string& key : test_keys(200))
    EXPECT_EQ(forward.node_for(key), backward.node_for(key)) << key;
}

TEST(HashRingTest, AddingTwiceIsANoOp) {
  HashRing ring;
  ring.add("backend0");
  ring.add("backend0");
  EXPECT_EQ(ring.num_nodes(), 1u);
  ring.remove("backend0");
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.node_for("b03"), "");
}

TEST(HashRingTest, SingleNodeOwnsEverything) {
  HashRing ring;
  ring.add("backend0");
  for (const std::string& key : test_keys(50))
    EXPECT_EQ(ring.node_for(key), "backend0");
}

TEST(HashRingTest, EveryNodeGetsAShare) {
  HashRing ring;
  std::map<std::string, int> share;
  for (int n = 0; n < 4; ++n) {
    const std::string name = "backend" + std::to_string(n);
    ring.add(name);
    share[name] = 0;
  }
  for (const std::string& key : test_keys(400)) ++share[ring.node_for(key)];
  for (const auto& [name, count] : share)
    EXPECT_GT(count, 0) << name << " owns no keys";
}

TEST(HashRingTest, JoinMovesAtMostTwoOverNKeys) {
  const int kNodes = 4;  // the post-join member count N
  HashRing ring;
  for (int n = 0; n < kNodes - 1; ++n)
    ring.add("backend" + std::to_string(n));
  const std::vector<std::string> keys = test_keys(1000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.node_for(key);

  ring.add("backend" + std::to_string(kNodes - 1));
  int moved = 0;
  for (const std::string& key : keys) {
    const std::string after = ring.node_for(key);
    if (after != before[key]) {
      ++moved;
      // A key only ever moves TO the joiner, never between survivors.
      EXPECT_EQ(after, "backend" + std::to_string(kNodes - 1)) << key;
    }
  }
  EXPECT_LE(moved, static_cast<int>(keys.size()) * 2 / kNodes);
  EXPECT_GT(moved, 0);  // the joiner must take some share
}

TEST(HashRingTest, LeaveMovesOnlyTheLeaversKeys) {
  const int kNodes = 4;
  HashRing ring;
  for (int n = 0; n < kNodes; ++n) ring.add("backend" + std::to_string(n));
  const std::vector<std::string> keys = test_keys(1000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.node_for(key);

  ring.remove("backend2");
  int moved = 0;
  for (const std::string& key : keys) {
    const std::string after = ring.node_for(key);
    if (before[key] == "backend2") {
      EXPECT_NE(after, "backend2") << key;
      ++moved;
    } else {
      // Survivors' keys must not move at all.
      EXPECT_EQ(after, before[key]) << key;
    }
  }
  EXPECT_LE(moved, static_cast<int>(keys.size()) * 2 / kNodes);
}

TEST(HashRingTest, RemoveThenReAddRestoresPlacement) {
  HashRing ring;
  for (int n = 0; n < 3; ++n) ring.add("backend" + std::to_string(n));
  const std::vector<std::string> keys = test_keys(300);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.node_for(key);
  ring.remove("backend1");
  ring.add("backend1");
  for (const std::string& key : keys)
    EXPECT_EQ(ring.node_for(key), before[key]) << key;
}

TEST(HashRingTest, HashIsStable) {
  // Pin the hash function (FNV-1a + murmur3 finalizer): silent changes
  // would silently remap every deployed key range.
  EXPECT_EQ(HashRing::hash(""), 17280346270528514342ULL);
  EXPECT_EQ(HashRing::hash("a"), HashRing::hash("a"));
  EXPECT_NE(HashRing::hash("a"), HashRing::hash("b"));
}

TEST(HashRingTest, SimilarShortKeysDoNotClusterOntoOneNode) {
  // Bench names differ only in their last characters; raw FNV-1a maps
  // them into a sliver of the ring and a 2-node ring then hands every
  // bench to one backend. The avalanche finalizer must spread them.
  HashRing ring;
  ring.add("backend0");
  ring.add("backend1");
  int owned_by_zero = 0;
  const std::vector<std::string> benches = {"b03", "b04", "b05", "b07",
                                            "b08", "b11", "b12", "b13"};
  for (const std::string& bench : benches)
    if (ring.node_for(bench) == "backend0") ++owned_by_zero;
  EXPECT_GT(owned_by_zero, 0);
  EXPECT_LT(owned_by_zero, static_cast<int>(benches.size()));
}

TEST(HashRingTest, NodesAreSorted) {
  HashRing ring;
  ring.add("zeta");
  ring.add("alpha");
  ring.add("mid");
  const std::vector<std::string> nodes = ring.nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], "alpha");
  EXPECT_EQ(nodes[1], "mid");
  EXPECT_EQ(nodes[2], "zeta");
  EXPECT_TRUE(ring.contains("mid"));
  EXPECT_FALSE(ring.contains("omega"));
}

}  // namespace
}  // namespace rebert::router
