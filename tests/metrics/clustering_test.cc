#include "metrics/clustering.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace rebert::metrics {
namespace {

TEST(AriTest, PerfectAgreementIsOne) {
  EXPECT_DOUBLE_EQ(adjusted_rand_index({0, 0, 1, 1, 2}, {0, 0, 1, 1, 2}),
                   1.0);
}

TEST(AriTest, LabelValuesAreIrrelevant) {
  // Same partition under a different labeling scheme.
  EXPECT_DOUBLE_EQ(
      adjusted_rand_index({0, 0, 1, 1, 2}, {7, 7, -3, -3, 100}), 1.0);
}

TEST(AriTest, CompleteDisagreementIsNegativeOrZero) {
  // Truth: two clusters of 2. Prediction crosses them.
  const double ari = adjusted_rand_index({0, 0, 1, 1}, {0, 1, 0, 1});
  EXPECT_LT(ari, 0.01);
}

TEST(AriTest, KnownValueHandComputed) {
  // Classic example: truth {a,a,a,b,b,b}, predicted {a,a,b,b,c,c}.
  // Contingency: row a: [2,1,0], row b: [0,1,2].
  // sum_cells C2 = 1+0+0 + 0+0+1 = 2; rows: C(3,2)*2 = 6; cols: 1+1+1 = 3.
  // total pairs C(6,2)=15; expected = 6*3/15 = 1.2; max = 4.5.
  // ARI = (2-1.2)/(4.5-1.2) = 0.8/3.3.
  const double ari =
      adjusted_rand_index({0, 0, 0, 1, 1, 1}, {0, 0, 1, 1, 2, 2});
  EXPECT_NEAR(ari, 0.8 / 3.3, 1e-12);
}

TEST(AriTest, SymmetricInArguments) {
  const std::vector<int> a{0, 0, 1, 1, 2, 2, 2};
  const std::vector<int> b{0, 1, 1, 1, 2, 0, 2};
  EXPECT_NEAR(adjusted_rand_index(a, b), adjusted_rand_index(b, a), 1e-12);
}

TEST(AriTest, RandomLabelingsScoreNearZero) {
  // ARI is chance-adjusted: random groupings average ~0.
  util::Rng rng(123);
  const int n = 200;
  std::vector<int> truth(n);
  for (int i = 0; i < n; ++i) truth[i] = i / 20;  // 10 words of 20 bits
  double total = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> pred(n);
    for (int i = 0; i < n; ++i) pred[i] = rng.uniform_int(0, 9);
    total += adjusted_rand_index(truth, pred);
  }
  EXPECT_NEAR(total / trials, 0.0, 0.02);
}

TEST(AriTest, TrivialPartitionsReturnOne) {
  // Both all-singletons and both one-cluster: identical partitions.
  EXPECT_DOUBLE_EQ(adjusted_rand_index({0, 1, 2}, {5, 6, 7}), 1.0);
  EXPECT_DOUBLE_EQ(adjusted_rand_index({0, 0, 0}, {1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(adjusted_rand_index({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(adjusted_rand_index({3}, {9}), 1.0);
}

TEST(AriTest, AllSingletonPredictionOnGroupedTruthIsZero) {
  // Singleton prediction has Index = 0 = Expected contribution edge case.
  const std::vector<int> truth{0, 0, 0, 1, 1, 1};
  const std::vector<int> pred{0, 1, 2, 3, 4, 5};
  EXPECT_NEAR(adjusted_rand_index(truth, pred), 0.0, 1e-12);
}

TEST(AriTest, MergingAllIntoOneClusterScoresLow) {
  const std::vector<int> truth{0, 0, 1, 1, 2, 2};
  const std::vector<int> pred{0, 0, 0, 0, 0, 0};
  EXPECT_NEAR(adjusted_rand_index(truth, pred), 0.0, 1e-12);
}

TEST(AriTest, RejectsLengthMismatch) {
  EXPECT_THROW(adjusted_rand_index({0, 1}, {0}), util::CheckError);
}

TEST(AriTest, PartialAgreementBetweenZeroAndOne) {
  // One misplaced bit out of 8.
  const std::vector<int> truth{0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<int> pred{0, 0, 0, 1, 1, 1, 1, 1};
  const double ari = adjusted_rand_index(truth, pred);
  EXPECT_GT(ari, 0.3);
  EXPECT_LT(ari, 1.0);
}

TEST(RandIndexTest, BoundsAndPerfection) {
  EXPECT_DOUBLE_EQ(rand_index({0, 0, 1, 1}, {0, 0, 1, 1}), 1.0);
  const double ri = rand_index({0, 0, 1, 1}, {0, 1, 0, 1});
  EXPECT_GE(ri, 0.0);
  EXPECT_LE(ri, 1.0);
  // Exactly: pairs = 6; together-both = 0; apart-both = 2 -> 2/6.
  EXPECT_NEAR(ri, 2.0 / 6.0, 1e-12);
}

TEST(RandIndexTest, DominatedByAgreementOnSeparation) {
  // Unlike ARI, plain Rand is inflated by many clusters.
  const std::vector<int> truth{0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<int> pred{0, 1, 2, 3, 4, 5, 6, 6};
  EXPECT_GT(rand_index(truth, pred), 0.9);
}

TEST(PairwiseTest, PerfectPrediction) {
  const PairwiseScores s = pairwise_scores({0, 0, 1, 1}, {5, 5, 9, 9});
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
  EXPECT_EQ(s.true_positives, 2);
}

TEST(PairwiseTest, OverMergingHurtsPrecisionNotRecall) {
  const PairwiseScores s =
      pairwise_scores({0, 0, 1, 1}, {0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_NEAR(s.precision, 2.0 / 6.0, 1e-12);
}

TEST(PairwiseTest, OverSplittingHurtsRecallNotPrecision) {
  const PairwiseScores s =
      pairwise_scores({0, 0, 0, 0}, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_NEAR(s.recall, 2.0 / 6.0, 1e-12);
}

TEST(PairwiseTest, VacuousCasesDefinedAsPerfect) {
  // All singletons in both: no pairs predicted, none required.
  const PairwiseScores s = pairwise_scores({0, 1, 2}, {0, 1, 2});
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

TEST(NmiTest, PerfectAndTrivialCases) {
  EXPECT_DOUBLE_EQ(
      normalized_mutual_information({0, 0, 1, 1}, {1, 1, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(normalized_mutual_information({0, 0}, {0, 0}), 1.0);
}

TEST(NmiTest, IndependentLabelingsScoreLow) {
  const std::vector<int> truth{0, 0, 1, 1};
  const std::vector<int> pred{0, 1, 0, 1};
  EXPECT_NEAR(normalized_mutual_information(truth, pred), 0.0, 1e-12);
}

TEST(NmiTest, BetweenZeroAndOne) {
  util::Rng rng(9);
  std::vector<int> truth(60), pred(60);
  for (int i = 0; i < 60; ++i) {
    truth[i] = i / 10;
    pred[i] = rng.uniform_int(0, 5);
  }
  const double nmi = normalized_mutual_information(truth, pred);
  EXPECT_GE(nmi, 0.0);
  EXPECT_LE(nmi, 1.0);
}

TEST(VMeasureTest, PerfectAgreementScoresOne) {
  const VMeasure v = v_measure({0, 0, 1, 1}, {5, 5, 9, 9});
  EXPECT_NEAR(v.homogeneity, 1.0, 1e-12);
  EXPECT_NEAR(v.completeness, 1.0, 1e-12);
  EXPECT_NEAR(v.v, 1.0, 1e-12);
}

TEST(VMeasureTest, OverMergingHurtsHomogeneityOnly) {
  // All bits merged into one predicted word: complete but not homogeneous.
  const VMeasure v = v_measure({0, 0, 1, 1}, {0, 0, 0, 0});
  EXPECT_NEAR(v.completeness, 1.0, 1e-12);
  EXPECT_LT(v.homogeneity, 0.01);
  EXPECT_LT(v.v, 0.01);
}

TEST(VMeasureTest, OverSplittingHurtsCompletenessOnly) {
  const VMeasure v = v_measure({0, 0, 1, 1}, {0, 1, 2, 3});
  EXPECT_NEAR(v.homogeneity, 1.0, 1e-12);
  EXPECT_LT(v.completeness, 0.6);
  EXPECT_LT(v.v, 0.8);
}

TEST(VMeasureTest, SymmetricRolesSwapHAndC) {
  const std::vector<int> a{0, 0, 1, 1, 2, 2};
  const std::vector<int> b{0, 0, 0, 1, 1, 1};
  const VMeasure ab = v_measure(a, b);
  const VMeasure ba = v_measure(b, a);
  EXPECT_NEAR(ab.homogeneity, ba.completeness, 1e-12);
  EXPECT_NEAR(ab.completeness, ba.homogeneity, 1e-12);
  EXPECT_NEAR(ab.v, ba.v, 1e-12);
}

TEST(VMeasureTest, TrivialAndEmptyCases) {
  EXPECT_NEAR(v_measure({}, {}).v, 1.0, 1e-12);
  EXPECT_NEAR(v_measure({0, 0}, {1, 1}).v, 1.0, 1e-12);
  // Truth all-one-cluster: homogeneity vacuous (H(truth)=0) -> 1.
  const VMeasure v = v_measure({0, 0, 0}, {0, 1, 2});
  EXPECT_NEAR(v.homogeneity, 1.0, 1e-12);
  EXPECT_LT(v.completeness, 1.0);
}

TEST(VMeasureTest, BoundsOnRandomLabelings) {
  util::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> truth(40), pred(40);
    for (int i = 0; i < 40; ++i) {
      truth[i] = i / 8;
      pred[i] = rng.uniform_int(0, 4);
    }
    const VMeasure v = v_measure(truth, pred);
    EXPECT_GE(v.homogeneity, 0.0);
    EXPECT_LE(v.homogeneity, 1.0);
    EXPECT_GE(v.completeness, 0.0);
    EXPECT_LE(v.completeness, 1.0);
    EXPECT_GE(v.v, 0.0);
    EXPECT_LE(v.v, 1.0);
  }
}

TEST(NumClustersTest, CountsDistinctLabels) {
  EXPECT_EQ(num_clusters({0, 0, 1, 2, 2}), 3);
  EXPECT_EQ(num_clusters({}), 0);
  EXPECT_EQ(num_clusters({-5, -5}), 1);
}

// Property sweep: ARI of a prediction that splits every true word into two
// halves is strictly between 0 and 1 and decreases as words shrink.
class AriSplitProperty : public ::testing::TestWithParam<int> {};

TEST_P(AriSplitProperty, SplittingWordsLandsBetweenZeroAndOne) {
  const int word_size = GetParam();
  const int num_words = 6;
  std::vector<int> truth, pred;
  for (int w = 0; w < num_words; ++w) {
    for (int b = 0; b < word_size; ++b) {
      truth.push_back(w);
      pred.push_back(w * 2 + (b < word_size / 2 ? 0 : 1));
    }
  }
  const double ari = adjusted_rand_index(truth, pred);
  EXPECT_GT(ari, 0.0);
  EXPECT_LT(ari, 1.0);
}

INSTANTIATE_TEST_SUITE_P(WordSizes, AriSplitProperty,
                         ::testing::Values(4, 6, 8, 12, 16));

}  // namespace
}  // namespace rebert::metrics
