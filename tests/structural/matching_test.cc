#include "structural/matching.h"

#include <gtest/gtest.h>

#include "circuitgen/suite.h"
#include "metrics/clustering.h"
#include "nl/corruption.h"
#include "nl/parser.h"
#include "nl/words.h"

namespace rebert::structural {
namespace {

TEST(ShapeSimilarityTest, IdenticalTreesScoreOne) {
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(a)
INPUT(b)
d = AND(a, b)
OUTPUT(d)
)");
  const nl::ConeTree t = nl::extract_cone(n, *n.find("d"), 3);
  EXPECT_DOUBLE_EQ(shape_similarity(t, t), 1.0);
}

TEST(ShapeSimilarityTest, SameTemplateDifferentLeavesScoresOne) {
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(a0)
INPUT(b0)
INPUT(a1)
INPUT(b1)
d0 = XOR(a0, b0)
d1 = XOR(a1, b1)
OUTPUT(d0)
OUTPUT(d1)
)");
  const nl::ConeTree t0 = nl::extract_cone(n, *n.find("d0"), 3);
  const nl::ConeTree t1 = nl::extract_cone(n, *n.find("d1"), 3);
  EXPECT_DOUBLE_EQ(shape_similarity(t0, t1), 1.0);
}

TEST(ShapeSimilarityTest, DifferentRootsScoreZero) {
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(a)
INPUT(b)
d0 = AND(a, b)
d1 = OR(a, b)
OUTPUT(d0)
OUTPUT(d1)
)");
  const nl::ConeTree t0 = nl::extract_cone(n, *n.find("d0"), 3);
  const nl::ConeTree t1 = nl::extract_cone(n, *n.find("d1"), 3);
  EXPECT_DOUBLE_EQ(shape_similarity(t0, t1), 0.0);
}

TEST(ShapeSimilarityTest, PartialMatchIsFractional) {
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
x = OR(b, c)
d0 = AND(a, x)
d1 = AND(a, b)
OUTPUT(d0)
OUTPUT(d1)
)");
  const nl::ConeTree t0 = nl::extract_cone(n, *n.find("d0"), 3);  // 5 nodes
  const nl::ConeTree t1 = nl::extract_cone(n, *n.find("d1"), 3);  // 3 nodes
  const double sim = shape_similarity(t0, t1);
  EXPECT_GT(sim, 0.0);
  EXPECT_LT(sim, 1.0);
}

TEST(SupportSimilarityTest, SharedLeavesDetected) {
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(ctrl)
INPUT(a)
INPUT(b)
d0 = AND(ctrl, a)
d1 = AND(ctrl, b)
d2 = AND(a, b)
OUTPUT(d0)
OUTPUT(d1)
OUTPUT(d2)
)");
  const nl::ConeTree t0 = nl::extract_cone(n, *n.find("d0"), 2);
  const nl::ConeTree t1 = nl::extract_cone(n, *n.find("d1"), 2);
  // Leaves {ctrl,a} vs {ctrl,b}: Jaccard 1/3.
  EXPECT_NEAR(support_similarity(t0, t1), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(support_similarity(t0, t0), 1.0);
}

TEST(StructuralRecoveryTest, PerfectOnCleanTemplateWords) {
  // Two words with distinct templates, each sharing a control signal among
  // its bits (as real register words do), no corruption: the method's home
  // turf.
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(a0)
INPUT(a1)
INPUT(c0)
INPUT(c1)
INPUT(sel)
INPUT(en)
x0 = NOR(sel, a0)
x1 = NOR(sel, a1)
m0 = AND(en, c0)
m1 = AND(en, c1)
qx0 = DFF(x0)
qx1 = DFF(x1)
qm0 = DFF(m0)
qm1 = DFF(m1)
OUTPUT(x0)
)");
  const StructuralResult result = recover_words_structural(n);
  const auto bits = nl::extract_bits(n);
  nl::WordMap truth;
  truth.add_word("x", {"qx0", "qx1"});
  truth.add_word("m", {"qm0", "qm1"});
  const double ari = metrics::adjusted_rand_index(truth.labels_for(bits),
                                                  result.labels);
  EXPECT_DOUBLE_EQ(ari, 1.0);
}

TEST(StructuralRecoveryTest, DegradesUnderCorruption) {
  // The paper's central observation: gate replacement destroys template
  // matching. ARI at heavy mid-corruption must drop well below the clean
  // score on a benchmark circuit.
  const gen::GeneratedCircuit c = gen::generate_benchmark("b03");
  const auto clean_bits = nl::extract_bits(c.netlist);
  const std::vector<int> truth = c.words.labels_for(clean_bits);

  const StructuralResult clean = recover_words_structural(c.netlist);
  const double clean_ari =
      metrics::adjusted_rand_index(truth, clean.labels);

  double corrupted_total = 0.0;
  const int kSeeds = 3;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const nl::Netlist corrupted = nl::corrupt_netlist(
        c.netlist, {.r_index = 0.5, .seed = static_cast<std::uint64_t>(seed)});
    const StructuralResult result = recover_words_structural(corrupted);
    corrupted_total += metrics::adjusted_rand_index(truth, result.labels);
  }
  const double corrupted_ari = corrupted_total / kSeeds;
  // Clean template matching works (absolute level depends on the block
  // mix; b03 contains an LFSR word whose single-leaf cones are inherently
  // ambiguous), and corruption must cost it most of that score.
  EXPECT_GT(clean_ari, 0.2);
  EXPECT_LT(corrupted_ari, 0.6 * clean_ari);
}

TEST(StructuralRecoveryTest, ReportsTiming) {
  const gen::GeneratedCircuit c = gen::generate_benchmark("b08");
  const StructuralResult result = recover_words_structural(c.netlist);
  EXPECT_GE(result.total_seconds, 0.0);
  EXPECT_EQ(result.labels.size(), c.netlist.dffs().size());
  EXPECT_EQ(result.num_words, metrics::num_clusters(result.labels));
}

TEST(StructuralRecoveryTest, ThresholdControlsGranularity) {
  const gen::GeneratedCircuit c = gen::generate_benchmark("b03");
  MatchingOptions merge_everything;
  merge_everything.group_threshold = 0.01;
  MatchingOptions split_everything;
  split_everything.group_threshold = 1.01;
  const auto merged =
      recover_words_structural(c.netlist, merge_everything);
  const auto split = recover_words_structural(c.netlist, split_everything);
  EXPECT_LT(merged.num_words, split.num_words);
  EXPECT_EQ(split.num_words, static_cast<int>(c.netlist.dffs().size()));
}

}  // namespace
}  // namespace rebert::structural
