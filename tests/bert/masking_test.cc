// Padding / attention-mask fidelity tests: [PAD] tokens must never change
// what the model computes for real positions (§II-A-3 pads pair sequences
// to a uniform length).
#include <gtest/gtest.h>

#include "bert/model.h"
#include "tensor/optimizer.h"
#include "util/check.h"

namespace rebert::bert {
namespace {

using tensor::Tensor;

BertConfig tiny_config() {
  BertConfig c;
  c.vocab_size = 12;
  c.hidden = 16;
  c.num_heads = 2;
  c.num_layers = 2;
  c.intermediate = 32;
  c.max_seq_len = 32;
  c.tree_code_dim = 6;
  c.dropout = 0.0f;
  c.seed = 77;
  return c;
}

EncodedSequence make_sequence(const std::vector<int>& tokens,
                              const BertConfig& c, int pad_to = 0) {
  EncodedSequence s;
  s.token_ids = tokens;
  if (pad_to > static_cast<int>(tokens.size())) {
    s.valid_len = static_cast<int>(tokens.size());
    s.token_ids.resize(static_cast<std::size_t>(pad_to), 0);  // 0 = [PAD]
  }
  const int n = static_cast<int>(s.token_ids.size());
  for (int i = 0; i < n; ++i) s.position_ids.push_back(i);
  s.tree_codes = Tensor({n, c.tree_code_dim});
  for (int i = 0; i < s.valid_len || (s.valid_len == 0 && i < n); ++i)
    s.tree_codes.at(i, s.token_ids[static_cast<std::size_t>(i)] %
                           c.tree_code_dim) = 1.0f;
  return s;
}

TEST(MaskingTest, AttentionMaskedForwardIgnoresPadContent) {
  const BertConfig c = tiny_config();
  util::Rng rng(1);
  MultiHeadSelfAttention att("att", c, rng);
  Tensor x = Tensor::randn({6, 16}, rng);
  const Tensor masked1 = att.forward(x, nullptr, 4);
  // Change the padded rows' content entirely.
  for (int i = 4; i < 6; ++i)
    for (int j = 0; j < 16; ++j) x.at(i, j) = 42.0f + i + j;
  const Tensor masked2 = att.forward(x, nullptr, 4);
  // Valid rows are bit-identical regardless of pad content.
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 16; ++j)
      EXPECT_EQ(masked1.at(i, j), masked2.at(i, j)) << i << "," << j;
}

TEST(MaskingTest, ZeroValidLenMeansNoMask) {
  const BertConfig c = tiny_config();
  util::Rng rng(2);
  MultiHeadSelfAttention att("att", c, rng);
  const Tensor x = Tensor::randn({4, 16}, rng);
  EXPECT_TRUE(allclose(att.forward(x, nullptr, 0),
                       att.forward(x, nullptr, 4)));
}

TEST(MaskingTest, MaskedProbsAreExactlyZero) {
  const BertConfig c = tiny_config();
  util::Rng rng(3);
  MultiHeadSelfAttention att("att", c, rng);
  const Tensor x = Tensor::randn({5, 16}, rng);
  MultiHeadSelfAttention::Cache cache;
  att.forward(x, &cache, 3);
  for (const Tensor& probs : cache.probs)
    for (int i = 0; i < 5; ++i) {
      for (int j = 3; j < 5; ++j) EXPECT_EQ(probs.at(i, j), 0.0f);
      float total = 0.0f;
      for (int j = 0; j < 3; ++j) total += probs.at(i, j);
      EXPECT_NEAR(total, 1.0f, 1e-5);
    }
}

TEST(MaskingTest, AttentionRejectsBadValidLen) {
  const BertConfig c = tiny_config();
  util::Rng rng(4);
  MultiHeadSelfAttention att("att", c, rng);
  const Tensor x = Tensor::randn({3, 16}, rng);
  EXPECT_THROW(att.forward(x, nullptr, 4), util::CheckError);
  EXPECT_THROW(att.forward(x, nullptr, -1), util::CheckError);
}

TEST(MaskingTest, PaddedPredictionEqualsUnpadded) {
  const BertConfig c = tiny_config();
  BertPairClassifier model(c);
  const std::vector<int> tokens{1, 5, 3, 7, 2};
  const EncodedSequence plain = make_sequence(tokens, c);
  const EncodedSequence padded = make_sequence(tokens, c, 12);
  EXPECT_DOUBLE_EQ(model.predict_same_word_probability(plain),
                   model.predict_same_word_probability(padded));
}

TEST(MaskingTest, DifferentPadAmountsAgree) {
  const BertConfig c = tiny_config();
  BertPairClassifier model(c);
  const std::vector<int> tokens{4, 4, 9, 1};
  const EncodedSequence pad8 = make_sequence(tokens, c, 8);
  const EncodedSequence pad16 = make_sequence(tokens, c, 16);
  EXPECT_DOUBLE_EQ(model.predict_same_word_probability(pad8),
                   model.predict_same_word_probability(pad16));
}

TEST(MaskingTest, TrainingWithPaddingMatchesGradientsOfUnpadded) {
  // Same loss and same parameter gradients, padded or not.
  const BertConfig c = tiny_config();
  BertPairClassifier a(c), b(c);
  const std::vector<int> tokens{1, 2, 3};
  const EncodedSequence plain = make_sequence(tokens, c);
  const EncodedSequence padded = make_sequence(tokens, c, 10);
  const double loss_a = a.train_step_accumulate(plain, 1);
  const double loss_b = b.train_step_accumulate(padded, 1);
  EXPECT_DOUBLE_EQ(loss_a, loss_b);
  const auto& pa = a.parameters();
  const auto& pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    // Padding adds [PAD]-row embedding gradients (those rows still feed
    // LayerNorm locally) — compare everything except the embedding tables
    // and shared norm, where pads legitimately accumulate their own rows.
    if (pa[i]->name.rfind("embeddings.", 0) == 0) continue;
    EXPECT_TRUE(allclose(pa[i]->grad, pb[i]->grad, 1e-5f)) << pa[i]->name;
  }
}

}  // namespace
}  // namespace rebert::bert
