#include "bert/encoder_layer.h"

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"

namespace rebert::bert {
namespace {

using tensor::Tensor;

BertConfig tiny_config() {
  BertConfig c;
  c.vocab_size = 8;
  c.hidden = 8;
  c.num_heads = 2;
  c.num_layers = 1;
  c.intermediate = 12;
  c.max_seq_len = 16;
  c.tree_code_dim = 4;
  c.dropout = 0.0f;
  return c;
}

TEST(EncoderLayerTest, PreservesShape) {
  util::Rng rng(1);
  EncoderLayer layer("enc", tiny_config(), rng);
  const Tensor x = Tensor::randn({6, 8}, rng);
  util::Rng drop_rng(2);
  const Tensor y = layer.forward(x, false, drop_rng, nullptr);
  EXPECT_EQ(y.dim(0), 6);
  EXPECT_EQ(y.dim(1), 8);
}

TEST(EncoderLayerTest, OutputRowsAreNormalized) {
  util::Rng rng(2);
  EncoderLayer layer("enc", tiny_config(), rng);
  const Tensor x = Tensor::randn({4, 8}, rng, 5.0f);
  util::Rng drop_rng(3);
  const Tensor y = layer.forward(x, false, drop_rng, nullptr);
  // Final LayerNorm with default gamma=1, beta=0: each row ~zero mean.
  for (int i = 0; i < 4; ++i) {
    double mean = 0;
    for (int j = 0; j < 8; ++j) mean += y.at(i, j);
    EXPECT_NEAR(mean / 8, 0.0, 1e-4);
  }
}

TEST(EncoderLayerTest, GradcheckThroughFullLayer) {
  util::Rng rng(3);
  EncoderLayer layer("enc", tiny_config(), rng);
  Tensor x = Tensor::randn({3, 8}, rng);
  const Tensor w = Tensor::randn({3, 8}, rng);
  util::Rng drop_rng(4);

  auto loss = [&]() {
    util::Rng r(4);
    return tensor::mul(layer.forward(x, false, r, nullptr), w).sum();
  };

  EncoderLayer::Cache cache;
  layer.forward(x, false, drop_rng, &cache);
  for (auto* p : layer.parameters()) p->zero_grad();
  const Tensor dx = layer.backward(w, cache);

  const auto xres = tensor::check_gradient(&x, dx, loss, 1e-2, 6e-2);
  EXPECT_TRUE(xres.ok) << "input rel err " << xres.max_rel_error;
  for (auto* p : layer.parameters()) {
    const auto res =
        tensor::check_gradient(&p->value, p->grad, loss, 1e-2, 6e-2, 12);
    EXPECT_TRUE(res.ok) << p->name << " rel err " << res.max_rel_error;
  }
}

TEST(EncoderLayerTest, DropoutChangesTrainingOutputOnly) {
  BertConfig c = tiny_config();
  c.dropout = 0.5f;
  util::Rng rng(5);
  EncoderLayer layer("enc", c, rng);
  const Tensor x = Tensor::randn({4, 8}, rng);
  util::Rng d1(10), d2(20);
  // Eval mode ignores dropout RNG entirely.
  const Tensor e1 = layer.forward(x, false, d1, nullptr);
  const Tensor e2 = layer.forward(x, false, d2, nullptr);
  EXPECT_TRUE(allclose(e1, e2));
  // Training mode with different RNG streams differs.
  util::Rng t1(10), t2(20);
  const Tensor y1 = layer.forward(x, true, t1, nullptr);
  const Tensor y2 = layer.forward(x, true, t2, nullptr);
  EXPECT_FALSE(allclose(y1, y2, 1e-6f));
}

TEST(EncoderLayerTest, ParameterCount) {
  util::Rng rng(6);
  EncoderLayer layer("enc", tiny_config(), rng);
  // attention: 4 linears (W+b) = 8; 2 layernorms = 4; 2 FFN linears = 4.
  EXPECT_EQ(layer.parameters().size(), 16u);
}

}  // namespace
}  // namespace rebert::bert
