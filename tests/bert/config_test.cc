#include "bert/config.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace rebert::bert {
namespace {

TEST(ConfigTest, EvalConfigValid) {
  const BertConfig c = eval_config(32, 256);
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.vocab_size, 32);
  EXPECT_EQ(c.max_seq_len, 256);
  EXPECT_EQ(c.hidden % c.num_heads, 0);
  EXPECT_EQ(c.head_dim() * c.num_heads, c.hidden);
}

TEST(ConfigTest, PaperConfigMatchesQuotedDimensions) {
  const BertConfig c = paper_config(32, 512);
  EXPECT_EQ(c.hidden, 768);
  EXPECT_EQ(c.num_heads, 12);   // "we use 12 heads" (§II-C)
  EXPECT_EQ(c.num_layers, 12);
  EXPECT_EQ(c.intermediate, 3072);
  EXPECT_NO_THROW(c.validate());
}

TEST(ConfigTest, ValidationCatchesBadValues) {
  BertConfig c = eval_config(32, 128);
  c.num_heads = 5;  // does not divide 64
  EXPECT_THROW(c.validate(), util::CheckError);

  c = eval_config(32, 128);
  c.vocab_size = 1;
  EXPECT_THROW(c.validate(), util::CheckError);

  c = eval_config(32, 128);
  c.dropout = 1.0f;
  EXPECT_THROW(c.validate(), util::CheckError);

  c = eval_config(32, 128);
  c.tree_code_dim = 7;  // must be even (2 bits per tree level)
  EXPECT_THROW(c.validate(), util::CheckError);

  c = eval_config(32, 128);
  c.use_word_embedding = false;
  c.use_position_embedding = false;
  c.use_tree_embedding = false;
  EXPECT_THROW(c.validate(), util::CheckError);
}

}  // namespace
}  // namespace rebert::bert
