#include "bert/attention.h"

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "util/check.h"

namespace rebert::bert {
namespace {

using tensor::Tensor;

BertConfig tiny_config() {
  BertConfig c;
  c.vocab_size = 8;
  c.hidden = 8;
  c.num_heads = 2;
  c.num_layers = 1;
  c.intermediate = 16;
  c.max_seq_len = 16;
  c.tree_code_dim = 4;
  c.dropout = 0.0f;
  return c;
}

TEST(SliceColsTest, RoundTrip) {
  util::Rng rng(1);
  const Tensor x = Tensor::randn({3, 6}, rng);
  const Tensor left = slice_cols(x, 0, 3);
  const Tensor right = slice_cols(x, 3, 6);
  EXPECT_EQ(left.dim(1), 3);
  EXPECT_FLOAT_EQ(left.at(1, 2), x.at(1, 2));
  EXPECT_FLOAT_EQ(right.at(2, 0), x.at(2, 3));

  Tensor rebuilt({3, 6});
  add_into_cols(&rebuilt, left, 0);
  add_into_cols(&rebuilt, right, 3);
  EXPECT_TRUE(allclose(rebuilt, x));
}

TEST(AttentionTest, OutputShapeMatchesInput) {
  util::Rng rng(2);
  MultiHeadSelfAttention att("att", tiny_config(), rng);
  const Tensor x = Tensor::randn({5, 8}, rng);
  const Tensor y = att.forward(x, nullptr);
  EXPECT_EQ(y.dim(0), 5);
  EXPECT_EQ(y.dim(1), 8);
}

TEST(AttentionTest, SingleTokenSequenceWorks) {
  util::Rng rng(3);
  MultiHeadSelfAttention att("att", tiny_config(), rng);
  const Tensor x = Tensor::randn({1, 8}, rng);
  const Tensor y = att.forward(x, nullptr);
  EXPECT_EQ(y.dim(0), 1);
}

TEST(AttentionTest, AttentionProbsAreRowStochastic) {
  util::Rng rng(4);
  MultiHeadSelfAttention att("att", tiny_config(), rng);
  const Tensor x = Tensor::randn({4, 8}, rng);
  MultiHeadSelfAttention::Cache cache;
  att.forward(x, &cache);
  ASSERT_EQ(cache.probs.size(), 2u);
  for (const Tensor& probs : cache.probs) {
    ASSERT_EQ(probs.dim(0), 4);
    ASSERT_EQ(probs.dim(1), 4);
    for (int i = 0; i < 4; ++i) {
      float total = 0.0f;
      for (int j = 0; j < 4; ++j) total += probs.at(i, j);
      EXPECT_NEAR(total, 1.0f, 1e-5);
    }
  }
}

TEST(AttentionTest, PermutingOtherTokensChangesOutput) {
  // Self-attention mixes information across positions: zeroing one token
  // must change the others' outputs (sanity that attention is not diagonal).
  util::Rng rng(5);
  MultiHeadSelfAttention att("att", tiny_config(), rng);
  Tensor x = Tensor::randn({3, 8}, rng);
  const Tensor y1 = att.forward(x, nullptr);
  for (int j = 0; j < 8; ++j) x.at(2, j) = 0.0f;
  const Tensor y2 = att.forward(x, nullptr);
  float diff = 0.0f;
  for (int j = 0; j < 8; ++j) diff += std::abs(y1.at(0, j) - y2.at(0, j));
  EXPECT_GT(diff, 1e-4f);
}

TEST(AttentionTest, GradcheckInputAndWeights) {
  util::Rng rng(6);
  MultiHeadSelfAttention att("att", tiny_config(), rng);
  Tensor x = Tensor::randn({3, 8}, rng);
  const Tensor w = Tensor::randn({3, 8}, rng);  // loss weights

  auto loss = [&]() {
    return tensor::mul(att.forward(x, nullptr), w).sum();
  };

  MultiHeadSelfAttention::Cache cache;
  att.forward(x, &cache);
  for (auto* p : att.parameters()) p->zero_grad();
  const Tensor dx = att.backward(w, cache);

  const auto xres = tensor::check_gradient(&x, dx, loss, 1e-2, 5e-2);
  EXPECT_TRUE(xres.ok) << "input rel err " << xres.max_rel_error;

  for (auto* p : att.parameters()) {
    const auto res =
        tensor::check_gradient(&p->value, p->grad, loss, 1e-2, 5e-2, 20);
    EXPECT_TRUE(res.ok) << p->name << " rel err " << res.max_rel_error;
  }
}

TEST(AttentionTest, RejectsWrongWidth) {
  util::Rng rng(7);
  MultiHeadSelfAttention att("att", tiny_config(), rng);
  const Tensor x = Tensor::randn({3, 4}, rng);
  EXPECT_THROW(att.forward(x, nullptr), util::CheckError);
}

}  // namespace
}  // namespace rebert::bert
