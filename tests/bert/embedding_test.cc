#include "bert/embedding.h"

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "util/check.h"

namespace rebert::bert {
namespace {

using tensor::Tensor;

BertConfig tiny_config() {
  BertConfig c;
  c.vocab_size = 10;
  c.hidden = 8;
  c.num_heads = 2;
  c.num_layers = 1;
  c.intermediate = 16;
  c.max_seq_len = 16;
  c.tree_code_dim = 6;
  c.dropout = 0.0f;
  return c;
}

EncodedSequence make_sequence(int n, const BertConfig& c, util::Rng& rng) {
  EncodedSequence s;
  for (int i = 0; i < n; ++i) {
    s.token_ids.push_back(rng.uniform_int(0, c.vocab_size - 1));
    s.position_ids.push_back(i);
  }
  s.tree_codes = Tensor({n, c.tree_code_dim});
  for (std::int64_t i = 0; i < s.tree_codes.numel(); ++i)
    s.tree_codes[i] = rng.bernoulli(0.5) ? 1.0f : 0.0f;
  return s;
}

TEST(EmbeddingsTest, OutputShape) {
  util::Rng rng(1);
  const BertConfig c = tiny_config();
  BertEmbeddings emb(c, rng);
  const EncodedSequence s = make_sequence(5, c, rng);
  util::Rng drop_rng(2);
  const Tensor y = emb.forward(s, false, drop_rng, nullptr);
  EXPECT_EQ(y.dim(0), 5);
  EXPECT_EQ(y.dim(1), 8);
}

TEST(EmbeddingsTest, RowsAreLayerNormalized) {
  util::Rng rng(2);
  const BertConfig c = tiny_config();
  BertEmbeddings emb(c, rng);
  const EncodedSequence s = make_sequence(4, c, rng);
  util::Rng drop_rng(3);
  const Tensor y = emb.forward(s, false, drop_rng, nullptr);
  for (int i = 0; i < 4; ++i) {
    double mean = 0;
    for (int j = 0; j < 8; ++j) mean += y.at(i, j);
    EXPECT_NEAR(mean / 8, 0.0, 1e-4);
  }
}

TEST(EmbeddingsTest, AblationFlagsChangeOutput) {
  util::Rng rng(3);
  BertConfig with_tree = tiny_config();
  BertConfig without_tree = tiny_config();
  without_tree.use_tree_embedding = false;
  util::Rng rng1(3), rng2(3);  // identical init
  BertEmbeddings emb1(with_tree, rng1);
  BertEmbeddings emb2(without_tree, rng2);
  const EncodedSequence s = make_sequence(4, with_tree, rng);
  util::Rng d1(5), d2(5);
  const Tensor y1 = emb1.forward(s, false, d1, nullptr);
  const Tensor y2 = emb2.forward(s, false, d2, nullptr);
  EXPECT_FALSE(allclose(y1, y2, 1e-6f));
}

TEST(EmbeddingsTest, TreeCodeInfluencesOutputOnlyWhenEnabled) {
  util::Rng rng(4);
  BertConfig c = tiny_config();
  c.use_tree_embedding = false;
  BertEmbeddings emb(c, rng);
  EncodedSequence s = make_sequence(3, c, rng);
  util::Rng d1(7), d2(7);
  const Tensor y1 = emb.forward(s, false, d1, nullptr);
  s.tree_codes.fill(1.0f);  // radically different codes
  const Tensor y2 = emb.forward(s, false, d2, nullptr);
  EXPECT_TRUE(allclose(y1, y2));
}

TEST(EmbeddingsTest, RejectsBadInputs) {
  util::Rng rng(5);
  const BertConfig c = tiny_config();
  BertEmbeddings emb(c, rng);
  util::Rng drop_rng(1);

  EncodedSequence empty;
  empty.tree_codes = Tensor({1, c.tree_code_dim});
  EXPECT_THROW(emb.forward(empty, false, drop_rng, nullptr),
               util::CheckError);

  EncodedSequence bad_token = make_sequence(2, c, rng);
  bad_token.token_ids[0] = c.vocab_size;
  EXPECT_THROW(emb.forward(bad_token, false, drop_rng, nullptr),
               util::CheckError);

  EncodedSequence bad_pos = make_sequence(2, c, rng);
  bad_pos.position_ids[1] = c.max_seq_len;
  EXPECT_THROW(emb.forward(bad_pos, false, drop_rng, nullptr),
               util::CheckError);

  EncodedSequence bad_tree = make_sequence(2, c, rng);
  bad_tree.tree_codes = Tensor({2, c.tree_code_dim + 2});
  EXPECT_THROW(emb.forward(bad_tree, false, drop_rng, nullptr),
               util::CheckError);
}

TEST(EmbeddingsTest, GradcheckThroughLayerNorm) {
  util::Rng rng(6);
  const BertConfig c = tiny_config();
  BertEmbeddings emb(c, rng);
  const EncodedSequence s = make_sequence(3, c, rng);
  const Tensor w = Tensor::randn({3, 8}, rng);
  util::Rng drop_rng(1);

  auto loss = [&]() {
    util::Rng r(1);
    return tensor::mul(emb.forward(s, false, r, nullptr), w).sum();
  };

  BertEmbeddings::Cache cache;
  emb.forward(s, false, drop_rng, &cache);
  for (auto* p : emb.parameters()) p->zero_grad();
  emb.backward(w, cache);

  for (auto* p : emb.parameters()) {
    const auto res =
        tensor::check_gradient(&p->value, p->grad, loss, 1e-2, 5e-2, 20);
    EXPECT_TRUE(res.ok) << p->name << " rel err " << res.max_rel_error;
  }
}

TEST(EmbeddingsTest, ParameterNamesAreUnique) {
  util::Rng rng(7);
  BertEmbeddings emb(tiny_config(), rng);
  std::vector<std::string> names;
  for (auto* p : emb.parameters()) names.push_back(p->name);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
  EXPECT_EQ(names.size(), 6u);  // word, position, tree W+b, norm gamma+beta
}

}  // namespace
}  // namespace rebert::bert
