// Trainer behaviour: validation splits, early stopping, best-checkpoint
// restoration.
#include "bert/trainer.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/check.h"

namespace rebert::bert {
namespace {

using tensor::Tensor;

BertConfig tiny_config() {
  BertConfig c;
  c.vocab_size = 12;
  c.hidden = 16;
  c.num_heads = 2;
  c.num_layers = 1;
  c.intermediate = 32;
  c.max_seq_len = 16;
  c.tree_code_dim = 6;
  c.dropout = 0.0f;
  c.seed = 5;
  return c;
}

EncodedSequence make_sequence(const std::vector<int>& tokens,
                              const BertConfig& c) {
  EncodedSequence s;
  s.token_ids = tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i)
    s.position_ids.push_back(static_cast<int>(i));
  s.tree_codes = Tensor({static_cast<int>(tokens.size()), c.tree_code_dim});
  return s;
}

std::vector<LabeledExample> separable_dataset(const BertConfig& c, int n) {
  std::vector<LabeledExample> examples;
  util::Rng rng(11);
  for (int i = 0; i < n; ++i) {
    const int label = i % 2;
    std::vector<int> tokens{label == 1 ? 5 : 6};
    for (int j = 0; j < 4; ++j) tokens.push_back(rng.uniform_int(0, 4));
    examples.push_back({make_sequence(tokens, c), label});
  }
  return examples;
}

TEST(TrainerEvalSplitTest, EvalLossReportedPerEpoch) {
  const BertConfig c = tiny_config();
  BertPairClassifier model(c);
  TrainOptions options;
  options.epochs = 3;
  options.eval_fraction = 0.25;
  const TrainResult result =
      train(model, separable_dataset(c, 40), options);
  ASSERT_EQ(result.epochs.size(), 3u);
  for (const EpochStats& stats : result.epochs)
    EXPECT_GT(stats.eval_loss, 0.0);
  EXPECT_GE(result.best_epoch, 0);
  EXPECT_GT(result.best_eval_loss, 0.0);
}

TEST(TrainerEvalSplitTest, NoSplitMeansNoEvalTracking) {
  const BertConfig c = tiny_config();
  BertPairClassifier model(c);
  TrainOptions options;
  options.epochs = 2;
  const TrainResult result =
      train(model, separable_dataset(c, 20), options);
  EXPECT_EQ(result.best_epoch, -1);
  EXPECT_FALSE(result.stopped_early);
  for (const EpochStats& stats : result.epochs)
    EXPECT_DOUBLE_EQ(stats.eval_loss, 0.0);
}

TEST(TrainerEvalSplitTest, BestWeightsRestoredAtEnd) {
  // After training, the model's eval loss must equal the reported best
  // (i.e. the best checkpoint was restored, not the last).
  const BertConfig c = tiny_config();
  BertPairClassifier model(c);
  TrainOptions options;
  options.epochs = 4;
  options.eval_fraction = 0.3;
  options.learning_rate = 3e-3;  // deliberately jumpy so epochs differ
  const std::vector<LabeledExample> examples = separable_dataset(c, 30);
  const TrainResult result = train(model, examples, options);

  // Rebuild the same eval split the trainer used.
  std::vector<std::size_t> indices(examples.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  util::Rng split_rng(options.shuffle_seed ^ 0xe7a1ULL);
  split_rng.shuffle(indices);
  const std::size_t eval_count = static_cast<std::size_t>(
      examples.size() * options.eval_fraction);
  std::vector<LabeledExample> eval_set;
  for (std::size_t i = 0; i < eval_count; ++i)
    eval_set.push_back(examples[indices[i]]);

  EXPECT_NEAR(evaluate_loss(model, eval_set), result.best_eval_loss, 1e-9);
}

TEST(TrainerEarlyStopTest, StopsWhenEvalLossPlateaus) {
  // Random labels: the model can only memorize the training half, so the
  // validation loss rises after the first epochs and patience triggers.
  const BertConfig c = tiny_config();
  BertPairClassifier model(c);
  TrainOptions options;
  options.epochs = 40;
  options.eval_fraction = 0.3;
  options.early_stop_patience = 2;
  options.learning_rate = 5e-3;
  std::vector<LabeledExample> noise;
  util::Rng rng(13);
  for (int i = 0; i < 24; ++i) {
    std::vector<int> tokens;
    for (int j = 0; j < 5; ++j) tokens.push_back(rng.uniform_int(0, 9));
    noise.push_back({make_sequence(tokens, c), rng.bernoulli(0.5) ? 1 : 0});
  }
  const TrainResult result = train(model, noise, options);
  EXPECT_LT(result.epochs.size(), 40u);
  EXPECT_TRUE(result.stopped_early);
  EXPECT_LT(result.best_epoch,
            static_cast<int>(result.epochs.size()) - 1);
}

TEST(TrainerEvalSplitTest, RejectsBadFraction) {
  const BertConfig c = tiny_config();
  BertPairClassifier model(c);
  TrainOptions options;
  options.eval_fraction = 1.0;
  EXPECT_THROW(train(model, separable_dataset(c, 8), options),
               util::CheckError);
  options.eval_fraction = -0.1;
  EXPECT_THROW(train(model, separable_dataset(c, 8), options),
               util::CheckError);
}

}  // namespace
}  // namespace rebert::bert
