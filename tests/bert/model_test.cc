#include "bert/model.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "bert/trainer.h"
#include "tensor/gradcheck.h"
#include "util/check.h"

namespace rebert::bert {
namespace {

using tensor::Tensor;

BertConfig tiny_config() {
  BertConfig c;
  c.vocab_size = 12;
  c.hidden = 16;
  c.num_heads = 2;
  c.num_layers = 2;
  c.intermediate = 32;
  c.max_seq_len = 24;
  c.tree_code_dim = 6;
  c.dropout = 0.0f;
  c.seed = 31;
  return c;
}

EncodedSequence make_sequence(const std::vector<int>& tokens,
                              const BertConfig& c) {
  EncodedSequence s;
  s.token_ids = tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i)
    s.position_ids.push_back(static_cast<int>(i));
  s.tree_codes = Tensor({static_cast<int>(tokens.size()), c.tree_code_dim});
  for (std::size_t i = 0; i < tokens.size(); ++i)
    s.tree_codes.at(static_cast<int>(i), tokens[i] % c.tree_code_dim) = 1.0f;
  return s;
}

TEST(ModelTest, PredictionIsProbability) {
  BertPairClassifier model(tiny_config());
  const EncodedSequence s = make_sequence({1, 2, 3, 4, 5}, tiny_config());
  const double p = model.predict_same_word_probability(s);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(ModelTest, DeterministicInference) {
  BertPairClassifier model(tiny_config());
  const EncodedSequence s = make_sequence({3, 1, 4, 1, 5}, tiny_config());
  EXPECT_DOUBLE_EQ(model.predict_same_word_probability(s),
                   model.predict_same_word_probability(s));
}

TEST(ModelTest, SameSeedSameInit) {
  BertPairClassifier a(tiny_config()), b(tiny_config());
  const EncodedSequence s = make_sequence({2, 7, 2}, tiny_config());
  EXPECT_DOUBLE_EQ(a.predict_same_word_probability(s),
                   b.predict_same_word_probability(s));
}

TEST(ModelTest, ParameterCountIsPlausible) {
  BertPairClassifier model(tiny_config());
  const std::int64_t n = model.num_parameters();
  // vocab*h + seq*h + tree*h ... two encoder layers ... pooler+classifier.
  EXPECT_GT(n, 5000);
  EXPECT_LT(n, 100000);
  // Parameter names unique.
  std::vector<std::string> names;
  for (auto* p : model.parameters()) names.push_back(p->name);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(ModelTest, PaperConfigConstructsWithBertBaseScale) {
  BertPairClassifier model(paper_config(32, 64));
  // BERT-base encoder is ~85M parameters at vocab 30k; with our tiny gate
  // vocabulary the total is dominated by the 12 encoder layers (~7.1M each
  // in attention+FFN terms at H=768... verify order of magnitude).
  const std::int64_t n = model.num_parameters();
  EXPECT_GT(n, 50'000'000);
  EXPECT_LT(n, 150'000'000);
  // One forward pass runs and produces a probability.
  const EncodedSequence s = make_sequence({1, 2, 3}, paper_config(32, 64));
  const double p = model.predict_same_word_probability(s);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(ModelTest, TrainStepReducesLossOnOneExample) {
  BertPairClassifier model(tiny_config());
  const EncodedSequence s = make_sequence({1, 2, 3, 4}, tiny_config());
  tensor::Adam opt(model.parameters());
  const double initial = model.eval_loss(s, 1);
  for (int i = 0; i < 30; ++i) {
    model.train_step_accumulate(s, 1);
    opt.step(1e-3);
  }
  EXPECT_LT(model.eval_loss(s, 1), initial);
}

TEST(ModelTest, LearnsSeparableToyTask) {
  // Class 1: sequences starting with token 5; class 0: token 6.
  const BertConfig c = tiny_config();
  BertPairClassifier model(c);
  std::vector<LabeledExample> examples;
  util::Rng rng(8);
  for (int i = 0; i < 40; ++i) {
    const int label = i % 2;
    std::vector<int> tokens{label == 1 ? 5 : 6};
    for (int j = 0; j < 6; ++j) tokens.push_back(rng.uniform_int(0, 4));
    examples.push_back({make_sequence(tokens, c), label});
  }
  TrainOptions options;
  options.epochs = 12;
  options.batch_size = 8;
  options.learning_rate = 1e-3;
  const TrainResult result = train(model, examples, options);
  EXPECT_GT(result.final_train_accuracy, 0.9)
      << "loss " << result.epochs.back().mean_loss;
}

TEST(ModelTest, SaveLoadRoundTripPreservesPredictions) {
  const BertConfig c = tiny_config();
  BertPairClassifier model(c);
  const EncodedSequence s = make_sequence({1, 9, 2, 8}, c);
  // Perturb away from init so the test is meaningful.
  tensor::Adam opt(model.parameters());
  model.train_step_accumulate(s, 1);
  opt.step(1e-3);
  const double p_before = model.predict_same_word_probability(s);

  const std::string path = ::testing::TempDir() + "/rebert_model.bin";
  model.save(path);

  BertConfig c2 = c;
  c2.seed = 12345;  // different init; load must overwrite it
  BertPairClassifier loaded(c2);
  loaded.load(path);
  EXPECT_NEAR(loaded.predict_same_word_probability(s), p_before, 1e-6);
  std::remove(path.c_str());
}

TEST(ModelTest, GradcheckEndToEnd) {
  // Full model loss vs finite differences on a few sampled parameters of
  // each kind — the strongest correctness statement in the NN stack.
  BertConfig c = tiny_config();
  c.num_layers = 1;
  BertPairClassifier model(c);
  const EncodedSequence s = make_sequence({1, 2, 3}, c);
  auto loss = [&]() { return model.eval_loss(s, 1); };

  for (auto* p : model.parameters()) p->zero_grad();
  model.train_step_accumulate(s, 1);

  int checked = 0;
  for (auto* p : model.parameters()) {
    const auto res =
        tensor::check_gradient(&p->value, p->grad, loss, 1e-2, 8e-2, 6);
    EXPECT_TRUE(res.ok) << p->name << " rel err " << res.max_rel_error;
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(TrainerTest, EvaluateAccuracyAndLoss) {
  const BertConfig c = tiny_config();
  BertPairClassifier model(c);
  std::vector<LabeledExample> examples{
      {make_sequence({1, 2}, c), 0},
      {make_sequence({3, 4}, c), 1},
  };
  const double acc = evaluate_accuracy(model, examples);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
  EXPECT_GT(evaluate_loss(model, examples), 0.0);
}

TEST(TrainerTest, RejectsEmptyDataset) {
  BertPairClassifier model(tiny_config());
  EXPECT_THROW(train(model, {}, TrainOptions{}), util::CheckError);
  EXPECT_THROW(evaluate_accuracy(model, {}), util::CheckError);
}

}  // namespace
}  // namespace rebert::bert
