#include "rebert/word_typing.h"

#include <gtest/gtest.h>

#include "circuitgen/blocks.h"
#include "nl/parser.h"
#include "nl/words.h"
#include "util/check.h"

namespace rebert::core {
namespace {

// Build one block and return its netlist + word bit names.
struct BlockCircuit {
  nl::Netlist netlist{"t"};
  std::vector<std::string> bits;
};

BlockCircuit build_block(gen::BlockType type, int width,
                         std::uint64_t seed = 42) {
  BlockCircuit out;
  nl::WordMap words;
  util::Rng rng(seed);
  gen::BlockBuilder builder(&out.netlist, &words, &rng);
  builder.build({type, width}, "w");
  out.bits = words.words()[0].second;
  return out;
}

TEST(WordTypingTest, FreeRunningCounterDetectedWithOrder) {
  // A counter with enable tied high: build manually so the enable is a
  // constant and the count pattern is clean every cycle.
  const nl::Netlist n = nl::parse_bench_string(R"(
b0 = DFF(d0)
b1 = DFF(d1)
b2 = DFF(d2)
d0 = NOT(b0)
c1 = BUF(b0)
d1 = XOR(b1, c1)
c2 = AND(b0, b1)
d2 = XOR(b2, c2)
OUTPUT(b2)
)");
  // Scrambled input order: analysis must recover LSB..MSB.
  const WordAnalysis a = analyze_word(n, {"b2", "b0", "b1"});
  EXPECT_EQ(a.kind, WordKind::kCounter) << word_kind_name(a.kind);
  EXPECT_GT(a.confidence, 0.95);
  ASSERT_EQ(a.ordered_bits.size(), 3u);
  EXPECT_EQ(a.ordered_bits[0], "b0");
  EXPECT_EQ(a.ordered_bits[1], "b1");
  EXPECT_EQ(a.ordered_bits[2], "b2");
}

TEST(WordTypingTest, GeneratedCounterBlockDetected) {
  const BlockCircuit c = build_block(gen::BlockType::kCounter, 5);
  const WordAnalysis a = analyze_word(c.netlist, c.bits);
  EXPECT_EQ(a.kind, WordKind::kCounter) << word_kind_name(a.kind);
  EXPECT_GT(a.confidence, 0.9);
}

TEST(WordTypingTest, PureShiftRegisterDetectedWithChainOrder) {
  // Serial shifter without parallel load: q0 <- si, q1 <- q0, q2 <- q1.
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(si)
q0 = DFF(si)
q1 = DFF(q0)
q2 = DFF(q1)
OUTPUT(q2)
)");
  const WordAnalysis a = analyze_word(n, {"q2", "q0", "q1"});
  EXPECT_EQ(a.kind, WordKind::kShiftRegister) << word_kind_name(a.kind);
  ASSERT_EQ(a.ordered_bits.size(), 3u);
  EXPECT_EQ(a.ordered_bits[0], "q0");
  EXPECT_EQ(a.ordered_bits[1], "q1");
  EXPECT_EQ(a.ordered_bits[2], "q2");
}

TEST(WordTypingTest, EnableRegisterIsDataRegister) {
  const BlockCircuit c = build_block(gen::BlockType::kEnableReg, 6);
  const WordAnalysis a = analyze_word(c.netlist, c.bits);
  EXPECT_EQ(a.kind, WordKind::kDataRegister) << word_kind_name(a.kind);
  EXPECT_GT(a.activity, 0.0);
  EXPECT_LT(a.activity, 1.0);
}

TEST(WordTypingTest, ConstantWordDetected) {
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(x)
zero = CONST0()
q0 = DFF(zero)
q1 = DFF(zero)
y = AND(x, q0)
OUTPUT(y)
)");
  const WordAnalysis a = analyze_word(n, {"q0", "q1"});
  EXPECT_EQ(a.kind, WordKind::kConstant);
  EXPECT_DOUBLE_EQ(a.confidence, 1.0);
  EXPECT_DOUBLE_EQ(a.activity, 0.0);
}

TEST(WordTypingTest, SingleBitIsFlag) {
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(x)
q = DFF(x)
OUTPUT(q)
)");
  const WordAnalysis a = analyze_word(n, {"q"});
  EXPECT_EQ(a.kind, WordKind::kFlag);
}

TEST(WordTypingTest, AccumulatorIsNotMisreadAsCounterOrShift) {
  const BlockCircuit c = build_block(gen::BlockType::kAccumulator, 5);
  const WordAnalysis a = analyze_word(c.netlist, c.bits);
  EXPECT_NE(a.kind, WordKind::kCounter) << word_kind_name(a.kind);
  EXPECT_NE(a.kind, WordKind::kShiftRegister) << word_kind_name(a.kind);
}

TEST(WordTypingTest, KindNamesAreHuman) {
  EXPECT_STREQ(word_kind_name(WordKind::kCounter), "counter");
  EXPECT_STREQ(word_kind_name(WordKind::kShiftRegister), "shift-register");
  EXPECT_STREQ(word_kind_name(WordKind::kUnknown), "unknown");
}

TEST(WordTypingTest, RejectsBadInput) {
  const nl::Netlist n = nl::parse_bench_string(
      "INPUT(x)\nq = DFF(x)\nOUTPUT(q)\n");
  EXPECT_THROW(analyze_word(n, {}), util::CheckError);
  EXPECT_THROW(analyze_word(n, {"ghost"}), util::CheckError);
  EXPECT_THROW(analyze_word(n, {"x"}), util::CheckError);  // not a DFF
}

TEST(WordTypingTest, DeterministicForSameSeed) {
  const BlockCircuit c = build_block(gen::BlockType::kShiftReg, 4);
  const WordAnalysis a = analyze_word(c.netlist, c.bits);
  const WordAnalysis b = analyze_word(c.netlist, c.bits);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.ordered_bits, b.ordered_bits);
  EXPECT_DOUBLE_EQ(a.confidence, b.confidence);
}

}  // namespace
}  // namespace rebert::core
