#include "rebert/vocab.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace rebert::core {
namespace {

TEST(VocabTest, SpecialsComeFirst) {
  const Vocabulary& v = vocabulary();
  EXPECT_EQ(v.pad_id(), 0);
  EXPECT_EQ(v.token(v.pad_id()), "[PAD]");
  EXPECT_EQ(v.token(v.cls_id()), "[CLS]");
  EXPECT_EQ(v.token(v.sep_id()), "[SEP]");
  EXPECT_EQ(v.token(v.unk_id()), "[UNK]");
  EXPECT_EQ(v.token(v.leaf_id()), "X");
}

TEST(VocabTest, CoversEveryGateType) {
  const Vocabulary& v = vocabulary();
  for (int t = 0; t < nl::kNumGateTypes; ++t) {
    const nl::GateType type = static_cast<nl::GateType>(t);
    const int id = v.gate_id(type);
    EXPECT_EQ(v.token(id), nl::gate_type_name(type));
    EXPECT_FALSE(v.is_special(id));
  }
  // 5 specials/leaf + 13 gate types.
  EXPECT_EQ(v.size(), 5 + nl::kNumGateTypes);
}

TEST(VocabTest, LookupByTextAndUnknownFallback) {
  const Vocabulary& v = vocabulary();
  EXPECT_EQ(v.id_of("NAND"), v.gate_id(nl::GateType::kNand));
  EXPECT_EQ(v.id_of("X"), v.leaf_id());
  EXPECT_EQ(v.id_of("definitely-not-a-token"), v.unk_id());
}

TEST(VocabTest, IdsAreStableAcrossInstances) {
  Vocabulary a, b;
  EXPECT_EQ(a.id_of("XOR"), b.id_of("XOR"));
  EXPECT_EQ(a.size(), b.size());
}

TEST(VocabTest, TokenRangeChecked) {
  const Vocabulary& v = vocabulary();
  EXPECT_THROW(v.token(-1), util::CheckError);
  EXPECT_THROW(v.token(v.size()), util::CheckError);
}

}  // namespace
}  // namespace rebert::core
