#include "rebert/tree_code.h"

#include <gtest/gtest.h>

#include "nl/parser.h"
#include "util/check.h"

namespace rebert::core {
namespace {

// The Fig. 3 example: a 3-node tree (root with left and right children).
nl::ConeTree fig3_tree() {
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(a)
INPUT(b)
root = AND(a, b)
OUTPUT(root)
)");
  return nl::extract_cone(n, *n.find("root"), 2);
}

TEST(TreeCodeTest, PaperFigure3Example) {
  // Paper: root = all zeros; left child '10' + shifted root; right child
  // '01' + shifted root. With width 6:
  //   root  = 000000
  //   left  = 100000
  //   right = 010000
  const nl::ConeTree tree = fig3_tree();
  ASSERT_EQ(tree.size(), 3);
  const auto codes = tree_codes(tree, 6);
  EXPECT_EQ(code_string(codes[0]), "000000");
  EXPECT_EQ(code_string(codes[1]), "100000");  // left child of root
  EXPECT_EQ(code_string(codes[2]), "010000");  // right child of root
}

TEST(TreeCodeTest, DeeperPathShiftsAncestry) {
  // root -> NOT (left) -> leaf (its only=left child):
  // leaf code = '10' + shift(parent '10...') = 1010...
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(a)
INPUT(b)
inv = NOT(a)
root = AND(inv, b)
OUTPUT(root)
)");
  const nl::ConeTree tree = nl::extract_cone(n, *n.find("root"), 3);
  // Pre-order: root AND, inv NOT, leaf a, leaf b.
  ASSERT_EQ(tree.size(), 4);
  const auto codes = tree_codes(tree, 8);
  EXPECT_EQ(code_string(codes[0]), "00000000");
  EXPECT_EQ(code_string(codes[1]), "10000000");  // NOT = left child
  EXPECT_EQ(code_string(codes[2]), "10100000");  // a = left child of NOT
  EXPECT_EQ(code_string(codes[3]), "01000000");  // b = right child of root
}

TEST(TreeCodeTest, WidthTruncatesDeepAncestry) {
  // With width 2 only the most recent branch survives the shift.
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(a)
INPUT(b)
inv = NOT(a)
root = AND(inv, b)
OUTPUT(root)
)");
  const nl::ConeTree tree = nl::extract_cone(n, *n.find("root"), 3);
  const auto codes = tree_codes(tree, 2);
  EXPECT_EQ(code_string(codes[1]), "10");
  EXPECT_EQ(code_string(codes[2]), "10");  // ancestry beyond 1 level lost
  EXPECT_EQ(code_string(codes[3]), "01");
}

TEST(TreeCodeTest, CodesDistinguishSiblingSubtrees) {
  // Symmetric tree: same token at mirrored positions gets different codes.
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
l = AND(a, b)
r = AND(c, d)
root = OR(l, r)
OUTPUT(root)
)");
  const nl::ConeTree tree = nl::extract_cone(n, *n.find("root"), 3);
  const auto codes = tree_codes(tree, 8);
  // Pre-order: OR, AND(l), a, b, AND(r), c, d.
  ASSERT_EQ(tree.size(), 7);
  EXPECT_NE(code_string(codes[1]), code_string(codes[4]));
  EXPECT_NE(code_string(codes[2]), code_string(codes[5]));
}

TEST(TreeCodeTest, TensorFormMatchesVectorForm) {
  const nl::ConeTree tree = fig3_tree();
  const auto codes = tree_codes(tree, 6);
  const tensor::Tensor t = tree_codes_tensor(tree, 6);
  ASSERT_EQ(t.dim(0), 3);
  ASSERT_EQ(t.dim(1), 6);
  for (int i = 0; i < 3; ++i)
    for (int b = 0; b < 6; ++b)
      EXPECT_EQ(t.at(i, b),
                static_cast<float>(codes[static_cast<std::size_t>(i)]
                                        [static_cast<std::size_t>(b)]));
}

TEST(TreeCodeTest, SingleNodeTreeIsAllZero) {
  const nl::Netlist n = nl::parse_bench_string("INPUT(a)\nOUTPUT(a)\n");
  const nl::ConeTree tree = nl::extract_cone(n, *n.find("a"), 2);
  const auto codes = tree_codes(tree, 4);
  ASSERT_EQ(codes.size(), 1u);
  EXPECT_EQ(code_string(codes[0]), "0000");
}

TEST(TreeCodeTest, RejectsBadWidth) {
  const nl::ConeTree tree = fig3_tree();
  EXPECT_THROW(tree_codes(tree, 0), util::CheckError);
  EXPECT_THROW(tree_codes(tree, 5), util::CheckError);  // odd
}

}  // namespace
}  // namespace rebert::core
