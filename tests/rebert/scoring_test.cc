#include "rebert/scoring.h"

#include <gtest/gtest.h>

#include "nl/parser.h"

namespace rebert::core {
namespace {

std::vector<BitSequence> three_bits() {
  // Bits 0 and 1 share a template; bit 2 differs completely.
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(a0)
INPUT(b0)
INPUT(a1)
INPUT(b1)
INPUT(c)
d0 = XOR(a0, b0)
d1 = XOR(a1, b1)
inv = NOT(c)
d2 = NOT(inv)
q0 = DFF(d0)
q1 = DFF(d1)
q2 = DFF(d2)
OUTPUT(d2)
)");
  Tokenizer tokenizer({.backtrace_depth = 4, .tree_code_dim = 8,
                       .max_seq_len = 64});
  return tokenizer.tokenize_bits(n);
}

TEST(BuildScoreMatrixTest, FilterShortCircuitsScorer) {
  const auto bits = three_bits();
  int scorer_calls = 0;
  const ScoreMatrix scores = build_score_matrix(
      bits, FilterOptions{}, [&](int, int) {
        ++scorer_calls;
        return 0.9;
      });
  // Pair (0,1) is identical -> scored. Pairs with bit 2 are dissimilar ->
  // filtered without calling the scorer.
  EXPECT_EQ(scorer_calls, 1);
  EXPECT_DOUBLE_EQ(scores.at(0, 1), 0.9);
  EXPECT_DOUBLE_EQ(scores.at(0, 2), ScoreMatrix::kFiltered);
  EXPECT_DOUBLE_EQ(scores.at(1, 2), ScoreMatrix::kFiltered);
}

TEST(BuildScoreMatrixTest, DisabledFilterScoresAllPairs) {
  const auto bits = three_bits();
  int scorer_calls = 0;
  FilterOptions off;
  off.enabled = false;
  build_score_matrix(bits, off, [&](int, int) {
    ++scorer_calls;
    return 0.1;
  });
  EXPECT_EQ(scorer_calls, 3);  // all pairs of 3 bits
}

TEST(BuildScoreMatrixTest, ScoresLandSymmetrically) {
  const auto bits = three_bits();
  FilterOptions off;
  off.enabled = false;
  const ScoreMatrix scores = build_score_matrix(
      bits, off, [&](int i, int j) { return 0.1 * (i + 1) + 0.01 * j; });
  for (int i = 0; i < scores.size(); ++i)
    for (int j = 0; j < scores.size(); ++j)
      if (i != j) {
        EXPECT_DOUBLE_EQ(scores.at(i, j), scores.at(j, i));
      }
}

TEST(BuildScoreMatrixTest, SingleBitMatrix) {
  const auto bits = three_bits();
  const std::vector<BitSequence> one{bits[0]};
  const ScoreMatrix scores =
      build_score_matrix(one, FilterOptions{}, [](int, int) { return 1.0; });
  EXPECT_EQ(scores.size(), 1);
  EXPECT_DOUBLE_EQ(scores.filtered_fraction(), 0.0);
}

}  // namespace
}  // namespace rebert::core
