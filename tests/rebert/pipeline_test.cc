#include "rebert/pipeline.h"

#include <gtest/gtest.h>

#include "circuitgen/suite.h"
#include "util/check.h"

namespace rebert::core {
namespace {

CircuitData make_circuit(const std::string& name, double scale = 1.0) {
  gen::GeneratedCircuit generated = gen::generate_benchmark(name, scale);
  return CircuitData{name, std::move(generated.netlist),
                     std::move(generated.words)};
}

ExperimentOptions quick_options() {
  ExperimentOptions options;
  options.pipeline.tokenizer.backtrace_depth = 4;
  options.pipeline.tokenizer.tree_code_dim = 8;
  options.pipeline.tokenizer.max_seq_len = 96;
  options.dataset.r_indices = {0.0, 0.5};
  options.dataset.max_samples_per_circuit = 120;
  options.training.epochs = 2;
  options.training.batch_size = 16;
  options.model_hidden = 32;
  options.model_layers = 1;
  options.model_heads = 2;
  return options;
}

TEST(PipelineConfigTest, MakeModelConfigDerivesFromOptions) {
  const ExperimentOptions options = quick_options();
  const bert::BertConfig config = make_model_config(options);
  EXPECT_EQ(config.vocab_size, vocabulary().size());
  EXPECT_EQ(config.hidden, 32);
  EXPECT_EQ(config.max_seq_len, 96);
  EXPECT_EQ(config.tree_code_dim, 8);
  EXPECT_NO_THROW(config.validate());
}

TEST(PipelineTest, EndToEndTrainAndRecover) {
  // Train on b03+b08, evaluate on b11 — a miniature of the paper's LOO-CV.
  std::vector<CircuitData> circuits;
  circuits.push_back(make_circuit("b03"));
  circuits.push_back(make_circuit("b08"));
  const CircuitData test_circuit = make_circuit("b11");

  const ExperimentOptions options = quick_options();
  std::vector<const CircuitData*> train_set{&circuits[0], &circuits[1]};
  auto model = train_rebert(train_set, options);
  ASSERT_NE(model, nullptr);

  const EvaluationResult clean =
      evaluate_rebert(test_circuit, 0.0, *model, options);
  EXPECT_EQ(clean.recovery.labels.size(),
            test_circuit.netlist.dffs().size());
  EXPECT_GE(clean.ari, -1.0);
  EXPECT_LE(clean.ari, 1.0);
  EXPECT_GT(clean.recovery.num_words, 0);
  EXPECT_GT(clean.recovery.total_seconds, 0.0);
  // Even a lightly trained model must beat random grouping on average;
  // at minimum it must not be pathological.
  EXPECT_GT(clean.ari, -0.2);

  const EvaluationResult corrupted =
      evaluate_rebert(test_circuit, 0.6, *model, options);
  EXPECT_EQ(corrupted.recovery.labels.size(),
            test_circuit.netlist.dffs().size());
}

TEST(PipelineTest, RecoverWordsTimingBreakdownConsistent) {
  const CircuitData circuit = make_circuit("b03");
  const ExperimentOptions options = quick_options();
  bert::BertPairClassifier model(make_model_config(options));
  const RecoveryResult result =
      recover_words(circuit.netlist, model, options.pipeline);
  EXPECT_EQ(result.labels.size(), circuit.netlist.dffs().size());
  EXPECT_LE(result.tokenize_seconds + result.scoring_seconds +
                result.grouping_seconds,
            result.total_seconds + 0.05);
  EXPECT_GE(result.filtered_fraction, 0.0);
  EXPECT_LE(result.filtered_fraction, 1.0);
}

TEST(PipelineTest, UntrainedModelStillProducesValidPartition) {
  const CircuitData circuit = make_circuit("b08");
  const ExperimentOptions options = quick_options();
  bert::BertPairClassifier model(make_model_config(options));
  const EvaluationResult result =
      evaluate_rebert(circuit, 0.2, model, options);
  EXPECT_EQ(result.recovery.labels.size(), circuit.netlist.dffs().size());
  for (int label : result.recovery.labels) EXPECT_GE(label, 0);
}

}  // namespace
}  // namespace rebert::core
