#include "rebert/filter.h"

#include <gtest/gtest.h>

namespace rebert::core {
namespace {

TEST(JaccardTest, IdenticalSequencesScoreOne) {
  EXPECT_DOUBLE_EQ(jaccard_similarity({1, 2, 3}, {1, 2, 3}), 1.0);
  // Bag semantics: order does not matter.
  EXPECT_DOUBLE_EQ(jaccard_similarity({1, 2, 3}, {3, 2, 1}), 1.0);
}

TEST(JaccardTest, DisjointSequencesScoreZero) {
  EXPECT_DOUBLE_EQ(jaccard_similarity({1, 2}, {3, 4}), 0.0);
}

TEST(JaccardTest, MultisetCountsMatter) {
  // {1,1,2} vs {1,2,2}: min counts 1+1=2; max counts 2+2=4 -> 0.5.
  EXPECT_DOUBLE_EQ(jaccard_similarity({1, 1, 2}, {1, 2, 2}), 0.5);
  // {1,1} vs {1}: 1/2.
  EXPECT_DOUBLE_EQ(jaccard_similarity({1, 1}, {1}), 0.5);
}

TEST(JaccardTest, EmptyEdgeCases) {
  EXPECT_DOUBLE_EQ(jaccard_similarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(jaccard_similarity({1}, {}), 0.0);
}

TEST(JaccardTest, SymmetricAndBounded) {
  const std::vector<int> a{1, 2, 2, 3, 5};
  const std::vector<int> b{2, 3, 3, 4};
  const double ab = jaccard_similarity(a, b);
  EXPECT_DOUBLE_EQ(ab, jaccard_similarity(b, a));
  EXPECT_GT(ab, 0.0);
  EXPECT_LT(ab, 1.0);
}

TEST(FilterTest, ThresholdGatesPairs) {
  BitSequence a, b;
  a.token_ids = {1, 2, 3, 4};
  b.token_ids = {1, 2, 3, 9};  // Jaccard = 3/5 = 0.6
  FilterOptions strict;          // threshold 0.7
  EXPECT_FALSE(passes_filter(a, b, strict));
  FilterOptions loose;
  loose.threshold = 0.5;
  EXPECT_TRUE(passes_filter(a, b, loose));
}

TEST(FilterTest, DisabledFilterPassesEverything) {
  BitSequence a, b;
  a.token_ids = {1};
  b.token_ids = {9};
  FilterOptions off;
  off.enabled = false;
  EXPECT_TRUE(passes_filter(a, b, off));
}

TEST(FilterTest, PaperThresholdIsPointSeven) {
  EXPECT_DOUBLE_EQ(FilterOptions{}.threshold, 0.7);
}

}  // namespace
}  // namespace rebert::core
