#include "rebert/report.h"

#include <gtest/gtest.h>

#include "nl/parser.h"
#include "util/check.h"

namespace rebert::core {
namespace {

std::vector<nl::Bit> four_bits() {
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(a)
q0 = DFF(a)
q1 = DFF(a)
q2 = DFF(a)
q3 = DFF(a)
OUTPUT(a)
)");
  // Keep the netlist alive via static: Bit only stores ids and names.
  return nl::extract_bits(n);
}

TEST(ReportTest, GroupsAndSingletonsSeparated) {
  const auto bits = four_bits();
  ScoreMatrix scores(4);
  scores.set(0, 1, 0.9);
  scores.set(0, 2, 0.8);
  scores.set(1, 2, 0.85);
  const std::vector<int> labels{0, 0, 0, 1};  // q3 singleton
  const WordReport report = make_word_report(bits, scores, labels);
  ASSERT_EQ(report.words.size(), 1u);
  EXPECT_EQ(report.num_singletons, 1);
  const WordReportEntry& entry = report.words[0];
  EXPECT_EQ(entry.bits.size(), 3u);
  EXPECT_NEAR(entry.mean_intra_score, (0.9 + 0.8 + 0.85) / 3, 1e-12);
  EXPECT_NEAR(entry.min_intra_score, 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(entry.filtered_intra_fraction, 0.0);
  EXPECT_NEAR(report.threshold, 0.3, 1e-12);  // max 0.9 / 3
}

TEST(ReportTest, FilteredIntraPairsCounted) {
  const auto bits = four_bits();
  ScoreMatrix scores(4);
  scores.set(0, 1, 0.9);
  scores.set(1, 2, 0.9);
  // (0,2) stays filtered but 0,1,2 still chain into one word.
  const std::vector<int> labels{0, 0, 0, 1};
  const WordReport report = make_word_report(bits, scores, labels);
  ASSERT_EQ(report.words.size(), 1u);
  EXPECT_NEAR(report.words[0].filtered_intra_fraction, 1.0 / 3.0, 1e-12);
}

TEST(ReportTest, SortsByCohesion) {
  const auto bits = four_bits();
  ScoreMatrix scores(4);
  scores.set(0, 1, 0.5);
  scores.set(2, 3, 0.95);
  const std::vector<int> labels{0, 0, 1, 1};
  const WordReport report = make_word_report(bits, scores, labels);
  ASSERT_EQ(report.words.size(), 2u);
  EXPECT_GT(report.words[0].mean_intra_score,
            report.words[1].mean_intra_score);
  EXPECT_EQ(report.words[0].bits[0], "q2");
}

TEST(ReportTest, ToStringMentionsEverything) {
  const auto bits = four_bits();
  ScoreMatrix scores(4);
  scores.set(0, 1, 0.6);
  const std::vector<int> labels{0, 0, 1, 2};
  const WordReport report = make_word_report(bits, scores, labels);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("1 multi-bit words"), std::string::npos);
  EXPECT_NE(text.find("2 singleton bits"), std::string::npos);
  EXPECT_NE(text.find("q0 q1"), std::string::npos);
}

TEST(ReportTest, JsonFormIsWellFormedAndComplete) {
  const auto bits = four_bits();
  ScoreMatrix scores(4);
  scores.set(0, 1, 0.6);
  const std::vector<int> labels{0, 0, 1, 2};
  const WordReport report = make_word_report(bits, scores, labels);
  const std::string json = report.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"num_singletons\":2"), std::string::npos);
  EXPECT_NE(json.find("\"bits\":[\"q0\",\"q1\"]"), std::string::npos);
  EXPECT_NE(json.find("\"mean_intra_score\":0.600000"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ReportTest, AllSingletons) {
  const auto bits = four_bits();
  ScoreMatrix scores(4);
  const std::vector<int> labels{0, 1, 2, 3};
  const WordReport report = make_word_report(bits, scores, labels);
  EXPECT_TRUE(report.words.empty());
  EXPECT_EQ(report.num_singletons, 4);
  EXPECT_DOUBLE_EQ(report.threshold, 0.0);
}

TEST(ReportTest, RejectsMismatchedSizes) {
  const auto bits = four_bits();
  ScoreMatrix scores(4);
  EXPECT_THROW(make_word_report(bits, scores, {0, 1}), util::CheckError);
  ScoreMatrix small(2);
  EXPECT_THROW(make_word_report(bits, small, {0, 1, 2, 3}),
               util::CheckError);
}

}  // namespace
}  // namespace rebert::core
