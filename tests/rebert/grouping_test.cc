#include "rebert/grouping.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace rebert::core {
namespace {

TEST(UnionFindTest, BasicOperations) {
  UnionFind uf(5);
  EXPECT_FALSE(uf.connected(0, 1));
  uf.unite(0, 1);
  EXPECT_TRUE(uf.connected(0, 1));
  uf.unite(1, 2);
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 3));
  const std::vector<int> labels = uf.labels();
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[3], labels[4]);
}

TEST(UnionFindTest, LabelsAreCompactAndFirstSeen) {
  UnionFind uf(4);
  uf.unite(2, 3);
  const std::vector<int> labels = uf.labels();
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 1);
  EXPECT_EQ(labels[2], 2);
  EXPECT_EQ(labels[3], 2);
}

TEST(UnionFindTest, RangeChecked) {
  UnionFind uf(3);
  EXPECT_THROW(uf.find(3), util::CheckError);
  EXPECT_THROW(uf.find(-1), util::CheckError);
}

TEST(GroupingTest, ThresholdIsMaxOverThree) {
  // max = 0.9 -> threshold 0.3: edges for scores > 0.3.
  ScoreMatrix scores(4);
  scores.set(0, 1, 0.9);
  scores.set(2, 3, 0.31);
  scores.set(0, 2, 0.29);
  const std::vector<int> labels = group_words(scores);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(GroupingTest, FilteredPairsNeverConnect) {
  ScoreMatrix scores(3);
  scores.set(0, 1, 0.9);
  // (1,2) stays kFiltered = -1.
  const std::vector<int> labels = group_words(scores);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[1], labels[2]);
}

TEST(GroupingTest, AllFilteredYieldsSingletons) {
  ScoreMatrix scores(4);
  const std::vector<int> labels = group_words(scores);
  for (std::size_t i = 0; i < labels.size(); ++i)
    for (std::size_t j = i + 1; j < labels.size(); ++j)
      EXPECT_NE(labels[i], labels[j]);
}

TEST(GroupingTest, TransitiveChainsMerge) {
  // 0-1, 1-2 above threshold: all three in one word even though 0-2 is low.
  ScoreMatrix scores(3);
  scores.set(0, 1, 0.9);
  scores.set(1, 2, 0.9);
  scores.set(0, 2, 0.05);
  const std::vector<int> labels = group_words(scores);
  EXPECT_EQ(labels[0], labels[2]);
}

TEST(GroupingTest, DynamicThresholdAdaptsToLowScores) {
  // Even weak scores group if they dominate the matrix: max 0.2 ->
  // threshold ~0.066.
  ScoreMatrix scores(3);
  scores.set(0, 1, 0.2);
  scores.set(1, 2, 0.07);
  const std::vector<int> labels = group_words(scores);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
}

TEST(GroupingTest, CustomThresholdFactor) {
  // max = 0.9; the 0.5 edge appears only when the factor drops below 5/9.
  ScoreMatrix scores(3);
  scores.set(0, 1, 0.9);
  scores.set(1, 2, 0.5);
  GroupingOptions strict;
  strict.threshold_factor = 0.7;  // threshold 0.63 > 0.5
  const std::vector<int> strict_labels = group_words(scores, strict);
  EXPECT_EQ(strict_labels[0], strict_labels[1]);
  EXPECT_NE(strict_labels[1], strict_labels[2]);
  GroupingOptions loose;
  loose.threshold_factor = 0.3;  // threshold 0.27 < 0.5
  const std::vector<int> loose_labels = group_words(scores, loose);
  EXPECT_EQ(loose_labels[0], loose_labels[2]);
}

TEST(GroupingTest, RejectsBadFactor) {
  ScoreMatrix scores(2);
  GroupingOptions bad;
  bad.threshold_factor = 0.0;
  EXPECT_THROW(group_words(scores, bad), util::CheckError);
  bad.threshold_factor = 1.5;
  EXPECT_THROW(group_words(scores, bad), util::CheckError);
}

TEST(ScoreMatrixTest, SymmetricStorage) {
  ScoreMatrix scores(3);
  scores.set(0, 2, 0.42);
  EXPECT_DOUBLE_EQ(scores.at(2, 0), 0.42);
  EXPECT_DOUBLE_EQ(scores.at(0, 1), ScoreMatrix::kFiltered);
  EXPECT_THROW(scores.at(3, 0), util::CheckError);
}

TEST(ScoreMatrixTest, MaxAndFilteredFraction) {
  ScoreMatrix scores(3);
  EXPECT_DOUBLE_EQ(scores.max_score(), ScoreMatrix::kFiltered);
  EXPECT_DOUBLE_EQ(scores.filtered_fraction(), 1.0);
  scores.set(0, 1, 0.4);
  EXPECT_DOUBLE_EQ(scores.max_score(), 0.4);
  EXPECT_NEAR(scores.filtered_fraction(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace rebert::core
