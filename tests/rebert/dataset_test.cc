#include "rebert/dataset.h"

#include <gtest/gtest.h>

#include "circuitgen/suite.h"
#include "util/check.h"

namespace rebert::core {
namespace {

CircuitData make_circuit(const std::string& name) {
  gen::GeneratedCircuit generated = gen::generate_benchmark(name);
  return CircuitData{name, std::move(generated.netlist),
                     std::move(generated.words)};
}

DatasetOptions small_options() {
  DatasetOptions options;
  options.r_indices = {0.0, 0.5};
  options.max_samples_per_circuit = 200;
  options.tokenizer.backtrace_depth = 4;
  options.tokenizer.tree_code_dim = 8;
  options.tokenizer.max_seq_len = 128;
  return options;
}

TEST(DatasetTest, ProducesLabeledExamples) {
  const CircuitData circuit = make_circuit("b03");
  const auto examples = build_examples_for_circuit(circuit, small_options());
  ASSERT_FALSE(examples.empty());
  EXPECT_LE(static_cast<int>(examples.size()), 200);
  int positives = 0, negatives = 0;
  for (const auto& ex : examples) {
    EXPECT_TRUE(ex.label == 0 || ex.label == 1);
    EXPECT_GE(ex.sequence.length(), 5);
    (ex.label == 1 ? positives : negatives)++;
  }
  EXPECT_GT(positives, 0);
  EXPECT_GT(negatives, 0);
}

TEST(DatasetTest, NegativeRatioApproximatelyRespected) {
  const CircuitData circuit = make_circuit("b04");
  DatasetOptions options = small_options();
  options.max_samples_per_circuit = 1000;
  const auto examples = build_examples_for_circuit(circuit, options);
  int positives = 0, negatives = 0;
  for (const auto& ex : examples) (ex.label == 1 ? positives : negatives)++;
  ASSERT_GT(positives, 0);
  const double ratio = static_cast<double>(negatives) / positives;
  // 1:1.2 target (§III-A-2) with sampling slack.
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.6);
}

TEST(DatasetTest, CapIsEnforced) {
  const CircuitData circuit = make_circuit("b12");
  DatasetOptions options = small_options();
  options.max_samples_per_circuit = 50;
  const auto examples = build_examples_for_circuit(circuit, options);
  EXPECT_LE(static_cast<int>(examples.size()), 50);
}

TEST(DatasetTest, DeterministicForSameSeed) {
  const CircuitData circuit = make_circuit("b03");
  const auto a = build_examples_for_circuit(circuit, small_options());
  const auto b = build_examples_for_circuit(circuit, small_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].sequence.token_ids, b[i].sequence.token_ids);
  }
}

TEST(DatasetTest, SeedChangesSampling) {
  const CircuitData circuit = make_circuit("b03");
  DatasetOptions options = small_options();
  const auto a = build_examples_for_circuit(circuit, options);
  options.seed += 1;
  const auto b = build_examples_for_circuit(circuit, options);
  bool any_difference = a.size() != b.size();
  for (std::size_t i = 0; !any_difference && i < a.size(); ++i)
    any_difference = a[i].sequence.token_ids != b[i].sequence.token_ids ||
                     a[i].label != b[i].label;
  EXPECT_TRUE(any_difference);
}

TEST(DatasetTest, TrainingSetAggregatesCircuits) {
  const CircuitData c1 = make_circuit("b03");
  const CircuitData c2 = make_circuit("b08");
  DatasetOptions options = small_options();
  options.max_samples_per_circuit = 100;
  const auto only_one = build_training_set({&c1}, options);
  const auto both = build_training_set({&c1, &c2}, options);
  EXPECT_GT(both.size(), only_one.size());
}

TEST(DatasetTest, LooSplitExcludesTestCircuit) {
  std::vector<CircuitData> circuits;
  circuits.push_back(make_circuit("b03"));
  circuits.push_back(make_circuit("b08"));
  circuits.push_back(make_circuit("b11"));
  const auto split = loo_train_split(circuits, 1);
  ASSERT_EQ(split.size(), 2u);
  for (const CircuitData* c : split) EXPECT_NE(c->name, "b08");
  EXPECT_THROW(loo_train_split(circuits, 3), util::CheckError);
}

TEST(DatasetTest, RejectsBadOptions) {
  const CircuitData circuit = make_circuit("b03");
  DatasetOptions options = small_options();
  options.r_indices.clear();
  EXPECT_THROW(build_examples_for_circuit(circuit, options),
               util::CheckError);
  EXPECT_THROW(build_training_set({}, small_options()), util::CheckError);
}

}  // namespace
}  // namespace rebert::core
