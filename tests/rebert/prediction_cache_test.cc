#include "rebert/prediction_cache.h"

#include <gtest/gtest.h>

#include "circuitgen/suite.h"
#include "rebert/pipeline.h"
#include "rebert/scoring.h"

namespace rebert::core {
namespace {

BitSequence make_sequence(std::vector<int> tokens) {
  BitSequence seq;
  seq.token_ids = std::move(tokens);
  seq.tree_codes.assign(seq.token_ids.size(),
                        std::vector<std::uint8_t>(8, 0));
  return seq;
}

TEST(PredictionCacheTest, HitAfterInsert) {
  PredictionCache cache;
  const BitSequence a = make_sequence({1, 2, 3});
  const BitSequence b = make_sequence({4, 5});
  const std::uint64_t key = PredictionCache::key_of(a, b);
  double score = 0.0;
  EXPECT_FALSE(cache.lookup(key, &score));
  cache.insert(key, 0.42);
  ASSERT_TRUE(cache.lookup(key, &score));
  EXPECT_DOUBLE_EQ(score, 0.42);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(PredictionCacheTest, KeyIsOrderSensitive) {
  // encode_pair(a,b) and encode_pair(b,a) are different model inputs.
  const BitSequence a = make_sequence({1, 2, 3});
  const BitSequence b = make_sequence({4, 5});
  EXPECT_NE(PredictionCache::key_of(a, b), PredictionCache::key_of(b, a));
}

TEST(PredictionCacheTest, KeyDependsOnTokensAndCodes) {
  const BitSequence a = make_sequence({1, 2, 3});
  BitSequence a2 = make_sequence({1, 2, 3});
  EXPECT_EQ(PredictionCache::key_of(a, a), PredictionCache::key_of(a2, a2));
  a2.token_ids[2] = 9;
  EXPECT_NE(PredictionCache::key_of(a, a), PredictionCache::key_of(a2, a2));
  BitSequence a3 = make_sequence({1, 2, 3});
  a3.tree_codes[1][0] = 1;  // same tokens, different tree position
  EXPECT_NE(PredictionCache::key_of(a, a), PredictionCache::key_of(a3, a3));
}

TEST(PredictionCacheTest, ClearResetsEverything) {
  PredictionCache cache;
  cache.insert(7, 0.5);
  double score;
  cache.lookup(7, &score);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_FALSE(cache.lookup(7, &score));
}

TEST(PredictionCacheTest, CachedScoringIsBitIdentical) {
  // The headline property: caching must not change the score matrix.
  gen::GeneratedCircuit g = gen::generate_benchmark("b03", 0.5);
  const Tokenizer tokenizer({.backtrace_depth = 4, .tree_code_dim = 8,
                             .max_seq_len = 128});
  const auto bits = tokenizer.tokenize_bits(g.netlist);

  bert::BertConfig config = bert::eval_config(32, 128);
  config.tree_code_dim = 8;
  config.hidden = 32;
  config.num_layers = 1;
  config.num_heads = 2;
  config.intermediate = 64;
  bert::BertPairClassifier model(config);

  const ScoreMatrix uncached = build_score_matrix_with_model(
      bits, tokenizer, FilterOptions{}, model, nullptr);
  PredictionCache cache;
  const ScoreMatrix cached = build_score_matrix_with_model(
      bits, tokenizer, FilterOptions{}, model, &cache);

  ASSERT_EQ(uncached.size(), cached.size());
  for (int i = 0; i < uncached.size(); ++i)
    for (int j = 0; j < uncached.size(); ++j)
      EXPECT_DOUBLE_EQ(uncached.at(i, j), cached.at(i, j));
  // Template-rich circuit: the cache must actually hit.
  EXPECT_GT(cache.hits(), 0u);
}

TEST(PredictionCacheTest, PipelineReportsHitRate) {
  gen::GeneratedCircuit g = gen::generate_benchmark("b03", 0.5);
  PipelineOptions options;
  options.tokenizer.backtrace_depth = 4;
  options.tokenizer.tree_code_dim = 8;
  options.tokenizer.max_seq_len = 128;

  bert::BertConfig config = bert::eval_config(32, 128);
  config.tree_code_dim = 8;
  bert::BertPairClassifier model(config);

  const RecoveryResult with_cache =
      recover_words(g.netlist, model, options);
  EXPECT_GE(with_cache.cache_hit_rate, 0.0);

  options.use_prediction_cache = false;
  const RecoveryResult without_cache =
      recover_words(g.netlist, model, options);
  EXPECT_DOUBLE_EQ(without_cache.cache_hit_rate, 0.0);
  // Identical partitions either way.
  EXPECT_EQ(with_cache.labels, without_cache.labels);
}

}  // namespace
}  // namespace rebert::core
