#include "rebert/tokenizer.h"

#include <gtest/gtest.h>

#include "nl/parser.h"
#include "util/check.h"

namespace rebert::core {
namespace {

nl::Netlist fig2_circuit() {
  // Fig. 2: bit = AND(NOT(x0), OR(x1, x2)), extracted with k=3.
  return nl::parse_bench_string(R"(
INPUT(x0)
INPUT(x1)
INPUT(x2)
n_not = NOT(x0)
n_or = OR(x1, x2)
bit = AND(n_not, n_or)
q = DFF(bit)
OUTPUT(q)
)");
}

TEST(TokenizerTest, PaperFigure2TokenSequence) {
  const nl::Netlist n = fig2_circuit();
  Tokenizer tokenizer({.backtrace_depth = 3, .tree_code_dim = 8,
                       .max_seq_len = 64});
  const BitSequence seq = tokenizer.tokenize_net(n, *n.find("bit"));
  // Pre-order: AND NOT X OR X X — exactly Fig. 2(b).
  EXPECT_EQ(Tokenizer::decode(seq.token_ids), "AND NOT X OR X X");
  EXPECT_EQ(seq.tree_size, 6);
  EXPECT_EQ(seq.tree_depth, 2);
  EXPECT_EQ(seq.tree_codes.size(), seq.token_ids.size());
}

TEST(TokenizerTest, LeafGeneralizationCanBeDisabled) {
  const nl::Netlist n = fig2_circuit();
  Tokenizer tokenizer({.backtrace_depth = 3, .tree_code_dim = 8,
                       .max_seq_len = 64, .generalize_leaves = false});
  const BitSequence seq = tokenizer.tokenize_net(n, *n.find("bit"));
  // Leaves keep their driver type (INPUT) instead of X.
  EXPECT_EQ(Tokenizer::decode(seq.token_ids),
            "AND NOT INPUT OR INPUT INPUT");
}

TEST(TokenizerTest, DepthLimitsSequenceLength) {
  const nl::Netlist n = fig2_circuit();
  Tokenizer shallow({.backtrace_depth = 1, .tree_code_dim = 8,
                     .max_seq_len = 64});
  const BitSequence seq = shallow.tokenize_net(n, *n.find("bit"));
  EXPECT_EQ(Tokenizer::decode(seq.token_ids), "AND X X");
}

TEST(TokenizerTest, TokenizeBitsCoversAllDffs) {
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(a)
INPUT(b)
d0 = AND(a, b)
d1 = OR(a, b)
q0 = DFF(d0)
q1 = DFF(d1)
OUTPUT(d0)
)");
  Tokenizer tokenizer({.backtrace_depth = 4, .tree_code_dim = 8,
                       .max_seq_len = 64});
  const std::vector<BitSequence> all = tokenizer.tokenize_bits(n);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(Tokenizer::decode(all[0].token_ids), "AND X X");
  EXPECT_EQ(Tokenizer::decode(all[1].token_ids), "OR X X");
}

TEST(TokenizerTest, EncodePairLayout) {
  const nl::Netlist n = fig2_circuit();
  Tokenizer tokenizer({.backtrace_depth = 3, .tree_code_dim = 8,
                       .max_seq_len = 64});
  const BitSequence seq = tokenizer.tokenize_net(n, *n.find("bit"));
  const bert::EncodedSequence pair = tokenizer.encode_pair(seq, seq);
  const Vocabulary& v = vocabulary();
  // [CLS] 6 tokens [SEP] 6 tokens [SEP] = 15.
  ASSERT_EQ(pair.length(), 15);
  EXPECT_EQ(pair.token_ids.front(), v.cls_id());
  EXPECT_EQ(pair.token_ids[7], v.sep_id());
  EXPECT_EQ(pair.token_ids.back(), v.sep_id());
  // Positions sequential.
  for (int i = 0; i < pair.length(); ++i)
    EXPECT_EQ(pair.position_ids[static_cast<std::size_t>(i)], i);
  // Special tokens carry all-zero tree codes.
  for (int b = 0; b < 8; ++b) {
    EXPECT_EQ(pair.tree_codes.at(0, b), 0.0f);
    EXPECT_EQ(pair.tree_codes.at(7, b), 0.0f);
    EXPECT_EQ(pair.tree_codes.at(14, b), 0.0f);
  }
  // First real token (root of a) also zero; second (NOT, left child) is
  // '10...'.
  EXPECT_EQ(pair.tree_codes.at(2, 0), 1.0f);
  EXPECT_EQ(pair.tree_codes.at(2, 1), 0.0f);
}

TEST(TokenizerTest, EncodePairTruncatesLongSequences) {
  // Build a deep chain so the cone is large, then encode with a small
  // max_seq_len.
  std::string bench = "INPUT(a)\nINPUT(b)\nn0 = AND(a, b)\n";
  for (int i = 1; i < 40; ++i)
    bench += "n" + std::to_string(i) + " = AND(n" + std::to_string(i - 1) +
             ", b)\n";
  bench += "OUTPUT(n39)\n";
  const nl::Netlist n = nl::parse_bench_string(bench);
  Tokenizer tokenizer({.backtrace_depth = 30, .tree_code_dim = 8,
                       .max_seq_len = 32});
  const BitSequence seq = tokenizer.tokenize_net(n, *n.find("n39"));
  EXPECT_GT(static_cast<int>(seq.token_ids.size()), 32);
  const bert::EncodedSequence pair = tokenizer.encode_pair(seq, seq);
  EXPECT_LE(pair.length(), 32);
  // Structure preserved: CLS head, SEP tail.
  EXPECT_EQ(pair.token_ids.front(), vocabulary().cls_id());
  EXPECT_EQ(pair.token_ids.back(), vocabulary().sep_id());
}

TEST(TokenizerTest, SameWordBitsGetSimilarSequences) {
  // Two bits built from the same template over different inputs tokenize
  // to identical generalized sequences.
  const nl::Netlist n = nl::parse_bench_string(R"(
INPUT(a0)
INPUT(a1)
INPUT(b0)
INPUT(b1)
d0 = XOR(a0, b0)
d1 = XOR(a1, b1)
q0 = DFF(d0)
q1 = DFF(d1)
OUTPUT(d0)
)");
  Tokenizer tokenizer({.backtrace_depth = 6, .tree_code_dim = 8,
                       .max_seq_len = 64});
  const auto bits = tokenizer.tokenize_bits(n);
  EXPECT_EQ(bits[0].token_ids, bits[1].token_ids);
}

TEST(TokenizerTest, PaddingFillsToFixedLength) {
  const nl::Netlist n = fig2_circuit();
  Tokenizer tokenizer({.backtrace_depth = 3, .tree_code_dim = 8,
                       .max_seq_len = 64, .generalize_leaves = true,
                       .pad_to = 32});
  const BitSequence seq = tokenizer.tokenize_net(n, *n.find("bit"));
  const bert::EncodedSequence pair = tokenizer.encode_pair(seq, seq);
  EXPECT_EQ(pair.length(), 32);
  EXPECT_EQ(pair.valid_len, 15);  // [CLS] + 6 + [SEP] + 6 + [SEP]
  const Vocabulary& v = vocabulary();
  for (int i = pair.valid_len; i < pair.length(); ++i) {
    EXPECT_EQ(pair.token_ids[static_cast<std::size_t>(i)], v.pad_id());
    for (int b = 0; b < 8; ++b)
      EXPECT_EQ(pair.tree_codes.at(i, b), 0.0f);
  }
  // Sequences already at/above pad_to are not padded.
  Tokenizer small_pad({.backtrace_depth = 3, .tree_code_dim = 8,
                       .max_seq_len = 64, .generalize_leaves = true,
                       .pad_to = 10});
  const bert::EncodedSequence unpadded = small_pad.encode_pair(seq, seq);
  EXPECT_EQ(unpadded.length(), 15);
  EXPECT_EQ(unpadded.valid_len, 0);
}

TEST(TokenizerTest, RejectsBadOptions) {
  EXPECT_THROW(Tokenizer({.backtrace_depth = 0}), util::CheckError);
  EXPECT_THROW(Tokenizer({.backtrace_depth = 3, .tree_code_dim = 5}),
               util::CheckError);
  EXPECT_THROW(Tokenizer({.backtrace_depth = 3, .tree_code_dim = 8,
                          .max_seq_len = 4}),
               util::CheckError);
  EXPECT_THROW(Tokenizer({.backtrace_depth = 3, .tree_code_dim = 8,
                          .max_seq_len = 64, .generalize_leaves = true,
                          .pad_to = 128}),
               util::CheckError);  // pad_to > max_seq_len
}

}  // namespace
}  // namespace rebert::core
