// Crash-safety contract of the atomic writer: the destination path holds
// either the old bytes or the new bytes, never a torn mix, and abandoned
// writes (the kill -9 simulation) leave the destination untouched.
#include "persist/atomic_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <dirent.h>

#include "util/check.h"

namespace rebert::persist {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

/// Names in TempDir() containing `needle` — for asserting no temp litter.
std::vector<std::string> dir_entries_containing(const std::string& needle) {
  std::vector<std::string> hits;
  DIR* dir = ::opendir(::testing::TempDir().c_str());
  if (!dir) return hits;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.find(needle) != std::string::npos) hits.push_back(name);
  }
  ::closedir(dir);
  return hits;
}

TEST(AtomicFileTest, WriteCreatesExactContents) {
  const std::string path = temp_path("atomic_basic.bin");
  write_file_atomic(path, "plain text");
  EXPECT_EQ(read_file(path), "plain text");
  write_file_atomic(path, std::string_view("a\0b", 3));  // binary-safe
  EXPECT_EQ(read_file(path), std::string("a\0b", 3));
  std::remove(path.c_str());
}

TEST(AtomicFileTest, OverwriteReplacesAndLeavesNoTemp) {
  const std::string path = temp_path("atomic_overwrite.bin");
  write_file_atomic(path, "first version");
  write_file_atomic(path, "second");
  EXPECT_EQ(read_file(path), "second");
  EXPECT_EQ(dir_entries_containing("atomic_overwrite.bin.tmp").size(), 0u);
  std::remove(path.c_str());
}

TEST(AtomicFileTest, AbandonedWriterLeavesDestinationUntouched) {
  const std::string path = temp_path("atomic_abandon.bin");
  write_file_atomic(path, "durable");
  {
    // Simulates a crash mid-write: bytes staged, commit() never reached.
    AtomicFileWriter writer(path);
    writer.stream() << "half-written garbage";
    EXPECT_TRUE(file_exists(writer.temp_path()));
  }
  EXPECT_EQ(read_file(path), "durable");
  EXPECT_EQ(dir_entries_containing("atomic_abandon.bin.tmp").size(), 0u);
  std::remove(path.c_str());
}

TEST(AtomicFileTest, LeftoverTempFromKilledProcessIsIgnored) {
  // A kill -9 between write and rename leaves `<path>.tmp.<pid>.<n>`
  // behind. Nothing reads those: the destination stays authoritative and
  // later atomic writes still land.
  const std::string path = temp_path("atomic_leftover.bin");
  write_file_atomic(path, "good");
  {
    std::ofstream stale(path + ".tmp.99999.0", std::ios::binary);
    stale << "torn bytes from a dead process";
  }
  EXPECT_EQ(read_file(path), "good");
  write_file_atomic(path, "newer");
  EXPECT_EQ(read_file(path), "newer");
  std::remove(path.c_str());
  std::remove((path + ".tmp.99999.0").c_str());
}

TEST(AtomicFileTest, StagesNextToDestinationNotElsewhere) {
  // Same-directory staging is what makes rename() atomic; a temp file in
  // /tmp with a destination on another filesystem would copy, not rename.
  const std::string path = temp_path("atomic_dir.bin");
  AtomicFileWriter writer(path);
  EXPECT_EQ(writer.temp_path().rfind(path + ".tmp.", 0), 0u);
}

TEST(AtomicFileTest, MissingDirectoryReportsErrno) {
  const std::string path =
      temp_path("no_such_subdir") + "/deeper/target.bin";
  try {
    write_file_atomic(path, "bytes");
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("target.bin"), std::string::npos) << what;
    EXPECT_NE(what.find("errno"), std::string::npos) << what;
  }
}

TEST(AtomicFileTest, CommitTwiceRejected) {
  const std::string path = temp_path("atomic_twice.bin");
  AtomicFileWriter writer(path);
  writer.stream() << "once";
  writer.commit();
  EXPECT_THROW(writer.commit(), util::CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rebert::persist
