// RBPC snapshot format: round trips for both cache flavours, and the
// corruption suite — truncation, bad magic, bad checksum, version skew,
// trailing garbage all come back kCorrupt (graceful cold start), never an
// exception.
#include "persist/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "persist/cache_io.h"
#include "rebert/prediction_cache.h"

namespace rebert::persist {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<CacheRecord> sample_records() {
  return {{42, 0.75}, {7, 0.125}, {1ULL << 60, 1.0}, {0, 0.0}};
}

TEST(SnapshotTest, RoundTripSortsByKey) {
  const std::string path = temp_path("snap_roundtrip.rbpc");
  save_snapshot(sample_records(), path);
  const SnapshotLoadResult result = load_snapshot(path);
  ASSERT_TRUE(result.loaded()) << result.message;
  ASSERT_EQ(result.records.size(), 4u);
  EXPECT_EQ(result.records[0], (CacheRecord{0, 0.0}));
  EXPECT_EQ(result.records[1], (CacheRecord{7, 0.125}));
  EXPECT_EQ(result.records[2], (CacheRecord{42, 0.75}));
  EXPECT_EQ(result.records[3], (CacheRecord{1ULL << 60, 1.0}));
  std::remove(path.c_str());
}

TEST(SnapshotTest, EmptySnapshotRoundTrips) {
  const std::string path = temp_path("snap_empty.rbpc");
  save_snapshot({}, path);
  const SnapshotLoadResult result = load_snapshot(path);
  ASSERT_TRUE(result.loaded()) << result.message;
  EXPECT_TRUE(result.records.empty());
  std::remove(path.c_str());
}

TEST(SnapshotTest, DeterministicBytes) {
  // Same entries (any order) -> identical files. Snapshots can be diffed
  // and content-addressed.
  const std::string a = temp_path("snap_det_a.rbpc");
  const std::string b = temp_path("snap_det_b.rbpc");
  std::vector<CacheRecord> reversed = sample_records();
  std::reverse(reversed.begin(), reversed.end());
  save_snapshot(sample_records(), a);
  save_snapshot(reversed, b);
  EXPECT_EQ(read_file(a), read_file(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(SnapshotTest, MissingFileIsMissingNotCorrupt) {
  const SnapshotLoadResult result =
      load_snapshot(temp_path("snap_never_written.rbpc"));
  EXPECT_EQ(result.status, SnapshotLoadStatus::kMissing);
  EXPECT_TRUE(result.records.empty());
}

TEST(SnapshotTest, TruncatedFileRejected) {
  const std::string path = temp_path("snap_trunc.rbpc");
  save_snapshot(sample_records(), path);
  const std::string bytes = read_file(path);
  // Clip at every prefix length: any truncation point must reject cleanly.
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{9}, std::size_t{3}}) {
    write_file(path, bytes.substr(0, keep));
    const SnapshotLoadResult result = load_snapshot(path);
    EXPECT_EQ(result.status, SnapshotLoadStatus::kCorrupt)
        << "kept " << keep << " bytes";
    EXPECT_TRUE(result.records.empty());
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, BadMagicRejected) {
  const std::string path = temp_path("snap_magic.rbpc");
  save_snapshot(sample_records(), path);
  std::string bytes = read_file(path);
  bytes[0] = 'X';
  write_file(path, bytes);
  const SnapshotLoadResult result = load_snapshot(path);
  EXPECT_EQ(result.status, SnapshotLoadStatus::kCorrupt);
  EXPECT_NE(result.message.find("magic"), std::string::npos)
      << result.message;
  std::remove(path.c_str());
}

TEST(SnapshotTest, VersionSkewRejectedGracefully) {
  const std::string path = temp_path("snap_version.rbpc");
  save_snapshot(sample_records(), path);
  std::string bytes = read_file(path);
  bytes[4] = static_cast<char>(kSnapshotVersion + 7);  // u32 version field
  write_file(path, bytes);
  const SnapshotLoadResult result = load_snapshot(path);
  EXPECT_EQ(result.status, SnapshotLoadStatus::kCorrupt);
  EXPECT_NE(result.message.find("version"), std::string::npos)
      << result.message;
  std::remove(path.c_str());
}

TEST(SnapshotTest, FlippedRecordByteFailsChecksum) {
  const std::string path = temp_path("snap_checksum.rbpc");
  save_snapshot(sample_records(), path);
  std::string bytes = read_file(path);
  bytes[20] = static_cast<char>(bytes[20] ^ 0x40);  // inside record data
  write_file(path, bytes);
  const SnapshotLoadResult result = load_snapshot(path);
  EXPECT_EQ(result.status, SnapshotLoadStatus::kCorrupt);
  EXPECT_NE(result.message.find("checksum"), std::string::npos)
      << result.message;
  std::remove(path.c_str());
}

TEST(SnapshotTest, TrailingGarbageRejected) {
  const std::string path = temp_path("snap_trailing.rbpc");
  save_snapshot(sample_records(), path);
  write_file(path, read_file(path) + "extra");
  EXPECT_EQ(load_snapshot(path).status, SnapshotLoadStatus::kCorrupt);
  std::remove(path.c_str());
}

TEST(SnapshotTest, HugeCorruptCountRejectedWithoutAllocating) {
  // A flipped count field must be caught by size arithmetic, not by
  // attempting a multi-terabyte reserve.
  const std::string path = temp_path("snap_count.rbpc");
  save_snapshot(sample_records(), path);
  std::string bytes = read_file(path);
  bytes[15] = static_cast<char>(0x7f);  // high byte of the u64 count
  write_file(path, bytes);
  const SnapshotLoadResult result = load_snapshot(path);
  EXPECT_EQ(result.status, SnapshotLoadStatus::kCorrupt);
  EXPECT_NE(result.message.find("truncated"), std::string::npos)
      << result.message;
  std::remove(path.c_str());
}

TEST(CacheIoTest, PredictionCacheRoundTrip) {
  const std::string path = temp_path("cache_serial.rbpc");
  core::PredictionCache cache;
  cache.insert(11, 0.5);
  cache.insert(22, 0.25);
  save_cache(cache, path);

  core::PredictionCache warmed;
  EXPECT_EQ(load_cache(&warmed, path), 2u);
  double score = 0.0;
  EXPECT_TRUE(warmed.lookup(11, &score));
  EXPECT_EQ(score, 0.5);
  EXPECT_TRUE(warmed.lookup(22, &score));
  EXPECT_EQ(score, 0.25);
  std::remove(path.c_str());
}

TEST(CacheIoTest, ShardAgnosticAcrossShardCountsAndFlavours) {
  const std::string path = temp_path("cache_shards.rbpc");
  core::ShardedPredictionCache wide(64);
  for (std::uint64_t k = 0; k < 100; ++k)
    wide.insert(k * 0x9e3779b97f4a7c15ULL, static_cast<double>(k) / 100.0);
  save_cache(wide, path);

  core::ShardedPredictionCache narrow(4);
  EXPECT_EQ(load_cache(&narrow, path), 100u);
  core::PredictionCache serial;
  EXPECT_EQ(load_cache(&serial, path), 100u);
  for (std::uint64_t k = 0; k < 100; ++k) {
    double a = -1.0, b = -1.0;
    ASSERT_TRUE(narrow.lookup(k * 0x9e3779b97f4a7c15ULL, &a));
    ASSERT_TRUE(serial.lookup(k * 0x9e3779b97f4a7c15ULL, &b));
    EXPECT_EQ(a, static_cast<double>(k) / 100.0);
    EXPECT_EQ(a, b);
  }
  std::remove(path.c_str());
}

TEST(CacheIoTest, ImportKeepsExistingEntries) {
  core::ShardedPredictionCache cache(4);
  cache.insert(5, 0.9);
  const std::size_t inserted = cache.import_entries({{5, 0.1}, {6, 0.2}});
  EXPECT_EQ(inserted, 1u);  // key 5 already present, kept
  double score = 0.0;
  ASSERT_TRUE(cache.lookup(5, &score));
  EXPECT_EQ(score, 0.9);
}

TEST(CacheIoTest, CorruptFileWarmsNothingAndDoesNotThrow) {
  const std::string path = temp_path("cache_corrupt.rbpc");
  write_file(path, "definitely not an RBPC snapshot");
  core::ShardedPredictionCache cache;
  EXPECT_EQ(load_cache(&cache, path), 0u);
  EXPECT_EQ(cache.size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rebert::persist
