// RBPC v2 mmap-snapshot corruption matrix: a mapped artifact is validated
// — bounds, magic, version, stride, checksum, key order — before a record
// is served, and every defect comes back kCorrupt with a diagnosis, never
// a throw or a wrong answer. Plus the warm-start contract: a v2 file
// attaches as a zero-copy tier, everything else falls back or starts cold.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "persist/cache_io.h"
#include "persist/mmap_snapshot.h"
#include "persist/snapshot.h"
#include "rebert/prediction_cache.h"

namespace rebert::persist {
namespace {

std::vector<CacheRecord> sample_records() {
  return {{5, 0.5}, {1, 0.1}, {9, 0.9}, {3, 0.3}};  // save sorts
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class MmapSnapshotTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  // Per-test file name: the suite runs under `ctest -j`, where every test
  // is its own process and a shared name races (one test's TearDown
  // deletes the file another test just saved).
  const std::string path_ =
      temp_path(std::string("rebert_mmap_snapshot_") +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".rbpc");
};

TEST_F(MmapSnapshotTest, RoundTripSortsAndServesLookups) {
  save_snapshot_v2(sample_records(), path_);
  const MmapSnapshot::OpenResult opened = MmapSnapshot::open(path_);
  ASSERT_TRUE(opened.loaded()) << opened.message;
  ASSERT_EQ(opened.snapshot->count(), 4u);
  // record() walks the table in sorted key order.
  EXPECT_EQ(opened.snapshot->record(0).first, 1u);
  EXPECT_EQ(opened.snapshot->record(3).first, 9u);

  double score = 0.0;
  EXPECT_TRUE(opened.snapshot->lookup(3, &score));
  EXPECT_DOUBLE_EQ(score, 0.3);
  EXPECT_TRUE(opened.snapshot->lookup(9, &score));
  EXPECT_DOUBLE_EQ(score, 0.9);
  EXPECT_FALSE(opened.snapshot->lookup(4, &score));
  EXPECT_FALSE(opened.snapshot->lookup(0, &score));
  EXPECT_FALSE(opened.snapshot->lookup(10, &score));
}

TEST_F(MmapSnapshotTest, DuplicateKeysCollapseToOneRecord) {
  save_snapshot_v2({{7, 0.7}, {7, 0.8}, {2, 0.2}}, path_);
  const MmapSnapshot::OpenResult opened = MmapSnapshot::open(path_);
  ASSERT_TRUE(opened.loaded()) << opened.message;
  EXPECT_EQ(opened.snapshot->count(), 2u);  // strict order preserved
}

TEST_F(MmapSnapshotTest, EmptySnapshotIsValid) {
  save_snapshot_v2({}, path_);
  const MmapSnapshot::OpenResult opened = MmapSnapshot::open(path_);
  ASSERT_TRUE(opened.loaded()) << opened.message;
  EXPECT_EQ(opened.snapshot->count(), 0u);
  double score = 0.0;
  EXPECT_FALSE(opened.snapshot->lookup(1, &score));
}

TEST_F(MmapSnapshotTest, MissingFileIsMissingNotCorrupt) {
  const MmapSnapshot::OpenResult opened =
      MmapSnapshot::open(temp_path("rebert_no_such.rbpc"));
  EXPECT_EQ(opened.status, SnapshotLoadStatus::kMissing);
}

TEST_F(MmapSnapshotTest, TruncatedFileRejected) {
  save_snapshot_v2(sample_records(), path_);
  const std::string bytes = slurp(path_);
  // Clip mid-table, and separately mid-header.
  spit(path_, bytes.substr(0, bytes.size() - 7));
  EXPECT_EQ(MmapSnapshot::open(path_).status, SnapshotLoadStatus::kCorrupt);
  spit(path_, bytes.substr(0, kSnapshotV2HeaderBytes / 2));
  const MmapSnapshot::OpenResult opened = MmapSnapshot::open(path_);
  EXPECT_EQ(opened.status, SnapshotLoadStatus::kCorrupt);
  EXPECT_NE(opened.message.find("too small"), std::string::npos)
      << opened.message;
}

TEST_F(MmapSnapshotTest, TrailingGarbageRejected) {
  save_snapshot_v2(sample_records(), path_);
  spit(path_, slurp(path_) + "junk");
  const MmapSnapshot::OpenResult opened = MmapSnapshot::open(path_);
  EXPECT_EQ(opened.status, SnapshotLoadStatus::kCorrupt);
  EXPECT_NE(opened.message.find("trailing garbage"), std::string::npos)
      << opened.message;
}

TEST_F(MmapSnapshotTest, BadMagicRejected) {
  save_snapshot_v2(sample_records(), path_);
  std::string bytes = slurp(path_);
  bytes[0] = 'X';
  spit(path_, bytes);
  const MmapSnapshot::OpenResult opened = MmapSnapshot::open(path_);
  EXPECT_EQ(opened.status, SnapshotLoadStatus::kCorrupt);
  EXPECT_NE(opened.message.find("magic"), std::string::npos)
      << opened.message;
}

TEST_F(MmapSnapshotTest, BadStrideRejected) {
  save_snapshot_v2(sample_records(), path_);
  std::string bytes = slurp(path_);
  const std::uint64_t skewed = 24;  // u64 stride at bytes 16..23
  std::memcpy(&bytes[16], &skewed, sizeof(skewed));
  spit(path_, bytes);
  const MmapSnapshot::OpenResult opened = MmapSnapshot::open(path_);
  EXPECT_EQ(opened.status, SnapshotLoadStatus::kCorrupt);
  EXPECT_NE(opened.message.find("stride"), std::string::npos)
      << opened.message;
}

TEST_F(MmapSnapshotTest, ChecksumFlipRejected) {
  save_snapshot_v2(sample_records(), path_);
  std::string bytes = slurp(path_);
  bytes[kSnapshotV2HeaderBytes + 3] ^= 0x10;  // one bit in the table
  spit(path_, bytes);
  const MmapSnapshot::OpenResult opened = MmapSnapshot::open(path_);
  EXPECT_EQ(opened.status, SnapshotLoadStatus::kCorrupt);
  EXPECT_NE(opened.message.find("checksum"), std::string::npos)
      << opened.message;
}

TEST_F(MmapSnapshotTest, HostileCountRejectedByArithmetic) {
  // A count that multiplies past the file size (or past u64) must be
  // refused from the header alone, never allocate or scan.
  save_snapshot_v2(sample_records(), path_);
  std::string bytes = slurp(path_);
  const std::uint64_t huge = ~0ULL / 2;  // u64 count at bytes 8..15
  std::memcpy(&bytes[8], &huge, sizeof(huge));
  spit(path_, bytes);
  EXPECT_EQ(MmapSnapshot::open(path_).status, SnapshotLoadStatus::kCorrupt);
}

TEST_F(MmapSnapshotTest, OutOfOrderKeysRejected) {
  // Hand-build a checksummed file whose keys are unsorted: the checksum
  // passes, so only the order validator can catch it.
  save_snapshot_v2({{1, 0.1}, {2, 0.2}}, path_);
  std::string bytes = slurp(path_);
  std::string table = bytes.substr(kSnapshotV2HeaderBytes);
  std::swap_ranges(table.begin(), table.begin() + kSnapshotV2Stride,
                   table.begin() + kSnapshotV2Stride);
  const std::uint64_t checksum = fnv1a_words(table.data(), table.size());
  std::memcpy(&bytes[24], &checksum, sizeof(checksum));
  bytes.replace(kSnapshotV2HeaderBytes, table.size(), table);
  spit(path_, bytes);
  const MmapSnapshot::OpenResult opened = MmapSnapshot::open(path_);
  EXPECT_EQ(opened.status, SnapshotLoadStatus::kCorrupt);
  EXPECT_NE(opened.message.find("out of order"), std::string::npos)
      << opened.message;
}

TEST_F(MmapSnapshotTest, LoadSnapshotReadsV2Transparently) {
  // The stream-shaped API (load_snapshot) must materialize a v2 file
  // identically to how it reads v1 — one format choice, two read shapes.
  save_snapshot_v2(sample_records(), path_);
  const SnapshotLoadResult via_stream = load_snapshot(path_);
  ASSERT_EQ(via_stream.status, SnapshotLoadStatus::kLoaded)
      << via_stream.message;
  ASSERT_EQ(via_stream.records.size(), 4u);
  EXPECT_EQ(via_stream.records[0].first, 1u);
  EXPECT_DOUBLE_EQ(via_stream.records[3].second, 0.9);
}

TEST_F(MmapSnapshotTest, WarmStartAttachesV2AsZeroCopyTier) {
  save_snapshot_v2(sample_records(), path_);
  core::ShardedPredictionCache cache;
  EXPECT_EQ(warm_start_cache(&cache, path_), 4u);
  ASSERT_NE(cache.warm_tier(), nullptr);  // mapped, not materialized
  EXPECT_EQ(cache.warm_tier()->size(), 4u);
  double score = 0.0;
  EXPECT_TRUE(cache.lookup(5, &score));
  EXPECT_DOUBLE_EQ(score, 0.5);
  // A snapshot exported from the warm cache keeps the tier's records.
  EXPECT_EQ(cache.export_entries().size(), 4u);
}

TEST_F(MmapSnapshotTest, WarmStartFallsBackToStreamParseForV1) {
  save_snapshot(sample_records(), path_);
  core::ShardedPredictionCache cache;
  EXPECT_EQ(warm_start_cache(&cache, path_), 4u);
  EXPECT_EQ(cache.warm_tier(), nullptr);  // materialized the v1 records
  double score = 0.0;
  EXPECT_TRUE(cache.lookup(9, &score));
  EXPECT_DOUBLE_EQ(score, 0.9);
}

TEST_F(MmapSnapshotTest, WarmStartStartsColdOnCorruptFile) {
  save_snapshot_v2(sample_records(), path_);
  std::string bytes = slurp(path_);
  bytes[kSnapshotV2HeaderBytes] ^= 0xFF;
  spit(path_, bytes);
  core::ShardedPredictionCache cache;
  EXPECT_EQ(warm_start_cache(&cache, path_), 0u);  // no throw, just cold
  EXPECT_EQ(cache.warm_tier(), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace rebert::persist
