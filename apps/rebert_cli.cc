// rebert_cli — command-line driver for the whole toolkit.
//
// Subcommands (run `rebert_cli` with no arguments for the same list — the
// usage screen and the dispatcher are generated from one table, so they
// cannot drift apart):
//
//   rebert_cli gen         --bench b05 --out c.bench [--scale 1.0]
//                          [--words c.words]
//   rebert_cli stats       --in c.bench
//   rebert_cli convert     --in c.bench --out c.v
//   rebert_cli corrupt     --in c.bench --out d.bench [--r-index 0.5]
//                          [--seed 7]
//   rebert_cli optimize    --in c.bench --out e.bench
//   rebert_cli train       --out model.bin [--benchmarks b03,b08,...]
//                          [--scale 0.25] [--epochs 3] [--max-samples 250]
//   rebert_cli recover     --in c.bench [--model model.bin] [--threads N]
//                          [--words truth] [--structural] [--report]
//                          [--cache-file cache.rbpc]
//   rebert_cli analyze     --in c.bench --bits q0,q1,q2
//   rebert_cli dot         --in c.bench --out c.dot [--words truth]
//   rebert_cli lint        --in c.bench [--words truth] [--format text|csv]
//                          [--out report.csv] [--fail-on-warn]
//   rebert_cli serve       [--socket /tmp/rebert.sock] [--threads N]
//                          [--batch 16] [--model model.bin]
//                          [--manifest models.manifest] [--scale 0.25]
//                          [--cache-file cache.rbpc] [--snapshot-every 64]
//                          [--max-inflight 0] [--max-inflight-per-bench 0]
//                          [--retry-after-ms 50] [--deadline-ms 0]
//                          [--max-connections 64] [--listen-backlog 0]
//                          [--dispatch-threads 0]
//   rebert_cli route       --socket /tmp/router.sock [--backends 2 |
//                          --backend-sockets a.sock[@w],b.sock[@w]]
//                          [--backend-weights 1,2] [--vnodes 64]
//                          [--replicas 2] [--mirror-queue-depth 256]
//                          [--queue-depth 0] [--queue-timeout-ms 250]
//                          [--probe-interval-ms 200]
//                          [--restart-jitter-pct 15] + serve flags
//                          passed through to spawned backends
//   rebert_cli call        --socket /tmp/router.sock [--retry] <request...>
//   rebert_cli score       [--bench b07] [--pairs 200 | --bits a,b]
//                          [--seed 1] [--cache-file cache.rbpc] [...]
//   rebert_cli bench-serve [--bench b07] [--requests 200] [--clients 2]
//                          [--threads N] [--batch 16] [--scale 0.25]
//
// File formats are detected by extension: .v / .verilog parse as structural
// Verilog, everything else as ISCAS-89 .bench.
//
// `lint` reports typed diagnostics (NL001..., see src/nl/lint.h) instead of
// stopping at the first defect; exit status is 0 when no error-severity
// diagnostic fired (add --fail-on-warn to also fail on warnings).
//
// `serve` speaks the newline protocol of src/serve/protocol.h over stdio
// (default) or a Unix socket; `bench-serve` drives the same engine with an
// in-process load generator and reports p50/p95 latency and QPS.
//
// Overload safety (see DESIGN.md): --max-inflight bounds concurrently
// admitted score/recover requests (excess answered `err overloaded
// retry_after_ms=<n>`), --deadline-ms imposes a default per-request
// deadline (`err deadline_exceeded`), --max-connections caps live socket
// connections in the reactor's epoll set (excess connections get the
// overload advisory in their own encoding and are closed), --dispatch-
// threads sizes the model-work pool behind the reactor (0 = default 16),
// --listen-backlog overrides the SOMAXCONN accept queue (0 = SOMAXCONN),
// and the REBERT_FAULTS environment variable
// (site:prob:seed[:delay_ms],...) arms deterministic fault injection for
// chaos drills — a model-path fault degrades `recover` to the structural
// baseline rather than failing it.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuitgen/suite.h"
#include "kernels/backend.h"
#include "metrics/clustering.h"
#include "nl/corruption.h"
#include "nl/decompose.h"
#include "nl/export_dot.h"
#include "nl/lint.h"
#include "nl/opt.h"
#include "nl/parser.h"
#include "nl/verilog.h"
#include "persist/cache_io.h"
#include "rebert/pipeline.h"
#include "rebert/prediction_cache.h"
#include "rebert/report.h"
#include "rebert/word_typing.h"
#include "router/router.h"
#include "router/supervisor.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/serve_loop.h"
#include "structural/matching.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/string_utils.h"
#include "util/timer.h"

using namespace rebert;

namespace {

bool is_verilog_path(const std::string& path) {
  return util::ends_with(path, ".v") || util::ends_with(path, ".verilog");
}

nl::Netlist read_netlist(const std::string& path) {
  return is_verilog_path(path) ? nl::parse_verilog_file(path)
                               : nl::parse_bench_file(path);
}

void write_netlist(const nl::Netlist& netlist, const std::string& path) {
  if (is_verilog_path(path))
    nl::write_verilog_file(netlist, path);
  else
    nl::write_bench_file(netlist, path);
}

std::string require_flag(const util::FlagParser& flags,
                         const std::string& name) {
  const std::string value = flags.get(name, "");
  if (value.empty()) {
    std::fprintf(stderr, "missing required flag --%s\n", name.c_str());
    std::exit(2);
  }
  return value;
}

core::ExperimentOptions experiment_options(const util::FlagParser& flags) {
  core::ExperimentOptions options;
  options.pipeline.tokenizer.backtrace_depth = flags.get_int("depth", 6);
  options.pipeline.tokenizer.tree_code_dim = 16;
  options.pipeline.tokenizer.max_seq_len = 256;
  options.dataset.max_samples_per_circuit =
      flags.get_int("max-samples", 250);
  options.training.epochs = flags.get_int("epochs", 3);
  options.training.verbose = flags.get_bool("verbose", false);
  return options;
}

serve::EngineOptions engine_options(const util::FlagParser& flags) {
  serve::EngineOptions options;
  options.num_threads = flags.get_int("threads", 0);
  options.batch_size = flags.get_int("batch", 16);
  options.suite_scale = flags.get_double("scale", 0.25);
  options.model_path = flags.get("model", "");
  options.manifest_path = flags.get("manifest", "");
  options.max_inflight = flags.get_int("max-inflight", 0);
  options.max_inflight_per_bench =
      flags.get_int("max-inflight-per-bench", 0);
  options.retry_after_ms = flags.get_int("retry-after-ms", 50);
  options.experiment = experiment_options(flags);
  return options;
}

int cmd_gen(const util::FlagParser& flags) {
  const std::string bench = require_flag(flags, "bench");
  const std::string out = require_flag(flags, "out");
  const double scale = flags.get_double("scale", 1.0);
  gen::GeneratedCircuit circuit = gen::generate_benchmark(bench, scale);
  write_netlist(circuit.netlist, out);
  std::printf("wrote %s (%d gates, %zu FFs, %d words)\n", out.c_str(),
              circuit.netlist.stats().num_comb_gates,
              circuit.netlist.dffs().size(), circuit.words.num_words());
  const std::string words_path = flags.get("words", "");
  if (!words_path.empty()) {
    circuit.words.save(words_path);
    std::printf("wrote ground truth to %s\n", words_path.c_str());
  }
  return 0;
}

int cmd_stats(const util::FlagParser& flags) {
  const nl::Netlist netlist = read_netlist(require_flag(flags, "in"));
  const nl::NetlistStats stats = netlist.stats();
  std::printf("netlist   : %s\n", netlist.name().c_str());
  std::printf("inputs    : %d\n", stats.num_inputs);
  std::printf("outputs   : %d\n", stats.num_outputs);
  std::printf("flip-flops: %d\n", stats.num_dffs);
  std::printf("gates     : %d (max fanin %d)\n", stats.num_comb_gates,
              stats.max_fanin);
  const auto depths = netlist.logic_depths();
  int max_depth = 0;
  for (int d : depths) max_depth = std::max(max_depth, d);
  std::printf("depth     : %d levels\n", max_depth);
  return 0;
}

int cmd_convert(const util::FlagParser& flags) {
  const nl::Netlist netlist = read_netlist(require_flag(flags, "in"));
  const std::string out = require_flag(flags, "out");
  write_netlist(netlist, out);
  std::printf("converted to %s\n", out.c_str());
  return 0;
}

int cmd_corrupt(const util::FlagParser& flags) {
  const nl::Netlist netlist = read_netlist(require_flag(flags, "in"));
  nl::CorruptionOptions options;
  options.r_index = flags.get_double("r-index", 0.5);
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  nl::CorruptionReport report;
  const nl::Netlist corrupted =
      nl::corrupt_netlist(netlist, options, &report);
  write_netlist(corrupted, require_flag(flags, "out"));
  std::printf("replaced %d/%d eligible gates (+%d helpers)\n",
              report.replaced_gates, report.eligible_gates,
              report.added_gates);
  return 0;
}

int cmd_optimize(const util::FlagParser& flags) {
  const nl::Netlist netlist = read_netlist(require_flag(flags, "in"));
  nl::OptReport report;
  const nl::Netlist optimized = nl::optimize_netlist(netlist, {}, &report);
  write_netlist(optimized, require_flag(flags, "out"));
  std::printf(
      "gates %d -> %d (folded %d, buffers %d, merged %d, dead %d)\n",
      report.gates_before, report.gates_after, report.folded_gates,
      report.collapsed_buffers, report.merged_gates, report.dead_gates);
  return 0;
}

int cmd_train(const util::FlagParser& flags) {
  const std::string out = require_flag(flags, "out");
  const double scale = flags.get_double("scale", 0.25);
  const std::string list =
      flags.get("benchmarks", "b03,b04,b05,b07,b08,b11,b12,b13");
  core::ExperimentOptions options = experiment_options(flags);

  std::vector<core::CircuitData> circuits;
  for (const std::string& piece : util::split(list, ',')) {
    const std::string name = util::trim(piece);
    if (name.empty()) continue;
    gen::GeneratedCircuit generated = gen::generate_benchmark(name, scale);
    circuits.push_back(core::CircuitData{name, std::move(generated.netlist),
                                         std::move(generated.words)});
  }
  std::vector<const core::CircuitData*> train_set;
  for (const auto& circuit : circuits) train_set.push_back(&circuit);
  std::printf("training on %zu circuits (scale %.2f)...\n", circuits.size(),
              scale);
  const auto model = core::train_rebert(train_set, options);
  model->save(out);
  std::printf("saved model (%lld parameters) to %s\n",
              static_cast<long long>(model->num_parameters()), out.c_str());
  return 0;
}

int cmd_recover(const util::FlagParser& flags) {
  nl::Netlist netlist = read_netlist(require_flag(flags, "in"));
  if (!nl::is_2input(netlist)) netlist = nl::decompose_to_2input(netlist);
  const std::vector<nl::Bit> bits = nl::extract_bits(netlist);
  if (bits.empty()) {
    std::fprintf(stderr, "netlist has no flip-flops\n");
    return 1;
  }
  // 1 = serial (default), 0 = REBERT_THREADS / hardware, n = exactly n.
  // Recovered labels are bit-identical at any value.
  const int threads = flags.get_int("threads", 1);
  const std::string cache_file = flags.get("cache-file", "");

  std::vector<int> labels;
  if (flags.get_bool("structural", false)) {
    structural::MatchingOptions match_options;
    match_options.num_threads = threads;
    const structural::StructuralResult result =
        structural::recover_words_structural(netlist, match_options);
    labels = result.labels;
    std::printf("structural matching: %d words in %.3fs\n",
                result.num_words, result.total_seconds);
  } else {
    core::ExperimentOptions options = experiment_options(flags);
    options.pipeline.num_threads = threads;
    // Cross-run prediction reuse: warm the cache from a snapshot before
    // scoring and write it back after (lossless — labels are identical
    // warm or cold, only wall-clock changes).
    core::ShardedPredictionCache cache;
    if (!cache_file.empty()) {
      const std::size_t warmed = persist::load_cache(&cache, cache_file);
      std::printf("cache: warm-started %zu entries from %s\n", warmed,
                  cache_file.c_str());
      options.pipeline.external_cache = &cache;
    }
    bert::BertPairClassifier model(core::make_model_config(options));
    const std::string model_path = flags.get("model", "");
    if (!model_path.empty()) {
      model.load(model_path);
    } else {
      std::fprintf(stderr,
                   "warning: no --model given; using untrained weights "
                   "(results will be poor). train one with "
                   "'rebert_cli train --out model.bin'.\n");
    }
    const core::RecoveryArtifacts artifacts =
        core::recover_words_detailed(netlist, model, options.pipeline);
    labels = artifacts.result.labels;
    std::printf("ReBERT: %d words in %.3fs (%.0f%% filtered, %.0f%% cache "
                "hits)\n",
                artifacts.result.num_words,
                artifacts.result.total_seconds,
                artifacts.result.filtered_fraction * 100.0,
                artifacts.result.cache_hit_rate * 100.0);
    if (!cache_file.empty()) {
      persist::save_cache(cache, cache_file);
      std::printf("cache: saved %zu entries to %s\n", cache.size(),
                  cache_file.c_str());
    }
    if (flags.get_bool("report", false) || flags.get_bool("json", false)) {
      const core::WordReport report = core::make_word_report(
          artifacts.bits, artifacts.scores, artifacts.result.labels);
      if (flags.get_bool("json", false))
        std::printf("%s\n", report.to_json().c_str());
      else
        std::printf("%s", report.to_string().c_str());
    }
  }

  const nl::WordMap predicted = nl::WordMap::from_labels(bits, labels);
  if (!flags.get_bool("report", false)) {
    for (const auto& [word, members] : predicted.words()) {
      if (members.size() < 2) continue;
      std::printf("  %s:", word.c_str());
      for (const std::string& bit : members) std::printf(" %s", bit.c_str());
      std::printf("\n");
    }
  }

  const std::string truth_path = flags.get("words", "");
  if (!truth_path.empty()) {
    const nl::WordMap truth = nl::WordMap::load(truth_path);
    const double ari = metrics::adjusted_rand_index(truth.labels_for(bits),
                                                    labels);
    std::printf("ARI vs %s: %.3f\n", truth_path.c_str(), ari);
  }
  return 0;
}

int cmd_analyze(const util::FlagParser& flags) {
  const nl::Netlist netlist = read_netlist(require_flag(flags, "in"));
  const std::string bits = require_flag(flags, "bits");
  std::vector<std::string> names;
  for (const std::string& piece : util::split(bits, ','))
    if (!util::trim(piece).empty()) names.push_back(util::trim(piece));
  const core::WordAnalysis analysis = core::analyze_word(netlist, names);
  std::printf("kind       : %s\n", core::word_kind_name(analysis.kind));
  std::printf("confidence : %.3f\n", analysis.confidence);
  std::printf("activity   : %.3f\n", analysis.activity);
  std::printf("bit order  : %s\n",
              util::join(analysis.ordered_bits, " ").c_str());
  return 0;
}

int cmd_dot(const util::FlagParser& flags) {
  const nl::Netlist netlist = read_netlist(require_flag(flags, "in"));
  nl::WordMap words;
  const std::string words_path = flags.get("words", "");
  if (!words_path.empty()) words = nl::WordMap::load(words_path);
  const std::string out_path = require_flag(flags, "out");
  std::ofstream out(out_path);
  if (!out.good()) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  nl::write_dot(netlist, words, out);
  std::printf("wrote %s (render with: dot -Tsvg %s -o graph.svg)\n",
              out_path.c_str(), out_path.c_str());
  return 0;
}

int cmd_lint(const util::FlagParser& flags) {
  const std::string in_path = require_flag(flags, "in");

  nl::LintOptions options;
  nl::WordMap words;
  const std::string words_path = flags.get("words", "");
  if (!words_path.empty()) {
    words = nl::WordMap::load(words_path);
    options.words = &words;
  }

  nl::LintReport report;
  if (is_verilog_path(in_path)) {
    // Verilog has no tolerant source-level pass; parse (reporting a parse
    // failure as a diagnostic) and lint the graph.
    try {
      const nl::Netlist netlist = nl::parse_verilog_file(in_path);
      report = nl::lint_netlist(netlist, options);
    } catch (const std::exception& e) {
      nl::LintDiagnostic d;
      d.code = nl::LintCode::kParseFailure;
      d.message = e.what();
      report.netlist_name = in_path;
      report.add(std::move(d));
    }
  } else {
    report = nl::lint_bench_file(in_path, options);
  }

  const std::string format = flags.get("format", "text");
  std::string rendered;
  if (format == "csv") {
    rendered = report.to_csv();
  } else if (format == "text") {
    rendered = report.to_text();
  } else {
    std::fprintf(stderr, "unknown --format '%s' (text|csv)\n",
                 format.c_str());
    return 2;
  }

  const std::string out_path = flags.get("out", "");
  if (out_path.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out.good()) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << rendered;
    std::printf("wrote %s (%zu diagnostic(s))\n", out_path.c_str(),
                report.diagnostics.size());
  }

  const bool failed = report.num_errors() > 0 ||
                      (flags.get_bool("fail-on-warn", false) &&
                       report.num_warnings() > 0);
  return failed ? 1 : 0;
}

int cmd_serve(const util::FlagParser& flags) {
  serve::InferenceEngine engine(engine_options(flags));
  serve::ServeLoop loop(engine);
  loop.set_default_deadline_ms(flags.get_int("deadline-ms", 0));
  loop.set_max_connections(flags.get_int("max-connections", 64));
  // 0 = the built-in defaults: SOMAXCONN backlog, 16 dispatch threads.
  loop.set_listen_backlog(flags.get_int("listen-backlog", 0));
  loop.set_dispatch_threads(flags.get_int("dispatch-threads", 0));
  // --binary false turns the wire protocol away at negotiation; the text
  // protocol is always served.
  loop.set_accept_binary(flags.get_bool("binary", true));
  const std::string cache_file = flags.get("cache-file", "");
  if (!cache_file.empty()) {
    engine.load_cache(cache_file);  // cold start on missing/corrupt
    loop.enable_snapshots(cache_file, flags.get_int("snapshot-every", 64));
  }
  const std::string socket_path = flags.get("socket", "");
  if (!socket_path.empty()) {
    loop.run_unix_socket(socket_path);  // blocks until the process dies
    return 0;
  }
  std::fprintf(stderr,
               "rebert serve: reading requests from stdin (try: help)\n");
  const std::size_t answered = loop.run(std::cin, std::cout);
  std::fprintf(stderr, "rebert serve: answered %zu request(s)\n", answered);
  return 0;
}

// route: signal plumbing so Ctrl-C / SIGTERM unwinds run_unix_socket and
// the supervisor destructor reaps the backend children instead of
// orphaning them.
router::Router* g_route_router = nullptr;

void route_signal_handler(int) {
  if (g_route_router != nullptr) g_route_router->stop();
}

int cmd_route(const util::FlagParser& flags) {
  const std::string socket_path = require_flag(flags, "socket");

  // Backend set: either externally managed daemons (--backend-sockets) or
  // N supervised children spawned from this very binary (--backends).
  // Each backend carries a ring weight: externally via the manifest syntax
  // `path@weight`, supervised via the --backend-weights comma list
  // (index-matched, missing entries default to 1).
  std::vector<std::string> backend_sockets;
  std::vector<double> backend_weights;
  const std::string external = flags.get("backend-sockets", "");
  router::SupervisorOptions supervisor_options;
  supervisor_options.restart_jitter_pct =
      flags.get_int("restart-jitter-pct", 15);
  router::BackendSupervisor supervisor(supervisor_options);
  const bool supervised = external.empty();
  if (supervised) {
    const int count = std::max(1, flags.get_int("backends", 2));
    for (int i = 0; i < count; ++i)
      backend_sockets.push_back(socket_path + ".backend" +
                                std::to_string(i));
    // Children are `rebert_cli serve` with the serve-relevant flags
    // passed through; /proc/self/exe re-runs whatever binary we are.
    for (int i = 0; i < count; ++i) {
      std::vector<std::string> argv{
          "/proc/self/exe", "serve", "--socket", backend_sockets[
              static_cast<std::size_t>(i)]};
      const auto pass = [&](const char* flag) {
        const std::string value = flags.get(flag, "");
        if (!value.empty()) {
          argv.push_back(std::string("--") + flag);
          argv.push_back(value);
        }
      };
      pass("threads");
      pass("batch");
      pass("scale");
      pass("model");
      pass("manifest");
      pass("depth");
      pass("max-inflight");
      pass("max-inflight-per-bench");
      pass("retry-after-ms");
      pass("deadline-ms");
      pass("max-connections");
      pass("listen-backlog");
      pass("dispatch-threads");
      pass("kernels");
      pass("snapshot-every");
      // Per-backend snapshot files: each worker persists (and, after a
      // SIGKILL respawn, mmaps) its own shard of the cache — shared state
      // between workers would defeat the consistent-hash partitioning.
      const std::string cache_file = flags.get("cache-file", "");
      if (!cache_file.empty()) {
        argv.push_back("--cache-file");
        argv.push_back(cache_file + ".backend" + std::to_string(i));
      }
      supervisor.add("backend" + std::to_string(i), std::move(argv));
    }
    backend_weights.assign(backend_sockets.size(), 1.0);
    std::size_t at = 0;
    for (const std::string& piece :
         util::split(flags.get("backend-weights", ""), ',')) {
      if (at >= backend_weights.size()) break;
      const std::string text = util::trim(piece);
      if (!text.empty()) {
        char* end = nullptr;
        const double weight = std::strtod(text.c_str(), &end);
        if (end == nullptr || *end != '\0' || !(weight > 0.0)) {
          std::fprintf(stderr, "--backend-weights: bad weight '%s'\n",
                       text.c_str());
          return 2;
        }
        backend_weights[at] = weight;
      }
      ++at;
    }
    supervisor.start();
  } else {
    for (const std::string& piece : util::split(external, ',')) {
      std::string entry = util::trim(piece);
      if (entry.empty()) continue;
      double weight = 1.0;
      const std::size_t split_at = entry.rfind('@');
      if (split_at != std::string::npos) {
        const std::string text = entry.substr(split_at + 1);
        char* end = nullptr;
        weight = std::strtod(text.c_str(), &end);
        if (text.empty() || end == nullptr || *end != '\0' ||
            !(weight > 0.0)) {
          std::fprintf(stderr,
                       "--backend-sockets: bad weight in '%s' "
                       "(want path@weight)\n",
                       entry.c_str());
          return 2;
        }
        entry = util::trim(entry.substr(0, split_at));
      }
      backend_sockets.push_back(entry);
      backend_weights.push_back(weight);
    }
    if (backend_sockets.empty()) {
      std::fprintf(stderr, "--backend-sockets names no sockets\n");
      return 2;
    }
  }

  router::RouterOptions options;
  options.vnodes = flags.get_int("vnodes", 64);
  options.replicas = flags.get_int("replicas", 2);
  options.probe_interval_ms = flags.get_int("probe-interval-ms", 200);
  options.retry_after_ms = flags.get_int("retry-after-ms", 50);
  options.dispatch_threads = flags.get_int("dispatch-threads", 0);
  options.mirror_queue_depth = static_cast<std::size_t>(
      std::max(0, flags.get_int("mirror-queue-depth", 256)));
  options.queue_depth = flags.get_int("queue-depth", 0);
  options.queue_timeout_ms = flags.get_int("queue-timeout-ms", 250);
  router::Router router(options);
  for (std::size_t i = 0; i < backend_sockets.size(); ++i)
    router.add_backend("backend" + std::to_string(i), backend_sockets[i],
                       backend_weights[i]);
  if (supervised) {
    router.set_backend_info([&supervisor](const std::string& name) {
      std::ostringstream info;
      info << "pid=" << supervisor.pid_of(name)
           << " restarts=" << supervisor.restarts_of(name);
      return info.str();
    });
  }

  // Supervision ticks next to the serving loop: reap/respawn every 50 ms.
  std::atomic<bool> supervising{supervised};
  std::thread supervision;
  if (supervised) {
    supervision = std::thread([&] {
      while (supervising.load(std::memory_order_relaxed)) {
        supervisor.poll_once();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
  }

  g_route_router = &router;
  std::signal(SIGINT, route_signal_handler);
  std::signal(SIGTERM, route_signal_handler);
  std::printf("route: %zu backend(s) behind %s\n", backend_sockets.size(),
              socket_path.c_str());
  router.run_unix_socket(socket_path);  // blocks until signal / quit+stop

  g_route_router = nullptr;
  supervising.store(false, std::memory_order_relaxed);
  if (supervision.joinable()) supervision.join();
  supervisor.stop();
  return 0;
}

// call: one request over a Unix socket from the shell — what the smoke
// tests and operators use instead of depending on nc/socat.
int cmd_call(const util::FlagParser& flags) {
  const std::string socket_path = require_flag(flags, "socket");
  std::string line;
  // The pair-wise parser turns "--retry recover b03" into retry="recover":
  // the first request token swallowed as the flag's value. A value that is
  // not a boolean token is really the start of the request — restore it and
  // treat the flag as bare. Same treatment for --binary.
  const auto bare_flag = [&flags, &line](const char* name) {
    if (!flags.has(name)) return false;
    if (flags.get_bool(name, false)) return true;
    const std::string raw = flags.get(name, "");
    const std::string v = util::to_lower(raw);
    if (!v.empty() && v != "false" && v != "0" && v != "no" && v != "off") {
      if (!line.empty()) line += ' ';
      line += raw;
      return true;
    }
    return false;  // explicit --name false
  };
  const bool retry = bare_flag("retry");
  const bool binary = bare_flag("binary");
  const auto& positional = flags.positional();
  for (std::size_t i = 1; i < positional.size(); ++i) {
    if (!line.empty()) line += ' ';
    line += positional[i];
  }
  if (line.empty()) {
    std::fprintf(stderr, "call: no request given (try: call ... health)\n");
    return 2;
  }
  serve::ClientOptions client_options;
  client_options.binary = binary;
  serve::Client client(socket_path, client_options);
  if (!client.connect()) {
    std::fprintf(stderr, "call: cannot connect to %s%s\n",
                 socket_path.c_str(),
                 binary ? " (binary negotiation included)" : "");
    return 1;
  }
  const std::string response =
      retry ? client.request_with_retry(line) : client.request(line);
  std::printf("%s\n", response.c_str());
  return util::starts_with(response, "ok") ? 0 : 1;
}

// convert-snapshot: rewrite a prediction-cache snapshot between the v1
// stream layout and the v2 mmap layout. Every load path reads both, so
// this exists for operators pinning a fleet to one layout (v2 is what
// save_cache writes and what O(1) warm start maps).
int cmd_convert_snapshot(const util::FlagParser& flags) {
  const std::string in = require_flag(flags, "in");
  const std::string out = require_flag(flags, "out");
  const std::string to = util::to_lower(flags.get("to", "v2"));
  if (to != "v1" && to != "v2") {
    std::fprintf(stderr, "--to expects v1 or v2, got '%s'\n", to.c_str());
    return 2;
  }
  const persist::SnapshotLoadResult loaded = persist::load_snapshot(in);
  if (!loaded.loaded()) {
    std::fprintf(stderr, "convert-snapshot: cannot read %s: %s\n",
                 in.c_str(), loaded.message.c_str());
    return 1;
  }
  if (to == "v1")
    persist::save_snapshot(loaded.records, out);
  else
    persist::save_snapshot_v2(loaded.records, out);
  std::printf("convert-snapshot: %zu record(s) from %s to %s (%s)\n",
              loaded.records.size(), in.c_str(), out.c_str(), to.c_str());
  return 0;
}

// Scores a batch of bit pairs through the serving engine — either one
// explicit pair (--bits a,b) or a seeded random workload (--pairs N).
// With --cache-file the run warm-starts from a snapshot and writes one
// back, so repeated invocations hit the cache instead of the model; the
// printed scores checksum makes "bit-identical cold vs warm" checkable
// from the shell.
int cmd_score(const util::FlagParser& flags) {
  serve::InferenceEngine engine(engine_options(flags));
  const std::string bench = flags.get("bench", "b07");
  const std::string cache_file = flags.get("cache-file", "");
  std::size_t warmed = 0;
  if (!cache_file.empty()) warmed = engine.load_cache(cache_file);

  std::vector<std::pair<std::string, std::string>> pairs;
  const std::string bits = flags.get("bits", "");
  if (!bits.empty()) {
    std::vector<std::string> names;
    for (const std::string& piece : util::split(bits, ','))
      if (!util::trim(piece).empty()) names.push_back(util::trim(piece));
    if (names.size() != 2) {
      std::fprintf(stderr, "--bits expects exactly two names, got '%s'\n",
                   bits.c_str());
      return 2;
    }
    pairs.emplace_back(names[0], names[1]);
  } else {
    const int count = std::max(1, flags.get_int("pairs", 200));
    const std::vector<std::string> all = engine.bit_names(bench);
    const int n = static_cast<int>(all.size());
    util::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
    for (int i = 0; i < count; ++i)
      pairs.emplace_back(
          all[static_cast<std::size_t>(rng.uniform_int(0, n - 1))],
          all[static_cast<std::size_t>(rng.uniform_int(0, n - 1))]);
  }

  util::WallTimer timer;
  const std::vector<double> scores = engine.score_batch(bench, pairs);
  const double seconds = timer.seconds();

  // FNV-1a over the raw score bits: two runs scored the same workload
  // identically iff the checksums match.
  std::uint64_t checksum = 14695981039346656037ULL;
  for (double score : scores) {
    std::uint64_t raw;
    static_assert(sizeof(raw) == sizeof(score));
    std::memcpy(&raw, &score, sizeof(raw));
    for (int b = 0; b < 64; b += 8) {
      checksum ^= (raw >> b) & 0xff;
      checksum *= 1099511628211ULL;
    }
  }
  if (!bits.empty())
    std::printf("score %s %s %s = %s\n", bench.c_str(),
                pairs[0].first.c_str(), pairs[0].second.c_str(),
                util::format_double(scores[0], 6).c_str());

  const serve::EngineStats stats = engine.stats();
  std::printf("pairs           : %zu in %.3fs\n", scores.size(), seconds);
  std::printf("scores checksum : %016llx\n",
              static_cast<unsigned long long>(checksum));
  std::printf("cache           : %llu hit(s), %llu miss(es) (%.1f%% hit "
              "rate), %zu entries, %zu warm-loaded\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              100.0 * static_cast<double>(stats.cache_hits) /
                  static_cast<double>(
                      std::max<std::uint64_t>(1, stats.cache_hits +
                                                     stats.cache_misses)),
              stats.cache_entries, warmed);
  if (!cache_file.empty()) {
    engine.save_cache(cache_file);
    std::printf("cache           : saved %zu entries to %s\n",
                stats.cache_entries, cache_file.c_str());
  }
  return 0;
}

int cmd_bench_serve(const util::FlagParser& flags) {
  serve::InferenceEngine engine(engine_options(flags));
  serve::ServeLoop loop(engine);

  const std::string bench = flags.get("bench", "b07");
  const int total = std::max(1, flags.get_int("requests", 200));
  const int clients = std::max(1, flags.get_int("clients", 2));
  const int num_bits = engine.warm(bench);
  const std::vector<std::string> bits = engine.bit_names(bench);
  std::printf("bench-serve: %s (%d bits), %d requests, %d client(s), "
              "%d engine thread(s), batch %d\n",
              bench.c_str(), num_bits, total, clients, engine.threads(),
              engine.options().batch_size);

  std::atomic<int> next{0};
  std::atomic<int> errors{0};
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  util::WallTimer wall;
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      util::Rng rng(0x5e27eULL + static_cast<std::uint64_t>(c));
      std::vector<double>& mine = latencies[static_cast<std::size_t>(c)];
      while (next.fetch_add(1) < total) {
        const std::string& a =
            bits[static_cast<std::size_t>(rng.uniform_int(0, num_bits - 1))];
        const std::string& b =
            bits[static_cast<std::size_t>(rng.uniform_int(0, num_bits - 1))];
        const std::string line = "score " + bench + " " + a + " " + b;
        util::WallTimer timer;
        bool quit = false;
        const std::string response = loop.handle_line(line, &quit);
        mine.push_back(timer.seconds());
        if (!util::starts_with(response, "ok"))
          errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed = wall.seconds();

  std::vector<double> all;
  for (const std::vector<double>& client : latencies)
    all.insert(all.end(), client.begin(), client.end());
  std::sort(all.begin(), all.end());
  const auto percentile = [&all](double p) {
    const std::size_t index = std::min(
        all.size() - 1, static_cast<std::size_t>(p * all.size()));
    return all[index];
  };
  double sum = 0.0;
  for (double latency : all) sum += latency;

  if (errors.load() > 0)
    std::fprintf(stderr, "bench-serve: %d request(s) failed\n",
                 errors.load());
  std::printf("requests   : %zu\n", all.size());
  std::printf("wall       : %.3fs\n", elapsed);
  std::printf("qps        : %.1f\n",
              static_cast<double>(all.size()) / elapsed);
  std::printf("latency avg: %.3fms\n", 1000.0 * sum / all.size());
  std::printf("latency p50: %.3fms\n", 1000.0 * percentile(0.50));
  std::printf("latency p95: %.3fms\n", 1000.0 * percentile(0.95));
  return errors.load() > 0 ? 1 : 0;
}

// The one subcommand table: the usage screen and the dispatcher in main()
// are both generated from it, so adding a command here is the whole
// registration.
struct Subcommand {
  const char* name;
  const char* flags_help;
  int (*run)(const util::FlagParser&);
};

constexpr Subcommand kSubcommands[] = {
    {"gen", "--bench b05 --out c.bench [--scale 1.0] [--words c.words]",
     cmd_gen},
    {"stats", "--in c.bench", cmd_stats},
    {"convert", "--in c.bench --out c.v", cmd_convert},
    {"corrupt", "--in c.bench --out d.bench [--r-index 0.5] [--seed 7]",
     cmd_corrupt},
    {"optimize", "--in c.bench --out e.bench", cmd_optimize},
    {"train",
     "--out model.bin [--benchmarks b03,b08,...] [--scale 0.25] "
     "[--epochs 3] [--max-samples 250]",
     cmd_train},
    {"recover",
     "--in c.bench [--model model.bin] [--threads N] [--words truth] "
     "[--structural] [--report] [--json] [--cache-file cache.rbpc]",
     cmd_recover},
    {"analyze", "--in c.bench --bits q0,q1,q2", cmd_analyze},
    {"dot", "--in c.bench --out c.dot [--words truth]", cmd_dot},
    {"lint",
     "--in c.bench [--words truth] [--format text|csv] [--out report.csv] "
     "[--fail-on-warn]",
     cmd_lint},
    {"serve",
     "[--socket /tmp/rebert.sock] [--threads N] [--batch 16] "
     "[--model model.bin] [--manifest models.manifest] [--scale 0.25] "
     "[--cache-file cache.rbpc] [--snapshot-every 64] [--max-inflight 0] "
     "[--max-inflight-per-bench 0] [--retry-after-ms 50] "
     "[--deadline-ms 0] [--max-connections 64] [--listen-backlog 0] "
     "[--dispatch-threads 0] [--binary true|false]",
     cmd_serve},
    {"route",
     "--socket /tmp/router.sock [--backends 2 | --backend-sockets "
     "a[@w],b[@w]] [--backend-weights 1,2] [--replicas 2] "
     "[--mirror-queue-depth 256] [--queue-depth 0] [--queue-timeout-ms 250] "
     "[--vnodes 64] [--probe-interval-ms 200] [--restart-jitter-pct 15] "
     "[+ serve flags for spawned backends; --cache-file gives each backend "
     "<file>.backendN]",
     cmd_route},
    {"call",
     "--socket /tmp/router.sock [--retry] [--binary] <request tokens...>",
     cmd_call},
    {"convert-snapshot", "--in cache.rbpc --out cache2.rbpc [--to v2|v1]",
     cmd_convert_snapshot},
    {"score",
     "[--bench b07] [--pairs 200 | --bits a,b] [--seed 1] "
     "[--cache-file cache.rbpc] [--model model.bin] [--threads N]",
     cmd_score},
    {"bench-serve",
     "[--bench b07] [--requests 200] [--clients 2] [--threads N] "
     "[--batch 16] [--scale 0.25]",
     cmd_bench_serve},
};

int usage() {
  std::string verbs;
  for (const Subcommand& command : kSubcommands) {
    if (!verbs.empty()) verbs += '|';
    verbs += command.name;
  }
  std::fprintf(stderr, "usage: rebert_cli <%s> [flags]\n\n", verbs.c_str());
  for (const Subcommand& command : kSubcommands)
    std::fprintf(stderr, "  rebert_cli %-11s %s\n", command.name,
                 command.flags_help);
  std::fprintf(stderr,
               "\nglobal: [--kernels auto|scalar|avx2] selects the compute "
               "backend (default: REBERT_KERNELS, then cpuid)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const util::FlagParser flags(argc, argv);
  if (flags.positional().empty()) return usage();
  // --kernels is global: every compute-bearing subcommand (train, recover,
  // score, serve, bench-serve, and backends spawned by route) honors it.
  // Unset keeps the REBERT_KERNELS / cpuid auto-selection.
  const std::string kernels_spec = flags.get("kernels", "");
  if (!kernels_spec.empty()) {
    std::string kernels_error;
    if (!kernels::apply_backend_spec(kernels_spec, &kernels_error)) {
      std::fprintf(stderr, "invalid --kernels %s: %s\n",
                   kernels_spec.c_str(), kernels_error.c_str());
      return 2;
    }
  }
  const std::string& command = flags.positional()[0];
  try {
    for (const Subcommand& entry : kSubcommands)
      if (command == entry.name) return entry.run(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
