// Table II — ARI comparison of ReBERT vs the structural baseline across
// R-Index in {0, 0.2, 0.4, 0.6, 0.8, 1.0} under leave-one-out CV.
//
// For every benchmark b: train a ReBERT model on all other benchmarks
// (with their six R-Index-augmented variants, §III-A-2), then evaluate
// both methods on b at every corruption level. Prints one block per
// R-Index (the paper's row layout) plus the per-benchmark averages and the
// per-R-Index average improvement, and writes table2_ari.csv.
//
// Defaults run the scaled 10-benchmark suite in minutes on one CPU core;
// REBERT_FULL=1 runs all 12 at full scale (hours). See bench/common.h for
// every knob.
#include <cstdio>
#include <functional>
#include <map>

#include "bench/common.h"
#include "metrics/clustering.h"
#include "nl/corruption.h"
#include "structural/matching.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/string_utils.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace rebert;
  const benchharness::BenchSetup setup = benchharness::load_bench_setup();
  const std::vector<core::CircuitData> circuits =
      benchharness::generate_suite(setup);
  const std::vector<double>& sweep = benchharness::r_index_sweep();

  std::printf(
      "=== Table II: ARI, Structural vs ReBERT (LOO-CV, scale %.2f, "
      "%d epochs, %d samples/circuit) ===\n",
      setup.scale, setup.options.training.epochs,
      setup.options.dataset.max_samples_per_circuit);

  // results[r][method][benchmark] = ARI.
  std::map<double, std::map<std::string, std::map<std::string, double>>>
      results;
  util::CsvWriter csv("table2_ari.csv",
                      {"r_index", "benchmark", "structural_ari",
                       "rebert_ari", "rebert_homogeneity",
                       "rebert_completeness"});

  util::WallTimer total_timer;
  for (std::size_t fold = 0; fold < circuits.size(); ++fold) {
    const core::CircuitData& test_circuit = circuits[fold];
    util::WallTimer fold_timer;
    std::fprintf(stderr, "[fold %zu/%zu] training without %s...\n",
                 fold + 1, circuits.size(), test_circuit.name.c_str());
    const std::vector<const core::CircuitData*> train_set =
        core::loo_train_split(circuits, fold);
    const auto model = core::train_rebert(train_set, setup.options);

    for (double r : sweep) {
      // ReBERT.
      const core::EvaluationResult rebert_result =
          core::evaluate_rebert(test_circuit, r, *model, setup.options);
      // Structural baseline on the identical corrupted netlist.
      nl::CorruptionOptions corrupt_options;
      corrupt_options.r_index = r;
      corrupt_options.seed = setup.options.corruption_seed ^
                             std::hash<std::string>{}(test_circuit.name);
      const nl::Netlist variant =
          r == 0.0 ? test_circuit.netlist
                   : nl::corrupt_netlist(test_circuit.netlist,
                                         corrupt_options);
      structural::MatchingOptions matching;
      matching.backtrace_depth =
          setup.options.pipeline.tokenizer.backtrace_depth;
      const structural::StructuralResult structural_result =
          structural::recover_words_structural(variant, matching);
      const std::vector<nl::Bit> bits = nl::extract_bits(variant);
      const std::vector<int> truth = test_circuit.words.labels_for(bits);
      const double structural_ari =
          metrics::adjusted_rand_index(truth, structural_result.labels);

      results[r]["Structural"][test_circuit.name] = structural_ari;
      results[r]["ReBERT"][test_circuit.name] = rebert_result.ari;
      const metrics::VMeasure vm =
          metrics::v_measure(truth, rebert_result.recovery.labels);
      csv.add_row({util::format_double(r, 1), test_circuit.name,
                   util::format_double(structural_ari, 3),
                   util::format_double(rebert_result.ari, 3),
                   util::format_double(vm.homogeneity, 3),
                   util::format_double(vm.completeness, 3)});
    }
    std::fprintf(stderr, "[fold %zu/%zu] %s done in %.1fs\n", fold + 1,
                 circuits.size(), test_circuit.name.c_str(),
                 fold_timer.seconds());
  }

  // Paper-layout rendering: one block per R-Index.
  std::vector<std::string> headers{"R-Index", "Method"};
  for (const auto& circuit : circuits) headers.push_back(circuit.name);
  headers.push_back("Average");
  util::TextTable table(headers);

  std::map<std::string, std::map<std::string, double>> benchmark_totals;
  for (double r : sweep) {
    double structural_avg = 0.0, rebert_avg = 0.0;
    std::vector<std::string> structural_row{util::format_double(r, 1),
                                            "Structural"};
    std::vector<std::string> rebert_row{"", "ReBERT"};
    for (const auto& circuit : circuits) {
      const double s = results[r]["Structural"][circuit.name];
      const double m = results[r]["ReBERT"][circuit.name];
      structural_row.push_back(util::format_double(s, 3));
      rebert_row.push_back(util::format_double(m, 3));
      structural_avg += s;
      rebert_avg += m;
      benchmark_totals["Structural"][circuit.name] += s;
      benchmark_totals["ReBERT"][circuit.name] += m;
    }
    structural_avg /= static_cast<double>(circuits.size());
    rebert_avg /= static_cast<double>(circuits.size());
    structural_row.push_back(util::format_double(structural_avg, 3));
    const double improvement =
        structural_avg > 1e-9
            ? (rebert_avg - structural_avg) / structural_avg * 100.0
            : 0.0;
    rebert_row.push_back(util::format_double(rebert_avg, 3) + " (" +
                         util::format_double(improvement, 1) + "%)");
    table.add_row(structural_row);
    table.add_row(rebert_row);
  }

  // Per-benchmark averages across R (the paper's final row group).
  std::vector<std::string> structural_avg_row{"Average", "Structural"};
  std::vector<std::string> rebert_avg_row{"", "ReBERT"};
  std::vector<std::string> improvement_row{"", "Improv."};
  double grand_structural = 0.0, grand_rebert = 0.0;
  for (const auto& circuit : circuits) {
    const double s = benchmark_totals["Structural"][circuit.name] /
                     static_cast<double>(sweep.size());
    const double m = benchmark_totals["ReBERT"][circuit.name] /
                     static_cast<double>(sweep.size());
    structural_avg_row.push_back(util::format_double(s, 3));
    rebert_avg_row.push_back(util::format_double(m, 3));
    improvement_row.push_back(
        s > 1e-9 ? util::format_double((m - s) / s * 100.0, 1) + "%" : "n/a");
    grand_structural += s;
    grand_rebert += m;
  }
  structural_avg_row.push_back(util::format_double(
      grand_structural / static_cast<double>(circuits.size()), 3));
  rebert_avg_row.push_back(util::format_double(
      grand_rebert / static_cast<double>(circuits.size()), 3));
  improvement_row.push_back("");
  table.add_row(structural_avg_row);
  table.add_row(rebert_avg_row);
  table.add_row(improvement_row);

  table.print();
  std::printf("total %.1fs; CSV: table2_ari.csv\n", total_timer.seconds());
  return 0;
}
