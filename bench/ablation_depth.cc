// Ablation — backtrace depth k (§II-A uses k = 6).
//
// Trains one model per depth (tokenization changes with k, so the model
// must match) and evaluates on a held-out benchmark. Also reports the
// average token-sequence length, which grows exponentially with k.
#include <cstdio>

#include "bench/common.h"
#include "util/csv.h"
#include "util/string_utils.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace rebert;
  benchharness::BenchSetup setup = benchharness::load_bench_setup();
  if (util::env_string("REBERT_BENCHMARKS", "").empty())
    setup.benchmark_names = {"b03", "b04", "b08", "b11", "b13"};
  const std::vector<core::CircuitData> circuits =
      benchharness::generate_suite(setup);
  const core::CircuitData& test_circuit = circuits.back();
  std::vector<const core::CircuitData*> train_set;
  for (std::size_t i = 0; i + 1 < circuits.size(); ++i)
    train_set.push_back(&circuits[i]);

  std::printf(
      "=== Ablation: backtrace depth k (eval on %s, scale %.2f) ===\n",
      test_circuit.name.c_str(), setup.scale);
  util::TextTable table(
      {"depth k", "avg tokens/bit", "avg ARI", "train+eval (s)"});
  util::CsvWriter csv("ablation_depth.csv",
                      {"depth", "r_index", "ari", "avg_tokens"});

  for (int depth : {2, 4, 6, 8}) {
    core::ExperimentOptions options = setup.options;
    options.pipeline.tokenizer.backtrace_depth = depth;
    options.dataset.tokenizer = options.pipeline.tokenizer;

    // Average tokens per bit on the clean test circuit.
    const core::Tokenizer tokenizer(options.pipeline.tokenizer);
    const auto sequences = tokenizer.tokenize_bits(test_circuit.netlist);
    double token_total = 0.0;
    for (const auto& seq : sequences) token_total += seq.token_ids.size();
    const double avg_tokens =
        token_total / static_cast<double>(sequences.size());

    util::WallTimer timer;
    std::fprintf(stderr, "training depth %d...\n", depth);
    const auto model = core::train_rebert(train_set, options);
    double ari_total = 0.0;
    for (double r : benchharness::r_index_sweep()) {
      const core::EvaluationResult result =
          core::evaluate_rebert(test_circuit, r, *model, options);
      ari_total += result.ari;
      csv.add_row({std::to_string(depth), util::format_double(r, 1),
                   util::format_double(result.ari, 3),
                   util::format_double(avg_tokens, 1)});
    }
    const double n =
        static_cast<double>(benchharness::r_index_sweep().size());
    table.add_row({std::to_string(depth),
                   util::format_double(avg_tokens, 1),
                   util::format_double(ari_total / n, 3),
                   util::format_double(timer.seconds(), 1)});
  }
  table.print();
  std::printf("CSV: ablation_depth.csv\n");
  return 0;
}
