// Serving throughput vs thread count — the concurrent-runtime headline
// numbers: score-request QPS with latency percentiles, plus the wall time
// of one full recover (the parallel score_all_pairs hot path) at each
// thread count and its speedup over single-threaded.
//
// Extra knobs on top of the common ones (bench/common.h):
//   REBERT_SERVE_BENCH     benchmark to serve            (default b07 —
//                          the mid-size circuit of the Table I suite)
//   REBERT_SERVE_REQUESTS  score requests per run        (default 400)
//   REBERT_SERVE_CLIENTS   concurrent client threads     (default 4)
//   REBERT_SERVE_THREADS   comma list of engine threads  (default 1,2,4,8)
//
// The recover timing runs with the prediction cache off so it measures
// model forwards, not memory bandwidth; the QPS loop keeps the cache on,
// matching production serving.
//
// The QPS loop goes over a real AF_UNIX socket through a shared
// serve::ClientPool (the same reuse layer the router's backend links use),
// so the measured latency includes the full transport, not just the engine.
// Each thread count is measured twice — once over the text protocol, once
// over the negotiated binary wire protocol — so the framing overhead is a
// column, not a guess (acceptance: binary p50 no worse than text).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench/common.h"
#include "serve/client_pool.h"
#include "serve/engine.h"
#include "serve/serve_loop.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/string_utils.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct RunResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double recover_seconds = 0.0;
};

double percentile(std::vector<double>& sorted, double p) {
  const std::size_t index = std::min(
      sorted.size() - 1, static_cast<std::size_t>(p * sorted.size()));
  return sorted[index];
}

}  // namespace

int main() {
  using namespace rebert;
  benchharness::BenchSetup setup = benchharness::load_bench_setup();

  const std::string bench =
      util::env_string("REBERT_SERVE_BENCH", "b07");
  const int requests = util::env_int("REBERT_SERVE_REQUESTS", 400);
  const int clients = std::max(1, util::env_int("REBERT_SERVE_CLIENTS", 4));
  std::vector<int> thread_counts;
  for (const std::string& piece :
       util::split(util::env_string("REBERT_SERVE_THREADS", "1,2,4,8"), ','))
    if (!util::trim(piece).empty())
      thread_counts.push_back(std::stoi(util::trim(piece)));

  std::printf("=== Serve throughput: %s (scale %.2f), %d requests, "
              "%d client(s) ===\n",
              bench.c_str(), setup.scale, requests, clients);
  util::TextTable table({"threads", "enc", "qps", "p50 (ms)", "p95 (ms)",
                         "recover (s)", "speedup"});
  util::CsvWriter csv("serve_throughput.csv",
                      {"threads", "enc", "qps", "p50_ms", "p95_ms",
                       "recover_s", "speedup"});

  double serial_recover = 0.0;
  for (const int threads : thread_counts) {
    serve::EngineOptions options;
    options.num_threads = threads;
    options.suite_scale = setup.scale;
    options.experiment = setup.options;
    options.experiment.pipeline.use_prediction_cache = false;
    serve::InferenceEngine engine(options);
    serve::ServeLoop loop(engine);
    const int num_bits = engine.warm(bench);
    const std::vector<std::string> bits = engine.bit_names(bench);

    RunResult result;
    {
      util::WallTimer timer;
      result.recover_seconds = 0.0;
      (void)engine.recover(bench);
      result.recover_seconds = timer.seconds();
    }

    const std::string socket_path =
        "/tmp/rebert_throughput_" + std::to_string(::getpid()) + "_" +
        std::to_string(threads) + ".sock";
    std::thread server([&] { loop.run_unix_socket(socket_path); });

    if (serial_recover == 0.0) serial_recover = result.recover_seconds;
    const double speedup = result.recover_seconds > 0.0
                               ? serial_recover / result.recover_seconds
                               : 0.0;

    // Same server, same workload seeds, both encodings: the only variable
    // between the two rows is the framing on the wire.
    for (const bool binary : {false, true}) {
      serve::ClientOptions client_options;
      client_options.binary = binary;
      serve::ClientPool pool(socket_path, client_options);

      std::atomic<int> next{0};
      std::vector<std::vector<double>> latencies(
          static_cast<std::size_t>(clients));
      util::WallTimer wall;
      std::vector<std::thread> workers;
      for (int c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          util::Rng rng(0xbe6cULL + static_cast<std::uint64_t>(c));
          std::vector<double>& mine =
              latencies[static_cast<std::size_t>(c)];
          while (next.fetch_add(1) < requests) {
            const std::string& a = bits[static_cast<std::size_t>(
                rng.uniform_int(0, num_bits - 1))];
            const std::string& b = bits[static_cast<std::size_t>(
                rng.uniform_int(0, num_bits - 1))];
            const std::string line = "score " + bench + " " + a + " " + b;
            util::WallTimer request_timer;
            serve::ClientPool::Lease lease = pool.acquire();
            if (!lease) continue;
            try {
              (void)lease->request(line);
            } catch (const std::exception&) {
              lease.discard();
              continue;
            }
            mine.push_back(request_timer.seconds());
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
      const double elapsed = wall.seconds();

      std::vector<double> all;
      for (const std::vector<double>& client : latencies)
        all.insert(all.end(), client.begin(), client.end());
      std::sort(all.begin(), all.end());
      result.qps = static_cast<double>(all.size()) / elapsed;
      result.p50_ms = 1000.0 * percentile(all, 0.50);
      result.p95_ms = 1000.0 * percentile(all, 0.95);

      const char* enc = binary ? "binary" : "text";
      table.add_row({std::to_string(threads), enc,
                     util::format_double(result.qps, 1),
                     util::format_double(result.p50_ms, 3),
                     util::format_double(result.p95_ms, 3),
                     util::format_double(result.recover_seconds, 3),
                     util::format_double(speedup, 2) + "x"});
      csv.add_row({std::to_string(threads), enc,
                   util::format_double(result.qps, 1),
                   util::format_double(result.p50_ms, 4),
                   util::format_double(result.p95_ms, 4),
                   util::format_double(result.recover_seconds, 4),
                   util::format_double(speedup, 2)});
    }
    loop.stop();
    server.join();
  }
  table.print();
  std::printf("CSV: serve_throughput.csv\n");
  return 0;
}
