// Ablation — Jaccard filter threshold (§II-C uses 0.7).
//
// One model, one held-out benchmark, sweep of filter thresholds including
// "off". Reports ARI and the fraction of pairs that reached the model —
// the compute/quality trade-off the filter buys.
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "util/csv.h"
#include "util/string_utils.h"
#include "util/table.h"

int main() {
  using namespace rebert;
  benchharness::BenchSetup setup = benchharness::load_bench_setup();
  if (util::env_string("REBERT_BENCHMARKS", "").empty())
    setup.benchmark_names = {"b03", "b04", "b05", "b08", "b11", "b13"};
  const std::vector<core::CircuitData> circuits =
      benchharness::generate_suite(setup);
  const core::CircuitData& test_circuit = circuits.back();
  std::vector<const core::CircuitData*> train_set;
  for (std::size_t i = 0; i + 1 < circuits.size(); ++i)
    train_set.push_back(&circuits[i]);

  std::fprintf(stderr, "training model...\n");
  const auto model = core::train_rebert(train_set, setup.options);

  std::printf(
      "=== Ablation: Jaccard filter threshold (eval on %s, scale %.2f) "
      "===\n",
      test_circuit.name.c_str(), setup.scale);
  util::TextTable table({"threshold", "avg ARI", "avg scored pairs (%)"});
  util::CsvWriter csv("ablation_filter.csv",
                      {"threshold", "r_index", "ari", "scored_fraction"});

  struct Setting {
    const char* label;
    bool enabled;
    double threshold;
  };
  const Setting settings[] = {
      {"off", false, 0.0}, {"0.5", true, 0.5}, {"0.6", true, 0.6},
      {"0.7 (paper)", true, 0.7}, {"0.8", true, 0.8}, {"0.9", true, 0.9},
  };

  for (const Setting& setting : settings) {
    core::ExperimentOptions options = setup.options;
    options.pipeline.filter.enabled = setting.enabled;
    options.pipeline.filter.threshold = setting.threshold;
    double ari_total = 0.0, scored_total = 0.0;
    for (double r : benchharness::r_index_sweep()) {
      const core::EvaluationResult result =
          core::evaluate_rebert(test_circuit, r, *model, options);
      ari_total += result.ari;
      scored_total += 1.0 - result.recovery.filtered_fraction;
      csv.add_row({setting.label, util::format_double(r, 1),
                   util::format_double(result.ari, 3),
                   util::format_double(
                       1.0 - result.recovery.filtered_fraction, 3)});
    }
    const double n =
        static_cast<double>(benchharness::r_index_sweep().size());
    table.add_row({setting.label, util::format_double(ari_total / n, 3),
                   util::format_double(scored_total / n * 100.0, 1)});
  }
  table.print();
  std::printf("CSV: ablation_filter.csv\n");
  return 0;
}
