// Ablation — recovery on synthesis-optimized netlists.
//
// The paper motivates learned RE with the failure of template matching on
// "heavily optimized" netlists (§I). This bench applies a realistic
// adversarial flow — corrupt with equivalent gates, then run synthesis
// cleanup (constant folding, buffer collapsing, structural hashing, dead
// sweep) — and evaluates both methods on the result. The optimizer removes
// part of the corruption bloat but also canonicalizes structure, shifting
// both methods' scores.
#include <cstdio>
#include <functional>

#include "bench/common.h"
#include "metrics/clustering.h"
#include "nl/corruption.h"
#include "nl/opt.h"
#include "structural/matching.h"
#include "util/csv.h"
#include "util/string_utils.h"
#include "util/table.h"

int main() {
  using namespace rebert;
  benchharness::BenchSetup setup = benchharness::load_bench_setup();
  if (util::env_string("REBERT_BENCHMARKS", "").empty())
    setup.benchmark_names = {"b03", "b04", "b05", "b08", "b11", "b13"};
  const std::vector<core::CircuitData> circuits =
      benchharness::generate_suite(setup);
  const core::CircuitData& test_circuit = circuits.back();
  std::vector<const core::CircuitData*> train_set;
  for (std::size_t i = 0; i + 1 < circuits.size(); ++i)
    train_set.push_back(&circuits[i]);

  std::fprintf(stderr, "training model...\n");
  const auto model = core::train_rebert(train_set, setup.options);

  std::printf(
      "=== Ablation: corrupt-then-optimize flow (eval on %s, scale %.2f) "
      "===\n",
      test_circuit.name.c_str(), setup.scale);
  util::TextTable table({"R-Index", "pipeline", "gates", "Structural ARI",
                         "ReBERT ARI"});
  util::CsvWriter csv("ablation_optimization.csv",
                      {"r_index", "optimized", "gates", "structural_ari",
                       "rebert_ari"});

  for (double r : {0.0, 0.4, 0.8}) {
    nl::CorruptionOptions corrupt_options;
    corrupt_options.r_index = r;
    corrupt_options.seed = setup.options.corruption_seed ^
                           std::hash<std::string>{}(test_circuit.name);
    const nl::Netlist corrupted =
        r == 0.0 ? test_circuit.netlist
                 : nl::corrupt_netlist(test_circuit.netlist, corrupt_options);
    for (bool optimized : {false, true}) {
      const nl::Netlist variant =
          optimized ? nl::optimize_netlist(corrupted) : corrupted;
      const std::vector<nl::Bit> bits = nl::extract_bits(variant);
      const std::vector<int> truth = test_circuit.words.labels_for(bits);

      structural::MatchingOptions matching;
      matching.backtrace_depth =
          setup.options.pipeline.tokenizer.backtrace_depth;
      const double structural_ari = metrics::adjusted_rand_index(
          truth,
          structural::recover_words_structural(variant, matching).labels);
      const core::RecoveryResult recovery =
          core::recover_words(variant, *model, setup.options.pipeline);
      const double rebert_ari =
          metrics::adjusted_rand_index(truth, recovery.labels);

      table.add_row({util::format_double(r, 1),
                     optimized ? "corrupt + optimize" : "corrupt only",
                     std::to_string(variant.stats().num_comb_gates),
                     util::format_double(structural_ari, 3),
                     util::format_double(rebert_ari, 3)});
      csv.add_row({util::format_double(r, 1), optimized ? "1" : "0",
                   std::to_string(variant.stats().num_comb_gates),
                   util::format_double(structural_ari, 3),
                   util::format_double(rebert_ari, 3)});
    }
  }
  table.print();
  std::printf("CSV: ablation_optimization.csv\n");
  return 0;
}
