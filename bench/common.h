// Shared helpers for the experiment harnesses (Table I-III + ablations).
//
// Every bench is environment-tunable so the same binary scales from a
// minutes-long smoke run (the defaults) to a paper-sized overnight sweep:
//   REBERT_SCALE        suite scale factor in (0,1]            (default .25)
//   REBERT_BENCHMARKS   comma list, e.g. "b03,b08"   (default: b03..b15)
//   REBERT_FULL         1 = all 12 benchmarks at full scale
//   REBERT_EPOCHS       fine-tuning epochs                     (default 3)
//   REBERT_MAX_SAMPLES  training-pair cap per circuit          (default 250)
//   REBERT_DEPTH        backtrace depth k                      (default 6)
//   REBERT_SEED         global experiment seed                 (default 7)
#pragma once

#include <string>
#include <vector>

#include "circuitgen/suite.h"
#include "rebert/pipeline.h"
#include "util/env.h"
#include "util/string_utils.h"

namespace rebert::benchharness {

inline core::CircuitData to_circuit_data(gen::GeneratedCircuit&& generated,
                                         const std::string& name) {
  return core::CircuitData{name, std::move(generated.netlist),
                           std::move(generated.words)};
}

struct BenchSetup {
  std::vector<std::string> benchmark_names;
  double scale = 0.25;
  core::ExperimentOptions options;
};

inline BenchSetup load_bench_setup() {
  BenchSetup setup;
  const bool full = util::env_bool("REBERT_FULL", false);
  setup.scale = util::env_double("REBERT_SCALE", full ? 1.0 : 0.25);

  const std::string default_list =
      full ? "b03,b04,b05,b07,b08,b11,b12,b13,b14,b15,b17,b18"
           : "b03,b04,b05,b07,b08,b11,b12,b13,b14,b15";
  const std::string list = util::env_string("REBERT_BENCHMARKS",
                                            default_list);
  for (const std::string& piece : util::split(list, ',')) {
    const std::string name = util::trim(piece);
    if (!name.empty()) setup.benchmark_names.push_back(name);
  }

  core::ExperimentOptions& options = setup.options;
  options.pipeline.tokenizer.backtrace_depth =
      util::env_int("REBERT_DEPTH", 6);
  options.pipeline.tokenizer.tree_code_dim = 16;
  options.pipeline.tokenizer.max_seq_len = 256;
  options.dataset.max_samples_per_circuit =
      util::env_int("REBERT_MAX_SAMPLES", 250);
  options.dataset.seed = static_cast<std::uint64_t>(
      util::env_int("REBERT_SEED", 7));
  options.training.epochs = util::env_int("REBERT_EPOCHS", 3);
  options.training.batch_size = 16;
  options.training.learning_rate = 5e-4;
  options.corruption_seed = options.dataset.seed ^ 0x5a5a5a5aULL;
  return setup;
}

inline std::vector<core::CircuitData> generate_suite(
    const BenchSetup& setup) {
  std::vector<core::CircuitData> circuits;
  circuits.reserve(setup.benchmark_names.size());
  for (const std::string& name : setup.benchmark_names)
    circuits.push_back(
        to_circuit_data(gen::generate_benchmark(name, setup.scale), name));
  return circuits;
}

inline const std::vector<double>& r_index_sweep() {
  static const std::vector<double> sweep{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  return sweep;
}

}  // namespace rebert::benchharness
