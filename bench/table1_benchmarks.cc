// Table I — benchmark circuit statistics.
//
// Regenerates the paper's benchmark-information table for the synthetic
// ITC'99-analogue suite: #gates (2-input combinational), #FFs, #Words.
// FF/word counts match Table I at full scale by construction; gate counts
// emerge from the block mix (see DESIGN.md).
//
// Honors REBERT_SCALE / REBERT_BENCHMARKS / REBERT_FULL; default prints the
// full-scale suite because generation alone is cheap.
#include <cstdio>

#include "bench/common.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct PaperRow {
  const char* name;
  int ffs;     // Table I
  int words;   // Table I where legible; -1 = unreadable in the scan
};

constexpr PaperRow kPaperRows[] = {
    {"b03", 30, 7},   {"b04", 66, -1},  {"b05", 34, -1},  {"b07", 49, -1},
    {"b08", 21, -1},  {"b11", 31, 5},   {"b12", 121, -1}, {"b13", 53, -1},
    {"b14", 449, -1}, {"b15", 245, -1}, {"b17", 1415, 98}, {"b18", 3320, -1},
};

int paper_ffs(const std::string& name) {
  for (const PaperRow& row : kPaperRows)
    if (name == row.name) return row.ffs;
  return -1;
}

}  // namespace

int main() {
  using namespace rebert;
  benchharness::BenchSetup setup = benchharness::load_bench_setup();
  // Stats are cheap; default to the full-scale 12-circuit suite unless the
  // user restricted it explicitly.
  if (!util::env_bool("REBERT_FULL", false) &&
      util::env_string("REBERT_BENCHMARKS", "").empty() &&
      util::env_string("REBERT_SCALE", "").empty()) {
    setup.scale = 1.0;
    setup.benchmark_names.assign(gen::benchmark_names().begin(),
                                 gen::benchmark_names().end());
  }

  std::printf("=== Table I: benchmark circuits (scale %.2f) ===\n",
              setup.scale);
  util::TextTable table({"benchmark", "#gates", "#FFs", "#Words",
                         "paper #FFs", "#inputs", "#outputs"});
  util::CsvWriter csv("table1_benchmarks.csv",
                      {"benchmark", "gates", "ffs", "words", "paper_ffs"});
  util::WallTimer timer;
  for (const std::string& name : setup.benchmark_names) {
    const gen::GeneratedCircuit circuit =
        gen::generate_benchmark(name, setup.scale);
    const nl::NetlistStats stats = circuit.netlist.stats();
    table.add_row({name, std::to_string(stats.num_comb_gates),
                   std::to_string(stats.num_dffs),
                   std::to_string(circuit.words.num_words()),
                   std::to_string(paper_ffs(name)),
                   std::to_string(stats.num_inputs),
                   std::to_string(stats.num_outputs)});
    csv.add_row({name, std::to_string(stats.num_comb_gates),
                 std::to_string(stats.num_dffs),
                 std::to_string(circuit.words.num_words()),
                 std::to_string(paper_ffs(name))});
  }
  table.print();
  std::printf("generated %zu circuits in %.2fs; CSV: %s\n",
              setup.benchmark_names.size(), timer.seconds(),
              "table1_benchmarks.csv");
  return 0;
}
