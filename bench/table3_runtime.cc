// Table III — average runtime (seconds) per benchmark, Structural vs
// ReBERT, averaged over the R-Index sweep.
//
// Runtime is inference-only, matching the paper: the model is trained once
// up front (training time excluded, as fine-tuning happens offline), then
// each benchmark is corrupted at each R-Index and both methods are timed
// end-to-end (cone extraction / tokenization + pairwise scoring + word
// generation).
#include <cstdio>
#include <functional>

#include "bench/common.h"
#include "nl/corruption.h"
#include "structural/matching.h"
#include "util/csv.h"
#include "util/string_utils.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace rebert;
  const benchharness::BenchSetup setup = benchharness::load_bench_setup();
  const std::vector<core::CircuitData> circuits =
      benchharness::generate_suite(setup);
  const std::vector<double>& sweep = benchharness::r_index_sweep();

  std::printf(
      "=== Table III: average runtime (s) across R-Index, scale %.2f ===\n",
      setup.scale);

  // One model for all benchmarks: runtime does not depend on the weights,
  // so a quick training pass on the whole suite suffices.
  std::vector<const core::CircuitData*> all;
  for (const auto& circuit : circuits) all.push_back(&circuit);
  core::ExperimentOptions train_options = setup.options;
  train_options.training.epochs = 1;
  std::fprintf(stderr, "training shared model for runtime measurement...\n");
  const auto model = core::train_rebert(all, train_options);

  util::TextTable table({"method", "benchmark", "avg runtime (s)",
                         "tokenize (s)", "score (s)", "group (s)"});
  util::CsvWriter csv("table3_runtime.csv",
                      {"benchmark", "structural_seconds", "rebert_seconds",
                       "rebert_cached_seconds"});

  for (const auto& circuit : circuits) {
    double structural_total = 0.0, rebert_total = 0.0, cached_total = 0.0;
    double tokenize_total = 0.0, score_total = 0.0, group_total = 0.0;
    for (double r : sweep) {
      nl::CorruptionOptions corrupt_options;
      corrupt_options.r_index = r;
      corrupt_options.seed = setup.options.corruption_seed ^
                             std::hash<std::string>{}(circuit.name);
      const nl::Netlist variant =
          r == 0.0 ? circuit.netlist
                   : nl::corrupt_netlist(circuit.netlist, corrupt_options);

      structural::MatchingOptions matching;
      matching.backtrace_depth =
          setup.options.pipeline.tokenizer.backtrace_depth;
      structural_total =
          structural_total +
          structural::recover_words_structural(variant, matching)
              .total_seconds;

      // Paper-faithful configuration: every surviving pair hits the model.
      core::PipelineOptions uncached = setup.options.pipeline;
      uncached.use_prediction_cache = false;
      const core::RecoveryResult recovery =
          core::recover_words(variant, *model, uncached);
      rebert_total += recovery.total_seconds;
      tokenize_total += recovery.tokenize_seconds;
      score_total += recovery.scoring_seconds;
      group_total += recovery.grouping_seconds;

      // This repo's accelerated configuration (lossless memoization).
      core::PipelineOptions cached = setup.options.pipeline;
      cached.use_prediction_cache = true;
      cached_total +=
          core::recover_words(variant, *model, cached).total_seconds;
    }
    const double n = static_cast<double>(sweep.size());
    table.add_row({"Structural", circuit.name,
                   util::format_double(structural_total / n, 3), "-", "-",
                   "-"});
    table.add_row({"ReBERT", circuit.name,
                   util::format_double(rebert_total / n, 3),
                   util::format_double(tokenize_total / n, 3),
                   util::format_double(score_total / n, 3),
                   util::format_double(group_total / n, 3)});
    table.add_row({"ReBERT+cache", circuit.name,
                   util::format_double(cached_total / n, 3), "-", "-", "-"});
    csv.add_row({circuit.name,
                 util::format_double(structural_total / n, 4),
                 util::format_double(rebert_total / n, 4),
                 util::format_double(cached_total / n, 4)});
    std::fprintf(stderr, "%s done\n", circuit.name.c_str());
  }
  table.print();
  std::printf("CSV: table3_runtime.csv\n");
  return 0;
}
