// Overload behaviour of the serving daemon — drives a socket server past
// its admission budget and reports what production cares about: shed rate,
// that every shed response carries a machine-readable retry_after_ms, and
// that the latency of *accepted* requests stays bounded (within ~2x of the
// unloaded p95) because excess load is refused at the door instead of
// queueing without bound.
//
// The model is made predictably slow with the fault injector's latency
// mode (model.forward armed at p=1.0 with a fixed delay), so the run is
// deterministic and does not depend on host speed to reach overload.
//
// Client connections come from a shared serve::ClientPool — the same
// bounded, EINTR-safe reuse layer the router's backend links use — so the
// bench also exercises (and reports) connection reuse under load.
//
// Extra knobs on top of the common ones (bench/common.h):
//   REBERT_OVERLOAD_BENCH       benchmark to serve          (default b07)
//   REBERT_OVERLOAD_REQUESTS    requests per client         (default 60)
//   REBERT_OVERLOAD_CLIENTS     overload client threads     (default 8)
//   REBERT_OVERLOAD_INFLIGHT    engine admission budget     (default 2)
//   REBERT_OVERLOAD_FORWARD_MS  injected forward latency    (default 2)
//
// Phases (one CSV row each):
//   unloaded  1 client, no contention — the latency baseline
//   overload  N clients, no retry — measures shedding + accepted latency
//   retry     N clients via Client::request_with_retry — goodput with the
//             deterministic capped backoff honouring retry_after_ms
//
// `--connections N` (or REBERT_OVERLOAD_CONNECTIONS) additionally sweeps
// the reactor's C10K claim: 100 / 1000 / N connected-but-idle sockets
// held open while active traffic runs, reporting the process thread
// count, RSS, and accepted-request p95 at each point. The run fails when
// the thread count grows with the connection count (the reactor must be
// O(1) threads) or when p95 at the top of the sweep degrades by more
// than 5x over the 100-connection baseline. Both ends of every
// connection live in this process, so N is clamped to what RLIMIT_NOFILE
// (raised to its hard limit first) can hold.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "bench/common.h"
#include "runtime/fault_injector.h"
#include "runtime/threads.h"
#include "serve/client_pool.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/serve_loop.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/string_utils.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace rebert;

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1, static_cast<std::size_t>(p * sorted.size()));
  return sorted[index];
}

struct PhaseResult {
  int clients = 0;
  int requests = 0;       // issued
  int accepted = 0;       // answered `ok ...`
  int shed = 0;           // answered `err overloaded ...`
  int errors = 0;         // anything else (should stay 0)
  int bad_shed = 0;       // shed responses missing retry_after_ms
  std::uint64_t retries = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;    // accepted requests only
};

PhaseResult run_phase(serve::ClientPool& pool, const std::string& bench,
                      const std::vector<std::string>& bits, int clients,
                      int requests_per_client, bool with_retry) {
  PhaseResult result;
  result.clients = clients;
  result.requests = clients * requests_per_client;
  std::atomic<int> accepted{0}, shed{0}, errors{0}, bad_shed{0};
  const std::uint64_t retries_before = pool.retries();
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      util::Rng rng(0x0ffe12ULL + static_cast<std::uint64_t>(c));
      std::vector<double>& mine = latencies[static_cast<std::size_t>(c)];
      const int num_bits = static_cast<int>(bits.size());
      for (int r = 0; r < requests_per_client; ++r) {
        const std::string& a = bits[static_cast<std::size_t>(
            rng.uniform_int(0, num_bits - 1))];
        const std::string& b = bits[static_cast<std::size_t>(
            rng.uniform_int(0, num_bits - 1))];
        const std::string line = "score " + bench + " " + a + " " + b;
        util::WallTimer timer;
        serve::ClientPool::Lease lease = pool.acquire();
        if (!lease) {
          errors.fetch_add(1);
          continue;
        }
        std::string response;
        try {
          response = with_retry ? lease->request_with_retry(line)
                                : lease->request(line);
        } catch (const std::exception&) {
          lease.discard();
          errors.fetch_add(1);
          continue;
        }
        const double seconds = timer.seconds();
        if (util::starts_with(response, "ok ")) {
          accepted.fetch_add(1);
          mine.push_back(seconds);
        } else if (util::starts_with(response, "err overloaded")) {
          shed.fetch_add(1);
          if (serve::parse_retry_after_ms(response) < 0)
            bad_shed.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  result.accepted = accepted.load();
  result.shed = shed.load();
  result.errors = errors.load();
  result.bad_shed = bad_shed.load();
  // Leases were all returned at join, so the pool-level aggregate is
  // complete for this phase.
  result.retries = pool.retries() - retries_before;
  std::vector<double> all;
  for (const std::vector<double>& client : latencies)
    all.insert(all.end(), client.begin(), client.end());
  std::sort(all.begin(), all.end());
  result.p50_ms = 1000.0 * percentile(all, 0.50);
  result.p95_ms = 1000.0 * percentile(all, 0.95);
  return result;
}

/// Open `count` connected-but-silent sockets against the daemon. Stops
/// early (with a note) if the descriptor budget runs out.
std::vector<int> open_idle_connections(const std::string& path, int count) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  std::vector<int> idle;
  idle.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) break;
    int result;
    do {
      result = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr));
    } while (result != 0 && errno == EINTR);
    if (result != 0) {
      ::close(fd);
      break;
    }
    idle.push_back(fd);
  }
  if (static_cast<int>(idle.size()) < count)
    std::printf("note: opened %zu of %d idle connections (fd budget)\n",
                idle.size(), count);
  return idle;
}

/// Raise RLIMIT_NOFILE to its hard limit and return how many idle
/// connections this process can hold — both the client and the server
/// end of every connection are in-process, so each one costs two
/// descriptors; keep headroom for everything else.
int max_idle_connections() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 1000;
  if (limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    (void)::setrlimit(RLIMIT_NOFILE, &limit);
    (void)::getrlimit(RLIMIT_NOFILE, &limit);
  }
  const long budget = (static_cast<long>(limit.rlim_cur) - 256) / 2;
  return static_cast<int>(std::max(100L, budget));
}

}  // namespace

int main(int argc, char** argv) {
  benchharness::BenchSetup setup = benchharness::load_bench_setup();

  const std::string bench =
      util::env_string("REBERT_OVERLOAD_BENCH", "b07");
  const int requests = util::env_int("REBERT_OVERLOAD_REQUESTS", 60);
  const int clients =
      std::max(2, util::env_int("REBERT_OVERLOAD_CLIENTS", 8));
  const int max_inflight =
      std::max(1, util::env_int("REBERT_OVERLOAD_INFLIGHT", 2));
  const int forward_ms =
      std::max(1, util::env_int("REBERT_OVERLOAD_FORWARD_MS", 2));
  int connections = util::env_int("REBERT_OVERLOAD_CONNECTIONS", 0);
  for (int arg = 1; arg + 1 < argc; ++arg)
    if (std::strcmp(argv[arg], "--connections") == 0)
      connections = std::atoi(argv[arg + 1]);

  // Deterministic slowness: every forward sleeps forward_ms, so a handful
  // of clients reliably exceeds the admission budget on any host.
  runtime::FaultInjector::global().arm("model.forward", 1.0, 7, forward_ms);

  serve::EngineOptions options;
  options.num_threads = 2;
  options.suite_scale = setup.scale;
  options.experiment = setup.options;
  options.max_inflight = max_inflight;
  options.retry_after_ms = 5;
  serve::InferenceEngine engine(options);
  const std::vector<std::string> bits = engine.bit_names(bench);

  const std::string socket_path =
      "/tmp/rebert_overload_" + std::to_string(::getpid()) + ".sock";
  serve::ServeLoop loop(engine);
  // Shedding needs more concurrent dispatches than the admission budget;
  // the dispatch pool (not a thread per connection) is what bounds them.
  loop.set_dispatch_threads(std::max(16, clients + 4));
  std::thread server([&] { loop.run_unix_socket(socket_path); });
  serve::ClientPool pool(socket_path);

  std::printf("=== Serve overload: %s (scale %.2f), budget %d in-flight, "
              "%d ms/forward, %d request(s)/client ===\n",
              bench.c_str(), setup.scale, max_inflight, forward_ms,
              requests);
  util::TextTable table({"phase", "clients", "requests", "accepted", "shed",
                         "shed rate", "p50 (ms)", "p95 (ms)", "p95 / base",
                         "retries"});
  util::CsvWriter csv("serve_overload.csv",
                      {"phase", "clients", "requests", "accepted", "shed",
                       "shed_rate", "p50_ms", "p95_ms", "p95_over_unloaded",
                       "retries", "shed_with_retry_after", "errors"});

  struct Phase {
    const char* name;
    int clients;
    bool with_retry;
  };
  const Phase phases[] = {{"unloaded", 1, false},
                          {"overload", clients, false},
                          {"retry", clients, true}};
  double unloaded_p95 = 0.0;
  int failures = 0;
  for (const Phase& phase : phases) {
    const PhaseResult result = run_phase(pool, bench, bits, phase.clients,
                                         requests, phase.with_retry);
    if (unloaded_p95 == 0.0) unloaded_p95 = result.p95_ms;
    const double ratio =
        unloaded_p95 > 0.0 ? result.p95_ms / unloaded_p95 : 0.0;
    const double shed_rate =
        result.requests > 0
            ? static_cast<double>(result.shed) / result.requests
            : 0.0;
    table.add_row({phase.name, std::to_string(result.clients),
                   std::to_string(result.requests),
                   std::to_string(result.accepted),
                   std::to_string(result.shed),
                   util::format_double(shed_rate, 3),
                   util::format_double(result.p50_ms, 3),
                   util::format_double(result.p95_ms, 3),
                   util::format_double(ratio, 2) + "x",
                   std::to_string(result.retries)});
    csv.add_row({phase.name, std::to_string(result.clients),
                 std::to_string(result.requests),
                 std::to_string(result.accepted),
                 std::to_string(result.shed),
                 util::format_double(shed_rate, 4),
                 util::format_double(result.p50_ms, 4),
                 util::format_double(result.p95_ms, 4),
                 util::format_double(ratio, 3),
                 std::to_string(result.retries),
                 std::to_string(result.shed - result.bad_shed),
                 std::to_string(result.errors)});
    if (result.bad_shed > 0) {
      std::printf("FAIL: %d shed response(s) missing retry_after_ms\n",
                  result.bad_shed);
      ++failures;
    }
    if (result.errors > 0) {
      std::printf("FAIL: %d non-ok, non-overloaded response(s) in phase "
                  "%s\n", result.errors, phase.name);
      ++failures;
    }
  }

  if (connections > 0) {
    // The C10K sweep: hold an idle herd at each point, run active traffic
    // through it, and demand a flat thread count — the reactor plus the
    // dispatch pool serve 10k connections with exactly the threads they
    // serve 100 with.
    const int cap = max_idle_connections();
    if (connections > cap) {
      std::printf("note: --connections %d clamped to %d by RLIMIT_NOFILE\n",
                  connections, cap);
      connections = cap;
    }
    std::vector<int> sweep_counts;
    for (const int count : {100, 1000, connections})
      if (count <= connections &&
          (sweep_counts.empty() || count > sweep_counts.back()))
        sweep_counts.push_back(count);

    util::TextTable sweep_table({"idle conns", "threads", "rss (MiB)",
                                 "accepted", "shed", "p50 (ms)", "p95 (ms)",
                                 "p95 / base"});
    util::CsvWriter sweep_csv(
        "serve_c10k.csv", {"idle_connections", "threads", "rss_kb",
                           "accepted", "shed", "errors", "p50_ms", "p95_ms",
                           "p95_over_baseline"});
    int baseline_threads = 0;
    double baseline_p95 = 0.0;
    for (const int count : sweep_counts) {
      std::vector<int> idle = open_idle_connections(socket_path, count);
      // Active mix through the idle herd: a couple of clients, same
      // deterministic request stream as the unloaded phase.
      const PhaseResult active =
          run_phase(pool, bench, bits, 2, requests, /*with_retry=*/false);
      const int threads = runtime::current_thread_count();
      const long rss_kb = runtime::current_rss_kb();
      for (const int fd : idle) ::close(fd);
      if (baseline_threads == 0) baseline_threads = threads;
      if (baseline_p95 == 0.0) baseline_p95 = active.p95_ms;
      const double ratio =
          baseline_p95 > 0.0 ? active.p95_ms / baseline_p95 : 0.0;
      sweep_table.add_row(
          {std::to_string(idle.size()), std::to_string(threads),
           util::format_double(static_cast<double>(rss_kb) / 1024.0, 1),
           std::to_string(active.accepted), std::to_string(active.shed),
           util::format_double(active.p50_ms, 3),
           util::format_double(active.p95_ms, 3),
           util::format_double(ratio, 2) + "x"});
      sweep_csv.add_row(
          {std::to_string(idle.size()), std::to_string(threads),
           std::to_string(rss_kb), std::to_string(active.accepted),
           std::to_string(active.shed), std::to_string(active.errors),
           util::format_double(active.p50_ms, 4),
           util::format_double(active.p95_ms, 4),
           util::format_double(ratio, 3)});
      if (threads != baseline_threads) {
        std::printf("FAIL: thread count grew with connections "
                    "(%d at %d conns vs %d at baseline)\n",
                    threads, count, baseline_threads);
        ++failures;
      }
      if (active.errors > 0) {
        std::printf("FAIL: %d errored request(s) at %d idle connections\n",
                    active.errors, count);
        ++failures;
      }
      if (ratio > 5.0) {
        std::printf("FAIL: active p95 degraded %.1fx at %d idle "
                    "connections\n", ratio, count);
        ++failures;
      }
    }
    std::printf("=== C10K sweep: idle connections vs threads / p95 ===\n");
    sweep_table.print();
    std::printf("CSV: serve_c10k.csv\n");
  }

  loop.stop();
  server.join();
  // Read the stats before disarming — disarm_all resets the trip counter.
  const serve::EngineStats stats = engine.stats();
  runtime::FaultInjector::global().disarm_all();

  table.print();
  std::printf("CSV: serve_overload.csv\n");
  std::printf("engine: shed_requests=%llu faults_injected=%llu\n",
              static_cast<unsigned long long>(stats.shed_requests),
              static_cast<unsigned long long>(stats.faults_injected));
  std::printf("pool: created=%llu reused=%llu discarded=%llu idle=%zu\n",
              static_cast<unsigned long long>(pool.created()),
              static_cast<unsigned long long>(pool.reused()),
              static_cast<unsigned long long>(pool.discarded()),
              pool.idle());
  return failures == 0 ? 0 : 1;
}
