// Overload behaviour of the serving daemon — drives a socket server past
// its admission budget and reports what production cares about: shed rate,
// that every shed response carries a machine-readable retry_after_ms, and
// that the latency of *accepted* requests stays bounded (within ~2x of the
// unloaded p95) because excess load is refused at the door instead of
// queueing without bound.
//
// The model is made predictably slow with the fault injector's latency
// mode (model.forward armed at p=1.0 with a fixed delay), so the run is
// deterministic and does not depend on host speed to reach overload.
//
// Client connections come from a shared serve::ClientPool — the same
// bounded, EINTR-safe reuse layer the router's backend links use — so the
// bench also exercises (and reports) connection reuse under load.
//
// Extra knobs on top of the common ones (bench/common.h):
//   REBERT_OVERLOAD_BENCH       benchmark to serve          (default b07)
//   REBERT_OVERLOAD_REQUESTS    requests per client         (default 60)
//   REBERT_OVERLOAD_CLIENTS     overload client threads     (default 8)
//   REBERT_OVERLOAD_INFLIGHT    engine admission budget     (default 2)
//   REBERT_OVERLOAD_FORWARD_MS  injected forward latency    (default 2)
//
// Phases (one CSV row each):
//   unloaded  1 client, no contention — the latency baseline
//   overload  N clients, no retry — measures shedding + accepted latency
//   retry     N clients via Client::request_with_retry — goodput with the
//             deterministic capped backoff honouring retry_after_ms
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench/common.h"
#include "runtime/fault_injector.h"
#include "serve/client_pool.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/serve_loop.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/string_utils.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace rebert;

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1, static_cast<std::size_t>(p * sorted.size()));
  return sorted[index];
}

struct PhaseResult {
  int clients = 0;
  int requests = 0;       // issued
  int accepted = 0;       // answered `ok ...`
  int shed = 0;           // answered `err overloaded ...`
  int errors = 0;         // anything else (should stay 0)
  int bad_shed = 0;       // shed responses missing retry_after_ms
  std::uint64_t retries = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;    // accepted requests only
};

PhaseResult run_phase(serve::ClientPool& pool, const std::string& bench,
                      const std::vector<std::string>& bits, int clients,
                      int requests_per_client, bool with_retry) {
  PhaseResult result;
  result.clients = clients;
  result.requests = clients * requests_per_client;
  std::atomic<int> accepted{0}, shed{0}, errors{0}, bad_shed{0};
  const std::uint64_t retries_before = pool.retries();
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      util::Rng rng(0x0ffe12ULL + static_cast<std::uint64_t>(c));
      std::vector<double>& mine = latencies[static_cast<std::size_t>(c)];
      const int num_bits = static_cast<int>(bits.size());
      for (int r = 0; r < requests_per_client; ++r) {
        const std::string& a = bits[static_cast<std::size_t>(
            rng.uniform_int(0, num_bits - 1))];
        const std::string& b = bits[static_cast<std::size_t>(
            rng.uniform_int(0, num_bits - 1))];
        const std::string line = "score " + bench + " " + a + " " + b;
        util::WallTimer timer;
        serve::ClientPool::Lease lease = pool.acquire();
        if (!lease) {
          errors.fetch_add(1);
          continue;
        }
        std::string response;
        try {
          response = with_retry ? lease->request_with_retry(line)
                                : lease->request(line);
        } catch (const std::exception&) {
          lease.discard();
          errors.fetch_add(1);
          continue;
        }
        const double seconds = timer.seconds();
        if (util::starts_with(response, "ok ")) {
          accepted.fetch_add(1);
          mine.push_back(seconds);
        } else if (util::starts_with(response, "err overloaded")) {
          shed.fetch_add(1);
          if (serve::parse_retry_after_ms(response) < 0)
            bad_shed.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  result.accepted = accepted.load();
  result.shed = shed.load();
  result.errors = errors.load();
  result.bad_shed = bad_shed.load();
  // Leases were all returned at join, so the pool-level aggregate is
  // complete for this phase.
  result.retries = pool.retries() - retries_before;
  std::vector<double> all;
  for (const std::vector<double>& client : latencies)
    all.insert(all.end(), client.begin(), client.end());
  std::sort(all.begin(), all.end());
  result.p50_ms = 1000.0 * percentile(all, 0.50);
  result.p95_ms = 1000.0 * percentile(all, 0.95);
  return result;
}

}  // namespace

int main() {
  benchharness::BenchSetup setup = benchharness::load_bench_setup();

  const std::string bench =
      util::env_string("REBERT_OVERLOAD_BENCH", "b07");
  const int requests = util::env_int("REBERT_OVERLOAD_REQUESTS", 60);
  const int clients =
      std::max(2, util::env_int("REBERT_OVERLOAD_CLIENTS", 8));
  const int max_inflight =
      std::max(1, util::env_int("REBERT_OVERLOAD_INFLIGHT", 2));
  const int forward_ms =
      std::max(1, util::env_int("REBERT_OVERLOAD_FORWARD_MS", 2));

  // Deterministic slowness: every forward sleeps forward_ms, so a handful
  // of clients reliably exceeds the admission budget on any host.
  runtime::FaultInjector::global().arm("model.forward", 1.0, 7, forward_ms);

  serve::EngineOptions options;
  options.num_threads = 2;
  options.suite_scale = setup.scale;
  options.experiment = setup.options;
  options.max_inflight = max_inflight;
  options.retry_after_ms = 5;
  serve::InferenceEngine engine(options);
  const std::vector<std::string> bits = engine.bit_names(bench);

  const std::string socket_path =
      "/tmp/rebert_overload_" + std::to_string(::getpid()) + ".sock";
  serve::ServeLoop loop(engine);
  std::thread server([&] { loop.run_unix_socket(socket_path); });
  serve::ClientPool pool(socket_path);

  std::printf("=== Serve overload: %s (scale %.2f), budget %d in-flight, "
              "%d ms/forward, %d request(s)/client ===\n",
              bench.c_str(), setup.scale, max_inflight, forward_ms,
              requests);
  util::TextTable table({"phase", "clients", "requests", "accepted", "shed",
                         "shed rate", "p50 (ms)", "p95 (ms)", "p95 / base",
                         "retries"});
  util::CsvWriter csv("serve_overload.csv",
                      {"phase", "clients", "requests", "accepted", "shed",
                       "shed_rate", "p50_ms", "p95_ms", "p95_over_unloaded",
                       "retries", "shed_with_retry_after", "errors"});

  struct Phase {
    const char* name;
    int clients;
    bool with_retry;
  };
  const Phase phases[] = {{"unloaded", 1, false},
                          {"overload", clients, false},
                          {"retry", clients, true}};
  double unloaded_p95 = 0.0;
  int failures = 0;
  for (const Phase& phase : phases) {
    const PhaseResult result = run_phase(pool, bench, bits, phase.clients,
                                         requests, phase.with_retry);
    if (unloaded_p95 == 0.0) unloaded_p95 = result.p95_ms;
    const double ratio =
        unloaded_p95 > 0.0 ? result.p95_ms / unloaded_p95 : 0.0;
    const double shed_rate =
        result.requests > 0
            ? static_cast<double>(result.shed) / result.requests
            : 0.0;
    table.add_row({phase.name, std::to_string(result.clients),
                   std::to_string(result.requests),
                   std::to_string(result.accepted),
                   std::to_string(result.shed),
                   util::format_double(shed_rate, 3),
                   util::format_double(result.p50_ms, 3),
                   util::format_double(result.p95_ms, 3),
                   util::format_double(ratio, 2) + "x",
                   std::to_string(result.retries)});
    csv.add_row({phase.name, std::to_string(result.clients),
                 std::to_string(result.requests),
                 std::to_string(result.accepted),
                 std::to_string(result.shed),
                 util::format_double(shed_rate, 4),
                 util::format_double(result.p50_ms, 4),
                 util::format_double(result.p95_ms, 4),
                 util::format_double(ratio, 3),
                 std::to_string(result.retries),
                 std::to_string(result.shed - result.bad_shed),
                 std::to_string(result.errors)});
    if (result.bad_shed > 0) {
      std::printf("FAIL: %d shed response(s) missing retry_after_ms\n",
                  result.bad_shed);
      ++failures;
    }
    if (result.errors > 0) {
      std::printf("FAIL: %d non-ok, non-overloaded response(s) in phase "
                  "%s\n", result.errors, phase.name);
      ++failures;
    }
  }
  loop.stop();
  server.join();
  // Read the stats before disarming — disarm_all resets the trip counter.
  const serve::EngineStats stats = engine.stats();
  runtime::FaultInjector::global().disarm_all();

  table.print();
  std::printf("CSV: serve_overload.csv\n");
  std::printf("engine: shed_requests=%llu faults_injected=%llu\n",
              static_cast<unsigned long long>(stats.shed_requests),
              static_cast<unsigned long long>(stats.faults_injected));
  std::printf("pool: created=%llu reused=%llu discarded=%llu idle=%zu\n",
              static_cast<unsigned long long>(pool.created()),
              static_cast<unsigned long long>(pool.reused()),
              static_cast<unsigned long long>(pool.discarded()),
              pool.idle());
  return failures == 0 ? 0 : 1;
}
