// Warm-start serving: QPS of a cold engine vs one restarted onto an RBPC
// cache snapshot (persist/snapshot.h), over the same score workload. The
// headline numbers for the persistence layer: snapshot save/load wall
// time, warm-start speedup, and the warm run's cache hit rate (which the
// acceptance bar requires to be >= 0.90 on a repeated workload).
//
// Extra knobs on top of the common ones (bench/common.h):
//   REBERT_SERVE_BENCH     benchmark to serve           (default b07)
//   REBERT_SERVE_REQUESTS  score requests per run       (default 400)
//   REBERT_WARM_THREADS    engine threads               (default 4)
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "serve/engine.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct RunResult {
  double qps = 0.0;
  double seconds = 0.0;
  double hit_rate = 0.0;
  std::size_t warm_entries = 0;
};

}  // namespace

int main() {
  using namespace rebert;
  benchharness::BenchSetup setup = benchharness::load_bench_setup();

  const std::string bench = util::env_string("REBERT_SERVE_BENCH", "b07");
  const int requests = util::env_int("REBERT_SERVE_REQUESTS", 400);
  const int threads = util::env_int("REBERT_WARM_THREADS", 4);
  const std::string snapshot = "serve_warm_start.rbpc";

  std::printf("=== Warm-start serving: %s (scale %.2f), %d requests, "
              "%d thread(s) ===\n",
              bench.c_str(), setup.scale, requests, threads);

  serve::EngineOptions options;
  options.num_threads = threads;
  options.suite_scale = setup.scale;
  options.experiment = setup.options;

  // The workload: a fixed seeded list of random bit pairs, so the cold and
  // warm runs (in separate engines) score exactly the same requests.
  std::vector<std::pair<std::string, std::string>> workload;
  {
    serve::InferenceEngine probe(options);
    const std::vector<std::string> bits = probe.bit_names(bench);
    util::Rng rng(setup.options.dataset.seed);
    const int n = static_cast<int>(bits.size());
    workload.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
      const auto a = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      const auto b = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      workload.emplace_back(bits[a], bits[b]);
    }
  }

  auto run = [&](serve::InferenceEngine& engine) {
    RunResult result;
    util::WallTimer timer;
    (void)engine.score_batch(bench, workload);
    result.seconds = timer.seconds();
    result.qps = requests / result.seconds;
    const serve::EngineStats stats = engine.stats();
    const std::uint64_t lookups = stats.cache_hits + stats.cache_misses;
    result.hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(stats.cache_hits) / lookups;
    result.warm_entries = stats.warm_entries;
    return result;
  };

  // Cold run: empty cache, every unique pair costs a model forward.
  serve::InferenceEngine cold(options);
  (void)cold.warm(bench);  // preload the netlist so timing is pure scoring
  const RunResult cold_run = run(cold);

  util::WallTimer save_timer;
  cold.save_cache(snapshot);
  const double save_s = save_timer.seconds();

  // Warm run: a fresh engine (the restart) loads the snapshot first.
  serve::InferenceEngine warm(options);
  (void)warm.warm(bench);
  util::WallTimer load_timer;
  const std::size_t warmed = warm.load_cache(snapshot);
  const double load_s = load_timer.seconds();
  const RunResult warm_run = run(warm);

  util::TextTable table(
      {"run", "qps", "seconds", "hit rate", "warm entries", "speedup"});
  util::CsvWriter csv("serve_warm_start.csv",
                      {"run", "qps", "seconds", "hit_rate", "warm_entries",
                       "speedup"});
  const double speedup = warm_run.qps / cold_run.qps;
  table.add_row({"cold", util::format_double(cold_run.qps, 1),
                 util::format_double(cold_run.seconds, 3),
                 util::format_double(cold_run.hit_rate, 3), "0", "1.00"});
  table.add_row({"warm", util::format_double(warm_run.qps, 1),
                 util::format_double(warm_run.seconds, 3),
                 util::format_double(warm_run.hit_rate, 3),
                 std::to_string(warm_run.warm_entries),
                 util::format_double(speedup, 2)});
  csv.add_row({"cold", util::format_double(cold_run.qps, 1),
               util::format_double(cold_run.seconds, 3),
               util::format_double(cold_run.hit_rate, 3), "0", "1.00"});
  csv.add_row({"warm", util::format_double(warm_run.qps, 1),
               util::format_double(warm_run.seconds, 3),
               util::format_double(warm_run.hit_rate, 3),
               std::to_string(warm_run.warm_entries),
               util::format_double(speedup, 2)});
  table.print();

  std::printf("snapshot: %zu entries, save %.1f ms, load %.1f ms (%s)\n",
              warmed, save_s * 1e3, load_s * 1e3, snapshot.c_str());
  if (warm_run.hit_rate < 0.90)
    std::printf("WARNING: warm hit rate %.3f below the 0.90 acceptance "
                "bar\n",
                warm_run.hit_rate);
  std::printf("wrote serve_warm_start.csv\n");
  return 0;
}
