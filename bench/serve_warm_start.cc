// Warm-start serving: QPS of a cold engine vs one restarted onto an RBPC
// cache snapshot (persist/snapshot.h), over the same score workload. The
// headline numbers for the persistence layer: snapshot save/load wall
// time, warm-start speedup, and the warm run's cache hit rate (which the
// acceptance bar requires to be >= 0.90 on a repeated workload).
//
// Extra knobs on top of the common ones (bench/common.h):
//   REBERT_SERVE_BENCH     benchmark to serve           (default b07)
//   REBERT_SERVE_REQUESTS  score requests per run       (default 400)
//   REBERT_WARM_THREADS    engine threads               (default 4)
//   REBERT_WARM_MMAP_MAX   largest synthetic snapshot for the
//                          mmap-vs-stream table          (default 1000000)
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "persist/cache_io.h"
#include "persist/mmap_snapshot.h"
#include "persist/snapshot.h"
#include "rebert/prediction_cache.h"
#include "serve/engine.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct RunResult {
  double qps = 0.0;
  double seconds = 0.0;
  double hit_rate = 0.0;
  std::size_t warm_entries = 0;
};

}  // namespace

int main() {
  using namespace rebert;
  benchharness::BenchSetup setup = benchharness::load_bench_setup();

  const std::string bench = util::env_string("REBERT_SERVE_BENCH", "b07");
  const int requests = util::env_int("REBERT_SERVE_REQUESTS", 400);
  const int threads = util::env_int("REBERT_WARM_THREADS", 4);
  const std::string snapshot = "serve_warm_start.rbpc";

  std::printf("=== Warm-start serving: %s (scale %.2f), %d requests, "
              "%d thread(s) ===\n",
              bench.c_str(), setup.scale, requests, threads);

  serve::EngineOptions options;
  options.num_threads = threads;
  options.suite_scale = setup.scale;
  options.experiment = setup.options;

  // The workload: a fixed seeded list of random bit pairs, so the cold and
  // warm runs (in separate engines) score exactly the same requests.
  std::vector<std::pair<std::string, std::string>> workload;
  {
    serve::InferenceEngine probe(options);
    const std::vector<std::string> bits = probe.bit_names(bench);
    util::Rng rng(setup.options.dataset.seed);
    const int n = static_cast<int>(bits.size());
    workload.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
      const auto a = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      const auto b = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      workload.emplace_back(bits[a], bits[b]);
    }
  }

  auto run = [&](serve::InferenceEngine& engine) {
    RunResult result;
    util::WallTimer timer;
    (void)engine.score_batch(bench, workload);
    result.seconds = timer.seconds();
    result.qps = requests / result.seconds;
    const serve::EngineStats stats = engine.stats();
    const std::uint64_t lookups = stats.cache_hits + stats.cache_misses;
    result.hit_rate =
        lookups == 0 ? 0.0
                     : static_cast<double>(stats.cache_hits) / lookups;
    result.warm_entries = stats.warm_entries;
    return result;
  };

  // Cold run: empty cache, every unique pair costs a model forward.
  serve::InferenceEngine cold(options);
  (void)cold.warm(bench);  // preload the netlist so timing is pure scoring
  const RunResult cold_run = run(cold);

  util::WallTimer save_timer;
  cold.save_cache(snapshot);
  const double save_s = save_timer.seconds();

  // Warm run: a fresh engine (the restart) loads the snapshot first.
  serve::InferenceEngine warm(options);
  (void)warm.warm(bench);
  util::WallTimer load_timer;
  const std::size_t warmed = warm.load_cache(snapshot);
  const double load_s = load_timer.seconds();
  const RunResult warm_run = run(warm);

  util::TextTable table(
      {"run", "qps", "seconds", "hit rate", "warm entries", "speedup"});
  util::CsvWriter csv("serve_warm_start.csv",
                      {"run", "qps", "seconds", "hit_rate", "warm_entries",
                       "speedup"});
  const double speedup = warm_run.qps / cold_run.qps;
  table.add_row({"cold", util::format_double(cold_run.qps, 1),
                 util::format_double(cold_run.seconds, 3),
                 util::format_double(cold_run.hit_rate, 3), "0", "1.00"});
  table.add_row({"warm", util::format_double(warm_run.qps, 1),
                 util::format_double(warm_run.seconds, 3),
                 util::format_double(warm_run.hit_rate, 3),
                 std::to_string(warm_run.warm_entries),
                 util::format_double(speedup, 2)});
  csv.add_row({"cold", util::format_double(cold_run.qps, 1),
               util::format_double(cold_run.seconds, 3),
               util::format_double(cold_run.hit_rate, 3), "0", "1.00"});
  csv.add_row({"warm", util::format_double(warm_run.qps, 1),
               util::format_double(warm_run.seconds, 3),
               util::format_double(warm_run.hit_rate, 3),
               std::to_string(warm_run.warm_entries),
               util::format_double(speedup, 2)});
  table.print();

  std::printf("snapshot: %zu entries, save %.1f ms, load %.1f ms (%s)\n",
              warmed, save_s * 1e3, load_s * 1e3, snapshot.c_str());
  if (warm_run.hit_rate < 0.90)
    std::printf("WARNING: warm hit rate %.3f below the 0.90 acceptance "
                "bar\n",
                warm_run.hit_rate);

  // Restart-to-warm latency, the tentpole number for the mmap artifact
  // layer: the same synthetic snapshot saved as v1 (stream-parsed and
  // imported record by record) and as v2 (header+checksum validated, then
  // served straight off the mapping). Acceptance: >= 10x at the largest
  // size. Timing is warm_start_cache() end to end — what a respawned
  // backend actually pays before it can answer.
  const std::size_t mmap_max = static_cast<std::size_t>(
      util::env_int("REBERT_WARM_MMAP_MAX", 1000000));
  std::printf("\n=== Warm-start load: v1 stream parse vs v2 mmap ===\n");
  util::TextTable mmap_table(
      {"records", "v1 stream ms", "v2 mmap ms", "speedup"});
  util::CsvWriter mmap_csv(
      "serve_warm_start_mmap.csv",
      {"records", "v1_stream_ms", "v2_mmap_ms", "speedup"});
  for (std::size_t count = 10000; count <= mmap_max; count *= 10) {
    std::vector<persist::CacheRecord> records;
    records.reserve(count);
    util::Rng rng(0xC0FFEEULL + count);
    for (std::size_t i = 0; i < count; ++i)
      records.emplace_back(i * 2654435761ULL + 17, rng.uniform(0.0, 1.0));
    const std::string v1_path = "serve_warm_start_v1.rbpc";
    const std::string v2_path = "serve_warm_start_v2.rbpc";
    persist::save_snapshot(records, v1_path);
    persist::save_snapshot_v2(records, v2_path);
    // Best of three: the first mmap load pays page-cache warmup for both.
    double v1_ms = 1e18;
    double v2_ms = 1e18;
    for (int rep = 0; rep < 3; ++rep) {
      {
        core::ShardedPredictionCache cache;
        util::WallTimer t;
        (void)persist::warm_start_cache(&cache, v1_path);
        v1_ms = std::min(v1_ms, t.seconds() * 1e3);
      }
      {
        core::ShardedPredictionCache cache;
        util::WallTimer t;
        (void)persist::warm_start_cache(&cache, v2_path);
        v2_ms = std::min(v2_ms, t.seconds() * 1e3);
      }
    }
    const double mmap_speedup = v1_ms / std::max(v2_ms, 1e-6);
    mmap_table.add_row({std::to_string(count),
                        util::format_double(v1_ms, 3),
                        util::format_double(v2_ms, 3),
                        util::format_double(mmap_speedup, 1)});
    mmap_csv.add_row({std::to_string(count),
                      util::format_double(v1_ms, 3),
                      util::format_double(v2_ms, 3),
                      util::format_double(mmap_speedup, 1)});
    std::remove(v1_path.c_str());
    std::remove(v2_path.c_str());
  }
  mmap_table.print();

  std::printf("wrote serve_warm_start.csv, serve_warm_start_mmap.csv\n");
  return 0;
}
