// Microbenchmarks (google-benchmark) of the kernels the pipeline spends
// its time in: tokenization, Jaccard filtering, attention forward, GEMM,
// ARI, corruption, structural matching — plus the per-backend kernel
// rows (GEMM GFLOP/s, fused softmax/LayerNorm/GELU) introduced with the
// dispatched kernel subsystem (src/kernels).
//
// Besides the usual google-benchmark console output, the binary writes a
// machine-readable summary to BENCH_kernels.json (override the path with
// REBERT_BENCH_KERNELS_JSON; set it empty to skip): per-backend GEMM
// GFLOP/s, fused-op element rates, and cold-cache serve score latencies
// (p50/p95, every request a cache miss) so CI can diff backends run over
// run. Acceptance for the AVX2 backend: >= 4x scalar GEMM GFLOP/s.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bert/attention.h"
#include "bert/model.h"
#include "circuitgen/suite.h"
#include "kernels/backend.h"
#include "kernels/kernels.h"
#include "metrics/clustering.h"
#include "nl/corruption.h"
#include "rebert/filter.h"
#include "rebert/tokenizer.h"
#include "serve/engine.h"
#include "structural/matching.h"
#include "tensor/ops.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace rebert;

const gen::GeneratedCircuit& circuit_b05() {
  static const gen::GeneratedCircuit circuit =
      gen::generate_benchmark("b05");
  return circuit;
}

void BM_TokenizeBit(benchmark::State& state) {
  const auto& circuit = circuit_b05();
  const core::Tokenizer tokenizer(
      {.backtrace_depth = static_cast<int>(state.range(0)),
       .tree_code_dim = 16,
       .max_seq_len = 512});
  const auto bits = nl::extract_bits(circuit.netlist);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tokenizer.tokenize_net(circuit.netlist, bits[i % bits.size()].d_net));
    ++i;
  }
}
BENCHMARK(BM_TokenizeBit)->Arg(4)->Arg(6)->Arg(8);

void BM_JaccardFilter(benchmark::State& state) {
  const auto& circuit = circuit_b05();
  const core::Tokenizer tokenizer(
      {.backtrace_depth = 6, .tree_code_dim = 16, .max_seq_len = 512});
  const auto sequences = tokenizer.tokenize_bits(circuit.netlist);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = sequences[i % sequences.size()];
    const auto& b = sequences[(i + 7) % sequences.size()];
    benchmark::DoNotOptimize(
        core::jaccard_similarity(a.token_ids, b.token_ids));
    ++i;
  }
}
BENCHMARK(BM_JaccardFilter);

void BM_AttentionForward(benchmark::State& state) {
  bert::BertConfig config;
  config.hidden = 64;
  config.num_heads = 4;
  config.max_seq_len = 512;
  config.tree_code_dim = 16;
  util::Rng rng(1);
  bert::MultiHeadSelfAttention attention("bench", config, rng);
  const tensor::Tensor x =
      tensor::Tensor::randn({static_cast<int>(state.range(0)), 64}, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(attention.forward(x, nullptr));
}
BENCHMARK(BM_AttentionForward)->Arg(32)->Arg(64)->Arg(128);

void BM_Matmul(benchmark::State& state) {
  util::Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(tensor::matmul(a, b));
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(n) *
                          n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

// ---- per-backend kernel rows -----------------------------------------
//
// These go through table_for(backend) directly, so one run shows every
// backend the host supports side by side regardless of REBERT_KERNELS.

void BM_KernelGemm(benchmark::State& state,
                   kernels::Backend backend) {
  const kernels::KernelTable& table = kernels::table_for(backend);
  util::Rng rng(11);
  const int n = static_cast<int>(state.range(0));
  const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor c({n, n});
  for (auto _ : state) {
    table.gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * n * n * n * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void BM_KernelSoftmaxRows(benchmark::State& state,
                          kernels::Backend backend) {
  const kernels::KernelTable& table = kernels::table_for(backend);
  util::Rng rng(12);
  const int rows = 128, cols = static_cast<int>(state.range(0));
  const tensor::Tensor x = tensor::Tensor::randn({rows, cols}, rng, 3.0f);
  tensor::Tensor y = x;
  for (auto _ : state) {
    std::copy(x.data(), x.data() + x.numel(), y.data());
    table.softmax_rows(y.data(), rows, cols);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}

void BM_KernelLayerNorm(benchmark::State& state,
                        kernels::Backend backend) {
  const kernels::KernelTable& table = kernels::table_for(backend);
  util::Rng rng(13);
  const int rows = 128, cols = static_cast<int>(state.range(0));
  const tensor::Tensor x = tensor::Tensor::randn({rows, cols}, rng);
  const tensor::Tensor gamma = tensor::Tensor::full({cols}, 1.0f);
  const tensor::Tensor beta = tensor::Tensor::zeros({cols});
  tensor::Tensor y({rows, cols});
  for (auto _ : state) {
    table.layer_norm(x.data(), gamma.data(), beta.data(), 1e-5f, rows,
                     cols, y.data(), nullptr, nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}

void BM_KernelGelu(benchmark::State& state, kernels::Backend backend) {
  const kernels::KernelTable& table = kernels::table_for(backend);
  util::Rng rng(14);
  const int n = static_cast<int>(state.range(0));
  const tensor::Tensor x = tensor::Tensor::randn({n}, rng, 2.0f);
  tensor::Tensor y({n});
  for (auto _ : state) {
    table.gelu(x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void register_backend_benchmarks() {
  for (kernels::Backend backend :
       {kernels::Backend::kScalar, kernels::Backend::kAvx2}) {
    if (!kernels::backend_available(backend)) continue;
    const std::string suffix = kernels::backend_name(backend);
    benchmark::RegisterBenchmark(("BM_KernelGemm/" + suffix).c_str(),
                                 BM_KernelGemm, backend)
        ->Arg(64)->Arg(128)->Arg(256);
    benchmark::RegisterBenchmark(
        ("BM_KernelSoftmaxRows/" + suffix).c_str(), BM_KernelSoftmaxRows,
        backend)
        ->Arg(128)->Arg(512);
    benchmark::RegisterBenchmark(("BM_KernelLayerNorm/" + suffix).c_str(),
                                 BM_KernelLayerNorm, backend)
        ->Arg(64)->Arg(256);
    benchmark::RegisterBenchmark(("BM_KernelGelu/" + suffix).c_str(),
                                 BM_KernelGelu, backend)
        ->Arg(1 << 14);
  }
}

void BM_PairPrediction(benchmark::State& state) {
  const auto& circuit = circuit_b05();
  const core::Tokenizer tokenizer(
      {.backtrace_depth = 6, .tree_code_dim = 16, .max_seq_len = 256});
  const auto sequences = tokenizer.tokenize_bits(circuit.netlist);
  bert::BertConfig config = bert::eval_config(32, 256);
  config.tree_code_dim = 16;
  bert::BertPairClassifier model(config);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto pair = tokenizer.encode_pair(
        sequences[i % sequences.size()],
        sequences[(i + 3) % sequences.size()]);
    benchmark::DoNotOptimize(model.predict_same_word_probability(pair));
    ++i;
  }
}
BENCHMARK(BM_PairPrediction);

void BM_AdjustedRandIndex(benchmark::State& state) {
  util::Rng rng(3);
  const int n = static_cast<int>(state.range(0));
  std::vector<int> truth(static_cast<std::size_t>(n)),
      predicted(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    truth[static_cast<std::size_t>(i)] = i / 8;
    predicted[static_cast<std::size_t>(i)] = rng.uniform_int(0, n / 8);
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(metrics::adjusted_rand_index(truth, predicted));
}
BENCHMARK(BM_AdjustedRandIndex)->Arg(100)->Arg(1000);

void BM_CorruptNetlist(benchmark::State& state) {
  const auto& circuit = circuit_b05();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nl::corrupt_netlist(
        circuit.netlist, {.r_index = 0.5, .seed = seed++}));
  }
}
BENCHMARK(BM_CorruptNetlist);

void BM_StructuralRecovery(benchmark::State& state) {
  const auto& circuit = circuit_b05();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        structural::recover_words_structural(circuit.netlist));
}
BENCHMARK(BM_StructuralRecovery);

// ---- BENCH_kernels.json ----------------------------------------------

/// Times fn() repeatedly for ~min_seconds and returns seconds per call.
double time_per_call(const std::function<void()>& fn,
                     double min_seconds = 0.1) {
  fn();  // warm up (page in, grow the arena)
  int iters = 1;
  for (;;) {
    util::WallTimer timer;
    for (int i = 0; i < iters; ++i) fn();
    const double elapsed = timer.seconds();
    if (elapsed >= min_seconds) return elapsed / iters;
    iters = elapsed > 0.0
                ? static_cast<int>(iters * std::max(
                      2.0, 1.2 * min_seconds / elapsed))
                : iters * 16;
  }
}

struct GemmPoint {
  int n = 0;
  double gflops = 0.0;
};

struct BackendReport {
  std::string name;
  std::vector<GemmPoint> gemm;
  double softmax_rows_per_s = 0.0;    // 128x512 rows
  double layer_norm_rows_per_s = 0.0; // 128x256 rows
  double gelu_elems_per_s = 0.0;      // 16k elements
  double serve_p50_ms = 0.0;          // cold-cache score latency
  double serve_p95_ms = 0.0;
};

BackendReport measure_backend(kernels::Backend backend) {
  const kernels::KernelTable& table = kernels::table_for(backend);
  BackendReport report;
  report.name = kernels::backend_name(backend);
  util::Rng rng(31);

  for (const int n : {64, 128, 256}) {
    const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
    const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
    tensor::Tensor c({n, n});
    const double seconds = time_per_call(
        [&] { table.gemm(a.data(), b.data(), c.data(), n, n, n); });
    report.gemm.push_back(
        {n, 2.0 * n * n * n / seconds / 1e9});
  }
  {
    const int rows = 128, cols = 512;
    const tensor::Tensor x = tensor::Tensor::randn({rows, cols}, rng, 3.0f);
    tensor::Tensor y = x;
    const double seconds = time_per_call([&] {
      std::copy(x.data(), x.data() + x.numel(), y.data());
      table.softmax_rows(y.data(), rows, cols);
    });
    report.softmax_rows_per_s = rows / seconds;
  }
  {
    const int rows = 128, cols = 256;
    const tensor::Tensor x = tensor::Tensor::randn({rows, cols}, rng);
    const tensor::Tensor gamma = tensor::Tensor::full({cols}, 1.0f);
    const tensor::Tensor beta = tensor::Tensor::zeros({cols});
    tensor::Tensor y({rows, cols});
    const double seconds = time_per_call([&] {
      table.layer_norm(x.data(), gamma.data(), beta.data(), 1e-5f, rows,
                       cols, y.data(), nullptr, nullptr);
    });
    report.layer_norm_rows_per_s = rows / seconds;
  }
  {
    const int n = 1 << 14;
    const tensor::Tensor x = tensor::Tensor::randn({n}, rng, 2.0f);
    tensor::Tensor y({n});
    const double seconds =
        time_per_call([&] { table.gelu(x.data(), y.data(), n); });
    report.gelu_elems_per_s = n / seconds;
  }
  return report;
}

/// Cold-cache serve latency: a fresh engine per backend with the
/// prediction cache disabled, so every score is a full model forward.
/// (Name-distinct pairs are not enough — symmetric circuits tokenize
/// identical bits to identical sequences, which share a cache key.) This
/// is the p50/p95 a cold replica shows right after (re)start, before the
/// warm tier or the request mix fills the cache.
void measure_serve(kernels::Backend backend, BackendReport* report) {
  kernels::set_backend(backend);
  serve::EngineOptions options;
  options.num_threads = 1;
  options.suite_scale = 0.25;
  options.experiment.pipeline.use_prediction_cache = false;
  serve::InferenceEngine engine(options);
  const std::string bench = "b03";
  const int num_bits = engine.warm(bench);
  const std::vector<std::string> bits = engine.bit_names(bench);
  std::vector<double> latencies;
  const int target = 60;
  for (int i = 0; i < num_bits && static_cast<int>(latencies.size()) <
                                     target; ++i) {
    for (int j = i + 1; j < num_bits && static_cast<int>(
                            latencies.size()) < target; ++j) {
      util::WallTimer timer;
      engine.score(bench, bits[static_cast<std::size_t>(i)],
                   bits[static_cast<std::size_t>(j)]);
      latencies.push_back(timer.seconds());
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double p) {
    const std::size_t index = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(p * latencies.size()));
    return 1000.0 * latencies[index];
  };
  report->serve_p50_ms = pct(0.50);
  report->serve_p95_ms = pct(0.95);
}

void write_kernels_json() {
  const std::string path = util::env_string("REBERT_BENCH_KERNELS_JSON",
                                            "BENCH_kernels.json");
  if (path.empty()) return;
  std::vector<BackendReport> reports;
  for (kernels::Backend backend :
       {kernels::Backend::kScalar, kernels::Backend::kAvx2}) {
    if (!kernels::backend_available(backend)) continue;
    BackendReport report = measure_backend(backend);
    measure_serve(backend, &report);
    reports.push_back(std::move(report));
  }
  // Restore auto-dispatch after the per-backend serve runs.
  kernels::set_backend(kernels::avx2_available()
                           ? kernels::Backend::kAvx2
                           : kernels::Backend::kScalar);

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "micro_kernels: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"backends\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const BackendReport& r = reports[i];
    std::fprintf(out, "    {\n      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(out, "      \"gemm_gflops\": {");
    for (std::size_t g = 0; g < r.gemm.size(); ++g)
      std::fprintf(out, "%s\"%d\": %.2f", g ? ", " : "", r.gemm[g].n,
                   r.gemm[g].gflops);
    std::fprintf(out, "},\n");
    std::fprintf(out, "      \"softmax_rows_per_s\": %.0f,\n",
                 r.softmax_rows_per_s);
    std::fprintf(out, "      \"layer_norm_rows_per_s\": %.0f,\n",
                 r.layer_norm_rows_per_s);
    std::fprintf(out, "      \"gelu_elems_per_s\": %.0f,\n",
                 r.gelu_elems_per_s);
    std::fprintf(out, "      \"serve_cold_p50_ms\": %.3f,\n",
                 r.serve_p50_ms);
    std::fprintf(out, "      \"serve_cold_p95_ms\": %.3f\n",
                 r.serve_p95_ms);
    std::fprintf(out, "    }%s\n", i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("micro_kernels: wrote %s\n", path.c_str());
  for (const BackendReport& r : reports)
    std::printf(
        "  %-6s gemm256 %7.2f GFLOP/s  serve cold p50 %.2fms p95 %.2fms\n",
        r.name.c_str(), r.gemm.back().gflops, r.serve_p50_ms,
        r.serve_p95_ms);
}

}  // namespace

int main(int argc, char** argv) {
  register_backend_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_kernels_json();
  return 0;
}
