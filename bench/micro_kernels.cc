// Microbenchmarks (google-benchmark) of the kernels the pipeline spends
// its time in: tokenization, Jaccard filtering, attention forward, GEMM,
// ARI, corruption, structural matching.
#include <benchmark/benchmark.h>

#include "bert/attention.h"
#include "bert/model.h"
#include "circuitgen/suite.h"
#include "metrics/clustering.h"
#include "nl/corruption.h"
#include "rebert/filter.h"
#include "rebert/tokenizer.h"
#include "structural/matching.h"
#include "tensor/ops.h"

namespace {

using namespace rebert;

const gen::GeneratedCircuit& circuit_b05() {
  static const gen::GeneratedCircuit circuit =
      gen::generate_benchmark("b05");
  return circuit;
}

void BM_TokenizeBit(benchmark::State& state) {
  const auto& circuit = circuit_b05();
  const core::Tokenizer tokenizer(
      {.backtrace_depth = static_cast<int>(state.range(0)),
       .tree_code_dim = 16,
       .max_seq_len = 512});
  const auto bits = nl::extract_bits(circuit.netlist);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tokenizer.tokenize_net(circuit.netlist, bits[i % bits.size()].d_net));
    ++i;
  }
}
BENCHMARK(BM_TokenizeBit)->Arg(4)->Arg(6)->Arg(8);

void BM_JaccardFilter(benchmark::State& state) {
  const auto& circuit = circuit_b05();
  const core::Tokenizer tokenizer(
      {.backtrace_depth = 6, .tree_code_dim = 16, .max_seq_len = 512});
  const auto sequences = tokenizer.tokenize_bits(circuit.netlist);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = sequences[i % sequences.size()];
    const auto& b = sequences[(i + 7) % sequences.size()];
    benchmark::DoNotOptimize(
        core::jaccard_similarity(a.token_ids, b.token_ids));
    ++i;
  }
}
BENCHMARK(BM_JaccardFilter);

void BM_AttentionForward(benchmark::State& state) {
  bert::BertConfig config;
  config.hidden = 64;
  config.num_heads = 4;
  config.max_seq_len = 512;
  config.tree_code_dim = 16;
  util::Rng rng(1);
  bert::MultiHeadSelfAttention attention("bench", config, rng);
  const tensor::Tensor x =
      tensor::Tensor::randn({static_cast<int>(state.range(0)), 64}, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(attention.forward(x, nullptr));
}
BENCHMARK(BM_AttentionForward)->Arg(32)->Arg(64)->Arg(128);

void BM_Matmul(benchmark::State& state) {
  util::Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  const tensor::Tensor a = tensor::Tensor::randn({n, n}, rng);
  const tensor::Tensor b = tensor::Tensor::randn({n, n}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(tensor::matmul(a, b));
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(n) *
                          n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_PairPrediction(benchmark::State& state) {
  const auto& circuit = circuit_b05();
  const core::Tokenizer tokenizer(
      {.backtrace_depth = 6, .tree_code_dim = 16, .max_seq_len = 256});
  const auto sequences = tokenizer.tokenize_bits(circuit.netlist);
  bert::BertConfig config = bert::eval_config(32, 256);
  config.tree_code_dim = 16;
  bert::BertPairClassifier model(config);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto pair = tokenizer.encode_pair(
        sequences[i % sequences.size()],
        sequences[(i + 3) % sequences.size()]);
    benchmark::DoNotOptimize(model.predict_same_word_probability(pair));
    ++i;
  }
}
BENCHMARK(BM_PairPrediction);

void BM_AdjustedRandIndex(benchmark::State& state) {
  util::Rng rng(3);
  const int n = static_cast<int>(state.range(0));
  std::vector<int> truth(static_cast<std::size_t>(n)),
      predicted(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    truth[static_cast<std::size_t>(i)] = i / 8;
    predicted[static_cast<std::size_t>(i)] = rng.uniform_int(0, n / 8);
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(metrics::adjusted_rand_index(truth, predicted));
}
BENCHMARK(BM_AdjustedRandIndex)->Arg(100)->Arg(1000);

void BM_CorruptNetlist(benchmark::State& state) {
  const auto& circuit = circuit_b05();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nl::corrupt_netlist(
        circuit.netlist, {.r_index = 0.5, .seed = seed++}));
  }
}
BENCHMARK(BM_CorruptNetlist);

void BM_StructuralRecovery(benchmark::State& state) {
  const auto& circuit = circuit_b05();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        structural::recover_words_structural(circuit.netlist));
}
BENCHMARK(BM_StructuralRecovery);

}  // namespace

BENCHMARK_MAIN();
