// Ablation — contribution of the three embeddings (§II-B).
//
// Trains three models with identical data and budget:
//   word-only, word + sequential positional, word + positional + tree
// and evaluates each on a held-out benchmark across the R-Index sweep.
// The paper motivates the tree-based positional embedding as the novel
// ingredient; this bench quantifies its effect in this reproduction.
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "util/csv.h"
#include "util/string_utils.h"
#include "util/table.h"

int main() {
  using namespace rebert;
  benchharness::BenchSetup setup = benchharness::load_bench_setup();
  // Modest default subset: ablations multiply training cost by 3.
  if (util::env_string("REBERT_BENCHMARKS", "").empty())
    setup.benchmark_names = {"b03", "b04", "b05", "b08", "b11", "b13"};
  const std::vector<core::CircuitData> circuits =
      benchharness::generate_suite(setup);
  // Hold out the last circuit for evaluation.
  const core::CircuitData& test_circuit = circuits.back();
  std::vector<const core::CircuitData*> train_set;
  for (std::size_t i = 0; i + 1 < circuits.size(); ++i)
    train_set.push_back(&circuits[i]);

  struct Variant {
    const char* name;
    bool use_position;
    bool use_tree;
  };
  const Variant variants[] = {
      {"word only", false, false},
      {"word + positional", true, false},
      {"word + positional + tree", true, true},
  };

  std::printf(
      "=== Ablation: embedding components (eval on %s, scale %.2f) ===\n",
      test_circuit.name.c_str(), setup.scale);
  util::TextTable table({"embeddings", "R=0", "R=0.4", "R=0.8",
                         "avg ARI"});
  util::CsvWriter csv("ablation_embeddings.csv",
                      {"variant", "r_index", "ari"});

  for (const Variant& variant : variants) {
    core::ExperimentOptions options = setup.options;
    std::fprintf(stderr, "training variant '%s'...\n", variant.name);

    // Build the model config with ablation flags, then train manually so
    // the flags survive (train_rebert uses make_model_config defaults).
    core::DatasetOptions dataset_options = options.dataset;
    dataset_options.tokenizer = options.pipeline.tokenizer;
    const auto examples =
        core::build_training_set(train_set, dataset_options);
    bert::BertConfig config = core::make_model_config(options);
    config.use_position_embedding = variant.use_position;
    config.use_tree_embedding = variant.use_tree;
    bert::BertPairClassifier model(config);
    bert::train(model, examples, options.training);

    double total = 0.0;
    std::map<double, double> by_r;
    for (double r : benchharness::r_index_sweep()) {
      const core::EvaluationResult result =
          core::evaluate_rebert(test_circuit, r, model, options);
      by_r[r] = result.ari;
      total += result.ari;
      csv.add_row({variant.name, util::format_double(r, 1),
                   util::format_double(result.ari, 3)});
    }
    table.add_row({variant.name, util::format_double(by_r[0.0], 3),
                   util::format_double(by_r[0.4], 3),
                   util::format_double(by_r[0.8], 3),
                   util::format_double(
                       total / benchharness::r_index_sweep().size(), 3)});
  }
  table.print();
  std::printf("CSV: ablation_embeddings.csv\n");
  return 0;
}
