// Sharded serving throughput — the router-tier headline number: aggregate
// QPS of mixed-bench score traffic through one router endpoint backed by
// real multi-process serve daemons at N = 1, 2, 4, 8 backends, plus an
// R = 2 kill drill showing that losing a backend's primary does not cost
// the fleet a single cold cache miss: the victim's key range is answered
// warm by its mirror-fed secondary.
//
// Each backend is a genuine child process (fork before any parent thread
// exists) running the standard engine + serve loop on its own Unix socket.
// The parent drives router::Router::handle_line directly from client
// threads, so the measured path is exactly the production relay: router ->
// ClientPool -> AF_UNIX socket -> backend engine.
//
// Scaling phases: to make the curve deterministic on any host, each
// backend is made predictably slow (fault injector latency on
// model.forward, prediction cache off) and given a small admission budget,
// so per-process throughput is capped by injected latency x budget rather
// than by host core count. N backends then hold N budgets -> ~Nx aggregate
// QPS while the suite's key ranges span N owners (with a handful of suite
// benches the curve flattens once N exceeds the distinct-owner count —
// that plateau is the honest answer, so only the N = 2 row is gated).
// Replication is OFF for these rows (replicas = 1, no mirror queue): the
// scaling number measures capacity, and mirror replay would silently
// spend a second backend's budget per request. Shed requests are retried
// after the advisory retry_after_ms, so every request completes and the
// phase wall-clock is an honest completion time.
//
// Kill drill: two dedicated cache-ON backends behind a replicas = 2
// router with the mirror queue enabled. The parent primes every bench's
// score lines through the router (primary answers, secondary is warmed
// asynchronously by mirror replay), waits for the mirror queue to drain,
// snapshots the survivor's cache_misses over its direct socket, SIGKILLs
// the primary-heavy victim, and resends the exact same lines. Every line
// must answer `ok` from the survivor without a single new cache miss
// (zero cold misses), with p95 bounded and replica_hits recorded.
//
// Extra knobs on top of the common ones (bench/common.h):
//   REBERT_SHARDED_REQUESTS      timed requests per phase      (default 240)
//   REBERT_SHARDED_CLIENTS       client threads                (default 12)
//   REBERT_SHARDED_INFLIGHT      per-backend admission budget  (default 2)
//   REBERT_SHARDED_FORWARD_MS    injected forward latency      (default 10)
//   REBERT_SHARDED_MIN_SPEEDUP   required 2-backend speedup    (default 1.6)
//   REBERT_SHARDED_DRILL_P95_MS  kill-drill p95 ceiling, ms    (default 500)
//
// Phases (one CSV row each):
//   1backend   router -> backend0 only — the single-process baseline
//   2backends  same traffic across 2 owners — the gated speedup row
//   4backends  ... across 4 owners — curve point
//   8backends  ... across 8 owners — curve point
//   killdrill  R = 2 failover resend after SIGKILLing the primary; gated
//              on zero survivor cold misses and the p95 ceiling
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench/common.h"
#include "nl/words.h"
#include "router/hash_ring.h"
#include "router/router.h"
#include "runtime/fault_injector.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/serve_loop.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/string_utils.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace rebert;

constexpr int kScalingBackends = 8;
constexpr int kScalingPoints[] = {1, 2, 4, 8};
constexpr int kDrillBackends = 2;

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1, static_cast<std::size_t>(p * sorted.size()));
  return sorted[index];
}

// Child-process body: a standard serve daemon. Scaling backends
// (forward_ms > 0) are made predictably slow and cache-free so the
// parent's throughput numbers are a function of the injected latency and
// the admission budget, not of host speed. Drill backends (forward_ms
// <= 0) keep the prediction cache ON and run at native speed so cache
// warmth is observable. Never returns.
[[noreturn]] void run_backend(const benchharness::BenchSetup& setup,
                              const std::string& socket_path,
                              int max_inflight, int forward_ms) {
  serve::EngineOptions options;
  options.num_threads = 2;
  options.suite_scale = setup.scale;
  options.experiment = setup.options;
  options.max_inflight = max_inflight;
  if (forward_ms > 0) {
    runtime::FaultInjector::global().arm("model.forward", 1.0, 11,
                                         forward_ms);
    options.experiment.pipeline.use_prediction_cache = false;
    // Advise retries at about half a service time: long enough that shed
    // clients are not hammering the socket, short enough to re-arrive
    // while the slot they are waiting for is still draining.
    options.retry_after_ms = std::max(2, forward_ms / 2);
  }
  serve::InferenceEngine engine(options);
  serve::ServeLoop loop(engine);
  loop.run_unix_socket(socket_path);
  std::_Exit(0);
}

bool wait_ready(const std::string& socket_path, int timeout_ms) {
  const int slice_ms = 50;
  for (int waited = 0; waited <= timeout_ms; waited += slice_ms) {
    serve::ClientOptions options;
    options.connect_attempts = 1;
    serve::Client client(socket_path, options);
    if (client.connect()) {
      try {
        if (util::starts_with(client.request("health"), "ok")) return true;
      } catch (const std::exception&) {
        // Backend still booting; fall through to the sleep.
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(slice_ms));
  }
  return false;
}

// One stat field from a backend's direct `stats` reply, e.g.
// backend_stat(sock, "cache_misses="). Returns -1 when unreachable.
long long backend_stat(const std::string& socket_path,
                       const std::string& key) {
  serve::ClientOptions options;
  options.connect_attempts = 3;
  serve::Client client(socket_path, options);
  if (!client.connect()) return -1;
  try {
    const std::string reply = client.request("stats");
    const std::size_t at = reply.find(key);
    if (at == std::string::npos) return -1;
    return std::atoll(reply.c_str() + at + key.size());
  } catch (const std::exception&) {
    return -1;
  }
}

struct PhaseResult {
  int requests = 0;
  int completed = 0;   // answered `ok ...` (possibly after retries)
  int sheds = 0;       // overload / no_backend answers that were retried
  int errors = 0;      // anything else (should stay 0)
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

// Drive `lines` to completion through the router from `clients` threads.
// Shed answers are retried after the advisory delay, so completed counts
// requests, not attempts, and seconds is the full completion wall-clock.
PhaseResult run_phase(router::Router& router,
                      const std::vector<std::string>& lines, int clients) {
  PhaseResult result;
  result.requests = static_cast<int>(lines.size());
  std::atomic<int> next{0};
  std::atomic<int> completed{0}, sheds{0}, errors{0};
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  util::WallTimer wall;
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      std::vector<double>& mine = latencies[static_cast<std::size_t>(c)];
      int index;
      while ((index = next.fetch_add(1)) < result.requests) {
        const std::string& line =
            lines[static_cast<std::size_t>(index)];
        util::WallTimer timer;
        for (;;) {
          bool quit = false;
          const std::string response = router.handle_line(line, &quit);
          if (util::starts_with(response, "ok ")) {
            completed.fetch_add(1);
            mine.push_back(timer.seconds());
            break;
          }
          if (util::starts_with(response, "err overloaded") ||
              util::starts_with(response, "err no_backend")) {
            sheds.fetch_add(1);
            const int advised = serve::parse_retry_after_ms(response);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(std::max(1, advised)));
            continue;
          }
          errors.fetch_add(1);
          break;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  result.seconds = wall.seconds();
  result.completed = completed.load();
  result.sheds = sheds.load();
  result.errors = errors.load();
  std::vector<double> all;
  for (const std::vector<double>& client : latencies)
    all.insert(all.end(), client.begin(), client.end());
  std::sort(all.begin(), all.end());
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(result.completed) / result.seconds
                   : 0.0;
  result.p50_ms = 1000.0 * percentile(all, 0.50);
  result.p95_ms = 1000.0 * percentile(all, 0.95);
  return result;
}

// Scaling rows measure raw capacity: single-owner placement, no mirror
// traffic spending a second backend's admission budget per request.
router::RouterOptions scaling_router_options() {
  router::RouterOptions options;
  // Fail fast on a dead socket: unreachability should be detected in
  // ~50ms, not the 2s a cold-start connect budget allows.
  options.client.connect_attempts = 5;
  options.client.connect_poll_ms = 10;
  options.retry_after_ms = 2;
  options.replicas = 1;
  options.mirror_queue_depth = 0;
  return options;
}

// The kill drill runs the shipped replication defaults: R = 2 with the
// bounded mirror queue warming each bench's secondary. Probes are off so
// the drill provably measures IN-BAND failover — the dead socket must be
// discovered and absorbed inside the request dispatch itself, not by a
// background probe that happens to win the race.
router::RouterOptions drill_router_options() {
  router::RouterOptions options;
  options.client.connect_attempts = 5;
  options.client.connect_poll_ms = 10;
  options.retry_after_ms = 2;
  options.replicas = 2;
  options.probe_interval_ms = 0;
  return options;
}

}  // namespace

int main() {
  benchharness::BenchSetup setup = benchharness::load_bench_setup();

  const int requests =
      std::max(20, util::env_int("REBERT_SHARDED_REQUESTS", 240));
  const int clients =
      std::max(2, util::env_int("REBERT_SHARDED_CLIENTS", 12));
  const int max_inflight =
      std::max(1, util::env_int("REBERT_SHARDED_INFLIGHT", 2));
  const int forward_ms =
      std::max(1, util::env_int("REBERT_SHARDED_FORWARD_MS", 10));
  const double min_speedup =
      util::env_double("REBERT_SHARDED_MIN_SPEEDUP", 1.6);
  const double drill_p95_ms =
      util::env_double("REBERT_SHARDED_DRILL_P95_MS", 500.0);

  const std::string socket_base =
      "/tmp/rebert_sharded_" + std::to_string(::getpid());
  const int total_backends = kScalingBackends + kDrillBackends;
  std::vector<std::string> sockets;
  for (int i = 0; i < kScalingBackends; ++i)
    sockets.push_back(socket_base + ".backend" + std::to_string(i) +
                      ".sock");
  for (int i = 0; i < kDrillBackends; ++i)
    sockets.push_back(socket_base + ".drill" + std::to_string(i) + ".sock");

  // Fork every backend before the parent creates any thread (client
  // workers, pool sockets): fork+threads do not mix. The last two are the
  // drill pair — prediction cache ON, no injected latency, a roomy
  // admission budget — so cache warmth is what the drill measures.
  std::fflush(stdout);
  std::fflush(stderr);
  std::vector<pid_t> pids(static_cast<std::size_t>(total_backends), -1);
  for (int i = 0; i < total_backends; ++i) {
    const bool drill = i >= kScalingBackends;
    pids[static_cast<std::size_t>(i)] = ::fork();
    if (pids[static_cast<std::size_t>(i)] == 0)
      run_backend(setup, sockets[static_cast<std::size_t>(i)],
                  drill ? 8 : max_inflight, drill ? 0 : forward_ms);
    if (pids[static_cast<std::size_t>(i)] < 0) {
      std::perror("fork");
      return 1;
    }
  }

  // Pick traffic that provably spans both key ranges at N = 2 — that is
  // the gated row. The ring places keys by backend NAME, so the parent
  // (a) computes each suite bench's owner with the same deterministic
  // HashRing the router uses, and (b) salts the backend names (one common
  // suffix for all N) until the suite splits across the first two owners —
  // with only a handful of suite benches, one fixed name pair can
  // legitimately end up owning every key. The N = 4 / 8 rows reuse the
  // same salted names; their placement is whatever the hash gives, which
  // is the honest curve.
  std::vector<std::string> names(
      static_cast<std::size_t>(kScalingBackends));
  for (int i = 0; i < kScalingBackends; ++i)
    names[static_cast<std::size_t>(i)] = "backend" + std::to_string(i);
  std::vector<std::string> owned_by[2];
  std::size_t per_side = 0;
  for (int salt = 0; salt < 64; ++salt) {
    const std::string suffix = salt == 0 ? "" : "." + std::to_string(salt);
    const std::string trial[2] = {"backend0" + suffix, "backend1" + suffix};
    router::HashRing placement;
    placement.add(trial[0]);
    placement.add(trial[1]);
    std::vector<std::string> trial_owned[2];
    for (const std::string& name : setup.benchmark_names)
      trial_owned[placement.node_for(name) == trial[0] ? 0 : 1].push_back(
          name);
    const std::size_t side =
        std::min(trial_owned[0].size(), trial_owned[1].size());
    if (side > per_side) {
      per_side = side;
      for (int i = 0; i < kScalingBackends; ++i)
        names[static_cast<std::size_t>(i)] =
            "backend" + std::to_string(i) + suffix;
      owned_by[0] = trial_owned[0];
      owned_by[1] = trial_owned[1];
      // Stop at an (almost) even split; an odd-sized suite can't do better.
      if (2 * side + 1 >= setup.benchmark_names.size()) break;
    }
  }
  std::vector<std::string> benches;
  for (std::size_t i = 0; i < per_side; ++i) {
    benches.push_back(owned_by[0][i]);
    benches.push_back(owned_by[1][i]);
  }
  const bool balanced = per_side > 0;
  if (!balanced) {
    // 64 salts all failed — possible only for a 0/1-bench suite. Still
    // run, but the speedup gate would be meaningless, so skip it.
    std::printf("WARN: all benches hash to one backend; "
                "skipping the speedup gate\n");
    benches = setup.benchmark_names;
  }
  benches.resize(std::min<std::size_t>(benches.size(), 6));

  // Bit names per bench, derived the same way the engine does — from the
  // deterministic generated netlist — so the parent never needs an engine.
  std::map<std::string, std::vector<std::string>> bit_names;
  for (const std::string& name : benches) {
    gen::GeneratedCircuit generated =
        gen::generate_benchmark(name, setup.scale);
    std::vector<std::string> bits;
    for (const nl::Bit& bit : nl::extract_bits(generated.netlist))
      bits.push_back(bit.name);
    bit_names[name] = bits;
  }

  // Deterministic mixed-bench traffic: cycle the (interleaved) bench list
  // so both key ranges carry equal load.
  util::Rng rng(0x5a4dedULL);
  std::vector<std::string> lines;
  std::vector<std::string> warm_lines;
  for (const std::string& name : benches) {
    const std::vector<std::string>& bits = bit_names[name];
    warm_lines.push_back("score " + name + " " + bits[0] + " " +
                         bits[std::min<std::size_t>(1, bits.size() - 1)]);
  }
  for (int r = 0; r < requests; ++r) {
    const std::string& name =
        benches[static_cast<std::size_t>(r) % benches.size()];
    const std::vector<std::string>& bits = bit_names[name];
    const int num_bits = static_cast<int>(bits.size());
    const std::string& a = bits[static_cast<std::size_t>(
        rng.uniform_int(0, num_bits - 1))];
    const std::string& b = bits[static_cast<std::size_t>(
        rng.uniform_int(0, num_bits - 1))];
    lines.push_back("score " + name + " " + a + " " + b);
  }

  // The drill replays a fixed per-bench working set twice (prime, then
  // failover resend), so warm really means "this exact line was scored
  // before" — 4 deterministic bit pairs per bench.
  std::vector<std::string> drill_lines;
  for (const std::string& name : benches) {
    const std::vector<std::string>& bits = bit_names[name];
    const int num_bits = static_cast<int>(bits.size());
    for (int pair = 0; pair < 4; ++pair) {
      const std::string& a =
          bits[static_cast<std::size_t>(pair % num_bits)];
      const std::string& b = bits[static_cast<std::size_t>(
          (pair * 7 + 1) % num_bits)];
      drill_lines.push_back("score " + name + " " + a + " " + b);
    }
  }

  int failures = 0;
  for (int i = 0; i < total_backends; ++i) {
    if (!wait_ready(sockets[static_cast<std::size_t>(i)], 120000)) {
      std::printf("FAIL: backend %d never became healthy at %s\n", i,
                  sockets[static_cast<std::size_t>(i)].c_str());
      ++failures;
    }
  }

  std::printf("=== Serve sharded: %zu benches (scale %.2f), %d requests, "
              "%d client(s), budget %d in-flight/backend, %d ms/forward "
              "===\n",
              benches.size(), setup.scale, requests, clients, max_inflight,
              forward_ms);
  util::TextTable table({"phase", "backends", "requests", "completed",
                         "shed", "qps", "p50 (ms)", "p95 (ms)", "speedup"});
  util::CsvWriter csv("serve_sharded.csv",
                      {"phase", "backends", "requests", "completed", "shed",
                       "errors", "qps", "p50_ms", "p95_ms", "speedup"});
  const auto report = [&](const std::string& phase, int backends,
                          const PhaseResult& result, double speedup) {
    table.add_row({phase, std::to_string(backends),
                   std::to_string(result.requests),
                   std::to_string(result.completed),
                   std::to_string(result.sheds),
                   util::format_double(result.qps, 1),
                   util::format_double(result.p50_ms, 3),
                   util::format_double(result.p95_ms, 3),
                   speedup > 0.0 ? util::format_double(speedup, 2) + "x"
                                 : std::string("-")});
    csv.add_row({phase, std::to_string(backends),
                 std::to_string(result.requests),
                 std::to_string(result.completed),
                 std::to_string(result.sheds),
                 std::to_string(result.errors),
                 util::format_double(result.qps, 1),
                 util::format_double(result.p50_ms, 4),
                 util::format_double(result.p95_ms, 4),
                 util::format_double(speedup, 3)});
    if (result.completed != result.requests || result.errors != 0) {
      std::printf("FAIL: phase %s lost requests (%d/%d completed, "
                  "%d errors)\n",
                  phase.c_str(), result.completed, result.requests,
                  result.errors);
      ++failures;
    }
  };

  // Scaling curve: a fresh single-owner router over the first N backends
  // for each N in {1, 2, 4, 8}. Only the N = 2 point is gated; the rest
  // chart where the suite's distinct-owner count flattens the curve.
  double qps_one = 0.0;
  for (const int n : kScalingPoints) {
    if (failures != 0) break;
    router::Router router(scaling_router_options());
    for (int i = 0; i < n; ++i)
      router.add_backend(names[static_cast<std::size_t>(i)],
                         sockets[static_cast<std::size_t>(i)]);
    (void)run_phase(router, warm_lines, 1);  // build bench contexts untimed
    const PhaseResult result = run_phase(router, lines, clients);
    if (n == 1) qps_one = result.qps;
    const double speedup =
        (n > 1 && qps_one > 0.0) ? result.qps / qps_one : 0.0;
    report(n == 1 ? "1backend" : std::to_string(n) + "backends", n, result,
           speedup);
    if (n == 2 && balanced && speedup < min_speedup) {
      std::printf("FAIL: 2-backend speedup %.2fx below the %.2fx gate\n",
                  speedup, min_speedup);
      ++failures;
    }
  }

  // Kill drill at R = 2: prime through the router, let the mirror queue
  // warm every bench's secondary, snapshot the survivor's cache_misses
  // over its direct socket, SIGKILL the victim, resend the same lines.
  // Zero new misses on the survivor == the victim's key range was served
  // warm — the headline robustness claim.
  if (failures == 0) {
    const std::string drill_names[2] = {"drillA", "drillB"};
    const std::string drill_sockets[2] = {
        sockets[static_cast<std::size_t>(kScalingBackends)],
        sockets[static_cast<std::size_t>(kScalingBackends + 1)]};
    router::Router router(drill_router_options());
    router.add_backend(drill_names[0], drill_sockets[0]);
    router.add_backend(drill_names[1], drill_sockets[1]);

    const PhaseResult prime = run_phase(router, drill_lines, clients);
    if (prime.completed != prime.requests || prime.errors != 0) {
      std::printf("FAIL: drill prime lost requests (%d/%d, %d errors)\n",
                  prime.completed, prime.requests, prime.errors);
      ++failures;
    }
    if (!router.wait_mirror_idle(30000)) {
      std::printf("FAIL: mirror queue never drained after priming\n");
      ++failures;
    }

    // Victim = the primary of the majority of benches, so the resend
    // exercises real failover (secondary answering) for most of the
    // traffic rather than a corner of it.
    int primaries[2] = {0, 0};
    for (const std::string& name : benches)
      ++primaries[router.backend_for(name) == drill_names[0] ? 0 : 1];
    const int victim = primaries[0] >= primaries[1] ? 0 : 1;
    const int survivor = 1 - victim;
    const long long misses_before =
        backend_stat(drill_sockets[survivor], "cache_misses=");
    if (misses_before < 0) {
      std::printf("FAIL: survivor %s unreachable for the pre-kill stats\n",
                  drill_names[survivor].c_str());
      ++failures;
    }

    const std::size_t drill_pid_index =
        static_cast<std::size_t>(kScalingBackends + victim);
    ::kill(pids[drill_pid_index], SIGKILL);
    ::waitpid(pids[drill_pid_index], nullptr, 0);
    pids[drill_pid_index] = -1;

    const PhaseResult drill = run_phase(router, drill_lines, clients);
    report("killdrill", 1, drill, 0.0);
    const long long misses_after =
        backend_stat(drill_sockets[survivor], "cache_misses=");
    const router::RouterStats stats = router.stats();
    std::printf("drill: victim=%s survivor=%s cache_misses %lld -> %lld "
                "replica_hits=%llu mirrored=%llu mirror_dropped=%llu "
                "reroutes=%llu\n",
                drill_names[victim].c_str(), drill_names[survivor].c_str(),
                misses_before, misses_after,
                static_cast<unsigned long long>(stats.replica_hits),
                static_cast<unsigned long long>(stats.mirrored),
                static_cast<unsigned long long>(stats.mirror_dropped),
                static_cast<unsigned long long>(stats.reroutes));
    if (misses_after != misses_before) {
      std::printf("FAIL: survivor took %lld cold misses during failover "
                  "(warm mirror should have covered the victim's range)\n",
                  misses_after - misses_before);
      ++failures;
    }
    if (stats.mirrored == 0) {
      std::printf("FAIL: mirror queue never warmed the secondary\n");
      ++failures;
    }
    if (primaries[victim] > 0 && stats.replica_hits == 0) {
      std::printf("FAIL: kill drill answered without any replica hit\n");
      ++failures;
    }
    if (stats.reroutes == 0) {
      std::printf("FAIL: kill drill produced no reroutes\n");
      ++failures;
    }
    if (drill.p95_ms > drill_p95_ms) {
      std::printf("FAIL: kill-drill p95 %.3f ms above the %.1f ms "
                  "ceiling\n",
                  drill.p95_ms, drill_p95_ms);
      ++failures;
    }
  }

  for (int i = 0; i < total_backends; ++i) {
    if (pids[static_cast<std::size_t>(i)] > 0) {
      ::kill(pids[static_cast<std::size_t>(i)], SIGKILL);
      ::waitpid(pids[static_cast<std::size_t>(i)], nullptr, 0);
    }
    ::unlink(sockets[static_cast<std::size_t>(i)].c_str());
  }

  table.print();
  std::printf("CSV: serve_sharded.csv\n");
  return failures == 0 ? 0 : 1;
}
