// Sharded serving throughput — the router-tier headline number: aggregate
// QPS of mixed-bench score traffic through one router endpoint backed by
// real multi-process serve daemons, at 1 backend vs 2, plus a kill drill
// showing that losing a backend sheds only that backend's key range.
//
// Each backend is a genuine child process (fork before any parent thread
// exists) running the standard engine + serve loop on its own Unix socket.
// The parent drives router::Router::handle_line directly from client
// threads, so the measured path is exactly the production relay: router ->
// ClientPool -> AF_UNIX socket -> backend engine.
//
// To make the scaling deterministic on any host, each backend is made
// predictably slow (fault injector latency on model.forward, prediction
// cache off) and given a small admission budget, so per-process throughput
// is capped by injected latency x budget rather than by host core count.
// Two backends then hold two budgets -> ~2x aggregate QPS on traffic that
// spans both key ranges. Shed requests are retried after the advisory
// retry_after_ms, so every request completes and the phase wall-clock is
// an honest completion time.
//
// Extra knobs on top of the common ones (bench/common.h):
//   REBERT_SHARDED_REQUESTS     timed requests per phase      (default 240)
//   REBERT_SHARDED_CLIENTS      client threads                (default 12)
//   REBERT_SHARDED_INFLIGHT     per-backend admission budget  (default 2)
//   REBERT_SHARDED_FORWARD_MS   injected forward latency      (default 10)
//   REBERT_SHARDED_MIN_SPEEDUP  required 2-backend speedup    (default 1.6)
//
// Phases (one CSV row each):
//   1backend   router -> backend0 only — the single-process baseline
//   2backends  router -> backend0+backend1, same traffic — the speedup row
//   killdrill  SIGKILL backend1 mid-fleet; every bench must still answer,
//              and benches owned by backend0 must keep their owner
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench/common.h"
#include "nl/words.h"
#include "router/hash_ring.h"
#include "router/router.h"
#include "runtime/fault_injector.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/serve_loop.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/string_utils.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace rebert;

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1, static_cast<std::size_t>(p * sorted.size()));
  return sorted[index];
}

// Child-process body: a standard serve daemon, made predictably slow so the
// parent's throughput numbers are a function of the injected latency and
// the admission budget, not of host speed. Never returns.
[[noreturn]] void run_backend(const benchharness::BenchSetup& setup,
                              const std::string& socket_path,
                              int max_inflight, int forward_ms) {
  runtime::FaultInjector::global().arm("model.forward", 1.0, 11, forward_ms);
  serve::EngineOptions options;
  options.num_threads = 2;
  options.suite_scale = setup.scale;
  options.experiment = setup.options;
  options.experiment.pipeline.use_prediction_cache = false;
  options.max_inflight = max_inflight;
  // Advise retries at about half a service time: long enough that shed
  // clients are not hammering the socket, short enough to re-arrive while
  // the slot they are waiting for is still draining.
  options.retry_after_ms = std::max(2, forward_ms / 2);
  serve::InferenceEngine engine(options);
  serve::ServeLoop loop(engine);
  loop.run_unix_socket(socket_path);
  std::_Exit(0);
}

bool wait_ready(const std::string& socket_path, int timeout_ms) {
  const int slice_ms = 50;
  for (int waited = 0; waited <= timeout_ms; waited += slice_ms) {
    serve::ClientOptions options;
    options.connect_attempts = 1;
    serve::Client client(socket_path, options);
    if (client.connect()) {
      try {
        if (util::starts_with(client.request("health"), "ok")) return true;
      } catch (const std::exception&) {
        // Backend still booting; fall through to the sleep.
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(slice_ms));
  }
  return false;
}

struct PhaseResult {
  int requests = 0;
  int completed = 0;   // answered `ok ...` (possibly after retries)
  int sheds = 0;       // overload / no_backend answers that were retried
  int errors = 0;      // anything else (should stay 0)
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

// Drive `lines` to completion through the router from `clients` threads.
// Shed answers are retried after the advisory delay, so completed counts
// requests, not attempts, and seconds is the full completion wall-clock.
PhaseResult run_phase(router::Router& router,
                      const std::vector<std::string>& lines, int clients) {
  PhaseResult result;
  result.requests = static_cast<int>(lines.size());
  std::atomic<int> next{0};
  std::atomic<int> completed{0}, sheds{0}, errors{0};
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  util::WallTimer wall;
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      std::vector<double>& mine = latencies[static_cast<std::size_t>(c)];
      int index;
      while ((index = next.fetch_add(1)) < result.requests) {
        const std::string& line =
            lines[static_cast<std::size_t>(index)];
        util::WallTimer timer;
        for (;;) {
          bool quit = false;
          const std::string response = router.handle_line(line, &quit);
          if (util::starts_with(response, "ok ")) {
            completed.fetch_add(1);
            mine.push_back(timer.seconds());
            break;
          }
          if (util::starts_with(response, "err overloaded") ||
              util::starts_with(response, "err no_backend")) {
            sheds.fetch_add(1);
            const int advised = serve::parse_retry_after_ms(response);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(std::max(1, advised)));
            continue;
          }
          errors.fetch_add(1);
          break;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  result.seconds = wall.seconds();
  result.completed = completed.load();
  result.sheds = sheds.load();
  result.errors = errors.load();
  std::vector<double> all;
  for (const std::vector<double>& client : latencies)
    all.insert(all.end(), client.begin(), client.end());
  std::sort(all.begin(), all.end());
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(result.completed) / result.seconds
                   : 0.0;
  result.p50_ms = 1000.0 * percentile(all, 0.50);
  result.p95_ms = 1000.0 * percentile(all, 0.95);
  return result;
}

router::RouterOptions router_options() {
  router::RouterOptions options;
  // Fail fast on a dead socket: the kill drill wants unreachability
  // detected in ~50ms, not the 2s a cold-start connect budget allows.
  options.client.connect_attempts = 5;
  options.client.connect_poll_ms = 10;
  options.retry_after_ms = 2;
  return options;
}

}  // namespace

int main() {
  benchharness::BenchSetup setup = benchharness::load_bench_setup();

  const int requests =
      std::max(20, util::env_int("REBERT_SHARDED_REQUESTS", 240));
  const int clients =
      std::max(2, util::env_int("REBERT_SHARDED_CLIENTS", 12));
  const int max_inflight =
      std::max(1, util::env_int("REBERT_SHARDED_INFLIGHT", 2));
  const int forward_ms =
      std::max(1, util::env_int("REBERT_SHARDED_FORWARD_MS", 10));
  const double min_speedup =
      util::env_double("REBERT_SHARDED_MIN_SPEEDUP", 1.6);

  const std::string socket_base =
      "/tmp/rebert_sharded_" + std::to_string(::getpid());
  const std::string sockets[2] = {socket_base + ".backend0.sock",
                                  socket_base + ".backend1.sock"};

  // Fork both backends before the parent creates any thread (client
  // workers, pool sockets): fork+threads do not mix.
  std::fflush(stdout);
  std::fflush(stderr);
  pid_t pids[2] = {-1, -1};
  for (int i = 0; i < 2; ++i) {
    pids[i] = ::fork();
    if (pids[i] == 0)
      run_backend(setup, sockets[i], max_inflight, forward_ms);
    if (pids[i] < 0) {
      std::perror("fork");
      return 1;
    }
  }

  // Pick traffic that provably spans both key ranges. The ring places keys
  // by backend NAME, so the parent (a) computes each suite bench's owner
  // with the same deterministic HashRing the router uses, and (b) salts the
  // backend names until the suite splits across both owners — with only a
  // handful of suite benches, one fixed name pair can legitimately end up
  // owning every key (that is exactly what "backend0"/"backend1" do).
  std::string names[2] = {"backend0", "backend1"};
  std::vector<std::string> owned_by[2];
  std::size_t per_side = 0;
  for (int salt = 0; salt < 64; ++salt) {
    const std::string suffix = salt == 0 ? "" : "." + std::to_string(salt);
    const std::string trial[2] = {"backend0" + suffix, "backend1" + suffix};
    router::HashRing placement;
    placement.add(trial[0]);
    placement.add(trial[1]);
    std::vector<std::string> trial_owned[2];
    for (const std::string& name : setup.benchmark_names)
      trial_owned[placement.node_for(name) == trial[0] ? 0 : 1].push_back(
          name);
    const std::size_t side =
        std::min(trial_owned[0].size(), trial_owned[1].size());
    if (side > per_side) {
      per_side = side;
      names[0] = trial[0];
      names[1] = trial[1];
      owned_by[0] = trial_owned[0];
      owned_by[1] = trial_owned[1];
      // Stop at an (almost) even split; an odd-sized suite can't do better.
      if (2 * side + 1 >= setup.benchmark_names.size()) break;
    }
  }
  std::vector<std::string> benches;
  for (std::size_t i = 0; i < per_side; ++i) {
    benches.push_back(owned_by[0][i]);
    benches.push_back(owned_by[1][i]);
  }
  const bool balanced = per_side > 0;
  if (!balanced) {
    // 64 salts all failed — possible only for a 0/1-bench suite. Still
    // run, but the speedup gate would be meaningless, so skip it.
    std::printf("WARN: all benches hash to one backend; "
                "skipping the speedup gate\n");
    benches = setup.benchmark_names;
  }
  benches.resize(std::min<std::size_t>(benches.size(), 6));

  // Bit names per bench, derived the same way the engine does — from the
  // deterministic generated netlist — so the parent never needs an engine.
  std::map<std::string, std::vector<std::string>> bit_names;
  for (const std::string& name : benches) {
    gen::GeneratedCircuit generated =
        gen::generate_benchmark(name, setup.scale);
    std::vector<std::string> names;
    for (const nl::Bit& bit : nl::extract_bits(generated.netlist))
      names.push_back(bit.name);
    bit_names[name] = names;
  }

  // Deterministic mixed-bench traffic: cycle the (interleaved) bench list
  // so both key ranges carry equal load.
  util::Rng rng(0x5a4dedULL);
  std::vector<std::string> lines;
  std::vector<std::string> warm_lines;
  for (const std::string& name : benches) {
    const std::vector<std::string>& bits = bit_names[name];
    warm_lines.push_back("score " + name + " " + bits[0] + " " +
                         bits[std::min<std::size_t>(1, bits.size() - 1)]);
  }
  for (int r = 0; r < requests; ++r) {
    const std::string& name =
        benches[static_cast<std::size_t>(r) % benches.size()];
    const std::vector<std::string>& bits = bit_names[name];
    const int num_bits = static_cast<int>(bits.size());
    const std::string& a = bits[static_cast<std::size_t>(
        rng.uniform_int(0, num_bits - 1))];
    const std::string& b = bits[static_cast<std::size_t>(
        rng.uniform_int(0, num_bits - 1))];
    lines.push_back("score " + name + " " + a + " " + b);
  }

  int failures = 0;
  for (int i = 0; i < 2; ++i) {
    if (!wait_ready(sockets[i], 120000)) {
      std::printf("FAIL: backend%d never became healthy at %s\n", i,
                  sockets[i].c_str());
      ++failures;
    }
  }

  std::printf("=== Serve sharded: %zu benches (scale %.2f), %d requests, "
              "%d client(s), budget %d in-flight/backend, %d ms/forward "
              "===\n",
              benches.size(), setup.scale, requests, clients, max_inflight,
              forward_ms);
  util::TextTable table({"phase", "backends", "requests", "completed",
                         "shed", "qps", "p50 (ms)", "p95 (ms)", "speedup"});
  util::CsvWriter csv("serve_sharded.csv",
                      {"phase", "backends", "requests", "completed", "shed",
                       "errors", "qps", "p50_ms", "p95_ms", "speedup"});
  const auto report = [&](const char* phase, int backends,
                          const PhaseResult& result, double speedup) {
    table.add_row({phase, std::to_string(backends),
                   std::to_string(result.requests),
                   std::to_string(result.completed),
                   std::to_string(result.sheds),
                   util::format_double(result.qps, 1),
                   util::format_double(result.p50_ms, 3),
                   util::format_double(result.p95_ms, 3),
                   speedup > 0.0 ? util::format_double(speedup, 2) + "x"
                                 : std::string("-")});
    csv.add_row({phase, std::to_string(backends),
                 std::to_string(result.requests),
                 std::to_string(result.completed),
                 std::to_string(result.sheds),
                 std::to_string(result.errors),
                 util::format_double(result.qps, 1),
                 util::format_double(result.p50_ms, 4),
                 util::format_double(result.p95_ms, 4),
                 util::format_double(speedup, 3)});
    if (result.completed != result.requests || result.errors != 0) {
      std::printf("FAIL: phase %s lost requests (%d/%d completed, "
                  "%d errors)\n",
                  phase, result.completed, result.requests, result.errors);
      ++failures;
    }
  };

  // Phase 1: everything on backend0.
  double qps_one = 0.0;
  if (failures == 0) {
    router::Router router(router_options());
    router.add_backend(names[0], sockets[0]);
    (void)run_phase(router, warm_lines, 1);  // build bench contexts untimed
    const PhaseResult result = run_phase(router, lines, clients);
    qps_one = result.qps;
    report("1backend", 1, result, 0.0);
  }

  // Phase 2 + kill drill share a router, as production would.
  if (failures == 0) {
    router::Router router(router_options());
    router.add_backend(names[0], sockets[0]);
    router.add_backend(names[1], sockets[1]);
    (void)run_phase(router, warm_lines, 1);
    const PhaseResult result = run_phase(router, lines, clients);
    const double speedup = qps_one > 0.0 ? result.qps / qps_one : 0.0;
    report("2backends", 2, result, speedup);
    if (balanced && speedup < min_speedup) {
      std::printf("FAIL: 2-backend speedup %.2fx below the %.2fx gate\n",
                  speedup, min_speedup);
      ++failures;
    }

    // Kill drill: owners before, SIGKILL backend1, one request per bench —
    // every bench must still answer, and backend0's key range must not
    // move (only the dead backend's range reroutes).
    std::map<std::string, std::string> owner_before;
    for (const std::string& name : benches)
      owner_before[name] = router.backend_for(name);
    ::kill(pids[1], SIGKILL);
    ::waitpid(pids[1], nullptr, 0);
    pids[1] = -1;
    const PhaseResult drill = run_phase(router, warm_lines, clients);
    report("killdrill", 1, drill, 0.0);
    for (const std::string& name : benches) {
      const std::string after = router.backend_for(name);
      if (after != names[0]) {
        std::printf("FAIL: %s routed to '%s' after the kill\n",
                    name.c_str(), after.c_str());
        ++failures;
      }
      if (owner_before[name] == names[0] && after != names[0]) {
        std::printf("FAIL: surviving backend's key %s moved\n",
                    name.c_str());
        ++failures;
      }
    }
    const router::RouterStats stats = router.stats();
    std::printf("router: forwarded=%llu reroutes=%llu backends_failed=%llu "
                "no_backend_errors=%llu\n",
                static_cast<unsigned long long>(stats.forwarded),
                static_cast<unsigned long long>(stats.reroutes),
                static_cast<unsigned long long>(stats.backends_failed),
                static_cast<unsigned long long>(stats.no_backend_errors));
    if (stats.reroutes == 0) {
      std::printf("FAIL: kill drill produced no reroutes\n");
      ++failures;
    }
  }

  for (int i = 0; i < 2; ++i) {
    if (pids[i] > 0) {
      ::kill(pids[i], SIGKILL);
      ::waitpid(pids[i], nullptr, 0);
    }
    ::unlink(sockets[i].c_str());
  }

  table.print();
  std::printf("CSV: serve_sharded.csv\n");
  return failures == 0 ? 0 : 1;
}
