// Ablation — prediction-cache acceleration (the paper's conclusion notes
// "opportunities to accelerate ReBERT"; this is one).
//
// Measures recover_words() wall time with and without the lossless
// sequence-pair prediction cache, and verifies the partitions match.
#include <cstdio>

#include "bench/common.h"
#include "util/csv.h"
#include "util/string_utils.h"
#include "util/table.h"

int main() {
  using namespace rebert;
  benchharness::BenchSetup setup = benchharness::load_bench_setup();
  if (util::env_string("REBERT_BENCHMARKS", "").empty())
    setup.benchmark_names = {"b03", "b04", "b05", "b08", "b11", "b12"};
  const std::vector<core::CircuitData> circuits =
      benchharness::generate_suite(setup);

  // Weights do not matter for runtime; an untrained model suffices.
  bert::BertPairClassifier model(core::make_model_config(setup.options));

  std::printf("=== Ablation: prediction cache (scale %.2f) ===\n",
              setup.scale);
  util::TextTable table({"benchmark", "uncached (s)", "cached (s)",
                         "speedup", "hit rate (%)", "identical"});
  util::CsvWriter csv("ablation_cache.csv",
                      {"benchmark", "uncached_s", "cached_s", "hit_rate"});

  for (const auto& circuit : circuits) {
    core::PipelineOptions uncached = setup.options.pipeline;
    uncached.use_prediction_cache = false;
    core::PipelineOptions cached = setup.options.pipeline;
    cached.use_prediction_cache = true;

    const core::RecoveryResult slow =
        core::recover_words(circuit.netlist, model, uncached);
    const core::RecoveryResult fast =
        core::recover_words(circuit.netlist, model, cached);

    const bool identical = slow.labels == fast.labels;
    table.add_row({circuit.name,
                   util::format_double(slow.total_seconds, 3),
                   util::format_double(fast.total_seconds, 3),
                   util::format_double(
                       fast.total_seconds > 0
                           ? slow.total_seconds / fast.total_seconds
                           : 0.0, 2) + "x",
                   util::format_double(fast.cache_hit_rate * 100.0, 1),
                   identical ? "yes" : "NO"});
    csv.add_row({circuit.name, util::format_double(slow.total_seconds, 4),
                 util::format_double(fast.total_seconds, 4),
                 util::format_double(fast.cache_hit_rate, 3)});
  }
  table.print();
  std::printf("CSV: ablation_cache.csv\n");
  return 0;
}
