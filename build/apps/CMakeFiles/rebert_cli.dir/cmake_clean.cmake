file(REMOVE_RECURSE
  "CMakeFiles/rebert_cli.dir/rebert_cli.cc.o"
  "CMakeFiles/rebert_cli.dir/rebert_cli.cc.o.d"
  "rebert_cli"
  "rebert_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
