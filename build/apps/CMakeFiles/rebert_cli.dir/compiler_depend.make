# Empty compiler generated dependencies file for rebert_cli.
# This may be replaced when dependencies are built.
