
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bert/attention.cc" "src/bert/CMakeFiles/rebert_bert.dir/attention.cc.o" "gcc" "src/bert/CMakeFiles/rebert_bert.dir/attention.cc.o.d"
  "/root/repo/src/bert/config.cc" "src/bert/CMakeFiles/rebert_bert.dir/config.cc.o" "gcc" "src/bert/CMakeFiles/rebert_bert.dir/config.cc.o.d"
  "/root/repo/src/bert/embedding.cc" "src/bert/CMakeFiles/rebert_bert.dir/embedding.cc.o" "gcc" "src/bert/CMakeFiles/rebert_bert.dir/embedding.cc.o.d"
  "/root/repo/src/bert/encoder_layer.cc" "src/bert/CMakeFiles/rebert_bert.dir/encoder_layer.cc.o" "gcc" "src/bert/CMakeFiles/rebert_bert.dir/encoder_layer.cc.o.d"
  "/root/repo/src/bert/model.cc" "src/bert/CMakeFiles/rebert_bert.dir/model.cc.o" "gcc" "src/bert/CMakeFiles/rebert_bert.dir/model.cc.o.d"
  "/root/repo/src/bert/trainer.cc" "src/bert/CMakeFiles/rebert_bert.dir/trainer.cc.o" "gcc" "src/bert/CMakeFiles/rebert_bert.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/rebert_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rebert_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
