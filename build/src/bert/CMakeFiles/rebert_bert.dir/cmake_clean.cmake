file(REMOVE_RECURSE
  "CMakeFiles/rebert_bert.dir/attention.cc.o"
  "CMakeFiles/rebert_bert.dir/attention.cc.o.d"
  "CMakeFiles/rebert_bert.dir/config.cc.o"
  "CMakeFiles/rebert_bert.dir/config.cc.o.d"
  "CMakeFiles/rebert_bert.dir/embedding.cc.o"
  "CMakeFiles/rebert_bert.dir/embedding.cc.o.d"
  "CMakeFiles/rebert_bert.dir/encoder_layer.cc.o"
  "CMakeFiles/rebert_bert.dir/encoder_layer.cc.o.d"
  "CMakeFiles/rebert_bert.dir/model.cc.o"
  "CMakeFiles/rebert_bert.dir/model.cc.o.d"
  "CMakeFiles/rebert_bert.dir/trainer.cc.o"
  "CMakeFiles/rebert_bert.dir/trainer.cc.o.d"
  "librebert_bert.a"
  "librebert_bert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_bert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
