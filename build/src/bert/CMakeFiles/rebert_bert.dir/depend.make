# Empty dependencies file for rebert_bert.
# This may be replaced when dependencies are built.
