file(REMOVE_RECURSE
  "librebert_bert.a"
)
