file(REMOVE_RECURSE
  "CMakeFiles/rebert_circuitgen.dir/blocks.cc.o"
  "CMakeFiles/rebert_circuitgen.dir/blocks.cc.o.d"
  "CMakeFiles/rebert_circuitgen.dir/suite.cc.o"
  "CMakeFiles/rebert_circuitgen.dir/suite.cc.o.d"
  "CMakeFiles/rebert_circuitgen.dir/trojan.cc.o"
  "CMakeFiles/rebert_circuitgen.dir/trojan.cc.o.d"
  "librebert_circuitgen.a"
  "librebert_circuitgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_circuitgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
