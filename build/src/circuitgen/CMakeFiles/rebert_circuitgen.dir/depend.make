# Empty dependencies file for rebert_circuitgen.
# This may be replaced when dependencies are built.
