
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuitgen/blocks.cc" "src/circuitgen/CMakeFiles/rebert_circuitgen.dir/blocks.cc.o" "gcc" "src/circuitgen/CMakeFiles/rebert_circuitgen.dir/blocks.cc.o.d"
  "/root/repo/src/circuitgen/suite.cc" "src/circuitgen/CMakeFiles/rebert_circuitgen.dir/suite.cc.o" "gcc" "src/circuitgen/CMakeFiles/rebert_circuitgen.dir/suite.cc.o.d"
  "/root/repo/src/circuitgen/trojan.cc" "src/circuitgen/CMakeFiles/rebert_circuitgen.dir/trojan.cc.o" "gcc" "src/circuitgen/CMakeFiles/rebert_circuitgen.dir/trojan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nl/CMakeFiles/rebert_nl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rebert_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
