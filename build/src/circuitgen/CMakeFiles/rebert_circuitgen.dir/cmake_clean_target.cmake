file(REMOVE_RECURSE
  "librebert_circuitgen.a"
)
