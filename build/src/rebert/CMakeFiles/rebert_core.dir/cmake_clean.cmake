file(REMOVE_RECURSE
  "CMakeFiles/rebert_core.dir/dataset.cc.o"
  "CMakeFiles/rebert_core.dir/dataset.cc.o.d"
  "CMakeFiles/rebert_core.dir/filter.cc.o"
  "CMakeFiles/rebert_core.dir/filter.cc.o.d"
  "CMakeFiles/rebert_core.dir/grouping.cc.o"
  "CMakeFiles/rebert_core.dir/grouping.cc.o.d"
  "CMakeFiles/rebert_core.dir/pipeline.cc.o"
  "CMakeFiles/rebert_core.dir/pipeline.cc.o.d"
  "CMakeFiles/rebert_core.dir/prediction_cache.cc.o"
  "CMakeFiles/rebert_core.dir/prediction_cache.cc.o.d"
  "CMakeFiles/rebert_core.dir/report.cc.o"
  "CMakeFiles/rebert_core.dir/report.cc.o.d"
  "CMakeFiles/rebert_core.dir/scoring.cc.o"
  "CMakeFiles/rebert_core.dir/scoring.cc.o.d"
  "CMakeFiles/rebert_core.dir/tokenizer.cc.o"
  "CMakeFiles/rebert_core.dir/tokenizer.cc.o.d"
  "CMakeFiles/rebert_core.dir/tree_code.cc.o"
  "CMakeFiles/rebert_core.dir/tree_code.cc.o.d"
  "CMakeFiles/rebert_core.dir/vocab.cc.o"
  "CMakeFiles/rebert_core.dir/vocab.cc.o.d"
  "CMakeFiles/rebert_core.dir/word_typing.cc.o"
  "CMakeFiles/rebert_core.dir/word_typing.cc.o.d"
  "librebert_core.a"
  "librebert_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
