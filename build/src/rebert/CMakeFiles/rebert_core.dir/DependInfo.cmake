
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rebert/dataset.cc" "src/rebert/CMakeFiles/rebert_core.dir/dataset.cc.o" "gcc" "src/rebert/CMakeFiles/rebert_core.dir/dataset.cc.o.d"
  "/root/repo/src/rebert/filter.cc" "src/rebert/CMakeFiles/rebert_core.dir/filter.cc.o" "gcc" "src/rebert/CMakeFiles/rebert_core.dir/filter.cc.o.d"
  "/root/repo/src/rebert/grouping.cc" "src/rebert/CMakeFiles/rebert_core.dir/grouping.cc.o" "gcc" "src/rebert/CMakeFiles/rebert_core.dir/grouping.cc.o.d"
  "/root/repo/src/rebert/pipeline.cc" "src/rebert/CMakeFiles/rebert_core.dir/pipeline.cc.o" "gcc" "src/rebert/CMakeFiles/rebert_core.dir/pipeline.cc.o.d"
  "/root/repo/src/rebert/prediction_cache.cc" "src/rebert/CMakeFiles/rebert_core.dir/prediction_cache.cc.o" "gcc" "src/rebert/CMakeFiles/rebert_core.dir/prediction_cache.cc.o.d"
  "/root/repo/src/rebert/report.cc" "src/rebert/CMakeFiles/rebert_core.dir/report.cc.o" "gcc" "src/rebert/CMakeFiles/rebert_core.dir/report.cc.o.d"
  "/root/repo/src/rebert/scoring.cc" "src/rebert/CMakeFiles/rebert_core.dir/scoring.cc.o" "gcc" "src/rebert/CMakeFiles/rebert_core.dir/scoring.cc.o.d"
  "/root/repo/src/rebert/tokenizer.cc" "src/rebert/CMakeFiles/rebert_core.dir/tokenizer.cc.o" "gcc" "src/rebert/CMakeFiles/rebert_core.dir/tokenizer.cc.o.d"
  "/root/repo/src/rebert/tree_code.cc" "src/rebert/CMakeFiles/rebert_core.dir/tree_code.cc.o" "gcc" "src/rebert/CMakeFiles/rebert_core.dir/tree_code.cc.o.d"
  "/root/repo/src/rebert/vocab.cc" "src/rebert/CMakeFiles/rebert_core.dir/vocab.cc.o" "gcc" "src/rebert/CMakeFiles/rebert_core.dir/vocab.cc.o.d"
  "/root/repo/src/rebert/word_typing.cc" "src/rebert/CMakeFiles/rebert_core.dir/word_typing.cc.o" "gcc" "src/rebert/CMakeFiles/rebert_core.dir/word_typing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bert/CMakeFiles/rebert_bert.dir/DependInfo.cmake"
  "/root/repo/build/src/nl/CMakeFiles/rebert_nl.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rebert_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rebert_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rebert_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
