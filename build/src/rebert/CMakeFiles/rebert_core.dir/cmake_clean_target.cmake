file(REMOVE_RECURSE
  "librebert_core.a"
)
