# Empty compiler generated dependencies file for rebert_core.
# This may be replaced when dependencies are built.
