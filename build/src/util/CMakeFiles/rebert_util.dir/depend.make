# Empty dependencies file for rebert_util.
# This may be replaced when dependencies are built.
