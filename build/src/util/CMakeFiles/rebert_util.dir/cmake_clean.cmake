file(REMOVE_RECURSE
  "CMakeFiles/rebert_util.dir/csv.cc.o"
  "CMakeFiles/rebert_util.dir/csv.cc.o.d"
  "CMakeFiles/rebert_util.dir/env.cc.o"
  "CMakeFiles/rebert_util.dir/env.cc.o.d"
  "CMakeFiles/rebert_util.dir/flags.cc.o"
  "CMakeFiles/rebert_util.dir/flags.cc.o.d"
  "CMakeFiles/rebert_util.dir/logging.cc.o"
  "CMakeFiles/rebert_util.dir/logging.cc.o.d"
  "CMakeFiles/rebert_util.dir/rng.cc.o"
  "CMakeFiles/rebert_util.dir/rng.cc.o.d"
  "CMakeFiles/rebert_util.dir/string_utils.cc.o"
  "CMakeFiles/rebert_util.dir/string_utils.cc.o.d"
  "CMakeFiles/rebert_util.dir/table.cc.o"
  "CMakeFiles/rebert_util.dir/table.cc.o.d"
  "CMakeFiles/rebert_util.dir/timer.cc.o"
  "CMakeFiles/rebert_util.dir/timer.cc.o.d"
  "librebert_util.a"
  "librebert_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
