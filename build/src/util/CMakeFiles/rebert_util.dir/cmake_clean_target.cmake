file(REMOVE_RECURSE
  "librebert_util.a"
)
