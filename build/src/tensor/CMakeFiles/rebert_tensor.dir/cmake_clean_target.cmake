file(REMOVE_RECURSE
  "librebert_tensor.a"
)
