# Empty dependencies file for rebert_tensor.
# This may be replaced when dependencies are built.
