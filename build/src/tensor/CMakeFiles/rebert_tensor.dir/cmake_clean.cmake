file(REMOVE_RECURSE
  "CMakeFiles/rebert_tensor.dir/gradcheck.cc.o"
  "CMakeFiles/rebert_tensor.dir/gradcheck.cc.o.d"
  "CMakeFiles/rebert_tensor.dir/layers.cc.o"
  "CMakeFiles/rebert_tensor.dir/layers.cc.o.d"
  "CMakeFiles/rebert_tensor.dir/ops.cc.o"
  "CMakeFiles/rebert_tensor.dir/ops.cc.o.d"
  "CMakeFiles/rebert_tensor.dir/optimizer.cc.o"
  "CMakeFiles/rebert_tensor.dir/optimizer.cc.o.d"
  "CMakeFiles/rebert_tensor.dir/serialize.cc.o"
  "CMakeFiles/rebert_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/rebert_tensor.dir/tensor.cc.o"
  "CMakeFiles/rebert_tensor.dir/tensor.cc.o.d"
  "librebert_tensor.a"
  "librebert_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
