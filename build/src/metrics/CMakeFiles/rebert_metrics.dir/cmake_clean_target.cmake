file(REMOVE_RECURSE
  "librebert_metrics.a"
)
