# Empty dependencies file for rebert_metrics.
# This may be replaced when dependencies are built.
