file(REMOVE_RECURSE
  "CMakeFiles/rebert_metrics.dir/clustering.cc.o"
  "CMakeFiles/rebert_metrics.dir/clustering.cc.o.d"
  "librebert_metrics.a"
  "librebert_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
