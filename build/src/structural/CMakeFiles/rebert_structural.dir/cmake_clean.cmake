file(REMOVE_RECURSE
  "CMakeFiles/rebert_structural.dir/matching.cc.o"
  "CMakeFiles/rebert_structural.dir/matching.cc.o.d"
  "librebert_structural.a"
  "librebert_structural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_structural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
