# Empty dependencies file for rebert_structural.
# This may be replaced when dependencies are built.
