file(REMOVE_RECURSE
  "librebert_structural.a"
)
