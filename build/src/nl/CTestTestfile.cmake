# CMake generated Testfile for 
# Source directory: /root/repo/src/nl
# Build directory: /root/repo/build/src/nl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
