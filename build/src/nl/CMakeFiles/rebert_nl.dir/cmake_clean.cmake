file(REMOVE_RECURSE
  "CMakeFiles/rebert_nl.dir/cone.cc.o"
  "CMakeFiles/rebert_nl.dir/cone.cc.o.d"
  "CMakeFiles/rebert_nl.dir/corruption.cc.o"
  "CMakeFiles/rebert_nl.dir/corruption.cc.o.d"
  "CMakeFiles/rebert_nl.dir/decompose.cc.o"
  "CMakeFiles/rebert_nl.dir/decompose.cc.o.d"
  "CMakeFiles/rebert_nl.dir/export_dot.cc.o"
  "CMakeFiles/rebert_nl.dir/export_dot.cc.o.d"
  "CMakeFiles/rebert_nl.dir/gate.cc.o"
  "CMakeFiles/rebert_nl.dir/gate.cc.o.d"
  "CMakeFiles/rebert_nl.dir/netlist.cc.o"
  "CMakeFiles/rebert_nl.dir/netlist.cc.o.d"
  "CMakeFiles/rebert_nl.dir/opt.cc.o"
  "CMakeFiles/rebert_nl.dir/opt.cc.o.d"
  "CMakeFiles/rebert_nl.dir/parser.cc.o"
  "CMakeFiles/rebert_nl.dir/parser.cc.o.d"
  "CMakeFiles/rebert_nl.dir/simulate.cc.o"
  "CMakeFiles/rebert_nl.dir/simulate.cc.o.d"
  "CMakeFiles/rebert_nl.dir/verilog.cc.o"
  "CMakeFiles/rebert_nl.dir/verilog.cc.o.d"
  "CMakeFiles/rebert_nl.dir/words.cc.o"
  "CMakeFiles/rebert_nl.dir/words.cc.o.d"
  "librebert_nl.a"
  "librebert_nl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_nl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
