# Empty dependencies file for rebert_nl.
# This may be replaced when dependencies are built.
