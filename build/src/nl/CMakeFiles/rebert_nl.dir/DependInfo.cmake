
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nl/cone.cc" "src/nl/CMakeFiles/rebert_nl.dir/cone.cc.o" "gcc" "src/nl/CMakeFiles/rebert_nl.dir/cone.cc.o.d"
  "/root/repo/src/nl/corruption.cc" "src/nl/CMakeFiles/rebert_nl.dir/corruption.cc.o" "gcc" "src/nl/CMakeFiles/rebert_nl.dir/corruption.cc.o.d"
  "/root/repo/src/nl/decompose.cc" "src/nl/CMakeFiles/rebert_nl.dir/decompose.cc.o" "gcc" "src/nl/CMakeFiles/rebert_nl.dir/decompose.cc.o.d"
  "/root/repo/src/nl/export_dot.cc" "src/nl/CMakeFiles/rebert_nl.dir/export_dot.cc.o" "gcc" "src/nl/CMakeFiles/rebert_nl.dir/export_dot.cc.o.d"
  "/root/repo/src/nl/gate.cc" "src/nl/CMakeFiles/rebert_nl.dir/gate.cc.o" "gcc" "src/nl/CMakeFiles/rebert_nl.dir/gate.cc.o.d"
  "/root/repo/src/nl/netlist.cc" "src/nl/CMakeFiles/rebert_nl.dir/netlist.cc.o" "gcc" "src/nl/CMakeFiles/rebert_nl.dir/netlist.cc.o.d"
  "/root/repo/src/nl/opt.cc" "src/nl/CMakeFiles/rebert_nl.dir/opt.cc.o" "gcc" "src/nl/CMakeFiles/rebert_nl.dir/opt.cc.o.d"
  "/root/repo/src/nl/parser.cc" "src/nl/CMakeFiles/rebert_nl.dir/parser.cc.o" "gcc" "src/nl/CMakeFiles/rebert_nl.dir/parser.cc.o.d"
  "/root/repo/src/nl/simulate.cc" "src/nl/CMakeFiles/rebert_nl.dir/simulate.cc.o" "gcc" "src/nl/CMakeFiles/rebert_nl.dir/simulate.cc.o.d"
  "/root/repo/src/nl/verilog.cc" "src/nl/CMakeFiles/rebert_nl.dir/verilog.cc.o" "gcc" "src/nl/CMakeFiles/rebert_nl.dir/verilog.cc.o.d"
  "/root/repo/src/nl/words.cc" "src/nl/CMakeFiles/rebert_nl.dir/words.cc.o" "gcc" "src/nl/CMakeFiles/rebert_nl.dir/words.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rebert_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
