file(REMOVE_RECURSE
  "librebert_nl.a"
)
