file(REMOVE_RECURSE
  "CMakeFiles/nl_words_test.dir/nl/words_test.cc.o"
  "CMakeFiles/nl_words_test.dir/nl/words_test.cc.o.d"
  "nl_words_test"
  "nl_words_test.pdb"
  "nl_words_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl_words_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
