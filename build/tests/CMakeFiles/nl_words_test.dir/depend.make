# Empty dependencies file for nl_words_test.
# This may be replaced when dependencies are built.
