# Empty compiler generated dependencies file for nl_words_io_test.
# This may be replaced when dependencies are built.
