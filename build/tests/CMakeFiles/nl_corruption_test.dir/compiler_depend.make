# Empty compiler generated dependencies file for nl_corruption_test.
# This may be replaced when dependencies are built.
