file(REMOVE_RECURSE
  "CMakeFiles/nl_corruption_test.dir/nl/corruption_test.cc.o"
  "CMakeFiles/nl_corruption_test.dir/nl/corruption_test.cc.o.d"
  "nl_corruption_test"
  "nl_corruption_test.pdb"
  "nl_corruption_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl_corruption_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
