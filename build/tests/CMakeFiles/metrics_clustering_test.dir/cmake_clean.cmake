file(REMOVE_RECURSE
  "CMakeFiles/metrics_clustering_test.dir/metrics/clustering_test.cc.o"
  "CMakeFiles/metrics_clustering_test.dir/metrics/clustering_test.cc.o.d"
  "metrics_clustering_test"
  "metrics_clustering_test.pdb"
  "metrics_clustering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_clustering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
