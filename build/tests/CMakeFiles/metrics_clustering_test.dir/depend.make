# Empty dependencies file for metrics_clustering_test.
# This may be replaced when dependencies are built.
