# Empty dependencies file for bert_attention_test.
# This may be replaced when dependencies are built.
