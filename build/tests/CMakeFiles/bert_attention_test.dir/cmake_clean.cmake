file(REMOVE_RECURSE
  "CMakeFiles/bert_attention_test.dir/bert/attention_test.cc.o"
  "CMakeFiles/bert_attention_test.dir/bert/attention_test.cc.o.d"
  "bert_attention_test"
  "bert_attention_test.pdb"
  "bert_attention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bert_attention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
