# Empty dependencies file for nl_simulate_test.
# This may be replaced when dependencies are built.
