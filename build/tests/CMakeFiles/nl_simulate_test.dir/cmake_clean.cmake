file(REMOVE_RECURSE
  "CMakeFiles/nl_simulate_test.dir/nl/simulate_test.cc.o"
  "CMakeFiles/nl_simulate_test.dir/nl/simulate_test.cc.o.d"
  "nl_simulate_test"
  "nl_simulate_test.pdb"
  "nl_simulate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl_simulate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
