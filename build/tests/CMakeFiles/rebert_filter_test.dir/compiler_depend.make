# Empty compiler generated dependencies file for rebert_filter_test.
# This may be replaced when dependencies are built.
