file(REMOVE_RECURSE
  "CMakeFiles/rebert_filter_test.dir/rebert/filter_test.cc.o"
  "CMakeFiles/rebert_filter_test.dir/rebert/filter_test.cc.o.d"
  "rebert_filter_test"
  "rebert_filter_test.pdb"
  "rebert_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
