# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rebert_filter_test.
