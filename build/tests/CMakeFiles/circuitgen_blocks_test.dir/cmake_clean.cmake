file(REMOVE_RECURSE
  "CMakeFiles/circuitgen_blocks_test.dir/circuitgen/blocks_test.cc.o"
  "CMakeFiles/circuitgen_blocks_test.dir/circuitgen/blocks_test.cc.o.d"
  "circuitgen_blocks_test"
  "circuitgen_blocks_test.pdb"
  "circuitgen_blocks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuitgen_blocks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
