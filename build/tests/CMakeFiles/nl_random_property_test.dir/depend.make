# Empty dependencies file for nl_random_property_test.
# This may be replaced when dependencies are built.
