file(REMOVE_RECURSE
  "CMakeFiles/nl_random_property_test.dir/nl/random_property_test.cc.o"
  "CMakeFiles/nl_random_property_test.dir/nl/random_property_test.cc.o.d"
  "nl_random_property_test"
  "nl_random_property_test.pdb"
  "nl_random_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl_random_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
