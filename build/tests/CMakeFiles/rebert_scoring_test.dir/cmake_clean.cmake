file(REMOVE_RECURSE
  "CMakeFiles/rebert_scoring_test.dir/rebert/scoring_test.cc.o"
  "CMakeFiles/rebert_scoring_test.dir/rebert/scoring_test.cc.o.d"
  "rebert_scoring_test"
  "rebert_scoring_test.pdb"
  "rebert_scoring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_scoring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
