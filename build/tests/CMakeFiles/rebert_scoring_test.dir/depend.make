# Empty dependencies file for rebert_scoring_test.
# This may be replaced when dependencies are built.
