file(REMOVE_RECURSE
  "CMakeFiles/rebert_tree_code_test.dir/rebert/tree_code_test.cc.o"
  "CMakeFiles/rebert_tree_code_test.dir/rebert/tree_code_test.cc.o.d"
  "rebert_tree_code_test"
  "rebert_tree_code_test.pdb"
  "rebert_tree_code_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_tree_code_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
