# Empty dependencies file for rebert_tree_code_test.
# This may be replaced when dependencies are built.
