file(REMOVE_RECURSE
  "CMakeFiles/circuitgen_suite_test.dir/circuitgen/suite_test.cc.o"
  "CMakeFiles/circuitgen_suite_test.dir/circuitgen/suite_test.cc.o.d"
  "circuitgen_suite_test"
  "circuitgen_suite_test.pdb"
  "circuitgen_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuitgen_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
