# Empty compiler generated dependencies file for circuitgen_suite_test.
# This may be replaced when dependencies are built.
