# Empty compiler generated dependencies file for rebert_word_typing_test.
# This may be replaced when dependencies are built.
