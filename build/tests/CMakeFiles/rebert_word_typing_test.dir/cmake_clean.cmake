file(REMOVE_RECURSE
  "CMakeFiles/rebert_word_typing_test.dir/rebert/word_typing_test.cc.o"
  "CMakeFiles/rebert_word_typing_test.dir/rebert/word_typing_test.cc.o.d"
  "rebert_word_typing_test"
  "rebert_word_typing_test.pdb"
  "rebert_word_typing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_word_typing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
