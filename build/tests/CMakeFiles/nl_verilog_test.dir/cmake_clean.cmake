file(REMOVE_RECURSE
  "CMakeFiles/nl_verilog_test.dir/nl/verilog_test.cc.o"
  "CMakeFiles/nl_verilog_test.dir/nl/verilog_test.cc.o.d"
  "nl_verilog_test"
  "nl_verilog_test.pdb"
  "nl_verilog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl_verilog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
