# Empty dependencies file for nl_verilog_test.
# This may be replaced when dependencies are built.
