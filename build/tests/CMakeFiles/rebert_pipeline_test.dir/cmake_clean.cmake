file(REMOVE_RECURSE
  "CMakeFiles/rebert_pipeline_test.dir/rebert/pipeline_test.cc.o"
  "CMakeFiles/rebert_pipeline_test.dir/rebert/pipeline_test.cc.o.d"
  "rebert_pipeline_test"
  "rebert_pipeline_test.pdb"
  "rebert_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
