# Empty dependencies file for rebert_pipeline_test.
# This may be replaced when dependencies are built.
