# Empty compiler generated dependencies file for rebert_prediction_cache_test.
# This may be replaced when dependencies are built.
