file(REMOVE_RECURSE
  "CMakeFiles/rebert_prediction_cache_test.dir/rebert/prediction_cache_test.cc.o"
  "CMakeFiles/rebert_prediction_cache_test.dir/rebert/prediction_cache_test.cc.o.d"
  "rebert_prediction_cache_test"
  "rebert_prediction_cache_test.pdb"
  "rebert_prediction_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_prediction_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
