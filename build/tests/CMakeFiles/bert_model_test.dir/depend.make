# Empty dependencies file for bert_model_test.
# This may be replaced when dependencies are built.
