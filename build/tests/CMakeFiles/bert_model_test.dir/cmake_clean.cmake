file(REMOVE_RECURSE
  "CMakeFiles/bert_model_test.dir/bert/model_test.cc.o"
  "CMakeFiles/bert_model_test.dir/bert/model_test.cc.o.d"
  "bert_model_test"
  "bert_model_test.pdb"
  "bert_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bert_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
