# Empty compiler generated dependencies file for bert_config_test.
# This may be replaced when dependencies are built.
