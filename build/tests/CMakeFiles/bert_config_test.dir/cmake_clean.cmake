file(REMOVE_RECURSE
  "CMakeFiles/bert_config_test.dir/bert/config_test.cc.o"
  "CMakeFiles/bert_config_test.dir/bert/config_test.cc.o.d"
  "bert_config_test"
  "bert_config_test.pdb"
  "bert_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bert_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
