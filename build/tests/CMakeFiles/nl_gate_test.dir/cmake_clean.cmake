file(REMOVE_RECURSE
  "CMakeFiles/nl_gate_test.dir/nl/gate_test.cc.o"
  "CMakeFiles/nl_gate_test.dir/nl/gate_test.cc.o.d"
  "nl_gate_test"
  "nl_gate_test.pdb"
  "nl_gate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl_gate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
