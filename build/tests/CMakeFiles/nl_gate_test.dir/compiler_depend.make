# Empty compiler generated dependencies file for nl_gate_test.
# This may be replaced when dependencies are built.
