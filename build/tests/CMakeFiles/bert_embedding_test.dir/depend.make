# Empty dependencies file for bert_embedding_test.
# This may be replaced when dependencies are built.
