file(REMOVE_RECURSE
  "CMakeFiles/bert_embedding_test.dir/bert/embedding_test.cc.o"
  "CMakeFiles/bert_embedding_test.dir/bert/embedding_test.cc.o.d"
  "bert_embedding_test"
  "bert_embedding_test.pdb"
  "bert_embedding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bert_embedding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
