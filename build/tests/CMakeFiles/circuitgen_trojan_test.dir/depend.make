# Empty dependencies file for circuitgen_trojan_test.
# This may be replaced when dependencies are built.
