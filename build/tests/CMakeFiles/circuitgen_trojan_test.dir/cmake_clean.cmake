file(REMOVE_RECURSE
  "CMakeFiles/circuitgen_trojan_test.dir/circuitgen/trojan_test.cc.o"
  "CMakeFiles/circuitgen_trojan_test.dir/circuitgen/trojan_test.cc.o.d"
  "circuitgen_trojan_test"
  "circuitgen_trojan_test.pdb"
  "circuitgen_trojan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuitgen_trojan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
