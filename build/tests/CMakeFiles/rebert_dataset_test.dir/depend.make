# Empty dependencies file for rebert_dataset_test.
# This may be replaced when dependencies are built.
