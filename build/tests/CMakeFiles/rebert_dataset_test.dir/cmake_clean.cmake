file(REMOVE_RECURSE
  "CMakeFiles/rebert_dataset_test.dir/rebert/dataset_test.cc.o"
  "CMakeFiles/rebert_dataset_test.dir/rebert/dataset_test.cc.o.d"
  "rebert_dataset_test"
  "rebert_dataset_test.pdb"
  "rebert_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
