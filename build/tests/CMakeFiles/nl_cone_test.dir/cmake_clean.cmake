file(REMOVE_RECURSE
  "CMakeFiles/nl_cone_test.dir/nl/cone_test.cc.o"
  "CMakeFiles/nl_cone_test.dir/nl/cone_test.cc.o.d"
  "nl_cone_test"
  "nl_cone_test.pdb"
  "nl_cone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl_cone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
