# Empty compiler generated dependencies file for nl_cone_test.
# This may be replaced when dependencies are built.
