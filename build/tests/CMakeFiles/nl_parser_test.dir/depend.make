# Empty dependencies file for nl_parser_test.
# This may be replaced when dependencies are built.
