file(REMOVE_RECURSE
  "CMakeFiles/nl_parser_test.dir/nl/parser_test.cc.o"
  "CMakeFiles/nl_parser_test.dir/nl/parser_test.cc.o.d"
  "nl_parser_test"
  "nl_parser_test.pdb"
  "nl_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
