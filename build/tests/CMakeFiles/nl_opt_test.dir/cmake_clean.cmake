file(REMOVE_RECURSE
  "CMakeFiles/nl_opt_test.dir/nl/opt_test.cc.o"
  "CMakeFiles/nl_opt_test.dir/nl/opt_test.cc.o.d"
  "nl_opt_test"
  "nl_opt_test.pdb"
  "nl_opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
