# Empty dependencies file for nl_opt_test.
# This may be replaced when dependencies are built.
