file(REMOVE_RECURSE
  "CMakeFiles/rebert_report_test.dir/rebert/report_test.cc.o"
  "CMakeFiles/rebert_report_test.dir/rebert/report_test.cc.o.d"
  "rebert_report_test"
  "rebert_report_test.pdb"
  "rebert_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
