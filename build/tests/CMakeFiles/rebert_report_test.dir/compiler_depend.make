# Empty compiler generated dependencies file for rebert_report_test.
# This may be replaced when dependencies are built.
