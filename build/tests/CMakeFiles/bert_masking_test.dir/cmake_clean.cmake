file(REMOVE_RECURSE
  "CMakeFiles/bert_masking_test.dir/bert/masking_test.cc.o"
  "CMakeFiles/bert_masking_test.dir/bert/masking_test.cc.o.d"
  "bert_masking_test"
  "bert_masking_test.pdb"
  "bert_masking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bert_masking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
