# Empty dependencies file for bert_masking_test.
# This may be replaced when dependencies are built.
