# Empty dependencies file for tensor_layers_test.
# This may be replaced when dependencies are built.
