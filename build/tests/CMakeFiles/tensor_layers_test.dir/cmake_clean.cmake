file(REMOVE_RECURSE
  "CMakeFiles/tensor_layers_test.dir/tensor/layers_test.cc.o"
  "CMakeFiles/tensor_layers_test.dir/tensor/layers_test.cc.o.d"
  "tensor_layers_test"
  "tensor_layers_test.pdb"
  "tensor_layers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_layers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
