# Empty compiler generated dependencies file for nl_netlist_test.
# This may be replaced when dependencies are built.
