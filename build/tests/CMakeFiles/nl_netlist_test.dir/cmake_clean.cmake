file(REMOVE_RECURSE
  "CMakeFiles/nl_netlist_test.dir/nl/netlist_test.cc.o"
  "CMakeFiles/nl_netlist_test.dir/nl/netlist_test.cc.o.d"
  "nl_netlist_test"
  "nl_netlist_test.pdb"
  "nl_netlist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl_netlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
