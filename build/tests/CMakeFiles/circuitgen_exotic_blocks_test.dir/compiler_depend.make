# Empty compiler generated dependencies file for circuitgen_exotic_blocks_test.
# This may be replaced when dependencies are built.
