# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for circuitgen_exotic_blocks_test.
