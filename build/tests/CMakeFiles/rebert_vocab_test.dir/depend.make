# Empty dependencies file for rebert_vocab_test.
# This may be replaced when dependencies are built.
