file(REMOVE_RECURSE
  "CMakeFiles/rebert_vocab_test.dir/rebert/vocab_test.cc.o"
  "CMakeFiles/rebert_vocab_test.dir/rebert/vocab_test.cc.o.d"
  "rebert_vocab_test"
  "rebert_vocab_test.pdb"
  "rebert_vocab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_vocab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
