# Empty compiler generated dependencies file for structural_matching_test.
# This may be replaced when dependencies are built.
