file(REMOVE_RECURSE
  "CMakeFiles/structural_matching_test.dir/structural/matching_test.cc.o"
  "CMakeFiles/structural_matching_test.dir/structural/matching_test.cc.o.d"
  "structural_matching_test"
  "structural_matching_test.pdb"
  "structural_matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structural_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
