# Empty compiler generated dependencies file for rebert_grouping_test.
# This may be replaced when dependencies are built.
