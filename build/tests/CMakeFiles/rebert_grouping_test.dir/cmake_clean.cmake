file(REMOVE_RECURSE
  "CMakeFiles/rebert_grouping_test.dir/rebert/grouping_test.cc.o"
  "CMakeFiles/rebert_grouping_test.dir/rebert/grouping_test.cc.o.d"
  "rebert_grouping_test"
  "rebert_grouping_test.pdb"
  "rebert_grouping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_grouping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
