# Empty compiler generated dependencies file for bert_encoder_test.
# This may be replaced when dependencies are built.
