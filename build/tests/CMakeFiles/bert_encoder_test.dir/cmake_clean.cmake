file(REMOVE_RECURSE
  "CMakeFiles/bert_encoder_test.dir/bert/encoder_test.cc.o"
  "CMakeFiles/bert_encoder_test.dir/bert/encoder_test.cc.o.d"
  "bert_encoder_test"
  "bert_encoder_test.pdb"
  "bert_encoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bert_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
