# Empty dependencies file for bert_trainer_test.
# This may be replaced when dependencies are built.
