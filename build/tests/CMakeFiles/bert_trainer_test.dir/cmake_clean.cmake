file(REMOVE_RECURSE
  "CMakeFiles/bert_trainer_test.dir/bert/trainer_test.cc.o"
  "CMakeFiles/bert_trainer_test.dir/bert/trainer_test.cc.o.d"
  "bert_trainer_test"
  "bert_trainer_test.pdb"
  "bert_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bert_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
