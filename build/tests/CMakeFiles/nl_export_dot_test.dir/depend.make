# Empty dependencies file for nl_export_dot_test.
# This may be replaced when dependencies are built.
