file(REMOVE_RECURSE
  "CMakeFiles/nl_export_dot_test.dir/nl/export_dot_test.cc.o"
  "CMakeFiles/nl_export_dot_test.dir/nl/export_dot_test.cc.o.d"
  "nl_export_dot_test"
  "nl_export_dot_test.pdb"
  "nl_export_dot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl_export_dot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
