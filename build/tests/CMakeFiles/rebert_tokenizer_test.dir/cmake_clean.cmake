file(REMOVE_RECURSE
  "CMakeFiles/rebert_tokenizer_test.dir/rebert/tokenizer_test.cc.o"
  "CMakeFiles/rebert_tokenizer_test.dir/rebert/tokenizer_test.cc.o.d"
  "rebert_tokenizer_test"
  "rebert_tokenizer_test.pdb"
  "rebert_tokenizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebert_tokenizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
