# Empty compiler generated dependencies file for rebert_tokenizer_test.
# This may be replaced when dependencies are built.
