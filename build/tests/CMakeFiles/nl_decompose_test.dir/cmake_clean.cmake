file(REMOVE_RECURSE
  "CMakeFiles/nl_decompose_test.dir/nl/decompose_test.cc.o"
  "CMakeFiles/nl_decompose_test.dir/nl/decompose_test.cc.o.d"
  "nl_decompose_test"
  "nl_decompose_test.pdb"
  "nl_decompose_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl_decompose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
