# Empty compiler generated dependencies file for nl_decompose_test.
# This may be replaced when dependencies are built.
