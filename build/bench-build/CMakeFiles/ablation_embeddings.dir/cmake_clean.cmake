file(REMOVE_RECURSE
  "../bench/ablation_embeddings"
  "../bench/ablation_embeddings.pdb"
  "CMakeFiles/ablation_embeddings.dir/ablation_embeddings.cc.o"
  "CMakeFiles/ablation_embeddings.dir/ablation_embeddings.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
