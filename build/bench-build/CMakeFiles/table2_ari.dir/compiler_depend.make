# Empty compiler generated dependencies file for table2_ari.
# This may be replaced when dependencies are built.
