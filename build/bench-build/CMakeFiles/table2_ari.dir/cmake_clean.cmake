file(REMOVE_RECURSE
  "../bench/table2_ari"
  "../bench/table2_ari.pdb"
  "CMakeFiles/table2_ari.dir/table2_ari.cc.o"
  "CMakeFiles/table2_ari.dir/table2_ari.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_ari.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
