file(REMOVE_RECURSE
  "../bench/ablation_filter"
  "../bench/ablation_filter.pdb"
  "CMakeFiles/ablation_filter.dir/ablation_filter.cc.o"
  "CMakeFiles/ablation_filter.dir/ablation_filter.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
