
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_filter.cc" "bench-build/CMakeFiles/ablation_filter.dir/ablation_filter.cc.o" "gcc" "bench-build/CMakeFiles/ablation_filter.dir/ablation_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rebert/CMakeFiles/rebert_core.dir/DependInfo.cmake"
  "/root/repo/build/src/structural/CMakeFiles/rebert_structural.dir/DependInfo.cmake"
  "/root/repo/build/src/bert/CMakeFiles/rebert_bert.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rebert_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/circuitgen/CMakeFiles/rebert_circuitgen.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rebert_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/nl/CMakeFiles/rebert_nl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rebert_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
