# Empty dependencies file for ablation_optimization.
# This may be replaced when dependencies are built.
