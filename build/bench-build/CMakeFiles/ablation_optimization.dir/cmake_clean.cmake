file(REMOVE_RECURSE
  "../bench/ablation_optimization"
  "../bench/ablation_optimization.pdb"
  "CMakeFiles/ablation_optimization.dir/ablation_optimization.cc.o"
  "CMakeFiles/ablation_optimization.dir/ablation_optimization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
