# Empty dependencies file for bench_file_recovery.
# This may be replaced when dependencies are built.
