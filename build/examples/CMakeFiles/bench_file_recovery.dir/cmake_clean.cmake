file(REMOVE_RECURSE
  "CMakeFiles/bench_file_recovery.dir/bench_file_recovery.cpp.o"
  "CMakeFiles/bench_file_recovery.dir/bench_file_recovery.cpp.o.d"
  "bench_file_recovery"
  "bench_file_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_file_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
