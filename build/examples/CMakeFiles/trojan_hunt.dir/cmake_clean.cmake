file(REMOVE_RECURSE
  "CMakeFiles/trojan_hunt.dir/trojan_hunt.cpp.o"
  "CMakeFiles/trojan_hunt.dir/trojan_hunt.cpp.o.d"
  "trojan_hunt"
  "trojan_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trojan_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
