# Empty compiler generated dependencies file for netlist_audit.
# This may be replaced when dependencies are built.
