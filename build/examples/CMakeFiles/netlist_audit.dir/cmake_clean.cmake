file(REMOVE_RECURSE
  "CMakeFiles/netlist_audit.dir/netlist_audit.cpp.o"
  "CMakeFiles/netlist_audit.dir/netlist_audit.cpp.o.d"
  "netlist_audit"
  "netlist_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
