file(REMOVE_RECURSE
  "CMakeFiles/tokenize_demo.dir/tokenize_demo.cpp.o"
  "CMakeFiles/tokenize_demo.dir/tokenize_demo.cpp.o.d"
  "tokenize_demo"
  "tokenize_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tokenize_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
