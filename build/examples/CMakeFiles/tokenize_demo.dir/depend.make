# Empty dependencies file for tokenize_demo.
# This may be replaced when dependencies are built.
