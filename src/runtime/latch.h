// Synchronization primitives shared by the runtime: a countdown latch and a
// cooperative cancellation token.
//
// Both are intentionally minimal — the thread pool and parallel_for need
// exactly "wait until N completions" and "was a stop requested", and tests
// need to exercise the primitives in isolation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

#include "util/mutex.h"

namespace rebert::runtime {

/// Single-use countdown latch: constructed with an expected count,
/// count_down() by completing workers, wait() blocks until zero.
class Latch {
 public:
  explicit Latch(std::int64_t count) : count_(count) {}
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void count_down(std::int64_t n = 1) EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    count_ -= n;
    if (count_ <= 0) cv_.notify_all();
  }

  bool try_wait() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return count_ <= 0;
  }

  void wait() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    while (count_ > 0) cv_.wait(mu_);
  }

  /// Returns true when the latch reached zero within `timeout`.
  template <typename Rep, typename Period>
  bool wait_for(const std::chrono::duration<Rep, Period>& timeout) const
      EXCLUDES(mu_) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            timeout);
    util::MutexLock lock(mu_);
    while (count_ > 0) {
      if (!cv_.wait_until(mu_, deadline)) return count_ <= 0;
    }
    return true;
  }

 private:
  mutable util::Mutex mu_{"runtime.latch"};
  mutable util::CondVar cv_;
  std::int64_t count_ GUARDED_BY(mu_);
};

/// Cooperative cancellation: long-running parallel work polls requested()
/// between chunks and stops early when a stop was requested. Wait-free on
/// the polling side (deadline-armed tokens add one monotonic clock read).
///
/// Besides the explicit request_stop(), a token can carry a deadline:
/// set_deadline_after_ms(n) makes requested() start returning true once n
/// milliseconds of wall-clock have elapsed. This is how the serving layer
/// enforces per-request deadline_ms through the same polling points the
/// cancellation path already has — micro-batches and parallel_for chunks
/// stop between units of work, never mid-forward.
class CancellationToken {
 public:
  void request_stop() { stop_.store(true, std::memory_order_release); }

  bool requested() const {
    if (stop_.load(std::memory_order_acquire)) return true;
    const std::int64_t deadline =
        deadline_ns_.load(std::memory_order_acquire);
    return deadline != 0 && now_ns() >= deadline;
  }

  /// Arm the deadline `ms` milliseconds from now (ms <= 0 expires
  /// immediately). Overwrites any previous deadline.
  void set_deadline_after_ms(std::int64_t ms) {
    deadline_ns_.store(now_ns() + ms * 1'000'000, std::memory_order_release);
  }

  bool deadline_armed() const {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }

  void reset() {
    stop_.store(false, std::memory_order_release);
    deadline_ns_.store(0, std::memory_order_release);
  }

 private:
  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> deadline_ns_{0};
};

/// Thrown by parallel_for when its CancellationToken fires mid-run.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("parallel work cancelled") {}
};

}  // namespace rebert::runtime
