// Thread-count resolution for every parallel entry point.
//
// All knobs funnel through one function so the CLI flag (--threads), the
// REBERT_THREADS environment variable, and hardware detection agree
// everywhere: benches, the serve daemon, and the pipeline resolve their
// worker counts identically.
#pragma once

namespace rebert::runtime {

/// Resolve a requested worker count into a concrete one:
///   requested >= 1  -> requested (clamped to kMaxThreads),
///   requested <= 0  -> REBERT_THREADS when set and >= 1,
///                      else std::thread::hardware_concurrency() (min 1).
int resolve_thread_count(int requested);

/// Upper bound accepted by resolve_thread_count; requests above it clamp.
/// Generous (the scheduler, not this library, should be the limit) but
/// finite so a malformed flag cannot ask for millions of threads.
inline constexpr int kMaxThreads = 512;

/// Threads currently alive in this process (the `Threads:` row of
/// /proc/self/status); -1 where procfs is unavailable. What the reactor
/// tests and the C10K bench use to prove connection count never buys a
/// thread.
int current_thread_count();

/// Resident set size in KiB (the `VmRSS:` row of /proc/self/status); -1
/// where procfs is unavailable.
long current_rss_kb();

}  // namespace rebert::runtime
