#include "runtime/thread_pool.h"

#include "runtime/fault_injector.h"
#include "runtime/threads.h"
#include "util/check.h"

namespace rebert::runtime {

ThreadPool::ThreadPool(int num_threads) {
  const int n = resolve_thread_count(num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Drain semantics: workers only exit once the queue is empty, but guard
  // against tasks submitted between the last worker exit and this point.
  while (try_run_one()) {
  }
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  REBERT_CHECK_MSG(fn != nullptr, "cannot submit a null task");
  // Chaos site: simulates enqueue failure (allocation pressure, a saturated
  // bounded queue in a future backend). Callers that fan work out must
  // survive this by running the task inline or with fewer helpers.
  FaultInjector::global().maybe_throw("pool.submit");
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    util::MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

bool ThreadPool::try_run_one() {
  std::packaged_task<void()> task;
  {
    util::MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();  // packaged_task captures exceptions into the future
  return true;
}

std::size_t ThreadPool::queued() const {
  util::MutexLock lock(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      util::MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace rebert::runtime
