// Deterministic data-parallel loop over an index range.
//
// parallel_for splits [begin, end) into fixed-size chunks (`grain` indices
// each — a function of the range only, never of the thread count) and lets
// pool workers plus the calling thread claim chunks from a shared cursor.
// Because every index is processed exactly once by a body that may only
// write state owned by that index, the results are bit-identical at any
// thread count — the scheduling order varies, the output cannot. That is
// the determinism guarantee score_all_pairs and the structural matcher
// build on (and tests/runtime/parallel_for_test.cc enforces).
//
// The caller participates in chunk processing and, while waiting for
// helpers, drains other queued pool tasks (help-while-wait), so nested
// parallel_for calls on one pool cannot deadlock.
//
// Exceptions: the first exception thrown by any body is captured and
// rethrown on the calling thread after all in-flight chunks settle.
// Cancellation: when `options.cancel` fires, no further chunks are issued
// and CancelledError is thrown (already-started chunks finish).
#pragma once

#include <cstdint>
#include <functional>

#include "runtime/latch.h"
#include "runtime/thread_pool.h"

namespace rebert::runtime {

struct ParallelForOptions {
  /// Indices per scheduling chunk. Larger = less scheduling overhead,
  /// smaller = better load balance for irregular bodies.
  std::int64_t grain = 64;
  /// Optional cooperative cancellation, polled between chunks.
  CancellationToken* cancel = nullptr;
};

/// Invoke body(i) for every i in [begin, end) using `pool`'s workers and
/// the calling thread. Blocks until every index ran (or throws, see above).
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  const ParallelForOptions& options = {});

/// Serial fallback with identical semantics (used when one thread is
/// resolved, so callers need no branching of their own).
void serial_for(std::int64_t begin, std::int64_t end,
                const std::function<void(std::int64_t)>& body,
                const ParallelForOptions& options = {});

}  // namespace rebert::runtime
