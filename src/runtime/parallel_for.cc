#include "runtime/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <vector>

#include "util/check.h"
#include "util/mutex.h"

namespace rebert::runtime {

namespace {

/// State shared between the caller and its helper tasks. The caller always
/// outlives the helpers (it waits on the completion latch before
/// returning), so the raw `body` pointer below stays valid for every
/// helper; the shared_ptr just keeps ownership symmetric between them.
struct LoopState {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t grain = 1;
  std::atomic<std::int64_t> next_chunk{0};
  std::int64_t num_chunks = 0;
  const std::function<void(std::int64_t)>* body = nullptr;
  CancellationToken* cancel = nullptr;

  util::Mutex error_mu{"loop.error"};
  std::exception_ptr first_error GUARDED_BY(error_mu);
  std::atomic<bool> failed{false};
  std::atomic<bool> cancelled{false};

  void record_error(std::exception_ptr error) EXCLUDES(error_mu) {
    util::MutexLock lock(error_mu);
    if (!first_error) first_error = std::move(error);
    failed.store(true, std::memory_order_release);
  }

  /// Claim and run chunks until the cursor is exhausted, an error was
  /// recorded, or cancellation fired.
  void drain() {
    for (;;) {
      if (failed.load(std::memory_order_acquire)) return;
      if (cancel && cancel->requested()) {
        cancelled.store(true, std::memory_order_release);
        return;
      }
      const std::int64_t chunk =
          next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      const std::int64_t lo = begin + chunk * grain;
      const std::int64_t hi = std::min(end, lo + grain);
      try {
        for (std::int64_t i = lo; i < hi; ++i) (*body)(i);
      } catch (...) {
        record_error(std::current_exception());
        return;
      }
    }
  }
};

}  // namespace

void serial_for(std::int64_t begin, std::int64_t end,
                const std::function<void(std::int64_t)>& body,
                const ParallelForOptions& options) {
  REBERT_CHECK_MSG(options.grain >= 1, "parallel_for grain must be >= 1");
  for (std::int64_t i = begin; i < end; ++i) {
    if (options.cancel && options.cancel->requested() &&
        (i - begin) % options.grain == 0)
      throw CancelledError();
    body(i);
  }
}

void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  const ParallelForOptions& options) {
  REBERT_CHECK_MSG(options.grain >= 1, "parallel_for grain must be >= 1");
  if (begin >= end) return;

  auto state = std::make_shared<LoopState>();
  state->begin = begin;
  state->end = end;
  state->grain = options.grain;
  state->num_chunks = (end - begin + options.grain - 1) / options.grain;
  state->body = &body;
  state->cancel = options.cancel;

  // One helper per worker beyond the caller, but never more than chunks —
  // extra helpers would only start, find the cursor exhausted, and exit.
  const std::int64_t helpers =
      std::min<std::int64_t>(pool.size(), state->num_chunks - 1);
  auto done = std::make_shared<Latch>(helpers);
  std::int64_t launched = 0;
  for (std::int64_t h = 0; h < helpers; ++h) {
    // A submit that throws (queue failure, injected pool.submit fault) must
    // not strand the latch: stop launching and let the caller process every
    // remaining chunk itself — slower, never wrong.
    try {
      pool.submit([state, done] {
        state->drain();
        done->count_down();
      });
      ++launched;
    } catch (...) {
      break;
    }
  }
  if (launched < helpers) done->count_down(helpers - launched);

  state->drain();  // the caller processes chunks too

  // Helpers may still be mid-chunk (or queued behind unrelated tasks);
  // help drain the pool while waiting so nested loops cannot deadlock.
  while (!done->try_wait()) {
    if (!pool.try_run_one())
      done->wait_for(std::chrono::milliseconds(1));
  }

  // All helpers have settled (latch), but the guard discipline still
  // applies: read the recorded error under its lock.
  std::exception_ptr failure;
  {
    util::MutexLock lock(state->error_mu);
    failure = state->first_error;
  }
  if (failure) std::rethrow_exception(failure);
  if (state->cancelled.load(std::memory_order_acquire))
    throw CancelledError();
}

}  // namespace rebert::runtime
