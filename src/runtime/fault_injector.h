// Deterministic, seeded fault injection for the serving runtime.
//
// A FaultInjector owns a set of named sites — fixed points in the code where
// a failure can be provoked on demand: socket reads/sends, snapshot saves,
// pool submissions, model forwards, cache snapshot loads/parses, tokenizer
// encodes. Each armed site trips with a configured
// probability drawn from its own seeded stream, so a chaos run is exactly
// reproducible: same spec, same request interleaving per thread, same trips.
//
// Sites are compiled in always (no #ifdef chaos build) and cost one relaxed
// atomic load when nothing is armed, so production binaries pay nothing.
// Arming happens either programmatically (tests) or via the environment:
//
//   REBERT_FAULTS=site:prob:seed[,site:prob:seed]...
//   REBERT_FAULTS=model.forward:1.0:7,socket.send:0.25:3
//
// An optional fourth field turns the fault into added latency instead of a
// failure: `model.forward:1.0:7:50` sleeps 50 ms per trip — how the deadline
// and admission-control tests make a fast model predictably slow.
//
// A trip manifests per call shape:
//   * maybe_throw(site)        throws runtime::InjectedFault
//   * maybe_errno(site, err)   returns true with errno set (syscall shims)
//   * should_fail(site)        bare boolean for custom handling
// Latency-mode trips sleep and then report "no failure" on all three.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/rng.h"

namespace rebert::runtime {

/// Thrown by maybe_throw when an armed site trips. Derives from
/// runtime_error so existing catch-and-degrade paths treat it exactly like
/// the real failure it simulates.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& site)
      : std::runtime_error("injected fault at " + site) {}
};

/// The sites the codebase exposes. arm()/configure() reject anything else
/// so a typo in REBERT_FAULTS fails loudly instead of arming nothing.
const std::vector<std::string>& fault_sites();

class FaultInjector {
 public:
  struct SiteReport {
    std::string site;
    double probability = 0.0;
    int delay_ms = 0;
    std::uint64_t checks = 0;  // times the site was evaluated while armed
    std::uint64_t trips = 0;   // times it fired
  };

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The process-wide injector every production site consults. First access
  /// arms it from REBERT_FAULTS (malformed specs log a warning and arm
  /// nothing — a bad env var must not take the daemon down).
  static FaultInjector& global();

  /// Arm `site` to trip with `probability` in [0, 1], decisions drawn from
  /// a stream seeded by `seed`. delay_ms > 0 turns trips into added latency
  /// instead of failures. Re-arming a site resets its stream and counters.
  /// Throws util::CheckError on an unknown site or probability outside
  /// [0, 1].
  void arm(const std::string& site, double probability, std::uint64_t seed,
           int delay_ms = 0) EXCLUDES(mu_);

  void disarm(const std::string& site) EXCLUDES(mu_);
  void disarm_all() EXCLUDES(mu_);

  /// Parse and apply the REBERT_FAULTS grammar (see file comment). Throws
  /// util::CheckError describing the first malformed entry; entries before
  /// it stay armed.
  void configure(const std::string& spec);

  /// True when the armed site trips this call. Latency-mode trips sleep
  /// here and return false. The disarmed fast path is one relaxed load.
  bool should_fail(const char* site) EXCLUDES(mu_);

  /// Throws InjectedFault when the site trips.
  void maybe_throw(const char* site);

  /// Returns true with errno = err when the site trips — drop-in for
  /// simulating a failed syscall.
  bool maybe_errno(const char* site, int err);

  bool armed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Total trips across all sites since construction / last disarm_all.
  std::uint64_t total_trips() const {
    return total_trips_.load(std::memory_order_relaxed);
  }

  /// Per-site configuration and counters, armed sites only.
  std::vector<SiteReport> report() const EXCLUDES(mu_);

 private:
  struct Site {
    double probability = 0.0;
    int delay_ms = 0;
    util::Rng rng{0};
    std::uint64_t checks = 0;
    std::uint64_t trips = 0;
  };

  // armed_count_ mirrors sites_.size() so the hot path can skip the mutex;
  // total_trips_ is read by stats endpoints without locking.
  std::atomic<int> armed_count_{0};
  std::atomic<std::uint64_t> total_trips_{0};
  mutable util::Mutex mu_{"faults.sites"};
  std::map<std::string, Site> sites_ GUARDED_BY(mu_);
};

}  // namespace rebert::runtime
