// Fixed-size worker pool with an unbounded work queue.
//
// The pool is the concurrency substrate every parallel stage shares: one
// pool per pipeline run (or per serve daemon), sized by
// runtime::resolve_thread_count. Properties the rest of the tree relies on:
//   * submit() is safe from any thread, including pool workers (the queue
//     is unbounded, so an enqueueing worker never blocks on queue space);
//   * each task's exception is captured in its future and rethrown at
//     future.get(), never swallowed or left to terminate a worker;
//   * try_run_one() lets a blocked caller help drain the queue, which is
//     how parallel_for waits without deadlocking under nesting;
//   * the destructor finishes every queued task before joining (drain
//     semantics), so submitted work is never silently dropped.
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace rebert::runtime {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (resolved through resolve_thread_count,
  /// so 0 means "REBERT_THREADS or hardware").
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task; the future resolves when it ran (or rethrows what it
  /// threw). Safe to call from worker threads.
  std::future<void> submit(std::function<void()> fn) EXCLUDES(mu_);

  /// Run one queued task on the calling thread if any is ready. Returns
  /// false when the queue was empty. Used by waiters to help drain the
  /// queue instead of blocking idle.
  bool try_run_one() EXCLUDES(mu_);

  /// Tasks currently queued (excluding running ones); for stats/tests.
  std::size_t queued() const EXCLUDES(mu_);

 private:
  void worker_loop() EXCLUDES(mu_);

  mutable util::Mutex mu_{"pool.queue"};
  util::CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  bool stopping_ GUARDED_BY(mu_) = false;
};

}  // namespace rebert::runtime
