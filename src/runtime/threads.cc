#include "runtime/threads.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/env.h"

namespace rebert::runtime {

namespace {

/// The numeric value of one `Key:   <n> ...` row of /proc/self/status,
/// or -1 when the file or the row is missing.
long proc_status_field(const char* key) {
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return -1;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  long value = -1;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      value = std::strtol(line + key_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(status);
  return value;
}

}  // namespace

int resolve_thread_count(int requested) {
  if (requested <= 0) {
    requested = util::env_int("REBERT_THREADS", 0);
    if (requested <= 0) {
      requested = static_cast<int>(std::thread::hardware_concurrency());
      if (requested <= 0) requested = 1;
    }
  }
  return std::clamp(requested, 1, kMaxThreads);
}

int current_thread_count() {
  return static_cast<int>(proc_status_field("Threads"));
}

long current_rss_kb() { return proc_status_field("VmRSS"); }

}  // namespace rebert::runtime
