#include "runtime/threads.h"

#include <algorithm>
#include <thread>

#include "util/env.h"

namespace rebert::runtime {

int resolve_thread_count(int requested) {
  if (requested <= 0) {
    requested = util::env_int("REBERT_THREADS", 0);
    if (requested <= 0) {
      requested = static_cast<int>(std::thread::hardware_concurrency());
      if (requested <= 0) requested = 1;
    }
  }
  return std::clamp(requested, 1, kMaxThreads);
}

}  // namespace rebert::runtime
