#include "runtime/fault_injector.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/check.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace rebert::runtime {

const std::vector<std::string>& fault_sites() {
  static const std::vector<std::string> sites{
      "socket.read", "socket.send", "snapshot.save",
      "pool.submit", "model.forward",
      "cache.load", "cache.parse", "tokenizer.encode",
  };
  return sites;
}

FaultInjector& FaultInjector::global() {
  static FaultInjector* injector = [] {
    auto* instance = new FaultInjector();
    const std::string spec = util::env_string("REBERT_FAULTS", "");
    if (!spec.empty()) {
      try {
        instance->configure(spec);
      } catch (const std::exception& e) {
        LOG_WARN << "REBERT_FAULTS ignored: " << e.what();
      }
    }
    return instance;
  }();
  return *injector;
}

void FaultInjector::arm(const std::string& site, double probability,
                        std::uint64_t seed, int delay_ms) {
  const std::vector<std::string>& known = fault_sites();
  REBERT_CHECK_MSG(
      std::find(known.begin(), known.end(), site) != known.end(),
      "unknown fault site '" + site + "' (known: " +
          util::join(known, ", ") + ")");
  REBERT_CHECK_MSG(probability >= 0.0 && probability <= 1.0,
                   "fault probability must be in [0, 1], got " << probability);
  REBERT_CHECK_MSG(delay_ms >= 0, "fault delay must be >= 0 ms");
  util::MutexLock lock(mu_);
  Site armed;
  armed.probability = probability;
  armed.delay_ms = delay_ms;
  armed.rng = util::Rng(seed);
  const bool fresh = sites_.find(site) == sites_.end();
  sites_[site] = std::move(armed);
  if (fresh) armed_count_.fetch_add(1, std::memory_order_relaxed);
  LOG_INFO << "faults: armed " << site << " p=" << probability
           << " seed=" << seed
           << (delay_ms > 0 ? " delay_ms=" + std::to_string(delay_ms) : "");
}

void FaultInjector::disarm(const std::string& site) {
  util::MutexLock lock(mu_);
  if (sites_.erase(site) > 0)
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::disarm_all() {
  util::MutexLock lock(mu_);
  sites_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
  total_trips_.store(0, std::memory_order_relaxed);
}

void FaultInjector::configure(const std::string& spec) {
  for (const std::string& piece : util::split(spec, ',')) {
    const std::string entry = util::trim(piece);
    if (entry.empty()) continue;
    const std::vector<std::string> fields = util::split(entry, ':');
    REBERT_CHECK_MSG(fields.size() == 3 || fields.size() == 4,
                     "bad REBERT_FAULTS entry '"
                         << entry << "' (want site:prob:seed[:delay_ms])");
    char* end = nullptr;
    const double probability = std::strtod(fields[1].c_str(), &end);
    REBERT_CHECK_MSG(end != fields[1].c_str() && *end == '\0',
                     "bad probability in '" << entry << "'");
    int seed = 0;
    REBERT_CHECK_MSG(util::parse_int(fields[2], &seed) && seed >= 0,
                     "bad seed in '" << entry << "'");
    int delay_ms = 0;
    if (fields.size() == 4)
      REBERT_CHECK_MSG(util::parse_int(fields[3], &delay_ms) && delay_ms >= 0,
                       "bad delay_ms in '" << entry << "'");
    arm(fields[0], probability, static_cast<std::uint64_t>(seed), delay_ms);
  }
}

bool FaultInjector::should_fail(const char* site) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  int delay_ms = 0;
  bool tripped = false;
  {
    util::MutexLock lock(mu_);
    const auto it = sites_.find(site);
    if (it == sites_.end()) return false;
    Site& armed = it->second;
    ++armed.checks;
    if (!armed.rng.bernoulli(armed.probability)) return false;
    ++armed.trips;
    total_trips_.fetch_add(1, std::memory_order_relaxed);
    tripped = true;
    delay_ms = armed.delay_ms;
  }
  if (tripped && delay_ms > 0) {
    // Latency mode: the fault is slowness, not failure. Sleep outside the
    // lock so concurrent sites keep making independent decisions.
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    return false;
  }
  return tripped;
}

void FaultInjector::maybe_throw(const char* site) {
  if (should_fail(site)) throw InjectedFault(site);
}

bool FaultInjector::maybe_errno(const char* site, int err) {
  if (!should_fail(site)) return false;
  errno = err;
  return true;
}

std::vector<FaultInjector::SiteReport> FaultInjector::report() const {
  util::MutexLock lock(mu_);
  std::vector<SiteReport> reports;
  reports.reserve(sites_.size());
  for (const auto& [name, site] : sites_) {
    SiteReport entry;
    entry.site = name;
    entry.probability = site.probability;
    entry.delay_ms = site.delay_ms;
    entry.checks = site.checks;
    entry.trips = site.trips;
    reports.push_back(std::move(entry));
  }
  return reports;
}

}  // namespace rebert::runtime
