// Dense float tensor with value semantics.
//
// The whole NN substrate (ops, layers, BERT) is built on this one type:
// row-major contiguous float storage plus a shape. No views, no autograd
// tape — layers implement explicit forward/backward, which keeps every
// gradient auditable and lets the tests verify each layer against finite
// differences. Sized for this project's models (up to a few million
// parameters), not for generality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/aligned.h"
#include "util/rng.h"

namespace rebert::tensor {

class Tensor {
 public:
  /// Empty (rank-0, no elements).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape. All dims must be >= 1.
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, float value);
  /// I.i.d. normal entries.
  static Tensor randn(std::vector<int> shape, util::Rng& rng,
                      float stddev = 1.0f);
  /// Xavier/Glorot uniform for a [fan_in, fan_out] weight matrix.
  static Tensor xavier(int fan_in, int fan_out, util::Rng& rng);
  /// 1-D tensor from explicit values.
  static Tensor from_vector(const std::vector<float>& values);

  const std::vector<int>& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Flat element access.
  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Checked 2-D / 3-D access.
  float& at(int i, int j);
  float at(int i, int j) const;
  float& at(int i, int j, int k);
  float at(int i, int j, int k) const;

  /// Same data, new shape (numel must match).
  Tensor reshaped(std::vector<int> new_shape) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// In-place axpy: *this += alpha * other (shapes must match).
  void add_scaled(const Tensor& other, float alpha);

  double sum() const;
  float max_value() const;
  /// L2 norm of all entries.
  double norm() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string shape_string() const;

 private:
  std::vector<int> shape_;
  // 64-byte-aligned so kernel backends can assume cache-line-aligned rows
  // for aligned vector loads (see kernels/aligned.h).
  kernels::AlignedFloatVector data_;
};

}  // namespace rebert::tensor
