#include "tensor/ops.h"

#include <cmath>

#include "kernels/kernels.h"
#include "util/check.h"

namespace rebert::tensor {

namespace {

void check_matrix(const Tensor& t, const char* who) {
  REBERT_CHECK_MSG(t.rank() == 2, who << " expects a matrix, got rank "
                                      << t.rank());
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* who) {
  REBERT_CHECK_MSG(a.same_shape(b), who << " shape mismatch "
                                        << a.shape_string() << " vs "
                                        << b.shape_string());
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_matrix(a, "matmul");
  check_matrix(b, "matmul");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  REBERT_CHECK_MSG(b.dim(0) == k, "matmul inner-dim mismatch "
                                      << a.shape_string() << " x "
                                      << b.shape_string());
  Tensor c({m, n});
  kernels::gemm(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_matrix(a, "matmul_tn");
  check_matrix(b, "matmul_tn");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  REBERT_CHECK_MSG(b.dim(0) == m, "matmul_tn row mismatch "
                                      << a.shape_string() << " vs "
                                      << b.shape_string());
  Tensor c({k, n});
  kernels::gemm_tn(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_matrix(a, "matmul_nt");
  check_matrix(b, "matmul_nt");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  REBERT_CHECK_MSG(b.dim(1) == k, "matmul_nt column mismatch "
                                      << a.shape_string() << " vs "
                                      << b.shape_string());
  Tensor c({m, n});
  kernels::gemm_nt(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor transpose(const Tensor& a) {
  check_matrix(a, "transpose");
  const int m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) t.at(j, i) = a.at(i, j);
  return t;
}

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor c = a;
  c.add_scaled(b, 1.0f);
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor c = a;
  c.add_scaled(b, -1.0f);
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor c = a;
  for (std::int64_t i = 0; i < c.numel(); ++i) c[i] *= b[i];
  return c;
}

Tensor scale(const Tensor& a, float alpha) {
  Tensor c = a;
  kernels::scale(c.data(), alpha, c.numel());
  return c;
}

Tensor add_row_bias(const Tensor& x, const Tensor& bias) {
  check_matrix(x, "add_row_bias");
  REBERT_CHECK_MSG(bias.rank() == 1 && bias.dim(0) == x.dim(1),
                   "bias shape " << bias.shape_string() << " for x "
                                 << x.shape_string());
  Tensor y = x;
  kernels::add_row_bias(y.data(), bias.data(), x.dim(0), x.dim(1));
  return y;
}

Tensor column_sum(const Tensor& dy) {
  check_matrix(dy, "column_sum");
  Tensor out({dy.dim(1)});
  for (int i = 0; i < dy.dim(0); ++i)
    for (int j = 0; j < dy.dim(1); ++j) out[j] += dy.at(i, j);
  return out;
}

Tensor gelu(const Tensor& x) {
  Tensor y(x.shape());
  kernels::gelu(x.data(), y.data(), x.numel());
  return y;
}

Tensor gelu_backward(const Tensor& dy, const Tensor& x) {
  check_same_shape(dy, x, "gelu_backward");
  Tensor dx(dy.shape());
  kernels::gelu_backward(dy.data(), x.data(), dx.data(), dx.numel());
  return dx;
}

Tensor tanh_forward(const Tensor& x) {
  Tensor y = x;
  for (std::int64_t i = 0; i < y.numel(); ++i) y[i] = std::tanh(x[i]);
  return y;
}

Tensor tanh_backward(const Tensor& dy, const Tensor& y) {
  check_same_shape(dy, y, "tanh_backward");
  Tensor dx = dy;
  for (std::int64_t i = 0; i < dx.numel(); ++i)
    dx[i] = dy[i] * (1.0f - y[i] * y[i]);
  return dx;
}

Tensor relu(const Tensor& x) {
  Tensor y = x;
  for (std::int64_t i = 0; i < y.numel(); ++i) y[i] = x[i] > 0 ? x[i] : 0.0f;
  return y;
}

Tensor relu_backward(const Tensor& dy, const Tensor& x) {
  check_same_shape(dy, x, "relu_backward");
  Tensor dx = dy;
  for (std::int64_t i = 0; i < dx.numel(); ++i)
    dx[i] = x[i] > 0 ? dy[i] : 0.0f;
  return dx;
}

Tensor softmax_rows(const Tensor& x) {
  check_matrix(x, "softmax_rows");
  Tensor y = x;
  kernels::softmax_rows(y.data(), x.dim(0), x.dim(1));
  return y;
}

Tensor softmax_rows_backward(const Tensor& dy, const Tensor& y) {
  check_same_shape(dy, y, "softmax_rows_backward");
  Tensor dx(dy.shape());
  kernels::softmax_rows_backward(dy.data(), y.data(), dx.data(), y.dim(0),
                                 y.dim(1));
  return dx;
}

double cross_entropy_with_logits(const Tensor& logits,
                                 const std::vector<int>& labels,
                                 Tensor* d_logits) {
  check_matrix(logits, "cross_entropy_with_logits");
  const int n = logits.dim(0), classes = logits.dim(1);
  REBERT_CHECK_MSG(static_cast<int>(labels.size()) == n,
                   "labels size " << labels.size() << " != rows " << n);
  const Tensor probs = softmax_rows(logits);
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    const int label = labels[static_cast<std::size_t>(i)];
    REBERT_CHECK_MSG(label >= 0 && label < classes,
                     "label " << label << " out of range");
    loss -= std::log(std::max(probs.at(i, label), 1e-12f));
  }
  loss /= n;
  if (d_logits) {
    Tensor d = probs;
    const float inv_n = 1.0f / static_cast<float>(n);
    for (int i = 0; i < n; ++i) {
      d.at(i, labels[static_cast<std::size_t>(i)]) -= 1.0f;
      for (int j = 0; j < classes; ++j) d.at(i, j) *= inv_n;
    }
    *d_logits = std::move(d);
  }
  return loss;
}

Tensor gather_rows(const Tensor& table, const std::vector<int>& ids) {
  check_matrix(table, "gather_rows");
  REBERT_CHECK(!ids.empty());
  const int cols = table.dim(1);
  Tensor out({static_cast<int>(ids.size()), cols});
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const int row = ids[i];
    REBERT_CHECK_MSG(row >= 0 && row < table.dim(0),
                     "gather index " << row << " out of range");
    const float* src = table.data() + static_cast<std::size_t>(row) * cols;
    float* dst = out.data() + i * cols;
    for (int j = 0; j < cols; ++j) dst[j] = src[j];
  }
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float atol) {
  if (!a.same_shape(b)) return false;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    if (std::abs(a[i] - b[i]) > atol) return false;
  return true;
}

}  // namespace rebert::tensor
