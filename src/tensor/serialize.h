// Binary parameter serialization.
//
// Format (little-endian):
//   magic "RBTW", u32 version, u32 param_count, then per parameter:
//   u32 name_len, name bytes, u32 rank, u32 dims..., f32 data...
// Loading matches parameters by name and requires identical shapes, so a
// checkpoint written by one model configuration cannot be silently loaded
// into another.
#pragma once

#include <string>
#include <vector>

#include "tensor/layers.h"

namespace rebert::tensor {

void save_parameters(const std::vector<Parameter*>& params,
                     const std::string& path);

/// Loads values into the given parameters (matched by name). Throws
/// util::CheckError on missing names, shape mismatches, or corrupt files.
void load_parameters(const std::vector<Parameter*>& params,
                     const std::string& path);

}  // namespace rebert::tensor
