// Finite-difference gradient checking.
//
// The correctness backbone of the NN substrate: every layer's backward pass
// is compared against central differences of its forward pass. Used only by
// tests; lives in the library so the BERT tests can reuse it.
#pragma once

#include <functional>

#include "tensor/layers.h"

namespace rebert::tensor {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  bool ok = true;
};

/// `loss` must be a deterministic scalar function of the current value of
/// `param` (typically a closure running a layer forward and reducing).
/// `analytic_grad` is the gradient your backward computed for `param`
/// (same shape). Checks d loss / d param[i] by central differences on a
/// sample of entries (all entries if max_probes <= 0).
GradCheckResult check_gradient(Tensor* param, const Tensor& analytic_grad,
                               const std::function<double()>& loss,
                               double epsilon = 1e-3, double tolerance = 2e-2,
                               int max_probes = 0);

}  // namespace rebert::tensor
