// Static graph checking: validate tensor-shape compatibility once, on the
// cold path, instead of re-checking shapes on every forward call.
//
// The layer stack of a model is a linear chain of stages, each consuming a
// shape and producing a shape. The shapes are known the moment the model is
// configured — only the sequence length varies at run time — so one pass at
// build time can prove the whole chain (embedding -> attention heads -> FFN
// -> classifier) consistent and report *every* mismatch at once, where the
// scattered per-call REBERT_CHECKs used to fail one at a time in the middle
// of a forward pass. Dynamic dimensions (sequence length) are expressed with
// kDynamicDim, which unifies with anything.
//
// The second half is a NaN/Inf tripwire for trainer debugging: numeric
// blowups (exploding gradients, bad learning rates) surface as NaN losses
// long after the first bad value appeared. NumericTripwire::observe() scans
// tensors at batch granularity and records where non-finite values first
// entered, so the trainer can point at the offending parameter instead of
// reporting "loss = nan" three epochs later.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace rebert::tensor {

/// Wildcard dimension: matches any concrete size (used for sequence length).
inline constexpr int kDynamicDim = -1;

/// A shape with optional dynamic dims, e.g. {kDynamicDim, 64}.
using ShapePattern = std::vector<int>;

/// "[?, 64]" style rendering of a pattern.
std::string shape_pattern_string(const ShapePattern& pattern);

/// True when a concrete or patterned `actual` is compatible with `expected`
/// (equal rank; each dim equal or either side dynamic).
bool shapes_compatible(const ShapePattern& expected,
                       const ShapePattern& actual);

/// Accumulates a chain of stages and parameter declarations, then reports
/// all inconsistencies in one shot. Usage:
///
///   GraphCheck g("model");
///   g.stage("embeddings", {kDynamicDim}, {kDynamicDim, H})
///    .stage("encoder.0", {kDynamicDim, H}, {kDynamicDim, H})
///    .param("encoder.0.query.weight", weight.shape(), {H, H})
///    .require(H % heads == 0, "heads must divide hidden");
///   g.finish();  // throws util::CheckError listing every failure
class GraphCheck {
 public:
  explicit GraphCheck(std::string graph_name);

  /// Declare the next stage in the chain: consumes `in`, produces `out`.
  /// `in` is unified with the previous stage's `out`.
  GraphCheck& stage(const std::string& name, ShapePattern in,
                    ShapePattern out);

  /// Verify a parameter's actual shape against the expected pattern.
  GraphCheck& param(const std::string& name, const std::vector<int>& actual,
                    const ShapePattern& expected);

  /// Arbitrary invariant with an explanatory message.
  GraphCheck& require(bool ok, const std::string& message);

  int num_failures() const { return static_cast<int>(failures_.size()); }
  bool ok() const { return failures_.empty(); }
  /// All failure messages, one per line (empty string when ok).
  std::string failures_text() const;

  /// Throws util::CheckError with failures_text() when any check failed.
  void finish() const;

 private:
  std::string graph_name_;
  std::string prev_stage_;
  ShapePattern prev_out_;
  bool has_prev_ = false;
  std::vector<std::string> failures_;
};

// ---- NaN/Inf tripwire ------------------------------------------------------

/// True when every entry of `t` is finite (no NaN, no +/-Inf).
bool all_finite(const Tensor& t);

/// Flat index of the first non-finite entry, or -1 when all finite.
std::int64_t first_nonfinite(const Tensor& t);

/// Throws util::CheckError naming `what` when `t` has a non-finite entry.
void check_finite(const Tensor& t, const std::string& what);

/// Cold-path numeric monitor. Call observe() at batch granularity; the
/// first non-finite observation is recorded (with tensor name and flat
/// index) and kept until reset().
class NumericTripwire {
 public:
  /// Scan a tensor; records the first trip, cheap no-op afterwards.
  void observe(const std::string& what, const Tensor& t);
  /// Scan a scalar (e.g. the batch loss).
  void observe_scalar(const std::string& what, double value);

  bool tripped() const { return tripped_; }
  /// "step 12: NaN/Inf in 'encoder.0.query.weight.grad' at flat index 7";
  /// empty when not tripped.
  const std::string& first_trip() const { return first_trip_; }

  /// Number of observe*() calls since construction/reset (for tests and
  /// reporting).
  std::int64_t num_observations() const { return num_observations_; }

  /// Tag subsequent observations with a step number for the trip message.
  void set_step(std::int64_t step) { step_ = step; }

  void reset();

 private:
  void trip(const std::string& what, std::int64_t index);

  bool tripped_ = false;
  std::string first_trip_;
  std::int64_t num_observations_ = 0;
  std::int64_t step_ = -1;
};

}  // namespace rebert::tensor
