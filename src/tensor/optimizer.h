// Optimizers and learning-rate schedules.
//
// Adam (with optional decoupled weight decay, i.e. AdamW) is what BERT
// fine-tuning uses; plain SGD is kept for tests and ablations. Optimizers
// hold per-parameter state keyed by position in the parameter list, so the
// list must stay stable across steps (it does: models build it once).
#pragma once

#include <vector>

#include "tensor/layers.h"

namespace rebert::tensor {

/// Linear warmup to `base_lr` over `warmup_steps`, then linear decay to 0 at
/// `total_steps` (the schedule used by BERT fine-tuning). total_steps == 0
/// disables decay.
class WarmupLinearSchedule {
 public:
  WarmupLinearSchedule(double base_lr, int warmup_steps, int total_steps);
  double lr(int step) const;

 private:
  double base_lr_;
  int warmup_steps_;
  int total_steps_;
};

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params);
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients, then zero them.
  virtual void step(double lr) = 0;

  void zero_grad();
  const std::vector<Parameter*>& parameters() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double momentum = 0.0);
  void step(double lr) override;

 private:
  double momentum_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  struct Options {
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;  // decoupled (AdamW) when > 0
  };

  explicit Adam(std::vector<Parameter*> params);
  Adam(std::vector<Parameter*> params, Options options);
  void step(double lr) override;

  int step_count() const { return t_; }

 private:
  Options options_;
  int t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace rebert::tensor
