#include "tensor/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace rebert::tensor {

WarmupLinearSchedule::WarmupLinearSchedule(double base_lr, int warmup_steps,
                                           int total_steps)
    : base_lr_(base_lr),
      warmup_steps_(warmup_steps),
      total_steps_(total_steps) {
  REBERT_CHECK(base_lr > 0.0);
  REBERT_CHECK(warmup_steps >= 0);
  REBERT_CHECK(total_steps == 0 || total_steps >= warmup_steps);
}

double WarmupLinearSchedule::lr(int step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_)
    return base_lr_ * (step + 1) / static_cast<double>(warmup_steps_);
  if (total_steps_ == 0) return base_lr_;
  if (step >= total_steps_) return 0.0;
  const double remaining = total_steps_ - step;
  const double span = total_steps_ - warmup_steps_;
  return span > 0 ? base_lr_ * remaining / span : base_lr_;
}

Optimizer::Optimizer(std::vector<Parameter*> params)
    : params_(std::move(params)) {
  REBERT_CHECK_MSG(!params_.empty(), "optimizer needs parameters");
  for (Parameter* p : params_) REBERT_CHECK(p != nullptr);
}

void Optimizer::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Parameter*> params, double momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  if (momentum_ > 0.0) {
    velocity_.reserve(params_.size());
    for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step(double lr) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    if (momentum_ > 0.0) {
      Tensor& vel = velocity_[i];
      for (std::int64_t j = 0; j < p.value.numel(); ++j) {
        vel[j] = static_cast<float>(momentum_ * vel[j] + p.grad[j]);
        p.value[j] -= static_cast<float>(lr) * vel[j];
      }
    } else {
      p.value.add_scaled(p.grad, static_cast<float>(-lr));
    }
    p.zero_grad();
  }
}

Adam::Adam(std::vector<Parameter*> params)
    : Adam(std::move(params), Options()) {}

Adam::Adam(std::vector<Parameter*> params, Options options)
    : Optimizer(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step(double lr) {
  ++t_;
  const double bc1 = 1.0 - std::pow(options_.beta1, t_);
  const double bc2 = 1.0 - std::pow(options_.beta2, t_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::int64_t j = 0; j < p.value.numel(); ++j) {
      const double g = p.grad[j];
      m[j] = static_cast<float>(options_.beta1 * m[j] +
                                (1.0 - options_.beta1) * g);
      v[j] = static_cast<float>(options_.beta2 * v[j] +
                                (1.0 - options_.beta2) * g * g);
      const double m_hat = m[j] / bc1;
      const double v_hat = v[j] / bc2;
      double update = lr * m_hat / (std::sqrt(v_hat) + options_.eps);
      if (options_.weight_decay > 0.0)
        update += lr * options_.weight_decay * p.value[j];
      p.value[j] -= static_cast<float>(update);
    }
    p.zero_grad();
  }
}

}  // namespace rebert::tensor
