#include "tensor/gradcheck.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace rebert::tensor {

GradCheckResult check_gradient(Tensor* param, const Tensor& analytic_grad,
                               const std::function<double()>& loss,
                               double epsilon, double tolerance,
                               int max_probes) {
  REBERT_CHECK(param != nullptr);
  REBERT_CHECK_MSG(param->same_shape(analytic_grad),
                   "gradient shape mismatch");
  GradCheckResult result;

  std::vector<std::int64_t> probes;
  if (max_probes <= 0 || max_probes >= param->numel()) {
    probes.resize(static_cast<std::size_t>(param->numel()));
    for (std::int64_t i = 0; i < param->numel(); ++i)
      probes[static_cast<std::size_t>(i)] = i;
  } else {
    util::Rng rng(1234);
    for (int i = 0; i < max_probes; ++i)
      probes.push_back(static_cast<std::int64_t>(
          rng.uniform_u64(static_cast<std::uint64_t>(param->numel()))));
  }

  for (std::int64_t i : probes) {
    const float original = (*param)[i];
    (*param)[i] = original + static_cast<float>(epsilon);
    const double plus = loss();
    (*param)[i] = original - static_cast<float>(epsilon);
    const double minus = loss();
    (*param)[i] = original;
    const double numeric = (plus - minus) / (2.0 * epsilon);
    const double analytic = analytic_grad[i];
    const double abs_err = std::abs(numeric - analytic);
    const double denom = std::max({std::abs(numeric), std::abs(analytic), 1e-8});
    const double rel_err = abs_err / denom;
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    // Relative error is meaningful only away from zero; below an absolute
    // floor we accept the match on absolute terms.
    if (abs_err > 1e-4) result.max_rel_error = std::max(result.max_rel_error, rel_err);
  }
  result.ok = result.max_rel_error <= tolerance;
  return result;
}

}  // namespace rebert::tensor
