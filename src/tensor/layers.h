// Neural-network layers with explicit forward/backward.
//
// Each layer owns Parameters (value + gradient accumulator). forward() takes
// the input and fills a layer-specific Cache with whatever backward() needs;
// backward() consumes the upstream gradient, accumulates parameter
// gradients (+=, so minibatch accumulation is a plain loop), and returns the
// gradient w.r.t. the input. Every backward implementation is verified
// against finite differences in tests/tensor/gradcheck_test.cc.
#pragma once

#include <string>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace rebert::tensor {

/// A trainable tensor plus its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.zero(); }
};

/// y = x W + b, x: [n, in], W: [in, out], b: [out].
class Linear {
 public:
  Linear() = default;
  Linear(const std::string& name, int in_features, int out_features,
         util::Rng& rng);

  struct Cache {
    Tensor input;
  };

  Tensor forward(const Tensor& x, Cache* cache) const;
  /// Returns dx; accumulates dW, db.
  Tensor backward(const Tensor& dy, const Cache& cache);

  int in_features() const { return weight.value.dim(0); }
  int out_features() const { return weight.value.dim(1); }
  std::vector<Parameter*> parameters() { return {&weight, &bias}; }

  Parameter weight;
  Parameter bias;
};

/// Layer normalization over the last dimension of a [n, h] input.
class LayerNorm {
 public:
  LayerNorm() = default;
  LayerNorm(const std::string& name, int hidden, float eps = 1e-5f);

  struct Cache {
    Tensor normalized;  // (x - mean) / std, per row
    std::vector<float> inv_std;
  };

  Tensor forward(const Tensor& x, Cache* cache) const;
  Tensor backward(const Tensor& dy, const Cache& cache);

  std::vector<Parameter*> parameters() { return {&gamma, &beta}; }

  Parameter gamma;  // scale, init 1
  Parameter beta;   // shift, init 0
  float eps = 1e-5f;
};

/// Trainable lookup table: ids -> rows of the table.
class Embedding {
 public:
  Embedding() = default;
  Embedding(const std::string& name, int vocab_size, int hidden,
            util::Rng& rng, float init_stddev = 0.02f);

  struct Cache {
    std::vector<int> ids;
  };

  Tensor forward(const std::vector<int>& ids, Cache* cache) const;
  /// No input gradient (ids are discrete); accumulates table gradients.
  void backward(const Tensor& dy, const Cache& cache);

  int vocab_size() const { return table.value.dim(0); }
  int hidden() const { return table.value.dim(1); }
  std::vector<Parameter*> parameters() { return {&table}; }

  Parameter table;
};

/// Inverted dropout. In eval mode (or p = 0) it is the identity.
class Dropout {
 public:
  explicit Dropout(float p = 0.0f) : p_(p) {}

  struct Cache {
    Tensor mask;  // empty when dropout was a no-op
  };

  Tensor forward(const Tensor& x, bool training, util::Rng& rng,
                 Cache* cache) const;
  Tensor backward(const Tensor& dy, const Cache& cache) const;

  float rate() const { return p_; }

 private:
  float p_;
};

/// Sum of per-parameter gradient L2 norms squared -> global norm; scales all
/// gradients down to `max_norm` if exceeded. Returns the pre-clip norm.
double clip_gradients(const std::vector<Parameter*>& params, double max_norm);

}  // namespace rebert::tensor
