#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <unordered_map>

#include "util/check.h"

namespace rebert::tensor {

namespace {

constexpr char kMagic[4] = {'R', 'B', 'T', 'W'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  REBERT_CHECK_MSG(in.good(), "unexpected end of checkpoint file");
  return v;
}

}  // namespace

void save_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  REBERT_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(kMagic, sizeof(kMagic));
  write_u32(out, kVersion);
  write_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const Parameter* p : params) {
    REBERT_CHECK_MSG(!p->name.empty(), "unnamed parameter cannot be saved");
    write_u32(out, static_cast<std::uint32_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_u32(out, static_cast<std::uint32_t>(p->value.rank()));
    for (int d = 0; d < p->value.rank(); ++d)
      write_u32(out, static_cast<std::uint32_t>(p->value.dim(d)));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  REBERT_CHECK_MSG(out.good(), "write failure on " << path);
}

void load_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  REBERT_CHECK_MSG(in.good(), "cannot open checkpoint " << path);
  char magic[4];
  in.read(magic, sizeof(magic));
  REBERT_CHECK_MSG(in.good() && std::equal(magic, magic + 4, kMagic),
                   path << " is not a ReBERT checkpoint");
  const std::uint32_t version = read_u32(in);
  REBERT_CHECK_MSG(version == kVersion,
                   "unsupported checkpoint version " << version);
  const std::uint32_t count = read_u32(in);

  std::unordered_map<std::string, Parameter*> by_name;
  for (Parameter* p : params) {
    REBERT_CHECK_MSG(by_name.emplace(p->name, p).second,
                     "duplicate parameter name " << p->name);
  }

  std::size_t loaded = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = read_u32(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    REBERT_CHECK_MSG(in.good(), "truncated checkpoint " << path);
    const std::uint32_t rank = read_u32(in);
    std::vector<int> shape(rank);
    std::int64_t numel = 1;
    for (std::uint32_t d = 0; d < rank; ++d) {
      shape[d] = static_cast<int>(read_u32(in));
      numel *= shape[d];
    }
    auto it = by_name.find(name);
    REBERT_CHECK_MSG(it != by_name.end(),
                     "checkpoint parameter '" << name
                                              << "' not present in model");
    Parameter& p = *it->second;
    REBERT_CHECK_MSG(p.value.shape() == shape,
                     "shape mismatch for '" << name << "': model "
                                            << p.value.shape_string());
    in.read(reinterpret_cast<char*>(p.value.data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    REBERT_CHECK_MSG(in.good(), "truncated tensor data in " << path);
    ++loaded;
  }
  REBERT_CHECK_MSG(loaded == params.size(),
                   "checkpoint has " << loaded << " of " << params.size()
                                     << " model parameters");
}

}  // namespace rebert::tensor
