#include "tensor/serialize.h"

#include <cstdint>
#include <cstring>
#include <unordered_map>

#include "persist/atomic_file.h"
#include "persist/mmap_file.h"
#include "persist/snapshot.h"
#include "util/check.h"

namespace rebert::tensor {

namespace {

constexpr char kMagic[4] = {'R', 'B', 'T', 'W'};
// v2 appends a trailing FNV-1a checksum over the body (everything between
// the 8-byte magic+version prefix and the 8-byte trailer), so a clipped
// or bit-flipped checkpoint is rejected before any tensor is filled.
// v1 files (no trailer) load unchanged.
constexpr std::uint32_t kVersion = 2;

/// Stream writer that folds every body byte into a running checksum, so a
/// multi-hundred-MB checkpoint never needs a second in-memory copy.
class ChecksummedWriter {
 public:
  explicit ChecksummedWriter(std::ostream& out) : out_(out) {}

  void bytes(const void* data, std::size_t size) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    sum_ = persist::fnv1a_update(sum_, data, size);
  }
  void u32(std::uint32_t v) { bytes(&v, sizeof(v)); }
  std::uint64_t checksum() const { return sum_; }

 private:
  std::ostream& out_;
  std::uint64_t sum_ = persist::kFnv1aInit;
};

/// Checkpoint reads off a validated mapping, with located failures: every
/// truncation error reports where in the file the read stopped and how
/// large the file is, so a half-written or clipped checkpoint is
/// diagnosable from the message alone ("truncated ... at offset 1234 of
/// 5678 bytes"). The cursor never reads a byte past `limit`.
class MappedReader {
 public:
  MappedReader(const persist::MmapFile& file, std::size_t limit)
      : file_(file), limit_(limit) {}

  std::size_t offset() const { return offset_; }

  void bytes(void* dst, std::size_t n, const char* what) {
    REBERT_CHECK_MSG(offset_ <= limit_ && n <= limit_ - offset_,
                     "truncated checkpoint " << file_.path() << ": " << what
                                             << " at offset " << offset_
                                             << " of " << file_.size()
                                             << " bytes");
    if (n > 0) std::memcpy(dst, file_.bytes(offset_, n), n);
    offset_ += n;
  }

  void skip(std::size_t n) { offset_ += n; }

  std::uint32_t u32(const char* what) {
    std::uint32_t v = 0;
    bytes(&v, sizeof(v), what);
    return v;
  }

 private:
  const persist::MmapFile& file_;
  std::size_t limit_;  // first byte the body must not touch (v2: trailer)
  std::size_t offset_ = 0;
};

}  // namespace

void save_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  // Atomic write: a crash (or ENOSPC) mid-save must leave any previous
  // checkpoint at `path` intact instead of a truncated file that
  // hard-fails the next load_parameters.
  persist::AtomicFileWriter writer(path);
  std::ostream& out = writer.stream();
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  ChecksummedWriter body(out);
  body.u32(static_cast<std::uint32_t>(params.size()));
  for (const Parameter* p : params) {
    REBERT_CHECK_MSG(!p->name.empty(), "unnamed parameter cannot be saved");
    body.u32(static_cast<std::uint32_t>(p->name.size()));
    body.bytes(p->name.data(), p->name.size());
    body.u32(static_cast<std::uint32_t>(p->value.rank()));
    for (int d = 0; d < p->value.rank(); ++d)
      body.u32(static_cast<std::uint32_t>(p->value.dim(d)));
    body.bytes(p->value.data(),
               static_cast<std::size_t>(p->value.numel()) * sizeof(float));
  }
  const std::uint64_t checksum = body.checksum();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  writer.commit();  // flush + fsync + rename; errno-detailed on failure
}

void load_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  // The whole file is mapped and validated (magic, version, v2 checksum)
  // before a single tensor is filled; parsing then runs straight off the
  // mapping with a bounds-checked cursor, no stream buffering.
  persist::MmapFile file;
  std::string open_error;
  REBERT_CHECK_MSG(file.open(path, &open_error),
                   "cannot open checkpoint " << path << ": " << open_error);
  constexpr std::size_t kPrefixBytes = sizeof(kMagic) + sizeof(std::uint32_t);
  REBERT_CHECK_MSG(file.size() >= kPrefixBytes,
                   "truncated checkpoint " << path << ": header at offset 0"
                                           << " of " << file.size()
                                           << " bytes");
  REBERT_CHECK_MSG(std::memcmp(file.bytes(0, sizeof(kMagic)), kMagic,
                               sizeof(kMagic)) == 0,
                   path << " is not a ReBERT checkpoint");
  std::uint32_t version = 0;
  std::memcpy(&version, file.bytes(sizeof(kMagic), sizeof(version)),
              sizeof(version));
  REBERT_CHECK_MSG(version == 1 || version == kVersion,
                   "unsupported checkpoint version "
                       << version << " (this build reads versions 1 and 2)");

  std::size_t body_end = file.size();
  if (version == kVersion) {
    REBERT_CHECK_MSG(file.size() >= kPrefixBytes + sizeof(std::uint64_t),
                     "truncated checkpoint "
                         << path << ": checksum trailer at offset "
                         << kPrefixBytes << " of " << file.size()
                         << " bytes");
    body_end = file.size() - sizeof(std::uint64_t);
    std::uint64_t expected = 0;
    std::memcpy(&expected, file.bytes(body_end, sizeof(expected)),
                sizeof(expected));
    const std::uint64_t actual =
        persist::fnv1a(file.bytes(kPrefixBytes, body_end - kPrefixBytes),
                       body_end - kPrefixBytes);
    REBERT_CHECK_MSG(actual == expected,
                     "corrupt checkpoint "
                         << path << ": checksum mismatch over the body at "
                         << "offset " << kPrefixBytes << " of "
                         << file.size() << " bytes");
  }

  MappedReader reader(file, body_end);
  reader.skip(kPrefixBytes);  // magic + version, validated above
  const std::uint32_t count = reader.u32("parameter count");

  std::unordered_map<std::string, Parameter*> by_name;
  for (Parameter* p : params) {
    REBERT_CHECK_MSG(by_name.emplace(p->name, p).second,
                     "duplicate parameter name " << p->name);
  }

  std::size_t loaded = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = reader.u32("parameter name length");
    std::string name(name_len, '\0');
    reader.bytes(name.data(), name_len, "parameter name");
    const std::uint32_t rank = reader.u32("tensor rank");
    std::vector<int> shape(rank);
    std::int64_t numel = 1;
    for (std::uint32_t d = 0; d < rank; ++d) {
      shape[d] = static_cast<int>(reader.u32("tensor shape"));
      numel *= shape[d];
    }
    auto it = by_name.find(name);
    REBERT_CHECK_MSG(it != by_name.end(),
                     "checkpoint parameter '" << name
                                              << "' not present in model");
    Parameter& p = *it->second;
    REBERT_CHECK_MSG(p.value.shape() == shape,
                     "shape mismatch for '" << name << "': model "
                                            << p.value.shape_string());
    reader.bytes(p.value.data(),
                 static_cast<std::size_t>(numel) * sizeof(float),
                 "tensor data");
    ++loaded;
  }
  REBERT_CHECK_MSG(loaded == params.size(),
                   "checkpoint has " << loaded << " of " << params.size()
                                     << " model parameters");
}

}  // namespace rebert::tensor
