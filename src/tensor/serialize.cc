#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <unordered_map>

#include "persist/atomic_file.h"
#include "util/check.h"

namespace rebert::tensor {

namespace {

constexpr char kMagic[4] = {'R', 'B', 'T', 'W'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Checkpoint reads with located failures: every truncation error reports
/// where in the file the read stopped and how large the file is, so a
/// half-written or clipped checkpoint is diagnosable from the message
/// alone ("truncated ... at offset 1234 of 5678 bytes").
class CheckpointReader {
 public:
  CheckpointReader(std::istream& in, std::string path) : in_(in),
                                                         path_(std::move(path)) {
    in_.seekg(0, std::ios::end);
    size_ = static_cast<long long>(in_.tellg());
    in_.seekg(0, std::ios::beg);
  }

  std::istream& in() { return in_; }
  const std::string& path() const { return path_; }

  void bytes(char* dst, std::streamsize n, const char* what) {
    in_.read(dst, n);
    require(what);
  }

  std::uint32_t u32(const char* what) {
    std::uint32_t v = 0;
    bytes(reinterpret_cast<char*>(&v), sizeof(v), what);
    return v;
  }

  /// Fails with the current offset when the last read did not complete.
  void require(const char* what) {
    if (in_.good()) return;
    in_.clear();  // failbit blocks tellg; the position is still meaningful
    const long long offset = static_cast<long long>(in_.tellg());
    REBERT_CHECK_MSG(false, "truncated checkpoint " << path_ << ": " << what
                                                    << " at offset " << offset
                                                    << " of " << size_
                                                    << " bytes");
  }

 private:
  std::istream& in_;
  std::string path_;
  long long size_ = 0;
};

}  // namespace

void save_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  // Atomic write: a crash (or ENOSPC) mid-save must leave any previous
  // checkpoint at `path` intact instead of a truncated file that
  // hard-fails the next load_parameters.
  persist::AtomicFileWriter writer(path);
  std::ostream& out = writer.stream();
  out.write(kMagic, sizeof(kMagic));
  write_u32(out, kVersion);
  write_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const Parameter* p : params) {
    REBERT_CHECK_MSG(!p->name.empty(), "unnamed parameter cannot be saved");
    write_u32(out, static_cast<std::uint32_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_u32(out, static_cast<std::uint32_t>(p->value.rank()));
    for (int d = 0; d < p->value.rank(); ++d)
      write_u32(out, static_cast<std::uint32_t>(p->value.dim(d)));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  writer.commit();  // flush + fsync + rename; errno-detailed on failure
}

void load_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  REBERT_CHECK_MSG(in.good(), "cannot open checkpoint " << path);
  CheckpointReader reader(in, path);
  char magic[4];
  reader.bytes(magic, sizeof(magic), "magic");
  REBERT_CHECK_MSG(std::equal(magic, magic + 4, kMagic),
                   path << " is not a ReBERT checkpoint");
  const std::uint32_t version = reader.u32("version");
  REBERT_CHECK_MSG(version == kVersion,
                   "unsupported checkpoint version " << version);
  const std::uint32_t count = reader.u32("parameter count");

  std::unordered_map<std::string, Parameter*> by_name;
  for (Parameter* p : params) {
    REBERT_CHECK_MSG(by_name.emplace(p->name, p).second,
                     "duplicate parameter name " << p->name);
  }

  std::size_t loaded = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = reader.u32("parameter name length");
    std::string name(name_len, '\0');
    reader.bytes(name.data(), name_len, "parameter name");
    const std::uint32_t rank = reader.u32("tensor rank");
    std::vector<int> shape(rank);
    std::int64_t numel = 1;
    for (std::uint32_t d = 0; d < rank; ++d) {
      shape[d] = static_cast<int>(reader.u32("tensor shape"));
      numel *= shape[d];
    }
    auto it = by_name.find(name);
    REBERT_CHECK_MSG(it != by_name.end(),
                     "checkpoint parameter '" << name
                                              << "' not present in model");
    Parameter& p = *it->second;
    REBERT_CHECK_MSG(p.value.shape() == shape,
                     "shape mismatch for '" << name << "': model "
                                            << p.value.shape_string());
    reader.bytes(reinterpret_cast<char*>(p.value.data()),
                 static_cast<std::streamsize>(numel * sizeof(float)),
                 "tensor data");
    ++loaded;
  }
  REBERT_CHECK_MSG(loaded == params.size(),
                   "checkpoint has " << loaded << " of " << params.size()
                                     << " model parameters");
}

}  // namespace rebert::tensor
