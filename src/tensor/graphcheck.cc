#include "tensor/graphcheck.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace rebert::tensor {

std::string shape_pattern_string(const ShapePattern& pattern) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (i) os << ", ";
    if (pattern[i] == kDynamicDim)
      os << "?";
    else
      os << pattern[i];
  }
  os << "]";
  return os.str();
}

bool shapes_compatible(const ShapePattern& expected,
                       const ShapePattern& actual) {
  if (expected.size() != actual.size()) return false;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (expected[i] == kDynamicDim || actual[i] == kDynamicDim) continue;
    if (expected[i] != actual[i]) return false;
  }
  return true;
}

GraphCheck::GraphCheck(std::string graph_name)
    : graph_name_(std::move(graph_name)) {}

GraphCheck& GraphCheck::stage(const std::string& name, ShapePattern in,
                              ShapePattern out) {
  if (has_prev_ && !shapes_compatible(prev_out_, in)) {
    std::ostringstream os;
    os << "stage '" << name << "' expects input "
       << shape_pattern_string(in) << " but '" << prev_stage_
       << "' produces " << shape_pattern_string(prev_out_);
    failures_.push_back(os.str());
  }
  prev_stage_ = name;
  prev_out_ = std::move(out);
  has_prev_ = true;
  return *this;
}

GraphCheck& GraphCheck::param(const std::string& name,
                              const std::vector<int>& actual,
                              const ShapePattern& expected) {
  if (!shapes_compatible(expected, actual)) {
    std::ostringstream os;
    os << "parameter '" << name << "' has shape "
       << shape_pattern_string(actual) << ", expected "
       << shape_pattern_string(expected);
    failures_.push_back(os.str());
  }
  return *this;
}

GraphCheck& GraphCheck::require(bool ok, const std::string& message) {
  if (!ok) failures_.push_back(message);
  return *this;
}

std::string GraphCheck::failures_text() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < failures_.size(); ++i) {
    if (i) os << "\n";
    os << "  " << failures_[i];
  }
  return os.str();
}

void GraphCheck::finish() const {
  REBERT_CHECK_MSG(failures_.empty(),
                   "graph check failed for '"
                       << graph_name_ << "' (" << failures_.size()
                       << " problem(s)):\n" << failures_text());
}

// ---- NaN/Inf tripwire ------------------------------------------------------

std::int64_t first_nonfinite(const Tensor& t) {
  const float* data = t.data();
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i)
    if (!std::isfinite(data[i])) return i;
  return -1;
}

bool all_finite(const Tensor& t) { return first_nonfinite(t) < 0; }

void check_finite(const Tensor& t, const std::string& what) {
  const std::int64_t index = first_nonfinite(t);
  REBERT_CHECK_MSG(index < 0, "non-finite value in '"
                                  << what << "' at flat index " << index
                                  << " (shape " << t.shape_string() << ")");
}

void NumericTripwire::observe(const std::string& what, const Tensor& t) {
  ++num_observations_;
  if (tripped_) return;
  const std::int64_t index = first_nonfinite(t);
  if (index >= 0) trip(what, index);
}

void NumericTripwire::observe_scalar(const std::string& what, double value) {
  ++num_observations_;
  if (tripped_) return;
  if (!std::isfinite(value)) trip(what, -1);
}

void NumericTripwire::trip(const std::string& what, std::int64_t index) {
  tripped_ = true;
  std::ostringstream os;
  if (step_ >= 0) os << "step " << step_ << ": ";
  os << "NaN/Inf in '" << what << "'";
  if (index >= 0) os << " at flat index " << index;
  first_trip_ = os.str();
}

void NumericTripwire::reset() {
  tripped_ = false;
  first_trip_.clear();
  num_observations_ = 0;
  step_ = -1;
}

}  // namespace rebert::tensor
