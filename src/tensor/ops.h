// Free-function tensor kernels.
//
// Everything the BERT encoder needs, with backward companions where the
// derivative is non-trivial. All 2-D ops treat tensors as row-major
// matrices. Shapes are checked; mismatches throw util::CheckError.
#pragma once

#include "tensor/tensor.h"

namespace rebert::tensor {

// ---- GEMM family -----------------------------------------------------------

/// C = A[m,k] * B[k,n].
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A^T[m,k] * B[m,n]  (a is [m,k], result [k,n]).
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C = A[m,k] * B^T[n,k]  (result [m,n]).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

Tensor transpose(const Tensor& a);  // 2-D

// ---- elementwise -----------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);  // Hadamard
Tensor scale(const Tensor& a, float alpha);

/// y[i,j] = x[i,j] + bias[j].
Tensor add_row_bias(const Tensor& x, const Tensor& bias);
/// Column-sum of a gradient: d_bias[j] = sum_i dy[i,j].
Tensor column_sum(const Tensor& dy);

// ---- activations ----------------------------------------------------------

/// Exact GELU: x * Phi(x) with Phi the standard normal CDF (erf form, the
/// variant BERT uses).
Tensor gelu(const Tensor& x);
/// dx = dy * gelu'(x); `x` is the forward input.
Tensor gelu_backward(const Tensor& dy, const Tensor& x);

Tensor tanh_forward(const Tensor& x);
/// dx = dy * (1 - y^2); `y` is the forward output.
Tensor tanh_backward(const Tensor& dy, const Tensor& y);

Tensor relu(const Tensor& x);
Tensor relu_backward(const Tensor& dy, const Tensor& x);

// ---- softmax / losses -------------------------------------------------------

/// Row-wise softmax with max-subtraction for stability.
Tensor softmax_rows(const Tensor& x);
/// dx for row-wise softmax; `y` is the forward output.
/// dx_i = y_i * (dy_i - sum_j dy_j y_j) per row.
Tensor softmax_rows_backward(const Tensor& dy, const Tensor& y);

/// Mean cross-entropy over rows of logits [n, classes] with integer labels;
/// also returns d_logits (softmax - onehot)/n through the out parameter.
double cross_entropy_with_logits(const Tensor& logits,
                                 const std::vector<int>& labels,
                                 Tensor* d_logits);

// ---- misc -------------------------------------------------------------------

/// Select rows of `table` by index: out[i,:] = table[ids[i],:].
Tensor gather_rows(const Tensor& table, const std::vector<int>& ids);

/// Numerical equality within tolerance (for tests).
bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f);

}  // namespace rebert::tensor
