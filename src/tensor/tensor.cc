#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "kernels/kernels.h"
#include "util/check.h"

namespace rebert::tensor {

namespace {
std::int64_t shape_numel(const std::vector<int>& shape) {
  std::int64_t n = 1;
  for (int d : shape) {
    REBERT_CHECK_MSG(d >= 1, "tensor dims must be >= 1, got " << d);
    n *= d;
  }
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(shape_numel(shape_)), 0.0f);
}

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<int> shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.gaussian(0.0, stddev));
  return t;
}

Tensor Tensor::xavier(int fan_in, int fan_out, util::Rng& rng) {
  REBERT_CHECK(fan_in >= 1 && fan_out >= 1);
  Tensor t({fan_in, fan_out});
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(-limit, limit));
  return t;
}

Tensor Tensor::from_vector(const std::vector<float>& values) {
  REBERT_CHECK(!values.empty());
  Tensor t({static_cast<int>(values.size())});
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

int Tensor::dim(int i) const {
  REBERT_CHECK_MSG(i >= 0 && i < rank(),
                   "dim " << i << " out of range for rank " << rank());
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at(int i, int j) {
  REBERT_CHECK_MSG(rank() == 2, "at(i,j) on rank-" << rank() << " tensor");
  REBERT_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1]);
  return data_[static_cast<std::size_t>(i) * shape_[1] + j];
}

float Tensor::at(int i, int j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

float& Tensor::at(int i, int j, int k) {
  REBERT_CHECK_MSG(rank() == 3, "at(i,j,k) on rank-" << rank() << " tensor");
  REBERT_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
               k < shape_[2]);
  return data_[(static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k];
}

float Tensor::at(int i, int j, int k) const {
  return const_cast<Tensor*>(this)->at(i, j, k);
}

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
  Tensor t;
  t.shape_ = std::move(new_shape);
  REBERT_CHECK_MSG(shape_numel(t.shape_) == numel(),
                   "reshape " << shape_string() << " -> " << t.shape_string()
                              << " changes element count");
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_scaled(const Tensor& other, float alpha) {
  REBERT_CHECK_MSG(same_shape(other), "add_scaled shape mismatch "
                                          << shape_string() << " vs "
                                          << other.shape_string());
  kernels::axpy(data_.data(), other.data_.data(), alpha,
                static_cast<std::int64_t>(data_.size()));
}

double Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

float Tensor::max_value() const {
  REBERT_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

double Tensor::norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ',';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace rebert::tensor
