#include "tensor/layers.h"

#include <cmath>

#include "kernels/kernels.h"
#include "util/check.h"

namespace rebert::tensor {

Linear::Linear(const std::string& name, int in_features, int out_features,
               util::Rng& rng)
    : weight(name + ".weight", Tensor::xavier(in_features, out_features, rng)),
      bias(name + ".bias", Tensor({out_features})) {}

Tensor Linear::forward(const Tensor& x, Cache* cache) const {
  // Shape proven once at model build time (tensor/graphcheck.h).
  REBERT_DCHECK_MSG(x.rank() == 2 && x.dim(1) == weight.value.dim(0),
                    "Linear input " << x.shape_string() << " vs weight "
                                    << weight.value.shape_string());
  if (cache) cache->input = x;
  // GEMM + in-place bias: skips the extra output copy add_row_bias(matmul())
  // would make.
  const int m = x.dim(0), in = x.dim(1), out = weight.value.dim(1);
  Tensor y({m, out});
  kernels::gemm(x.data(), weight.value.data(), y.data(), m, in, out);
  kernels::add_row_bias(y.data(), bias.value.data(), m, out);
  return y;
}

Tensor Linear::backward(const Tensor& dy, const Cache& cache) {
  // dW = x^T dy; db = column sums; dx = dy W^T.
  weight.grad.add_scaled(matmul_tn(cache.input, dy), 1.0f);
  bias.grad.add_scaled(column_sum(dy), 1.0f);
  return matmul_nt(dy, weight.value);
}

LayerNorm::LayerNorm(const std::string& name, int hidden, float eps_in)
    : gamma(name + ".gamma", Tensor::full({hidden}, 1.0f)),
      beta(name + ".beta", Tensor({hidden})),
      eps(eps_in) {}

Tensor LayerNorm::forward(const Tensor& x, Cache* cache) const {
  const int h = gamma.value.dim(0);
  REBERT_DCHECK_MSG(x.rank() == 2 && x.dim(1) == h,
                    "LayerNorm input " << x.shape_string() << " hidden "
                                       << h);
  const int n = x.dim(0);
  Tensor y({n, h});
  if (cache) {
    // Training path: the fused kernel also emits the normalized
    // intermediate and 1/std per row for backward.
    Tensor normalized({n, h});
    std::vector<float> inv_std(static_cast<std::size_t>(n));
    kernels::layer_norm(x.data(), gamma.value.data(), beta.value.data(), eps,
                        n, h, y.data(), normalized.data(), inv_std.data());
    cache->normalized = std::move(normalized);
    cache->inv_std = std::move(inv_std);
  } else {
    // Inference path: single fused pass, no intermediate allocations.
    kernels::layer_norm(x.data(), gamma.value.data(), beta.value.data(), eps,
                        n, h, y.data(), nullptr, nullptr);
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& dy, const Cache& cache) {
  const Tensor& nrm = cache.normalized;
  REBERT_DCHECK(dy.same_shape(nrm));
  const int n = dy.dim(0), h = dy.dim(1);
  Tensor dx({n, h});
  for (int i = 0; i < n; ++i) {
    // d_gamma, d_beta accumulate across rows.
    double sum_dnorm = 0.0, sum_dnorm_nrm = 0.0;
    for (int j = 0; j < h; ++j) {
      const float dnorm = dy.at(i, j) * gamma.value[j];
      sum_dnorm += dnorm;
      sum_dnorm_nrm += dnorm * nrm.at(i, j);
      gamma.grad[j] += dy.at(i, j) * nrm.at(i, j);
      beta.grad[j] += dy.at(i, j);
    }
    const float istd = cache.inv_std[static_cast<std::size_t>(i)];
    const float mean_dnorm = static_cast<float>(sum_dnorm / h);
    const float mean_dnorm_nrm = static_cast<float>(sum_dnorm_nrm / h);
    for (int j = 0; j < h; ++j) {
      const float dnorm = dy.at(i, j) * gamma.value[j];
      dx.at(i, j) =
          istd * (dnorm - mean_dnorm - nrm.at(i, j) * mean_dnorm_nrm);
    }
  }
  return dx;
}

Embedding::Embedding(const std::string& name, int vocab_size, int hidden,
                     util::Rng& rng, float init_stddev)
    : table(name + ".table",
            Tensor::randn({vocab_size, hidden}, rng, init_stddev)) {}

Tensor Embedding::forward(const std::vector<int>& ids, Cache* cache) const {
  if (cache) cache->ids = ids;
  return gather_rows(table.value, ids);
}

void Embedding::backward(const Tensor& dy, const Cache& cache) {
  const int h = table.value.dim(1);
  REBERT_DCHECK_MSG(dy.rank() == 2 && dy.dim(1) == h &&
                        dy.dim(0) == static_cast<int>(cache.ids.size()),
                    "Embedding backward shape " << dy.shape_string());
  for (std::size_t i = 0; i < cache.ids.size(); ++i) {
    const int row = cache.ids[i];
    float* g = table.grad.data() + static_cast<std::size_t>(row) * h;
    const float* d = dy.data() + i * h;
    for (int j = 0; j < h; ++j) g[j] += d[j];
  }
}

Tensor Dropout::forward(const Tensor& x, bool training, util::Rng& rng,
                        Cache* cache) const {
  if (!training || p_ <= 0.0f) {
    if (cache) cache->mask = Tensor();
    return x;
  }
  REBERT_CHECK_MSG(p_ < 1.0f, "dropout rate must be < 1");
  Tensor mask(x.shape());
  const float keep_scale = 1.0f / (1.0f - p_);
  for (std::int64_t i = 0; i < mask.numel(); ++i)
    mask[i] = rng.bernoulli(p_) ? 0.0f : keep_scale;
  Tensor y = mul(x, mask);
  if (cache) cache->mask = std::move(mask);
  return y;
}

Tensor Dropout::backward(const Tensor& dy, const Cache& cache) const {
  if (cache.mask.empty()) return dy;
  return mul(dy, cache.mask);
}

double clip_gradients(const std::vector<Parameter*>& params,
                      double max_norm) {
  REBERT_CHECK(max_norm > 0.0);
  double total_sq = 0.0;
  for (const Parameter* p : params) {
    const double n = p->grad.norm();
    total_sq += n * n;
  }
  const double norm = std::sqrt(total_sq);
  if (norm > max_norm) {
    const float factor = static_cast<float>(max_norm / norm);
    for (Parameter* p : params)
      for (std::int64_t i = 0; i < p->grad.numel(); ++i) p->grad[i] *= factor;
  }
  return norm;
}

}  // namespace rebert::tensor
