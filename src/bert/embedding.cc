#include "bert/embedding.h"

#include "util/check.h"

namespace rebert::bert {

using tensor::Tensor;

BertEmbeddings::BertEmbeddings(const BertConfig& config, util::Rng& rng)
    : config_(config),
      word_("embeddings.word", config.vocab_size, config.hidden, rng),
      position_("embeddings.position", config.max_seq_len, config.hidden,
                rng),
      tree_projection_("embeddings.tree_projection", config.tree_code_dim,
                       config.hidden, rng),
      norm_("embeddings.norm", config.hidden),
      dropout_(config.dropout) {
  config.validate();
}

Tensor BertEmbeddings::forward(const EncodedSequence& input, bool training,
                               util::Rng& rng, Cache* cache) const {
  const int n = input.length();
  REBERT_CHECK_MSG(n >= 1, "empty sequence");
  REBERT_CHECK_MSG(static_cast<int>(input.position_ids.size()) == n,
                   "position_ids length mismatch");
  for (int id : input.token_ids)
    REBERT_CHECK_MSG(id >= 0 && id < config_.vocab_size,
                     "token id " << id << " out of vocabulary");
  for (int p : input.position_ids)
    REBERT_CHECK_MSG(p >= 0 && p < config_.max_seq_len,
                     "position " << p << " exceeds max_seq_len "
                                 << config_.max_seq_len);

  Tensor sum({n, config_.hidden});
  if (config_.use_word_embedding) {
    const Tensor w = word_.forward(input.token_ids,
                                   cache ? &cache->word : nullptr);
    sum.add_scaled(w, 1.0f);
  }
  if (config_.use_position_embedding) {
    const Tensor p = position_.forward(input.position_ids,
                                       cache ? &cache->position : nullptr);
    sum.add_scaled(p, 1.0f);
  }
  if (config_.use_tree_embedding) {
    REBERT_CHECK_MSG(input.tree_codes.rank() == 2 &&
                         input.tree_codes.dim(0) == n &&
                         input.tree_codes.dim(1) == config_.tree_code_dim,
                     "tree_codes shape " << input.tree_codes.shape_string()
                                         << " (expected [" << n << ","
                                         << config_.tree_code_dim << "])");
    const Tensor t = tree_projection_.forward(input.tree_codes,
                                              cache ? &cache->tree : nullptr);
    sum.add_scaled(t, 1.0f);
    if (cache) cache->used_tree = true;
  } else if (cache) {
    cache->used_tree = false;
  }

  Tensor normed = norm_.forward(sum, cache ? &cache->norm : nullptr);
  return dropout_.forward(normed, training, rng,
                          cache ? &cache->dropout : nullptr);
}

void BertEmbeddings::backward(const Tensor& dy, const Cache& cache) {
  const Tensor d_norm = dropout_.backward(dy, cache.dropout);
  const Tensor d_sum = norm_.backward(d_norm, cache.norm);
  if (config_.use_word_embedding) word_.backward(d_sum, cache.word);
  if (config_.use_position_embedding)
    position_.backward(d_sum, cache.position);
  if (cache.used_tree) tree_projection_.backward(d_sum, cache.tree);
}

std::vector<tensor::Parameter*> BertEmbeddings::parameters() {
  std::vector<tensor::Parameter*> params;
  // All parameters are registered regardless of ablation flags so that
  // checkpoints keep a stable layout; disabled embeddings simply receive no
  // gradient.
  for (auto* p : word_.parameters()) params.push_back(p);
  for (auto* p : position_.parameters()) params.push_back(p);
  for (auto* p : tree_projection_.parameters()) params.push_back(p);
  for (auto* p : norm_.parameters()) params.push_back(p);
  return params;
}

}  // namespace rebert::bert
