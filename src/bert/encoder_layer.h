// One BERT encoder layer (§II-C):
//   attention -> dropout -> Add & Norm -> FFN(GELU) -> dropout -> Add & Norm.
#pragma once

#include "bert/attention.h"
#include "bert/config.h"
#include "tensor/layers.h"

namespace rebert::bert {

class EncoderLayer {
 public:
  EncoderLayer() = default;
  EncoderLayer(const std::string& name, const BertConfig& config,
               util::Rng& rng);

  struct Cache {
    MultiHeadSelfAttention::Cache attention;
    tensor::Dropout::Cache attention_dropout;
    tensor::LayerNorm::Cache attention_norm;
    tensor::Linear::Cache intermediate;
    tensor::Tensor intermediate_pre_act;  // FFN pre-GELU activations
    tensor::Linear::Cache ffn_output;
    tensor::Dropout::Cache ffn_dropout;
    tensor::LayerNorm::Cache ffn_norm;
  };

  /// `valid_len` > 0 masks trailing [PAD] positions in the attention
  /// sublayer (see MultiHeadSelfAttention::forward). const: parameters are
  /// only read, so concurrent eval-mode forwards are safe; `rng` is
  /// consumed only when `training` (dropout masks).
  tensor::Tensor forward(const tensor::Tensor& x, bool training,
                         util::Rng& rng, Cache* cache,
                         int valid_len = 0) const;
  tensor::Tensor backward(const tensor::Tensor& dy, const Cache& cache);

  std::vector<tensor::Parameter*> parameters();

 private:
  MultiHeadSelfAttention attention_;
  tensor::LayerNorm attention_norm_;
  tensor::Linear intermediate_;  // H -> intermediate ("BERT Intermediate")
  tensor::Linear ffn_output_;    // intermediate -> H ("BERT Output")
  tensor::LayerNorm ffn_norm_;
  tensor::Dropout dropout_{0.0f};
};

}  // namespace rebert::bert
