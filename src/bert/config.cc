#include "bert/config.h"

#include "util/check.h"

namespace rebert::bert {

void BertConfig::validate() const {
  REBERT_CHECK_MSG(vocab_size >= 2, "vocab_size must be >= 2");
  REBERT_CHECK_MSG(hidden >= 1, "hidden must be >= 1");
  REBERT_CHECK_MSG(num_layers >= 1, "num_layers must be >= 1");
  REBERT_CHECK_MSG(num_heads >= 1, "num_heads must be >= 1");
  REBERT_CHECK_MSG(hidden % num_heads == 0,
                   "hidden " << hidden << " not divisible by num_heads "
                             << num_heads);
  REBERT_CHECK_MSG(intermediate >= 1, "intermediate must be >= 1");
  REBERT_CHECK_MSG(max_seq_len >= 2, "max_seq_len must be >= 2");
  REBERT_CHECK_MSG(tree_code_dim >= 2 && tree_code_dim % 2 == 0,
                   "tree_code_dim must be a positive even number");
  REBERT_CHECK_MSG(dropout >= 0.0f && dropout < 1.0f,
                   "dropout must be in [0,1)");
  REBERT_CHECK_MSG(num_classes >= 2, "num_classes must be >= 2");
  REBERT_CHECK_MSG(use_word_embedding || use_position_embedding ||
                       use_tree_embedding,
                   "at least one embedding must be enabled");
}

BertConfig paper_config(int vocab_size, int max_seq_len) {
  BertConfig config;
  config.vocab_size = vocab_size;
  config.hidden = 768;
  config.num_layers = 12;
  config.num_heads = 12;
  config.intermediate = 3072;
  config.max_seq_len = max_seq_len;
  config.tree_code_dim = 64;
  config.validate();
  return config;
}

BertConfig eval_config(int vocab_size, int max_seq_len) {
  BertConfig config;
  config.vocab_size = vocab_size;
  config.hidden = 64;
  config.num_layers = 2;
  config.num_heads = 4;
  config.intermediate = 256;
  config.max_seq_len = max_seq_len;
  config.tree_code_dim = 32;
  config.validate();
  return config;
}

}  // namespace rebert::bert
