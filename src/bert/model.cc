#include "bert/model.h"

#include <unordered_map>

#include "runtime/fault_injector.h"
#include "tensor/graphcheck.h"
#include "tensor/serialize.h"
#include "util/check.h"

namespace rebert::bert {

using tensor::Tensor;

void check_model_graph(const BertConfig& config,
                       const std::vector<tensor::Parameter*>& parameters) {
  const int n = tensor::kDynamicDim;  // sequence length, dynamic
  const int H = config.hidden;
  const int I = config.intermediate;

  std::unordered_map<std::string, const tensor::Parameter*> by_name;
  for (const tensor::Parameter* p : parameters) by_name.emplace(p->name, p);

  tensor::GraphCheck g("BertPairClassifier");
  auto check_param = [&](const std::string& name,
                         const tensor::ShapePattern& expected) {
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      g.require(false, "parameter '" + name + "' is missing");
      return;
    }
    g.param(name, it->second->value.shape(), expected);
    g.require(it->second->grad.shape() == it->second->value.shape(),
              "parameter '" + name + "' gradient shape differs from value");
  };

  g.require(config.num_heads >= 1 && H % config.num_heads == 0,
            "num_heads must divide hidden");
  g.require(config.num_classes >= 2, "classifier needs >= 2 classes");

  // Embedding: token ids [n] -> summed embeddings [n, H] -> LayerNorm.
  g.stage("embeddings.sum", {n}, {n, H});
  check_param("embeddings.word.table", {config.vocab_size, H});
  check_param("embeddings.position.table", {config.max_seq_len, H});
  check_param("embeddings.tree_projection.weight", {config.tree_code_dim, H});
  check_param("embeddings.tree_projection.bias", {H});
  g.stage("embeddings.norm", {n, H}, {n, H});
  check_param("embeddings.norm.gamma", {H});
  check_param("embeddings.norm.beta", {H});

  // Encoder stack: each layer maps [n, H] -> [n, H] through attention
  // (H split across heads) and the GELU FFN ([n, H] -> [n, I] -> [n, H]).
  for (int i = 0; i < config.num_layers; ++i) {
    const std::string prefix = "encoder." + std::to_string(i);
    g.stage(prefix + ".attention", {n, H}, {n, H});
    for (const char* proj : {"query", "key", "value", "output"}) {
      check_param(prefix + ".attention." + proj + ".weight", {H, H});
      check_param(prefix + ".attention." + proj + ".bias", {H});
    }
    g.stage(prefix + ".attention_norm", {n, H}, {n, H});
    check_param(prefix + ".attention_norm.gamma", {H});
    check_param(prefix + ".attention_norm.beta", {H});
    g.stage(prefix + ".intermediate", {n, H}, {n, I});
    check_param(prefix + ".intermediate.weight", {H, I});
    check_param(prefix + ".intermediate.bias", {I});
    g.stage(prefix + ".ffn_output", {n, I}, {n, H});
    check_param(prefix + ".ffn_output.weight", {I, H});
    check_param(prefix + ".ffn_output.bias", {H});
    g.stage(prefix + ".ffn_norm", {n, H}, {n, H});
    check_param(prefix + ".ffn_norm.gamma", {H});
    check_param(prefix + ".ffn_norm.beta", {H});
  }

  // Head: [CLS] slice -> pooler (tanh) -> classifier logits.
  g.stage("pooler.first_token", {n, H}, {1, H});
  g.stage("pooler", {1, H}, {1, H});
  check_param("pooler.weight", {H, H});
  check_param("pooler.bias", {H});
  g.stage("classifier", {1, H}, {1, config.num_classes});
  check_param("classifier.weight", {H, config.num_classes});
  check_param("classifier.bias", {config.num_classes});

  g.finish();
}

struct BertPairClassifier::ForwardCache {
  BertEmbeddings::Cache embeddings;
  std::vector<EncoderLayer::Cache> layers;
  int seq_len = 0;
  tensor::Linear::Cache pooler;
  Tensor pooled_tanh;  // tanh output, [1, H]
  tensor::Linear::Cache classifier;
};

BertPairClassifier::BertPairClassifier(const BertConfig& config)
    : config_(config),
      init_rng_(config.seed),
      dropout_rng_(config.seed ^ 0xd120u),
      embeddings_(config, init_rng_),
      pooler_("pooler", config.hidden, config.hidden, init_rng_),
      classifier_("classifier", config.hidden, config.num_classes,
                  init_rng_) {
  config_.validate();
  layers_.reserve(static_cast<std::size_t>(config.num_layers));
  for (int i = 0; i < config.num_layers; ++i)
    layers_.emplace_back("encoder." + std::to_string(i), config, init_rng_);
  // One cold-path pass proves the whole stage chain shape-consistent, so
  // the forward path does not re-check layer shapes per call.
  check_model_graph(config_, parameters());
}

Tensor BertPairClassifier::forward(const EncodedSequence& input,
                                   util::Rng* dropout_rng,
                                   ForwardCache* cache) const {
  const bool training = dropout_rng != nullptr;
  // Eval-mode layer forwards never consume randomness (dropout is the
  // identity), but the layer API threads an Rng through; hand them an
  // inert thread-local one so concurrent const inference shares no
  // mutable state whatsoever.
  static thread_local util::Rng inert_eval_rng(0);
  util::Rng& rng = training ? *dropout_rng : inert_eval_rng;

  ForwardCache local;
  ForwardCache& c = cache ? *cache : local;
  c.seq_len = input.length();
  c.layers.resize(layers_.size());

  Tensor hidden = embeddings_.forward(input, training, rng, &c.embeddings);
  for (std::size_t i = 0; i < layers_.size(); ++i)
    hidden = layers_[i].forward(hidden, training, rng, &c.layers[i],
                                input.valid_len);

  // Pooler: first token ([CLS]) -> linear -> tanh.
  Tensor first_row({1, config_.hidden});
  for (int j = 0; j < config_.hidden; ++j) first_row.at(0, j) = hidden.at(0, j);
  const Tensor pooled = pooler_.forward(first_row, &c.pooler);
  c.pooled_tanh = tensor::tanh_forward(pooled);
  return classifier_.forward(c.pooled_tanh, &c.classifier);
}

void BertPairClassifier::backward(const Tensor& d_logits,
                                  const ForwardCache& cache) {
  const Tensor d_pooled_tanh = classifier_.backward(d_logits,
                                                    cache.classifier);
  const Tensor d_pooled =
      tensor::tanh_backward(d_pooled_tanh, cache.pooled_tanh);
  const Tensor d_first_row = pooler_.backward(d_pooled, cache.pooler);

  // Only the first token receives gradient from the pooler.
  Tensor d_hidden({cache.seq_len, config_.hidden});
  for (int j = 0; j < config_.hidden; ++j)
    d_hidden.at(0, j) = d_first_row.at(0, j);

  for (std::size_t i = layers_.size(); i-- > 0;)
    d_hidden = layers_[i].backward(d_hidden, cache.layers[i]);
  embeddings_.backward(d_hidden, cache.embeddings);
}

double BertPairClassifier::predict_same_word_probability(
    const EncodedSequence& input) const {
  // Chaos site: simulates an inference failure (bad checkpoint arithmetic,
  // a NaN tripwire from check_numerics, a future accelerator backend
  // erroring out). One check per forward so probability-armed chaos runs
  // fail a deterministic fraction of predictions.
  runtime::FaultInjector::global().maybe_throw("model.forward");
  const Tensor logits = forward(input, /*dropout_rng=*/nullptr, nullptr);
  const Tensor probs = tensor::softmax_rows(logits);
  return probs.at(0, 1);
}

std::vector<double> BertPairClassifier::predict_same_word_probabilities(
    const std::vector<const EncodedSequence*>& batch) const {
  std::vector<double> scores;
  scores.reserve(batch.size());
  for (const EncodedSequence* input : batch) {
    REBERT_CHECK_MSG(input != nullptr, "null sequence in prediction batch");
    scores.push_back(predict_same_word_probability(*input));
  }
  return scores;
}

double BertPairClassifier::train_step_accumulate(const EncodedSequence& input,
                                                 int label) {
  ForwardCache cache;
  const Tensor logits = forward(input, &dropout_rng_, &cache);
  Tensor d_logits;
  const double loss =
      tensor::cross_entropy_with_logits(logits, {label}, &d_logits);
  backward(d_logits, cache);
  return loss;
}

double BertPairClassifier::eval_loss(const EncodedSequence& input,
                                     int label) const {
  const Tensor logits = forward(input, /*dropout_rng=*/nullptr, nullptr);
  return tensor::cross_entropy_with_logits(logits, {label}, nullptr);
}

const std::vector<tensor::Parameter*>& BertPairClassifier::parameters() {
  if (parameter_list_.empty()) {
    for (auto* p : embeddings_.parameters()) parameter_list_.push_back(p);
    for (auto& layer : layers_)
      for (auto* p : layer.parameters()) parameter_list_.push_back(p);
    for (auto* p : pooler_.parameters()) parameter_list_.push_back(p);
    for (auto* p : classifier_.parameters()) parameter_list_.push_back(p);
  }
  return parameter_list_;
}

std::int64_t BertPairClassifier::num_parameters() {
  std::int64_t total = 0;
  for (const auto* p : parameters()) total += p->value.numel();
  return total;
}

void BertPairClassifier::save(const std::string& path) {
  tensor::save_parameters(parameters(), path);
}

void BertPairClassifier::load(const std::string& path) {
  tensor::load_parameters(parameters(), path);
}

}  // namespace rebert::bert
