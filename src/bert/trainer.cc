#include "bert/trainer.h"

#include <numeric>

#include "tensor/graphcheck.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_utils.h"

namespace rebert::bert {

double evaluate_accuracy(BertPairClassifier& model,
                         const std::vector<LabeledExample>& examples) {
  REBERT_CHECK(!examples.empty());
  int correct = 0;
  for (const LabeledExample& ex : examples) {
    const double p = model.predict_same_word_probability(ex.sequence);
    const int predicted = p >= 0.5 ? 1 : 0;
    if (predicted == ex.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(examples.size());
}

double evaluate_loss(BertPairClassifier& model,
                     const std::vector<LabeledExample>& examples) {
  REBERT_CHECK(!examples.empty());
  double total = 0.0;
  for (const LabeledExample& ex : examples)
    total += model.eval_loss(ex.sequence, ex.label);
  return total / static_cast<double>(examples.size());
}

namespace {

// Snapshot / restore of parameter values (for best-checkpoint restoring).
std::vector<tensor::Tensor> snapshot(BertPairClassifier& model) {
  std::vector<tensor::Tensor> values;
  values.reserve(model.parameters().size());
  for (const tensor::Parameter* p : model.parameters())
    values.push_back(p->value);
  return values;
}

void restore(BertPairClassifier& model,
             const std::vector<tensor::Tensor>& values) {
  const auto& params = model.parameters();
  REBERT_CHECK(params.size() == values.size());
  for (std::size_t i = 0; i < params.size(); ++i)
    params[i]->value = values[i];
}

}  // namespace

TrainResult train(BertPairClassifier& model,
                  const std::vector<LabeledExample>& examples,
                  const TrainOptions& options) {
  REBERT_CHECK_MSG(!examples.empty(), "no training examples");
  REBERT_CHECK(options.epochs >= 1 && options.batch_size >= 1);
  REBERT_CHECK_MSG(options.eval_fraction >= 0.0 &&
                       options.eval_fraction < 1.0,
                   "eval_fraction must be in [0, 1)");

  // Optional validation split (deterministic).
  std::vector<LabeledExample> train_set, eval_set;
  if (options.eval_fraction > 0.0) {
    std::vector<std::size_t> indices(examples.size());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    util::Rng split_rng(options.shuffle_seed ^ 0xe7a1ULL);
    split_rng.shuffle(indices);
    const std::size_t eval_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(examples.size() *
                                    options.eval_fraction));
    REBERT_CHECK_MSG(eval_count < examples.size(),
                     "eval split leaves no training data");
    for (std::size_t i = 0; i < indices.size(); ++i)
      (i < eval_count ? eval_set : train_set)
          .push_back(examples[indices[i]]);
  } else {
    train_set = examples;
  }

  tensor::Adam::Options adam_options;
  adam_options.weight_decay = options.weight_decay;
  tensor::Adam optimizer(model.parameters(), adam_options);

  const int steps_per_epoch = static_cast<int>(
      (train_set.size() + options.batch_size - 1) / options.batch_size);
  const int total_steps = steps_per_epoch * options.epochs;
  const int warmup_steps = static_cast<int>(
      options.warmup_fraction * total_steps);
  const tensor::WarmupLinearSchedule schedule(options.learning_rate,
                                              warmup_steps, total_steps);

  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  util::Rng shuffle_rng(options.shuffle_seed);

  TrainResult result;
  std::vector<tensor::Tensor> best_values;
  int epochs_without_improvement = 0;
  int step = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t seen = 0;
    while (seen < order.size()) {
      const std::size_t batch_end =
          std::min(order.size(), seen + static_cast<std::size_t>(
                                            options.batch_size));
      int batch_count = 0;
      double batch_loss = 0.0;
      for (std::size_t i = seen; i < batch_end; ++i) {
        const LabeledExample& ex = train_set[order[i]];
        batch_loss += model.train_step_accumulate(ex.sequence, ex.label);
        ++batch_count;
      }
      epoch_loss += batch_loss;
      // Average the accumulated gradients over the batch.
      if (batch_count > 1) {
        const float inv = 1.0f / static_cast<float>(batch_count);
        for (tensor::Parameter* p : model.parameters())
          for (std::int64_t j = 0; j < p->grad.numel(); ++j) p->grad[j] *= inv;
      }
      if (options.clip_norm > 0.0)
        tensor::clip_gradients(model.parameters(), options.clip_norm);
      if (options.check_numerics) {
        // Cold-path tripwire: catch the step where non-finite values first
        // enter, instead of reporting "loss = nan" epochs later.
        tensor::NumericTripwire tripwire;
        tripwire.set_step(step);
        tripwire.observe_scalar("batch loss", batch_loss);
        for (const tensor::Parameter* p : model.parameters())
          tripwire.observe(p->name + ".grad", p->grad);
        REBERT_CHECK_MSG(!tripwire.tripped(),
                         "numeric tripwire before optimizer step — "
                             << tripwire.first_trip());
      }
      optimizer.step(schedule.lr(step));
      if (options.check_numerics) {
        tensor::NumericTripwire tripwire;
        tripwire.set_step(step);
        for (const tensor::Parameter* p : model.parameters())
          tripwire.observe(p->name, p->value);
        REBERT_CHECK_MSG(!tripwire.tripped(),
                         "numeric tripwire after optimizer step — "
                             << tripwire.first_trip());
      }
      ++step;
      seen = batch_end;
    }
    EpochStats stats;
    stats.mean_loss = epoch_loss / static_cast<double>(train_set.size());
    stats.accuracy = evaluate_accuracy(model, train_set);
    if (!eval_set.empty()) {
      stats.eval_loss = evaluate_loss(model, eval_set);
      if (result.best_epoch < 0 || stats.eval_loss < result.best_eval_loss) {
        result.best_epoch = epoch;
        result.best_eval_loss = stats.eval_loss;
        best_values = snapshot(model);
        epochs_without_improvement = 0;
      } else {
        ++epochs_without_improvement;
      }
    }
    result.epochs.push_back(stats);
    if (options.verbose) {
      LOG_INFO << "epoch " << (epoch + 1) << "/" << options.epochs
               << " loss=" << util::format_double(stats.mean_loss, 4)
               << " acc=" << util::format_double(stats.accuracy, 4)
               << (eval_set.empty()
                       ? ""
                       : " eval=" +
                             util::format_double(stats.eval_loss, 4));
    }
    if (!eval_set.empty() && options.early_stop_patience > 0 &&
        epochs_without_improvement >= options.early_stop_patience) {
      result.stopped_early = true;
      break;
    }
  }
  if (!best_values.empty()) restore(model, best_values);
  result.final_train_accuracy = evaluate_accuracy(model, train_set);
  return result;
}

}  // namespace rebert::bert
