#include "bert/encoder_layer.h"

#include "util/check.h"

namespace rebert::bert {

using tensor::Tensor;

EncoderLayer::EncoderLayer(const std::string& name, const BertConfig& config,
                           util::Rng& rng)
    : attention_(name + ".attention", config, rng),
      attention_norm_(name + ".attention_norm", config.hidden),
      intermediate_(name + ".intermediate", config.hidden,
                    config.intermediate, rng),
      ffn_output_(name + ".ffn_output", config.intermediate, config.hidden,
                  rng),
      ffn_norm_(name + ".ffn_norm", config.hidden),
      dropout_(config.dropout) {}

Tensor EncoderLayer::forward(const Tensor& x, bool training, util::Rng& rng,
                             Cache* cache, int valid_len) const {
  Cache local;
  Cache& c = cache ? *cache : local;

  // Attention block with residual.
  Tensor att = attention_.forward(x, &c.attention, valid_len);
  att = dropout_.forward(att, training, rng, &c.attention_dropout);
  const Tensor att_res = tensor::add(x, att);
  const Tensor att_normed = attention_norm_.forward(att_res,
                                                    &c.attention_norm);

  // Feed-forward block with residual.
  const Tensor pre_act = intermediate_.forward(att_normed, &c.intermediate);
  c.intermediate_pre_act = pre_act;
  const Tensor activated = tensor::gelu(pre_act);
  Tensor ffn = ffn_output_.forward(activated, &c.ffn_output);
  ffn = dropout_.forward(ffn, training, rng, &c.ffn_dropout);
  const Tensor ffn_res = tensor::add(att_normed, ffn);
  return ffn_norm_.forward(ffn_res, &c.ffn_norm);
}

Tensor EncoderLayer::backward(const Tensor& dy, const Cache& cache) {
  // Unwind: ffn_norm -> residual split -> ffn -> attention_norm ->
  // residual split -> attention.
  const Tensor d_ffn_res = ffn_norm_.backward(dy, cache.ffn_norm);
  // ffn_res = att_normed + dropout(ffn): gradient flows to both.
  const Tensor d_ffn_drop = dropout_.backward(d_ffn_res, cache.ffn_dropout);
  const Tensor d_activated = ffn_output_.backward(d_ffn_drop,
                                                  cache.ffn_output);
  const Tensor d_pre_act =
      tensor::gelu_backward(d_activated, cache.intermediate_pre_act);
  Tensor d_att_normed = intermediate_.backward(d_pre_act, cache.intermediate);
  d_att_normed.add_scaled(d_ffn_res, 1.0f);  // residual path

  const Tensor d_att_res =
      attention_norm_.backward(d_att_normed, cache.attention_norm);
  const Tensor d_att_drop =
      dropout_.backward(d_att_res, cache.attention_dropout);
  Tensor dx = attention_.backward(d_att_drop, cache.attention);
  dx.add_scaled(d_att_res, 1.0f);  // residual path
  return dx;
}

std::vector<tensor::Parameter*> EncoderLayer::parameters() {
  std::vector<tensor::Parameter*> params;
  for (auto* p : attention_.parameters()) params.push_back(p);
  for (auto* p : attention_norm_.parameters()) params.push_back(p);
  for (auto* p : intermediate_.parameters()) params.push_back(p);
  for (auto* p : ffn_output_.parameters()) params.push_back(p);
  for (auto* p : ffn_norm_.parameters()) params.push_back(p);
  return params;
}

}  // namespace rebert::bert
