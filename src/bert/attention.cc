#include "bert/attention.h"

#include <cmath>

#include "util/check.h"

namespace rebert::bert {

using tensor::Tensor;

Tensor slice_cols(const Tensor& x, int c0, int c1) {
  // Head slicing bounds follow from H = heads * head_dim, proven at model
  // build time (check_model_graph); per-call cost matters (heads x layers).
  REBERT_DCHECK(x.rank() == 2 && c0 >= 0 && c1 <= x.dim(1) && c0 < c1);
  Tensor out({x.dim(0), c1 - c0});
  for (int i = 0; i < x.dim(0); ++i)
    for (int j = c0; j < c1; ++j) out.at(i, j - c0) = x.at(i, j);
  return out;
}

void add_into_cols(Tensor* dst, const Tensor& src, int c0) {
  REBERT_DCHECK(dst && dst->rank() == 2 && src.rank() == 2);
  REBERT_DCHECK(dst->dim(0) == src.dim(0) &&
                c0 + src.dim(1) <= dst->dim(1));
  for (int i = 0; i < src.dim(0); ++i)
    for (int j = 0; j < src.dim(1); ++j)
      dst->at(i, c0 + j) += src.at(i, j);
}

MultiHeadSelfAttention::MultiHeadSelfAttention(const std::string& name,
                                               const BertConfig& config,
                                               util::Rng& rng)
    : num_heads_(config.num_heads),
      head_dim_(config.head_dim()),
      query_(name + ".query", config.hidden, config.hidden, rng),
      key_(name + ".key", config.hidden, config.hidden, rng),
      value_(name + ".value", config.hidden, config.hidden, rng),
      output_(name + ".output", config.hidden, config.hidden, rng) {}

Tensor MultiHeadSelfAttention::forward(const Tensor& x, Cache* cache,
                                       int valid_len) const {
  const int hidden = num_heads_ * head_dim_;
  // Entry-point check stays always-on (public API, once per forward); the
  // per-head helpers below rely on the build-time graph check instead.
  REBERT_CHECK_MSG(x.rank() == 2 && x.dim(1) == hidden,
                   "attention input " << x.shape_string());
  const int n = x.dim(0);
  REBERT_CHECK_MSG(valid_len >= 0 && valid_len <= n,
                   "valid_len " << valid_len << " out of range for " << n);

  Cache local;
  Cache& c = cache ? *cache : local;
  c.q = query_.forward(x, &c.q_cache);
  c.k = key_.forward(x, &c.k_cache);
  c.v = value_.forward(x, &c.v_cache);
  c.probs.clear();
  c.probs.reserve(static_cast<std::size_t>(num_heads_));

  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  // -inf surrogate large enough to underflow to exactly 0 after softmax's
  // max-subtraction and exp.
  constexpr float kMaskValue = -1e9f;
  Tensor concat({n, hidden});
  for (int h = 0; h < num_heads_; ++h) {
    const int c0 = h * head_dim_, c1 = c0 + head_dim_;
    const Tensor qh = slice_cols(c.q, c0, c1);
    const Tensor kh = slice_cols(c.k, c0, c1);
    const Tensor vh = slice_cols(c.v, c0, c1);
    Tensor scores = tensor::scale(tensor::matmul_nt(qh, kh), inv_sqrt_d);
    if (valid_len > 0 && valid_len < n) {
      for (int i = 0; i < n; ++i)
        for (int j = valid_len; j < n; ++j) scores.at(i, j) = kMaskValue;
    }
    Tensor probs = tensor::softmax_rows(scores);
    const Tensor oh = tensor::matmul(probs, vh);
    add_into_cols(&concat, oh, c0);
    c.probs.push_back(std::move(probs));
  }
  c.concat = concat;
  return output_.forward(concat, &c.out_cache);
}

Tensor MultiHeadSelfAttention::backward(const Tensor& dy, const Cache& cache) {
  const int hidden = num_heads_ * head_dim_;
  const int n = dy.dim(0);
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  const Tensor d_concat = output_.backward(dy, cache.out_cache);

  Tensor dq({n, hidden}), dk({n, hidden}), dv({n, hidden});
  for (int h = 0; h < num_heads_; ++h) {
    const int c0 = h * head_dim_, c1 = c0 + head_dim_;
    const Tensor doh = slice_cols(d_concat, c0, c1);
    const Tensor qh = slice_cols(cache.q, c0, c1);
    const Tensor kh = slice_cols(cache.k, c0, c1);
    const Tensor vh = slice_cols(cache.v, c0, c1);
    const Tensor& probs = cache.probs[static_cast<std::size_t>(h)];

    // O = P V:  dP = dO V^T, dV = P^T dO.
    const Tensor dp = tensor::matmul_nt(doh, vh);
    const Tensor dvh = tensor::matmul_tn(probs, doh);
    // P = softmax(S): dS.
    Tensor ds = tensor::softmax_rows_backward(dp, probs);
    ds = tensor::scale(ds, inv_sqrt_d);
    // S = Q K^T: dQ = dS K, dK = dS^T Q.
    const Tensor dqh = tensor::matmul(ds, kh);
    const Tensor dkh = tensor::matmul_tn(ds, qh);

    add_into_cols(&dq, dqh, c0);
    add_into_cols(&dk, dkh, c0);
    add_into_cols(&dv, dvh, c0);
  }

  Tensor dx = query_.backward(dq, cache.q_cache);
  dx.add_scaled(key_.backward(dk, cache.k_cache), 1.0f);
  dx.add_scaled(value_.backward(dv, cache.v_cache), 1.0f);
  return dx;
}

std::vector<tensor::Parameter*> MultiHeadSelfAttention::parameters() {
  std::vector<tensor::Parameter*> params;
  for (auto* layer : {&query_, &key_, &value_, &output_})
    for (auto* p : layer->parameters()) params.push_back(p);
  return params;
}

}  // namespace rebert::bert
