#include "bert/attention.h"

#include <cmath>
#include <cstring>

#include "kernels/arena.h"
#include "kernels/kernels.h"
#include "util/check.h"

namespace rebert::bert {

using tensor::Tensor;

Tensor slice_cols(const Tensor& x, int c0, int c1) {
  // Head slicing bounds follow from H = heads * head_dim, proven at model
  // build time (check_model_graph); per-call cost matters (heads x layers).
  REBERT_DCHECK(x.rank() == 2 && c0 >= 0 && c1 <= x.dim(1) && c0 < c1);
  Tensor out({x.dim(0), c1 - c0});
  for (int i = 0; i < x.dim(0); ++i)
    for (int j = c0; j < c1; ++j) out.at(i, j - c0) = x.at(i, j);
  return out;
}

void add_into_cols(Tensor* dst, const Tensor& src, int c0) {
  REBERT_DCHECK(dst && dst->rank() == 2 && src.rank() == 2);
  REBERT_DCHECK(dst->dim(0) == src.dim(0) &&
                c0 + src.dim(1) <= dst->dim(1));
  for (int i = 0; i < src.dim(0); ++i)
    for (int j = 0; j < src.dim(1); ++j)
      dst->at(i, c0 + j) += src.at(i, j);
}

MultiHeadSelfAttention::MultiHeadSelfAttention(const std::string& name,
                                               const BertConfig& config,
                                               util::Rng& rng)
    : num_heads_(config.num_heads),
      head_dim_(config.head_dim()),
      query_(name + ".query", config.hidden, config.hidden, rng),
      key_(name + ".key", config.hidden, config.hidden, rng),
      value_(name + ".value", config.hidden, config.hidden, rng),
      output_(name + ".output", config.hidden, config.hidden, rng) {}

Tensor MultiHeadSelfAttention::forward(const Tensor& x, Cache* cache,
                                       int valid_len) const {
  const int hidden = num_heads_ * head_dim_;
  // Entry-point check stays always-on (public API, once per forward); the
  // per-head helpers below rely on the build-time graph check instead.
  REBERT_CHECK_MSG(x.rank() == 2 && x.dim(1) == hidden,
                   "attention input " << x.shape_string());
  const int n = x.dim(0);
  REBERT_CHECK_MSG(valid_len >= 0 && valid_len <= n,
                   "valid_len " << valid_len << " out of range for " << n);

  // All per-head temporaries (Q/K/V slices, score matrices, head outputs,
  // and on the inference path the projections themselves) live in the
  // per-thread scratch arena: after the first forward has grown it to the
  // working-set size, a forward makes no heap allocations beyond the
  // returned tensor.
  kernels::ArenaScope scope;
  const float* qp;
  const float* kp;
  const float* vp;
  if (cache) {
    // Training path keeps the projections in the cache for backward.
    cache->q = query_.forward(x, &cache->q_cache);
    cache->k = key_.forward(x, &cache->k_cache);
    cache->v = value_.forward(x, &cache->v_cache);
    cache->probs.clear();
    cache->probs.reserve(static_cast<std::size_t>(num_heads_));
    qp = cache->q.data();
    kp = cache->k.data();
    vp = cache->v.data();
  } else {
    const std::size_t proj = static_cast<std::size_t>(n) * hidden;
    float* qb = scope.floats(proj);
    float* kb = scope.floats(proj);
    float* vb = scope.floats(proj);
    kernels::gemm(x.data(), query_.weight.value.data(), qb, n, hidden, hidden);
    kernels::add_row_bias(qb, query_.bias.value.data(), n, hidden);
    kernels::gemm(x.data(), key_.weight.value.data(), kb, n, hidden, hidden);
    kernels::add_row_bias(kb, key_.bias.value.data(), n, hidden);
    kernels::gemm(x.data(), value_.weight.value.data(), vb, n, hidden, hidden);
    kernels::add_row_bias(vb, value_.bias.value.data(), n, hidden);
    qp = qb;
    kp = kb;
    vp = vb;
  }

  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  // -inf surrogate large enough to underflow to exactly 0 after softmax's
  // max-subtraction and exp.
  constexpr float kMaskValue = -1e9f;
  const std::size_t head_elems = static_cast<std::size_t>(n) * head_dim_;
  float* qh = scope.floats(head_elems);
  float* kh = scope.floats(head_elems);
  float* vh = scope.floats(head_elems);
  float* scores = scope.floats(static_cast<std::size_t>(n) * n);
  float* oh = scope.floats(head_elems);
  const auto slice_head = [&](const float* src, int c0, float* dst) {
    for (int i = 0; i < n; ++i)
      std::memcpy(dst + static_cast<std::size_t>(i) * head_dim_,
                  src + static_cast<std::size_t>(i) * hidden + c0,
                  static_cast<std::size_t>(head_dim_) * sizeof(float));
  };

  Tensor concat({n, hidden});
  for (int h = 0; h < num_heads_; ++h) {
    const int c0 = h * head_dim_;
    slice_head(qp, c0, qh);
    slice_head(kp, c0, kh);
    slice_head(vp, c0, vh);
    kernels::gemm_nt(qh, kh, scores, n, head_dim_, n);
    kernels::scale(scores, inv_sqrt_d, static_cast<std::int64_t>(n) * n);
    if (valid_len > 0 && valid_len < n) {
      for (int i = 0; i < n; ++i) {
        float* srow = scores + static_cast<std::size_t>(i) * n;
        for (int j = valid_len; j < n; ++j) srow[j] = kMaskValue;
      }
    }
    kernels::softmax_rows(scores, n, n);
    if (cache) {
      Tensor probs({n, n});
      std::memcpy(probs.data(), scores,
                  static_cast<std::size_t>(n) * n * sizeof(float));
      cache->probs.push_back(std::move(probs));
    }
    kernels::gemm(scores, vh, oh, n, n, head_dim_);
    // Heads own disjoint column blocks of concat, so this is a straight
    // scatter, not an accumulate.
    for (int i = 0; i < n; ++i)
      std::memcpy(concat.data() + static_cast<std::size_t>(i) * hidden + c0,
                  oh + static_cast<std::size_t>(i) * head_dim_,
                  static_cast<std::size_t>(head_dim_) * sizeof(float));
  }
  if (cache) {
    cache->concat = concat;
    return output_.forward(concat, &cache->out_cache);
  }
  return output_.forward(concat, nullptr);
}

Tensor MultiHeadSelfAttention::backward(const Tensor& dy, const Cache& cache) {
  const int hidden = num_heads_ * head_dim_;
  const int n = dy.dim(0);
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  const Tensor d_concat = output_.backward(dy, cache.out_cache);

  Tensor dq({n, hidden}), dk({n, hidden}), dv({n, hidden});
  for (int h = 0; h < num_heads_; ++h) {
    const int c0 = h * head_dim_, c1 = c0 + head_dim_;
    const Tensor doh = slice_cols(d_concat, c0, c1);
    const Tensor qh = slice_cols(cache.q, c0, c1);
    const Tensor kh = slice_cols(cache.k, c0, c1);
    const Tensor vh = slice_cols(cache.v, c0, c1);
    const Tensor& probs = cache.probs[static_cast<std::size_t>(h)];

    // O = P V:  dP = dO V^T, dV = P^T dO.
    const Tensor dp = tensor::matmul_nt(doh, vh);
    const Tensor dvh = tensor::matmul_tn(probs, doh);
    // P = softmax(S): dS.
    Tensor ds = tensor::softmax_rows_backward(dp, probs);
    ds = tensor::scale(ds, inv_sqrt_d);
    // S = Q K^T: dQ = dS K, dK = dS^T Q.
    const Tensor dqh = tensor::matmul(ds, kh);
    const Tensor dkh = tensor::matmul_tn(ds, qh);

    add_into_cols(&dq, dqh, c0);
    add_into_cols(&dk, dkh, c0);
    add_into_cols(&dv, dvh, c0);
  }

  Tensor dx = query_.backward(dq, cache.q_cache);
  dx.add_scaled(key_.backward(dk, cache.k_cache), 1.0f);
  dx.add_scaled(value_.backward(dv, cache.v_cache), 1.0f);
  return dx;
}

std::vector<tensor::Parameter*> MultiHeadSelfAttention::parameters() {
  std::vector<tensor::Parameter*> params;
  for (auto* layer : {&query_, &key_, &value_, &output_})
    for (auto* p : layer->parameters()) params.push_back(p);
  return params;
}

}  // namespace rebert::bert
