// Fine-tuning loop (§III-A-2).
//
// Minibatch training with gradient accumulation (the model processes one
// variable-length sequence at a time), AdamW, warmup-linear-decay schedule,
// and global-norm gradient clipping — the standard BERT fine-tuning recipe.
#pragma once

#include <functional>
#include <vector>

#include "bert/model.h"
#include "tensor/optimizer.h"

namespace rebert::bert {

struct LabeledExample {
  EncodedSequence sequence;
  int label = 0;  // 1 = same word, 0 = different word
};

struct TrainOptions {
  int epochs = 3;
  int batch_size = 16;
  double learning_rate = 3e-4;
  double warmup_fraction = 0.1;  // of total optimizer steps
  double weight_decay = 0.01;
  double clip_norm = 1.0;
  std::uint64_t shuffle_seed = 99;
  bool verbose = false;  // log per-epoch metrics

  /// Fraction of the examples held out as a validation split (0 = train on
  /// everything, no early stopping).
  double eval_fraction = 0.0;
  /// With a validation split: stop after this many epochs without
  /// validation-loss improvement and restore the best weights (0 = run all
  /// epochs but still restore the best checkpoint at the end).
  int early_stop_patience = 0;

  /// NaN/Inf tripwire (tensor/graphcheck.h): after every optimizer step,
  /// scan the batch loss, gradients, and updated parameters and throw
  /// util::CheckError naming the first non-finite tensor and step. Debug
  /// mode for diverging runs — off by default (it scans every parameter
  /// once per batch).
  bool check_numerics = false;
};

struct EpochStats {
  double mean_loss = 0.0;
  double accuracy = 0.0;   // on the training examples (post-epoch eval)
  double eval_loss = 0.0;  // on the validation split (0 when disabled)
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  double final_train_accuracy = 0.0;
  int best_epoch = -1;         // -1 when no validation split was used
  double best_eval_loss = 0.0;
  bool stopped_early = false;
};

/// Evaluate classification accuracy (threshold 0.5 on P(same word)).
double evaluate_accuracy(BertPairClassifier& model,
                         const std::vector<LabeledExample>& examples);

/// Mean eval loss.
double evaluate_loss(BertPairClassifier& model,
                     const std::vector<LabeledExample>& examples);

TrainResult train(BertPairClassifier& model,
                  const std::vector<LabeledExample>& examples,
                  const TrainOptions& options);

}  // namespace rebert::bert
