// BERT model configuration (§II-C, Fig. 4).
//
// The paper fine-tunes a standard BERT encoder (12-head multi-head
// attention, Add & Norm, GELU intermediate, tanh pooler). Its printed
// dimensions are internally inconsistent (tokens "padded to length 768",
// word vectors "of size 512"); we standardize on one hidden size H used for
// embeddings, attention, and pooler, as in the reference BERT architecture.
//
// Two presets:
//   * paper_config(): 12 layers / 12 heads / H=768 — the dimensions the
//     paper quotes. Constructible and shape-tested, but far too slow to
//     train on CPU.
//   * eval_config(): 2 layers / 4 heads / H=64 — the evaluation profile all
//     experiments in this repo use; trains in seconds-to-minutes on CPU and
//     preserves the architecture exactly.
#pragma once

#include <cstdint>

namespace rebert::bert {

struct BertConfig {
  int vocab_size = 32;
  int hidden = 64;              // embedding/attention width H
  int num_layers = 2;
  int num_heads = 4;            // must divide hidden
  int intermediate = 256;      // FFN inner width (4H in standard BERT)
  int max_seq_len = 512;       // learned positional table size
  int tree_code_dim = 32;      // width of the binary tree-position code
  float dropout = 0.1f;
  int num_classes = 2;          // same-word vs different-word
  std::uint64_t seed = 0x5eed;

  // Embedding ablation switches (§II-B; exercised by ablation_embeddings).
  bool use_word_embedding = true;
  bool use_position_embedding = true;
  bool use_tree_embedding = true;

  /// Throws util::CheckError when inconsistent (e.g. heads don't divide
  /// hidden, non-positive dims).
  void validate() const;

  int head_dim() const { return hidden / num_heads; }
};

/// Paper-quoted dimensions (see file comment).
BertConfig paper_config(int vocab_size, int max_seq_len);

/// CPU-trainable evaluation profile used by the experiments.
BertConfig eval_config(int vocab_size, int max_seq_len);

}  // namespace rebert::bert
