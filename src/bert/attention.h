// Multi-head self-attention with Add & Norm (§II-C "Attention").
//
// Standard BERT attention over one sequence x ∈ R^{n×H}:
//   Q = xW_q, K = xW_k, V = xW_v; per head h of width d = H/heads:
//   S_h = Q_h K_h^T / sqrt(d),  P_h = softmax(S_h),  O_h = P_h V_h;
//   y = concat(O_h) W_o + b_o.
// The residual connection and LayerNorm live in EncoderLayer. The backward
// pass is explicit and finite-difference-checked in the tests.
#pragma once

#include <vector>

#include "bert/config.h"
#include "tensor/layers.h"

namespace rebert::bert {

class MultiHeadSelfAttention {
 public:
  MultiHeadSelfAttention() = default;
  MultiHeadSelfAttention(const std::string& name, const BertConfig& config,
                         util::Rng& rng);

  struct Cache {
    tensor::Linear::Cache q_cache, k_cache, v_cache, out_cache;
    tensor::Tensor q, k, v;                 // [n, H]
    std::vector<tensor::Tensor> probs;      // per head, [n, n]
    tensor::Tensor concat;                  // [n, H] head outputs
  };

  /// x: [n, hidden] -> [n, hidden]. `valid_len` masks padding: when > 0,
  /// attention scores onto positions >= valid_len are forced to -inf so
  /// [PAD] tokens (§II-A-3 pads pair sequences to a uniform length) can
  /// never influence real positions. 0 means "no padding".
  /// const: reads only the projection parameters, so concurrent forward
  /// calls on one instance are safe (each caller owns its Cache).
  tensor::Tensor forward(const tensor::Tensor& x, Cache* cache,
                         int valid_len = 0) const;

  /// Returns dx; accumulates all projection gradients.
  tensor::Tensor backward(const tensor::Tensor& dy, const Cache& cache);

  std::vector<tensor::Parameter*> parameters();

  int num_heads() const { return num_heads_; }

 private:
  int num_heads_ = 1;
  int head_dim_ = 1;
  tensor::Linear query_, key_, value_, output_;
};

/// Copy columns [c0, c1) of a matrix into a new matrix.
tensor::Tensor slice_cols(const tensor::Tensor& x, int c0, int c1);
/// Add `src` into columns [c0, ...) of `dst`.
void add_into_cols(tensor::Tensor* dst, const tensor::Tensor& src, int c0);

}  // namespace rebert::bert
