// Combined input embedding (§II-B).
//
// ReBERT sums three embeddings per token:
//   1. word embedding      — learned table over the gate-token vocabulary,
//   2. sequential positional embedding — learned table over positions,
//   3. tree-based positional embedding — the token's position in the bit's
//      binary tree, encoded as the root-to-node path code of §II-B-3
//      (root = all zeros; each child right-shifts the parent code by two and
//      prepends '10' for a left child, '01' for a right child), then
//      projected into the hidden space by a learned linear map.
// The sum is layer-normalized and dropout is applied, as in standard BERT.
#pragma once

#include <vector>

#include "bert/config.h"
#include "tensor/layers.h"

namespace rebert::bert {

/// One tokenized pair sequence ready for the model. Produced by
/// rebert::TokenEncoder; defined here so the model layer has no dependency
/// on the netlist pipeline.
struct EncodedSequence {
  std::vector<int> token_ids;       // length n, values < vocab_size
  std::vector<int> position_ids;    // length n, values < max_seq_len
  tensor::Tensor tree_codes;        // [n, tree_code_dim], entries in {0,1}
  /// Number of real (non-[PAD]) leading tokens; 0 means "no padding".
  /// Attention masks positions >= valid_len at every layer.
  int valid_len = 0;

  int length() const { return static_cast<int>(token_ids.size()); }
};

class BertEmbeddings {
 public:
  BertEmbeddings() = default;
  BertEmbeddings(const BertConfig& config, util::Rng& rng);

  struct Cache {
    tensor::Embedding::Cache word;
    tensor::Embedding::Cache position;
    tensor::Linear::Cache tree;
    tensor::LayerNorm::Cache norm;
    tensor::Dropout::Cache dropout;
    bool used_tree = false;
  };

  /// -> [n, hidden]. const: tables are only read; `rng` is consumed only
  /// when `training` (dropout), so concurrent eval forwards are safe.
  tensor::Tensor forward(const EncodedSequence& input, bool training,
                         util::Rng& rng, Cache* cache) const;

  /// Accumulates all embedding gradients (no input gradient: ids are
  /// discrete and tree codes are fixed features).
  void backward(const tensor::Tensor& dy, const Cache& cache);

  std::vector<tensor::Parameter*> parameters();

 private:
  BertConfig config_;
  tensor::Embedding word_;
  tensor::Embedding position_;
  tensor::Linear tree_projection_;
  tensor::LayerNorm norm_;
  tensor::Dropout dropout_{0.0f};
};

}  // namespace rebert::bert
