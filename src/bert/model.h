// BertPairClassifier: the full ReBERT model (Fig. 1 + Fig. 4).
//
// embeddings -> N encoder layers -> pooler (first token, linear + tanh) ->
// classifier head (2 classes: "same word" / "different word"). The
// probability of class 1 is the pairwise score used by the word-generation
// stage.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bert/embedding.h"
#include "bert/encoder_layer.h"

namespace rebert::bert {

/// Cold-path static check of the whole model graph: verifies shape
/// compatibility end-to-end (embedding -> attention heads -> FFN -> pooler
/// -> classifier) and every parameter's shape against the configuration.
/// Run once at model build time by the BertPairClassifier constructor;
/// throws util::CheckError listing *all* inconsistencies. This replaces
/// per-forward-call shape checking on the hot path (see tensor/graphcheck.h).
void check_model_graph(const BertConfig& config,
                       const std::vector<tensor::Parameter*>& parameters);

class BertPairClassifier {
 public:
  explicit BertPairClassifier(const BertConfig& config);

  // parameters() hands out pointers into the member layers; copying or
  // moving would leave them dangling.
  BertPairClassifier(const BertPairClassifier&) = delete;
  BertPairClassifier& operator=(const BertPairClassifier&) = delete;

  const BertConfig& config() const { return config_; }

  /// Probability that the pair belongs to the same word (class 1);
  /// inference mode (no dropout).
  ///
  /// Thread safety: const inference reads parameters only (dropout is the
  /// identity in eval mode and its RNG is never touched), so any number of
  /// threads may score pairs against one shared model snapshot
  /// concurrently. Training methods are NOT concurrency-safe and must not
  /// overlap with inference.
  double predict_same_word_probability(const EncodedSequence& input) const;

  /// Batch-forward entry point: scores a micro-batch of encoded pair
  /// sequences (one forward each — sequences differ in length, so there is
  /// no cross-sequence tensor to fuse). This is the unit of work the serve
  /// engine and the parallel scorer fan out across runtime::ThreadPool
  /// workers; keeping the batch walk inside the model lets future backends
  /// fuse it for real without touching callers.
  std::vector<double> predict_same_word_probabilities(
      const std::vector<const EncodedSequence*>& batch) const;

  /// Training-mode forward + backward for one example. Returns the loss;
  /// accumulates gradients on all parameters.
  double train_step_accumulate(const EncodedSequence& input, int label);

  /// Loss without gradient accumulation (for eval).
  double eval_loss(const EncodedSequence& input, int label) const;

  /// All trainable parameters in a stable order.
  const std::vector<tensor::Parameter*>& parameters();

  std::int64_t num_parameters();

  void save(const std::string& path);
  void load(const std::string& path);

  /// RNG used for dropout; exposed so training runs are reproducible.
  util::Rng& dropout_rng() { return dropout_rng_; }

 private:
  struct ForwardCache;
  /// logits [1, num_classes]; fills cache when training. `dropout_rng`
  /// null means inference mode (no dropout, no RNG consumption — what
  /// makes const concurrent forwards sound).
  tensor::Tensor forward(const EncodedSequence& input,
                         util::Rng* dropout_rng, ForwardCache* cache) const;
  void backward(const tensor::Tensor& d_logits, const ForwardCache& cache);

  BertConfig config_;
  util::Rng init_rng_;
  util::Rng dropout_rng_;
  BertEmbeddings embeddings_;
  std::vector<EncoderLayer> layers_;
  tensor::Linear pooler_;
  tensor::Linear classifier_;
  std::vector<tensor::Parameter*> parameter_list_;
};

}  // namespace rebert::bert
