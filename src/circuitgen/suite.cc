#include "circuitgen/suite.h"

#include <algorithm>
#include <cmath>

#include "nl/decompose.h"
#include "nl/lint.h"
#include "util/check.h"

namespace rebert::gen {

namespace {

struct SuiteEntry {
  const char* name;
  int ffs;    // Table I "#FFs"
  int words;  // Table I "#Words" (estimated where the scan is unreadable)
};

// FF counts follow Table I exactly; word counts use Table I where legible
// (b03: 7, b11: 5, b17: 98) and plausible register-file-sized estimates
// elsewhere.
constexpr SuiteEntry kSuite[] = {
    {"b03", 30, 7},    {"b04", 66, 8},    {"b05", 34, 6},
    {"b07", 49, 7},    {"b08", 21, 5},    {"b11", 31, 5},
    {"b12", 121, 15},  {"b13", 53, 10},   {"b14", 449, 30},
    {"b15", 245, 24},  {"b17", 1415, 98}, {"b18", 3320, 160},
};

std::uint64_t name_seed(const std::string& name) {
  // Stable per-benchmark seed derived from the name.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

CircuitSpec make_spec(const std::string& name, int target_ffs,
                      int target_words, int glue_gates, std::uint64_t seed) {
  REBERT_CHECK_MSG(target_words >= 1, "need at least one word");
  REBERT_CHECK_MSG(target_ffs >= target_words,
                   "fewer flip-flops than words");
  CircuitSpec spec;
  spec.name = name;
  spec.glue_gates = glue_gates;
  spec.seed = seed;

  // Roughly one word in ten is a 1-bit status flag, as in control-heavy
  // designs; the rest are multi-bit datapath/state words.
  int num_flags = std::max(0, target_words / 10);
  // Flags only make sense if enough FF budget remains for the real words.
  while (num_flags > 0 && target_ffs - num_flags < (target_words - num_flags))
    --num_flags;
  const int num_words = target_words - num_flags;
  const int ff_budget = target_ffs - num_flags;

  const int base_width = ff_budget / num_words;
  int remainder = ff_budget % num_words;

  // First six types match the classic datapath mix (so the small Table I
  // circuits are dominated by them); the exotic sequential idioms appear
  // from the seventh word onward, i.e. only in the larger benchmarks.
  const BlockType kCycle[] = {
      BlockType::kEnableReg, BlockType::kCounter, BlockType::kAccumulator,
      BlockType::kShiftReg,  BlockType::kMuxReg,  BlockType::kFsm,
      BlockType::kLfsr,      BlockType::kGrayCounter,
      BlockType::kJohnsonCounter, BlockType::kOneHotFsm};
  constexpr int kCycleSize = static_cast<int>(std::size(kCycle));
  for (int w = 0; w < num_words; ++w) {
    BlockSpec block;
    block.type = kCycle[w % kCycleSize];
    block.width = base_width + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    spec.blocks.push_back(block);
  }
  for (int f = 0; f < num_flags; ++f) {
    BlockSpec block;
    block.type = (f % 2 == 0) ? BlockType::kCompareFlag
                              : BlockType::kParityFlag;
    block.width = 1;
    spec.blocks.push_back(block);
  }
  return spec;
}

GeneratedCircuit generate_circuit(const CircuitSpec& spec, bool lint) {
  nl::Netlist netlist(spec.name);
  nl::WordMap words;
  util::Rng rng(spec.seed);
  BlockBuilder builder(&netlist, &words, &rng);

  int counter = 0;
  for (const BlockSpec& block : spec.blocks) {
    const std::string prefix =
        std::string(block_type_name(block.type)) + std::to_string(counter++);
    builder.build(block, prefix);
  }
  builder.add_glue(spec.glue_gates);

  // Keep every register observable: mark each word's last bit as a primary
  // output (mirrors real designs where register contents reach the pins).
  for (const auto& [word_name, bit_names] : words.words()) {
    auto id = netlist.find(bit_names.back());
    REBERT_CHECK(id.has_value());
    netlist.mark_output(*id);
  }

  GeneratedCircuit out{nl::decompose_to_2input(netlist), std::move(words)};
  out.netlist.validate();
  if (lint) {
    nl::LintOptions lint_options;
    lint_options.words = &out.words;
    const nl::LintReport report = nl::lint_netlist(out.netlist, lint_options);
    REBERT_CHECK_MSG(report.clean(), "generated circuit '"
                                         << spec.name << "' failed lint:\n"
                                         << report.to_text());
  }
  return out;
}

std::vector<CircuitSpec> itc99_suite_specs(double scale) {
  REBERT_CHECK_MSG(scale > 0.0 && scale <= 1.0,
                   "scale must be in (0, 1], got " << scale);
  std::vector<CircuitSpec> specs;
  specs.reserve(std::size(kSuite));
  for (const SuiteEntry& entry : kSuite) {
    const int words =
        std::max(2, static_cast<int>(std::lround(entry.words * scale)));
    const int ffs = std::max(
        words, static_cast<int>(std::lround(entry.ffs * scale)));
    const int glue = std::max(8, ffs);
    specs.push_back(
        make_spec(entry.name, ffs, words, glue, name_seed(entry.name)));
  }
  return specs;
}

GeneratedCircuit generate_benchmark(const std::string& name, double scale,
                                    bool lint) {
  for (const CircuitSpec& spec : itc99_suite_specs(scale))
    if (spec.name == name) return generate_circuit(spec, lint);
  REBERT_CHECK_MSG(false, "unknown benchmark '" << name << "'");
}

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const SuiteEntry& entry : kSuite) out.emplace_back(entry.name);
    return out;
  }();
  return names;
}

}  // namespace rebert::gen
