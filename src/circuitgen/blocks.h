// Word-structured circuit block generators.
//
// The ITC'99 netlists the paper evaluates on are not redistributable with
// word-level ground truth, so the reproduction generates its own benchmark
// circuits out of the same ingredients RTL synthesis produces: registers
// with enables, counters, accumulators (ripple adders), shift registers,
// muxed datapaths, FSM control logic, and 1-bit status flags. Each block
// contributes one word (or a 1-bit word for flags) with exact ground truth.
//
// Bits inside a word get structurally similar fan-in cones (same local
// template instantiated per bit position) while different blocks produce
// different templates — the same regularity/diversity trade-off the paper's
// methods exploit. Blocks draw operands from a shared signal pool so the
// circuit is connected like a real design rather than a disjoint union.
#pragma once

#include <string>
#include <vector>

#include "nl/netlist.h"
#include "nl/words.h"
#include "util/rng.h"

namespace rebert::gen {

enum class BlockType {
  kEnableReg,      // q <= en ? d : q
  kCounter,        // q <= q + 1 when en
  kAccumulator,    // q <= q + x (ripple-carry)
  kShiftReg,       // q <= load ? x : {q[w-2:0], serial_in}
  kMuxReg,         // q <= sel ? b : a
  kFsm,            // state register with random 2-level next-state logic
  kLfsr,           // XNOR-feedback Fibonacci LFSR (self-starting from 0)
  kGrayCounter,    // Gray-coded counter (gray -> binary -> +1 -> gray)
  kJohnsonCounter, // twisted-ring counter: q0 <= NOT(q[w-1]), qi <= q[i-1]
  kOneHotFsm,      // self-correcting one-hot ring with advance enable
  kCompareFlag,    // 1-bit word: q <= (a == b) over two pool words
  kParityFlag,     // 1-bit word: q <= parity of a pool word
};

const char* block_type_name(BlockType type);

struct BlockSpec {
  BlockType type;
  int width = 8;  // number of bits in the word (1 for flags)
};

/// Mutable context threaded through block builders.
class BlockBuilder {
 public:
  BlockBuilder(nl::Netlist* netlist, nl::WordMap* words, util::Rng* rng);

  /// Instantiate one block; DFF names are "<prefix>_<i>".
  void build(const BlockSpec& spec, const std::string& prefix);

  /// Random combinational glue gates over existing nets (marked as outputs
  /// so they stay observable; they never drive DFFs and thus never perturb
  /// the word ground truth).
  void add_glue(int num_gates);

  /// Nets usable as data operands (PIs + register outputs + glue).
  const std::vector<nl::GateId>& data_pool() const { return data_pool_; }

 private:
  nl::GateId fresh_input(const std::string& hint);
  nl::GateId pick_data_net(const std::string& input_hint);
  nl::GateId pick_control_net(const std::string& input_hint);
  /// Registers `width` operand nets (random mix of pool nets and new PIs).
  std::vector<nl::GateId> operand_bus(int width, const std::string& hint);

  void build_enable_reg(const BlockSpec& spec, const std::string& prefix);
  void build_counter(const BlockSpec& spec, const std::string& prefix);
  void build_accumulator(const BlockSpec& spec, const std::string& prefix);
  void build_shift_reg(const BlockSpec& spec, const std::string& prefix);
  void build_mux_reg(const BlockSpec& spec, const std::string& prefix);
  void build_fsm(const BlockSpec& spec, const std::string& prefix);
  void build_lfsr(const BlockSpec& spec, const std::string& prefix);
  void build_gray_counter(const BlockSpec& spec, const std::string& prefix);
  void build_johnson_counter(const BlockSpec& spec,
                             const std::string& prefix);
  void build_one_hot_fsm(const BlockSpec& spec, const std::string& prefix);
  void build_compare_flag(const std::string& prefix);
  void build_parity_flag(const std::string& prefix);

  void register_word(const std::string& prefix,
                     const std::vector<nl::GateId>& dffs);

  nl::Netlist* netlist_;
  nl::WordMap* words_;
  util::Rng* rng_;
  std::vector<nl::GateId> data_pool_;
  std::vector<nl::GateId> control_pool_;
  std::vector<std::vector<nl::GateId>> word_buses_;  // for flag blocks
  int input_counter_ = 0;
};

}  // namespace rebert::gen
