// ITC'99-like benchmark suite (Table I).
//
// Each suite entry reproduces the *role* of one ITC'99 circuit: the same
// flip-flop count and word count as Table I, built from the block library
// in blocks.h and lowered to 2-input gates. Gate counts emerge from the
// block mix and differ from the paper's synthesized numbers (documented in
// EXPERIMENTS.md); everything the methods consume — bit cones, word ground
// truth, corruption behaviour — is exercised identically.
//
// A scale factor < 1 shrinks every circuit proportionally (minimum one word)
// so the full LOO-CV training sweep stays CPU-friendly; scale = 1 is the
// paper-sized suite.
#pragma once

#include <string>
#include <vector>

#include "circuitgen/blocks.h"
#include "nl/netlist.h"
#include "nl/words.h"

namespace rebert::gen {

struct CircuitSpec {
  std::string name;
  std::vector<BlockSpec> blocks;
  int glue_gates = 0;
  std::uint64_t seed = 0;
};

struct GeneratedCircuit {
  nl::Netlist netlist;  // 2-input decomposed, validated
  nl::WordMap words;    // ground truth over DFF names
};

/// Derive a block mix hitting exactly `target_ffs` flip-flops in
/// `target_words` words (>= 1 each). Deterministic.
CircuitSpec make_spec(const std::string& name, int target_ffs,
                      int target_words, int glue_gates, std::uint64_t seed);

/// Instantiate a spec into a gate-level netlist plus ground truth. By
/// default the result is linted (nl/lint.h) against the ground-truth words
/// and generation fails on any error-severity diagnostic; pass lint = false
/// to opt out (e.g. when deliberately producing defective circuits).
GeneratedCircuit generate_circuit(const CircuitSpec& spec, bool lint = true);

/// Specs for the 12 benchmarks of Table I at the given scale.
std::vector<CircuitSpec> itc99_suite_specs(double scale = 1.0);

/// Convenience: generate one benchmark by name ("b03" ... "b18").
/// Throws util::CheckError for unknown names.
GeneratedCircuit generate_benchmark(const std::string& name,
                                    double scale = 1.0, bool lint = true);

/// The 12 benchmark names in Table I order.
const std::vector<std::string>& benchmark_names();

}  // namespace rebert::gen
