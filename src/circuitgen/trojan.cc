#include "circuitgen/trojan.h"

#include <algorithm>

#include "util/check.h"

namespace rebert::gen {

using nl::Gate;
using nl::GateId;
using nl::GateType;

nl::Netlist insert_trojan(const nl::Netlist& input,
                          const TrojanOptions& options, TrojanInfo* info) {
  REBERT_CHECK(options.trigger_width >= 1);
  REBERT_CHECK(options.counter_bits >= 1 && options.counter_bits <= 8);
  nl::Netlist out = input;
  util::Rng rng(options.seed);
  TrojanInfo local;

  // Candidate nets: combinational gates (stable names, internal signals a
  // real attacker would tap).
  std::vector<GateId> candidates;
  for (GateId id = 0; id < out.num_gates(); ++id)
    if (nl::is_combinational(out.gate(id).type)) candidates.push_back(id);
  REBERT_CHECK_MSG(static_cast<int>(candidates.size()) >=
                       options.trigger_width + 2,
                   "netlist too small to host a Trojan");
  rng.shuffle(candidates);

  // Trigger: AND over rarely-correlated nets.
  std::vector<GateId> trigger_inputs(
      candidates.begin(), candidates.begin() + options.trigger_width);
  for (GateId id : trigger_inputs)
    local.trigger_nets.push_back(out.gate(id).name);
  GateId trigger = trigger_inputs[0];
  for (std::size_t i = 1; i < trigger_inputs.size(); ++i)
    trigger = out.add_gate(GateType::kAnd, {trigger, trigger_inputs[i]},
                           options.prefix + "_trig" + std::to_string(i));

  // Payload counter: counts trigger events, saturating at all-ones, at
  // which point the Trojan arms permanently.
  std::vector<GateId> counter;
  for (int i = 0; i < options.counter_bits; ++i) {
    const GateId self = static_cast<GateId>(out.num_gates());
    counter.push_back(out.add_dff(
        self, options.prefix + "_cnt" + std::to_string(i)));
    local.trojan_ffs.push_back(out.gate(counter.back()).name);
  }
  // armed flag: sticky once the counter saturates.
  GateId saturated = counter[0];
  for (std::size_t i = 1; i < counter.size(); ++i)
    saturated = out.add_gate(GateType::kAnd, {saturated, counter[i]},
                             options.prefix + "_sat" + std::to_string(i));
  const GateId armed_self = static_cast<GateId>(out.num_gates());
  const GateId armed = out.add_dff(armed_self, options.prefix + "_armed");
  local.trojan_ffs.push_back(out.gate(armed).name);
  const GateId armed_next = out.add_gate(GateType::kOr, {armed, saturated},
                                         options.prefix + "_arm_next");
  out.replace_gate(armed, GateType::kDff, {armed_next});

  // Counter increments on trigger unless already armed.
  const GateId not_armed =
      out.add_gate(GateType::kNot, {armed}, options.prefix + "_live");
  GateId carry = out.add_gate(GateType::kAnd, {trigger, not_armed},
                              options.prefix + "_step");
  for (std::size_t i = 0; i < counter.size(); ++i) {
    const GateId d =
        out.add_gate(GateType::kXor, {counter[i], carry},
                     options.prefix + "_d" + std::to_string(i));
    if (i + 1 < counter.size())
      carry = out.add_gate(GateType::kAnd, {carry, counter[i]},
                           options.prefix + "_c" + std::to_string(i));
    out.replace_gate(counter[i], GateType::kDff, {d});
  }

  // Victim: a combinational net not feeding the trigger, with at least one
  // consumer. Rewire its consumers to the XOR tap.
  GateId victim = nl::kNoGate;
  const std::vector<int> fanout = out.fanout_counts();
  for (std::size_t i = static_cast<std::size_t>(options.trigger_width);
       i < candidates.size(); ++i) {
    if (fanout[static_cast<std::size_t>(candidates[i])] > 0) {
      victim = candidates[i];
      break;
    }
  }
  REBERT_CHECK_MSG(victim != nl::kNoGate, "no victim net with fanout");
  local.victim_net = out.gate(victim).name;

  const GateId tap = out.add_gate(GateType::kXor, {victim, armed},
                                  options.prefix + "_tap");
  local.corrupted_net = out.gate(tap).name;
  // Move every pre-existing consumer of the victim onto the tap (the tap
  // itself and the trigger chain keep reading the genuine net).
  for (GateId id = 0; id < out.num_gates(); ++id) {
    if (id == tap) continue;
    const Gate& g = out.gate(id);
    if (g.name.rfind(options.prefix + "_", 0) == 0) continue;  // our logic
    bool rewire = false;
    std::vector<GateId> fanins = g.fanins;
    for (GateId& f : fanins)
      if (f == victim) {
        f = tap;
        rewire = true;
      }
    if (rewire) {
      out.replace_gate(id, g.type, std::move(fanins));
      ++local.rewired_consumers;
    }
  }

  out.validate();
  if (info) *info = local;
  return out;
}

}  // namespace rebert::gen
