// Hardware-Trojan insertion (the paper's §I threat model).
//
// Inserts a classic combinational-trigger / sequential-payload Trojan:
//   * trigger  — AND over k rarely-simultaneous existing nets,
//   * payload  — a small counter of trigger events plus an armed flag,
//   * effect   — once armed, one victim net is XOR-flipped.
// The Trojan is dormant (functionally invisible) until the trigger fires
// `arm_count` times, mimicking the stealthy insertions [1]-[4] the paper
// cites. Word-recovery audits can surface it: the Trojan's flip-flops are
// structural strangers that join no legitimate word and score low cohesion
// (see examples/trojan_hunt.cpp).
#pragma once

#include <string>
#include <vector>

#include "nl/netlist.h"
#include "util/rng.h"

namespace rebert::gen {

struct TrojanOptions {
  int trigger_width = 4;   // nets ANDed into the trigger
  int counter_bits = 2;    // trigger events before arming: 2^bits - 1
  std::uint64_t seed = 1337;
  std::string prefix = "troj";  // names of inserted gates/FFs
};

struct TrojanInfo {
  std::vector<std::string> trigger_nets;  // existing nets used as trigger
  std::vector<std::string> trojan_ffs;    // inserted flip-flops
  std::string victim_net;                 // net whose fanout is corrupted
  std::string corrupted_net;              // the XOR tap carrying the flip
  int rewired_consumers = 0;              // fanout edges moved to the tap
};

/// Insert a Trojan into a copy of `input`. Requires at least
/// trigger_width + 2 combinational nets. The victim keeps driving its own
/// net; consumers are rewired to the XOR tap.
nl::Netlist insert_trojan(const nl::Netlist& input,
                          const TrojanOptions& options, TrojanInfo* info);

}  // namespace rebert::gen
