#include "circuitgen/blocks.h"

#include <algorithm>

#include "util/check.h"

namespace rebert::gen {

using nl::GateId;
using nl::GateType;

const char* block_type_name(BlockType type) {
  switch (type) {
    case BlockType::kEnableReg: return "enreg";
    case BlockType::kCounter: return "cnt";
    case BlockType::kAccumulator: return "acc";
    case BlockType::kShiftReg: return "shift";
    case BlockType::kMuxReg: return "muxreg";
    case BlockType::kFsm: return "fsm";
    case BlockType::kLfsr: return "lfsr";
    case BlockType::kGrayCounter: return "gray";
    case BlockType::kJohnsonCounter: return "jc";
    case BlockType::kOneHotFsm: return "onehot";
    case BlockType::kCompareFlag: return "cmp";
    case BlockType::kParityFlag: return "par";
  }
  return "?";
}

BlockBuilder::BlockBuilder(nl::Netlist* netlist, nl::WordMap* words,
                           util::Rng* rng)
    : netlist_(netlist), words_(words), rng_(rng) {
  REBERT_CHECK(netlist && words && rng);
}

GateId BlockBuilder::fresh_input(const std::string& hint) {
  const GateId id = netlist_->add_input(
      "pi_" + hint + "_" + std::to_string(input_counter_++));
  return id;
}

GateId BlockBuilder::pick_data_net(const std::string& input_hint) {
  // Prefer reusing existing signals (connected circuits); sometimes mint a
  // new primary input to keep the interface realistic.
  if (!data_pool_.empty() && rng_->bernoulli(0.7)) {
    const std::size_t i = static_cast<std::size_t>(
        rng_->uniform_u64(data_pool_.size()));
    return data_pool_[i];
  }
  const GateId id = fresh_input(input_hint);
  data_pool_.push_back(id);
  return id;
}

GateId BlockBuilder::pick_control_net(const std::string& input_hint) {
  if (!control_pool_.empty() && rng_->bernoulli(0.5)) {
    const std::size_t i = static_cast<std::size_t>(
        rng_->uniform_u64(control_pool_.size()));
    return control_pool_[i];
  }
  const GateId id = fresh_input(input_hint);
  control_pool_.push_back(id);
  return id;
}

std::vector<GateId> BlockBuilder::operand_bus(int width,
                                              const std::string& hint) {
  // Buses are whole signals: either an existing word's register outputs
  // (truncated / padded with fresh PIs) or a fresh primary-input bus with
  // distinct nets — never the same net repeated within one bus.
  std::vector<GateId> bus;
  bus.reserve(width);
  if (!word_buses_.empty() && rng_->bernoulli(0.6)) {
    const auto& source = word_buses_[static_cast<std::size_t>(
        rng_->uniform_u64(word_buses_.size()))];
    for (int i = 0; i < width && i < static_cast<int>(source.size()); ++i)
      bus.push_back(source[i]);
  }
  while (static_cast<int>(bus.size()) < width) {
    const GateId id = fresh_input(hint);
    data_pool_.push_back(id);
    bus.push_back(id);
  }
  return bus;
}

void BlockBuilder::register_word(const std::string& prefix,
                                 const std::vector<GateId>& dffs) {
  std::vector<std::string> names;
  names.reserve(dffs.size());
  std::vector<GateId> bus;
  for (GateId id : dffs) {
    names.push_back(netlist_->gate(id).name);
    bus.push_back(id);
    data_pool_.push_back(id);  // register outputs feed later blocks
  }
  words_->add_word(prefix, names);
  word_buses_.push_back(std::move(bus));
}

void BlockBuilder::build(const BlockSpec& spec, const std::string& prefix) {
  REBERT_CHECK_MSG(spec.width >= 1, "block width must be >= 1");
  switch (spec.type) {
    case BlockType::kEnableReg: return build_enable_reg(spec, prefix);
    case BlockType::kCounter: return build_counter(spec, prefix);
    case BlockType::kAccumulator: return build_accumulator(spec, prefix);
    case BlockType::kShiftReg: return build_shift_reg(spec, prefix);
    case BlockType::kMuxReg: return build_mux_reg(spec, prefix);
    case BlockType::kFsm: return build_fsm(spec, prefix);
    case BlockType::kLfsr: return build_lfsr(spec, prefix);
    case BlockType::kGrayCounter: return build_gray_counter(spec, prefix);
    case BlockType::kJohnsonCounter:
      return build_johnson_counter(spec, prefix);
    case BlockType::kOneHotFsm: return build_one_hot_fsm(spec, prefix);
    case BlockType::kCompareFlag: return build_compare_flag(prefix);
    case BlockType::kParityFlag: return build_parity_flag(prefix);
  }
}

// q_i <= MUX(en, q_i, d_i). DFF self-feedback via the mux keep-path.
void BlockBuilder::build_enable_reg(const BlockSpec& spec,
                                    const std::string& prefix) {
  const GateId en = pick_control_net(prefix + "_en");
  const std::vector<GateId> data = operand_bus(spec.width, prefix + "_d");
  std::vector<GateId> dffs;
  dffs.reserve(spec.width);
  for (int i = 0; i < spec.width; ++i) {
    // Create the DFF first (self placeholder), then the mux referencing it.
    const GateId self = static_cast<GateId>(netlist_->num_gates());
    const GateId q =
        netlist_->add_dff(self, prefix + "_" + std::to_string(i));
    const GateId mux = netlist_->add_gate(GateType::kMux, {en, q, data[i]});
    netlist_->replace_gate(q, GateType::kDff, {mux});
    dffs.push_back(q);
  }
  register_word(prefix, dffs);
}

// Binary up-counter with enable: d_i = q_i XOR c_i, c_0 = en,
// c_{i+1} = c_i AND q_i.
void BlockBuilder::build_counter(const BlockSpec& spec,
                                 const std::string& prefix) {
  const GateId en = pick_control_net(prefix + "_en");
  std::vector<GateId> dffs;
  dffs.reserve(spec.width);
  // Create all DFFs first so the carry chain can reference them.
  for (int i = 0; i < spec.width; ++i) {
    const GateId self = static_cast<GateId>(netlist_->num_gates());
    dffs.push_back(
        netlist_->add_dff(self, prefix + "_" + std::to_string(i)));
  }
  GateId carry = en;
  for (int i = 0; i < spec.width; ++i) {
    const GateId d = netlist_->add_gate(GateType::kXor, {dffs[i], carry});
    netlist_->replace_gate(dffs[i], GateType::kDff, {d});
    if (i + 1 < spec.width)
      carry = netlist_->add_gate(GateType::kAnd, {carry, dffs[i]});
  }
  register_word(prefix, dffs);
}

// q <= q + x: ripple-carry adder. s_i = q_i ^ x_i ^ c_i,
// c_{i+1} = (q_i & x_i) | (c_i & (q_i ^ x_i)).
void BlockBuilder::build_accumulator(const BlockSpec& spec,
                                     const std::string& prefix) {
  const std::vector<GateId> x = operand_bus(spec.width, prefix + "_x");
  std::vector<GateId> dffs;
  dffs.reserve(spec.width);
  for (int i = 0; i < spec.width; ++i) {
    const GateId self = static_cast<GateId>(netlist_->num_gates());
    dffs.push_back(
        netlist_->add_dff(self, prefix + "_" + std::to_string(i)));
  }
  GateId carry = nl::kNoGate;
  for (int i = 0; i < spec.width; ++i) {
    const GateId axb = netlist_->add_gate(GateType::kXor, {dffs[i], x[i]});
    GateId sum;
    GateId next_carry;
    if (carry == nl::kNoGate) {
      sum = axb;
      next_carry = netlist_->add_gate(GateType::kAnd, {dffs[i], x[i]});
    } else {
      sum = netlist_->add_gate(GateType::kXor, {axb, carry});
      const GateId g = netlist_->add_gate(GateType::kAnd, {dffs[i], x[i]});
      const GateId p = netlist_->add_gate(GateType::kAnd, {carry, axb});
      next_carry = netlist_->add_gate(GateType::kOr, {g, p});
    }
    netlist_->replace_gate(dffs[i], GateType::kDff, {sum});
    carry = next_carry;
  }
  register_word(prefix, dffs);
}

// Shift register with parallel load: d_0 = MUX(load, serial, x_0),
// d_i = MUX(load, q_{i-1}, x_i).
void BlockBuilder::build_shift_reg(const BlockSpec& spec,
                                   const std::string& prefix) {
  const GateId load = pick_control_net(prefix + "_load");
  const GateId serial = pick_data_net(prefix + "_si");
  const std::vector<GateId> x = operand_bus(spec.width, prefix + "_x");
  std::vector<GateId> dffs;
  dffs.reserve(spec.width);
  for (int i = 0; i < spec.width; ++i) {
    const GateId self = static_cast<GateId>(netlist_->num_gates());
    dffs.push_back(
        netlist_->add_dff(self, prefix + "_" + std::to_string(i)));
  }
  for (int i = 0; i < spec.width; ++i) {
    const GateId shift_src = (i == 0) ? serial : dffs[i - 1];
    const GateId d =
        netlist_->add_gate(GateType::kMux, {load, shift_src, x[i]});
    netlist_->replace_gate(dffs[i], GateType::kDff, {d});
  }
  register_word(prefix, dffs);
}

// q_i <= MUX(sel, a_i, b_i).
void BlockBuilder::build_mux_reg(const BlockSpec& spec,
                                 const std::string& prefix) {
  const GateId sel = pick_control_net(prefix + "_sel");
  const std::vector<GateId> a = operand_bus(spec.width, prefix + "_a");
  const std::vector<GateId> b = operand_bus(spec.width, prefix + "_b");
  std::vector<GateId> dffs;
  dffs.reserve(spec.width);
  for (int i = 0; i < spec.width; ++i) {
    const GateId d = netlist_->add_gate(GateType::kMux, {sel, a[i], b[i]});
    dffs.push_back(netlist_->add_dff(d, prefix + "_" + std::to_string(i)));
  }
  register_word(prefix, dffs);
}

// State register with random two-level next-state logic over the state bits
// and a couple of control inputs — the "control logic" case where cones are
// irregular and word bits are *not* template copies of each other.
void BlockBuilder::build_fsm(const BlockSpec& spec,
                             const std::string& prefix) {
  const GateId c0 = pick_control_net(prefix + "_c0");
  const GateId c1 = pick_control_net(prefix + "_c1");
  std::vector<GateId> dffs;
  dffs.reserve(spec.width);
  for (int i = 0; i < spec.width; ++i) {
    const GateId self = static_cast<GateId>(netlist_->num_gates());
    dffs.push_back(
        netlist_->add_dff(self, prefix + "_" + std::to_string(i)));
  }
  std::vector<GateId> literals = dffs;
  literals.push_back(c0);
  literals.push_back(c1);
  auto random_literal = [&] {
    const GateId raw = literals[static_cast<std::size_t>(
        rng_->uniform_u64(literals.size()))];
    if (rng_->bernoulli(0.4))
      return netlist_->add_gate(GateType::kNot, {raw});
    return raw;
  };
  const GateType kFirstLevel[] = {GateType::kAnd, GateType::kOr,
                                  GateType::kNand, GateType::kNor};
  const GateType kSecondLevel[] = {GateType::kOr, GateType::kAnd,
                                   GateType::kXor};
  for (int i = 0; i < spec.width; ++i) {
    const int terms = rng_->uniform_int(2, 3);
    std::vector<GateId> products;
    products.reserve(terms);
    for (int t = 0; t < terms; ++t) {
      const GateType op = kFirstLevel[rng_->uniform_int(0, 3)];
      products.push_back(
          netlist_->add_gate(op, {random_literal(), random_literal()}));
    }
    GateId acc = products[0];
    for (std::size_t t = 1; t < products.size(); ++t) {
      const GateType op = kSecondLevel[rng_->uniform_int(0, 2)];
      acc = netlist_->add_gate(op, {acc, products[t]});
    }
    netlist_->replace_gate(dffs[i], GateType::kDff, {acc});
  }
  register_word(prefix, dffs);
}

// Fibonacci LFSR with XNOR feedback (self-starting from the all-zero reset
// state; the lock-up state is all-ones instead): q0 <= XNOR(q[w-1], q[w-2])
// (or NOT(q0) for width 1... width >= 2 enforced by substituting a counter
// for degenerate widths), qi <= q[i-1].
void BlockBuilder::build_lfsr(const BlockSpec& spec,
                              const std::string& prefix) {
  if (spec.width < 2) return build_counter(spec, prefix);
  std::vector<GateId> dffs;
  dffs.reserve(spec.width);
  for (int i = 0; i < spec.width; ++i) {
    const GateId self = static_cast<GateId>(netlist_->num_gates());
    dffs.push_back(
        netlist_->add_dff(self, prefix + "_" + std::to_string(i)));
  }
  const GateId feedback = netlist_->add_gate(
      GateType::kXnor, {dffs[static_cast<std::size_t>(spec.width - 1)],
                        dffs[static_cast<std::size_t>(spec.width - 2)]});
  netlist_->replace_gate(dffs[0], GateType::kDff, {feedback});
  for (int i = 1; i < spec.width; ++i)
    netlist_->replace_gate(dffs[static_cast<std::size_t>(i)], GateType::kDff,
                           {dffs[static_cast<std::size_t>(i - 1)]});
  register_word(prefix, dffs);
}

// Gray-code counter: bin = gray2bin(q) (suffix XOR), bin' = bin + 1
// (ripple carry with enable), q' = bin2gray(bin').
void BlockBuilder::build_gray_counter(const BlockSpec& spec,
                                      const std::string& prefix) {
  if (spec.width < 2) return build_counter(spec, prefix);
  const GateId en = pick_control_net(prefix + "_en");
  const int w = spec.width;
  std::vector<GateId> dffs;
  dffs.reserve(w);
  for (int i = 0; i < w; ++i) {
    const GateId self = static_cast<GateId>(netlist_->num_gates());
    dffs.push_back(
        netlist_->add_dff(self, prefix + "_" + std::to_string(i)));
  }
  // gray -> binary: bin_i = q_i ^ q_{i+1} ^ ... ^ q_{w-1}.
  std::vector<GateId> bin(static_cast<std::size_t>(w));
  bin[static_cast<std::size_t>(w - 1)] = dffs[static_cast<std::size_t>(w - 1)];
  for (int i = w - 2; i >= 0; --i)
    bin[static_cast<std::size_t>(i)] = netlist_->add_gate(
        GateType::kXor, {dffs[static_cast<std::size_t>(i)],
                         bin[static_cast<std::size_t>(i + 1)]});
  // binary increment with enable.
  std::vector<GateId> next_bin(static_cast<std::size_t>(w));
  GateId carry = en;
  for (int i = 0; i < w; ++i) {
    next_bin[static_cast<std::size_t>(i)] = netlist_->add_gate(
        GateType::kXor, {bin[static_cast<std::size_t>(i)], carry});
    if (i + 1 < w)
      carry = netlist_->add_gate(
          GateType::kAnd, {carry, bin[static_cast<std::size_t>(i)]});
  }
  // binary -> gray: g_i = b_i ^ b_{i+1}; g_{w-1} = b_{w-1}.
  for (int i = 0; i < w; ++i) {
    const GateId g =
        (i == w - 1)
            ? next_bin[static_cast<std::size_t>(i)]
            : netlist_->add_gate(GateType::kXor,
                                 {next_bin[static_cast<std::size_t>(i)],
                                  next_bin[static_cast<std::size_t>(i + 1)]});
    netlist_->replace_gate(dffs[static_cast<std::size_t>(i)], GateType::kDff,
                           {g});
  }
  register_word(prefix, dffs);
}

// Johnson (twisted-ring) counter: q0 <= NOT(q[w-1]), qi <= q[i-1].
void BlockBuilder::build_johnson_counter(const BlockSpec& spec,
                                         const std::string& prefix) {
  std::vector<GateId> dffs;
  dffs.reserve(spec.width);
  for (int i = 0; i < spec.width; ++i) {
    const GateId self = static_cast<GateId>(netlist_->num_gates());
    dffs.push_back(
        netlist_->add_dff(self, prefix + "_" + std::to_string(i)));
  }
  const GateId twist = netlist_->add_gate(
      GateType::kNot, {dffs[static_cast<std::size_t>(spec.width - 1)]});
  netlist_->replace_gate(dffs[0], GateType::kDff, {twist});
  for (int i = 1; i < spec.width; ++i)
    netlist_->replace_gate(dffs[static_cast<std::size_t>(i)], GateType::kDff,
                           {dffs[static_cast<std::size_t>(i - 1)]});
  register_word(prefix, dffs);
}

// Self-correcting one-hot ring: advance when `go`, hold otherwise; if the
// state ever decays to all-zero (e.g. at reset) the zero-detector reseeds
// bit 0 — the standard safe one-hot FSM encoding.
void BlockBuilder::build_one_hot_fsm(const BlockSpec& spec,
                                     const std::string& prefix) {
  if (spec.width < 2) return build_fsm(spec, prefix);
  const GateId go = pick_control_net(prefix + "_go");
  const int w = spec.width;
  std::vector<GateId> dffs;
  dffs.reserve(w);
  for (int i = 0; i < w; ++i) {
    const GateId self = static_cast<GateId>(netlist_->num_gates());
    dffs.push_back(
        netlist_->add_dff(self, prefix + "_" + std::to_string(i)));
  }
  // zero detect: NOR tree over all state bits.
  GateId any = dffs[0];
  for (int i = 1; i < w; ++i)
    any = netlist_->add_gate(GateType::kOr,
                             {any, dffs[static_cast<std::size_t>(i)]});
  const GateId none = netlist_->add_gate(GateType::kNot, {any});
  const GateId hold = netlist_->add_gate(GateType::kNot, {go});
  for (int i = 0; i < w; ++i) {
    const GateId prev = dffs[static_cast<std::size_t>((i + w - 1) % w)];
    const GateId advance = netlist_->add_gate(GateType::kAnd, {go, prev});
    const GateId keep = netlist_->add_gate(
        GateType::kAnd, {hold, dffs[static_cast<std::size_t>(i)]});
    GateId d = netlist_->add_gate(GateType::kOr, {advance, keep});
    if (i == 0) d = netlist_->add_gate(GateType::kOr, {d, none});
    netlist_->replace_gate(dffs[static_cast<std::size_t>(i)], GateType::kDff,
                           {d});
  }
  register_word(prefix, dffs);
}

// flag <= (a == b): AND tree over per-bit XNORs of two existing words
// (or operand buses when no word exists yet).
void BlockBuilder::build_compare_flag(const std::string& prefix) {
  std::vector<GateId> a, b;
  if (word_buses_.size() >= 2 && rng_->bernoulli(0.8)) {
    const std::size_t i =
        static_cast<std::size_t>(rng_->uniform_u64(word_buses_.size()));
    std::size_t j =
        static_cast<std::size_t>(rng_->uniform_u64(word_buses_.size()));
    if (j == i) j = (j + 1) % word_buses_.size();
    const int w = static_cast<int>(
        std::min(word_buses_[i].size(), word_buses_[j].size()));
    a.assign(word_buses_[i].begin(), word_buses_[i].begin() + w);
    b.assign(word_buses_[j].begin(), word_buses_[j].begin() + w);
  } else {
    a = operand_bus(4, prefix + "_a");
    b = operand_bus(4, prefix + "_b");
  }
  std::vector<GateId> eq;
  eq.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    eq.push_back(netlist_->add_gate(GateType::kXnor, {a[i], b[i]}));
  GateId acc = eq[0];
  for (std::size_t i = 1; i < eq.size(); ++i)
    acc = netlist_->add_gate(GateType::kAnd, {acc, eq[i]});
  const GateId flag = netlist_->add_dff(acc, prefix + "_0");
  register_word(prefix, {flag});
}

// flag <= parity of an existing word (or of a fresh operand bus).
void BlockBuilder::build_parity_flag(const std::string& prefix) {
  std::vector<GateId> bus;
  if (!word_buses_.empty() && rng_->bernoulli(0.8)) {
    const std::size_t i =
        static_cast<std::size_t>(rng_->uniform_u64(word_buses_.size()));
    bus = word_buses_[i];
  } else {
    bus = operand_bus(4, prefix + "_x");
  }
  GateId acc = bus[0];
  for (std::size_t i = 1; i < bus.size(); ++i)
    acc = netlist_->add_gate(GateType::kXor, {acc, bus[i]});
  // A 1-bit bus would alias the flag to an existing word bit; isolate it.
  if (bus.size() == 1) acc = netlist_->add_gate(GateType::kBuf, {acc});
  const GateId flag = netlist_->add_dff(acc, prefix + "_0");
  register_word(prefix, {flag});
}

void BlockBuilder::add_glue(int num_gates) {
  REBERT_CHECK(num_gates >= 0);
  const GateType kGlueOps[] = {GateType::kAnd, GateType::kOr,
                               GateType::kNand, GateType::kNor,
                               GateType::kXor, GateType::kNot};
  std::vector<GateId> glue_nets;
  for (int g = 0; g < num_gates; ++g) {
    const GateType op = kGlueOps[rng_->uniform_int(0, 5)];
    auto pick = [&]() -> GateId {
      if (!glue_nets.empty() && rng_->bernoulli(0.4))
        return glue_nets[static_cast<std::size_t>(
            rng_->uniform_u64(glue_nets.size()))];
      return pick_data_net("glue");
    };
    GateId id;
    if (op == GateType::kNot) {
      id = netlist_->add_gate(op, {pick()});
    } else {
      id = netlist_->add_gate(op, {pick(), pick()});
    }
    glue_nets.push_back(id);
  }
  // Observable so the logic is not dead; glue never feeds DFFs.
  for (std::size_t i = 0; i < glue_nets.size(); i += 7)
    netlist_->mark_output(glue_nets[i]);
  if (!glue_nets.empty()) netlist_->mark_output(glue_nets.back());
}

}  // namespace rebert::gen
