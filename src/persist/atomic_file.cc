#include "persist/atomic_file.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/check.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace rebert::persist {

namespace {

std::string errno_text(int err) {
  return util::errno_string(err) + " (errno " + std::to_string(err) + ")";
}

/// Directory part of `path` ("." when there is no separator) — where the
/// temp file must live for rename() to stay atomic, and what gets fsynced
/// after the rename so the directory entry itself is durable.
std::string directory_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Unique-within-process temp name next to the destination. The pid keeps
/// concurrent processes apart; the counter keeps concurrent threads apart.
/// A crash leaves this file behind, and that is fine: nothing ever opens
/// `<path>.tmp.*` as an artifact, so stale temps are inert garbage.
std::string make_temp_path(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

void fsync_path(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), O_RDONLY | (directory ? O_DIRECTORY : 0));
  if (fd < 0) {
    const int err = errno;
    REBERT_CHECK_MSG(false, "cannot open " << path << " for fsync: "
                                           << errno_text(err));
  }
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  REBERT_CHECK_MSG(rc == 0, "fsync " << path << " failed: " << errno_text(err));
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), temp_path_(make_temp_path(path_)) {
  errno = 0;
  out_.open(temp_path_, std::ios::binary | std::ios::trunc);
  if (!out_.good()) {
    const int err = errno;
    REBERT_CHECK_MSG(false, "cannot create temp file " << temp_path_
                                                       << " for " << path_
                                                       << ": "
                                                       << errno_text(err));
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (committed_) return;
  // Abandoned write: drop the staged bytes, leave the destination alone.
  out_.close();
  std::remove(temp_path_.c_str());
}

void AtomicFileWriter::commit() {
  REBERT_CHECK_MSG(!committed_, "commit() called twice for " << path_);
  errno = 0;
  out_.flush();
  const bool wrote_ok = out_.good();
  const int write_err = errno;
  out_.close();
  if (!wrote_ok) {
    std::remove(temp_path_.c_str());
    REBERT_CHECK_MSG(false, "write failure on " << temp_path_ << " (for "
                                                << path_ << "): "
                                                << errno_text(write_err));
  }
  try {
    fsync_path(temp_path_, /*directory=*/false);
    errno = 0;
    if (::rename(temp_path_.c_str(), path_.c_str()) != 0) {
      const int err = errno;
      REBERT_CHECK_MSG(false, "rename " << temp_path_ << " -> " << path_
                                        << " failed: " << errno_text(err));
    }
  } catch (...) {
    std::remove(temp_path_.c_str());
    throw;
  }
  committed_ = true;
  // The rename is on disk only once the directory entry is. Some
  // filesystems refuse directory fsync; the file data is already synced,
  // so degrade to a warning instead of failing the whole write.
  try {
    fsync_path(directory_of(path_), /*directory=*/true);
  } catch (const std::exception& e) {
    LOG_WARN << "atomic write of " << path_
             << ": directory fsync skipped: " << e.what();
  }
}

void write_file_atomic(const std::string& path, std::string_view contents) {
  AtomicFileWriter writer(path);
  writer.stream().write(contents.data(),
                        static_cast<std::streamsize>(contents.size()));
  writer.commit();
}

}  // namespace rebert::persist
