// MmapFile — a read-only memory mapping with bounds-checked access.
//
// The zero-copy half of the persistence layer: artifacts whose layout
// supports it (RBPC v2 snapshots, RBTW checkpoints) are validated in
// place and then served directly off the mapping, so a warm start costs
// one mmap() plus a checksum scan instead of a stream parse that
// materializes every record. The mapping is MAP_SHARED + PROT_READ:
// several backend processes mapping the same snapshot share one copy of
// the page cache, and an atomic-rename replacement (atomic_file.h) never
// mutates mapped bytes — the old inode stays alive until unmapped.
//
// Nothing here trusts the file: every access goes through bytes()/read(),
// which bounds-check against the mapped size, and read() memcpy()s so a
// packed or misaligned on-disk layout can never fault an aligned load.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace rebert::persist {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Map `path` read-only. Returns false with *error set when the file
  /// cannot be opened, stat'ed, or mapped; an empty file "maps"
  /// successfully with size() == 0 (mmap of zero bytes is not a thing, so
  /// no mapping is created). Idempotent only via close() first.
  bool open(const std::string& path, std::string* error);

  void close();

  bool mapped() const { return open_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// The window [offset, offset + len), or nullptr when it overruns the
  /// mapping — the one bounds check every consumer funnels through.
  const unsigned char* bytes(std::size_t offset, std::size_t len) const {
    if (offset > size_ || len > size_ - offset) return nullptr;
    return data_ + offset;
  }

  /// Bounds-checked typed read at `offset` via memcpy (alignment-safe for
  /// packed layouts). Returns false when the window overruns.
  template <typename T>
  bool read(std::size_t offset, T* out) const {
    static_assert(std::is_trivially_copyable_v<T>,
                  "read() is for POD wire/artifact structs");
    const unsigned char* window = bytes(offset, sizeof(T));
    if (window == nullptr) return false;
    std::memcpy(out, window, sizeof(T));
    return true;
  }

 private:
  std::string path_;
  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool open_ = false;  // distinguishes "empty file mapped" from "closed"
};

}  // namespace rebert::persist
