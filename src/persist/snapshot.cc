#include "persist/snapshot.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "persist/atomic_file.h"
#include "persist/mmap_snapshot.h"
#include "util/check.h"

namespace rebert::persist {

namespace {

class Fnv1a {
 public:
  void update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 1099511628211ULL;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ULL;
};

template <typename T>
void write_pod(std::ostream& out, Fnv1a* sum, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
  if (sum) sum->update(&value, sizeof(value));
}

template <typename T>
bool read_pod(std::istream& in, Fnv1a* sum, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  if (!in.good()) return false;
  if (sum) sum->update(value, sizeof(*value));
  return true;
}

SnapshotLoadResult reject(std::string message) {
  SnapshotLoadResult result;
  result.status = SnapshotLoadStatus::kCorrupt;
  result.message = std::move(message);
  return result;
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t size) {
  Fnv1a sum;
  sum.update(data, size);
  return sum.value();
}

std::uint64_t fnv1a_update(std::uint64_t state, const void* data,
                           std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= 1099511628211ULL;
  }
  return state;
}

std::uint64_t fnv1a_words(const void* data, std::size_t size) {
  REBERT_CHECK_MSG(size % sizeof(std::uint64_t) == 0,
                   "fnv1a_words needs a whole number of 8-byte words, got "
                       << size << " bytes");
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t state = kFnv1aInit;
  for (std::size_t i = 0; i < size; i += sizeof(std::uint64_t)) {
    std::uint64_t word;
    std::memcpy(&word, bytes + i, sizeof(word));
    state ^= word;
    state *= 1099511628211ULL;
  }
  return state;
}

void save_snapshot(std::vector<CacheRecord> records, const std::string& path) {
  // Sorted records make the file a pure function of the cache contents —
  // two processes that learned the same entries write identical bytes.
  std::sort(records.begin(), records.end());

  AtomicFileWriter writer(path);
  std::ostream& out = writer.stream();
  out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  write_pod(out, nullptr, kSnapshotVersion);
  Fnv1a sum;
  write_pod(out, &sum, static_cast<std::uint64_t>(records.size()));
  for (const CacheRecord& record : records) {
    write_pod(out, &sum, record.first);
    write_pod(out, &sum, record.second);
  }
  write_pod(out, nullptr, sum.value());
  writer.commit();
}

SnapshotLoadResult load_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    SnapshotLoadResult result;
    result.status = SnapshotLoadStatus::kMissing;
    result.message = "no snapshot at " + path;
    return result;
  }

  // Sizes first: a corrupt record count must not drive a giant allocation
  // or a long read loop — the arithmetic proves truncation up front.
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  constexpr std::uint64_t kHeaderBytes =
      sizeof(kSnapshotMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t);
  constexpr std::uint64_t kRecordBytes = sizeof(std::uint64_t) + sizeof(double);
  constexpr std::uint64_t kChecksumBytes = sizeof(std::uint64_t);
  if (file_size < kHeaderBytes + kChecksumBytes)
    return reject(path + " is too small (" + std::to_string(file_size) +
                  " bytes) to be a cache snapshot");

  char magic[sizeof(kSnapshotMagic)];
  in.read(magic, sizeof(magic));
  if (!in.good() || !std::equal(magic, magic + sizeof(magic), kSnapshotMagic))
    return reject(path + " is not a cache snapshot (bad magic)");

  std::uint32_t version = 0;
  if (!read_pod(in, nullptr, &version))
    return reject(path + ": truncated header");
  if (version == kSnapshotVersionMmap) {
    // v2 is the mmap layout: delegate to its validator (bounds, stride,
    // checksum, key order all proven there) and materialize its records
    // for this stream-shaped API.
    in.close();
    const MmapSnapshot::OpenResult mapped = MmapSnapshot::open(path);
    if (!mapped.loaded()) return reject(mapped.message);
    SnapshotLoadResult result;
    result.records.reserve(mapped.snapshot->count());
    for (std::size_t i = 0; i < mapped.snapshot->count(); ++i)
      result.records.push_back(mapped.snapshot->record(i));
    result.status = SnapshotLoadStatus::kLoaded;
    return result;
  }
  if (version != kSnapshotVersion)
    return reject(path + ": unsupported snapshot version " +
                  std::to_string(version) + " (this build reads versions " +
                  std::to_string(kSnapshotVersion) + " and " +
                  std::to_string(kSnapshotVersionMmap) + ")");

  Fnv1a sum;
  std::uint64_t count = 0;
  if (!read_pod(in, &sum, &count))
    return reject(path + ": truncated header");
  const std::uint64_t expected =
      kHeaderBytes + count * kRecordBytes + kChecksumBytes;
  if (file_size != expected)
    return reject(path + ": expected " + std::to_string(expected) +
                  " bytes for " + std::to_string(count) + " record(s), file has " +
                  std::to_string(file_size) + " (truncated or trailing garbage)");

  SnapshotLoadResult result;
  result.records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    CacheRecord record;
    if (!read_pod(in, &sum, &record.first) ||
        !read_pod(in, &sum, &record.second))
      return reject(path + ": truncated at record " + std::to_string(i) +
                    " of " + std::to_string(count));
    result.records.push_back(record);
  }

  std::uint64_t stored_sum = 0;
  if (!read_pod(in, nullptr, &stored_sum))
    return reject(path + ": truncated checksum");
  if (stored_sum != sum.value())
    return reject(path + ": checksum mismatch (file is corrupt)");

  result.status = SnapshotLoadStatus::kLoaded;
  return result;
}

}  // namespace rebert::persist
