// RBPC — the on-disk prediction-cache snapshot format.
//
// Layout (native endianness, like the RBTW checkpoint format):
//
//   bytes 0..3   magic "RBPC"
//   u32          version (kSnapshotVersion)
//   u64          record count
//   count ×      { u64 key, f64 score }   — sorted by key (deterministic
//                                           files; shard-agnostic)
//   u64          FNV-1a checksum over the count + record bytes
//
// Records are flat (key, score) pairs with no shard structure, so a
// snapshot written by a 64-shard ShardedPredictionCache warm-starts a
// 4-shard one — or the serial PredictionCache — unchanged.
//
// Loading NEVER throws on bad content: a missing, truncated, corrupt, or
// version-skewed file comes back as a status + diagnostic message, and the
// caller warms nothing (cold start). A daemon restarting into a torn
// snapshot must serve, not crash. Saving goes through the atomic writer
// (atomic_file.h), so a crash mid-save leaves the previous snapshot intact.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rebert::persist {

/// One cached prediction: (pair key, score). The key scheme belongs to
/// core::PredictionCache::key_of; this layer just persists the mapping.
using CacheRecord = std::pair<std::uint64_t, double>;

inline constexpr char kSnapshotMagic[4] = {'R', 'B', 'P', 'C'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// FNV-1a over `size` bytes — the checksum every persist artifact (and
/// the binary wire protocol) uses, exposed so the formats share one
/// implementation and the tests can cross-check it.
std::uint64_t fnv1a(const void* data, std::size_t size);

/// Streaming form: fold `size` more bytes into a running FNV-1a state.
/// Seed with kFnv1aInit; fnv1a(d, n) == fnv1a_update(kFnv1aInit, d, n).
/// What writers too large to buffer (checkpoint saves) hash with.
inline constexpr std::uint64_t kFnv1aInit = 14695981039346656037ULL;
std::uint64_t fnv1a_update(std::uint64_t state, const void* data,
                           std::size_t size);

/// FNV-1a folded over 8-byte little-endian words instead of bytes. One
/// multiply per word instead of eight makes validating a mapped artifact
/// ~8× cheaper — byte-wise FNV's serial multiply chain would otherwise
/// dominate an O(1) warm start. Only formats whose payload is a whole
/// number of words may use it (RBPC v2's table is, by construction);
/// `size` must be a multiple of 8.
std::uint64_t fnv1a_words(const void* data, std::size_t size);

enum class SnapshotLoadStatus {
  kLoaded,   // records filled
  kMissing,  // no file at the path (a normal first run)
  kCorrupt,  // bad magic / version skew / truncation / checksum mismatch
};

struct SnapshotLoadResult {
  SnapshotLoadStatus status = SnapshotLoadStatus::kMissing;
  std::vector<CacheRecord> records;
  std::string message;  // diagnostic for kMissing / kCorrupt

  bool loaded() const { return status == SnapshotLoadStatus::kLoaded; }
};

/// Atomically write `records` to `path` (sorted by key first). Throws
/// util::CheckError with errno detail on I/O failure — saving is a caller
/// action whose failure must be loud, unlike loading.
void save_snapshot(std::vector<CacheRecord> records, const std::string& path);

/// Read and validate a snapshot, materializing its records. Reads both
/// layouts — v1 (above) and the mmap-able v2 (mmap_snapshot.h) — so
/// stream consumers (import into a cache, format conversion) accept any
/// snapshot this build can write. Never throws on file content: any
/// defect yields kCorrupt (or kMissing) with a one-line diagnosis.
SnapshotLoadResult load_snapshot(const std::string& path);

}  // namespace rebert::persist
