// RBPC v2 — the mmap-able prediction-cache snapshot layout.
//
//   bytes 0..3   magic "RBPC"            (same magic as v1)
//   u32          version = 2
//   u64          record count
//   u64          record stride in bytes  (this build writes and reads 16)
//   u64          FNV-1a checksum over the record table
//   count ×      { u64 key, f64 score }  — sorted strictly ascending by key
//
// Against v1 the differences are exactly what zero-copy serving needs:
// the checksum moved into the header (a validator never seeks past data
// it has not sized yet), the stride is explicit (a reader rejects layout
// skew instead of misindexing), and the record table is the final,
// binary-searchable artifact — open() validates bounds, magic, version,
// stride, checksum, and key order, and then lookups run directly off the
// mapping. No allocation or per-record parse ever happens, which is why a
// respawned backend warm-starts in O(1) work beyond one checksum pass.
//
// Like v1 loading (snapshot.h), open() NEVER throws on file content:
// corrupt, truncated, stride-skewed, or unsorted files come back kCorrupt
// with a one-line diagnosis and the caller starts cold.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "persist/mmap_file.h"
#include "persist/snapshot.h"

namespace rebert::persist {

inline constexpr std::uint32_t kSnapshotVersionMmap = 2;
inline constexpr std::size_t kSnapshotV2HeaderBytes = 32;
inline constexpr std::size_t kSnapshotV2Stride = 16;

/// Atomically write `records` as an RBPC v2 artifact (sorted by key
/// first). Throws util::CheckError on I/O failure, like save_snapshot.
void save_snapshot_v2(std::vector<CacheRecord> records,
                      const std::string& path);

/// A validated, mapped RBPC v2 snapshot serving lookups off the mapping.
class MmapSnapshot {
 public:
  struct OpenResult {
    SnapshotLoadStatus status = SnapshotLoadStatus::kMissing;
    std::shared_ptr<const MmapSnapshot> snapshot;  // set when kLoaded
    std::string message;  // diagnostic for kMissing / kCorrupt

    bool loaded() const { return status == SnapshotLoadStatus::kLoaded; }
  };

  /// Map and validate `path`. Every offset is proven in bounds before
  /// use; never throws on file content.
  static OpenResult open(const std::string& path);

  std::size_t count() const { return count_; }
  const std::string& path() const { return file_.path(); }

  /// Binary search over the mapped record table.
  bool lookup(std::uint64_t key, double* score) const;

  /// The i-th record (caller keeps i < count()); used by export paths.
  CacheRecord record(std::size_t index) const;

 private:
  MmapSnapshot() = default;

  MmapFile file_;
  const unsigned char* table_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace rebert::persist
