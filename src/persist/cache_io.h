// Warm-start glue between the RBPC snapshot format and the prediction
// caches. Header-only templates so persist stays a leaf library: any cache
// exposing export_entries() / import_entries() (core::PredictionCache and
// core::ShardedPredictionCache both do) persists through the same two
// calls, and only the including translation unit pays the dependency.
#pragma once

#include <cstddef>
#include <string>

#include "persist/snapshot.h"
#include "util/logging.h"

namespace rebert::persist {

/// Atomically snapshot `cache` to `path`. Throws util::CheckError (with
/// errno detail) on I/O failure.
template <typename Cache>
void save_cache(const Cache& cache, const std::string& path) {
  save_snapshot(cache.export_entries(), path);
}

/// Warm-start `cache` from a snapshot. Returns the number of entries
/// imported; a missing file imports 0 silently-ish (info log, normal first
/// run) and a corrupt/truncated/version-skewed file imports 0 with a
/// warning — the caller always continues, at worst cold. Never throws on
/// file content.
template <typename Cache>
std::size_t load_cache(Cache* cache, const std::string& path) {
  const SnapshotLoadResult result = load_snapshot(path);
  switch (result.status) {
    case SnapshotLoadStatus::kLoaded:
      return cache->import_entries(result.records);
    case SnapshotLoadStatus::kMissing:
      LOG_INFO << "cache snapshot: " << result.message << "; starting cold";
      return 0;
    case SnapshotLoadStatus::kCorrupt:
      LOG_WARN << "cache snapshot rejected: " << result.message
               << "; starting cold";
      return 0;
  }
  return 0;
}

}  // namespace rebert::persist
