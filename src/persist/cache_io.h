// Warm-start glue between the RBPC snapshot format and the prediction
// caches. Header-only templates so persist stays a leaf library: any cache
// exposing export_entries() / import_entries() (core::PredictionCache and
// core::ShardedPredictionCache both do) persists through the same two
// calls, and only the including translation unit pays the dependencies
// (including rebert_runtime for the cache.load / cache.parse chaos sites —
// every current includer links it already).
#pragma once

#include <cstddef>
#include <string>

#include "persist/snapshot.h"
#include "runtime/fault_injector.h"
#include "util/logging.h"

namespace rebert::persist {

/// Atomically snapshot `cache` to `path`. Throws util::CheckError (with
/// errno detail) on I/O failure.
template <typename Cache>
void save_cache(const Cache& cache, const std::string& path) {
  save_snapshot(cache.export_entries(), path);
}

/// Warm-start `cache` from a snapshot. Returns the number of entries
/// imported; a missing file imports 0 silently-ish (info log, normal first
/// run) and a corrupt/truncated/version-skewed file imports 0 with a
/// warning — the caller always continues, at worst cold. Never throws on
/// file content.
template <typename Cache>
std::size_t load_cache(Cache* cache, const std::string& path) {
  // Chaos sites: cache.load simulates the snapshot file being unreadable
  // (I/O error, permission flip), cache.parse a record-level corruption
  // the CRC missed. Both degrade to a cold start — exactly the missing /
  // corrupt-file contract below — and never fail the caller.
  runtime::FaultInjector& faults = runtime::FaultInjector::global();
  if (faults.should_fail("cache.load")) {
    LOG_WARN << "cache snapshot: injected load fault for " << path
             << "; starting cold";
    return 0;
  }
  const SnapshotLoadResult result = load_snapshot(path);
  if (result.status == SnapshotLoadStatus::kLoaded &&
      faults.should_fail("cache.parse")) {
    LOG_WARN << "cache snapshot rejected: injected parse fault for " << path
             << "; starting cold";
    return 0;
  }
  switch (result.status) {
    case SnapshotLoadStatus::kLoaded:
      return cache->import_entries(result.records);
    case SnapshotLoadStatus::kMissing:
      LOG_INFO << "cache snapshot: " << result.message << "; starting cold";
      return 0;
    case SnapshotLoadStatus::kCorrupt:
      LOG_WARN << "cache snapshot rejected: " << result.message
               << "; starting cold";
      return 0;
  }
  return 0;
}

}  // namespace rebert::persist
