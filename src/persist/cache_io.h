// Warm-start glue between the RBPC snapshot format and the prediction
// caches. Header-only templates so persist stays a leaf library: any cache
// exposing export_entries() / import_entries() (core::PredictionCache and
// core::ShardedPredictionCache both do) persists through the same two
// calls, and only the including translation unit pays the dependencies
// (including rebert_runtime for the cache.load / cache.parse chaos sites —
// every current includer links it already).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "persist/mmap_snapshot.h"
#include "persist/snapshot.h"
#include "rebert/prediction_cache.h"
#include "runtime/fault_injector.h"
#include "util/logging.h"

namespace rebert::persist {

/// Atomically snapshot `cache` to `path`. Throws util::CheckError (with
/// errno detail) on I/O failure. Writes the mmap-able RBPC v2 layout
/// (mmap_snapshot.h) so every snapshot this build produces supports the
/// zero-copy warm start; load paths read v1 and v2 alike.
template <typename Cache>
void save_cache(const Cache& cache, const std::string& path) {
  save_snapshot_v2(cache.export_entries(), path);
}

/// Warm-start `cache` from a snapshot. Returns the number of entries
/// imported; a missing file imports 0 silently-ish (info log, normal first
/// run) and a corrupt/truncated/version-skewed file imports 0 with a
/// warning — the caller always continues, at worst cold. Never throws on
/// file content.
template <typename Cache>
std::size_t load_cache(Cache* cache, const std::string& path) {
  // Chaos sites: cache.load simulates the snapshot file being unreadable
  // (I/O error, permission flip), cache.parse a record-level corruption
  // the CRC missed. Both degrade to a cold start — exactly the missing /
  // corrupt-file contract below — and never fail the caller.
  runtime::FaultInjector& faults = runtime::FaultInjector::global();
  if (faults.should_fail("cache.load")) {
    LOG_WARN << "cache snapshot: injected load fault for " << path
             << "; starting cold";
    return 0;
  }
  const SnapshotLoadResult result = load_snapshot(path);
  if (result.status == SnapshotLoadStatus::kLoaded &&
      faults.should_fail("cache.parse")) {
    LOG_WARN << "cache snapshot rejected: injected parse fault for " << path
             << "; starting cold";
    return 0;
  }
  switch (result.status) {
    case SnapshotLoadStatus::kLoaded:
      return cache->import_entries(result.records);
    case SnapshotLoadStatus::kMissing:
      LOG_INFO << "cache snapshot: " << result.message << "; starting cold";
      return 0;
    case SnapshotLoadStatus::kCorrupt:
      LOG_WARN << "cache snapshot rejected: " << result.message
               << "; starting cold";
      return 0;
  }
  return 0;
}

/// core::ScoreTier over a mapped RBPC v2 snapshot — the adapter that
/// plugs the persistence layer's mapping into the cache's warm tier
/// without persist linking core (header-only; only includers pay the
/// dependency, and they all link core already).
class MmapSnapshotTier final : public core::ScoreTier {
 public:
  explicit MmapSnapshotTier(std::shared_ptr<const MmapSnapshot> snapshot)
      : snapshot_(std::move(snapshot)) {}

  bool lookup(std::uint64_t key, double* score) const override {
    return snapshot_->lookup(key, score);
  }
  std::size_t size() const override { return snapshot_->count(); }
  void append_entries(
      std::vector<std::pair<std::uint64_t, double>>* out) const override {
    out->reserve(out->size() + snapshot_->count());
    for (std::size_t i = 0; i < snapshot_->count(); ++i)
      out->push_back(snapshot_->record(i));
  }

 private:
  std::shared_ptr<const MmapSnapshot> snapshot_;
};

/// Zero-copy warm start for the sharded cache: a v2 snapshot is mapped,
/// validated (header + checksum), and attached as a read-only warm tier —
/// O(1) in the record count beyond the validation scan, no
/// materialization. Anything else (a v1 snapshot, a missing or corrupt
/// file) falls back to the stream parse + import with the same
/// cold-start-on-defect contract as load_cache. Returns the entries made
/// available either way. The cache.load / cache.parse chaos sites fire
/// exactly once per call, whichever path runs.
inline std::size_t warm_start_cache(core::ShardedPredictionCache* cache,
                                    const std::string& path) {
  runtime::FaultInjector& faults = runtime::FaultInjector::global();
  if (faults.should_fail("cache.load")) {
    LOG_WARN << "cache snapshot: injected load fault for " << path
             << "; starting cold";
    return 0;
  }
  const MmapSnapshot::OpenResult mapped = MmapSnapshot::open(path);
  if (mapped.loaded()) {
    if (faults.should_fail("cache.parse")) {
      LOG_WARN << "cache snapshot rejected: injected parse fault for "
               << path << "; starting cold";
      return 0;
    }
    cache->attach_warm_tier(
        std::make_shared<MmapSnapshotTier>(mapped.snapshot));
    LOG_INFO << "cache snapshot: mapped " << mapped.snapshot->count()
             << " record(s) from " << path << " as a zero-copy warm tier";
    return mapped.snapshot->count();
  }
  const SnapshotLoadResult result = load_snapshot(path);
  if (result.status == SnapshotLoadStatus::kLoaded &&
      faults.should_fail("cache.parse")) {
    LOG_WARN << "cache snapshot rejected: injected parse fault for " << path
             << "; starting cold";
    return 0;
  }
  switch (result.status) {
    case SnapshotLoadStatus::kLoaded:
      return cache->import_entries(result.records);
    case SnapshotLoadStatus::kMissing:
      LOG_INFO << "cache snapshot: " << result.message << "; starting cold";
      return 0;
    case SnapshotLoadStatus::kCorrupt:
      LOG_WARN << "cache snapshot rejected: " << result.message
               << "; starting cold";
      return 0;
  }
  return 0;
}

}  // namespace rebert::persist
