#include "persist/mmap_file.h"

#include <cerrno>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/retry_eintr.h"
#include "util/string_utils.h"

namespace rebert::persist {

MmapFile::~MmapFile() { close(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : path_(std::move(other.path_)),
      data_(other.data_),
      size_(other.size_),
      open_(other.open_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.open_ = false;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    data_ = other.data_;
    size_ = other.size_;
    open_ = other.open_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.open_ = false;
  }
  return *this;
}

bool MmapFile::open(const std::string& path, std::string* error) {
  close();
  const int fd =
      util::retry_eintr([&] { return ::open(path.c_str(), O_RDONLY); });
  if (fd < 0) {
    if (error)
      *error = "cannot open " + path + ": " + util::errno_string(errno);
    return false;
  }
  struct stat info;
  if (::fstat(fd, &info) != 0) {
    if (error)
      *error = "cannot stat " + path + ": " + util::errno_string(errno);
    ::close(fd);
    return false;
  }
  const std::size_t size = static_cast<std::size_t>(info.st_size);
  if (size > 0) {
    // MAP_SHARED read-only: every process mapping this artifact shares one
    // page-cache copy. The fd can close right away — the mapping keeps the
    // inode alive, which is also what makes atomic-rename replacement safe
    // underneath us.
    void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (mapping == MAP_FAILED) {
      if (error)
        *error = "cannot mmap " + path + ": " + util::errno_string(errno);
      ::close(fd);
      return false;
    }
    data_ = static_cast<const unsigned char*>(mapping);
  }
  ::close(fd);
  path_ = path;
  size_ = size;
  open_ = true;
  return true;
}

void MmapFile::close() {
  if (data_ != nullptr)
    ::munmap(const_cast<unsigned char*>(data_), size_);
  data_ = nullptr;
  size_ = 0;
  open_ = false;
  path_.clear();
}

}  // namespace rebert::persist
