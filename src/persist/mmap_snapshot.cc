#include "persist/mmap_snapshot.h"

#include <algorithm>
#include <cstring>

#include "persist/atomic_file.h"

namespace rebert::persist {

namespace {

struct __attribute__((__packed__)) V2Header {
  char magic[4];
  std::uint32_t version;
  std::uint64_t count;
  std::uint64_t stride;
  std::uint64_t checksum;
};
static_assert(sizeof(V2Header) == kSnapshotV2HeaderBytes,
              "RBPC v2 header layout drifted from the format");

struct __attribute__((__packed__)) V2Record {
  std::uint64_t key;
  double score;
};
static_assert(sizeof(V2Record) == kSnapshotV2Stride,
              "RBPC v2 record layout drifted from the format");

MmapSnapshot::OpenResult reject(std::string message) {
  MmapSnapshot::OpenResult result;
  result.status = SnapshotLoadStatus::kCorrupt;
  result.message = std::move(message);
  return result;
}

}  // namespace

void save_snapshot_v2(std::vector<CacheRecord> records,
                      const std::string& path) {
  // Sorted records are both the determinism guarantee (identical caches ->
  // identical bytes, as in v1) and the lookup index: the mapped table is
  // binary-searched in place. Duplicate keys collapse to their first
  // record — strict key order is the validator's search invariant.
  std::sort(records.begin(), records.end());
  records.erase(std::unique(records.begin(), records.end(),
                            [](const CacheRecord& a, const CacheRecord& b) {
                              return a.first == b.first;
                            }),
                records.end());

  std::string table;
  table.reserve(records.size() * kSnapshotV2Stride);
  for (const CacheRecord& record : records) {
    V2Record packed{record.first, record.second};
    table.append(reinterpret_cast<const char*>(&packed), sizeof(packed));
  }

  V2Header header{};
  std::memcpy(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  header.version = kSnapshotVersionMmap;
  header.count = records.size();
  header.stride = kSnapshotV2Stride;
  // Word-folded FNV-1a: the table is a whole number of 8-byte words by
  // construction, and validating the mapping on open must not cost more
  // than the O(1) warm start it buys (byte-wise FNV is a serial multiply
  // per byte — 8× the work for the same integrity guarantee).
  header.checksum = fnv1a_words(table.data(), table.size());

  AtomicFileWriter writer(path);
  std::ostream& out = writer.stream();
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(table.data(), static_cast<std::streamsize>(table.size()));
  writer.commit();
}

MmapSnapshot::OpenResult MmapSnapshot::open(const std::string& path) {
  auto snapshot = std::shared_ptr<MmapSnapshot>(new MmapSnapshot());
  std::string io_error;
  if (!snapshot->file_.open(path, &io_error)) {
    OpenResult result;
    result.status = SnapshotLoadStatus::kMissing;
    result.message = io_error;
    return result;
  }

  V2Header header;
  if (!snapshot->file_.read(0, &header))
    return reject(path + " is too small (" +
                  std::to_string(snapshot->file_.size()) +
                  " bytes) to be an RBPC v2 snapshot");
  if (std::memcmp(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0)
    return reject(path + " is not a cache snapshot (bad magic)");
  if (header.version != kSnapshotVersionMmap)
    return reject(path + ": snapshot version " +
                  std::to_string(header.version) +
                  " is not mmap-able (this build maps version " +
                  std::to_string(kSnapshotVersionMmap) + ")");
  if (header.stride != kSnapshotV2Stride)
    return reject(path + ": record stride " + std::to_string(header.stride) +
                  " does not match this build's " +
                  std::to_string(kSnapshotV2Stride) +
                  "-byte records (layout skew)");
  // The size arithmetic proves the whole table is inside the mapping
  // before any record is touched; the multiply is overflow-checked by
  // dividing the space that is actually there.
  const std::size_t available =
      snapshot->file_.size() - kSnapshotV2HeaderBytes;
  if (header.count > available / kSnapshotV2Stride ||
      header.count * kSnapshotV2Stride != available)
    return reject(path + ": expected " + std::to_string(header.count) +
                  " record(s) of " + std::to_string(kSnapshotV2Stride) +
                  " bytes after the header, file has " +
                  std::to_string(available) +
                  " bytes (truncated or trailing garbage)");

  const unsigned char* table = snapshot->file_.bytes(
      kSnapshotV2HeaderBytes, header.count * kSnapshotV2Stride);
  if (table == nullptr)  // unreachable after the arithmetic above
    return reject(path + ": record table out of bounds");
  if (fnv1a_words(table, header.count * kSnapshotV2Stride) !=
      header.checksum)
    return reject(path + ": checksum mismatch (file is corrupt)");

  // Key order is the binary-search invariant; a file that lies about it
  // would serve wrong answers, so it is corrupt, not merely slow.
  std::uint64_t previous = 0;
  for (std::size_t i = 0; i < header.count; ++i) {
    std::uint64_t key;
    std::memcpy(&key, table + i * kSnapshotV2Stride, sizeof(key));
    if (i > 0 && key <= previous)
      return reject(path + ": record keys out of order at index " +
                    std::to_string(i));
    previous = key;
  }

  snapshot->table_ = table;
  snapshot->count_ = static_cast<std::size_t>(header.count);
  OpenResult result;
  result.status = SnapshotLoadStatus::kLoaded;
  result.snapshot = std::move(snapshot);
  return result;
}

bool MmapSnapshot::lookup(std::uint64_t key, double* score) const {
  std::size_t lo = 0;
  std::size_t hi = count_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    std::uint64_t mid_key;
    std::memcpy(&mid_key, table_ + mid * kSnapshotV2Stride,
                sizeof(mid_key));
    if (mid_key == key) {
      if (score != nullptr)
        std::memcpy(score, table_ + mid * kSnapshotV2Stride + sizeof(key),
                    sizeof(*score));
      return true;
    }
    if (mid_key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

CacheRecord MmapSnapshot::record(std::size_t index) const {
  V2Record packed;
  std::memcpy(&packed, table_ + index * kSnapshotV2Stride, sizeof(packed));
  // Copies, not references: a packed field has no addressable alignment.
  const std::uint64_t key = packed.key;
  const double score = packed.score;
  return {key, score};
}

}  // namespace rebert::persist
