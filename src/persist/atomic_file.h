// Crash-safe file writes shared by every on-disk artifact (checkpoints,
// cache snapshots, reports that must never be half-written).
//
// The only durable way to replace a file on POSIX is: write a temp file in
// the *same directory* (rename across filesystems is not atomic), flush it,
// fsync it, then rename() over the destination and fsync the directory.
// A crash — up to and including kill -9 or power loss — at any point leaves
// either the old file or the new file at the target path, never a torn mix,
// and at worst an abandoned `<path>.tmp.<pid>.<n>` file that readers ignore.
//
// All failures throw util::CheckError carrying the errno text, so callers
// see *why* (ENOSPC vs EACCES vs ENOENT) instead of a bare "write failed".
#pragma once

#include <fstream>
#include <string>
#include <string_view>

namespace rebert::persist {

/// Streaming atomic writer: construct, write to stream(), commit().
/// Destruction without commit() abandons the write — the temp file is
/// removed and the destination is left exactly as it was.
class AtomicFileWriter {
 public:
  /// Opens a uniquely named temp file next to `path`. Throws
  /// util::CheckError (with errno text) when it cannot be created.
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// The temp file's stream; write the full contents here before commit().
  std::ostream& stream() { return out_; }

  /// Where the bytes are staged until commit() — exposed for tests.
  const std::string& temp_path() const { return temp_path_; }

  /// Flush + fsync the temp file, rename it over the destination, fsync
  /// the directory. Throws util::CheckError (errno included) on any step;
  /// the temp file is removed on failure. Call at most once.
  void commit();

 private:
  std::string path_;
  std::string temp_path_;
  std::ofstream out_;
  bool committed_ = false;
};

/// One-shot convenience: atomically replace `path` with `contents`.
void write_file_atomic(const std::string& path, std::string_view contents);

}  // namespace rebert::persist
