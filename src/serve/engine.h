// InferenceEngine — the long-lived core of the serving runtime.
//
// Owns a ModelRegistry of immutable BertPairClassifier snapshots (const
// after construction; the inference path is compiler-enforced read-only,
// see bert/model.h), a runtime::ThreadPool, a sharded thread-safe
// PredictionCache shared by all requests to the default model (non-default
// registry entries carry private caches — see model_registry.h), and a
// lazily-populated registry of benchmark contexts (tokenized bit
// universes). score requests are micro-batched into fixed-size forward
// batches and fanned out across the pool; recover requests reuse the pool
// through core::score_all_pairs.
//
// Thread safety: every public method may be called from any number of
// threads concurrently (one per connection in the socket server). The
// models and tokenizer are read-only, the caches are internally sharded,
// bench loading is serialized behind a mutex, and request counters are
// relaxed atomics.
//
// Robustness (see DESIGN.md "Overload-safe serving"):
//   * Admission control — try_admit() hands out at most max_inflight
//     concurrent request slots; callers answer `err overloaded
//     retry_after_ms=<n>` when it declines instead of queueing unboundedly.
//     try_admit(bench) additionally enforces max_inflight_per_bench so one
//     hot bench cannot monopolize the whole budget.
//   * Deadlines — score/recover take an optional CancellationToken; arm it
//     with set_deadline_after_ms and the work stops cooperatively between
//     micro-batches / parallel_for chunks, surfacing runtime::CancelledError.
//   * Graceful degradation — when the model path fails (injected fault,
//     NaN tripwire, bad checkpoint) recover() falls back to the structural
//     matching baseline (Meade et al., ISCAS'16), which needs no model, and
//     tags the summary `degraded`. A registry entry whose checkpoint never
//     loaded degrades the same way without attempting a forward.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bert/model.h"
#include "nl/words.h"
#include "rebert/pipeline.h"
#include "rebert/prediction_cache.h"
#include "rebert/tokenizer.h"
#include "runtime/latch.h"
#include "runtime/thread_pool.h"
#include "serve/model_registry.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace rebert::serve {

struct EngineOptions {
  /// Worker threads in the engine pool: 0 = REBERT_THREADS / hardware.
  int num_threads = 0;
  /// Pair sequences per forward micro-batch. Requests smaller than this
  /// run as one batch; larger ones split into ceil(n / batch_size) pool
  /// tasks.
  int batch_size = 16;
  /// Shards of the prediction cache (0 = default; see prediction_cache.h).
  int cache_shards = 0;
  /// circuitgen scale for generated benchmark names ("b03".."b18").
  double suite_scale = 0.25;
  /// Weight file produced by `rebert_cli train --save`. Empty = fresh
  /// (untrained) weights — scores are meaningless but the runtime paths
  /// are fully exercised, which is what the serve tests and benches need.
  /// Ignored when manifest_path is set.
  std::string model_path;
  /// Model manifest (see model_registry.h) declaring several named
  /// snapshots behind this engine. Empty = a single-entry registry built
  /// from model_path.
  std::string manifest_path;
  /// Model dimensions and pipeline knobs (tokenizer/filter/grouping). The
  /// model config is derived with core::make_model_config, so it must
  /// match the checkpoints when model_path / manifest_path are set.
  core::ExperimentOptions experiment;
  /// Admission budget: score/recover requests concurrently in flight
  /// before try_admit() starts shedding. 0 = unlimited (no shedding).
  int max_inflight = 0;
  /// Per-bench admission budget: requests concurrently in flight against
  /// any one bench before try_admit(bench) sheds for that bench only.
  /// 0 = unlimited. Enforced on top of max_inflight.
  int max_inflight_per_bench = 0;
  /// Advisory client backoff carried by shed responses
  /// (`err overloaded retry_after_ms=<n>`).
  int retry_after_ms = 50;
};

struct EngineStats {
  int threads = 0;
  int batch_size = 0;
  int cache_shards = 0;
  std::uint64_t score_requests = 0;
  std::uint64_t recover_requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t cache_entries = 0;
  std::size_t warm_entries = 0;  // entries imported by load_cache()
  std::size_t benches_loaded = 0;
  double uptime_seconds = 0.0;
  // Robustness gauges and counters (see class comment).
  int inflight = 0;            // admitted requests right now
  int max_inflight = 0;        // 0 = unlimited
  bool model_healthy = true;   // last model forward succeeded
  std::uint64_t shed_requests = 0;       // admission declines (all causes)
  std::uint64_t deadline_exceeded = 0;   // requests cancelled by deadline
  std::uint64_t degraded_recoveries = 0; // recovers answered structurally
  std::uint64_t faults_injected = 0;     // trips of the global FaultInjector
  // Multi-model registry and per-bench budgets.
  int models = 1;                          // registry entries
  int unhealthy_models = 0;                // entries currently unhealthy
  int max_inflight_per_bench = 0;          // 0 = unlimited
  std::uint64_t bench_shed_requests = 0;   // per-bench budget declines
  // Active compute-kernel backend ("scalar" / "avx2"); see kernels/backend.h.
  std::string kernels;
};

struct RecoverSummary {
  int num_bits = 0;
  int num_words = 0;
  double filtered_fraction = 0.0;
  double cache_hit_rate = 0.0;  // engine-lifetime rate at completion
  double seconds = 0.0;
  /// True when the model path failed and the words came from the
  /// structural baseline instead (response tag `degraded=structural`).
  bool degraded = false;
};

class InferenceEngine {
 public:
  /// RAII admission slot. Falsy when the budget was exhausted and the
  /// request must be shed; releases its slot(s) on destruction otherwise.
  /// A slot from try_admit(bench) also holds that bench's per-bench slot.
  class Admission {
   public:
    Admission() = default;
    explicit Admission(InferenceEngine* engine) : engine_(engine) {}
    Admission(Admission&& other) noexcept
        : engine_(other.engine_), bench_(std::move(other.bench_)) {
      other.engine_ = nullptr;
      other.bench_.clear();
    }
    Admission& operator=(Admission&& other) noexcept {
      if (this != &other) {
        release();
        engine_ = other.engine_;
        bench_ = std::move(other.bench_);
        other.engine_ = nullptr;
        other.bench_.clear();
      }
      return *this;
    }
    Admission(const Admission&) = delete;
    Admission& operator=(const Admission&) = delete;
    ~Admission() { release(); }
    explicit operator bool() const { return engine_ != nullptr; }

   private:
    void release();
    InferenceEngine* engine_ = nullptr;
    std::string bench_;  // non-empty: also holds this bench's slot
    friend class InferenceEngine;
  };

  explicit InferenceEngine(EngineOptions options);

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Reserve an in-flight slot for one score/recover request. Falsy when
  /// max_inflight slots are taken — the caller must answer
  /// `err overloaded` (the decline is counted in shed_requests). With
  /// max_inflight == 0 admission always succeeds but the in-flight gauge
  /// still tracks.
  Admission try_admit() { return try_admit(std::string()); }

  /// Like try_admit(), but additionally enforces max_inflight_per_bench
  /// for `bench` (per-bench declines count in both bench_shed_requests
  /// and shed_requests). An empty bench skips the per-bench check.
  Admission try_admit(const std::string& bench) EXCLUDES(bench_slots_mu_);

  /// The advisory backoff to attach to shed responses.
  int retry_after_ms() const { return options_.retry_after_ms; }

  /// Account a request shed outside the engine (e.g. a connection turned
  /// away at the listener's connection cap) so stats() aggregates all
  /// shedding in one counter.
  void record_shed() {
    shed_requests_.fetch_add(1, std::memory_order_relaxed);
  }

  /// P(same word) for two bits (DFF names) of a benchmark. Throws
  /// util::CheckError on unknown bench, bit, or model names. When `cancel`
  /// fires (deadline or explicit stop) throws runtime::CancelledError.
  /// `model` selects a registry entry ("" = size rule / default).
  double score(const std::string& bench, const std::string& bit_a,
               const std::string& bit_b,
               runtime::CancellationToken* cancel = nullptr,
               const std::string& model = "");

  /// Batched form: scores every (bitA, bitB) name pair against one bench.
  /// Cache hits are answered inline; misses are encoded and fanned out to
  /// the pool in `batch_size` groups. Result order matches input order.
  /// `cancel` is polled between micro-batches, never mid-forward.
  std::vector<double> score_batch(
      const std::string& bench,
      const std::vector<std::pair<std::string, std::string>>& bit_pairs,
      runtime::CancellationToken* cancel = nullptr,
      const std::string& model = "");

  /// Full word recovery over a benchmark, parallelized on the engine pool.
  /// A model-path failure — or an explicitly named model whose checkpoint
  /// never loaded — degrades to the structural baseline (summary tagged
  /// `degraded`); a fired `cancel` throws runtime::CancelledError.
  RecoverSummary recover(const std::string& bench,
                         runtime::CancellationToken* cancel = nullptr,
                         const std::string& model = "");

  /// False after a model forward failed (until one succeeds again) — what
  /// the `health` verb reports as `degraded`.
  bool model_healthy() const {
    return model_healthy_.load(std::memory_order_relaxed);
  }

  EngineStats stats() const;

  /// The model registry behind score/recover (health reporting, tests).
  ModelRegistry& registry() { return registry_; }

  /// Warm-start the default model's prediction cache from an RBPC snapshot.
  /// A v2 snapshot (persist/mmap_snapshot.h) is validated and mapped as a
  /// zero-copy warm tier — O(1) in the record count, scores served off the
  /// mapping; a v1 snapshot stream-imports (persist/snapshot.h). Missing,
  /// truncated, or corrupt files warm nothing and never throw — the engine
  /// starts cold with a warning. Returns the entries made available (also
  /// reported by stats() as warm_entries).
  std::size_t load_cache(const std::string& path);

  /// Atomically snapshot the default prediction cache to `path` in the
  /// mmap-able RBPC v2 layout (crash mid-save leaves any previous snapshot
  /// intact; a process still mapping the replaced file keeps its old inode).
  /// Throws util::CheckError with errno detail on I/O failure. Safe to call
  /// while requests are in flight — the cache is read under its shard locks.
  void save_cache(const std::string& path) const;

  /// Pre-load a bench context (useful before latency measurements so the
  /// first timed request does not pay tokenization). Returns its bit count.
  int warm(const std::string& bench);

  /// Bit (DFF) names of a bench in extract_bits order — what a load
  /// generator needs to fabricate valid score requests.
  std::vector<std::string> bit_names(const std::string& bench);

  int threads() const { return pool_.size() + 1; }  // pool + calling thread
  runtime::ThreadPool& pool() { return pool_; }
  const EngineOptions& options() const { return options_; }

 private:
  struct BenchContext {
    nl::Netlist netlist;  // retained for the structural fallback
    std::vector<nl::Bit> bits;
    std::vector<core::BitSequence> sequences;
    std::map<std::string, int> index_of;  // bit name -> sequence index
  };

  /// Resolve a bench name to its context, loading it on first use.
  /// The returned reference stays valid for the engine's lifetime (contexts
  /// are heap-allocated and never erased, so the pointee is safely read
  /// outside benches_mu_ once returned).
  const BenchContext& bench(const std::string& name) EXCLUDES(benches_mu_);

  int bit_index(const BenchContext& context, const std::string& bench,
                const std::string& bit) const;

  void release_bench_slot(const std::string& bench)
      EXCLUDES(bench_slots_mu_);

  EngineOptions options_;
  core::Tokenizer tokenizer_;
  // The request thread participates in every parallel_for it issues, so
  // the pool holds one fewer worker than the resolved scoring width.
  runtime::ThreadPool pool_;
  core::ShardedPredictionCache cache_;
  // After cache_: the registry's default entry aliases &cache_.
  ModelRegistry registry_;

  mutable util::Mutex benches_mu_{"engine.benches"};
  std::map<std::string, std::unique_ptr<BenchContext>> benches_
      GUARDED_BY(benches_mu_);

  mutable util::Mutex bench_slots_mu_{"engine.bench_slots"};
  std::map<std::string, int> bench_inflight_ GUARDED_BY(bench_slots_mu_);

  std::atomic<std::uint64_t> score_requests_{0};
  std::atomic<std::uint64_t> recover_requests_{0};
  std::atomic<std::size_t> warm_entries_{0};
  std::atomic<int> inflight_{0};
  std::atomic<bool> model_healthy_{true};
  std::atomic<std::uint64_t> shed_requests_{0};
  std::atomic<std::uint64_t> bench_shed_requests_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> degraded_recoveries_{0};
  util::WallTimer uptime_;
};

}  // namespace rebert::serve
