// ModelRegistry — several named model snapshots behind one engine.
//
// ReBERT inference cost scales with netlist size (PAPER.md Table III), so
// a deployment serving mixed traffic wants several checkpoints — a small
// fast model for small benches, a deep one for the big ones — behind one
// protocol endpoint. The registry holds them and picks one per request:
//
//   * explicit:  a `model=<name>` protocol field names an entry directly
//                (unknown names are request errors);
//   * size rule: with no field, the entry with the smallest max_bits that
//                still covers the bench's bit count wins; benches bigger
//                than every bound fall through to the default entry.
//
// Entries are loaded from a manifest file (one model per line):
//
//   # comment lines and blanks are skipped
//   model <name> <weights-path> [max_bits=<n>]
//   default <name>
//
// A weights-path of "-" means fresh (untrained) weights — what the tests
// and benches use to exercise the routing without training checkpoints.
// An entry whose checkpoint fails to load is kept but marked unhealthy: a
// bad snapshot must not stop the daemon from serving the good ones.
// Unhealthy entries are skipped by the size rule; an explicitly named
// unhealthy entry makes `recover` fall back to the structural baseline
// (tagged degraded) and `score` answer an error.
//
// Each non-default entry owns a private prediction cache: scores are a
// function of (pair, model), so sharing the key space across models would
// serve one model's probabilities for another's. The default entry shares
// the engine's persisted cache, which keeps single-model deployments —
// and their warm-start snapshots — exactly as before.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bert/config.h"
#include "bert/model.h"
#include "rebert/prediction_cache.h"

namespace rebert::serve {

struct ModelSpec {
  std::string name;
  std::string path;   // checkpoint file; "-" = fresh untrained weights
  int max_bits = 0;   // size-rule bound; 0 = unbounded (never size-picked)
};

struct ModelManifest {
  std::vector<ModelSpec> models;
  std::string default_model;  // empty = first listed
};

/// Parse the manifest grammar from a string (`origin` labels errors).
/// Throws util::CheckError on malformed lines, duplicate names, or an
/// unknown default.
ModelManifest parse_model_manifest_text(const std::string& text,
                                        const std::string& origin);

/// Parse a manifest file. Throws util::CheckError when the file cannot be
/// read or fails parse_model_manifest_text.
ModelManifest parse_model_manifest(const std::string& path);

class ModelRegistry {
 public:
  struct Entry {
    ModelSpec spec;
    std::unique_ptr<bert::BertPairClassifier> model;
    /// Private cache for non-default entries; null for the default entry,
    /// which shares the engine's persisted cache.
    std::unique_ptr<core::ShardedPredictionCache> owned_cache;
    core::ShardedPredictionCache* cache = nullptr;
    /// False forever when the checkpoint failed to load — the one failure
    /// that cannot heal without a restart. Explicitly naming such an entry
    /// is a request error for `score` and a straight structural fallback
    /// for `recover`.
    bool load_ok = true;
    /// False after the checkpoint failed to load or the last forward with
    /// this model failed; healed by the next successful forward.
    std::atomic<bool> healthy{true};
    std::atomic<std::uint64_t> requests{0};
  };

  /// Build one entry per manifest model, all with the same architecture
  /// `config` (a manifest mixing architectures would need per-entry
  /// configs; checkpoints of the wrong shape fail to load and mark the
  /// entry unhealthy instead). The default entry's cache is
  /// `default_cache`; every other entry gets its own with `cache_shards`
  /// shards.
  ModelRegistry(const ModelManifest& manifest, const bert::BertConfig& config,
                core::ShardedPredictionCache* default_cache, int cache_shards);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  Entry& default_entry() { return *entries_[default_index_]; }

  /// Entry by name, or null when unknown.
  Entry* find(const std::string& name);

  /// The entry serving a request: `name` when given (throws
  /// util::CheckError on an unknown name — a request error, not a server
  /// fault), otherwise the size rule over `num_bits`.
  Entry& select(const std::string& name, int num_bits);

  std::size_t size() const { return entries_.size(); }
  int unhealthy_count() const;
  const std::vector<std::unique_ptr<Entry>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::unique_ptr<Entry>> entries_;
  std::size_t default_index_ = 0;
};

}  // namespace rebert::serve
